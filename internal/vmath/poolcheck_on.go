//go:build poolcheck

package vmath

import (
	"fmt"
	"math"
	"sync"
)

// poolChecker (poolcheck build) tracks which planes are currently inside
// the pool's free lists and makes the two buffer-lifetime bugs loud:
//
//   - Double-Put: putting a plane that is already free panics immediately,
//     with the plane's geometry in the message.
//   - Use-after-put: a freed plane's pixels are poisoned with NaN and its
//     header is truncated to 0×0 with an empty Pix, so a stale holder
//     either reads NaNs (visible in any checksum) or panics indexing Pix.
//
// The tracking map and mutex make pool operations slower and allocate, so
// this build is for tests and debugging only: CI runs the test suite with
// `-tags poolcheck -race` to gate buffer-lifetime bugs.
type poolChecker struct {
	mu   sync.Mutex
	free map[*Plane]struct{}
}

func (c *poolChecker) onPut(pl *Plane) {
	c.mu.Lock()
	if c.free == nil {
		c.free = make(map[*Plane]struct{})
	}
	if _, dup := c.free[pl]; dup {
		c.mu.Unlock()
		panic(fmt.Sprintf("vmath: pool double-Put of %dx%d plane", pl.W, pl.H))
	}
	c.free[pl] = struct{}{}
	c.mu.Unlock()
	// Poison, then truncate: stale slice copies see NaNs, stale At/Set
	// through the header panic on the empty Pix.
	nan := float32(math.NaN())
	full := pl.Pix[:cap(pl.Pix)]
	for i := range full {
		full[i] = nan
	}
	pl.W, pl.H = 0, 0
	pl.Pix = full[:0]
}

func (c *poolChecker) onGet(pl *Plane) {
	c.mu.Lock()
	delete(c.free, pl)
	c.mu.Unlock()
}

// bytePoolChecker is the BytePlane counterpart of poolChecker: double-Put
// panics, and freed shadows are poisoned with 0xAA and truncated to 0×0 so
// use-after-put shows up as corrupt SADs or index panics.
type bytePoolChecker struct {
	mu   sync.Mutex
	free map[*BytePlane]struct{}
}

func (c *bytePoolChecker) onPut(pl *BytePlane) {
	c.mu.Lock()
	if c.free == nil {
		c.free = make(map[*BytePlane]struct{})
	}
	if _, dup := c.free[pl]; dup {
		c.mu.Unlock()
		panic(fmt.Sprintf("vmath: byte pool double-Put of %dx%d plane", pl.W, pl.H))
	}
	c.free[pl] = struct{}{}
	c.mu.Unlock()
	full := pl.Pix[:cap(pl.Pix)]
	for i := range full {
		full[i] = 0xAA
	}
	pl.W, pl.H = 0, 0
	pl.Pix = full[:0]
}

func (c *bytePoolChecker) onGet(pl *BytePlane) {
	c.mu.Lock()
	delete(c.free, pl)
	c.mu.Unlock()
}

// PoolCheckEnabled reports whether this binary was built with -tags
// poolcheck (buffer-lifetime debugging).
const PoolCheckEnabled = true
