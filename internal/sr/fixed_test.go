package sr

import (
	"math/rand"
	"testing"

	"nerve/internal/vmath"
)

func randomByteLR(w, h int, seed int64) *vmath.BytePlane {
	rng := rand.New(rand.NewSource(seed))
	coarse := vmath.NewBytePlane(w/6+2, h/6+2)
	for i := range coarse.Pix {
		coarse.Pix[i] = uint8(rng.Intn(256))
	}
	p := vmath.NewBytePlane(w, h)
	vmath.ResizeBilinearBytesInto(p, coarse)
	// Re-inject some high-frequency texture so the sharpen has work to do.
	for i := range p.Pix {
		v := int(p.Pix[i]) + rng.Intn(21) - 10
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		p.Pix[i] = uint8(v)
	}
	return p
}

// TestFastUpscaleResizeStageWithinOneLSB isolates the head's resize stage:
// the head's output must be within 1 LSB of the float bilinear resize of
// the head's own sharpened intermediate (the sharpen stage carries its own
// ≤1 LSB proof in vmath). Reaching into the intermediate keeps the bound
// crisp instead of compounding two stage tolerances.
func TestFastUpscaleResizeStageWithinOneLSB(t *testing.T) {
	const lrW, lrH, outW, outH = 120, 68, 240, 136
	lr := randomByteLR(lrW, lrH, 1)
	fu := NewFast(Config{OutW: outW, OutH: outH})
	out := vmath.NewBytePlane(outW, outH)
	fu.UpscaleBytesInto(out, lr)

	// Rebuild the sharpened intermediate exactly as the head does.
	sharp := vmath.NewBytePlane(lrW, lrH)
	vmath.SharpenBytesInto(sharp, lr, fu.boost256(lrW))
	sharpF := sharp.ToPlane(vmath.NewPlane(lrW, lrH))
	refF := vmath.NewPlane(outW, outH)
	vmath.ResizeBilinearInto(refF, sharpF)
	for i := range out.Pix {
		want := vmath.PixelByte(refF.Pix[i])
		d := int(out.Pix[i]) - int(want)
		if d < 0 {
			d = -d
		}
		if d > 1 {
			t.Fatalf("pixel %d: fast head %d vs float resize of intermediate %d (Δ%d > 1)",
				i, out.Pix[i], want, d)
		}
	}
}

// TestFastUpscaleTracksFloatComposite checks the whole head against the
// fully-float composite (float sharpen with the same [1 2 1]/4 binomial
// blur and Q8-rounded amount, byte-quantised between stages, float bilinear
// resize). Each stage contributes ≤1 LSB and the resize is a convex
// combination, so the chained bound is 3 LSB.
func TestFastUpscaleTracksFloatComposite(t *testing.T) {
	const lrW, lrH, outW, outH = 96, 54, 192, 108
	lr := randomByteLR(lrW, lrH, 2)
	fu := NewFast(Config{OutW: outW, OutH: outH})
	out := vmath.NewBytePlane(outW, outH)
	fu.UpscaleBytesInto(out, lr)

	lrF := lr.ToPlane(vmath.NewPlane(lrW, lrH))
	blur := vmath.NewPlane(lrW, lrH)
	vmath.ConvolveSeparableInto(blur, lrF, []float32{0.25, 0.5, 0.25}, []float32{0.25, 0.5, 0.25})
	amount := float32(fu.boost256(lrW)) / 256
	sharpQ := vmath.NewBytePlane(lrW, lrH)
	for i := range sharpQ.Pix {
		sharpQ.Pix[i] = vmath.PixelByte(lrF.Pix[i] + amount*(lrF.Pix[i]-blur.Pix[i]))
	}
	refF := vmath.NewPlane(outW, outH)
	vmath.ResizeBilinearInto(refF, sharpQ.ToPlane(vmath.NewPlane(lrW, lrH)))
	var worst int
	for i := range out.Pix {
		d := int(out.Pix[i]) - int(vmath.PixelByte(refF.Pix[i]))
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if worst > 3 {
		t.Fatalf("fast head deviates %d LSB from float composite (want ≤ 3)", worst)
	}
}

// TestFastUpscaleSameGeometryIsSharpenOnly: when LR already matches the
// output geometry the head must not resample.
func TestFastUpscaleSameGeometryIsSharpenOnly(t *testing.T) {
	const w, h = 64, 48
	lr := randomByteLR(w, h, 3)
	fu := NewFast(Config{OutW: w, OutH: h, DetailBoost: 0.2})
	out := vmath.NewBytePlane(w, h)
	fu.UpscaleBytesInto(out, lr)
	want := vmath.NewBytePlane(w, h)
	vmath.SharpenBytesInto(want, lr, fu.boost256(w))
	for i := range out.Pix {
		if out.Pix[i] != want.Pix[i] {
			t.Fatalf("pixel %d: same-geometry head %d != sharpen %d", i, out.Pix[i], want.Pix[i])
		}
	}
}

// TestFastUpscaleZeroPlaneAllocsWarm: after the first call the head must
// run entirely on pooled planes.
func TestFastUpscaleZeroPlaneAllocsWarm(t *testing.T) {
	if vmath.RaceEnabled {
		t.Skip("sync.Pool drops Puts under -race; pool determinism not observable")
	}
	const lrW, lrH, outW, outH = 160, 90, 320, 180
	lr := randomByteLR(lrW, lrH, 4)
	fu := NewFast(Config{OutW: outW, OutH: outH})
	out := vmath.GetBytes(outW, outH)
	defer vmath.PutBytes(out)
	for i := 0; i < 3; i++ {
		fu.UpscaleBytesInto(out, lr) // warm pools
	}
	before := vmath.PlaneAllocs()
	for i := 0; i < 10; i++ {
		fu.UpscaleBytesInto(out, lr)
	}
	if d := vmath.PlaneAllocs() - before; d != 0 {
		t.Fatalf("warm fast head allocated %d planes over 10 frames, want 0", d)
	}
	fu.Reset()
}

func BenchmarkFastUpscale1080p(b *testing.B) {
	const lrW, lrH, outW, outH = 960, 540, 1920, 1080
	lr := randomByteLR(lrW, lrH, 5)
	fu := NewFast(Config{OutW: outW, OutH: outH})
	out := vmath.GetBytes(outW, outH)
	defer vmath.PutBytes(out)
	fu.UpscaleBytesInto(out, lr)
	b.SetBytes(int64(outW * outH))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fu.UpscaleBytesInto(out, lr)
	}
}
