package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// deadline tracks per-frame wall time against the frame budget of an FPS
// target: budget = 1s / fps. Frames longer than the budget are overruns —
// the real-time claim of the paper (§7) is exactly "zero overruns at 30
// FPS" — and the overrun sizes get their own histogram so a diagnosis can
// distinguish a 1 ms slip from a 100 ms stall.
type deadline struct {
	budgetNanos atomic.Int64
	fpsBits     atomic.Uint64 // float64 bits of the target FPS
	overruns    atomic.Int64
	frames      Histogram // all frame durations
	over        Histogram // overrun amounts (duration - budget)
}

func (d *deadline) reset() {
	d.overruns.Store(0)
	d.frames.reset()
	d.over.reset()
}

// SetDeadlineFPS sets the frame-rate target the deadline tracker measures
// against. Non-positive fps panics.
func (r *Registry) SetDeadlineFPS(fps float64) {
	if fps <= 0 || math.IsNaN(fps) || math.IsInf(fps, 0) {
		panic("telemetry: deadline FPS must be positive and finite")
	}
	r.dead.budgetNanos.Store(int64(float64(time.Second) / fps))
	r.dead.fpsBits.Store(math.Float64bits(fps))
}

// DeadlineFPS returns the current frame-rate target.
func (r *Registry) DeadlineFPS() float64 {
	return math.Float64frombits(r.dead.fpsBits.Load())
}

// FrameBudget returns the per-frame time budget implied by the target.
func (r *Registry) FrameBudget() time.Duration {
	return time.Duration(r.dead.budgetNanos.Load())
}

// ObserveFrame records one frame's end-to-end processing time against the
// deadline. An overrun increments the overrun count, feeds the overrun
// histogram, and emits a "deadline_overrun" event (value = overrun ms)
// when an event sink is attached.
func (r *Registry) ObserveFrame(d time.Duration) {
	if !r.enabled.Load() {
		return
	}
	r.dead.frames.Observe(d)
	if over := d - time.Duration(r.dead.budgetNanos.Load()); over > 0 {
		r.dead.overruns.Add(1)
		r.dead.over.Observe(over)
		r.emit("deadline_overrun", "", "", float64(over)/1e6)
	}
}

// Frames returns how many frames the deadline tracker has observed.
func (r *Registry) Frames() int64 { return r.dead.frames.Count() }

// Overruns returns how many observed frames exceeded the budget.
func (r *Registry) Overruns() int64 { return r.dead.overruns.Load() }

// FrameTimer measures one frame end to end. The zero FrameTimer (returned
// while the registry is disabled) is inert.
type FrameTimer struct {
	r     *Registry
	start time.Time
}

// FrameStart begins timing one frame; Done on the returned timer records
// it against the deadline.
func (r *Registry) FrameStart() FrameTimer {
	if !r.enabled.Load() {
		return FrameTimer{}
	}
	return FrameTimer{r: r, start: time.Now()}
}

// Done records the frame's elapsed wall time.
func (t FrameTimer) Done() {
	if t.r == nil {
		return
	}
	t.r.ObserveFrame(time.Since(t.start))
}
