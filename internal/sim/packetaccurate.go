package sim

import (
	"math"

	"nerve/internal/netem"
	"nerve/internal/transport"
)

// downloadPacketAccurate delivers one chunk over the event-driven network
// stack. The conventional client uses the reliable windowed transfer
// (retransmissions consume real link time); recovery/reuse clients ship
// every packet once as a datagram (conn.SendDatagram, so the qlog event
// stream sees both paths). It fills frameLost (true where any of a frame's
// data packets was lost on first transmission) and returns the wall-clock
// download time, the number of lost data packets and the number of parity
// packets that survived.
func downloadPacketAccurate(cfg Config, scheme Scheme, clock *netem.Clock, conn *transport.Conn, start float64, pktsPerFrame, framesPerChunk, parityBudget int, frameLost []bool) (dlTime float64, totalLost, effParity int) {
	// Advance the shared virtual clock to the request time (idle gaps,
	// rebuffering and playback all happen between chunk downloads).
	clock.RunUntil(start)

	dataPkts := pktsPerFrame * framesPerChunk
	total := dataPkts + parityBudget
	lost := make([]bool, total)

	reliable := !scheme.Recovery && !scheme.reuses()
	if reliable {
		sizes := make([]int, total)
		for i := range sizes {
			sizes[i] = cfg.PacketBytes
		}
		var res *transport.TransferResult
		conn.Transfer(sizes, func(r *transport.TransferResult) { res = r })
		clock.RunUntilIdle()
		dlTime = res.Done - start
		copy(lost, res.FirstTxLost)
	} else {
		conn.ResetFlightWindow()
		last := start
		delivered := 0
		for p := 0; p < total; p++ {
			ok := conn.SendDatagram(cfg.PacketBytes, func(at float64) {
				if at > last {
					last = at
				}
				delivered++
			})
			if !ok {
				lost[p] = true
			}
		}
		clock.RunUntilIdle()
		if delivered == 0 {
			// Everything lost: charge a full chunk of air time.
			dlTime = cfg.ChunkSeconds
		} else {
			dlTime = last - start
		}
	}
	if dlTime < 1e-6 {
		dlTime = 1e-6
	}
	if math.IsInf(dlTime, 1) || dlTime > 60 {
		dlTime = 60
	}

	for f := 0; f < framesPerChunk; f++ {
		frameLost[f] = false
	}
	for p := 0; p < dataPkts; p++ {
		if lost[p] {
			totalLost++
			frameLost[p/pktsPerFrame] = true
		}
	}
	for p := dataPkts; p < total; p++ {
		if !lost[p] {
			effParity++
		}
	}
	return dlTime, totalLost, effParity
}
