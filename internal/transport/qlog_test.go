package transport

import (
	"testing"

	"nerve/internal/transport/qlog"
)

// attach wires a fresh trace to a conn, detached from the global telemetry
// registry so tests observe only the ring.
func attach(c *Conn) *qlog.Trace {
	tr := qlog.New(4096)
	tr.SetRegistry(nil)
	c.QLog = tr
	return tr
}

func TestQLogDatagramLossless(t *testing.T) {
	c, clock := newTestConn(1e6, 0, 0.05, 1)
	tr := attach(c)
	for i := 0; i < 5; i++ {
		c.SendDatagram(1000, func(float64) {})
	}
	clock.RunUntilIdle()
	if tr.Count(qlog.DatagramSent) != 5 || tr.Count(qlog.DatagramDelivered) != 5 {
		t.Fatalf("sent/delivered = %d/%d, want 5/5",
			tr.Count(qlog.DatagramSent), tr.Count(qlog.DatagramDelivered))
	}
	if tr.Count(qlog.DatagramDropped) != 0 {
		t.Fatalf("unexpected drops: %d", tr.Count(qlog.DatagramDropped))
	}
	if tr.Count(qlog.RTTSample) != 5 {
		t.Fatalf("rtt samples = %d, want 5", tr.Count(qlog.RTTSample))
	}
	if c.inflight != 0 || c.inflightBytes != 0 {
		t.Fatalf("inflight accounting leaked: %d copies, %d bytes", c.inflight, c.inflightBytes)
	}
	if tr.Count(qlog.InflightHighWater) == 0 || tr.Count(qlog.BacklogHighWater) == 0 {
		t.Fatal("no high-water events in a busy window")
	}
}

func TestQLogDatagramLoss(t *testing.T) {
	c, clock := newTestConn(1e6, 0.3, 0.05, 7)
	tr := attach(c)
	const n = 200
	for i := 0; i < n; i++ {
		c.SendDatagram(1000, func(float64) {})
	}
	clock.RunUntilIdle()
	sent := tr.Count(qlog.DatagramSent)
	del := tr.Count(qlog.DatagramDelivered)
	drop := tr.Count(qlog.DatagramDropped)
	if sent != n {
		t.Fatalf("sent = %d, want %d", sent, n)
	}
	if del+drop != n {
		t.Fatalf("delivered+dropped = %d+%d, want %d", del, drop, n)
	}
	if drop == 0 {
		t.Fatal("30%% loss produced no drop events")
	}
	if c.inflight != 0 || c.inflightBytes != 0 {
		t.Fatalf("inflight accounting leaked: %d copies, %d bytes", c.inflight, c.inflightBytes)
	}
}

func TestQLogReliableRetry(t *testing.T) {
	c, clock := newTestConn(1e6, 0.4, 0.05, 3)
	tr := attach(c)
	done := 0
	for i := 0; i < 50; i++ {
		c.SendReliable(1000, func(at float64, ok bool, attempt int) { done++ })
	}
	clock.RunUntilIdle()
	if done != 50 {
		t.Fatalf("callbacks = %d, want 50", done)
	}
	if tr.Count(qlog.ReliableDelivered)+tr.Count(qlog.ReliableAbandoned) != 50 {
		t.Fatalf("delivered+abandoned = %d+%d, want 50",
			tr.Count(qlog.ReliableDelivered), tr.Count(qlog.ReliableAbandoned))
	}
	// Under 40% loss some packets needed retries, and every retry was
	// announced by a PTO (no local drops on an uncongested link).
	if tr.Count(qlog.ReliableRetry) == 0 {
		t.Fatal("40%% loss produced no retries")
	}
	if tr.Count(qlog.ReliableRetry) != uint64(c.Retx) {
		t.Fatalf("retry events %d != Retx counter %d", tr.Count(qlog.ReliableRetry), c.Retx)
	}
	if tr.Count(qlog.PTOFired) < tr.Count(qlog.ReliableRetry) {
		t.Fatalf("PTO events %d < retries %d", tr.Count(qlog.PTOFired), tr.Count(qlog.ReliableRetry))
	}
	if tr.Count(qlog.ReliableSent) != uint64(c.TxPackets) {
		t.Fatalf("sent events %d != TxPackets %d", tr.Count(qlog.ReliableSent), c.TxPackets)
	}
	if c.inflight != 0 || c.inflightBytes != 0 {
		t.Fatalf("inflight accounting leaked: %d copies, %d bytes", c.inflight, c.inflightBytes)
	}
}

func TestQLogLocalDrop(t *testing.T) {
	// A tiny queue cap forces local queue-overflow rejections.
	c, clock := newTestConn(1e5, 0, 0.05, 1)
	c.Fwd.MaxQueueDelay = 0.05
	tr := attach(c)
	done := 0
	for i := 0; i < 20; i++ {
		c.SendReliable(1000, func(float64, bool, int) { done++ })
	}
	clock.RunUntilIdle()
	if done != 20 {
		t.Fatalf("callbacks = %d, want 20", done)
	}
	if tr.Count(qlog.LocalDrop) == 0 {
		t.Fatal("no local-drop events despite a 50 ms queue cap")
	}
	if tr.Count(qlog.LocalDrop) != uint64(c.LocalDrops) {
		t.Fatalf("local-drop events %d != LocalDrops counter %d",
			tr.Count(qlog.LocalDrop), c.LocalDrops)
	}
	if c.inflight != 0 || c.inflightBytes != 0 {
		t.Fatalf("inflight accounting leaked: %d copies, %d bytes", c.inflight, c.inflightBytes)
	}
}

// TestQLogNilIsFree: behaviour with and without a trace is identical.
func TestQLogNilIsFree(t *testing.T) {
	run := func(withTrace bool) (float64, int, int) {
		c, clock := newTestConn(1e6, 0.25, 0.05, 11)
		if withTrace {
			attach(c)
		}
		var lastAt float64
		for i := 0; i < 100; i++ {
			c.SendReliable(1000, func(at float64, ok bool, attempt int) { lastAt = at })
		}
		clock.RunUntilIdle()
		return lastAt, c.TxPackets, c.Retx
	}
	at1, tx1, rx1 := run(false)
	at2, tx2, rx2 := run(true)
	if at1 != at2 || tx1 != tx2 || rx1 != rx2 {
		t.Fatalf("instrumentation changed behaviour: (%g,%d,%d) vs (%g,%d,%d)",
			at1, tx1, rx1, at2, tx2, rx2)
	}
}

func TestResetFlightWindow(t *testing.T) {
	c, clock := newTestConn(1e6, 0, 0.05, 1)
	tr := attach(c)
	c.SendDatagram(1000, func(float64) {})
	clock.RunUntilIdle()
	hw := tr.Count(qlog.InflightHighWater)
	if hw == 0 {
		t.Fatal("no high-water event on first send")
	}
	// Same-size send without a reset: no new maximum, no new event.
	c.SendDatagram(1000, func(float64) {})
	clock.RunUntilIdle()
	if tr.Count(qlog.InflightHighWater) != hw {
		t.Fatal("repeat send set a new high-water mark")
	}
	c.ResetFlightWindow()
	c.SendDatagram(1000, func(float64) {})
	clock.RunUntilIdle()
	if tr.Count(qlog.InflightHighWater) != hw+1 {
		t.Fatal("reset did not restart the high-water window")
	}
}
