package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"nerve/internal/httpstream"
	"nerve/internal/telemetry"
)

// Cluster telemetry (see OBSERVABILITY.md). local_serves counts payload
// requests this node owned (or received as a peer fetch); peer_fetches
// counts requests proxied to an owner; peer_errors counts proxies that
// failed through the retry policy; local_fallbacks counts payloads this
// node built itself after the owner died; rehashes counts nodes newly
// marked dead (each one moves its keys onto the survivors).
var (
	cLocal     = telemetry.NewCounter("cluster.local_serves")
	cPeer      = telemetry.NewCounter("cluster.peer_fetches")
	cPeerErrs  = telemetry.NewCounter("cluster.peer_errors")
	cFallbacks = telemetry.NewCounter("cluster.local_fallbacks")
	cRehashes  = telemetry.NewCounter("cluster.rehashes")
)

// peerHeader marks a request as a peer fetch: the receiving node must
// serve it from its local origin, never re-proxy. This both terminates
// any forwarding chain at one hop and keeps transient membership-view
// disagreements (A thinks B owns a key, B thinks A does) from looping.
const peerHeader = "X-Nerve-Peer"

// Config parameterises a cluster node.
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers.
	Self string
	// Peers is the full cluster membership, including Self. Every node
	// must be configured with the same list (order does not matter for
	// ownership — rendezvous hashing has no token positions).
	Peers []string
	// Origin configures the local origin. Every node uses the same
	// content config, so any node can build any payload when an owner
	// dies.
	Origin httpstream.ServerConfig
	// PeerCacheBytes bounds the LRU over peer-fetched payloads (default
	// httpstream.DefaultCacheBytes). Separate budget from the local
	// origin's segment cache.
	PeerCacheBytes int64
	// PeerRetry is the retry policy of peer fetches (default: 2 attempts
	// of 3 s — fail fast so a dead owner costs little before the
	// fallback kicks in).
	PeerRetry httpstream.RetryPolicy
	// PeerHTTP is the transport for peer fetches (default
	// http.DefaultClient's semantics with a fresh Transport).
	PeerHTTP *http.Client
	// DeadCooldown is how long a failed peer stays suspected (default
	// DefaultDeadCooldown).
	DeadCooldown time.Duration
}

// Stats is a point-in-time view of one node's cluster counters — the
// cluster block of BENCH_load.json (aggregated over nodes).
type Stats struct {
	LocalServes    int64 `json:"local_serves"`
	PeerFetches    int64 `json:"peer_fetches"`
	PeerErrors     int64 `json:"peer_errors"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	Rehashes       int64 `json:"rehashes"`
	LiveNodes      int   `json:"live_nodes"`
}

// Add accumulates another node's stats. LiveNodes keeps the minimum —
// the most pessimistic membership view across the cluster.
func (s *Stats) Add(o Stats) {
	s.LocalServes += o.LocalServes
	s.PeerFetches += o.PeerFetches
	s.PeerErrors += o.PeerErrors
	s.LocalFallbacks += o.LocalFallbacks
	s.Rehashes += o.Rehashes
	if s.LiveNodes == 0 || o.LiveNodes < s.LiveNodes {
		s.LiveNodes = o.LiveNodes
	}
}

// Node is one member of the scaled origin: an http.Handler serving the
// full nerved surface with consistent-hash ownership behind it.
type Node struct {
	cfg    Config
	ring   *Ring
	origin *httpstream.Server

	flight httpstream.Flight
	cache  *httpstream.Cache // peer-fetched payloads
	peers  map[string]*httpstream.Client

	localServes    counter
	peerFetches    counter
	peerErrors     counter
	localFallbacks counter
	rehashes       counter
}

// NewNode builds a cluster node. The local origin is constructed from
// cfg.Origin; peer clients are built eagerly (a peer may be down — its
// client just fails fetches until it recovers).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self required")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, cfg.Peers)
	}
	origin, err := httpstream.NewServer(cfg.Origin)
	if err != nil {
		return nil, err
	}
	pol := cfg.PeerRetry
	if pol.MaxAttempts == 0 {
		pol.MaxAttempts = 2
	}
	if pol.RequestTimeout == 0 {
		pol.RequestTimeout = 3 * time.Second
	}
	hc := cfg.PeerHTTP
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	// Every peer fetch is marked, so the receiving node serves locally.
	hc = &http.Client{
		Transport:     peerMarker{base: hc.Transport},
		CheckRedirect: hc.CheckRedirect,
		Jar:           hc.Jar,
		Timeout:       hc.Timeout,
	}
	n := &Node{
		cfg:    cfg,
		ring:   NewRing(cfg.DeadCooldown, cfg.Peers...),
		origin: origin,
		cache:  httpstream.NewCache(cfg.PeerCacheBytes),
		peers:  make(map[string]*httpstream.Client),
	}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		n.peers[p] = httpstream.NewRawClient(p, hc, httpstream.WithRetryPolicy(pol))
	}
	return n, nil
}

// counter is a per-node atomic tally: the global telemetry counters
// aggregate over all in-process nodes (tests run several), so each node
// keeps its own copy for Stats().
type counter struct{ v atomic.Int64 }

func (c *counter) add(d int64) { c.v.Add(d) }
func (c *counter) load() int64 { return c.v.Load() }

// peerMarker stamps peer fetches with the loop-terminating header.
type peerMarker struct{ base http.RoundTripper }

func (p peerMarker) RoundTrip(r *http.Request) (*http.Response, error) {
	r = r.Clone(r.Context())
	r.Header.Set(peerHeader, "1")
	rt := p.base
	if rt == nil {
		rt = http.DefaultTransport
	}
	return rt.RoundTrip(r)
}

// Ring returns the node's membership view (tests and operators).
func (n *Node) Ring() *Ring { return n.ring }

// Origin returns the node's local origin (warm-up, cache stats).
func (n *Node) Origin() *httpstream.Server { return n.origin }

// PeerCacheStats returns the peer-payload cache counters.
func (n *Node) PeerCacheStats() httpstream.CacheStats { return n.cache.Stats() }

// Stats returns the node's cluster counters.
func (n *Node) Stats() Stats {
	return Stats{
		LocalServes:    n.localServes.load(),
		PeerFetches:    n.peerFetches.load(),
		PeerErrors:     n.peerErrors.load(),
		LocalFallbacks: n.localFallbacks.load(),
		Rehashes:       n.rehashes.load(),
		LiveNodes:      len(n.ring.Live()),
	}
}

// ownershipKey maps a payload request to its consistent-hash key, or
// ok=false for non-payload (or malformed — the origin will 400) paths.
func ownershipKey(r *http.Request) (string, bool) {
	switch r.URL.Path {
	case "/segment":
		rate, err1 := strconv.Atoi(r.URL.Query().Get("rate"))
		nn, err2 := strconv.Atoi(r.URL.Query().Get("n"))
		if err1 != nil || err2 != nil {
			return "", false
		}
		return fmt.Sprintf("seg:%d:%d", rate, nn), true
	case "/codes":
		nn, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil {
			return "", false
		}
		return fmt.Sprintf("codes:%d", nn), true
	}
	return "", false
}

// ServeHTTP implements http.Handler: manifests and playlists are served
// locally (all nodes are equivalent for them); payload requests are
// routed by ownership.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key, isPayload := ownershipKey(r)
	if !isPayload || r.Header.Get(peerHeader) != "" {
		// Not a routable payload request, or a peer fetch that must
		// terminate here: the local origin handles it.
		if isPayload {
			n.localServes.add(1)
			cLocal.Add(1)
		}
		n.origin.ServeHTTP(w, r)
		return
	}
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self {
		n.localServes.add(1)
		cLocal.Add(1)
		n.origin.ServeHTTP(w, r)
		return
	}
	b, err := n.peerFetch(r, owner, key)
	if err == nil {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(b)))
		_, _ = w.Write(b) // client-gone write failures are the origin's tally
		return
	}
	// The owner is unreachable: suspect it (its keys rehash onto the
	// survivors for the cooldown) and serve from the local origin — the
	// content is procedural, so every node can build every payload.
	n.peerErrors.add(1)
	cPeerErrs.Add(1)
	if n.ring.MarkDead(owner) {
		n.rehashes.add(1)
		cRehashes.Add(1)
	}
	n.localFallbacks.add(1)
	cFallbacks.Add(1)
	n.origin.ServeHTTP(w, r)
}

// peerFetch returns the payload for key from the owning peer, through
// the node's LRU cache and singleflight: a miss storm on a remote key
// crosses the network once.
func (n *Node) peerFetch(r *http.Request, owner, key string) ([]byte, error) {
	if b, ok := n.cache.Get(key); ok {
		return b, nil
	}
	n.peerFetches.add(1)
	cPeer.Add(1)
	return n.flight.DoCtx(r.Context(), key, func() ([]byte, error) {
		if b, ok := n.cache.Get(key); ok {
			return b, nil
		}
		cli, ok := n.peers[owner]
		if !ok {
			return nil, fmt.Errorf("cluster: no client for owner %q", owner)
		}
		b, err := cli.Fetch(r.URL.RequestURI())
		if err != nil {
			return nil, err
		}
		n.ring.MarkAlive(owner)
		n.cache.Put(key, b)
		return b, nil
	})
}
