package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestFig1Shape(t *testing.T) {
	s := Fig1(quick())
	if len(s.Y) != 3 || len(s.X) == 0 {
		t.Fatalf("curves %d×%d", len(s.Y), len(s.X))
	}
	for li, curve := range s.Y {
		// Frame loss decreases (weakly) with redundancy and reaches
		// near zero at the top of the sweep.
		for j := 1; j < len(curve); j++ {
			if curve[j] > curve[j-1]+0.05 {
				t.Errorf("curve %d not decreasing at %d: %v → %v", li, j, curve[j-1], curve[j])
			}
		}
		if curve[len(curve)-1] > 0.03 {
			t.Errorf("curve %d does not reach ≈0: %v", li, curve[len(curve)-1])
		}
		if curve[0] < 0.01 {
			t.Errorf("curve %d: no frame loss without FEC", li)
		}
	}
	// Higher packet loss ⇒ higher frame loss at zero redundancy.
	if !(s.Y[0][0] < s.Y[1][0] && s.Y[1][0] < s.Y[2][0]) {
		t.Errorf("loss ordering at red=0: %v %v %v", s.Y[0][0], s.Y[1][0], s.Y[2][0])
	}
	// The paper's headline: 1/3/5% loss need ≈25/30/35% FEC for ≈0 frame
	// loss. At those redundancy levels the frame loss must be near zero.
	needed := []float64{0.25, 0.30, 0.35}
	for li, loss := range fig1LossRates {
		for j, red := range s.X {
			if red >= needed[li] && s.Y[li][j] > math.Max(0.012, s.Y[li][0]*0.15) {
				t.Errorf("loss %v: at red %v frame loss %v not ≈0 (unprotected %v)", loss, red, s.Y[li][j], s.Y[li][0])
			}
		}
	}
}

func TestFig2Shape(t *testing.T) {
	s := Fig2(quick())
	if len(s.Y) != 6 {
		t.Fatalf("want 6 curves, got %d", len(s.Y))
	}
	// Recovery curves dominate their no-recovery counterparts on average.
	for i := 0; i < 3; i++ {
		noRC := s.Y[2*i]
		rc := s.Y[2*i+1]
		var a, b float64
		for j := range noRC {
			a += noRC[j]
			b += rc[j]
		}
		if b <= a {
			t.Errorf("loss level %d: RC mean %.3f not above no-RC %.3f", i, b, a)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Ours must be the last row with the lowest latency.
	var ourLat string
	for _, row := range tab.Rows {
		if row[0] == "ours" {
			ourLat = row[3]
		}
	}
	if ourLat != "22" {
		t.Errorf("ours latency %q, want 22 ms", ourLat)
	}
}

func TestFig4aMonotoneDecline(t *testing.T) {
	s := Fig4a(quick())
	c := s.Y[0]
	if len(c) < 3 {
		t.Fatalf("too few points: %d", len(c))
	}
	if c[len(c)-1] >= c[0] {
		t.Errorf("no degradation: first %v last %v", c[0], c[len(c)-1])
	}
}

func TestFig4bMonotoneRateQuality(t *testing.T) {
	s := Fig4b(quick())
	c := s.Y[0]
	for j := 1; j < len(c); j++ {
		if c[j] <= c[j-1]-0.3 {
			t.Errorf("PSNR not increasing with rate at %d: %v → %v", j, c[j-1], c[j])
		}
	}
	if c[len(c)-1]-c[0] < 1 {
		t.Errorf("rate-quality span too flat: %v..%v", c[0], c[len(c)-1])
	}
}

func TestFig7Ordering(t *testing.T) {
	p, s := Fig7(quick())
	our := p.Col("our")
	nocode := p.Col("w/o point map")
	reuse := p.Col("reuse")
	for j := range p.X {
		if p.Y[our][j] <= p.Y[reuse][j] {
			t.Errorf("horizon %v: our %.2f not above reuse %.2f", p.X[j], p.Y[our][j], p.Y[reuse][j])
		}
		if p.Y[nocode][j] <= p.Y[reuse][j]-0.3 {
			t.Errorf("horizon %v: no-code %.2f below reuse %.2f", p.X[j], p.Y[nocode][j], p.Y[reuse][j])
		}
	}
	// SSIM sanity.
	if s.Y[our][0] <= 0 || s.Y[our][0] > 1 {
		t.Errorf("SSIM out of range: %v", s.Y[our][0])
	}
}

func TestFig8PartialAboveFig7(t *testing.T) {
	p7, _ := Fig7(quick())
	p8, _ := Fig8(quick())
	our := p8.Col("our")
	// Partial recovery sees half the truth, so its PSNR must exceed the
	// full-loss counterpart at the same horizon.
	for j := range p8.X {
		if p8.Y[our][j] <= p7.Y[our][j] {
			t.Errorf("horizon %v: partial %.2f not above full-loss %.2f", p8.X[j], p8.Y[our][j], p7.Y[our][j])
		}
	}
}

func TestFig10SRGain(t *testing.T) {
	p, s := Fig10(quick())
	up := p.Col("upsample")
	our := p.Col("our")
	for j := range p.X {
		if p.Y[our][j] <= p.Y[up][j] {
			t.Errorf("rung %v: SR %.2f not above upsample %.2f", p.X[j], p.Y[our][j], p.Y[up][j])
		}
	}
	_ = s
}

func TestVisualisationsWriteArtefacts(t *testing.T) {
	dir := t.TempDir()
	o := quick()
	o.OutDir = dir
	for name, fn := range map[string]func(Options) ([]string, error){
		"fig6": Fig6, "fig9": Fig9, "fig11": Fig11,
	} {
		paths, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(paths) == 0 {
			t.Fatalf("%s: no artefacts", name)
		}
		for _, p := range paths {
			st, err := os.Stat(p)
			if err != nil || st.Size() < 100 {
				t.Fatalf("%s artefact %s missing/too small", name, p)
			}
		}
	}
	// Without OutDir the functions are silent no-ops.
	paths, err := Fig6(quick())
	if err != nil || len(paths) != 0 {
		t.Fatalf("no-outdir run: %v %v", paths, err)
	}
	// PGM header sanity.
	files, _ := filepath.Glob(filepath.Join(dir, "*.pgm"))
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte("P5\n")) {
		t.Fatal("not a P5 PGM")
	}
}

func TestCalibrateQualityOrdering(t *testing.T) {
	model, tab := CalibrateQuality(quick())
	if len(model.Recovered) != 5 || len(model.SR) != 5 || len(model.Reused) != 5 {
		t.Fatalf("model incomplete: %+v", model)
	}
	pts := model.Delivered.Points()
	if len(pts) < 5 {
		t.Fatalf("delivered map too small")
	}
	for i := range model.SR {
		mbps := 0.512 * 2 // arbitrary probe inside range
		_ = mbps
		if model.SR[i] <= model.Reused[i] {
			t.Errorf("rung %d: SR %.2f not above reuse %.2f", i, model.SR[i], model.Reused[i])
		}
		if model.Recovered[i] <= model.Reused[i]-0.5 {
			t.Errorf("rung %d: recovered %.2f below reuse %.2f", i, model.Recovered[i], model.Reused[i])
		}
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("table rows %d", len(tab.Rows))
	}
}

func TestTable2MatchesPaperCounts(t *testing.T) {
	tab := Table2(quick())
	if tab.Rows[0][1] != "45" || tab.Rows[0][2] != "62" || tab.Rows[0][3] != "53" || tab.Rows[0][4] != "68" {
		t.Fatalf("counts row %v", tab.Rows[0])
	}
}

func TestSystemTablesRender(t *testing.T) {
	o := quick()
	var buf bytes.Buffer
	for _, id := range []string{"fig12", "tab3", "fig13", "fig15", "fig17", "fig18", "lat", "cpu"} {
		if err := Run(id, o, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"fig12", "tab3", "fig13", "fig15", "fig17", "fig18", "latency", "cpu"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig14SeriesAligned(t *testing.T) {
	s := Fig14(quick())
	if len(s.Columns) != 4 {
		t.Fatalf("columns %v", s.Columns)
	}
	for i, col := range s.Y {
		if len(col) != len(s.X) {
			t.Fatalf("column %d length %d != %d", i, len(col), len(s.X))
		}
	}
}

func TestRegistryRunsUnknownID(t *testing.T) {
	if err := Run("nope", quick(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if len(IDs()) < 20 {
		t.Fatalf("registry too small: %d", len(IDs()))
	}
}

func TestAblationsRender(t *testing.T) {
	o := quick()
	var buf bytes.Buffer
	for _, id := range []string{"abl-code", "abl-warp", "abl-pred", "abl-fec", "abl-flow", "abl-buffer"} {
		if err := Run(id, o, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if !strings.Contains(buf.String(), "Ablation") {
		t.Fatal("ablation output missing")
	}
}

func TestTablePrinterAlignment(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n") {
		t.Fatalf("bad render: %q", out)
	}
}

func TestSeriesColLookup(t *testing.T) {
	s := &Series{Columns: []string{"a", "b"}}
	if s.Col("b") != 1 || s.Col("z") != -1 {
		t.Fatal("Col lookup broken")
	}
}
