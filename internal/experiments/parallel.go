package experiments

import "nerve/internal/par"

// parallelFor runs fn(i) for i in [0, n) on the shared worker pool
// (internal/par) and returns the error from the lowest-indexed failing
// call. Unlike the previous ad-hoc WaitGroup fan-out, worker errors are
// propagated instead of dropped, worker panics re-raise on the caller, and
// total concurrency is bounded globally — harness cells that themselves
// run parallel kernels (codec, SR, warp) no longer oversubscribe the
// machine.
//
// Every harness call is a pure function of its inputs (all randomness is
// seeded per call), so fan-out preserves determinism; callers write
// results into per-index slots.
func parallelFor(n int, fn func(i int) error) error {
	return par.ForErr(n, fn)
}

// mustParallelFor is parallelFor for workers that cannot fail. Worker
// panics still re-raise on the caller's goroutine via the pool.
func mustParallelFor(n int, fn func(i int)) {
	par.For(n, fn)
}
