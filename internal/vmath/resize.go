package vmath

import (
	"math"
	"sync"

	"nerve/internal/par"
)

// Every resampler below parallelises over output-row bands on the shared
// worker pool (internal/par). Each output pixel is a pure function of the
// source plane and its own coordinates — no accumulation crosses rows — so
// the result is bit-identical for any pool size.
//
// Each resampler has an Into form that writes into a caller-supplied dst
// (whose W×H is the output geometry) and allocates nothing, plus the
// original allocating form as a thin wrapper. Into forms write every output
// pixel, so dst may come dirty from the pool; dst must not alias p.

// ResizeNearestInto resamples p to dst's size with nearest-neighbour
// sampling. dst must not alias p.
func ResizeNearestInto(dst, p *Plane) *Plane {
	w, h := dst.W, dst.H
	if w == 0 || h == 0 {
		return dst
	}
	if p.W == 0 || p.H == 0 {
		dst.Fill(0)
		return dst
	}
	sx := float64(p.W) / float64(w)
	sy := float64(p.H) / float64(h)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			srcY := int((float64(y) + 0.5) * sy)
			if srcY >= p.H {
				srcY = p.H - 1
			}
			row := p.Pix[srcY*p.W:]
			for x := 0; x < w; x++ {
				srcX := int((float64(x) + 0.5) * sx)
				if srcX >= p.W {
					srcX = p.W - 1
				}
				dst.Pix[y*w+x] = row[srcX]
			}
		}
	})
	return dst
}

// ResizeNearest resamples p to w×h with nearest-neighbour sampling.
func ResizeNearest(p *Plane, w, h int) *Plane {
	return ResizeNearestInto(NewPlane(w, h), p)
}

// lerpTap is one axis sample of the pixel-centre bilinear lattice: two
// clamped source indices and the float32 fraction between them — exactly
// the values SampleBilinear would derive per pixel, hoisted out of the
// inner loop. Border taps carry i0 == i1, which makes the lerp collapse to
// the replicated sample for any fraction, reproducing AtClamp bit-for-bit.
type lerpTap struct {
	i0, i1 int32
	f      float32
}

// lerpTapCache caches per-axis bilinear taps keyed by (src, dst) extent —
// same idiom as the separable-convolution tap cache. Resize geometries are
// static per stream, so steady state never recomputes (or allocates) taps.
var lerpTapCache = struct {
	sync.RWMutex
	m map[[2]int][]lerpTap
}{m: map[[2]int][]lerpTap{}}

func lerpTapsFor(src, dst int) []lerpTap {
	key := [2]int{src, dst}
	lerpTapCache.RLock()
	t := lerpTapCache.m[key]
	lerpTapCache.RUnlock()
	if t != nil {
		return t
	}
	t = make([]lerpTap, dst)
	s := float64(src) / float64(dst)
	for i := 0; i < dst; i++ {
		// The same float32 position SampleBilinear receives, floored and
		// fractioned exactly as it would.
		f := float32((float64(i)+0.5)*s - 0.5)
		i0 := int(math.Floor(float64(f)))
		fr := f - float32(i0)
		j0, j1 := i0, i0+1
		if j0 < 0 {
			j0 = 0
		} else if j0 >= src {
			j0 = src - 1
		}
		if j1 < 0 {
			j1 = 0
		} else if j1 >= src {
			j1 = src - 1
		}
		t[i] = lerpTap{i0: int32(j0), i1: int32(j1), f: fr}
	}
	lerpTapCache.Lock()
	lerpTapCache.m[key] = t
	lerpTapCache.Unlock()
	return t
}

// ResizeBilinearInto resamples p to dst's size with bilinear interpolation
// using pixel-centre alignment. dst must not alias p. Sample positions and
// lerp arithmetic are identical to per-pixel SampleBilinear calls (the
// taps are precomputed, the float32 operations are not reordered), so
// outputs are bit-identical to the historical formulation.
func ResizeBilinearInto(dst, p *Plane) *Plane {
	w, h := dst.W, dst.H
	if w == 0 || h == 0 {
		return dst
	}
	if p.W == 0 || p.H == 0 {
		dst.Fill(0)
		return dst
	}
	xt := lerpTapsFor(p.W, w)
	yt := lerpTapsFor(p.H, h)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			ty := yt[y]
			row0 := p.Pix[int(ty.i0)*p.W : int(ty.i0)*p.W+p.W]
			row1 := p.Pix[int(ty.i1)*p.W : int(ty.i1)*p.W+p.W]
			fy := ty.f
			drow := dst.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				tx := xt[x]
				v00 := row0[tx.i0]
				v10 := row0[tx.i1]
				v01 := row1[tx.i0]
				v11 := row1[tx.i1]
				top := v00 + tx.f*(v10-v00)
				bot := v01 + tx.f*(v11-v01)
				drow[x] = top + fy*(bot-top)
			}
		}
	})
	return dst
}

// ResizeBilinear resamples p to w×h with bilinear interpolation using
// pixel-centre alignment (the convention used by video scalers).
func ResizeBilinear(p *Plane, w, h int) *Plane {
	return ResizeBilinearInto(NewPlane(w, h), p)
}

// cubicWeight is the Catmull-Rom (a = -0.5) cubic convolution kernel.
func cubicWeight(t float64) float64 {
	const a = -0.5
	t = math.Abs(t)
	switch {
	case t <= 1:
		return (a+2)*t*t*t - (a+3)*t*t + 1
	case t < 2:
		return a*t*t*t - 5*a*t*t + 8*a*t - 4*a
	default:
		return 0
	}
}

// ResizeBicubicInto resamples p to dst's size with Catmull-Rom bicubic
// interpolation. dst must not alias p.
func ResizeBicubicInto(dst, p *Plane) *Plane {
	w, h := dst.W, dst.H
	if w == 0 || h == 0 {
		return dst
	}
	if p.W == 0 || p.H == 0 {
		dst.Fill(0)
		return dst
	}
	sx := float64(p.W) / float64(w)
	sy := float64(p.H) / float64(h)
	par.ForRows(h, func(yb0, yb1 int) {
		for y := yb0; y < yb1; y++ {
			fy := (float64(y)+0.5)*sy - 0.5
			y0 := int(math.Floor(fy))
			dy := fy - float64(y0)
			var wy [4]float64
			for j := 0; j < 4; j++ {
				wy[j] = cubicWeight(float64(j-1) - dy)
			}
			for x := 0; x < w; x++ {
				fx := (float64(x)+0.5)*sx - 0.5
				x0 := int(math.Floor(fx))
				dx := fx - float64(x0)
				var wx [4]float64
				for i := 0; i < 4; i++ {
					wx[i] = cubicWeight(float64(i-1) - dx)
				}
				var acc, wsum float64
				for j := 0; j < 4; j++ {
					for i := 0; i < 4; i++ {
						wgt := wx[i] * wy[j]
						acc += wgt * float64(p.AtClamp(x0+i-1, y0+j-1))
						wsum += wgt
					}
				}
				if wsum != 0 {
					acc /= wsum
				}
				dst.Pix[y*w+x] = float32(acc)
			}
		}
	})
	return dst
}

// ResizeBicubic resamples p to w×h with Catmull-Rom bicubic interpolation.
// This is the "Bicubic" upsampling baseline used in the SR comparisons.
func ResizeBicubic(p *Plane, w, h int) *Plane {
	return ResizeBicubicInto(NewPlane(w, h), p)
}

// DownsampleInto box-averages p by an integer factor in each dimension into
// dst, whose size must be exactly (p.W/fx)×(p.H/fy). dst must not alias p.
func DownsampleInto(dst, p *Plane, fx, fy int) *Plane {
	if fx < 1 || fy < 1 {
		panic("vmath: Downsample factor must be >= 1")
	}
	w := p.W / fx
	h := p.H / fy
	dst = ensure(dst, w, h)
	inv := 1.0 / float32(fx*fy)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				var s float32
				for j := 0; j < fy; j++ {
					row := p.Pix[(y*fy+j)*p.W+x*fx:]
					for i := 0; i < fx; i++ {
						s += row[i]
					}
				}
				dst.Pix[y*w+x] = s * inv
			}
		}
	})
	return dst
}

// Downsample box-averages p by an integer factor in each dimension,
// producing a (W/fx)×(H/fy) plane. This matches the degradation model used
// to build the bitrate ladder (area-average downscale).
func Downsample(p *Plane, fx, fy int) *Plane {
	return DownsampleInto(NewPlane(p.W/fx, p.H/fy), p, fx, fy)
}

// PixelShuffleInto rearranges an r²-channel stack of planes (all w×h) into
// dst, which must be (w·r)×(h·r). dst must not alias any channel.
func PixelShuffleInto(dst *Plane, channels []*Plane, r int) *Plane {
	if len(channels) != r*r {
		panic("vmath: PixelShuffle needs r*r channels")
	}
	w, h := channels[0].W, channels[0].H
	for _, c := range channels {
		checkSameSize(channels[0], c)
	}
	dst = ensure(dst, w*r, h*r)
	for c, ch := range channels {
		ox := c % r
		oy := c / r
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dst.Pix[(y*r+oy)*dst.W+(x*r+ox)] = ch.Pix[y*w+x]
			}
		}
	}
	return dst
}

// PixelShuffle rearranges an r²-channel stack of planes (all w×h) into one
// (w·r)×(h·r) plane, mirroring the sub-pixel convolution upsampler
// (Shi et al.) the paper uses for its 4× output stage. channels must have
// length r*r; channel index c maps to sub-pixel offset (c%r, c/r).
func PixelShuffle(channels []*Plane, r int) *Plane {
	if len(channels) != r*r {
		panic("vmath: PixelShuffle needs r*r channels")
	}
	return PixelShuffleInto(NewPlane(channels[0].W*r, channels[0].H*r), channels, r)
}

// PixelUnshuffleInto splits p (whose dimensions must be divisible by r)
// into the r*r caller-supplied planes in dst, each (W/r)×(H/r). No dst
// plane may alias p.
func PixelUnshuffleInto(dst []*Plane, p *Plane, r int) []*Plane {
	if p.W%r != 0 || p.H%r != 0 {
		panic("vmath: PixelUnshuffle dimensions not divisible by r")
	}
	if len(dst) != r*r {
		panic("vmath: PixelUnshuffle needs r*r destination planes")
	}
	w, h := p.W/r, p.H/r
	for c := range dst {
		dst[c] = ensure(dst[c], w, h)
		ox := c % r
		oy := c / r
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dst[c].Pix[y*w+x] = p.Pix[(y*r+oy)*p.W+(x*r+ox)]
			}
		}
	}
	return dst
}

// PixelUnshuffle is the inverse of PixelShuffle: it splits p (whose
// dimensions must be divisible by r) into r*r planes of size (W/r)×(H/r).
func PixelUnshuffle(p *Plane, r int) []*Plane {
	if p.W%r != 0 || p.H%r != 0 {
		panic("vmath: PixelUnshuffle dimensions not divisible by r")
	}
	return PixelUnshuffleInto(make([]*Plane, r*r), p, r)
}
