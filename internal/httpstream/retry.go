package httpstream

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds the client's per-request fault handling: every fetch
// gets MaxAttempts tries, each under RequestTimeout, with exponential
// backoff plus deterministic seeded jitter between tries. Transient
// failures (transport errors, 5xx, truncated bodies) are retried;
// permanent ones (4xx) are not.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (default 3).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; attempt k waits
	// BaseBackoff·2^(k-1) (default 50 ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2 s).
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff that is randomised: the
	// actual delay is uniform in [d·(1−Jitter/2), d·(1+Jitter/2)]
	// (default 0.5, decorrelating synchronised clients).
	Jitter float64
	// RequestTimeout bounds each individual attempt (default 15 s).
	RequestTimeout time.Duration
	// Seed feeds the jitter RNG so retry schedules are reproducible
	// (default 1).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.RequestTimeout <= 0 {
		p.RequestTimeout = 15 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoffer turns a policy into concrete per-attempt delays.
type backoffer struct {
	p   RetryPolicy
	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoffer(p RetryPolicy) *backoffer {
	return &backoffer{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// delay returns the sleep before retry number retry (1-based).
func (b *backoffer) delay(retry int) time.Duration {
	d := b.p.BaseBackoff
	for i := 1; i < retry && d < b.p.MaxBackoff; i++ {
		d *= 2
	}
	if d > b.p.MaxBackoff {
		d = b.p.MaxBackoff
	}
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	scale := 1 - b.p.Jitter/2 + b.p.Jitter*u
	return time.Duration(float64(d) * scale)
}

// FetchError reports a failed fetch after the retry policy was exhausted
// (or a permanent failure that retrying cannot fix).
type FetchError struct {
	Path     string
	Attempts int
	// Status is the last HTTP status seen (0 for transport errors).
	Status int
	// Transient marks failures that were retried (5xx, transport errors,
	// truncated bodies); permanent failures (4xx) are reported after the
	// first attempt.
	Transient bool
	Err       error
}

func (e *FetchError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("httpstream: GET %s: %s failure after %d attempt(s): %v", e.Path, kind, e.Attempts, e.Err)
}

func (e *FetchError) Unwrap() error { return e.Err }
