// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each harness
// returns structured results — a Table for tabular data or a Series for
// figure curves — that the nervebench command renders; bench_test.go wires
// one benchmark per experiment.
//
// Every harness accepts Options; Quick mode shrinks the workload so the
// whole suite runs in CI-scale time while preserving each result's shape.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Options configures a harness run.
type Options struct {
	// Quick shrinks workloads (smaller frames, fewer seeds/chunks) for
	// tests; full-size runs reproduce the paper-scale setup.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// OutDir receives visualisation artefacts (PGM images); empty
	// disables writing.
	OutDir string
}

// Table is a titled rows×columns result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes document shape expectations and substitutions.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Series is figure data: one X axis and one or more named Y columns.
type Series struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	X       []float64
	Y       [][]float64 // Y[i][j] = column i at X[j]
	Notes   []string
}

// Fprint renders the series as a text table of curves.
func (s *Series) Fprint(w io.Writer) {
	t := Table{ID: s.ID, Title: s.Title, Header: append([]string{s.XLabel}, s.Columns...), Notes: s.Notes}
	for j := range s.X {
		row := []string{fmt.Sprintf("%.3g", s.X[j])}
		for i := range s.Columns {
			v := ""
			if i < len(s.Y) && j < len(s.Y[i]) {
				v = fmt.Sprintf("%.4g", s.Y[i][j])
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
}

// Col returns the index of a named column, or -1.
func (s *Series) Col(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}
