// Package vmath provides the dense 2-D float32 image ("plane") type and the
// numerical kernels shared by every image-processing module in NERVE:
// resampling, separable convolution, gradients, pixel shuffle and the
// Charbonnier loss used to train and evaluate the neural modules.
//
// Planes store pixels in row-major order in the nominal 8-bit range
// [0, 255], but nothing in the package enforces that range; intermediate
// results (residuals, gradients, flow fields) routinely leave it.
//
// Every hot kernel comes in two forms: an allocating convenience form
// (ResizeBilinear, Convolve, UnsharpMask, …) and a destination-passing
// "Into" form (ResizeBilinearInto, ConvolveInto, …) that writes into a
// caller-supplied plane, usually one obtained from the plane Pool
// (Get/Put). The Into forms allocate nothing and are what the per-frame
// pipeline uses to reach a zero-allocation steady state; the allocating
// forms are thin wrappers that remain for tests and cold paths. Unless a
// kernel's doc comment says otherwise, dst must not alias src.
package vmath

import (
	"fmt"
	"math"
)

// Plane is a dense 2-D float32 image. The zero value is an empty plane.
// Pix has length W*H and is stored row-major: Pix[y*W+x].
type Plane struct {
	W, H int
	Pix  []float32
}

// NewPlane allocates a zeroed W×H plane. It panics if either dimension is
// negative; a zero dimension yields an empty, usable plane.
func NewPlane(w, h int) *Plane {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vmath: invalid plane size %dx%d", w, h))
	}
	planeAllocs.Add(1)
	return &Plane{W: w, H: h, Pix: make([]float32, w*h)}
}

// FromSlice wraps pix (length w*h, row-major) in a Plane without copying.
func FromSlice(w, h int, pix []float32) *Plane {
	if len(pix) != w*h {
		panic(fmt.Sprintf("vmath: FromSlice length %d != %d*%d", len(pix), w, h))
	}
	return &Plane{W: w, H: h, Pix: pix}
}

// Clone returns a deep copy of p.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.W, p.H)
	copy(q.Pix, p.Pix)
	return q
}

// CopyFrom copies src's pixels into p without allocating. Both planes must
// share dimensions. It returns p for chaining. This is the Into form of
// Clone: persistent state (SR history, extractor history) holds a pooled
// plane and refreshes it with CopyFrom each frame.
func (p *Plane) CopyFrom(src *Plane) *Plane {
	checkSameSize(p, src)
	copy(p.Pix, src.Pix)
	return p
}

// At returns the pixel at (x, y). It does not bounds-check; use AtClamp for
// coordinates that may fall outside the plane.
func (p *Plane) At(x, y int) float32 { return p.Pix[y*p.W+x] }

// Set stores v at (x, y).
func (p *Plane) Set(x, y int, v float32) { p.Pix[y*p.W+x] = v }

// AtClamp returns the pixel at (x, y) with coordinates clamped to the plane
// boundary (replicate padding).
func (p *Plane) AtClamp(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// Fill sets every pixel to v.
func (p *Plane) Fill(v float32) {
	for i := range p.Pix {
		p.Pix[i] = v
	}
}

// Clamp255 clamps every pixel into the displayable [0, 255] range in place
// and returns p for chaining.
func (p *Plane) Clamp255() *Plane {
	for i, v := range p.Pix {
		if v < 0 {
			p.Pix[i] = 0
		} else if v > 255 {
			p.Pix[i] = 255
		}
	}
	return p
}

// Add stores a+b into dst (allocating when dst is nil) and returns dst.
// All three planes must share dimensions. Add, Sub, Lerp and LerpMask are
// purely elementwise, so dst MAY alias any operand.
func Add(dst, a, b *Plane) *Plane {
	checkSameSize(a, b)
	dst = ensure(dst, a.W, a.H)
	for i := range a.Pix {
		dst.Pix[i] = a.Pix[i] + b.Pix[i]
	}
	return dst
}

// Sub stores a-b into dst (allocating when dst is nil) and returns dst.
func Sub(dst, a, b *Plane) *Plane {
	checkSameSize(a, b)
	dst = ensure(dst, a.W, a.H)
	for i := range a.Pix {
		dst.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return dst
}

// Scale multiplies every pixel of p by s in place and returns p.
func (p *Plane) Scale(s float32) *Plane {
	for i := range p.Pix {
		p.Pix[i] *= s
	}
	return p
}

// AddScaled adds s*q to p in place (p += s*q) and returns p.
func (p *Plane) AddScaled(q *Plane, s float32) *Plane {
	checkSameSize(p, q)
	for i := range p.Pix {
		p.Pix[i] += s * q.Pix[i]
	}
	return p
}

// Lerp blends a and b with per-plane weight w (dst = (1-w)*a + w*b).
func Lerp(dst, a, b *Plane, w float32) *Plane {
	checkSameSize(a, b)
	dst = ensure(dst, a.W, a.H)
	for i := range a.Pix {
		dst.Pix[i] = a.Pix[i] + w*(b.Pix[i]-a.Pix[i])
	}
	return dst
}

// LerpMask blends a and b with a per-pixel weight plane
// (dst = (1-w)*a + w*b). w is typically a soft mask in [0,1].
func LerpMask(dst, a, b, w *Plane) *Plane {
	checkSameSize(a, b)
	checkSameSize(a, w)
	dst = ensure(dst, a.W, a.H)
	for i := range a.Pix {
		dst.Pix[i] = a.Pix[i] + w.Pix[i]*(b.Pix[i]-a.Pix[i])
	}
	return dst
}

// Mean returns the average pixel value, or 0 for an empty plane.
func (p *Plane) Mean() float64 {
	if len(p.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range p.Pix {
		s += float64(v)
	}
	return s / float64(len(p.Pix))
}

// MinMax returns the smallest and largest pixel values. For an empty plane
// it returns (0, 0).
func (p *Plane) MinMax() (min, max float32) {
	if len(p.Pix) == 0 {
		return 0, 0
	}
	min, max = p.Pix[0], p.Pix[0]
	for _, v := range p.Pix[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// MSE returns the mean squared error between a and b.
func MSE(a, b *Plane) float64 {
	checkSameSize(a, b)
	if len(a.Pix) == 0 {
		return 0
	}
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		s += d * d
	}
	return s / float64(len(a.Pix))
}

// MAE returns the mean absolute error between a and b.
func MAE(a, b *Plane) float64 {
	checkSameSize(a, b)
	if len(a.Pix) == 0 {
		return 0
	}
	var s float64
	for i := range a.Pix {
		s += math.Abs(float64(a.Pix[i] - b.Pix[i]))
	}
	return s / float64(len(a.Pix))
}

// Charbonnier returns the Charbonnier loss sqrt(diff² + eps²) averaged over
// all pixels — the optimisation metric the paper uses for both the recovery
// and SR networks. eps defaults to 1e-3 when non-positive.
func Charbonnier(a, b *Plane, eps float64) float64 {
	checkSameSize(a, b)
	if len(a.Pix) == 0 {
		return 0
	}
	if eps <= 0 {
		eps = 1e-3
	}
	e2 := eps * eps
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		s += math.Sqrt(d*d + e2)
	}
	return s / float64(len(a.Pix))
}

// SampleBilinear samples p at the continuous coordinate (x, y) with bilinear
// interpolation and replicate padding at the border.
func (p *Plane) SampleBilinear(x, y float32) float32 {
	x0 := int(math.Floor(float64(x)))
	y0 := int(math.Floor(float64(y)))
	fx := x - float32(x0)
	fy := y - float32(y0)
	v00 := p.AtClamp(x0, y0)
	v10 := p.AtClamp(x0+1, y0)
	v01 := p.AtClamp(x0, y0+1)
	v11 := p.AtClamp(x0+1, y0+1)
	top := v00 + fx*(v10-v00)
	bot := v01 + fx*(v11-v01)
	return top + fy*(bot-top)
}

// SubPlane copies the rectangle with top-left (x0, y0) and size w×h into a
// new plane. The rectangle is clamped to p's bounds; out-of-range source
// pixels replicate the border.
func (p *Plane) SubPlane(x0, y0, w, h int) *Plane {
	q := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			q.Pix[y*w+x] = p.AtClamp(x0+x, y0+y)
		}
	}
	return q
}

// Paste copies src into p with its top-left corner at (x0, y0), clipping to
// p's bounds.
func (p *Plane) Paste(src *Plane, x0, y0 int) {
	for y := 0; y < src.H; y++ {
		ty := y0 + y
		if ty < 0 || ty >= p.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			tx := x0 + x
			if tx < 0 || tx >= p.W {
				continue
			}
			p.Pix[ty*p.W+tx] = src.Pix[y*src.W+x]
		}
	}
}

func ensure(dst *Plane, w, h int) *Plane {
	if dst == nil {
		return NewPlane(w, h)
	}
	if dst.W != w || dst.H != h {
		panic(fmt.Sprintf("vmath: dst size %dx%d != %dx%d", dst.W, dst.H, w, h))
	}
	return dst
}

func checkSameSize(a, b *Plane) {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("vmath: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
}
