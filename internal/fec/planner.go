package fec

import (
	"fmt"
	"sort"
)

// Planner is the offline lookup table from §4: for each anticipated network
// loss rate it stores the FEC redundancy level that maximised QoE in
// offline trials. At run time the client predicts the next chunk's loss
// rate and indexes the table.
type Planner struct {
	losses []float64 // ascending
	best   []float64 // redundancy chosen for each loss rate
}

// BuildPlanner evaluates every (lossRate, redundancy) pair with eval (which
// returns the achieved QoE) and records, per loss rate, the redundancy with
// the highest QoE. lossRates need not be sorted; redundancies must be
// non-empty.
func BuildPlanner(lossRates, redundancies []float64, eval func(loss, redundancy float64) float64) (*Planner, error) {
	if len(lossRates) == 0 || len(redundancies) == 0 {
		return nil, fmt.Errorf("fec: planner needs loss rates and redundancies")
	}
	type entry struct{ loss, best float64 }
	entries := make([]entry, 0, len(lossRates))
	for _, l := range lossRates {
		bestRed := redundancies[0]
		bestQoE := eval(l, redundancies[0])
		for _, r := range redundancies[1:] {
			if q := eval(l, r); q > bestQoE {
				bestQoE, bestRed = q, r
			}
		}
		entries = append(entries, entry{l, bestRed})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].loss < entries[j].loss })
	p := &Planner{}
	for _, e := range entries {
		p.losses = append(p.losses, e.loss)
		p.best = append(p.best, e.best)
	}
	return p, nil
}

// NewPlannerFromTable builds a planner directly from a loss→redundancy
// table (used to ship calibrated defaults). Entries are sorted by loss.
func NewPlannerFromTable(table map[float64]float64) *Planner {
	p := &Planner{}
	losses := make([]float64, 0, len(table))
	for l := range table {
		losses = append(losses, l)
	}
	sort.Float64s(losses)
	for _, l := range losses {
		p.losses = append(p.losses, l)
		p.best = append(p.best, table[l])
	}
	return p
}

// Redundancy returns the planned redundancy for a predicted loss rate,
// linearly interpolating between table entries and clamping at the ends.
func (p *Planner) Redundancy(predictedLoss float64) float64 {
	if len(p.losses) == 0 {
		return 0
	}
	if predictedLoss <= p.losses[0] {
		return p.best[0]
	}
	n := len(p.losses)
	if predictedLoss >= p.losses[n-1] {
		return p.best[n-1]
	}
	i := sort.SearchFloat64s(p.losses, predictedLoss)
	// p.losses[i-1] < predictedLoss <= p.losses[i]
	l0, l1 := p.losses[i-1], p.losses[i]
	f := (predictedLoss - l0) / (l1 - l0)
	return p.best[i-1] + f*(p.best[i]-p.best[i-1])
}

// Table returns the planner's (loss, redundancy) pairs in ascending loss
// order, for inspection and persistence.
func (p *Planner) Table() (losses, redundancies []float64) {
	return append([]float64(nil), p.losses...), append([]float64(nil), p.best...)
}

// DefaultPlanner returns the calibrated default table: redundancy ≈ 5× the
// loss rate (the paper's Fig. 1/2 finding that FEC must be about five times
// the packet loss rate to recover frames), capped at 60%.
func DefaultPlanner() *Planner {
	table := map[float64]float64{}
	for _, l := range []float64{0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12} {
		r := 5 * l
		if r > 0.6 {
			r = 0.6
		}
		table[l] = r
	}
	return NewPlannerFromTable(table)
}
