package httpstream

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"nerve/internal/codec"
	"nerve/internal/metrics"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		W: 96, H: 64, ChunkSeconds: 0.5, Chunks: 3,
		Rates:  []int{200, 600},
		Source: video.NewGenerator(video.Categories()[2], 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestManifestEndpoint(t *testing.T) {
	_, ts := testServer(t)
	cli, err := NewClient(ts.URL, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	m := cli.Manifest()
	if m.Width != 96 || m.Height != 64 || m.Chunks != 3 || len(m.RatesKbps) != 2 {
		t.Fatalf("manifest %+v", m)
	}
}

func TestStreamCleanPlayback(t *testing.T) {
	srv, ts := testServer(t)
	cli, err := NewClient(ts.URL, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	gen := video.NewGenerator(video.Categories()[2], 7)
	fpc := srv.framesPerChunk()
	var s metrics.Series
	for n := 0; n < 3; n++ {
		res, err := cli.PlayChunk(n, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Frames) != fpc {
			t.Fatalf("chunk %d: %d frames want %d", n, len(res.Frames), fpc)
		}
		if res.Bytes <= 0 {
			t.Fatalf("chunk %d: no bytes", n)
		}
		for i, f := range res.Frames {
			src := gen.Render(n*fpc+i, 96, 64)
			s.ObserveFrames(src, f)
		}
	}
	if p := s.MeanPSNR(); p < 26 {
		t.Fatalf("HTTP playback quality %.2f dB", p)
	}
}

func TestStreamRecoversLostChunk(t *testing.T) {
	srv, ts := testServer(t)
	recover := func(enable bool) float64 {
		cli, err := NewClient(ts.URL, nil, enable)
		if err != nil {
			t.Fatal(err)
		}
		gen := video.NewGenerator(video.Categories()[2], 7)
		fpc := srv.framesPerChunk()
		var s metrics.Series
		for n := 0; n < 3; n++ {
			res, err := cli.PlayChunk(n, 1, n == 1) // chunk 1 lost
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				continue
			}
			for i, f := range res.Frames {
				s.ObserveFrames(gen.Render(n*fpc+i, 96, 64), f)
			}
		}
		return s.MeanPSNR()
	}
	withRC := recover(true)
	withoutRC := recover(false)
	t.Logf("lost chunk: recovery %.2f dB, reuse %.2f dB", withRC, withoutRC)
	if withRC <= withoutRC-0.5 {
		t.Fatalf("recovery (%.2f) clearly below reuse (%.2f) over HTTP", withRC, withoutRC)
	}
	if withRC < 15 {
		t.Fatalf("recovered chunk unusable: %.2f dB", withRC)
	}
}

func TestRatesDiffer(t *testing.T) {
	_, ts := testServer(t)
	cli, err := NewClient(ts.URL, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	low, err := cli.PlayChunk(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cli2, err := NewClient(ts.URL, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	high, err := cli2.PlayChunk(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if high.Bytes <= low.Bytes {
		t.Fatalf("rate 1 (%d B) not larger than rate 0 (%d B)", high.Bytes, low.Bytes)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		// Out-of-range rate/chunk → 404; malformed queries → 400.
		{"/segment?rate=9&n=0", http.StatusNotFound},
		{"/segment?rate=0&n=99", http.StatusNotFound},
		{"/segment?rate=-1&n=0", http.StatusNotFound},
		{"/segment?rate=x&n=0", http.StatusBadRequest},
		{"/codes?n=99", http.StatusNotFound},
		{"/codes?n=x", http.StatusBadRequest},
		{"/nope", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestInternalErrorsAre500(t *testing.T) {
	srv, ts := testServer(t)
	srv.testErr = fmt.Errorf("injected encode failure")
	for _, path := range []string{"/segment?rate=0&n=0", "/codes?n=0"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s: status %d want 500", path, resp.StatusCode)
		}
	}
	// Internal failures must not poison the cache: clearing the fault
	// makes the same requests succeed.
	srv.testErr = nil
	for _, path := range []string{"/segment?rate=0&n=0", "/codes?n=0"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s after recovery: status %d want 200", path, resp.StatusCode)
		}
	}
}

func TestEncodedFrameWireRoundTrip(t *testing.T) {
	g := video.NewGenerator(video.Categories()[0], 1)
	enc := codec.NewEncoder(codec.Config{W: 96, H: 64, TargetBitrate: 600e3, PacketPayload: 200})
	ef := enc.Encode(g.Render(0, 96, 64))
	wire, err := ef.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back codec.EncodedFrame
	if err := back.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if back.Index != ef.Index || back.Type != ef.Type || back.W != ef.W || back.H != ef.H {
		t.Fatal("header mismatch")
	}
	if len(back.Slices) != len(ef.Slices) {
		t.Fatalf("slices %d vs %d", len(back.Slices), len(ef.Slices))
	}
	// Decoding the deserialised frame must reproduce the reconstruction.
	dec := codec.NewDecoder(codec.Config{W: 96, H: 64})
	res, err := dec.Decode(&back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := vmath.MAE(res.Frame, ef.Recon); d > 1e-4 {
		t.Fatalf("wire round trip decode mismatch: %v", d)
	}
}

func TestEncodedFrameWireErrors(t *testing.T) {
	var f codec.EncodedFrame
	if err := f.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := f.UnmarshalBinary(make([]byte, 20)); err == nil {
		t.Fatal("bad magic accepted")
	}
	g := video.NewGenerator(video.Categories()[0], 2)
	enc := codec.NewEncoder(codec.Config{W: 64, H: 64, TargetBitrate: 400e3})
	wire, err := enc.Encode(g.Render(0, 64, 64)).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(wire[:len(wire)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := f.UnmarshalBinary(append(wire, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPlayAllAdapts(t *testing.T) {
	srv, ts := testServer(t)
	// Warm the cache so fetch times measure transfer, not the one-off
	// lazy encode (which dwarfs it under -race).
	for rate := range srv.Manifest().RatesKbps {
		for n := 0; n < srv.Manifest().Chunks; n++ {
			if _, err := srv.segment(context.Background(), rate, n); err != nil {
				t.Fatal(err)
			}
		}
	}
	cli, err := NewClient(ts.URL, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Local httptest transfers are effectively infinite-rate, so the
	// adaptive loop should climb off the lowest rung after chunk 0.
	results, err := cli.PlayAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("played %d chunks", len(results))
	}
	if results[0].Rate != 0 {
		t.Fatalf("first chunk rate %d, want conservative 0", results[0].Rate)
	}
	if results[len(results)-1].Rate == 0 {
		t.Fatal("adaptive loop never climbed off the lowest rung")
	}
}
