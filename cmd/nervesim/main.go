// Command nervesim runs one streaming session of a chosen scheme over a
// synthetic network trace and prints the per-chunk time line plus the
// session QoE summary. With -matrix it instead runs the full cross-layer
// ABR × trace × loss matrix and writes the results JSON.
//
// Usage:
//
//	nervesim -net 5g -scheme full -seconds 240 -seed 7
//	nervesim -net 4g -scheme worc -loss-scale 6
//	nervesim -net 4g -scheme full -fec -packet -abr bba2-loss -loss-scale 6
//	nervesim -net 4g -scheme full -fec -packet -qlog events.jsonl
//	nervesim -matrix -json results/abr_matrix.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nerve"
)

func schemeByName(set nerve.SchemeSet, name string) (nerve.Scheme, error) {
	switch strings.ToLower(name) {
	case "worc", "w/o-rc":
		return set.WithoutRecovery(), nil
	case "reuse":
		return set.WithoutRecoveryReuse(), nil
	case "rc":
		return set.RecoveryAlone(), nil
	case "rcaware":
		return set.RecoveryAware(), nil
	case "wosr":
		return set.WithoutSR(), nil
	case "sr":
		return set.SRAlone(), nil
	case "nemo":
		return set.NEMO(), nil
	case "sraware":
		return set.SRAware(), nil
	case "baseline":
		return set.Baseline(), nil
	case "both":
		return set.BothAlone(), nil
	case "full", "our":
		return set.Full(), nil
	default:
		return nerve.Scheme{}, fmt.Errorf("unknown scheme %q (worc, reuse, rc, rcaware, wosr, sr, nemo, sraware, baseline, both, full)", name)
	}
}

func netByName(name string) (nerve.NetworkType, error) {
	switch strings.ToLower(name) {
	case "3g":
		return nerve.Net3G, nil
	case "4g":
		return nerve.Net4G, nil
	case "5g":
		return nerve.Net5G, nil
	case "wifi":
		return nerve.NetWiFi, nil
	default:
		return 0, fmt.Errorf("unknown network %q (3g, 4g, 5g, wifi)", name)
	}
}

func main() {
	var (
		netName   = flag.String("net", "5g", "network type: 3g, 4g, 5g, wifi")
		scheme    = flag.String("scheme", "full", "client scheme")
		abrName   = flag.String("abr", "", "override the scheme's ABR controller (see TRANSPORT_EVENTS.md and EXPERIMENTS.md): "+strings.Join(nerve.ABRNames(), ", "))
		seconds   = flag.Float64("seconds", 240, "trace duration")
		seed      = flag.Int64("seed", 1, "random seed")
		lossScale = flag.Float64("loss-scale", 1, "loss multiplier (lossy experiments use 6)")
		fecOn     = flag.Bool("fec", false, "enable planned FEC")
		packet    = flag.Bool("packet", false, "packet-accurate transport (event-driven netem)")
		qlogPath  = flag.String("qlog", "", "write the transport qlog event stream (JSON lines, TRANSPORT_EVENTS.md) to this file; implies -packet")
		matrix    = flag.Bool("matrix", false, "run the cross-layer ABR x trace x loss matrix instead of one session")
		jsonPath  = flag.String("json", "", "with -matrix: write the results JSON to this file (e.g. results/abr_matrix.json)")
		quick     = flag.Bool("quick", false, "with -matrix: shrink the matrix to CI scale")
		verbose   = flag.Bool("v", false, "print per-chunk lines")
	)
	flag.Parse()

	if *matrix {
		res := nerve.RunABRMatrix(nerve.ExperimentOptions{Quick: *quick, Seed: *seed}, os.Stdout)
		if *jsonPath != "" {
			if err := res.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, "nervesim:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d cells)\n", *jsonPath, len(res.Cells))
		}
		return
	}

	nt, err := netByName(*netName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nervesim:", err)
		os.Exit(2)
	}
	set := nerve.NewSchemeSet()
	set.UseFEC = *fecOn
	sc, err := schemeByName(set, *scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nervesim:", err)
		os.Exit(2)
	}
	sc.UseFEC = *fecOn
	if *abrName != "" {
		alg := nerve.ABRByName(*abrName)
		if alg == nil {
			fmt.Fprintf(os.Stderr, "nervesim: unknown ABR %q (known: %s)\n", *abrName, strings.Join(nerve.ABRNames(), ", "))
			os.Exit(2)
		}
		sc.ABR = alg
	}

	cfg := nerve.SimConfig{
		Trace: nerve.GenerateTrace(nt, *seconds, *seed).Downscale(1.5e6, 0.3e6, 5e6),
		Seed:  *seed, LossScale: *lossScale, PacketAccurate: *packet,
	}
	var qlogFile *os.File
	if *qlogPath != "" {
		cfg.PacketAccurate = true
		qlogFile, err = os.Create(*qlogPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nervesim:", err)
			os.Exit(1)
		}
		cfg.QLogSink = qlogFile
	}
	res := nerve.Simulate(cfg, sc)
	if qlogFile != nil {
		if err := qlogFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nervesim:", err)
			os.Exit(1)
		}
	}

	if *verbose {
		fmt.Println("  t(s)   tput(Mbps)  rate  rebuf(s)  chunkQoE")
		for _, p := range res.Series {
			fmt.Printf("%7.1f  %9.2f  %4d  %8.3f  %8.3f\n",
				p.Time, p.ThroughputBps/1e6, p.RateIndex, p.RebufferSec, p.QoE)
		}
	}
	fmt.Printf("scheme=%s net=%s chunks=%d\n", sc.Name, nt, len(res.Series))
	if *abrName != "" {
		fmt.Printf("abr=%s\n", sc.ABR.Name())
	}
	fmt.Printf("QoE            %8.3f\n", res.QoE)
	fmt.Printf("recovered      %7.1f%%\n", res.RecoveredFrac*100)
	fmt.Printf("super-resolved %7.1f%%\n", res.SRFrac*100)
	fmt.Printf("mean stall     %8.3fs/chunk\n", res.MeanStall)
	if *fecOn {
		fmt.Printf("mean FEC       %7.1f%%\n", res.MeanRedundancy*100)
	}
	if *qlogPath != "" {
		fmt.Printf("qlog           %s\n", *qlogPath)
	}
}
