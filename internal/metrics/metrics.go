// Package metrics implements the video-quality metrics the paper reports:
// PSNR (peak signal-to-noise ratio) and SSIM (structural similarity), both
// computed on luma planes in the 8-bit range with peak value 255.
package metrics

import (
	"fmt"
	"math"

	"nerve/internal/vmath"
)

// Peak is the maximum pixel value assumed by PSNR and SSIM.
const Peak = 255.0

// MaxPSNR is the ceiling PSNR reports: identical planes would be +Inf,
// which encoding/json refuses to serialise (results emitters write PSNR
// into JSON artefacts), so the metric saturates at 100 dB — far above any
// lossy-path value, and finite everywhere.
const MaxPSNR = 100.0

// PSNR returns the peak signal-to-noise ratio between a reference and a
// distorted plane, in dB, clamped to MaxPSNR (identical planes return
// MaxPSNR, not +Inf, so results serialise as valid JSON).
func PSNR(ref, dist *vmath.Plane) float64 {
	mse := vmath.MSE(ref, dist)
	if mse == 0 {
		return MaxPSNR
	}
	p := 10 * math.Log10(Peak*Peak/mse)
	if p > MaxPSNR {
		return MaxPSNR
	}
	return p
}

// ssimConsts are the standard stabilising constants from Wang et al. 2004.
var (
	ssimC1 = (0.01 * Peak) * (0.01 * Peak)
	ssimC2 = (0.03 * Peak) * (0.03 * Peak)
)

// SSIM returns the mean structural similarity index between ref and dist
// using an 11-tap Gaussian window (sigma 1.5), the reference configuration
// from the original SSIM paper. Values are in (-1, 1]; 1 means identical.
func SSIM(ref, dist *vmath.Plane) float64 {
	if ref.W != dist.W || ref.H != dist.H {
		panic(fmt.Sprintf("metrics: SSIM size mismatch %dx%d vs %dx%d", ref.W, ref.H, dist.W, dist.H))
	}
	if ref.W == 0 || ref.H == 0 {
		return 1
	}
	taps := gaussian11()
	mu1 := vmath.ConvolveSeparable(ref, taps, taps)
	mu2 := vmath.ConvolveSeparable(dist, taps, taps)

	sq1 := mul(ref, ref)
	sq2 := mul(dist, dist)
	x12 := mul(ref, dist)

	sigma1 := vmath.ConvolveSeparable(sq1, taps, taps)
	sigma2 := vmath.ConvolveSeparable(sq2, taps, taps)
	sigma12 := vmath.ConvolveSeparable(x12, taps, taps)

	var sum float64
	for i := range ref.Pix {
		m1 := float64(mu1.Pix[i])
		m2 := float64(mu2.Pix[i])
		s1 := float64(sigma1.Pix[i]) - m1*m1
		s2 := float64(sigma2.Pix[i]) - m2*m2
		s12 := float64(sigma12.Pix[i]) - m1*m2
		num := (2*m1*m2 + ssimC1) * (2*s12 + ssimC2)
		den := (m1*m1 + m2*m2 + ssimC1) * (s1 + s2 + ssimC2)
		sum += num / den
	}
	return sum / float64(len(ref.Pix))
}

func gaussian11() []float32 {
	// 11-tap Gaussian, sigma = 1.5, normalised.
	taps := make([]float32, 11)
	var sum float64
	for i := -5; i <= 5; i++ {
		v := math.Exp(-float64(i*i) / (2 * 1.5 * 1.5))
		taps[i+5] = float32(v)
		sum += v
	}
	for i := range taps {
		taps[i] = float32(float64(taps[i]) / sum)
	}
	return taps
}

func mul(a, b *vmath.Plane) *vmath.Plane {
	out := vmath.NewPlane(a.W, a.H)
	for i := range a.Pix {
		out.Pix[i] = a.Pix[i] * b.Pix[i]
	}
	return out
}

// Series accumulates per-frame quality measurements and reports aggregates.
// The zero value is ready to use.
type Series struct {
	psnr []float64
	ssim []float64
}

// Observe records one frame's PSNR and SSIM. PSNR values above MaxPSNR
// (including +Inf from external sources) are recorded as MaxPSNR so that
// means stay finite.
func (s *Series) Observe(psnr, ssim float64) {
	if math.IsInf(psnr, 1) || psnr > MaxPSNR {
		psnr = MaxPSNR
	}
	s.psnr = append(s.psnr, psnr)
	s.ssim = append(s.ssim, ssim)
}

// ObserveFrames measures ref vs dist and records the result.
func (s *Series) ObserveFrames(ref, dist *vmath.Plane) {
	s.Observe(PSNR(ref, dist), SSIM(ref, dist))
}

// Len returns the number of recorded frames.
func (s *Series) Len() int { return len(s.psnr) }

// MeanPSNR returns the average PSNR across recorded frames (0 if empty).
func (s *Series) MeanPSNR() float64 { return mean(s.psnr) }

// MeanSSIM returns the average SSIM across recorded frames (0 if empty).
func (s *Series) MeanSSIM() float64 { return mean(s.ssim) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
