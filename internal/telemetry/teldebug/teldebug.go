// Package teldebug serves the telemetry registry over HTTP for live
// inspection of a running process — the opt-in `nerved -debug-addr`
// surface. It is a separate package so that the hot-path packages, which
// import internal/telemetry, do not pull net/http (and the DefaultServeMux
// side effects of expvar and net/http/pprof) into every binary.
//
// Handler serves:
//
//	/debug/telemetry   telemetry.Default snapshot as indented JSON
//	                   (the BENCH_telemetry.json schema)
//	/debug/vars        expvar, including the "nerve_telemetry" variable
//	/debug/pprof/*     the standard pprof profiles
package teldebug

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"

	"nerve/internal/telemetry"
)

// publishOnce guards the expvar registration: expvar panics on duplicate
// names, and Handler may be called more than once per process.
var publishOnce sync.Once

// Handler returns the debug mux. The telemetry snapshot is computed per
// request, so polling /debug/telemetry watches the aggregates move.
func Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("nerve_telemetry", expvar.Func(func() any {
			return telemetry.Default.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", index)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", serveTelemetry)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func serveTelemetry(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.Default.WriteJSON(w); err != nil {
		// Headers are already out; nothing useful left to do.
		return
	}
}

func index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "nerve debug endpoints:\n"+
		"  /debug/telemetry  stage timings, counters, frame deadline (JSON)\n"+
		"  /debug/vars       expvar (includes nerve_telemetry)\n"+
		"  /debug/pprof/     CPU/heap/goroutine profiles\n")
}
