// Package codec implements the hybrid block-transform video codec that
// stands in for VP9/H.264 in the NERVE reproduction (see DESIGN.md §1).
//
// It is a real, if compact, codec: 16×16 motion-compensated macroblocks,
// 8×8 AAN butterfly DCT of intra pixels or inter residuals (reference
// basis-matrix transforms are kept as test oracles and behind the codecref
// build tag), frequency-weighted uniform quantisation, zigzag run/level
// entropy coding with Exp-Golomb codes, GOP structure with periodic intra
// frames, per-frame rate control toward a target bitrate, and slice-based
// packetisation so that packet loss yields partially decodable frames (the
// Ipart input of the recovery model).
package codec

import "math"

const blockSize = 8

// dctBasis[u][x] = C(u)·cos((2x+1)uπ/16) — the 1-D orthonormal DCT-II
// basis, used by the reference transforms.
var dctBasis = makeDCTBasis()

func makeDCTBasis() (b [blockSize][blockSize]float32) {
	for u := 0; u < blockSize; u++ {
		c := math.Sqrt(2.0 / blockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for x := 0; x < blockSize; x++ {
			b[u][x] = float32(c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*blockSize)))
		}
	}
	return b
}

// fdct8Ref computes the 2-D forward DCT of an 8×8 block (row-major in/out)
// by direct basis-matrix multiplication: the unscaled orthonormal DCT-II.
// It is the differential-test oracle for the AAN fast path and the active
// transform in `-tags codecref` builds.
func fdct8Ref(in, out *[64]float32) {
	var tmp [64]float32
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float32
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * dctBasis[u][x]
			}
			tmp[y*8+u] = s
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float32
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctBasis[v][y]
			}
			out[v*8+u] = s
		}
	}
}

// idct8Ref computes the 2-D inverse DCT of an 8×8 coefficient block by
// direct basis-matrix multiplication (oracle / codecref twin of fdct8Ref).
func idct8Ref(in, out *[64]float32) {
	var tmp [64]float32
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float32
			for v := 0; v < 8; v++ {
				s += in[v*8+u] * dctBasis[v][y]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float32
			for u := 0; u < 8; u++ {
				s += tmp[y*8+u] * dctBasis[u][x]
			}
			out[y*8+x] = s
		}
	}
}

// transformSet bundles a forward/inverse transform pair with its diagonal
// scaling, folded into the quantiser tables (see DESIGN.md §10):
//
//   - fdct produces fwdScale[i]·X[i] where X is the orthonormal DCT; idct
//     expects invScale[i]·X[i] as input. The reference set has all-ones
//     scales; the AAN set has fwdScale = 8·aan[u]·aan[v] and
//     invScale = aan[u]·aan[v]/8, so invScale/fwdScale = 1/64 uniformly.
//   - quantRecip[i] = 1/(quantWeight[i]·fwdScale[i]) and
//     dequantStep[i] = quantWeight[i]·invScale[i] make quantise/dequantise
//     produce the same integer levels and the same reconstructed true
//     coefficients as the unscaled transform would — scaling costs zero
//     extra multiplies, and bitstreams are interchangeable across sets.
type transformSet struct {
	fdct, idct func(in, out *[64]float32)
	// fdct4x/idct4x, when non-nil, transform four blocks per call — the
	// packed SWAR tier (dct_int4x.go) uses them to run one lane per block
	// of a macroblock. Semantics per block are identical to fdct/idct;
	// the macroblock coders batch through them when present.
	fdct4x, idct4x func(in, out *[4][64]float32)
	fwdScale       [64]float32
	invScale       [64]float32
	quantRecip     [64]float32
	dequantStep    [64]float32
}

// xf is the active transform set. It is chosen at build time by
// defaultTransforms (AAN unless built with -tags codecref) and swapped only
// by the package's own parity tests.
var xf = defaultTransforms()

func newTransformSet(fdct, idct func(in, out *[64]float32), fwd, inv [64]float32) transformSet {
	ts := transformSet{fdct: fdct, idct: idct, fwdScale: fwd, invScale: inv}
	for i := range ts.quantRecip {
		ts.quantRecip[i] = 1 / (quantWeight[i] * fwd[i])
		ts.dequantStep[i] = quantWeight[i] * inv[i]
	}
	return ts
}

// refTransforms returns the basis-matrix transform set (unit scales).
func refTransforms() transformSet {
	var one [64]float32
	for i := range one {
		one[i] = 1
	}
	return newTransformSet(fdct8Ref, idct8Ref, one, one)
}

// zigzag is the standard 8×8 zigzag scan order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quantWeight is a JPEG-inspired frequency weighting: low frequencies are
// quantised finely, high frequencies coarsely.
var quantWeight = makeQuantWeight()

func makeQuantWeight() (w [64]float32) {
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			w[v*8+u] = 1 + 0.6*float32(u+v)
		}
	}
	return w
}

// quantise maps fdct output (in the active set's scaled domain) to integer
// levels for quantiser step q: round(X[i] / (q·quantWeight[i])) in the true
// coefficient domain, with the descale folded into quantRecip.
func quantise(coef *[64]float32, q float32, levels *[64]int32) {
	invQ := 1 / q
	for i := 0; i < 64; i++ {
		levels[i] = roundLevel(coef[i] * xf.quantRecip[i] * invQ)
	}
}

// dequantise reconstructs idct input (in the active set's scaled domain)
// from levels.
func dequantise(levels *[64]int32, q float32, coef *[64]float32) {
	for i := 0; i < 64; i++ {
		coef[i] = float32(levels[i]) * q * xf.dequantStep[i]
	}
}

// roundLevel rounds half away from zero, like math.Round, without the
// float64 round trip.
func roundLevel(v float32) int32 {
	if v >= 0 {
		return int32(v + 0.5)
	}
	return int32(v - 0.5)
}
