package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestDeadlineBudget(t *testing.T) {
	r := New()
	if got := r.DeadlineFPS(); got != 30 {
		t.Fatalf("default FPS = %v, want 30", got)
	}
	r.SetDeadlineFPS(50)
	if got := r.FrameBudget(); got != 20*time.Millisecond {
		t.Fatalf("budget at 50 FPS = %v, want 20ms", got)
	}
	if got := r.DeadlineFPS(); got != 50 {
		t.Fatalf("FPS = %v, want 50", got)
	}
}

func TestSetDeadlineFPSPanics(t *testing.T) {
	r := New()
	for _, fps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetDeadlineFPS(%v) did not panic", fps)
				}
			}()
			r.SetDeadlineFPS(fps)
		}()
	}
}

// TestDeadlineOverrunCounting feeds deterministic frame times against a
// 20 ms budget: frames at or under budget are clean, frames over it count
// as overruns and record their overrun amount (duration minus budget).
func TestDeadlineOverrunCounting(t *testing.T) {
	r := New()
	r.Enable(true)
	r.SetDeadlineFPS(50) // 20 ms budget
	frames := []time.Duration{
		5 * time.Millisecond,  // clean
		20 * time.Millisecond, // exactly on budget: clean
		21 * time.Millisecond, // 1 ms over
		45 * time.Millisecond, // 25 ms over
		10 * time.Millisecond, // clean
	}
	for _, d := range frames {
		r.ObserveFrame(d)
	}
	if got := r.Frames(); got != int64(len(frames)) {
		t.Fatalf("Frames = %d, want %d", got, len(frames))
	}
	if got := r.Overruns(); got != 2 {
		t.Fatalf("Overruns = %d, want 2", got)
	}
	if got := r.dead.over.Max(); got != 25*time.Millisecond {
		t.Fatalf("worst overrun = %v, want 25ms", got)
	}
	if got := r.dead.frames.Max(); got != 45*time.Millisecond {
		t.Fatalf("worst frame = %v, want 45ms", got)
	}
}

func TestDeadlineOverrunEmitsEvent(t *testing.T) {
	r := New()
	r.Enable(true)
	r.SetDeadlineFPS(100) // 10 ms budget
	var buf bytes.Buffer
	r.SetEventSink(&buf)
	r.ObserveFrame(5 * time.Millisecond) // clean: no event
	r.ObserveFrame(14 * time.Millisecond)
	var ev Event
	if err := json.NewDecoder(&buf).Decode(&ev); err != nil {
		t.Fatalf("decoding overrun event: %v", err)
	}
	if ev.Kind != "deadline_overrun" {
		t.Fatalf("event kind = %q", ev.Kind)
	}
	if math.Abs(ev.Value-4) > 1e-9 { // 14 ms - 10 ms budget = 4 ms over
		t.Fatalf("overrun value = %v ms, want 4", ev.Value)
	}
	if rest := buf.Len(); rest != 0 {
		t.Fatalf("unexpected extra events: %q", buf.String())
	}
}

func TestFrameTimerRecords(t *testing.T) {
	r := New()
	r.Enable(true)
	r.SetDeadlineFPS(1000) // 1 ms budget: the sleep below must overrun
	ft := r.FrameStart()
	time.Sleep(3 * time.Millisecond)
	ft.Done()
	if r.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", r.Frames())
	}
	if r.Overruns() != 1 {
		t.Fatalf("Overruns = %d, want 1 (slept past the 1 ms budget)", r.Overruns())
	}
}
