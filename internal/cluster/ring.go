// Package cluster turns N nerved origins into one horizontally scaled
// origin: every node serves the full HTTP surface, but each (rate, chunk)
// segment — and each chunk's codes payload — has exactly one owner,
// chosen by rendezvous (highest-random-weight) hashing over the live
// membership. A node that receives a request for a key it does not own
// fetches the payload from the owner over the fault-tolerant client path
// (retry/backoff, singleflight-collapsed, LRU-cached); if the owner is
// dead it marks it so, the key rehashes onto the survivors, and the node
// serves the payload from its own local origin — every node carries the
// procedural source, so capacity degrades instead of availability.
//
// Rendezvous hashing is used instead of a token ring because it needs no
// token state to agree on: every node computes owner(key) = argmax
// hash(node, key) over the members it believes are alive, and when a node
// dies only that node's keys move (minimal disruption), each landing on
// its second-highest scorer. Nodes discover deaths independently through
// failed peer fetches, so their membership views converge without any
// coordination channel.
package cluster

import (
	"hash/fnv"
	"sync"
	"time"
)

// DefaultDeadCooldown is how long a node stays suspected dead after a
// failed peer fetch before it is retried. Long enough that a dying node
// is not hammered, short enough that a restarted node rejoins quickly.
const DefaultDeadCooldown = 5 * time.Second

// Ring is the consistent-hash membership view of one node. Safe for
// concurrent use.
type Ring struct {
	mu       sync.RWMutex
	nodes    []string
	dead     map[string]time.Time // node → suspicion expiry
	cooldown time.Duration
	now      func() time.Time
}

// NewRing builds a ring over the given member base URLs. cooldown <= 0
// means DefaultDeadCooldown.
func NewRing(cooldown time.Duration, nodes ...string) *Ring {
	if cooldown <= 0 {
		cooldown = DefaultDeadCooldown
	}
	ns := make([]string, len(nodes))
	copy(ns, nodes)
	return &Ring{
		nodes:    ns,
		dead:     make(map[string]time.Time),
		cooldown: cooldown,
		now:      time.Now,
	}
}

// Owner returns the live member with the highest rendezvous score for
// key. When every member is suspected dead the full membership is used —
// the caller will fail its peer fetch and fall back locally anyway.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	best, bestScore := "", uint64(0)
	alive := 0
	for _, n := range r.nodes {
		if r.suspectedLocked(n) {
			continue
		}
		alive++
		if s := rendezvousScore(n, key); best == "" || s > bestScore {
			best, bestScore = n, s
		}
	}
	if alive == 0 {
		for _, n := range r.nodes {
			if s := rendezvousScore(n, key); best == "" || s > bestScore {
				best, bestScore = n, s
			}
		}
	}
	return best
}

// MarkDead suspects a member for the cooldown period (peer fetch failed
// through the whole retry policy). It reports whether this call newly
// killed the node — the rehash moment, counted once per death.
func (r *Ring) MarkDead(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	wasLive := !r.suspectedLocked(node)
	r.dead[node] = r.now().Add(r.cooldown)
	return wasLive
}

// MarkAlive clears a member's suspicion (a fetch from it succeeded).
func (r *Ring) MarkAlive(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.dead, node)
}

// Alive reports whether a member is currently believed live.
func (r *Ring) Alive(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return !r.suspectedLocked(node)
}

// Live returns the members currently believed live, in membership order.
func (r *Ring) Live() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, n := range r.nodes {
		if !r.suspectedLocked(n) {
			out = append(out, n)
		}
	}
	return out
}

// Nodes returns the full membership, live or not.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

func (r *Ring) suspectedLocked(node string) bool {
	exp, ok := r.dead[node]
	return ok && r.now().Before(exp)
}

// rendezvousScore is the HRW weight of (node, key): FNV-1a over the pair
// (separator so ("ab","c") and ("a","bc") differ) pushed through a
// splitmix64 finalizer. The finalizer matters: raw FNV applied to inputs
// that share a long common suffix keeps the relative ordering of two
// nodes' scores nearly constant across keys, which skews ownership so
// badly that one node of three can own nothing. The avalanche step makes
// the per-key orderings independent.
func rendezvousScore(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(node))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
