// Package transport implements the QUIC-like media transport and the
// reliable side channel of the NERVE system on top of the netem emulator:
// sliding-window transfers with ACKs, packet-loss detection via probe
// timeouts (PTO, as in QUIC loss recovery), retransmission, and
// fire-and-forget datagrams for FEC-protected media. The paper streams
// video over QUIC and ships the 1 KB binary point code over TCP; both map
// onto Conn here (SendReliable is the side channel).
package transport

import (
	"math"

	"nerve/internal/netem"
)

// AckSize is the on-wire size of an acknowledgement packet in bytes.
const AckSize = 40

// HeaderSize is the per-packet transport header overhead in bytes.
const HeaderSize = 28

// Conn is a unidirectional data connection with a reverse ACK path.
// It is driven entirely by the shared netem.Clock.
type Conn struct {
	Clock *netem.Clock
	Fwd   *netem.Link // data direction
	Rev   *netem.Link // ACK direction

	// PTOFactor scales the RTT estimate into the probe timeout
	// (default 1.5, QUIC-ish).
	PTOFactor float64
	// MaxAttempts bounds retransmissions per packet (default 10).
	MaxAttempts int
	// Window is the maximum number of packets in flight for Transfer
	// (default 32).
	Window int

	// Counters.
	TxPackets  int
	Retx       int
	SpuriousRx int
	// LocalDrops counts attempts rejected by the local queue-overflow
	// guard before reaching the wire; these retry after the backlog
	// drains rather than waiting out a full PTO.
	LocalDrops int
}

// NewConn wires a connection over the two links.
func NewConn(clock *netem.Clock, fwd, rev *netem.Link) *Conn {
	return &Conn{Clock: clock, Fwd: fwd, Rev: rev, PTOFactor: 1.5, MaxAttempts: 10, Window: 32}
}

// pto computes the probe timeout for a packet of the given size sent now:
// the RTT estimate scaled by PTOFactor plus the link's current queueing
// backlog and the packet's own serialisation time (QUIC arms the PTO from
// the time the packet actually leaves).
func (c *Conn) pto(size int) float64 {
	now := c.Clock.Now()
	rtt := c.Fwd.Trace.RTTAt(now)
	if rtt <= 0 {
		rtt = 0.05
	}
	bw := c.Fwd.Trace.ThroughputAt(now)
	if bw <= 0 {
		bw = 1e3
	}
	tx := float64(size*8) / bw
	return rtt*c.PTOFactor + c.Fwd.QueueDelay() + tx + 0.01
}

// SendDatagram transmits size payload bytes once with no retransmission
// (QUIC DATAGRAM). deliver runs at arrival; if the packet is lost deliver
// never runs. The return value only reports local queue acceptance.
func (c *Conn) SendDatagram(size int, deliver func(at float64)) bool {
	c.TxPackets++
	return c.Fwd.Send(size+HeaderSize, func() { deliver(c.Clock.Now()) })
}

// SendReliable delivers size payload bytes, retransmitting on PTO until the
// receiver gets them or MaxAttempts is exhausted. An attempt rejected by
// the local queue-overflow guard is detected immediately (the drop is
// local knowledge, unlike wire loss) and retried as soon as the queue can
// accept it, not a full PTO later. cb runs exactly once: at first delivery
// with ok=true and attempt set to the attempt number whose copy arrived
// (1 = the original transmission), or at give-up time with ok=false and
// attempt set to the number of attempts made.
func (c *Conn) SendReliable(size int, cb func(at float64, ok bool, attempt int)) {
	delivered := false
	attempts := 0
	var attempt func()
	attempt = func() {
		if delivered {
			return
		}
		attempts++
		if attempts > c.MaxAttempts {
			cb(c.Clock.Now(), false, attempts-1)
			return
		}
		thisAttempt := attempts
		c.TxPackets++
		if thisAttempt > 1 {
			c.Retx++
		}
		pto := c.pto(size + HeaderSize)
		qdBefore := c.Fwd.QueueDropped
		sent := c.Fwd.Send(size+HeaderSize, func() {
			if delivered {
				c.SpuriousRx++
				return
			}
			delivered = true
			at := c.Clock.Now()
			// ACK back (loss of the ACK only costs a spurious retx).
			c.Rev.Send(AckSize, func() {})
			cb(at, true, thisAttempt)
		})
		if !sent && c.Fwd.QueueDropped > qdBefore {
			// The packet never left: the local queue-overflow guard
			// rejected it. No point arming a PTO — retry as soon as the
			// backlog has drained below the cap.
			c.LocalDrops++
			delay := c.Fwd.QueueDelay() - c.Fwd.MaxQueueDelay
			if delay < 0 {
				delay = 0
			}
			c.Clock.Schedule(delay+1e-3, func() {
				if !delivered {
					attempt()
				}
			})
			return
		}
		// Sent (or lost on the wire, which only the PTO can detect).
		c.Clock.Schedule(pto, func() {
			if !delivered {
				attempt()
			}
		})
	}
	attempt()
}

// TransferResult reports the outcome of a windowed reliable transfer.
type TransferResult struct {
	// Done is the time the last packet was delivered (or gave up).
	Done float64
	// FirstTxLost marks packets whose first transmission was lost — the
	// packets a non-retransmitting receiver would have missed.
	FirstTxLost []bool
	// Arrival is each packet's successful delivery time (+Inf if the
	// packet ultimately failed).
	Arrival []float64
	// Failed counts packets that exhausted MaxAttempts.
	Failed int
	// Retransmissions counts every retransmitted packet copy.
	Retransmissions int
}

// Complete reports whether every packet arrived.
func (r *TransferResult) Complete() bool { return r.Failed == 0 }

// Transfer reliably delivers the packets whose payload sizes are given,
// keeping at most Window packets in flight. onDone runs when every packet
// has been delivered or abandoned. The transfer starts at the current
// simulated time; the caller drives the clock.
func (c *Conn) Transfer(sizes []int, onDone func(*TransferResult)) {
	n := len(sizes)
	res := &TransferResult{
		FirstTxLost: make([]bool, n),
		Arrival:     make([]float64, n),
	}
	if n == 0 {
		res.Done = c.Clock.Now()
		onDone(res)
		return
	}
	for i := range res.Arrival {
		res.Arrival[i] = math.Inf(1)
	}
	next := 0
	inFlight := 0
	finished := 0
	retxBefore := c.Retx

	var pump func()
	sendOne := func(i int) {
		inFlight++
		c.SendReliable(sizes[i], func(at float64, ok bool, attempt int) {
			inFlight--
			finished++
			if ok {
				res.Arrival[i] = at
				if attempt > 1 {
					res.FirstTxLost[i] = true
				}
			} else {
				res.Failed++
				res.FirstTxLost[i] = true
			}
			if finished == n {
				res.Done = c.Clock.Now()
				res.Retransmissions = c.Retx - retxBefore
				onDone(res)
				return
			}
			pump()
		})
	}
	pump = func() {
		for next < n && inFlight < c.Window {
			i := next
			next++
			sendOne(i)
		}
	}
	pump()
}
