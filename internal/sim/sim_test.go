package sim

import (
	"testing"

	"nerve/internal/abr"
	"nerve/internal/fec"
	"nerve/internal/trace"
)

// downTrace returns a downscaled trace as §8.3 prescribes.
func downTrace(n trace.NetworkType, seed int64) *trace.Trace {
	tr := trace.Generate(n, 240, seed)
	return tr.Downscale(1.5e6, 0.3e6, 5e6)
}

func TestRunDeterministic(t *testing.T) {
	tr := downTrace(trace.Net4G, 1)
	set := NewSchemeSet()
	a := Run(Config{Trace: tr, Seed: 7}, set.Full())
	b := Run(Config{Trace: tr, Seed: 7}, set.Full())
	if a.QoE != b.QoE || a.RecoveredFrac != b.RecoveredFrac {
		t.Fatalf("non-deterministic: %v vs %v", a.QoE, b.QoE)
	}
}

func TestRecoverySchemesOrdering(t *testing.T) {
	// Fig. 12 shape: ours > RC alone > w/o RC, averaged over traces.
	set := NewSchemeSet()
	var qNo, qAlone, qOur float64
	const n = 12
	for s := int64(0); s < n; s++ {
		tr := downTrace(trace.Net5G, 10+s)
		cfg := Config{Trace: tr, Seed: 100 + s}
		qNo += Run(cfg, set.WithoutRecovery()).QoE
		qAlone += Run(cfg, set.RecoveryAlone()).QoE
		qOur += Run(cfg, set.RecoveryAware()).QoE
	}
	t.Logf("w/o RC %.3f, RC alone %.3f, ours %.3f", qNo/n, qAlone/n, qOur/n)
	if !(qOur > qAlone && qAlone > qNo) {
		t.Fatalf("ordering violated: our=%.3f alone=%.3f none=%.3f", qOur/n, qAlone/n, qNo/n)
	}
}

func TestSRSchemesOrdering(t *testing.T) {
	// Fig. 17 shape: ours > NEMO > SR alone > w/o SR (allow NEMO/SR-alone
	// to be close).
	set := NewSchemeSet()
	var qNo, qAlone, qNemo, qOur float64
	const n = 12
	for s := int64(0); s < n; s++ {
		tr := downTrace(trace.Net4G, 30+s)
		cfg := Config{Trace: tr, Seed: 200 + s}
		qNo += Run(cfg, set.WithoutSR()).QoE
		qAlone += Run(cfg, set.SRAlone()).QoE
		qNemo += Run(cfg, set.NEMO()).QoE
		qOur += Run(cfg, set.SRAware()).QoE
	}
	t.Logf("w/o SR %.3f, SR alone %.3f, NEMO %.3f, ours %.3f", qNo/n, qAlone/n, qNemo/n, qOur/n)
	if qOur <= qNo {
		t.Fatalf("SR-aware (%.3f) not above w/o SR (%.3f)", qOur/n, qNo/n)
	}
	if qAlone <= qNo {
		t.Fatalf("SR alone (%.3f) not above w/o SR (%.3f)", qAlone/n, qNo/n)
	}
	if qOur <= qNemo {
		t.Fatalf("ours (%.3f) not above NEMO (%.3f)", qOur/n, qNemo/n)
	}
}

func TestFullSystemBeatsBaseline(t *testing.T) {
	// Fig. 18 shape across all four network types.
	set := NewSchemeSet()
	for _, nt := range trace.NetworkTypes() {
		var qBase, qBoth, qNemo, qFull float64
		const n = 8
		for s := int64(0); s < n; s++ {
			tr := downTrace(nt, 50+s)
			cfg := Config{Trace: tr, Seed: 300 + s}
			qBase += Run(cfg, set.Baseline()).QoE
			qBoth += Run(cfg, set.BothAlone()).QoE
			qNemo += Run(cfg, set.NEMO()).QoE
			qFull += Run(cfg, set.Full()).QoE
		}
		t.Logf("%v: base %.3f, both-alone %.3f, NEMO %.3f, full %.3f", nt, qBase/n, qBoth/n, qNemo/n, qFull/n)
		if qFull <= qBase {
			t.Errorf("%v: full (%.3f) not above baseline (%.3f)", nt, qFull/n, qBase/n)
		}
		if qFull <= qBoth {
			t.Errorf("%v: full (%.3f) not above both-alone (%.3f)", nt, qFull/n, qBoth/n)
		}
		if qFull <= qNemo {
			t.Errorf("%v: full (%.3f) not above NEMO (%.3f)", nt, qFull/n, qNemo/n)
		}
	}
}

func TestRecoveredFracHighestOn5G(t *testing.T) {
	// Fig. 13b: 5G's fluctuation forces the most recoveries. Measured at
	// a fixed mid-ladder rate so ABR feedback (which hides volatility by
	// retreating to the lowest rung) does not mask the network effect.
	frac := map[trace.NetworkType]float64{}
	for _, nt := range trace.NetworkTypes() {
		var f float64
		const n = 10
		for s := int64(0); s < n; s++ {
			scheme := Scheme{Name: "fixed", Recovery: true, ABR: &abr.FixedRate{Index: 2}}
			res := Run(Config{Trace: downTrace(nt, 70+s), Seed: 400 + s}, scheme)
			f += res.RecoveredFrac
		}
		frac[nt] = f / n
	}
	t.Logf("recovered fraction: 3G=%.3f 4G=%.3f 5G=%.3f WiFi=%.3f",
		frac[trace.Net3G], frac[trace.Net4G], frac[trace.Net5G], frac[trace.NetWiFi])
	for _, nt := range []trace.NetworkType{trace.Net3G, trace.Net4G, trace.NetWiFi} {
		if frac[trace.Net5G] < frac[nt] {
			t.Errorf("5G recovered frac %.3f below %v %.3f", frac[trace.Net5G], nt, frac[nt])
		}
	}
}

func TestTable3RecoveredFrameQoE(t *testing.T) {
	// Table 3 shape: w/o RC strongly negative; RC alone near zero; ours
	// highest.
	set := NewSchemeSet()
	var qNo, qAlone, qOur float64
	const n = 10
	for s := int64(0); s < n; s++ {
		tr := downTrace(trace.Net5G, 90+s)
		cfg := Config{Trace: tr, Seed: 500 + s}
		qNo += Run(cfg, set.WithoutRecovery()).RecoveredFrameQoE
		qAlone += Run(cfg, set.RecoveryAlone()).RecoveredFrameQoE
		qOur += Run(cfg, set.RecoveryAware()).RecoveredFrameQoE
	}
	t.Logf("recovered-frame QoE: w/o RC %.2f, alone %.2f, ours %.2f", qNo/n, qAlone/n, qOur/n)
	if !(qOur > qAlone && qAlone > qNo) {
		t.Fatalf("Table 3 ordering violated: %v %v %v", qNo/n, qAlone/n, qOur/n)
	}
	if qNo/n > 0 {
		t.Errorf("w/o RC recovered-frame QoE should be negative, got %.2f", qNo/n)
	}
}

func TestLossyNetworkAmplifiesRecoveryGain(t *testing.T) {
	// Fig. 15: without FEC under heavier loss, recovery's absolute QoE
	// gain over the reuse baseline ("reuse the last frame when a video
	// frame is late or lost") grows versus the clean setting.
	// Matched ABRs (both unaware), relative gain as the paper reports.
	set := NewSchemeSet()
	gain := func(lossScale float64) float64 {
		var qNo, qRC float64
		const n = 8
		for s := int64(0); s < n; s++ {
			tr := downTrace(trace.Net4G, 110+s)
			cfg := Config{Trace: tr, Seed: 600 + s, LossScale: lossScale}
			qNo += Run(cfg, set.WithoutRecoveryReuse()).QoE
			qRC += Run(cfg, set.RecoveryAlone()).QoE
		}
		if qNo < 0.01 {
			qNo = 0.01
		}
		return (qRC - qNo) / qNo
	}
	clean := gain(1)
	lossy := gain(6)
	t.Logf("relative recovery gain over reuse baseline: clean %.1f%%, lossy %.1f%%", clean*100, lossy*100)
	if lossy <= 0 {
		t.Fatalf("recovery not beneficial under loss: %.3f", lossy)
	}
	if lossy <= clean {
		t.Fatalf("gain did not grow with loss: %.3f vs %.3f", lossy, clean)
	}
}

// jointPlanner builds a loss→redundancy table by simulating QoE, the §4
// procedure.
func jointPlanner(t *testing.T, scheme func(SchemeSet) Scheme) *fec.Planner {
	t.Helper()
	losses := []float64{0.01, 0.05, 0.1}
	reds := []float64{0, 0.1, 0.25, 0.5}
	planner, err := fec.BuildPlanner(losses, reds, func(loss, red float64) float64 {
		set := NewSchemeSet()
		set.UseFEC = true
		sc := scheme(set)
		sc.Planner = fec.NewPlannerFromTable(map[float64]float64{0: red})
		tr := downTrace(trace.Net5G, 777)
		// Match the loss scale so LossAt ≈ loss on average.
		scale := loss / tr.Stat().AvgLossRate
		return Run(Config{Trace: tr, Seed: 888, LossScale: scale, Chunks: 30}, sc).QoE
	})
	if err != nil {
		t.Fatal(err)
	}
	return planner
}

func TestFECImprovesLossyQoE(t *testing.T) {
	// Fig. 16: with heavy loss, jointly planned FEC beats no FEC for the
	// full system.
	planner := jointPlanner(t, func(s SchemeSet) Scheme { return s.Full() })
	setNoFEC := NewSchemeSet()
	setFEC := NewSchemeSet()
	setFEC.UseFEC = true
	var qNo, qFEC float64
	const n = 8
	for s := int64(0); s < n; s++ {
		tr := downTrace(trace.Net5G, 130+s)
		cfg := Config{Trace: tr, Seed: 700 + s, LossScale: 6}
		qNo += Run(cfg, setNoFEC.Full()).QoE
		fecScheme := setFEC.Full()
		fecScheme.Planner = planner
		qFEC += Run(cfg, fecScheme).QoE
	}
	t.Logf("lossy 5G: no FEC %.3f, jointly planned FEC %.3f", qNo/n, qFEC/n)
	if qFEC/n < qNo/n-0.05 {
		t.Fatalf("joint FEC planning hurt: %.3f vs %.3f", qFEC/n, qNo/n)
	}
}

func TestSeriesAndRedundancyBookkeeping(t *testing.T) {
	set := NewSchemeSet()
	set.UseFEC = true
	tr := downTrace(trace.Net4G, 3)
	res := Run(Config{Trace: tr, Seed: 9}, set.Full())
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	prev := -1.0
	for _, p := range res.Series {
		if p.Time < prev {
			t.Fatal("series time not monotone")
		}
		prev = p.Time
		if p.RateIndex < 0 || p.RateIndex > 4 {
			t.Fatalf("bad rate index %d", p.RateIndex)
		}
	}
	if res.MeanRedundancy <= 0 {
		t.Fatal("FEC scheme recorded no redundancy")
	}
	if res.Session == nil || res.Session.Chunks == nil {
		t.Fatal("session not recorded")
	}
}

func TestTrainPensieveImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	traces := []*trace.Trace{downTrace(trace.Net4G, 201), downTrace(trace.Net5G, 202)}
	eval := func(p interface {
		SelectRate(s interface{}) int
	}) float64 {
		return 0
	}
	_ = eval
	agent := TrainPensieve(traces, 30, 42)
	evalTrace := downTrace(trace.Net4G, 203)
	res := Run(Config{Trace: evalTrace, Seed: 11}, Scheme{Name: "pensieve", ABR: agent})
	// An untrained agent (0 episodes) for comparison.
	untrained := TrainPensieve(traces, 0, 43)
	res0 := Run(Config{Trace: evalTrace, Seed: 11}, Scheme{Name: "pensieve0", ABR: untrained})
	t.Logf("pensieve trained %.3f vs untrained %.3f", res.QoE, res0.QoE)
	if res.QoE < res0.QoE-0.3 {
		t.Fatalf("training made the agent much worse: %.3f vs %.3f", res.QoE, res0.QoE)
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := downTrace(trace.Net3G, 5)
	cfg := Config{Trace: tr}.withDefaults()
	if cfg.ChunkSeconds != 4 || cfg.Chunks != 60 || cfg.MaxBufferSec != 8 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Quality == nil || cfg.Device == nil {
		t.Fatal("defaults missing quality/device")
	}
}
