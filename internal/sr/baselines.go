package sr

import (
	"fmt"

	"nerve/internal/vmath"
)

// Method identifies an SR algorithm in the Table 1 comparison.
type Method int

const (
	// MethodOurs is the paper's real-time mobile SR model (this package's
	// SuperResolver with default settings).
	MethodOurs Method = iota
	// MethodRLSP approximates RLSP (Fuoli et al.): recurrent latent-space
	// propagation — heavy single-direction recurrent fusion.
	MethodRLSP
	// MethodBasicVSR approximates BasicVSR (Chan et al.): bidirectional
	// propagation over the whole clip (offline, two passes).
	MethodBasicVSR
	// MethodCKBG approximates CKBG (Xiao et al.): online SR with kernel
	// bypass grafting — a heavier single-pass model.
	MethodCKBG
	// MethodBilinear and MethodBicubic are the non-learned baselines.
	MethodBilinear
	MethodBicubic
)

// MethodInfo carries the cost figures reported in Table 1 for the
// published baselines (FLOPs and parameters for a 180×320 input upscaled
// 4×) and the analytically derived figures for this implementation.
// Quality comes from running the analogue implementations; cost figures
// feed the device latency model (see DESIGN.md §1 for the substitution).
type MethodInfo struct {
	Name    string
	FLOPsG  float64 // GFLOPs per 180×320 → 4× frame
	ParamsK float64 // thousands of parameters
	// Online reports whether the method can run causally (no future
	// frames); BasicVSR is offline.
	Online bool
}

// Info returns the method's descriptor.
func (m Method) Info() MethodInfo {
	switch m {
	case MethodOurs:
		return MethodInfo{Name: "ours", FLOPsG: 10.8, ParamsK: 1619, Online: true}
	case MethodRLSP:
		return MethodInfo{Name: "RLSP", FLOPsG: 132.94, ParamsK: 1154, Online: true}
	case MethodBasicVSR:
		return MethodInfo{Name: "BasicVSR", FLOPsG: 71.33, ParamsK: 1887, Online: false}
	case MethodCKBG:
		return MethodInfo{Name: "CKBG", FLOPsG: 17.8, ParamsK: 1750, Online: true}
	case MethodBilinear:
		return MethodInfo{Name: "bilinear", FLOPsG: 0.06, ParamsK: 0, Online: true}
	case MethodBicubic:
		return MethodInfo{Name: "bicubic", FLOPsG: 0.25, ParamsK: 0, Online: true}
	default:
		return MethodInfo{Name: fmt.Sprintf("Method(%d)", int(m))}
	}
}

// Methods returns the Table 1 comparison set in presentation order.
func Methods() []Method {
	return []Method{MethodRLSP, MethodBasicVSR, MethodCKBG, MethodOurs}
}

// RunClip upscales a whole clip with the chosen method. Online methods
// process frames causally; BasicVSR makes a forward and a backward pass and
// averages them (its bidirectional propagation).
func RunClip(m Method, frames []*vmath.Plane, outW, outH int) []*vmath.Plane {
	switch m {
	case MethodBilinear:
		out := make([]*vmath.Plane, len(frames))
		for i, f := range frames {
			out[i] = UpscaleBilinear(f, outW, outH)
		}
		return out
	case MethodBicubic:
		out := make([]*vmath.Plane, len(frames))
		for i, f := range frames {
			out[i] = UpscaleBicubic(f, outW, outH)
		}
		return out
	case MethodOurs:
		return runForward(New(Config{OutW: outW, OutH: outH}), frames)
	case MethodRLSP:
		// Heavier recurrent fusion, more refinement than real time allows.
		return runForward(New(Config{OutW: outW, OutH: outH, TemporalWeight: 0.6, BackProjectIters: 5}), frames)
	case MethodCKBG:
		return runForward(New(Config{OutW: outW, OutH: outH, TemporalWeight: 0.55, BackProjectIters: 8}), frames)
	case MethodBasicVSR:
		fwd := runForward(New(Config{OutW: outW, OutH: outH, TemporalWeight: 0.55, BackProjectIters: 8}), frames)
		rev := make([]*vmath.Plane, len(frames))
		for i := range frames {
			rev[i] = frames[len(frames)-1-i]
		}
		bwd := runForward(New(Config{OutW: outW, OutH: outH, TemporalWeight: 0.55, BackProjectIters: 8}), rev)
		out := make([]*vmath.Plane, len(frames))
		for i := range frames {
			out[i] = vmath.Lerp(nil, fwd[i], bwd[len(frames)-1-i], 0.5)
			// Bidirectional averaging can soften; re-anchor on the LR
			// observation once.
			down := vmath.ResizeBilinear(out[i], frames[i].W, frames[i].H)
			err := vmath.Sub(nil, frames[i], down)
			out[i].AddScaled(vmath.ResizeBilinear(err, outW, outH), 1.0).Clamp255()
		}
		return out
	default:
		panic(fmt.Sprintf("sr: unknown method %d", int(m)))
	}
}

func runForward(s *SuperResolver, frames []*vmath.Plane) []*vmath.Plane {
	out := make([]*vmath.Plane, len(frames))
	for i, f := range frames {
		out[i] = s.Upscale(f)
	}
	return out
}
