package warp

import (
	"testing"

	"nerve/internal/flow"
	"nerve/internal/par"
)

// TestBackwardParallelBitExact is the warp differential test of the
// concurrency model: warping with a single-worker pool and with a large
// pool must produce byte-identical output and validity planes.
func TestBackwardParallelBitExact(t *testing.T) {
	src := texture(9, 161, 97)
	f := flow.NewField(161, 97)
	for i := range f.U {
		f.U[i] = float32(i%7) - 3.25
		f.V[i] = float32(i%5) - 1.5
		f.Conf[i] = float32(i%3) / 2
	}

	restore := par.SetWorkers(1)
	wantOut, wantValid := Backward(src, f, 0.3)
	restore()
	for _, workers := range []int{2, 8} {
		restore := par.SetWorkers(workers)
		gotOut, gotValid := Backward(src, f, 0.3)
		restore()
		for i := range wantOut.Pix {
			if gotOut.Pix[i] != wantOut.Pix[i] {
				t.Fatalf("workers=%d: warp differs at pixel %d", workers, i)
			}
			if gotValid.Pix[i] != wantValid.Pix[i] {
				t.Fatalf("workers=%d: valid mask differs at pixel %d", workers, i)
			}
		}
	}
}

func benchBackward(b *testing.B, workers int) {
	defer par.SetWorkers(workers)()
	src := texture(1, 480, 270)
	f := flow.NewField(480, 270)
	for i := range f.U {
		f.U[i] = 2
		f.Conf[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Backward(src, f, 0.1)
	}
}

// BenchmarkWarp is the sequential baseline (pool pinned to 1).
func BenchmarkWarp(b *testing.B) { benchBackward(b, 1) }

// BenchmarkWarpParallel runs the same warp on the full pool; run with
// -cpu 1,4 to see the scaling.
func BenchmarkWarpParallel(b *testing.B) { benchBackward(b, 0) }
