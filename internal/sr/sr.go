// Package sr implements the multi-resolution video super-resolution model
// of §5 and the baselines it is evaluated against.
//
// The paper's network shares one optical-flow alignment module across all
// upscaling factors and attaches small per-resolution convolution heads;
// this reproduction mirrors that structure with classical components:
//
//   - shared flow alignment: block-matching flow between consecutive LR
//     frames (internal/flow), reused for every ladder rung;
//   - temporal fusion: the previous HR output is warped along the
//     (resolution-scaled) flow and blended where the flow is confident,
//     accumulating detail across frames exactly like a recurrent SR cell;
//   - reconstruction: iterative back-projection enforces that the HR
//     estimate downsamples back to the observed LR frame — the classical
//     counterpart of learning the "gap between bilinear upsampling and the
//     ground truth" with a Charbonnier loss;
//   - per-resolution heads: a per-rung detail-boost strength, standing in
//     for the independent convolution layers per degradation pattern.
package sr

import (
	"fmt"

	"nerve/internal/flow"
	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
	"nerve/internal/warp"
)

// Config parameterises a SuperResolver.
type Config struct {
	// OutW, OutH is the target (display) resolution.
	OutW, OutH int
	// BackProjectIters is the number of back-projection refinement steps
	// (default 3).
	BackProjectIters int
	// TemporalWeight scales how strongly the warped previous HR output is
	// fused in (default 0.45).
	TemporalWeight float32
	// DetailBoost overrides the per-resolution sharpening strength when
	// non-zero; by default it is derived from the upscale factor.
	DetailBoost float32
	// LearnedHead, when non-nil, replaces the analytic detail head with a
	// trained residual predictor (see TrainLearnedHead) — the §5 learning
	// target realised with internal/nn.
	LearnedHead *LearnedHead
}

func (c Config) withDefaults() Config {
	if c.OutW <= 0 || c.OutH <= 0 {
		panic(fmt.Sprintf("sr: invalid output size %dx%d", c.OutW, c.OutH))
	}
	if c.BackProjectIters <= 0 {
		c.BackProjectIters = 3
	}
	if c.TemporalWeight == 0 {
		c.TemporalWeight = 0.45
	}
	return c
}

// SuperResolver upscales a stream of LR frames to the configured output
// resolution, carrying temporal state between frames. It accepts any input
// resolution (the multi-resolution property of the paper's model): the
// shared flow module runs at whatever LR resolution arrives.
type SuperResolver struct {
	cfg    Config
	prevLR *vmath.Plane
	prevHR *vmath.Plane
}

// New returns a resolver for the configuration.
func New(cfg Config) *SuperResolver {
	return &SuperResolver{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (s *SuperResolver) Config() Config { return s.cfg }

// Reset drops temporal state (stream restart, scene cut, rung switch where
// continuity is broken deliberately).
func (s *SuperResolver) Reset() { s.prevLR, s.prevHR = nil, nil }

// detailBoost derives the per-resolution head strength: lower-resolution
// inputs get stronger detail synthesis, as in the paper where lower rungs
// show larger SR gains.
func (s *SuperResolver) detailBoost(lrW int) float32 {
	if s.cfg.DetailBoost != 0 {
		return s.cfg.DetailBoost
	}
	factor := float32(s.cfg.OutW) / float32(lrW)
	b := 0.08 * (factor - 1)
	if b > 0.35 {
		b = 0.35
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Upscale enhances one LR frame. Consecutive calls on consecutive frames
// exploit temporal fusion; a resolution change in the input stream is
// handled by resampling the temporal state (the rung switch the
// enhancement-aware ABR performs).
func (s *SuperResolver) Upscale(lr *vmath.Plane) *vmath.Plane {
	defer telemetry.Start(telemetry.StageSR).Stop()
	cfg := s.cfg
	base := vmath.ResizeBicubic(lr, cfg.OutW, cfg.OutH)
	out := base

	// Temporal fusion with the previous HR output, aligned by LR flow.
	if s.prevLR != nil && s.prevHR != nil {
		prevLR := s.prevLR
		if prevLR.W != lr.W || prevLR.H != lr.H {
			prevLR = vmath.ResizeBilinear(prevLR, lr.W, lr.H)
		}
		f := flow.Estimate(prevLR, lr, flow.Options{Levels: 2, Search: 3})
		fHR := f.Resample(cfg.OutW, cfg.OutH)
		warpedHR, validHR := warp.Backward(s.prevHR, fHR, 0.3)
		tw := cfg.TemporalWeight
		fused := out.Clone()
		// Per-pixel blend with no cross-pixel dependency: row bands run on
		// the shared pool without changing the result.
		par.ForRows(fused.H, func(y0, y1 int) {
			for i := y0 * fused.W; i < y1*fused.W; i++ {
				w := tw * fHR.Conf[i] * validHR.Pix[i]
				fused.Pix[i] += w * (warpedHR.Pix[i] - fused.Pix[i])
			}
		})
		out = fused
	}

	// Back-projection: force downsample-consistency with the observation.
	for it := 0; it < cfg.BackProjectIters; it++ {
		down := vmath.ResizeBilinear(out, lr.W, lr.H)
		err := vmath.Sub(nil, lr, down)
		errUp := vmath.ResizeBilinear(err, cfg.OutW, cfg.OutH)
		out.AddScaled(errUp, 1.0)
	}

	// Per-resolution detail head: a trained residual predictor when
	// configured, otherwise the analytic sharpening head.
	if cfg.LearnedHead != nil {
		out = cfg.LearnedHead.Apply(out)
		down := vmath.ResizeBilinear(out, lr.W, lr.H)
		err := vmath.Sub(nil, lr, down)
		out.AddScaled(vmath.ResizeBilinear(err, cfg.OutW, cfg.OutH), 1.0)
	} else if b := s.detailBoost(lr.W); b > 0 {
		out = vmath.UnsharpMask(out, 1.0, float64(b))
		// Re-anchor once after sharpening.
		down := vmath.ResizeBilinear(out, lr.W, lr.H)
		err := vmath.Sub(nil, lr, down)
		out.AddScaled(vmath.ResizeBilinear(err, cfg.OutW, cfg.OutH), 1.0)
	}
	out.Clamp255()

	s.prevLR = lr.Clone()
	s.prevHR = out.Clone()
	return out
}

// UpscaleBilinear is the "Upsample" baseline from Fig. 10.
func UpscaleBilinear(lr *vmath.Plane, w, h int) *vmath.Plane {
	return vmath.ResizeBilinear(lr, w, h)
}

// UpscaleBicubic is the bicubic baseline from Fig. 11.
func UpscaleBicubic(lr *vmath.Plane, w, h int) *vmath.Plane {
	return vmath.ResizeBicubic(lr, w, h)
}
