package abr

import "testing"

// bba2State builds a steady-state snapshot for the BBA-2 family (ladder
// {0.512, 1.024, 1.6, 2.64, 4.4} Mbps; defaults reservoir 4 s, cushion
// 3.5 s).
func bba2State(bufferSec float64, last int) State {
	s := mkState(bufferSec, 2e6, last)
	s.DownloadTimeHistory = []float64{3.5}
	return s
}

// steadyBBA2 returns a BBA-2 past its startup phase.
func steadyBBA2() *BBA2 {
	b := NewBBA2()
	b.startup = false
	return b
}

func TestBBA2EmptyBuffer(t *testing.T) {
	b := steadyBBA2()
	if r := b.SelectRate(bba2State(0, 3)); r != 0 {
		t.Fatalf("empty buffer chose rung %d, want 0", r)
	}
}

func TestBBA2ReservoirBoundary(t *testing.T) {
	b := steadyBBA2()
	// At or below the reservoir the map pins to the bottom rung, whatever
	// came before.
	for _, buf := range []float64{1, 4} {
		if r := b.SelectRate(bba2State(buf, 4)); r != 0 {
			t.Fatalf("buffer %g chose rung %d, want 0", buf, r)
		}
	}
	// Just above the reservoir the hysteresis takes over.
	if r := b.SelectRate(bba2State(4.01, 0)); r != 0 {
		t.Fatalf("buffer 4.01 from rung 0 chose %d, want 0", r)
	}
}

func TestBBA2CushionBoundary(t *testing.T) {
	b := steadyBBA2()
	// At reservoir+cushion and beyond, always the top rung.
	for _, buf := range []float64{7.5, 8, 20} {
		if r := b.SelectRate(bba2State(buf, 0)); r != 4 {
			t.Fatalf("buffer %g chose rung %d, want 4", buf, r)
		}
	}
}

func TestBBA2Hysteresis(t *testing.T) {
	b := steadyBBA2()
	// f(5.5) ≈ 2.18 Mbps: between rung 2 (1.6) and rung 4 (4.4) when
	// sitting on rung 3 (2.64) — stay put.
	if r := b.SelectRate(bba2State(5.5, 3)); r != 3 {
		t.Fatalf("map between neighbours moved the rung: %d, want 3", r)
	}
	// Same buffer from rung 1: the map (2.18) reached rung 2's rate —
	// step up to the highest rung the map supports.
	if r := b.SelectRate(bba2State(5.5, 1)); r != 2 {
		t.Fatalf("map past next rung chose %d, want 2", r)
	}
	// f(4.5) ≈ 1.07 Mbps from rung 4: the map fell below rung 3 — drop to
	// the lowest rung still covering the map.
	if r := b.SelectRate(bba2State(4.5, 4)); r != 2 {
		t.Fatalf("map below previous rung chose %d, want 2", r)
	}
}

func TestBBA2StartupRampAndExit(t *testing.T) {
	b := NewBBA2()
	// First chunk: nothing known, bottom rung.
	if r := b.SelectRate(bba2State(0, -1)); r != 0 {
		t.Fatalf("first chunk chose %d, want 0", r)
	}
	// Fast download (0.4 s ≪ 0.125·4 s) with a filling buffer: step up one
	// rung per chunk even though the map alone would stay at 0.
	s := bba2State(4.2, 0)
	s.DownloadTimeHistory = []float64{0.4}
	if r := b.SelectRate(s); r != 1 {
		t.Fatalf("startup with fast download chose %d, want 1", r)
	}
	// Slow download during startup: hold.
	s = bba2State(4.3, 1)
	s.DownloadTimeHistory = []float64{3.9}
	if r := b.SelectRate(s); r != 1 {
		t.Fatalf("startup with slow download chose %d, want 1", r)
	}
	// Buffer decrease ends startup and hands over to the map.
	s = bba2State(4.1, 1)
	s.DownloadTimeHistory = []float64{0.4}
	if b.SelectRate(s); b.startup {
		t.Fatal("buffer decrease did not exit startup")
	}
}

func TestBBA2Reset(t *testing.T) {
	b := NewBBA2()
	b.startup = false
	b.prevBuffer = 6
	b.Reset()
	if !b.startup || b.prevBuffer != 0 {
		t.Fatal("Reset did not restore the startup state")
	}
}

func TestBBA2LossHoldsMaskableLoss(t *testing.T) {
	mk := func() *BBA2Loss {
		b := NewBBA2Loss()
		b.startup = false
		return b
	}
	// Step-down scenario: rung 4, buffer 4.5 → plain BBA-2 drops to 2.
	base := bba2State(4.5, 4)

	// No cross-layer view: identical to BBA-2.
	if r := mk().SelectRate(base); r != 2 {
		t.Fatalf("nil view chose %d, want the plain choice 2", r)
	}
	// Maskable loss: hold the rung.
	s := base
	s.CrossLayer = &CrossLayer{LossRate: 0.05, MaskableLoss: 0.15}
	if r := mk().SelectRate(s); r != 4 {
		t.Fatalf("maskable loss chose %d, want the held rung 4", r)
	}
	// Loss beyond what recovery can mask: defer to the step-down.
	s = base
	s.CrossLayer = &CrossLayer{LossRate: 0.3, MaskableLoss: 0.15}
	if r := mk().SelectRate(s); r != 2 {
		t.Fatalf("unmaskable loss chose %d, want 2", r)
	}
	// Negligible loss: the drain is congestion, not loss — step down.
	s = base
	s.CrossLayer = &CrossLayer{LossRate: 0.001, MaskableLoss: 0.15}
	if r := mk().SelectRate(s); r != 2 {
		t.Fatalf("negligible loss chose %d, want 2", r)
	}
	// Conventional client (MaskableLoss 0): never hold.
	s = base
	s.CrossLayer = &CrossLayer{LossRate: 0.05, MaskableLoss: 0}
	if r := mk().SelectRate(s); r != 2 {
		t.Fatalf("unmaskable client chose %d, want 2", r)
	}
	// Buffer under the floor: stall risk wins, no hold.
	s = bba2State(1.5, 4)
	s.CrossLayer = &CrossLayer{LossRate: 0.05, MaskableLoss: 0.15}
	if r := mk().SelectRate(s); r != 0 {
		t.Fatalf("near-empty buffer chose %d, want 0", r)
	}
}

func TestBBA2RTTEarlyBackoff(t *testing.T) {
	mk := func() *BBA2RTT {
		b := NewBBA2RTT()
		b.startup = false
		return b
	}
	// Stable rung 3 at buffer 5.5.
	base := bba2State(5.5, 3)

	if r := mk().SelectRate(base); r != 3 {
		t.Fatalf("nil view chose %d, want 3", r)
	}
	// Flat RTT, small backlog: no backoff.
	s := base
	s.CrossLayer = &CrossLayer{RTTGradient: 0.01, BacklogSec: 1}
	if r := mk().SelectRate(s); r != 3 {
		t.Fatalf("calm path chose %d, want 3", r)
	}
	// Rising RTT: back off one rung before the buffer feels it.
	s = base
	s.CrossLayer = &CrossLayer{RTTGradient: 0.2}
	if r := mk().SelectRate(s); r != 2 {
		t.Fatalf("rising RTT chose %d, want 2", r)
	}
	// Near-saturated send backlog: same.
	s = base
	s.CrossLayer = &CrossLayer{BacklogSec: 3.6}
	if r := mk().SelectRate(s); r != 2 {
		t.Fatalf("deep backlog chose %d, want 2", r)
	}
	// Already at the bottom: nowhere to go.
	s = bba2State(4.01, 0)
	s.CrossLayer = &CrossLayer{RTTGradient: 0.2}
	if r := mk().SelectRate(s); r != 0 {
		t.Fatalf("bottom rung chose %d, want 0", r)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		alg := NewByName(name)
		if alg == nil {
			t.Fatalf("NewByName(%q) = nil", name)
		}
		if alg.Name() != name {
			t.Fatalf("NewByName(%q).Name() = %q", name, alg.Name())
		}
	}
	if NewByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}
