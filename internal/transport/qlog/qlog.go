// Package qlog is the structured transport event stream of the
// reproduction: a qlog-style taxonomy (in the spirit of the IETF qlog
// schema used by cross-layer QUIC/DASH work) of everything transport.Conn
// observes — datagrams sent/delivered/dropped, reliable retransmissions,
// RTT samples, PTO firings, inflight and send-backlog high-water marks —
// recorded into a bounded ring that in-process consumers (the cross-layer
// ABR aggregator) read through cursors, and optionally serialised as
// deterministic JSON lines.
//
// The full taxonomy — every event type, its fields, units and emission
// point, plus an annotated sample trace — is documented in
// TRANSPORT_EVENTS.md at the repository root.
//
// Design constraints, in order:
//
//   - allocation-conscious: Append never allocates; the ring is sized once
//     and events are plain values. Encoding reuses one scratch buffer.
//   - deterministic: timestamps are the simulation clock's seconds, not
//     wall time, so a fixed seed yields a byte-identical stream
//     (TestQLogStreamDeterministic). Floats are encoded with the shortest
//     round-trip representation.
//   - optional: a Conn without an attached Trace pays nothing.
//
// Serialisation goes through two sinks that can be active at once: a
// direct io.Writer attached with SetSink (what the determinism test and
// nervesim -qlog capture), and the process-wide internal/telemetry JSON
// event sink via Registry.EmitJSON, so transport events interleave with
// the rest of the telemetry event stream when one is attached.
package qlog

import (
	"io"
	"strconv"

	"nerve/internal/telemetry"
)

// EventType enumerates the taxonomy (TRANSPORT_EVENTS.md).
type EventType uint8

// The event types, grouped by emission point.
const (
	// DatagramSent is an unreliable media packet handed to the link.
	DatagramSent EventType = iota
	// DatagramDelivered is an unreliable packet arriving at the receiver.
	DatagramDelivered
	// DatagramDropped is an unreliable packet that never arrived; Trigger
	// distinguishes a wire loss from a local queue overflow.
	DatagramDropped
	// ReliableSent is one wire copy (attempt) of a reliable packet.
	ReliableSent
	// ReliableDelivered is a reliable packet's first successful arrival.
	ReliableDelivered
	// ReliableRetry is a retransmission attempt; Trigger names its cause
	// (a fired PTO or a drained local queue).
	ReliableRetry
	// ReliableAbandoned is a reliable packet given up after MaxAttempts.
	ReliableAbandoned
	// RTTSample is one ACK-clocked round-trip measurement.
	RTTSample
	// PTOFired is a probe timeout expiring on an undelivered packet.
	PTOFired
	// LocalDrop is a reliable attempt rejected by the local queue-overflow
	// guard before reaching the wire.
	LocalDrop
	// InflightHighWater marks a new within-window maximum of bytes in
	// flight.
	InflightHighWater
	// BacklogHighWater marks a new within-window maximum of send-queue
	// backlog.
	BacklogHighWater

	numEventTypes
)

var eventNames = [numEventTypes]string{
	"datagram_sent", "datagram_delivered", "datagram_dropped",
	"reliable_sent", "reliable_delivered", "reliable_retry",
	"reliable_abandoned", "rtt_sample", "pto_fired", "local_drop",
	"inflight_high_water", "backlog_high_water",
}

// String returns the event type's snake-case wire name.
func (t EventType) String() string {
	if t >= numEventTypes {
		return "unknown"
	}
	return eventNames[t]
}

// NumEventTypes returns the taxonomy size.
func NumEventTypes() int { return int(numEventTypes) }

// Trigger qualifies why an event happened, following qlog's trigger
// convention.
type Trigger uint8

// Triggers.
const (
	// TriggerNone marks events that need no qualification.
	TriggerNone Trigger = iota
	// TriggerLoss is a drop by the wire loss process.
	TriggerLoss
	// TriggerQueueFull is a drop by the local queue-overflow guard.
	TriggerQueueFull
	// TriggerPTO marks a retransmission caused by a probe timeout.
	TriggerPTO
	// TriggerQueueDrain marks a retransmission re-attempted as soon as the
	// local queue drained (no PTO wait — the drop was local knowledge).
	TriggerQueueDrain
	// TriggerMaxAttempts marks an abandonment after exhausting retries.
	TriggerMaxAttempts
)

var triggerNames = []string{
	"", "loss", "queue_full", "pto", "queue_drain", "max_attempts",
}

// String returns the trigger's snake-case wire name ("" for TriggerNone).
func (t Trigger) String() string {
	if int(t) >= len(triggerNames) {
		return "unknown"
	}
	return triggerNames[t]
}

// Event is one transport occurrence. The zero value of every field other
// than T and Type means "not applicable" and is omitted from the JSON
// encoding. All times are simulation-clock seconds, all sizes wire bytes
// (payload plus transport header).
type Event struct {
	// T is the emission time in simulation seconds.
	T float64
	// Type is the taxonomy entry.
	Type EventType
	// Trigger qualifies drops, retries and abandonments.
	Trigger Trigger
	// Bytes is the wire size of the packet involved.
	Bytes int
	// Attempt is the 1-based transmission attempt for reliable events.
	Attempt int
	// RTT is the measured round trip in seconds (RTTSample only).
	RTT float64
	// Inflight is the number of wire copies outstanding after the event.
	Inflight int
	// InflightBytes is the outstanding wire bytes after the event.
	InflightBytes int
	// Backlog is the sender's local queue delay in seconds: how long a
	// packet sent now would wait before its first bit hits the wire.
	Backlog float64
}

// cQlogEvents counts every event appended to any Trace; the per-type
// breakdown lives on the Trace itself (Counts).
var cQlogEvents = telemetry.NewCounter("qlog.events")

// Trace is a bounded ring of events. Appending past the capacity
// overwrites the oldest events; readers that fall behind observe the gap
// through Cursor.Skipped rather than blocking the producer. The zero
// value is not ready; use New.
//
// A Trace is intentionally unsynchronised: the transport runs on the
// single-goroutine netem event loop, and each simulated session owns its
// own Trace. Do not share one Trace across goroutines.
type Trace struct {
	ring    []Event
	mask    uint64
	total   uint64
	counts  [numEventTypes]uint64
	sink    io.Writer
	reg     *telemetry.Registry
	scratch []byte
}

// New returns a Trace retaining the last capacity events (rounded up to a
// power of two, minimum 64). Events mirror to the telemetry registry's
// JSON event sink (telemetry.Default) when one is attached.
func New(capacity int) *Trace {
	c := 64
	for c < capacity {
		c <<= 1
	}
	return &Trace{
		ring: make([]Event, c),
		mask: uint64(c - 1),
		reg:  telemetry.Default,
	}
}

// SetSink streams every subsequent event to w as one JSON line each, in
// addition to the ring. A nil w detaches the sink. The encoding is
// deterministic: identical event sequences yield identical bytes.
func (t *Trace) SetSink(w io.Writer) { t.sink = w }

// SetRegistry redirects the telemetry mirror (default telemetry.Default);
// nil disables mirroring.
func (t *Trace) SetRegistry(r *telemetry.Registry) { t.reg = r }

// Append records ev. It never allocates after the encoder scratch buffer
// has warmed up, and encodes JSON only when a sink can observe it.
func (t *Trace) Append(ev Event) {
	t.ring[t.total&t.mask] = ev
	t.total++
	t.counts[ev.Type]++
	cQlogEvents.Add(1)
	mirror := t.reg != nil && t.reg.EventSinkActive()
	if t.sink == nil && !mirror {
		return
	}
	t.scratch = appendEventJSON(t.scratch[:0], &ev)
	if t.sink != nil {
		// A sink that fails must never fail the transport it observes.
		_, _ = t.sink.Write(t.scratch)
	}
	if mirror {
		t.reg.EmitJSON(t.scratch)
	}
}

// Total returns the number of events ever appended.
func (t *Trace) Total() uint64 { return t.total }

// Cap returns the ring capacity.
func (t *Trace) Cap() int { return len(t.ring) }

// Count returns how many events of the given type were appended.
func (t *Trace) Count(typ EventType) uint64 {
	if typ >= numEventTypes {
		return 0
	}
	return t.counts[typ]
}

// Cursor is one reader's position in a Trace. Independent cursors read
// independently; a cursor that falls more than the ring capacity behind
// skips ahead to the oldest retained event, accumulating Skipped.
type Cursor struct {
	t *Trace
	// next is the sequence number of the next event to read.
	next uint64
	// Skipped counts events overwritten before this cursor read them.
	Skipped uint64
}

// NewCursor returns a cursor positioned after the newest event (it reads
// only events appended from now on).
func (t *Trace) NewCursor() Cursor { return Cursor{t: t, next: t.total} }

// NewCursorAtOldest returns a cursor positioned at the oldest retained
// event.
func (t *Trace) NewCursorAtOldest() Cursor {
	c := Cursor{t: t}
	if t.total > uint64(len(t.ring)) {
		c.next = t.total - uint64(len(t.ring))
	}
	return c
}

// Next copies the next unread event into ev, returning false when the
// cursor has caught up with the producer.
func (c *Cursor) Next(ev *Event) bool {
	t := c.t
	if c.next >= t.total {
		return false
	}
	if oldest := t.total - uint64(len(t.ring)); t.total > uint64(len(t.ring)) && c.next < oldest {
		c.Skipped += oldest - c.next
		c.next = oldest
	}
	*ev = t.ring[c.next&t.mask]
	c.next++
	return true
}

// appendEventJSON encodes ev as one JSON object plus trailing newline.
// Hand-rolled so the hot path allocates nothing and the byte stream is a
// pure function of the event sequence.
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"t":`...)
	b = appendFloat(b, ev.T)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, '"')
	if ev.Trigger != TriggerNone {
		b = append(b, `,"trigger":"`...)
		b = append(b, ev.Trigger.String()...)
		b = append(b, '"')
	}
	if ev.Bytes != 0 {
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, int64(ev.Bytes), 10)
	}
	if ev.Attempt != 0 {
		b = append(b, `,"attempt":`...)
		b = strconv.AppendInt(b, int64(ev.Attempt), 10)
	}
	if ev.RTT != 0 {
		b = append(b, `,"rtt":`...)
		b = appendFloat(b, ev.RTT)
	}
	if ev.Inflight != 0 {
		b = append(b, `,"inflight":`...)
		b = strconv.AppendInt(b, int64(ev.Inflight), 10)
	}
	if ev.InflightBytes != 0 {
		b = append(b, `,"inflight_bytes":`...)
		b = strconv.AppendInt(b, int64(ev.InflightBytes), 10)
	}
	if ev.Backlog != 0 {
		b = append(b, `,"backlog":`...)
		b = appendFloat(b, ev.Backlog)
	}
	b = append(b, '}', '\n')
	return b
}

// appendFloat writes the shortest representation that round-trips — the
// same contract encoding/json uses, so values compare equal across runs.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
