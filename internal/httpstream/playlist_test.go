package httpstream

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"nerve/internal/video"
)

func getBody(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp
}

func TestMasterPlaylist(t *testing.T) {
	_, ts := testServer(t)
	body, resp := getBody(t, ts.URL+"/master.m3u8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != m3u8ContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.HasPrefix(body, "#EXTM3U\n") {
		t.Fatalf("no EXTM3U header:\n%s", body)
	}
	// One variant per rung, bandwidth in bits/s, pointing at the media
	// playlists.
	for i, kbps := range []int{200, 600} {
		if !strings.Contains(body, fmt.Sprintf("BANDWIDTH=%d", kbps*1000)) {
			t.Errorf("rung %d bandwidth missing:\n%s", i, body)
		}
		if !strings.Contains(body, fmt.Sprintf("/media/%d.m3u8", i)) {
			t.Errorf("rung %d media URI missing:\n%s", i, body)
		}
	}
	if !strings.Contains(body, "RESOLUTION=96x64") {
		t.Errorf("resolution missing:\n%s", body)
	}
}

func TestMediaPlaylistVOD(t *testing.T) {
	_, ts := testServer(t)
	body, resp := getBody(t, ts.URL+"/media/1.m3u8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"#EXT-X-VERSION:3\n",
		"#EXT-X-TARGETDURATION:1\n", // ceil(0.5)
		"#EXT-X-MEDIA-SEQUENCE:0\n",
		"#EXT-X-PLAYLIST-TYPE:VOD\n",
		"#EXT-X-ENDLIST\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q:\n%s", want, body)
		}
	}
	// All three segments of rung 1, in order, each with its duration.
	if got := strings.Count(body, "#EXTINF:0.500,\n"); got != 3 {
		t.Errorf("%d EXTINF entries, want 3:\n%s", got, body)
	}
	for n := 0; n < 3; n++ {
		if !strings.Contains(body, fmt.Sprintf("/segment?rate=1&n=%d\n", n)) {
			t.Errorf("segment %d missing:\n%s", n, body)
		}
	}
	if strings.Contains(body, "#EXT-X-DISCONTINUITY") {
		t.Error("VOD playlist carries a discontinuity tag")
	}
	// The playlist's segment URIs must be servable as-is.
	if _, resp := getBody(t, ts.URL+"/segment?rate=1&n=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("playlist segment URI not servable: %d", resp.StatusCode)
	}
}

func TestMediaPlaylistBadRequests(t *testing.T) {
	_, ts := testServer(t)
	for path, want := range map[string]int{
		"/media/9.m3u8": http.StatusNotFound,
		"/media/x.m3u8": http.StatusBadRequest,
		"/media/1":      http.StatusNotFound,
	} {
		_, resp := getBody(t, ts.URL+path)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d want %d", path, resp.StatusCode, want)
		}
	}
}

// liveServer builds a live-mode origin with a stubbed clock and returns
// the advance function: the stream loops 3 chunks of 0.5 s with a
// 3-segment window.
func liveServer(t *testing.T) (*Server, func(seconds float64)) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		W: 96, H: 64, ChunkSeconds: 0.5, Chunks: 3,
		Rates:  []int{200},
		Source: video.NewGenerator(video.Categories()[2], 7),
		Live:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var nowNano int64
	srv.now = func() int64 { return nowNano }
	srv.startNano = 0
	return srv, func(seconds float64) { nowNano += int64(seconds * 1e9) }
}

func TestLivePlaylistSlidingWindow(t *testing.T) {
	srv, advance := liveServer(t)

	playlist := func() string {
		b, err := srv.mediaPlaylist(0)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	seq := func(body string) int {
		for _, line := range strings.Split(body, "\n") {
			if s, ok := strings.CutPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"); ok {
				var n int
				if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
					t.Fatalf("bad media sequence %q", s)
				}
				return n
			}
		}
		t.Fatalf("no media sequence:\n%s", body)
		return -1
	}

	// At start the window holds only segment 0.
	body := playlist()
	if got := seq(body); got != 0 {
		t.Fatalf("start sequence %d, want 0", got)
	}
	if strings.Contains(body, "#EXT-X-ENDLIST") {
		t.Fatal("live playlist must not end")
	}
	if got := strings.Count(body, "#EXTINF"); got != 1 {
		t.Fatalf("start window holds %d segments, want 1:\n%s", got, body)
	}

	// After 2.0 s the edge is segment 3: window = {1,2,3}, sequence 1,
	// and segment 3 wraps the looping source → URI n=0 behind a
	// discontinuity.
	advance(2.0)
	body = playlist()
	if got := seq(body); got != 1 {
		t.Fatalf("sequence %d after 2 s, want 1", got)
	}
	if got := strings.Count(body, "#EXTINF"); got != 3 {
		t.Fatalf("window holds %d segments, want 3:\n%s", got, body)
	}
	if !strings.Contains(body, "#EXT-X-DISCONTINUITY\n#EXTINF:0.500,\n/segment?rate=0&n=0\n") {
		t.Fatalf("loop wrap not marked with a discontinuity:\n%s", body)
	}

	// The sequence advances monotonically with the clock, one step per
	// chunk duration, and the window URIs always stay within the source
	// loop.
	prev := 1
	for i := 0; i < 10; i++ {
		advance(0.5)
		body = playlist()
		got := seq(body)
		if got != prev+1 {
			t.Fatalf("sequence %d after one chunk duration, want %d", got, prev+1)
		}
		prev = got
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "/segment?") {
				if !strings.Contains(body, "rate=0&n=") {
					t.Fatalf("bad segment URI %q", line)
				}
				var n int
				if _, err := fmt.Sscanf(line, "/segment?rate=0&n=%d", &n); err != nil || n < 0 || n > 2 {
					t.Fatalf("URI %q outside the source loop", line)
				}
			}
		}
	}
}
