package edgecode

import (
	"math/rand"
	"testing"

	"nerve/internal/video"
	"nerve/internal/vmath"
)

// At 2× code resolution the resize stage is the identity in both paths,
// so the byte extractor's squared-domain pipeline must reproduce the
// float extractor's Bits exactly — across whole sequences, with the
// temporal history blend active. This is the differential anchor of the
// fixed-point code path: any rounding regression in the byte tier shows
// up here as a nonzero Hamming distance.
func TestExtractBytesMatchesFloatAtCodeRes(t *testing.T) {
	for _, cat := range video.Categories() {
		g := video.NewGenerator(cat, 3)
		ef := NewExtractor(0, 0)
		eb := NewExtractor(0, 0)
		bp := vmath.NewBytePlane(2*DefaultW, 2*DefaultH)
		qf := vmath.NewPlane(2*DefaultW, 2*DefaultH)
		for f := 0; f < 5; f++ {
			// Byte-quantise the frame once so both paths see the same
			// pixels (the client's fixed tier holds byte frames anyway).
			bp.FromPlane(g.Render(f, 2*DefaultW, 2*DefaultH))
			bp.ToPlane(qf)
			cf := ef.Extract(qf)
			cb := eb.ExtractBytes(bp)
			h, err := Hamming(cf, cb)
			if err != nil {
				t.Fatal(err)
			}
			if h != 0 {
				t.Fatalf("%s frame %d: byte code differs from float code in %d bits", cat.Name, f, h)
			}
		}
	}
}

// At other frame sizes the Q15 byte resize may differ from the float
// resize by one LSB per pixel, flipping isolated near-tie bits. Bound:
// 1 bit per 256 (32 bits of the 8192-bit default code), even on
// adversarial uniform-noise planes where every pixel is near a tie.
func TestExtractBytesDriftBoundRandomPlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bound := DefaultW * DefaultH / 256
	for _, dims := range [][2]int{{256, 128}, {320, 180}, {640, 360}} {
		for trial := 0; trial < 3; trial++ {
			bp := vmath.NewBytePlane(dims[0], dims[1])
			for i := range bp.Pix {
				bp.Pix[i] = uint8(rng.Intn(256))
			}
			qf := bp.ToPlane(vmath.NewPlane(dims[0], dims[1]))
			cf := NewExtractor(0, 0).Extract(qf)
			cb := NewExtractor(0, 0).ExtractBytes(bp)
			h, err := Hamming(cf, cb)
			if err != nil {
				t.Fatal(err)
			}
			if h > bound {
				t.Fatalf("%dx%d trial %d: drift %d bits exceeds %d", dims[0], dims[1], trial, h, bound)
			}
		}
	}
}

// ExtractBytes keeps all scratch on the extractor: after the first
// frame the only heap traffic per call is the returned Code with its
// bitmap plus the par.ForRows closure headers inside the byte resize
// (the same small-constant residue TestIntoKernelsZeroPlaneAlloc
// permits in vmath) — the working buffers never touch the heap, unlike
// a float round-trip would.
func TestExtractBytesSteadyStateAllocs(t *testing.T) {
	g := video.NewGenerator(video.Categories()[0], 5)
	e := NewExtractor(0, 0)
	bp := vmath.NewBytePlane(320, 180)
	bp.FromPlane(g.Render(0, 320, 180))
	e.ExtractBytes(bp) // warm the scratch and the resize tap cache
	allocs := testing.AllocsPerRun(20, func() {
		e.ExtractBytes(bp)
	})
	if allocs > 4 {
		t.Fatalf("steady-state ExtractBytes allocates %.0f objects per call, want ≤4 (Code+Bits and ForRows headers)", allocs)
	}
}

// Reset must clear the byte-tier history as well as the float one, so a
// scene cut restarts He in whichever tier is active.
func TestExtractBytesReset(t *testing.T) {
	g := video.NewGenerator(video.Categories()[1], 9)
	bp := vmath.NewBytePlane(2*DefaultW, 2*DefaultH)
	bp.FromPlane(g.Render(0, 2*DefaultW, 2*DefaultH))

	e := NewExtractor(0, 0)
	first := e.ExtractBytes(bp)
	bp2 := vmath.NewBytePlane(2*DefaultW, 2*DefaultH)
	bp2.FromPlane(g.Render(30, 2*DefaultW, 2*DefaultH))
	e.ExtractBytes(bp2) // pollute the history with a distant frame
	e.Reset()
	again := e.ExtractBytes(bp)
	h, err := Hamming(first, again)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("code after Reset differs from fresh extraction by %d bits", h)
	}
}

func BenchmarkExtractBytes(b *testing.B) {
	g := video.NewGenerator(video.Categories()[0], 1)
	e := NewExtractor(0, 0)
	bp := vmath.NewBytePlane(640, 360)
	bp.FromPlane(g.Render(0, 640, 360))
	e.ExtractBytes(bp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExtractBytes(bp)
	}
}
