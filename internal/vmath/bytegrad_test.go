package vmath

import (
	"math"
	"math/rand"
	"testing"
)

// The squared byte gradient must equal gx²+gy² of the float Sobel
// gradients exactly on integer-valued planes — this exactness is what
// the byte edge-code path's bit-identity with the float extractor
// rests on.
func TestGradientSquaredBytesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bp := NewBytePlane(97, 53) // odd dims exercise the clamped borders
	for i := range bp.Pix {
		bp.Pix[i] = uint8(rng.Intn(256))
	}
	fp := bp.ToPlane(NewPlane(bp.W, bp.H))
	gx, gy := NewPlane(bp.W, bp.H), NewPlane(bp.W, bp.H)
	GradientsInto(gx, gy, fp)

	got := GradientSquaredBytesInto(nil, bp)
	for i := range got {
		fx, fy := int32(gx.Pix[i]), int32(gy.Pix[i])
		if want := fx*fx + fy*fy; got[i] != want {
			t.Fatalf("pixel %d: squared gradient %d, float Sobel gives %d", i, got[i], want)
		}
	}
}

// The integer magnitude is the correctly-rounded float magnitude: within
// half an LSB of hypot on every pixel.
func TestGradientMagnitudeBytesRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bp := NewBytePlane(64, 64)
	for i := range bp.Pix {
		bp.Pix[i] = uint8(rng.Intn(256))
	}
	fp := bp.ToPlane(NewPlane(bp.W, bp.H))
	ref := GradientMagnitudeInto(NewPlane(bp.W, bp.H), fp)

	got := GradientMagnitudeBytesInto(nil, bp)
	for i := range got {
		if diff := math.Abs(float64(got[i]) - float64(ref.Pix[i])); diff > 0.5 {
			t.Fatalf("pixel %d: magnitude %d vs float %v (diff %v)", i, got[i], ref.Pix[i], diff)
		}
	}
}

// Both kernels reuse a caller-grown buffer without reallocating.
func TestGradientBytesIntoReuse(t *testing.T) {
	bp := NewBytePlane(32, 16)
	sq := make([]int32, 0, 32*16)
	if got := GradientSquaredBytesInto(sq, bp); cap(got) != cap(sq) {
		t.Fatal("squared kernel reallocated a sufficient buffer")
	}
	mg := make([]int16, 0, 32*16)
	if got := GradientMagnitudeBytesInto(mg, bp); cap(got) != cap(mg) {
		t.Fatal("magnitude kernel reallocated a sufficient buffer")
	}
}

func BenchmarkGradientSquaredBytes(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bp := NewBytePlane(256, 128)
	for i := range bp.Pix {
		bp.Pix[i] = uint8(rng.Intn(256))
	}
	dst := make([]int32, bp.W*bp.H)
	b.SetBytes(int64(bp.W * bp.H))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GradientSquaredBytesInto(dst, bp)
	}
}
