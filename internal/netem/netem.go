// Package netem is a virtual-time network emulator: an event loop driven by
// a simulated clock, plus a trace-driven link model with serialisation
// delay, a drop-tail queue, propagation delay and a Gilbert–Elliott
// (bursty) loss process. The transport package builds QUIC-like connections
// on top of it; nothing in the package touches the wall clock.
package netem

import (
	"container/heap"
	"math"
	"math/rand"

	"nerve/internal/trace"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a discrete-event simulation clock. The zero value is ready to
// use and starts at time 0.
type Clock struct {
	now float64
	pq  eventHeap
	seq uint64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// run "now".
func (c *Clock) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.seq++
	heap.Push(&c.pq, &event{at: c.now + delay, seq: c.seq, fn: fn})
}

// Step runs the next pending event, returning false when none remain.
func (c *Clock) Step() bool {
	if len(c.pq) == 0 {
		return false
	}
	e := heap.Pop(&c.pq).(*event)
	if e.at > c.now {
		c.now = e.at
	}
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty or the next event is
// after deadline; the clock is left at min(deadline, last event time).
func (c *Clock) RunUntil(deadline float64) {
	for len(c.pq) > 0 && c.pq[0].at <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

// RunUntilIdle processes every pending event (events may schedule more).
func (c *Clock) RunUntilIdle() {
	for c.Step() {
	}
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.pq) }

// LossModel decides per-packet drops.
type LossModel interface {
	// Drop reports whether a packet sent at time t is lost, given the
	// target average loss rate at that time.
	Drop(t, targetLoss float64) bool
}

// GilbertElliott is a two-state bursty loss process. In the Bad state
// packets drop with probability BadLoss; the transition probability into
// Bad is derived per packet so the stationary loss matches the target.
type GilbertElliott struct {
	rng *rand.Rand
	// Recover is the per-packet probability of leaving the Bad state.
	Recover float64
	// BadLoss is the drop probability while in the Bad state.
	BadLoss float64
	bad     bool
}

// NewGilbertElliott returns a loss model with the given burstiness
// (Recover=0.3, BadLoss=0.8 are the defaults used by the experiments).
func NewGilbertElliott(seed int64) *GilbertElliott {
	return &GilbertElliott{rng: rand.New(rand.NewSource(seed)), Recover: 0.3, BadLoss: 0.8}
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(_ float64, target float64) bool {
	if target <= 0 {
		return false
	}
	if target >= g.BadLoss {
		target = g.BadLoss * 0.999
	}
	// Stationary Bad probability πB needed: target = πB·BadLoss.
	piB := target / g.BadLoss
	// Entry probability p with exit q: πB = p/(p+q).
	p := g.Recover * piB / (1 - piB)
	if g.bad {
		if g.rng.Float64() < g.Recover {
			g.bad = false
		}
	} else if g.rng.Float64() < p {
		g.bad = true
	}
	if g.bad {
		return g.rng.Float64() < g.BadLoss
	}
	// Small residual random loss in the Good state.
	return g.rng.Float64() < target*0.05
}

// Bernoulli is an independent (non-bursty) loss model, used by ablations.
type Bernoulli struct{ rng *rand.Rand }

// NewBernoulli returns an independent loss model.
func NewBernoulli(seed int64) *Bernoulli {
	return &Bernoulli{rng: rand.New(rand.NewSource(seed))}
}

// Drop implements LossModel.
func (b *Bernoulli) Drop(_ float64, target float64) bool {
	return b.rng.Float64() < target
}

// Link is a unidirectional trace-driven link: packets are serialised at the
// trace's current throughput, wait in a bounded drop-tail queue, suffer the
// loss process, and arrive one propagation delay (half the trace RTT)
// later.
type Link struct {
	Clock *Clock
	Trace *trace.Trace
	Loss  LossModel
	// MaxQueueDelay bounds queue waiting time; packets that would wait
	// longer are dropped (bufferbloat guard). Defaults to 2 s when zero.
	MaxQueueDelay float64
	// LossScale multiplies the trace loss rate (0 disables loss when
	// DisableLoss is set).
	LossScale   float64
	DisableLoss bool

	busyUntil float64
	// Counters.
	Sent, Dropped, QueueDropped int
}

// NewLink wires a link to a clock and trace.
func NewLink(c *Clock, tr *trace.Trace, loss LossModel) *Link {
	return &Link{Clock: c, Trace: tr, Loss: loss, MaxQueueDelay: 2, LossScale: 1}
}

// QueueDelay returns the current serialisation backlog: how long a packet
// sent now would wait before its first bit hits the wire.
func (l *Link) QueueDelay() float64 {
	d := l.busyUntil - l.Clock.Now()
	if d < 0 {
		return 0
	}
	return d
}

// Send transmits a packet of size bytes; deliver runs at the arrival time
// unless the packet is dropped (queue overflow or loss), in which case
// deliver is never invoked and Send returns false.
func (l *Link) Send(size int, deliver func()) bool {
	now := l.Clock.Now()
	l.Sent++
	bw := l.Trace.ThroughputAt(now)
	if bw <= 0 {
		bw = 1e3
	}
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	if start-now > l.MaxQueueDelay {
		l.QueueDropped++
		return false
	}
	tx := float64(size*8) / bw
	l.busyUntil = start + tx
	if !l.DisableLoss && l.Loss != nil {
		target := l.Trace.LossAt(now) * l.LossScale
		if l.Loss.Drop(now, target) {
			l.Dropped++
			return false
		}
	}
	prop := l.Trace.RTTAt(now) / 2
	l.Clock.Schedule(l.busyUntil-now+prop, deliver)
	return true
}

// FluidDownload integrates the trace's throughput from start until nbytes
// have been delivered, returning the finish time. It is the analytic
// "fluid" model used by chunk-level ABR simulations (loss-induced
// retransmissions are modelled by inflating nbytes at the caller).
func FluidDownload(tr *trace.Trace, start float64, nbytes int) float64 {
	remaining := float64(nbytes) * 8
	t := start
	const dt = 0.05
	for remaining > 0 {
		bw := tr.ThroughputAt(t)
		if bw <= 0 {
			bw = 1e3
		}
		remaining -= bw * dt
		t += dt
		if t-start > 3600 {
			return math.Inf(1) // stalled beyond any reasonable chunk time
		}
	}
	return t
}
