// Package fec implements the forward-error-correction substrate: GF(2⁸)
// arithmetic, a systematic Reed–Solomon erasure code (the workhorse of
// streaming FEC), an interleaved XOR parity code, per-frame packet
// protection, and the offline loss-rate→redundancy planner from §4 of the
// paper ("Joint FEC and video recovery").
package fec

// GF(2⁸) with the AES/QR polynomial x⁸+x⁴+x³+x²+1 (0x11D).
const gfPoly = 0x11D

var (
	gfExp [512]byte // generator powers, doubled to avoid mod in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b must be non-zero).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("fec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (a must be non-zero).
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns a**n.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(gfLog[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// mulSliceAdd computes dst ^= c·src over GF(2⁸) element-wise.
func mulSliceAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// matInvert inverts an n×n GF(256) matrix in place using Gauss–Jordan
// elimination. It returns false if the matrix is singular.
func matInvert(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalise pivot row.
		inv := gfInv(aug[col][col])
		for j := 0; j < 2*n; j++ {
			aug[col][j] = gfMul(aug[col][j], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
