// Command nervevis writes the qualitative visualisation artefacts of
// Figs. 6, 9 and 11 as PGM images.
//
// Usage:
//
//	nervevis -out ./artefacts          # all three figures
//	nervevis -out ./artefacts -fig 9
package main

import (
	"flag"
	"fmt"
	"os"

	"nerve/internal/experiments"
)

func main() {
	var (
		out  = flag.String("out", "artefacts", "output directory")
		fig  = flag.Int("fig", 0, "figure number (6, 9, 11; 0 = all)")
		seed = flag.Int64("seed", 1, "random seed")
		full = flag.Bool("full", false, "paper-scale geometry")
	)
	flag.Parse()

	opts := experiments.Options{Quick: !*full, Seed: *seed, OutDir: *out}
	run := map[int]func(experiments.Options) ([]string, error){
		6: experiments.Fig6, 9: experiments.Fig9, 11: experiments.Fig11,
	}
	var figs []int
	if *fig == 0 {
		figs = []int{6, 9, 11}
	} else if _, ok := run[*fig]; ok {
		figs = []int{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "nervevis: unknown figure %d (6, 9, 11)\n", *fig)
		os.Exit(2)
	}
	for _, f := range figs {
		paths, err := run[f](opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nervevis:", err)
			os.Exit(1)
		}
		fmt.Printf("fig%d:\n", f)
		for _, p := range paths {
			fmt.Printf("  %s\n", p)
		}
	}
}
