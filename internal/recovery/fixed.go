package recovery

import (
	"nerve/internal/flow"
	"nerve/internal/vmath"
	"nerve/internal/warp"
)

// The warp stage of the recovery pipeline — work-resolution resampling of
// the previous frames, base flow estimation and the backward warp — is the
// area-bound part of Recover, and the part with an integer tier. These
// three helpers are the only tier switch: prepPrevWork materialises
// I_{t-1} at work resolution in the active representation, baseFlow
// estimates the extrapolation field from I_{t-2}, and warpPrev consumes
// the prepared plane to produce float warped/valid planes for the (always
// float) mismatch/inpaint/enhance branches. The scratch handoff lives on
// the Recoverer so the float tier still resizes I_{t-1} exactly once per
// frame.

// prepPrevWork resamples prev to work resolution into r.prevWork (float
// tier) or r.prevWorkB (fixed tier). warpPrev releases it.
func (r *Recoverer) prepPrevWork(prev *vmath.Plane) {
	cfg := r.cfg
	if !cfg.FixedPoint {
		r.prevWork = vmath.ResizeBilinearInto(vmath.Get(cfg.WorkW, cfg.WorkH), prev)
		return
	}
	prevB := vmath.GetBytes(prev.W, prev.H).FromPlane(prev)
	r.prevWorkB = vmath.GetBytes(cfg.WorkW, cfg.WorkH)
	vmath.ResizeBilinearBytesInto(r.prevWorkB, prevB)
	vmath.PutBytes(prevB)
}

// baseFlow estimates work-resolution flow I_{t-2} → I_{t-1}, or returns
// nil when I_{t-2} is unavailable. Must run between prepPrevWork and
// warpPrev. The fixed tier runs flow.EstimateBytes over byte pyramids with
// the SWAR SAD; options are identical, and both tiers return a float Field
// owned by the caller.
func (r *Recoverer) baseFlow(in Input) *flow.Field {
	if in.PrevPrev == nil {
		return nil
	}
	cfg := r.cfg
	opts := flow.Options{Levels: 3, Search: 3, ZeroBias: 0.4}
	if !cfg.FixedPoint {
		prevPrevWork := vmath.ResizeBilinearInto(vmath.Get(cfg.WorkW, cfg.WorkH), in.PrevPrev)
		f := flow.Estimate(prevPrevWork, r.prevWork, opts)
		vmath.Put(prevPrevWork)
		return f
	}
	// At large work resolutions the fixed tier estimates flow at half
	// resolution and resamples the field up — block flow is already
	// piecewise-constant, so halving the SAD area costs almost nothing in
	// accuracy but 4× in time. Small frames (and the parity tests' 160×96
	// geometry) keep full resolution.
	fw, fh := cfg.WorkW, cfg.WorkH
	if cfg.WorkH >= 200 {
		fw, fh = cfg.WorkW/2, cfg.WorkH/2
	}
	ppB := vmath.GetBytes(in.PrevPrev.W, in.PrevPrev.H).FromPlane(in.PrevPrev)
	ppFlowB := vmath.GetBytes(fw, fh)
	vmath.ResizeBilinearBytesInto(ppFlowB, ppB)
	vmath.PutBytes(ppB)
	prevFlowB := r.prevWorkB
	if fw != cfg.WorkW || fh != cfg.WorkH {
		prevFlowB = vmath.GetBytes(fw, fh)
		vmath.ResizeBilinearBytesInto(prevFlowB, r.prevWorkB)
	}
	f := flow.EstimateBytes(ppFlowB, prevFlowB, opts)
	vmath.PutBytes(ppFlowB)
	if prevFlowB != r.prevWorkB {
		vmath.PutBytes(prevFlowB)
		up := f.Resample(cfg.WorkW, cfg.WorkH)
		f.Release()
		f = up
	}
	return f
}

// resizeOut lifts the finished work-resolution frame to output resolution
// (float tier; the fixed tier's finishFixed embeds the byte resize).
func (r *Recoverer) resizeOut(work *vmath.Plane) *vmath.Plane {
	return vmath.ResizeBilinearInto(vmath.Get(r.cfg.OutW, r.cfg.OutH), work)
}

// finishFixed is the fixed tier's enhance + output resize, fused so the
// frame is rounded to bytes exactly once: integer binomial unsharp in
// place (vmath.SharpenBytesInto, standing in for the float tier's σ=1
// gaussian unsharp at the same amount), history blend and EMA update in Q8
// against a byte-plane H, then the Q15 SWAR upscale to output resolution.
// The float tier's enhance/resizeOut pair is the reference; the fused
// byte path trades ≤1 LSB per stage for the largest single cut in the
// recovery deadline budget.
func (r *Recoverer) finishFixed(img, valid *vmath.Plane) *vmath.Plane {
	cfg := r.cfg
	imgB := vmath.GetBytes(img.W, img.H).FromPlane(img)
	amount := 0.25 * (float64(cfg.OutH)/float64(cfg.WorkH) - 1)
	if amount > 0.35 {
		amount = 0.35
	}
	if amount > 0.01 {
		vmath.SharpenBytesInto(imgB, imgB, int32(amount*256+0.5))
	}
	if r.historyB != nil && r.historyB.W == imgB.W && r.historyB.H == imgB.H {
		hw := int32(cfg.HistoryWeight*256 + 0.5)
		for i := range imgB.Pix {
			if valid.Pix[i] < 0.5 {
				v := int32(imgB.Pix[i])
				h := int32(r.historyB.Pix[i])
				imgB.Pix[i] = uint8(v + (hw*(h-v)+128)>>8)
			}
		}
	}
	// H ← EMA of recovered frames (0.6 toward the current frame, like the
	// float tier), held as a persistent pooled byte plane.
	if r.historyB == nil || r.historyB.W != imgB.W || r.historyB.H != imgB.H {
		vmath.PutBytes(r.historyB)
		r.historyB = vmath.GetBytes(imgB.W, imgB.H)
		copy(r.historyB.Pix, imgB.Pix)
	} else {
		const ema = 154 // round(0.6 · 256)
		for i := range r.historyB.Pix {
			h := int32(r.historyB.Pix[i])
			v := int32(imgB.Pix[i])
			r.historyB.Pix[i] = uint8(h + (ema*(v-h)+128)>>8)
		}
	}
	res := vmath.Get(cfg.OutW, cfg.OutH)
	if cfg.OutW == imgB.W && cfg.OutH == imgB.H {
		imgB.ToPlane(res)
		vmath.PutBytes(imgB)
		return res
	}
	outB := vmath.GetBytes(cfg.OutW, cfg.OutH)
	vmath.ResizeBilinearBytesInto(outB, imgB)
	vmath.PutBytes(imgB)
	outB.ToPlane(res)
	vmath.PutBytes(outB)
	return res
}

// warpPrev backward-warps the prepared previous frame along f and releases
// the prepared scratch. Both tiers return float planes (owned by the
// caller) with identical semantics: warped pixels plus a 0/1 validity
// mask. The fixed tier's valid mask is bit-identical to the float tier's
// for the same field (the in-bounds test runs on the float positions); the
// warped pixels differ by ≤1 LSB.
func (r *Recoverer) warpPrev(f *flow.Field) (warped, valid *vmath.Plane) {
	cfg := r.cfg
	warped = vmath.Get(cfg.WorkW, cfg.WorkH)
	valid = vmath.Get(cfg.WorkW, cfg.WorkH)
	if !cfg.FixedPoint {
		warp.BackwardInto(warped, valid, r.prevWork, f, cfg.ConfThreshold)
		vmath.Put(r.prevWork)
		r.prevWork = nil
		return warped, valid
	}
	warpedB := vmath.GetBytes(cfg.WorkW, cfg.WorkH)
	validB := vmath.GetBytes(cfg.WorkW, cfg.WorkH)
	warp.BackwardBytesInto(warpedB, validB, r.prevWorkB, f, cfg.ConfThreshold)
	vmath.PutBytes(r.prevWorkB)
	r.prevWorkB = nil
	warpedB.ToPlane(warped)
	validB.ToPlane(valid)
	vmath.PutBytes(warpedB)
	vmath.PutBytes(validB)
	return warped, valid
}
