package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestGoRunsAndJoins(t *testing.T) {
	defer SetWorkers(4)()
	var ran atomic.Bool
	join := Go(func() { ran.Store(true) })
	join()
	if !ran.Load() {
		t.Fatal("fn did not run before join returned")
	}
	join() // idempotent
}

func TestGoInlineFallbackWhenBudgetSpent(t *testing.T) {
	defer SetWorkers(1)()
	ran := false
	join := Go(func() { ran = true })
	if ran {
		t.Fatal("pool size 1: fn must not run before join (sequential schedule)")
	}
	join()
	if !ran {
		t.Fatal("fn did not run at join")
	}
	join() // idempotent in the inline path too
}

func TestGoJoinReRaisesPanic(t *testing.T) {
	defer SetWorkers(4)()
	join := Go(func() { panic("boom") })
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("join did not re-raise the task panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not carry the original message", v)
		}
	}()
	join()
}

func TestGoReleasesBudget(t *testing.T) {
	defer SetWorkers(2)()
	for i := 0; i < 100; i++ {
		join := Go(func() {})
		join()
	}
	// After every task joined, the full budget must be available again —
	// otherwise a For loop would run sequentially forever after.
	if got := reserve(1); got != 1 {
		t.Fatalf("budget leaked: reserve(1) = %d after 100 Go/join pairs", got)
	}
	release(1)
}

func TestGoOverlapsWithForLoops(t *testing.T) {
	defer SetWorkers(4)()
	var sum atomic.Int64
	join := Go(func() {
		For(100, func(i int) { sum.Add(int64(i)) })
	})
	For(100, func(i int) { sum.Add(int64(i)) })
	join()
	if got := sum.Load(); got != 9900 {
		t.Fatalf("sum = %d, want 9900", got)
	}
}
