//go:build race

package vmath

// RaceEnabled reports whether this binary was built with -race. The race
// detector makes sync.Pool drop a random fraction of Puts (to shake out
// use-after-Put bugs), so tests asserting pool hit/reuse determinism or
// zero steady-state allocations skip themselves under -race; the ownership
// and concurrency tests still run.
const RaceEnabled = true
