package core

import "nerve/internal/video"

// videoResolution aliases the ladder type for internal helpers.
type videoResolution = video.Resolution

// nearestResolution maps a frame height to the closest ladder rung (used
// only to look up modelled decode latency for arbitrary test resolutions).
func nearestResolution(h int) video.Resolution {
	best := video.R240
	bestDiff := 1 << 30
	for _, r := range video.Resolutions() {
		_, rh := r.Dims()
		d := rh - h
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestDiff = d
			best = r
		}
	}
	return best
}
