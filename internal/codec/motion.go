package codec

import (
	"encoding/binary"

	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// MBSize is the macroblock size in pixels.
const MBSize = 16

// MV is a full-pel motion vector.
type MV struct{ X, Y int }

// Search pruning telemetry. search.points counts SAD evaluations,
// sad.early_exits counts SADs abandoned mid-block once they exceeded the
// best so far, search.early_terms counts macroblocks whose diamond search
// stopped at the adaptive threshold. See OBSERVABILITY.md.
var (
	cSearchPoints = telemetry.NewCounter("search.points")
	cSADEarlyExit = telemetry.NewCounter("sad.early_exits")
	cEarlyTerms   = telemetry.NewCounter("search.early_terms")
)

// searchStats batches counter increments for one macroblock row so the hot
// loop pays one gated atomic add per counter per row, not per SAD.
type searchStats struct {
	points, sadExits, earlyTerms int64
}

func (s *searchStats) flush() {
	cSearchPoints.Add(s.points)
	cSADEarlyExit.Add(s.sadExits)
	cEarlyTerms.Add(s.earlyTerms)
	*s = searchStats{}
}

// sadMB computes the sum of absolute differences between the MBSize×MBSize
// block of cur at (cx, cy) and the block of ref at (cx+mv.X, cy+mv.Y),
// clamping reads at the frame border. Early-exits once the partial SAD
// after a block row reaches best (the returned partial sum is then only a
// lower bound, exactly like the pre-byte implementation). Interior blocks
// take a packed-uint64 fast path; blocks touching any border take the
// clamped scalar path. Both orders their additions identically, so the
// result is independent of the path taken.
func sadMB(cur, ref *vmath.BytePlane, cx, cy int, mv MV, best int64, st *searchStats) int64 {
	if cx >= 0 && cy >= 0 && cx+MBSize <= cur.W && cy+MBSize <= cur.H &&
		cx+mv.X >= 0 && cy+mv.Y >= 0 && cx+mv.X+MBSize <= ref.W && cy+mv.Y+MBSize <= ref.H {
		return sadMBInterior(cur, ref, cx, cy, mv, best, st)
	}
	return sadMBBorder(cur, ref, cx, cy, mv, best, st)
}

// sadMBInterior is the clamp-free fast path: both blocks fully inside
// their planes, 8 pixels per uint64 packed absolute difference.
func sadMBInterior(cur, ref *vmath.BytePlane, cx, cy int, mv MV, best int64, st *searchStats) int64 {
	var sad int64
	w := cur.W
	co := cy*w + cx
	ro := (cy+mv.Y)*ref.W + cx + mv.X
	for y := 0; y < MBSize; y++ {
		c := cur.Pix[co : co+MBSize : co+MBSize]
		r := ref.Pix[ro : ro+MBSize : ro+MBSize]
		sad += int64(sad8(binary.LittleEndian.Uint64(c), binary.LittleEndian.Uint64(r)) +
			sad8(binary.LittleEndian.Uint64(c[8:]), binary.LittleEndian.Uint64(r[8:])))
		co += w
		ro += ref.W
		if sad >= best {
			if y < MBSize-1 {
				st.sadExits++
			}
			return sad
		}
	}
	return sad
}

// sadMBBorder is the clamped path for macroblocks that touch (or whose
// displaced reference block crosses) a frame border. It mirrors the
// original float implementation: pixels beyond the right/bottom edge of
// cur fall outside the (clipped) block, reference reads clamp.
func sadMBBorder(cur, ref *vmath.BytePlane, cx, cy int, mv MV, best int64, st *searchStats) int64 {
	var sad int64
	for y := 0; y < MBSize; y++ {
		py := cy + y
		if py >= cur.H {
			break
		}
		for x := 0; x < MBSize; x++ {
			px := cx + x
			if px >= cur.W {
				break
			}
			d := int64(cur.Pix[py*cur.W+px]) - int64(ref.AtClamp(px+mv.X, py+mv.Y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= best {
			if y < MBSize-1 {
				st.sadExits++
			}
			return sad
		}
	}
	return sad
}

// sad8 returns the sum of absolute differences of the 8 byte lanes of x
// and y (SWAR: bytes split into even/odd 16-bit lanes, per-lane |max−min|,
// horizontal sum by multiply). Lane sums peak at 8·255 = 2040, well inside
// a 16-bit lane, so nothing overflows.
func sad8(x, y uint64) uint64 {
	const (
		lanes = 0x00ff00ff00ff00ff
		ones  = 0x0001000100010001
	)
	xe, ye := x&lanes, y&lanes
	xo, yo := (x>>8)&lanes, (y>>8)&lanes
	return ((absLanes(xe, ye) + absLanes(xo, yo)) * ones) >> 48
}

// absLanes computes per-16-bit-lane |x−y| for lane values ≤ 255: a guard
// bit at position 8 of each lane records x≥y without cross-lane borrows,
// becomes a 0xff/0x00 lane mask, and selects max−min per lane.
func absLanes(x, y uint64) uint64 {
	const guard = 0x0100010001000100
	s := ((x | guard) - y) & guard
	m := s - (s >> 8)
	max := (x & m) | (y &^ m)
	min := (y & m) | (x &^ m)
	return max - min
}

// diamond search patterns.
var (
	largeDiamond = []MV{{0, -2}, {-1, -1}, {1, -1}, {-2, 0}, {2, 0}, {-1, 1}, {1, 1}, {0, 2}}
	smallDiamond = []MV{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}
)

// mvCostLambda prices one pel of motion-vector difference from the
// bitstream predictor in SAD units — a cheap stand-in for the Exp-Golomb
// bit cost of WriteSE(mv−pred), biasing the search toward vectors that
// code small.
const mvCostLambda = 4

// Adaptive early-termination bounds, in SAD units for a full 16×16 block.
const (
	earlyTermFloor = int64(MBSize * MBSize)     // ~1 grey level per pixel
	earlyTermCap   = int64(8 * MBSize * MBSize) // never accept worse than 8 levels
)

// earlyTerm returns the adaptive early-termination threshold for a block
// given the best SADs of its left neighbour (current row; −1 = unknown)
// and of the co-located block in the previous frame (−1 = unknown): the
// better of the two ×1.25, clamped to [earlyTermFloor, earlyTermCap]. A
// block whose best-so-far SAD is at or below the threshold stops searching
// — its match is already as good as the neighbourhood says is achievable.
func earlyTerm(leftSAD, prevSAD int64) int64 {
	t := leftSAD
	if prevSAD >= 0 && (t < 0 || prevSAD < t) {
		t = prevSAD
	}
	if t < 0 {
		return earlyTermFloor
	}
	t += t >> 2
	if t < earlyTermFloor {
		return earlyTermFloor
	}
	if t > earlyTermCap {
		return earlyTermCap
	}
	return t
}

// median3 returns the median of three ints.
func median3(a, b, c int) int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// predictMV returns the diamond-search seed for macroblock (row, col): the
// component-wise median of the left neighbour's vector (current frame) and
// the top / top-right neighbours from the previous frame's motion field.
// Temporal stand-ins for the spatial top neighbours keep macroblock rows
// independent, preserving the bit-exact row-parallel encode (DESIGN.md
// §6); the first row uses the co-located previous-frame vectors. With no
// previous field the seed degrades to the left vector alone.
func predictMV(prev []MV, cols, row, col int, left MV) MV {
	if prev == nil {
		return left
	}
	r := row - 1
	if r < 0 {
		r = 0
	}
	top := prev[r*cols+col]
	var tr MV
	if col+1 < cols {
		tr = prev[r*cols+col+1]
	}
	return MV{median3(left.X, top.X, tr.X), median3(left.Y, top.Y, tr.Y)}
}

// searchMV finds a motion vector for the macroblock at (cx, cy) in cur
// relative to ref using diamond search seeded by seed, within ±maxRange.
// Candidates compete on SAD plus an mvCostLambda-weighted distance from
// anchor (the bitstream MV predictor); the search stops early once the
// best SAD reaches earlyT. It returns the winning vector and its raw SAD.
func searchMV(cur, ref *vmath.BytePlane, cx, cy int, seed, anchor MV, maxRange int, earlyT int64, st *searchStats) (MV, int64) {
	clampMV := func(m MV) MV {
		if m.X > maxRange {
			m.X = maxRange
		} else if m.X < -maxRange {
			m.X = -maxRange
		}
		if m.Y > maxRange {
			m.Y = maxRange
		} else if m.Y < -maxRange {
			m.Y = -maxRange
		}
		return m
	}
	mvCost := func(m MV) int64 {
		dx, dy := m.X-anchor.X, m.Y-anchor.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return mvCostLambda * int64(dx+dy)
	}
	best := clampMV(seed)
	st.points++
	bestSAD := sadMB(cur, ref, cx, cy, best, 1<<62, st)
	bestCost := bestSAD + mvCost(best)
	// try evaluates cand with a SAD budget of the margin it would need to
	// win on cost; candidates whose MV cost alone disqualifies them are
	// skipped without touching pixels.
	try := func(cand MV) bool {
		budget := bestCost - mvCost(cand)
		if budget <= 0 {
			return false
		}
		st.points++
		s := sadMB(cur, ref, cx, cy, cand, budget, st)
		if c := s + mvCost(cand); c < bestCost {
			best, bestSAD, bestCost = cand, s, c
			return true
		}
		return false
	}
	// The zero vector as a second seed.
	if z := (MV{}); z != best {
		try(z)
	}
	if bestSAD <= earlyT {
		st.earlyTerms++
		return best, bestSAD
	}
	// Large diamond until the centre is best or the match is good enough.
	for iter := 0; iter < 32; iter++ {
		improved := false
		for _, d := range largeDiamond {
			cand := clampMV(MV{best.X + d.X, best.Y + d.Y})
			if cand == best {
				continue
			}
			if try(cand) {
				improved = true
			}
		}
		if !improved {
			break
		}
		if bestSAD <= earlyT {
			st.earlyTerms++
			return best, bestSAD
		}
	}
	// Small-diamond refinement.
	for _, d := range smallDiamond {
		cand := clampMV(MV{best.X + d.X, best.Y + d.Y})
		if cand == best {
			continue
		}
		try(cand)
	}
	return best, bestSAD
}

// SearchFramePredInto motion-searches every macroblock of cur against ref
// into the caller-supplied scratch mvs, growing it only when too small,
// and returns the vectors in macroblock raster order. prev, when non-nil,
// is the previous frame's motion field in the same layout and seeds each
// search with the median predictor (predictMV); nil degrades to plain
// left-vector seeding. Byte shadows of both planes are built in pooled
// buffers for the duration of the call. Rows run concurrently on the
// shared pool; within a row each search is seeded from already-final
// state only, so the result is identical for any pool size.
func SearchFramePredInto(mvs, prev []MV, cur, ref *vmath.Plane, maxRange int) []MV {
	if cur.W != ref.W || cur.H != ref.H {
		panic("codec: SearchFrame plane size mismatch")
	}
	mbRows := (cur.H + MBSize - 1) / MBSize
	mbCols := (cur.W + MBSize - 1) / MBSize
	n := mbRows * mbCols
	if prev != nil && len(prev) != n {
		panic("codec: SearchFrame previous field size mismatch")
	}
	if cap(mvs) < n {
		mvs = make([]MV, n)
	}
	mvs = mvs[:n]
	curB := vmath.GetBytes(cur.W, cur.H).FromPlane(cur)
	refB := vmath.GetBytes(ref.W, ref.H).FromPlane(ref)
	par.For(mbRows, func(row int) {
		var st searchStats
		left := MV{}
		lastSAD := int64(-1)
		for col := 0; col < mbCols; col++ {
			seed := predictMV(prev, mbCols, row, col, left)
			mv, sad := searchMV(curB, refB, col*MBSize, row*MBSize, seed, left, maxRange, earlyTerm(lastSAD, -1), &st)
			mvs[row*mbCols+col] = mv
			left = mv
			lastSAD = sad
		}
		st.flush()
	})
	vmath.PutBytes(curB)
	vmath.PutBytes(refB)
	return mvs
}

// SearchFrameInto is SearchFramePredInto without a previous motion field.
// Per-frame callers keep the returned slice and pass it back the next
// frame for a zero-allocation steady state.
func SearchFrameInto(mvs []MV, cur, ref *vmath.Plane, maxRange int) []MV {
	return SearchFramePredInto(mvs, nil, cur, ref, maxRange)
}

// SearchFrame motion-searches every macroblock of cur against ref and
// returns the vectors in macroblock raster order.
func SearchFrame(cur, ref *vmath.Plane, maxRange int) []MV {
	return SearchFrameInto(nil, cur, ref, maxRange)
}
