//go:build codecref

package codec

// defaultTransforms selects the basis-matrix reference transforms when
// built with -tags codecref — the escape hatch for isolating suspected
// fast-path numerics.
func defaultTransforms() transformSet { return refTransforms() }

// RefTransformsForced reports whether this binary was built with
// -tags codecref (reference DCT forced).
const RefTransformsForced = true

// IntTransformsForced reports whether this binary was built with
// -tags codecint (integer DCT forced). codecref wins when both are set.
const IntTransformsForced = false
