// Quickstart: stream a synthetic clip through the full NERVE pipeline —
// server-side encoding + binary point code extraction, a lossy channel,
// client-side recovery — and print per-frame quality.
package main

import (
	"fmt"
	"log"

	"nerve"
)

func main() {
	const w, h = 320, 180

	// A deterministic "GamePlay" source clip.
	gen := nerve.NewGenerator(nerve.Categories()[3], 42)

	server, err := nerve.NewServer(nerve.ServerConfig{W: w, H: h, TargetBitrate: 1.2e6})
	if err != nil {
		log.Fatal(err)
	}
	client, err := nerve.NewClient(nerve.ClientConfig{W: w, H: h, EnableRecovery: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("frame  class      PSNR(dB)")
	for i := 0; i < 30; i++ {
		src := gen.Render(i, w, h)
		sf, err := server.Process(src)
		if err != nil {
			log.Fatal(err)
		}

		in := nerve.ClientInput{Encoded: sf.Encoded, Code: sf.Code}
		// Frames 10–14 are lost on the media path; the 1 KB binary point
		// code still arrives over the reliable side channel.
		if i >= 10 && i < 15 {
			in.Encoded = nil
		}
		res, err := client.Next(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-9s  %7.2f\n", i, res.Class, nerve.PSNR(src, res.Frame))
	}
	fmt.Printf("\nrecovered fraction: %.0f%%\n", client.RecoveredFraction()*100)
}
