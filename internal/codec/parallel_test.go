package codec

import (
	"bytes"
	"testing"

	"nerve/internal/par"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// benchClip renders n frames at w×h for benchmarks.
func benchClip(b *testing.B, n, w, h int) []*vmath.Plane {
	b.Helper()
	g := video.NewGenerator(video.Categories()[0], 3)
	frames := make([]*vmath.Plane, n)
	for i := range frames {
		frames[i] = g.Render(i, w, h)
	}
	return frames
}

// encodeClip encodes the clip with a fresh encoder at the given pool size
// and returns every frame's slices and reconstruction.
func encodeClip(frames []*vmath.Plane, cfg Config, workers int) []*EncodedFrame {
	defer par.SetWorkers(workers)()
	enc := NewEncoder(cfg)
	out := make([]*EncodedFrame, len(frames))
	for i, f := range frames {
		out[i] = enc.Encode(f)
	}
	return out
}

// TestEncodeParallelBitExact is the codec differential test of the
// concurrency model: encoding with a single-worker pool and with a large
// pool must produce byte-identical bitstreams and reconstructions. Rate
// control feeds each frame's size back into the next quantiser, so any
// divergence would compound and fail loudly.
func TestEncodeParallelBitExact(t *testing.T) {
	frames := testClip(t, 12)
	cfg := Config{W: 160, H: 96, GOP: 5, TargetBitrate: 400e3}

	seq := encodeClip(frames, cfg, 1)
	for _, workers := range []int{2, 8} {
		got := encodeClip(frames, cfg, workers)
		for i := range seq {
			a, b := seq[i], got[i]
			if a.Type != b.Type || len(a.Slices) != len(b.Slices) {
				t.Fatalf("workers=%d frame %d: structure %v/%d slices vs %v/%d slices",
					workers, i, a.Type, len(a.Slices), b.Type, len(b.Slices))
			}
			for si := range a.Slices {
				sa, sb := &a.Slices[si], &b.Slices[si]
				if sa.MBRowStart != sb.MBRowStart || sa.MBRowCount != sb.MBRowCount || sa.Q != sb.Q {
					t.Fatalf("workers=%d frame %d slice %d: header mismatch", workers, i, si)
				}
				if !bytes.Equal(sa.Data, sb.Data) {
					t.Fatalf("workers=%d frame %d slice %d: bitstream differs", workers, i, si)
				}
			}
			for pi := range a.Recon.Pix {
				if a.Recon.Pix[pi] != b.Recon.Pix[pi] {
					t.Fatalf("workers=%d frame %d: recon differs at pixel %d", workers, i, pi)
				}
			}
		}
	}
}

// TestEncodeParallelDecodes checks the parallel encoder's output through
// the decoder: a full decode must reproduce the encoder-side recon exactly.
func TestEncodeParallelDecodes(t *testing.T) {
	defer par.SetWorkers(4)()
	frames := testClip(t, 6)
	cfg := Config{W: 160, H: 96, GOP: 3, TargetBitrate: 400e3}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	for i, f := range frames {
		ef := enc.Encode(f)
		res, err := dec.Decode(ef, nil)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !res.Complete() {
			t.Fatalf("frame %d: incomplete decode of full slice set", i)
		}
		for pi := range res.Frame.Pix {
			if res.Frame.Pix[pi] != ef.Recon.Pix[pi] {
				t.Fatalf("frame %d: decode differs from recon at pixel %d", i, pi)
			}
		}
	}
}

// TestSearchFrameParallelBitExact checks full-frame motion search returns
// identical vectors for any pool size.
func TestSearchFrameParallelBitExact(t *testing.T) {
	frames := testClip(t, 2)

	restore := par.SetWorkers(1)
	want := SearchFrame(frames[1], frames[0], 15)
	restore()
	for _, workers := range []int{2, 8} {
		restore := par.SetWorkers(workers)
		got := SearchFrame(frames[1], frames[0], 15)
		restore()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: mv %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func benchMotionSearch(b *testing.B, workers int) {
	defer par.SetWorkers(workers)()
	frames := benchClip(b, 2, 320, 180)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchFrame(frames[1], frames[0], 15)
	}
}

// BenchmarkMotionSearch is the sequential baseline (pool pinned to 1).
func BenchmarkMotionSearch(b *testing.B) { benchMotionSearch(b, 1) }

// BenchmarkMotionSearchParallel runs the same search on the full pool; run
// with -cpu 1,4 to see the scaling.
func BenchmarkMotionSearchParallel(b *testing.B) { benchMotionSearch(b, 0) }
