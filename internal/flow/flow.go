// Package flow implements coarse-to-fine pyramidal block-matching optical
// flow — the SpyNet substitute used to align consecutive binary point codes
// (recovery) and consecutive low-resolution frames (super-resolution). The
// convention matches motion compensation: Estimate(prev, cur) returns a
// field F such that cur(x, y) ≈ prev(x + U(x,y), y + V(x,y)).
package flow

import (
	"fmt"
	"math"

	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// Field is a dense optical-flow field with per-pixel confidence in [0,1].
// Fields returned by Estimate and Resample are backed by the plane pool;
// when a per-frame caller is done with one it may call Release to recycle
// the storage. Skipping Release only costs garbage, never correctness.
type Field struct {
	W, H int
	U, V []float32
	Conf []float32

	// Pool-backed storage behind U/V/Conf, set only by pooled
	// constructors. nil for fields built with NewField or Clone.
	uP, vP, cP *vmath.Plane
}

// NewField allocates a zero field.
func NewField(w, h int) *Field {
	return &Field{W: w, H: h, U: make([]float32, w*h), V: make([]float32, w*h), Conf: make([]float32, w*h)}
}

// newPooledField builds a field over three dirty pooled planes. Every
// constructor that uses it writes all of U, V and Conf.
func newPooledField(w, h int) *Field {
	uP := vmath.Get(w, h)
	vP := vmath.Get(w, h)
	cP := vmath.Get(w, h)
	return &Field{W: w, H: h, U: uP.Pix, V: vP.Pix, Conf: cP.Pix, uP: uP, vP: vP, cP: cP}
}

// Release returns the field's backing storage to the plane pool and clears
// the field. Only pool-backed fields (from Estimate, Resample) return
// storage; for others Release just clears the slices. The field must not
// be used afterwards. Calling Release is always optional.
func (f *Field) Release() {
	if f == nil {
		return
	}
	vmath.Put(f.uP)
	vmath.Put(f.vP)
	vmath.Put(f.cP)
	f.uP, f.vP, f.cP = nil, nil, nil
	f.U, f.V, f.Conf = nil, nil, nil
}

// At returns (u, v, confidence) at the pixel.
func (f *Field) At(x, y int) (u, v, conf float32) {
	i := y*f.W + x
	return f.U[i], f.V[i], f.Conf[i]
}

// MeanMagnitude returns the average flow vector length.
func (f *Field) MeanMagnitude() float64 {
	if len(f.U) == 0 {
		return 0
	}
	var s float64
	for i := range f.U {
		s += math.Hypot(float64(f.U[i]), float64(f.V[i]))
	}
	return s / float64(len(f.U))
}

// Resample returns the field resized to w×h with vectors scaled by the
// resolution ratio, so the field remains valid at the new geometry. The
// result is pool-backed; Release it when done.
func (f *Field) Resample(w, h int) *Field {
	sx := float32(w) / float32(f.W)
	sy := float32(h) / float32(f.H)
	out := newPooledField(w, h)
	vmath.ResizeBilinearInto(out.uP, vmath.FromSlice(f.W, f.H, f.U))
	vmath.ResizeBilinearInto(out.vP, vmath.FromSlice(f.W, f.H, f.V))
	vmath.ResizeBilinearInto(out.cP, vmath.FromSlice(f.W, f.H, f.Conf))
	for i := range out.U {
		out.U[i] *= sx
		out.V[i] *= sy
	}
	return out
}

// Scale multiplies every vector in place (confidence untouched) and
// returns the field.
func (f *Field) Scale(s float32) *Field {
	for i := range f.U {
		f.U[i] *= s
		f.V[i] *= s
	}
	return f
}

// SnapIntegers rounds vector components that lie within thresh of an
// integer. Integer flow makes backward warping an exact pixel copy, which
// prevents the progressive blur that repeated bilinear resampling inflicts
// on recursively recovered frames (generation loss).
func (f *Field) SnapIntegers(thresh float32) *Field {
	snap := func(v float32) float32 {
		r := float32(math.Round(float64(v)))
		if d := v - r; d < thresh && d > -thresh {
			return r
		}
		return v
	}
	for i := range f.U {
		f.U[i] = snap(f.U[i])
		f.V[i] = snap(f.V[i])
	}
	return f
}

// Clone deep-copies the field.
func (f *Field) Clone() *Field {
	g := NewField(f.W, f.H)
	copy(g.U, f.U)
	copy(g.V, f.V)
	copy(g.Conf, f.Conf)
	return g
}

// Options configures Estimate.
type Options struct {
	// Block is the matching block size (default 8).
	Block int
	// Levels is the pyramid depth (default 3).
	Levels int
	// Search is the per-level search radius in pixels (default 4).
	Search int
	// ZeroBias is the SAD penalty per pixel of candidate displacement
	// (default 0.05). Raise it for sparse inputs (binary point codes)
	// where spurious correspondences abound.
	ZeroBias float64
}

func (o Options) withDefaults() Options {
	if o.Block <= 0 {
		o.Block = 8
	}
	if o.Levels <= 0 {
		o.Levels = 3
	}
	if o.Search <= 0 {
		o.Search = 4
	}
	if o.ZeroBias == 0 {
		o.ZeroBias = 0.05
	}
	return o
}

// Estimate computes flow from prev to cur (both planes must share
// dimensions): cur(x,y) ≈ prev(x+U, y+V).
func Estimate(prev, cur *vmath.Plane, opts Options) *Field {
	defer telemetry.Start(telemetry.StageFlow).Stop()
	if prev.W != cur.W || prev.H != cur.H {
		panic(fmt.Sprintf("flow: size mismatch %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H))
	}
	o := opts.withDefaults()

	// Build pyramids (level 0 = full resolution).
	levels := o.Levels
	for l := levels - 1; l > 0; l-- {
		if cur.W>>l < o.Block || cur.H>>l < o.Block {
			levels = l
		}
	}
	if levels < 1 {
		levels = 1
	}
	// Pyramid levels above 0 live in pooled planes for the duration of the
	// call. A fixed-size array keeps the bookkeeping itself off the heap
	// (Levels beyond the array are clamped — depth 8 halves 270p to
	// nothing anyway).
	if levels > maxPyramidLevels {
		levels = maxPyramidLevels
	}
	var pPrev, pCur [maxPyramidLevels]*vmath.Plane
	pPrev[0], pCur[0] = prev, cur
	for l := 1; l < levels; l++ {
		pPrev[l] = vmath.DownsampleInto(vmath.Get(pPrev[l-1].W/2, pPrev[l-1].H/2), pPrev[l-1], 2, 2)
		pCur[l] = vmath.DownsampleInto(vmath.Get(pCur[l-1].W/2, pCur[l-1].H/2), pCur[l-1], 2, 2)
	}

	var coarse *blockField
	for l := levels - 1; l >= 0; l-- {
		finer := matchLevel(pPrev[l], pCur[l], coarse, o)
		coarse.release()
		coarse = finer
	}
	out := coarse.dense(cur.W, cur.H)
	coarse.release()
	for l := 1; l < levels; l++ {
		vmath.Put(pPrev[l])
		vmath.Put(pCur[l])
	}
	return out
}

const maxPyramidLevels = 8

// blockField is flow at block granularity. Its three lanes live in pooled
// planes; release returns them.
type blockField struct {
	bw, bh int // blocks per row / column
	block  int
	u, v   []float32
	conf   []float32

	uP, vP, cP *vmath.Plane
}

func (b *blockField) release() {
	if b == nil {
		return
	}
	vmath.Put(b.uP)
	vmath.Put(b.vP)
	vmath.Put(b.cP)
	b.u, b.v, b.conf = nil, nil, nil
	b.uP, b.vP, b.cP = nil, nil, nil
}

// dense upsamples block flow to a per-pixel field. The result is
// pool-backed; the caller Releases it.
func (b *blockField) dense(w, h int) *Field {
	out := newPooledField(w, h)
	vmath.ResizeBilinearInto(out.uP, vmath.FromSlice(b.bw, b.bh, b.u))
	vmath.ResizeBilinearInto(out.vP, vmath.FromSlice(b.bw, b.bh, b.v))
	vmath.ResizeBilinearInto(out.cP, vmath.FromSlice(b.bw, b.bh, b.conf))
	return out
}

// matchLevel computes block flow at one pyramid level, seeded by the
// coarser level's result (vectors doubled).
func matchLevel(prev, cur *vmath.Plane, coarse *blockField, o Options) *blockField {
	bw := (cur.W + o.Block - 1) / o.Block
	bh := (cur.H + o.Block - 1) / o.Block
	uP := vmath.Get(bw, bh)
	vP := vmath.Get(bw, bh)
	cP := vmath.Get(bw, bh)
	out := &blockField{bw: bw, bh: bh, block: o.Block,
		u: uP.Pix, v: vP.Pix, conf: cP.Pix, uP: uP, vP: vP, cP: cP}
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			x0 := bx * o.Block
			y0 := by * o.Block
			var seedU, seedV float32
			if coarse != nil {
				cbx := bx * coarse.bw / bw
				cby := by * coarse.bh / bh
				ci := cby*coarse.bw + cbx
				seedU = coarse.u[ci] * 2
				seedV = coarse.v[ci] * 2
			}
			u, v, sad := searchBlock(prev, cur, x0, y0, int(seedU), int(seedV), o)
			i := by*bw + bx
			out.u[i] = float32(u)
			out.v[i] = float32(v)
			// Confidence: normalised inverse SAD per pixel.
			perPix := float64(sad) / float64(o.Block*o.Block)
			out.conf[i] = float32(1 / (1 + perPix/8))
		}
	}
	return out
}

// searchBlock does an exhaustive local search of radius o.Search around the
// seed.
func searchBlock(prev, cur *vmath.Plane, x0, y0, seedU, seedV int, o Options) (u, v int, best float64) {
	best = math.Inf(1)
	r := o.Search
	block := o.Block
	biasScale := o.ZeroBias * float64(block*block) / 64
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			cu := seedU + dx
			cv := seedV + dy
			sad := blockSAD(prev, cur, x0, y0, cu, cv, block, best)
			// Zero-bias regularisation keeps flat/sparse regions stable.
			sad += biasScale * (math.Abs(float64(cu)) + math.Abs(float64(cv)))
			if sad < best {
				best = sad
				u, v = cu, cv
			}
		}
	}
	return u, v, best
}

func blockSAD(prev, cur *vmath.Plane, x0, y0, u, v, block int, limit float64) float64 {
	var sad float64
	for y := 0; y < block; y++ {
		py := y0 + y
		if py >= cur.H {
			break
		}
		for x := 0; x < block; x++ {
			px := x0 + x
			if px >= cur.W {
				break
			}
			d := float64(cur.Pix[py*cur.W+px] - prev.AtClamp(px+u, py+v))
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= limit {
			return sad
		}
	}
	return sad
}

// Extrapolate returns a copy of f with vectors scaled by steps — the
// constant-velocity motion extrapolation the no-hint recovery ablation uses
// to predict frame t+k from flow between t-1 and t.
func Extrapolate(f *Field, steps float64) *Field {
	return f.Clone().Scale(float32(steps))
}
