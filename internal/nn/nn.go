// Package nn is a minimal neural-network library (stdlib only) used for the
// learning components of the reproduction: the Pensieve-style ABR policy
// trained with PPO (§6) and small convolutional heads. It provides dense
// and 2-D convolution layers with backpropagation, ReLU/Tanh activations,
// SGD and Adam optimisers, and the usual regression/policy losses.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is a differentiable module operating on flat float32 vectors.
type Layer interface {
	// Forward computes the layer output for input x (cached for backward).
	Forward(x []float32) []float32
	// Backward consumes dL/dy and returns dL/dx, accumulating parameter
	// gradients internally.
	Backward(dy []float32) []float32
	// Params returns parameter and gradient slices pairwise for the
	// optimiser (may be empty).
	Params() (params, grads [][]float32)
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	W       []float32 // Out×In, row-major
	B       []float32
	dW      []float32
	dB      []float32
	x       []float32
}

// NewDense initialises a dense layer with He-uniform weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float32, in*out), B: make([]float32, out),
		dW: make([]float32, in*out), dB: make([]float32, out),
	}
	limit := float32(math.Sqrt(6.0 / float64(in)))
	for i := range d.W {
		d.W[i] = (rng.Float32()*2 - 1) * limit
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float32) []float32 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense input %d != %d", len(x), d.In))
	}
	d.x = append(d.x[:0], x...)
	y := make([]float32, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In:]
		for i := 0; i < d.In; i++ {
			s += row[i] * x[i]
		}
		y[o] = s
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy []float32) []float32 {
	if len(dy) != d.Out {
		panic("nn: Dense backward size mismatch")
	}
	dx := make([]float32, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.dB[o] += g
		row := d.W[o*d.In:]
		drow := d.dW[o*d.In:]
		for i := 0; i < d.In; i++ {
			drow[i] += g * d.x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() ([][]float32, [][]float32) {
	return [][]float32{d.W, d.B}, [][]float32{d.dW, d.dB}
}

// ReLU is the rectifier activation.
type ReLU struct{ mask []bool }

// Forward implements Layer.
func (r *ReLU) Forward(x []float32) []float32 {
	y := make([]float32, len(x))
	r.mask = make([]bool, len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy []float32) []float32 {
	dx := make([]float32, len(dy))
	for i, m := range r.mask {
		if m {
			dx[i] = dy[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() ([][]float32, [][]float32) { return nil, nil }

// Tanh activation.
type Tanh struct{ y []float32 }

// Forward implements Layer.
func (t *Tanh) Forward(x []float32) []float32 {
	t.y = make([]float32, len(x))
	for i, v := range x {
		t.y[i] = float32(math.Tanh(float64(v)))
	}
	return append([]float32(nil), t.y...)
}

// Backward implements Layer.
func (t *Tanh) Backward(dy []float32) []float32 {
	dx := make([]float32, len(dy))
	for i := range dy {
		dx[i] = dy[i] * (1 - t.y[i]*t.y[i])
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() ([][]float32, [][]float32) { return nil, nil }

// MLP is a layer stack.
type MLP struct{ Layers []Layer }

// NewMLP builds Dense+ReLU hidden layers with a linear head, e.g.
// NewMLP(rng, 10, 64, 64, 5).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], rng))
		if i < len(sizes)-2 {
			m.Layers = append(m.Layers, &ReLU{})
		}
	}
	return m
}

// Forward implements Layer.
func (m *MLP) Forward(x []float32) []float32 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (m *MLP) Backward(dy []float32) []float32 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params implements Layer.
func (m *MLP) Params() ([][]float32, [][]float32) {
	var ps, gs [][]float32
	for _, l := range m.Layers {
		p, g := l.Params()
		ps = append(ps, p...)
		gs = append(gs, g...)
	}
	return ps, gs
}

// ZeroGrads clears accumulated gradients of any layer.
func ZeroGrads(l Layer) {
	_, gs := l.Params()
	for _, g := range gs {
		for i := range g {
			g[i] = 0
		}
	}
}

// Adam is the Adam optimiser.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	t            int
	m, v         [][]float32
}

// NewAdam returns Adam with the usual defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to the layer's parameters from its accumulated
// gradients, then zeroes them.
func (a *Adam) Step(l Layer) {
	ps, gs := l.Params()
	if a.m == nil {
		a.m = make([][]float32, len(ps))
		a.v = make([][]float32, len(ps))
		for i, p := range ps {
			a.m[i] = make([]float32, len(p))
			a.v[i] = make([]float32, len(p))
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range ps {
		g := gs[i]
		m := a.m[i]
		v := a.v[i]
		for j := range p {
			gj := float64(g[j])
			m[j] = float32(a.Beta1*float64(m[j]) + (1-a.Beta1)*gj)
			v[j] = float32(a.Beta2*float64(v[j]) + (1-a.Beta2)*gj*gj)
			mh := float64(m[j]) / bc1
			vh := float64(v[j]) / bc2
			p[j] -= float32(a.LR * mh / (math.Sqrt(vh) + a.Eps))
			g[j] = 0
		}
	}
}

// SGD applies plain gradient descent with the given learning rate and
// zeroes the gradients.
func SGD(l Layer, lr float32) {
	ps, gs := l.Params()
	for i, p := range ps {
		for j := range p {
			p[j] -= lr * gs[i][j]
			gs[i][j] = 0
		}
	}
}

// Softmax returns the softmax of logits (numerically stable).
func Softmax(logits []float32) []float32 {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float32, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - max))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// MSELoss returns ½·mean((pred−target)²) and writes dL/dpred into grad.
func MSELoss(pred, target, grad []float32) float64 {
	if len(pred) != len(target) || len(pred) != len(grad) {
		panic("nn: MSELoss size mismatch")
	}
	var loss float64
	n := float32(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * float64(d) * float64(d)
		grad[i] = d / n
	}
	return loss / float64(len(pred))
}

// CharbonnierLoss returns mean sqrt(diff²+eps²) with gradient in grad.
func CharbonnierLoss(pred, target, grad []float32, eps float64) float64 {
	if eps <= 0 {
		eps = 1e-3
	}
	var loss float64
	n := float64(len(pred))
	for i := range pred {
		d := float64(pred[i] - target[i])
		s := math.Sqrt(d*d + eps*eps)
		loss += s
		grad[i] = float32(d / s / n)
	}
	return loss / n
}
