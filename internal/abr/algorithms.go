package abr

import (
	"math"

	"nerve/internal/video"
)

// State is everything an ABR algorithm may inspect when choosing the next
// chunk's rate.
type State struct {
	// BufferSec is the client playback buffer level in seconds of media.
	BufferSec float64
	// LastRate is the ladder index of the previous chunk (-1 before the
	// first chunk).
	LastRate int
	// ThroughputHistory holds measured per-chunk application throughputs
	// in bits per second, oldest first.
	ThroughputHistory []float64
	// DownloadTimeHistory holds per-chunk download durations in seconds,
	// oldest first (parallel to ThroughputHistory).
	DownloadTimeHistory []float64
	// NextChunkBytes is the size in bytes of the next chunk at each ladder
	// rung, index-aligned with video.Resolutions.
	NextChunkBytes []int
	// ChunksRemaining counts chunks left including the next one.
	ChunksRemaining int
	// PredictedLossRate is the loss forecast for the next chunk as a
	// fraction in [0,1].
	PredictedLossRate float64
	// ChunkSeconds is the chunk duration in seconds (4 s in the paper).
	ChunkSeconds float64
	// CrossLayer, when non-nil, is the transport-level view aggregated
	// from the qlog event stream (see TRANSPORT_EVENTS.md). Algorithms
	// that do not understand it must ignore it; it is nil in chunk-level
	// (fluid) simulations.
	CrossLayer *CrossLayer
}

// Algorithm selects the ladder index for the next chunk.
type Algorithm interface {
	Name() string
	SelectRate(s State) int
	// Reset clears per-session state before a new session.
	Reset()
}

// numRates returns the ladder size for a state.
func numRates(s State) int {
	if len(s.NextChunkBytes) > 0 {
		return len(s.NextChunkBytes)
	}
	return len(video.Resolutions())
}

// RateBased picks the highest rate below a safety fraction of the
// predicted throughput.
type RateBased struct {
	// Safety scales the throughput estimate (default 0.9).
	Safety float64
	// Pred is the throughput predictor (default EWMA 0.3).
	Pred Predictor
}

// NewRateBased returns the classical throughput-based algorithm.
func NewRateBased() *RateBased {
	return &RateBased{Safety: 0.9, Pred: NewEWMA(0.3)}
}

// Name implements Algorithm.
func (r *RateBased) Name() string { return "rate-based" }

// Reset implements Algorithm.
func (r *RateBased) Reset() { r.Pred.Reset() }

// SelectRate implements Algorithm.
func (r *RateBased) SelectRate(s State) int {
	if len(s.ThroughputHistory) > 0 {
		r.Pred.Observe(s.ThroughputHistory[len(s.ThroughputHistory)-1])
	}
	est := r.Pred.Predict() * r.Safety
	best := 0
	for i := 0; i < numRates(s); i++ {
		if video.Resolutions()[i].Bitrate() <= est {
			best = i
		}
	}
	return best
}

// BufferBased is the BBA-style algorithm: the rate is a linear function of
// the buffer level between a reservoir and a cushion.
type BufferBased struct {
	// ReservoirSec and CushionSec bound the linear region (defaults 5/15).
	ReservoirSec, CushionSec float64
}

// NewBufferBased returns a BBA-style algorithm.
func NewBufferBased() *BufferBased {
	return &BufferBased{ReservoirSec: 5, CushionSec: 15}
}

// Name implements Algorithm.
func (b *BufferBased) Name() string { return "buffer-based" }

// Reset implements Algorithm.
func (b *BufferBased) Reset() {}

// SelectRate implements Algorithm.
func (b *BufferBased) SelectRate(s State) int {
	n := numRates(s)
	if s.BufferSec <= b.ReservoirSec {
		return 0
	}
	if s.BufferSec >= b.ReservoirSec+b.CushionSec {
		return n - 1
	}
	f := (s.BufferSec - b.ReservoirSec) / b.CushionSec
	idx := int(f * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// MPC is the robust model-predictive-control algorithm (Yin et al.): it
// enumerates rate plans over a lookahead horizon, simulates the buffer with
// a conservative throughput estimate, and picks the first step of the plan
// with the best QoE.
type MPC struct {
	// Horizon is the lookahead depth in chunks (default 5).
	Horizon int
	// Mu is the rebuffer penalty (default 4.3).
	Mu float64
	// Robust discounts the throughput estimate by the recent maximum
	// prediction error (robustMPC) when true.
	Robust bool
}

// NewMPC returns robustMPC with the usual defaults.
func NewMPC() *MPC { return &MPC{Horizon: 5, Mu: 4.3, Robust: true} }

// Name implements Algorithm.
func (m *MPC) Name() string {
	if m.Robust {
		return "robust-mpc"
	}
	return "mpc"
}

// Reset implements Algorithm.
func (m *MPC) Reset() {}

// SelectRate implements Algorithm.
func (m *MPC) SelectRate(s State) int {
	n := numRates(s)
	est := HarmonicMean(s.ThroughputHistory, 5)
	if est <= 0 {
		return 0
	}
	if m.Robust {
		err := maxPredictionError(s.ThroughputHistory, 5)
		est /= 1 + err
	}
	horizon := m.Horizon
	if s.ChunksRemaining > 0 && s.ChunksRemaining < horizon {
		horizon = s.ChunksRemaining
	}
	if horizon < 1 {
		horizon = 1
	}
	chunkSec := s.ChunkSeconds
	if chunkSec <= 0 {
		chunkSec = 4
	}

	bestQoE := math.Inf(-1)
	bestFirst := 0
	plan := make([]int, horizon)
	var rec func(depth int, buffer, lastMbps, acc float64)
	rec = func(depth int, buffer, lastMbps, acc float64) {
		if depth == horizon {
			if acc > bestQoE {
				bestQoE = acc
				bestFirst = plan[0]
			}
			return
		}
		for r := 0; r < n; r++ {
			plan[depth] = r
			rate := video.Resolutions()[r].Bitrate()
			bytes := rate * chunkSec / 8
			if depth == 0 && len(s.NextChunkBytes) == n {
				bytes = float64(s.NextChunkBytes[r])
			}
			dl := bytes * 8 / est
			rebuf := math.Max(0, dl-buffer)
			newBuf := math.Max(0, buffer-dl) + chunkSec
			mbps := rate / 1e6
			q := mbps - m.Mu*rebuf
			if lastMbps >= 0 {
				q -= math.Abs(mbps - lastMbps)
			}
			rec(depth+1, newBuf, mbps, acc+q)
		}
	}
	last := -1.0
	if s.LastRate >= 0 && s.LastRate < n {
		last = video.Resolutions()[s.LastRate].Bitrate() / 1e6
	}
	rec(0, s.BufferSec, last, 0)
	return bestFirst
}
