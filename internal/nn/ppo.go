package nn

import (
	"math"
	"math/rand"
)

// PPO implements Proximal Policy Optimisation with a clipped surrogate
// objective and generalised advantage estimation — the RL algorithm the
// paper upgrades Pensieve with (§6). The actor outputs action logits; the
// critic predicts state value.
type PPO struct {
	Actor  *MLP
	Critic *MLP

	// Hyper-parameters (defaults from NewPPO).
	Gamma     float64 // discount
	Lambda    float64 // GAE
	Clip      float64 // surrogate clip ε
	Entropy   float64 // entropy bonus coefficient
	Epochs    int     // optimisation epochs per Update
	actorOpt  *Adam
	criticOpt *Adam
	rng       *rand.Rand
}

// NewPPO builds an actor-critic pair for the given state/action sizes.
func NewPPO(stateDim, actions, hidden int, seed int64) *PPO {
	rng := rand.New(rand.NewSource(seed))
	return &PPO{
		Actor:     NewMLP(rng, stateDim, hidden, hidden, actions),
		Critic:    NewMLP(rng, stateDim, hidden, hidden, 1),
		Gamma:     0.99,
		Lambda:    0.95,
		Clip:      0.2,
		Entropy:   0.01,
		Epochs:    4,
		actorOpt:  NewAdam(2e-3),
		criticOpt: NewAdam(4e-3),
		rng:       rng,
	}
}

// Policy returns the action distribution for a state.
func (p *PPO) Policy(state []float32) []float32 {
	return Softmax(p.Actor.Forward(state))
}

// Sample draws an action from the policy and returns it with its log-prob.
func (p *PPO) Sample(state []float32) (action int, logProb float64) {
	probs := p.Policy(state)
	r := p.rng.Float64()
	var acc float64
	action = len(probs) - 1
	for i, pr := range probs {
		acc += float64(pr)
		if r < acc {
			action = i
			break
		}
	}
	return action, math.Log(math.Max(float64(probs[action]), 1e-12))
}

// Greedy returns the argmax action (evaluation mode).
func (p *PPO) Greedy(state []float32) int {
	probs := p.Policy(state)
	best := 0
	for i, pr := range probs {
		if pr > probs[best] {
			best = i
		}
	}
	return best
}

// Value returns the critic's estimate for a state.
func (p *PPO) Value(state []float32) float64 {
	return float64(p.Critic.Forward(state)[0])
}

// Transition is one step of experience.
type Transition struct {
	State   []float32
	Action  int
	Reward  float64
	Done    bool
	LogProb float64 // behaviour-policy log-prob at collection time
}

// Update runs PPO optimisation on a trajectory batch and returns the final
// epoch's mean surrogate loss (useful for monitoring).
func (p *PPO) Update(traj []Transition) float64 {
	n := len(traj)
	if n == 0 {
		return 0
	}
	// Value estimates and GAE advantages.
	values := make([]float64, n+1)
	for i, tr := range traj {
		values[i] = p.Value(tr.State)
	}
	// Bootstrap: zero after terminal, else critic of last state repeated.
	if !traj[n-1].Done {
		values[n] = values[n-1]
	}
	adv := make([]float64, n)
	var gae float64
	for i := n - 1; i >= 0; i-- {
		next := values[i+1]
		if traj[i].Done {
			next = 0
			gae = 0
		}
		delta := traj[i].Reward + p.Gamma*next - values[i]
		gae = delta + p.Gamma*p.Lambda*gae
		adv[i] = gae
	}
	returns := make([]float64, n)
	for i := range returns {
		returns[i] = adv[i] + values[i]
	}
	// Normalise advantages.
	var mean, sq float64
	for _, a := range adv {
		mean += a
	}
	mean /= float64(n)
	for _, a := range adv {
		sq += (a - mean) * (a - mean)
	}
	std := math.Sqrt(sq/float64(n)) + 1e-8
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}

	var lastLoss float64
	for epoch := 0; epoch < p.Epochs; epoch++ {
		var epochLoss float64
		for i, tr := range traj {
			// Actor update.
			logits := p.Actor.Forward(tr.State)
			probs := Softmax(logits)
			lp := math.Log(math.Max(float64(probs[tr.Action]), 1e-12))
			ratio := math.Exp(lp - tr.LogProb)
			clipped := math.Max(math.Min(ratio, 1+p.Clip), 1-p.Clip)
			useRaw := ratio*adv[i] <= clipped*adv[i]
			epochLoss += -math.Min(ratio*adv[i], clipped*adv[i])

			// dL/dlogits for the surrogate: if the unclipped branch is
			// active, ∂(−ratio·A)/∂logits = −ratio·A·(1_a − π); else 0.
			grad := make([]float32, len(logits))
			if useRaw {
				coef := -ratio * adv[i]
				for j := range grad {
					ind := float64(0)
					if j == tr.Action {
						ind = 1
					}
					grad[j] = float32(coef * (ind - float64(probs[j])))
				}
			}
			// Entropy bonus: ∂(−β·H)/∂logit_j = β·π_j·(log π_j + H).
			var h float64
			for _, pr := range probs {
				if pr > 0 {
					h -= float64(pr) * math.Log(float64(pr))
				}
			}
			for j := range grad {
				pj := float64(probs[j])
				if pj > 0 {
					grad[j] += float32(p.Entropy * pj * (math.Log(pj) + h))
				}
			}
			p.Actor.Backward(grad)

			// Critic update toward the empirical return.
			v := p.Critic.Forward(tr.State)
			g := []float32{float32(float64(v[0]) - returns[i])}
			p.Critic.Backward(g)
		}
		p.actorOpt.Step(p.Actor)
		p.criticOpt.Step(p.Critic)
		lastLoss = epochLoss / float64(n)
	}
	return lastLoss
}
