//go:build codecint && !codecref

package codec

// defaultTransforms selects the packed int16×4 SWAR transform tier when
// built with -tags codecint — bit-identical coefficients on every platform
// regardless of FMA contraction or float reassociation, with the
// macroblock coders batching four blocks per transform call
// (dct_int4x.go; the scalar integer set of dct_int.go remains as the
// packed tier's differential-test partner).
func defaultTransforms() transformSet { return int4xTransforms() }

// RefTransformsForced reports whether this binary was built with
// -tags codecref (reference DCT forced).
const RefTransformsForced = false

// IntTransformsForced reports whether this binary was built with
// -tags codecint (integer DCT forced).
const IntTransformsForced = true
