package telemetry

import (
	"math"
	"testing"
	"time"
)

// TestSummaryKnownSamples feeds a known sample set — 1..1000 ms, one
// observation each — and checks the extracted p50/p95/p99 against the
// exact ranks within the histogram's documented ≤12.5% relative bucket
// error. Count, mean and max must be exact.
func TestSummaryKnownSamples(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("Count=%d want 1000", s.Count)
	}
	if s.MaxMs != 1000 {
		t.Fatalf("MaxMs=%g want 1000", s.MaxMs)
	}
	if want := 500.5; math.Abs(s.MeanMs-want) > 0.001 {
		t.Fatalf("MeanMs=%g want %g", s.MeanMs, want)
	}
	within := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.125*want {
			t.Errorf("%s=%g ms, want %g ±12.5%%", name, got, want)
		}
	}
	within("P50Ms", s.P50Ms, 500)
	within("P95Ms", s.P95Ms, 950)
	within("P99Ms", s.P99Ms, 990)
	if !(s.P50Ms <= s.P95Ms && s.P95Ms <= s.P99Ms && s.P99Ms <= s.MaxMs) {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

// TestSummarySkewedSamples uses a bimodal set — a fast mode and a slow
// tail — where the percentiles must split the modes.
func TestSummarySkewedSamples(t *testing.T) {
	var h Histogram
	for i := 0; i < 97; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		h.Observe(400 * time.Millisecond)
	}
	s := h.Summary()
	if s.P50Ms > 3 || s.P95Ms > 3 {
		t.Fatalf("p50/p95 (%g/%g ms) should sit in the fast mode", s.P50Ms, s.P95Ms)
	}
	if s.P99Ms < 300 {
		t.Fatalf("p99=%g ms should land in the slow tail", s.P99Ms)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s != (Summary{}) {
		t.Fatalf("empty histogram summary %+v, want zero value", s)
	}
}

// TestQuantilesMatchesQuantile: the multi-quantile read must agree with
// the single-quantile API it batches.
func TestQuantilesMatchesQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 300; i++ {
		h.Observe(time.Duration(i*i) * time.Microsecond)
	}
	qs := []float64{0.10, 0.50, 0.95, 0.99, 1.0}
	got := h.Quantiles(qs...)
	for i, q := range qs {
		if want := h.Quantile(q); got[i] != want {
			t.Errorf("Quantiles[%g]=%v, Quantile=%v", q, got[i], want)
		}
	}
}
