package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear buckets in nanoseconds. Values
// below 2^(subBits+1) get one bucket each; above that, every power-of-two
// octave is split into 2^subBits linear sub-buckets, bounding the relative
// quantile error at 2^-subBits (12.5%). 496 buckets cover every int64
// duration.
const (
	subBits     = 3
	subBuckets  = 1 << subBits
	histBuckets = 2*subBuckets + 60*subBuckets
)

// histShards is the number of independently updated copies of the bucket
// array. Concurrent recorders from different goroutines land on different
// shards (spread by a hash of the recorded value's low bits, which carry
// clock noise), so the hot atomic adds rarely share a cache line.
const histShards = 8

type histShard struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Histogram is a lock-free duration histogram with p50/p95/p99-style
// quantiles, built for concurrent recording on hot paths: one record is a
// handful of atomic adds on a sharded bucket array, with no allocation
// and no mutex. The zero value is ready to use.
//
// Quantiles are estimated from bucket midpoints, accurate to one
// sub-bucket (≤12.5% relative error); count, sum and max are exact.
type Histogram struct {
	shards [histShards]histShard
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < 2*subBuckets {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	octave := msb - subBits
	within := int(v>>(msb-subBits)) - subBuckets
	return subBuckets + octave*subBuckets + within
}

// bucketBounds returns the inclusive lower bound and width of a bucket.
func bucketBounds(idx int) (lo, width int64) {
	if idx < 2*subBuckets {
		return int64(idx), 1
	}
	octave := idx/subBuckets - 1
	within := idx % subBuckets
	return int64(subBuckets+within) << octave, int64(1) << octave
}

// shardFor spreads records across shards by mixing the recorded value;
// the low bits of a wall-clock duration differ between concurrent
// recorders, so contending goroutines decorrelate.
func shardFor(v uint64) int {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 29
	return int(v & (histShards - 1))
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s := &h.shards[shardFor(uint64(v))]
	s.buckets[bucketIndex(uint64(v))].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded durations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration {
	var n int64
	for i := range h.shards {
		n += h.shards[i].sum.Load()
	}
	return time.Duration(n)
}

// Max returns the largest recorded duration (0 when empty).
func (h *Histogram) Max() time.Duration {
	var m int64
	for i := range h.shards {
		if v := h.shards[i].max.Load(); v > m {
			m = v
		}
	}
	return time.Duration(m)
}

// merge collapses the shards into one bucket array; total is the summed
// count. Reading is atomic per bucket, not frozen — the usual
// consistent-enough view for reporting.
func (h *Histogram) merge() (merged [histBuckets]int64, total int64) {
	for i := range h.shards {
		for b := range merged {
			if n := h.shards[i].buckets[b].Load(); n != 0 {
				merged[b] += n
				total += n
			}
		}
	}
	return
}

// quantileOf reads the q-quantile out of a merged bucket array.
func quantileOf(merged *[histBuckets]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if float64(target) < q*float64(total) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for b, n := range merged {
		cum += n
		if cum >= target {
			lo, width := bucketBounds(b)
			return time.Duration(lo + width/2)
		}
	}
	return time.Duration(0) // unreachable
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the recorded durations,
// estimated as the midpoint of the bucket holding the target rank. An
// empty histogram returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	merged, total := h.merge()
	return quantileOf(&merged, total, q)
}

// Quantiles returns several quantiles in one pass over the buckets —
// cheaper than repeated Quantile calls, and the quantiles are consistent
// with each other (read from one merged view).
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	merged, total := h.merge()
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = quantileOf(&merged, total, q)
	}
	return out
}

// reset zeroes the histogram. It is not atomic with respect to concurrent
// Observe calls; callers quiesce recording first (Registry.Reset is a
// test/startup facility, not a hot-path one).
func (h *Histogram) reset() {
	for i := range h.shards {
		s := &h.shards[i]
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
		for b := range s.buckets {
			s.buckets[b].Store(0)
		}
	}
}
