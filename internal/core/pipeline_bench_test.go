package core

import (
	"testing"

	"nerve/internal/par"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// benchmarkPipeline1080p drives the full client frame graph at the paper's
// headline operating point: 960×540 transmission, 1920×1080 display, one
// complete frame loss in five (recovered from the point code), measured
// per displayed frame. This is the real-time claim of §7 — the gated CI
// budget is the 33 ms frame deadline at 30 FPS on a single core.
func benchmarkPipeline1080p(b *testing.B, tier Tier, workers int) {
	defer par.SetWorkers(workers)()
	const w, h = 960, 540
	srv, err := NewServer(ServerConfig{W: w, H: h, TargetBitrate: 6e6, GOP: 60, PacketPayload: 1200})
	if err != nil {
		b.Fatal(err)
	}
	g := video.NewGenerator(video.Categories()[3], 9)
	const frames = 15
	sfs := make([]*ServerFrame, frames)
	for i := range sfs {
		if sfs[i], err = srv.Process(g.Render(i, w, h)); err != nil {
			b.Fatal(err)
		}
	}
	cli, err := NewClient(ClientConfig{
		W: w, H: h, OutW: 1920, OutH: 1080,
		EnableRecovery: true, EnableSR: true,
		Tier: tier,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := NewPipeline(cli)
	step := func(i int) {
		in := Input{Encoded: sfs[i%frames].Encoded, Code: sfs[i%frames].Code}
		if i%5 == 2 {
			in.Encoded = nil // complete loss → recovery path
		}
		res, err := p.Push(in)
		if err != nil {
			b.Fatal(err)
		}
		if res != nil {
			vmath.Put(res.Frame)
		}
	}
	for i := 0; i < 5; i++ {
		step(i) // warm pools and temporal state across all input paths
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(5 + i)
	}
	b.StopTimer()
	if last := p.Flush(); last != nil {
		vmath.Put(last.Frame)
	}
}

// BenchmarkPipelineFrame1080p is the gated configuration: fixed-point
// kernel tier, single worker — the whole decode→recover→SR frame as pure
// one-core compute (par.Go degrades to inline, so this is also the
// sequential schedule). CI fails if ns/op exceeds the 33 ms deadline
// (benchjson -ceiling-ms).
func BenchmarkPipelineFrame1080p(b *testing.B) { benchmarkPipeline1080p(b, TierFixed, 1) }

// BenchmarkPipelineFrame1080pOverlap shows the pipelining win: same load
// with two workers, enhance(n) overlapped with ingest(n+1).
func BenchmarkPipelineFrame1080pOverlap(b *testing.B) { benchmarkPipeline1080p(b, TierFixed, 2) }

// BenchmarkPipelineFrame1080pFloat is the float-tier reference point for
// the fixed-point speedup.
func BenchmarkPipelineFrame1080pFloat(b *testing.B) { benchmarkPipeline1080p(b, TierFloat, 1) }

// BenchmarkPipelineFrame1080pAuto runs the governor live: the device seed
// prices the float tier inside the budget, so the stream opens float, the
// first wall-clock observations blow the 33 ms deadline on this class of
// hardware, and the governor drops to the fixed tier within the warm-up.
// Gated by the same -ceiling-ms budget as the pinned fixed tier: auto must
// settle fast enough that the deadline holds even with the float frames it
// pays while deciding (warm-up covers them here; probes are far sparser
// than any benchtime).
func BenchmarkPipelineFrame1080pAuto(b *testing.B) { benchmarkPipeline1080p(b, TierAuto, 1) }
