package flow

import (
	"math"
	"math/rand"
	"testing"

	"nerve/internal/video"
	"nerve/internal/vmath"
)

func texture(rng *rand.Rand, w, h int) *vmath.Plane {
	p := vmath.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = rng.Float32() * 255
	}
	return vmath.GaussianBlur(p, 1.2)
}

func shift(p *vmath.Plane, dx, dy int) *vmath.Plane {
	out := vmath.NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			out.Set(x, y, p.AtClamp(x+dx, y+dy))
		}
	}
	return out
}

func TestEstimateGlobalTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prev := texture(rng, 96, 64)
	// cur(x,y) = prev(x+5, y-3) ⇒ U≈5, V≈-3.
	cur := shift(prev, 5, -3)
	f := Estimate(prev, cur, Options{})
	// Check interior pixels (borders are ambiguous).
	var sumU, sumV float64
	n := 0
	for y := 16; y < 48; y++ {
		for x := 16; x < 80; x++ {
			u, v, _ := f.At(x, y)
			sumU += float64(u)
			sumV += float64(v)
			n++
		}
	}
	if math.Abs(sumU/float64(n)-5) > 1 || math.Abs(sumV/float64(n)+3) > 1 {
		t.Fatalf("mean flow (%v, %v), want ≈(5, -3)", sumU/float64(n), sumV/float64(n))
	}
}

func TestEstimateZeroOnIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := texture(rng, 64, 48)
	f := Estimate(p, p, Options{})
	if m := f.MeanMagnitude(); m > 0.3 {
		t.Fatalf("identical frames produced flow magnitude %v", m)
	}
	// Confidence should be high everywhere.
	var minConf float32 = 1
	for _, c := range f.Conf {
		if c < minConf {
			minConf = c
		}
	}
	if minConf < 0.5 {
		t.Fatalf("low confidence %v on identical frames", minConf)
	}
}

func TestEstimateLargeMotionViaPyramid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prev := texture(rng, 128, 96)
	cur := shift(prev, 14, 0) // beyond single-level search radius 4
	f := Estimate(prev, cur, Options{Levels: 3, Search: 4})
	var sumU float64
	n := 0
	for y := 24; y < 72; y++ {
		for x := 32; x < 96; x++ {
			u, _, _ := f.At(x, y)
			sumU += float64(u)
			n++
		}
	}
	if got := sumU / float64(n); math.Abs(got-14) > 2.5 {
		t.Fatalf("pyramid failed on large motion: mean U=%v want 14", got)
	}
}

func TestConfidenceLowOnUnmatchedContent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prev := texture(rng, 64, 64)
	cur := texture(rand.New(rand.NewSource(99)), 64, 64) // unrelated
	f := Estimate(prev, cur, Options{})
	var avg float64
	for _, c := range f.Conf {
		avg += float64(c)
	}
	avg /= float64(len(f.Conf))

	fSame := Estimate(prev, prev, Options{})
	var avgSame float64
	for _, c := range fSame.Conf {
		avgSame += float64(c)
	}
	avgSame /= float64(len(fSame.Conf))
	if avg >= avgSame {
		t.Fatalf("confidence on unrelated content (%v) not below matched (%v)", avg, avgSame)
	}
}

func TestResampleScalesVectors(t *testing.T) {
	f := NewField(4, 4)
	for i := range f.U {
		f.U[i] = 2
		f.V[i] = -1
		f.Conf[i] = 0.5
	}
	g := f.Resample(8, 8)
	if g.W != 8 || g.H != 8 {
		t.Fatal("geometry")
	}
	u, v, c := g.At(4, 4)
	if math.Abs(float64(u)-4) > 1e-4 || math.Abs(float64(v)+2) > 1e-4 {
		t.Fatalf("vectors not scaled: %v %v", u, v)
	}
	if math.Abs(float64(c)-0.5) > 1e-4 {
		t.Fatalf("confidence altered: %v", c)
	}
}

func TestScaleAndExtrapolate(t *testing.T) {
	f := NewField(2, 2)
	f.U[0] = 3
	g := Extrapolate(f, 2)
	if g.U[0] != 6 {
		t.Fatalf("extrapolate: %v", g.U[0])
	}
	if f.U[0] != 3 {
		t.Fatal("Extrapolate mutated input")
	}
	f.Scale(0.5)
	if f.U[0] != 1.5 {
		t.Fatalf("scale: %v", f.U[0])
	}
}

func TestEstimatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Estimate(vmath.NewPlane(8, 8), vmath.NewPlane(9, 8), Options{})
}

func TestEstimateOnSyntheticVideo(t *testing.T) {
	// Real generator frames: flow between consecutive frames should warp
	// prev close to cur (validated end-to-end in the warp package too).
	g := video.NewGenerator(video.Categories()[3], 7)
	prev := g.Render(40, 160, 96)
	cur := g.Render(41, 160, 96)
	f := Estimate(prev, cur, Options{})
	if f.W != 160 || f.H != 96 {
		t.Fatal("field geometry")
	}
	if m := f.MeanMagnitude(); m > 20 {
		t.Fatalf("implausible flow magnitude %v between consecutive frames", m)
	}
}

func TestTinyFrames(t *testing.T) {
	// Frames smaller than a block must not panic.
	a := vmath.NewPlane(5, 5)
	b := vmath.NewPlane(5, 5)
	f := Estimate(a, b, Options{})
	if f.W != 5 || f.H != 5 {
		t.Fatal("tiny frame geometry")
	}
}

func BenchmarkEstimate128x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prev := texture(rng, 128, 64)
	cur := shift(prev, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Estimate(prev, cur, Options{})
	}
}
