package telemetry

import "time"

// Summary is a compact, JSON-ready export of one histogram: the shape a
// latency SLO is judged against. It is the schema used for the fetch
// latency blocks of BENCH_load.json (cmd/nerveload) and is consistent
// with the per-stage fields of Snapshot. All times are milliseconds of
// wall clock; percentiles inherit the histogram's ≤12.5% relative bucket
// error, while Count, MeanMs and MaxMs are exact.
type Summary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary reads the histogram's aggregate in one pass over the buckets.
// An empty histogram summarises to all zeros.
func (h *Histogram) Summary() Summary {
	merged, total := h.merge()
	s := Summary{
		Count: total,
		P50Ms: ms(quantileOf(&merged, total, 0.50)),
		P95Ms: ms(quantileOf(&merged, total, 0.95)),
		P99Ms: ms(quantileOf(&merged, total, 0.99)),
		MaxMs: ms(h.Max()),
	}
	if total > 0 {
		s.MeanMs = ms(time.Duration(int64(h.Sum()) / total))
	}
	return s
}
