// Command nervetrace generates, inspects and downscales synthetic network
// traces calibrated to the paper's Table 2.
//
// Usage:
//
//	nervetrace -net 5g -seconds 300 -seed 3 > trace.json
//	nervetrace -stats -corpus            # Table 2 statistics
//	nervetrace -net 4g -downscale 1.5e6 > scaled.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nerve"
	"nerve/internal/trace"
)

func main() {
	var (
		netName   = flag.String("net", "5g", "network type: 3g, 4g, 5g, wifi")
		seconds   = flag.Float64("seconds", 300, "trace duration")
		seed      = flag.Int64("seed", 1, "random seed")
		stats     = flag.Bool("stats", false, "print statistics instead of JSON")
		corpus    = flag.Bool("corpus", false, "operate on the full Table 2 corpus")
		downscale = flag.Float64("downscale", 0, "downscale mean throughput to this bps (§8.3)")
	)
	flag.Parse()

	if *corpus {
		c := trace.GenerateCorpus(*seed)
		fmt.Println("network  count  dur(s)  Mbps   loss%   CV")
		for _, nt := range trace.NetworkTypes() {
			agg := trace.Aggregate(c[nt])
			fmt.Printf("%-7s  %5d  %6.0f  %5.1f  %5.2f  %4.2f\n",
				nt, agg.Count, agg.AvgDuration, agg.AvgThroughput/1e6, agg.AvgLossRate*100, agg.ThroughputCV)
		}
		return
	}

	var nt nerve.NetworkType
	switch strings.ToLower(*netName) {
	case "3g":
		nt = nerve.Net3G
	case "4g":
		nt = nerve.Net4G
	case "5g":
		nt = nerve.Net5G
	case "wifi":
		nt = nerve.NetWiFi
	default:
		fmt.Fprintf(os.Stderr, "nervetrace: unknown network %q\n", *netName)
		os.Exit(2)
	}

	tr := nerve.GenerateTrace(nt, *seconds, *seed)
	if *downscale > 0 {
		tr = tr.Downscale(*downscale, 0.3e6, 5e6)
	}
	if *stats {
		st := tr.Stat()
		fmt.Printf("name          %s\n", tr.Name)
		fmt.Printf("duration      %.0f s\n", st.AvgDuration)
		fmt.Printf("throughput    %.2f Mbps (CV %.2f)\n", st.AvgThroughput/1e6, st.ThroughputCV)
		fmt.Printf("loss          %.2f%%\n", st.AvgLossRate*100)
		fmt.Printf("rtt           %.0f ms\n", st.AvgRTT*1000)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(tr); err != nil {
		fmt.Fprintln(os.Stderr, "nervetrace:", err)
		os.Exit(1)
	}
}
