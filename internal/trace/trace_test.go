package trace

import (
	"encoding/json"
	"math"
	"testing"
)

func TestNetworkTypeStrings(t *testing.T) {
	want := map[NetworkType]string{Net3G: "3G", Net4G: "4G", Net5G: "5G", NetWiFi: "WiFi"}
	for n, s := range want {
		if n.String() != s {
			t.Errorf("%d → %q want %q", n, n.String(), s)
		}
	}
	if len(NetworkTypes()) != 4 {
		t.Fatal("want 4 network types")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Net5G, 60, 42)
	b := Generate(Net5G, 60, 42)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	c := Generate(Net5G, 60, 43)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateMatchesProfileMean(t *testing.T) {
	for _, n := range NetworkTypes() {
		tr := Generate(n, 300, 7)
		mean, loss, _, _ := Profile(n)
		st := tr.Stat()
		if math.Abs(st.AvgThroughput-mean*1e6) > 1 {
			t.Errorf("%v: mean %v want %v", n, st.AvgThroughput, mean*1e6)
		}
		if st.AvgLossRate < loss*0.3 || st.AvgLossRate > loss*4 {
			t.Errorf("%v: loss %v want ≈%v", n, st.AvgLossRate, loss)
		}
	}
}

func Test5GMostVariable(t *testing.T) {
	cv := map[NetworkType]float64{}
	for _, n := range NetworkTypes() {
		var sum float64
		for s := int64(0); s < 5; s++ {
			sum += Generate(n, 300, 100+s).Stat().ThroughputCV
		}
		cv[n] = sum / 5
	}
	for _, n := range []NetworkType{Net3G, Net4G, NetWiFi} {
		if cv[Net5G] <= cv[n] {
			t.Errorf("5G CV %v not above %v CV %v", cv[Net5G], n, cv[n])
		}
	}
}

func TestCorpusMatchesTable2(t *testing.T) {
	corpus := GenerateCorpus(1)
	wantCounts := map[NetworkType]int{Net3G: 45, Net4G: 62, Net5G: 53, NetWiFi: 68}
	for n, want := range wantCounts {
		if got := len(corpus[n]); got != want {
			t.Errorf("%v count=%d want %d", n, got, want)
		}
		agg := Aggregate(corpus[n])
		meanMbps, _, dur, _ := Profile(n)
		if math.Abs(agg.AvgDuration-dur) > dur*0.12 {
			t.Errorf("%v duration %v want ≈%v", n, agg.AvgDuration, dur)
		}
		if math.Abs(agg.AvgThroughput-meanMbps*1e6) > meanMbps*1e6*0.05 {
			t.Errorf("%v throughput %v want ≈%v Mbps", n, agg.AvgThroughput/1e6, meanMbps)
		}
	}
	// Loss ordering from Table 2: WiFi < 3G < 4G < 5G.
	loss := func(n NetworkType) float64 { return Aggregate(corpus[n]).AvgLossRate }
	if !(loss(NetWiFi) < loss(Net3G) && loss(Net3G) < loss(Net4G) && loss(Net4G) < loss(Net5G)) {
		t.Errorf("loss ordering wrong: wifi=%v 3g=%v 4g=%v 5g=%v",
			loss(NetWiFi), loss(Net3G), loss(Net4G), loss(Net5G))
	}
}

func TestLookupsAndWrap(t *testing.T) {
	tr := Generate(Net4G, 10, 3)
	if tr.ThroughputAt(0) != tr.Samples[0].ThroughputBps {
		t.Fatal("ThroughputAt(0)")
	}
	if tr.ThroughputAt(10.5) != tr.Samples[0].ThroughputBps {
		t.Fatal("cyclic wrap failed")
	}
	if tr.LossAt(3.2) != tr.Samples[3].LossRate {
		t.Fatal("LossAt")
	}
	if tr.RTTAt(9.9) != tr.Samples[9].RTTSeconds {
		t.Fatal("RTTAt")
	}
	var empty Trace
	if empty.ThroughputAt(1) != 0 || empty.LossAt(1) != 0 || empty.RTTAt(1) != 0 {
		t.Fatal("empty trace lookups must be zero")
	}
}

func TestScale(t *testing.T) {
	tr := Generate(Net3G, 20, 5)
	sc := tr.Scale(0.5)
	for i := range tr.Samples {
		if math.Abs(sc.Samples[i].ThroughputBps-tr.Samples[i].ThroughputBps*0.5) > 1e-6 {
			t.Fatal("scale wrong")
		}
		if sc.Samples[i].LossRate != tr.Samples[i].LossRate {
			t.Fatal("scale must not touch loss")
		}
	}
	// Original unchanged.
	if tr.Samples[0].ThroughputBps == sc.Samples[0].ThroughputBps {
		t.Fatal("Scale must copy")
	}
}

func TestDownscale(t *testing.T) {
	tr := Generate(Net5G, 300, 9)
	ds := tr.Downscale(1.5e6, 0.3e6, 5e6)
	st := ds.Stat()
	if st.AvgThroughput < 0.8e6 || st.AvgThroughput > 2.2e6 {
		t.Fatalf("downscaled mean %v not ≈1.5 Mbps", st.AvgThroughput)
	}
	for _, s := range ds.Samples {
		if s.ThroughputBps < 0.3e6-1 || s.ThroughputBps > 5e6+1 {
			t.Fatalf("sample %v outside clamp", s.ThroughputBps)
		}
	}
	// Fluctuation survives downscaling.
	if st.ThroughputCV < 0.05 {
		t.Fatalf("downscaled trace lost its fluctuation: CV=%v", st.ThroughputCV)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Generate(NetWiFi, 5, 11)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Net != tr.Net || len(back.Samples) != len(tr.Samples) {
		t.Fatal("metadata lost in round trip")
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	if st := Aggregate(nil); st.Count != 0 {
		t.Fatal("empty aggregate")
	}
}

func TestStatCV(t *testing.T) {
	tr := &Trace{Interval: 1, Samples: []Sample{
		{ThroughputBps: 1e6}, {ThroughputBps: 1e6},
	}}
	if cv := tr.Stat().ThroughputCV; cv != 0 {
		t.Fatalf("constant trace CV=%v", cv)
	}
}
