// Package device models the mobile client's compute, latency, CPU and
// energy characteristics, calibrated to the iPhone 12 numbers the paper
// reports (§7, §8.4 and Table 1). All simulated client-side processing is
// charged through this model so system experiments account for real-time
// constraints exactly as the paper does.
package device

import (
	"math"

	"nerve/internal/video"
)

// Model is a mobile device cost model. All latencies are in seconds.
type Model struct {
	Name string

	// decodeMS maps ladder rungs to hardware decode latency (ms).
	decodeMS [5]float64

	// InferenceSec is the neural recovery/SR inference latency per frame
	// (the paper: 22 ms for both models, any resolution, FP16 + custom
	// Metal grid-sample).
	InferenceSec float64

	// OptimisedGFLOPS is the effective throughput of a mobile-optimised
	// model (ours: 10.8 GFLOPs in 22 ms ≈ 490 GFLOP/s).
	OptimisedGFLOPS float64
	// BaselineGFLOPS is the effective throughput of an unoptimised
	// research model on the same device (Table 1 baselines average
	// ≈ 20 GFLOP/s: RLSP 132.94 G in 5 s, BasicVSR 71.33 G in 3.5 s).
	BaselineGFLOPS float64

	// Warp latency anchors (paper §7: 29 ms at 1080p, 5 ms at 270p).
	warp1080Sec float64
	warp270Sec  float64

	// CPU utilisation anchors (§8.4): base streaming, 20% frames
	// enhanced, 100% frames enhanced.
	cpuBase, cpu20, cpu100 float64
	// Energy per frame anchors (J).
	energyBase, energy20, energy100 float64
	// BatteryJ is the usable battery energy (J), calibrated so that the
	// paper's 13.2 h → 7.5 h battery projection reproduces.
	BatteryJ float64
}

// IPhone12 returns the calibrated iPhone 12 model.
func IPhone12() *Model {
	return &Model{
		Name:            "iPhone 12",
		decodeMS:        [5]float64{1.8, 2.3, 2.9, 4.1, 6.2},
		InferenceSec:    0.022,
		OptimisedGFLOPS: 10.8 / 0.022,
		BaselineGFLOPS:  22.0,
		warp1080Sec:     0.029,
		warp270Sec:      0.005,
		cpuBase:         0.28, cpu20: 0.37, cpu100: 0.68,
		energyBase: 0.04, energy20: 0.05, energy100: 0.07,
		BatteryJ: 0.04 * 30 * 13.2 * 3600, // ≈ 57 kJ
	}
}

// DecodeLatency returns the hardware decode time for one frame at the rung.
func (m *Model) DecodeLatency(r video.Resolution) float64 {
	return m.decodeMS[r.Index()] / 1000
}

// EnhanceLatency returns the per-frame neural enhancement (SR) latency.
func (m *Model) EnhanceLatency() float64 { return m.InferenceSec }

// RecoveryLatency returns the per-frame neural recovery latency (the paper:
// same model family, identical inference time).
func (m *Model) RecoveryLatency() float64 { return m.InferenceSec }

// TotalFrameLatency is decode plus enhancement — the §8.4 end-to-end
// number that must stay under 33 ms for 30 FPS.
func (m *Model) TotalFrameLatency(r video.Resolution) float64 {
	return m.DecodeLatency(r) + m.InferenceSec
}

// SupportsRealtime reports whether the rung meets the 30 FPS budget.
func (m *Model) SupportsRealtime(r video.Resolution) bool {
	return m.TotalFrameLatency(r) <= 1.0/30
}

// ModelLatency estimates the per-frame latency of an SR model from its
// FLOPs. Mobile-optimised models (small feature maps, FP16, fused warp) run
// at OptimisedGFLOPS; research baselines at BaselineGFLOPS.
func (m *Model) ModelLatency(flopsG float64, optimised bool) float64 {
	if flopsG <= 0 {
		return 0.001
	}
	tput := m.BaselineGFLOPS
	if optimised {
		tput = m.OptimisedGFLOPS
	}
	return flopsG / tput
}

// WarpLatency returns the grid-sample warp time for a frame with the given
// pixel count, interpolating between the paper's 270p and 1080p anchors.
func (m *Model) WarpLatency(w, h int) float64 {
	px := float64(w * h)
	const px270 = 480.0 * 270
	const px1080 = 1920.0 * 1080
	if px <= px270 {
		return m.warp270Sec * px / px270
	}
	f := (px - px270) / (px1080 - px270)
	return m.warp270Sec + f*(m.warp1080Sec-m.warp270Sec)
}

// CPUUtilisation returns the expected CPU fraction when enhancedFrac of
// frames go through neural recovery/enhancement (piecewise-linear through
// the paper's 0%/20%/100% anchors).
func (m *Model) CPUUtilisation(enhancedFrac float64) float64 {
	return interpAnchors(enhancedFrac, m.cpuBase, m.cpu20, m.cpu100)
}

// EnergyPerFrame returns Joules per frame at the given enhanced fraction.
func (m *Model) EnergyPerFrame(enhancedFrac float64) float64 {
	return interpAnchors(enhancedFrac, m.energyBase, m.energy20, m.energy100)
}

// BatteryHours projects battery life at 30 FPS playback with the given
// enhanced fraction.
func (m *Model) BatteryHours(enhancedFrac float64) float64 {
	e := m.EnergyPerFrame(enhancedFrac)
	return m.BatteryJ / (e * video.FPS) / 3600
}

func interpAnchors(f, v0, v20, v100 float64) float64 {
	f = math.Max(0, math.Min(1, f))
	if f <= 0.2 {
		return v0 + (f/0.2)*(v20-v0)
	}
	return v20 + (f-0.2)/0.8*(v100-v20)
}
