package sr

import (
	"fmt"

	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// FastUpscaler is the byte-plane SR head — the fixed-point tier of the
// enhancement stage. Where SuperResolver runs the full §5 model (bicubic
// base, flow-aligned temporal fusion, iterative back-projection, detail
// head) in float planes, FastUpscaler keeps the whole path in uint8/int16:
// an integer binomial unsharp sharpens the LR frame at LR cost, then the
// Q15 SWAR bilinear resize lifts it to display resolution. That is the
// deadline tier: detail synthesis comparable to the analytic head, at
// roughly two integer passes per output pixel, with no temporal state to
// warp — which is what lets a 1080p decode→recover→SR frame fit the 33 ms
// budget on one core (DESIGN.md §10).
//
// The head is stateless across frames (no fusion history), so Reset is a
// no-op kept for interface symmetry and the output depends only on the
// current LR frame.
type FastUpscaler struct {
	cfg   Config
	sharp *vmath.BytePlane // persistent pooled scratch at LR geometry
}

// NewFast builds the byte-plane head for the configuration. Only OutW,
// OutH and DetailBoost are consulted; the temporal and back-projection
// knobs have no fixed-point counterpart.
func NewFast(cfg Config) *FastUpscaler {
	cfg = cfg.withDefaults()
	return &FastUpscaler{cfg: cfg}
}

// Config returns the effective configuration.
func (s *FastUpscaler) Config() Config { return s.cfg }

// Reset drops scratch state (there is no temporal state to clear).
func (s *FastUpscaler) Reset() {
	vmath.PutBytes(s.sharp)
	s.sharp = nil
}

// boost256 derives the Q8 sharpening amount from the upscale factor with
// exactly SuperResolver.detailBoost's formula, rounded once.
func (s *FastUpscaler) boost256(lrW int) int32 {
	var b float32
	if s.cfg.DetailBoost != 0 {
		b = s.cfg.DetailBoost
	} else {
		factor := float32(s.cfg.OutW) / float32(lrW)
		b = 0.08 * (factor - 1)
		if b > 0.35 {
			b = 0.35
		}
		if b < 0 {
			b = 0
		}
	}
	return int32(b*256 + 0.5)
}

// UpscaleBytesInto enhances one LR byte frame into dst, which must be
// OutW×OutH and not alias lr. Every output pixel is written, so dst may
// come dirty from the pool. A warmed-up head performs zero plane
// allocations per call (the LR sharpening scratch is persistent and
// pooled).
func (s *FastUpscaler) UpscaleBytesInto(dst, lr *vmath.BytePlane) *vmath.BytePlane {
	defer telemetry.Start(telemetry.StageSR).Stop()
	if dst.W != s.cfg.OutW || dst.H != s.cfg.OutH {
		panic(fmt.Sprintf("sr: dst %dx%d != configured output %dx%d", dst.W, dst.H, s.cfg.OutW, s.cfg.OutH))
	}
	a256 := s.boost256(lr.W)
	if lr.W == s.cfg.OutW && lr.H == s.cfg.OutH {
		// Same geometry: the head reduces to the sharpen alone.
		vmath.SharpenBytesInto(dst, lr, a256)
		return dst
	}
	if s.sharp == nil || s.sharp.W != lr.W || s.sharp.H != lr.H {
		vmath.PutBytes(s.sharp)
		s.sharp = vmath.GetBytes(lr.W, lr.H)
	}
	// Sharpen at LR cost (a quarter of the output pixels at 2×), then one
	// SWAR bilinear pass to display resolution.
	vmath.SharpenBytesInto(s.sharp, lr, a256)
	vmath.ResizeBilinearBytesInto(dst, s.sharp)
	return dst
}

// Upscale is the float-plane convenience wrapper: it shadows lr into a
// pooled byte plane, runs the byte head and converts back. The returned
// plane is pool-backed and owned by the caller, like SuperResolver's. Hot
// callers should hold byte planes and call UpscaleBytesInto directly to
// skip both conversions.
func (s *FastUpscaler) Upscale(lr *vmath.Plane) *vmath.Plane {
	lrB := vmath.GetBytes(lr.W, lr.H).FromPlane(lr)
	outB := vmath.GetBytes(s.cfg.OutW, s.cfg.OutH)
	s.UpscaleBytesInto(outB, lrB)
	vmath.PutBytes(lrB)
	out := outB.ToPlane(vmath.Get(s.cfg.OutW, s.cfg.OutH))
	vmath.PutBytes(outB)
	return out
}
