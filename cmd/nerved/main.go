// Command nerved runs the NERVE media server over HTTP, or plays a stream
// from one — the deployable server/client split of Fig. 5 on real sockets.
//
// Usage:
//
//	nerved -listen :8080                          # serve
//	nerved -play http://localhost:8080 -lose 2    # stream, losing chunk 2
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"nerve"
	"nerve/internal/httpstream"
	"nerve/internal/video"
)

func main() {
	var (
		listen   = flag.String("listen", "", "address to serve on (e.g. :8080)")
		play     = flag.String("play", "", "base URL of a nerved server to stream from")
		lose     = flag.Int("lose", -1, "chunk index whose media path is lost (client mode)")
		chunks   = flag.Int("chunks", 4, "stream length in chunks (server mode)")
		category = flag.String("category", "GamePlay", "content category (server mode)")
		seed     = flag.Int64("seed", 1, "content seed")
		noRC     = flag.Bool("no-recovery", false, "disable the recovery model (client mode)")
	)
	flag.Parse()

	switch {
	case *listen != "":
		cat, err := video.CategoryByName(*category)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nerved:", err)
			os.Exit(2)
		}
		srv, err := httpstream.NewServer(httpstream.ServerConfig{
			W: 320, H: 180, Chunks: *chunks,
			Source: video.NewGenerator(cat, *seed),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nerved:", err)
			os.Exit(1)
		}
		fmt.Printf("nerved: serving %q on %s (manifest at /manifest)\n", *category, *listen)
		if err := http.ListenAndServe(*listen, srv); err != nil {
			fmt.Fprintln(os.Stderr, "nerved:", err)
			os.Exit(1)
		}
	case *play != "":
		cli, err := httpstream.NewClient(*play, nil, !*noRC)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nerved:", err)
			os.Exit(1)
		}
		m := cli.Manifest()
		fmt.Printf("stream: %dx%d, %d chunks × %.1fs, rates %v kbps\n",
			m.Width, m.Height, m.Chunks, m.ChunkSeconds, m.RatesKbps)
		rate := len(m.RatesKbps) - 1
		// Reconstruct the source locally to report true quality (demo
		// content is deterministic in the seed).
		cat, _ := video.CategoryByName(*category)
		gen := nerve.NewGenerator(cat, *seed)
		fpc := int(m.ChunkSeconds * float64(m.FPS))
		for n := 0; n < m.Chunks; n++ {
			res, err := cli.PlayChunk(n, rate, n == *lose)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nerved:", err)
				os.Exit(1)
			}
			var psnr float64
			for i, f := range res.Frames {
				psnr += nerve.PSNR(gen.Render(n*fpc+i, m.Width, m.Height), f) / float64(len(res.Frames))
			}
			state := "ok"
			if n == *lose {
				state = "LOST (recovered from codes)"
				if *noRC {
					state = "LOST (frame reuse)"
				}
			}
			fmt.Printf("chunk %d: %6d B, %.2f dB  %s\n", n, res.Bytes, psnr, state)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
