package vmath

import (
	"math/rand"
	"testing"

	"nerve/internal/par"
)

// TestResizeParallelBitExact is the vmath differential test of the
// concurrency model: every resampler must produce byte-identical planes
// with a single-worker pool and with a large pool, across sizes that hit
// partial row bands and edge clamping.
func TestResizeParallelBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := randomPlane(rng, 161, 97)
	kernels := map[string]func() *Plane{
		"nearest-up":    func() *Plane { return ResizeNearest(src, 320, 180) },
		"nearest-down":  func() *Plane { return ResizeNearest(src, 40, 23) },
		"bilinear-up":   func() *Plane { return ResizeBilinear(src, 320, 180) },
		"bilinear-down": func() *Plane { return ResizeBilinear(src, 40, 23) },
		"bicubic-up":    func() *Plane { return ResizeBicubic(src, 320, 180) },
		"bicubic-down":  func() *Plane { return ResizeBicubic(src, 40, 23) },
		"downsample":    func() *Plane { return Downsample(src, 2, 3) },
		"convolve":      func() *Plane { return Laplacian(src) },
		"conv-sep":      func() *Plane { return GaussianBlur(src, 1.2) },
	}
	for name, k := range kernels {
		restore := par.SetWorkers(1)
		want := k()
		restore()
		for _, workers := range []int{2, 8} {
			restore := par.SetWorkers(workers)
			got := k()
			restore()
			if got.W != want.W || got.H != want.H {
				t.Fatalf("%s: size %dx%d vs %dx%d", name, got.W, got.H, want.W, want.H)
			}
			for i := range want.Pix {
				if got.Pix[i] != want.Pix[i] {
					t.Fatalf("%s: workers=%d differs from sequential at pixel %d: %v vs %v",
						name, workers, i, got.Pix[i], want.Pix[i])
				}
			}
		}
	}
}

func BenchmarkResizeBicubic4x(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randomPlane(rng, 120, 68)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResizeBicubic(src, 480, 270)
	}
}
