package edgecode

import (
	"fmt"

	"nerve/internal/bits"
)

// Compress packs the code with run-length Exp-Golomb coding of the gaps
// between set bits. Binary point codes are sparse (≈14% density) and
// spatially clustered, so this typically cuts the side-channel payload well
// below the raw 1 KB bitmap — an extension beyond the paper, which sends
// the bitmap raw. The encoding is lossless.
func (c *Code) Compress() []byte {
	var w bits.Writer
	w.WriteBits(uint64(c.W), 16)
	w.WriteBits(uint64(c.H), 16)
	// Gap coding: distance from the previous set bit (first gap from -1).
	prev := -1
	n := c.W * c.H
	count := 0
	for i := 0; i < n; i++ {
		if c.Bits[i>>3]>>(7-uint(i&7))&1 == 1 {
			w.WriteUE(uint32(i - prev - 1))
			prev = i
			count++
		}
	}
	// Terminator: gap past the end marks "no more bits".
	w.WriteUE(uint32(n - prev))
	return w.Bytes()
}

// Decompress reconstructs a code packed by Compress.
func Decompress(data []byte) (*Code, error) {
	r := bits.NewReader(data)
	wv, err := r.ReadBits(16)
	if err != nil {
		return nil, fmt.Errorf("edgecode: short compressed header: %w", err)
	}
	hv, err := r.ReadBits(16)
	if err != nil {
		return nil, fmt.Errorf("edgecode: short compressed header: %w", err)
	}
	c := NewCode(int(wv), int(hv))
	n := c.W * c.H
	pos := -1
	for {
		gap, err := r.ReadUE()
		if err != nil {
			return nil, fmt.Errorf("edgecode: truncated compressed code: %w", err)
		}
		pos += int(gap) + 1
		if pos >= n {
			break
		}
		c.Bits[pos>>3] |= 1 << (7 - uint(pos&7))
	}
	return c, nil
}
