package vmath

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nerve/internal/telemetry"
)

// BytePlane is a dense 2-D uint8 image stored row-major: Pix[y*W+x]. It is
// the byte shadow of a Plane: pixels rounded to the nominal 8-bit [0, 255]
// range. The codec's motion-search kernels run on byte shadows so they can
// process 8 pixels per uint64 word; everything that reconstructs pixels
// stays on float32 Planes.
type BytePlane struct {
	W, H int
	Pix  []uint8
}

// NewBytePlane allocates a zeroed W×H byte plane. It panics if either
// dimension is negative.
func NewBytePlane(w, h int) *BytePlane {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vmath: invalid plane size %dx%d", w, h))
	}
	planeAllocs.Add(1)
	return &BytePlane{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y) without bounds-checking.
func (p *BytePlane) At(x, y int) uint8 { return p.Pix[y*p.W+x] }

// AtClamp returns the pixel at (x, y) with coordinates clamped to the plane
// boundary (replicate padding), like Plane.AtClamp.
func (p *BytePlane) AtClamp(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// PixelByte rounds a nominal [0, 255] float32 pixel to its byte value,
// clamping out-of-range inputs (round half away from zero on the in-range
// part, which is non-negative, so +0.5 truncation is exact).
func PixelByte(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 254.5 {
		return 255
	}
	return uint8(v + 0.5)
}

// FromPlane refreshes p in place as the byte shadow of src (same
// dimensions), rounding each pixel with PixelByte. It returns p for
// chaining; this is the CopyFrom of byte shadows — persistent shadows hold
// one pooled BytePlane and refresh it every frame.
func (p *BytePlane) FromPlane(src *Plane) *BytePlane {
	if p.W != src.W || p.H != src.H {
		panic(fmt.Sprintf("vmath: size mismatch %dx%d vs %dx%d", p.W, p.H, src.W, src.H))
	}
	for i, v := range src.Pix {
		p.Pix[i] = PixelByte(v)
	}
	return p
}

// BytePool is the BytePlane analogue of Pool: a size-bucketed,
// concurrency-safe free list of byte backing arrays, with the same
// ownership contract (Get → caller owns until Put; Put optional; foreign
// or oversize planes are dropped, never adopted incorrectly). Buckets hold
// power-of-two byte counts from 1<<6 to 1<<24. Misses count toward
// PlaneAllocs, so the steady-state allocation proofs cover byte shadows
// too.
type BytePool struct {
	buckets [poolBuckets]sync.Pool
	stats   PoolStats
	check   bytePoolChecker
}

// DefaultBytePool is the process-wide byte-plane pool used by GetBytes and
// PutBytes.
var DefaultBytePool = &BytePool{}

var (
	cBytePoolHit  = telemetry.NewCounter("pool.byte_hit")
	cBytePoolMiss = telemetry.NewCounter("pool.byte_miss")
)

// Get returns a w×h byte plane whose contents are undefined (dirty). The
// caller owns it until Put.
func (p *BytePool) Get(w, h int) *BytePlane {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vmath: invalid plane size %dx%d", w, h))
	}
	n := w * h
	idx := bucketIndex(n)
	if idx < 0 {
		atomic.AddInt64(&p.stats.Misses, 1)
		atomic.AddInt64(&p.stats.BytesLive, int64(n))
		if p == DefaultBytePool {
			cBytePoolMiss.Add(1)
		}
		planeAllocs.Add(1)
		return &BytePlane{W: w, H: h, Pix: make([]uint8, n)}
	}
	bcap := poolBucketCap(idx)
	pl, _ := p.buckets[idx].Get().(*BytePlane)
	if pl == nil {
		atomic.AddInt64(&p.stats.Misses, 1)
		if p == DefaultBytePool {
			cBytePoolMiss.Add(1)
		}
		planeAllocs.Add(1)
		pl = &BytePlane{Pix: make([]uint8, bcap)}
	} else {
		atomic.AddInt64(&p.stats.Hits, 1)
		if p == DefaultBytePool {
			cBytePoolHit.Add(1)
		}
		p.check.onGet(pl)
	}
	atomic.AddInt64(&p.stats.BytesLive, int64(bcap))
	pl.W, pl.H = w, h
	pl.Pix = pl.Pix[:cap(pl.Pix)][:n]
	return pl
}

// Put returns pl to the pool; pl and its Pix slice must not be used again
// by the caller. Planes whose backing capacity is not an exact bucket size
// are dropped. Put(nil) is a no-op.
func (p *BytePool) Put(pl *BytePlane) {
	if pl == nil {
		return
	}
	c := cap(pl.Pix)
	idx := -1
	if c >= 1<<poolMinShift && c <= 1<<poolMaxShift && c&(c-1) == 0 {
		idx = bucketIndex(c)
	}
	delta := int64(len(pl.Pix))
	if idx >= 0 {
		delta = int64(c)
	}
	atomic.AddInt64(&p.stats.BytesLive, -delta)
	if idx < 0 {
		atomic.AddInt64(&p.stats.Drops, 1)
		return
	}
	atomic.AddInt64(&p.stats.Puts, 1)
	p.check.onPut(pl)
	p.buckets[idx].Put(pl)
}

// Stats returns a snapshot of the pool's counters (BytesLive in bytes, not
// float32 elements).
func (p *BytePool) Stats() PoolStats {
	return PoolStats{
		Hits:      atomic.LoadInt64(&p.stats.Hits),
		Misses:    atomic.LoadInt64(&p.stats.Misses),
		Puts:      atomic.LoadInt64(&p.stats.Puts),
		Drops:     atomic.LoadInt64(&p.stats.Drops),
		BytesLive: atomic.LoadInt64(&p.stats.BytesLive),
	}
}

// GetBytes returns a dirty w×h byte plane from the default byte pool.
func GetBytes(w, h int) *BytePlane { return DefaultBytePool.Get(w, h) }

// PutBytes returns a byte plane to the default byte pool.
func PutBytes(pl *BytePlane) { DefaultBytePool.Put(pl) }
