package abr

import (
	"math"

	"nerve/internal/video"
)

// BOLA is the Lyapunov-based buffer-only algorithm of Spiteri et al.
// (cited by the paper among the ABR baselines): for each rung it maximises
// (V·utility + V·γ − buffer-cost)/size using only the buffer level, with
// utilities u_r = ln(rate_r / rate_min).
type BOLA struct {
	// V trades utility against buffer deviation; larger V favours
	// quality. Derived from the buffer target when zero.
	V float64
	// Gamma is the rebuffer-avoidance utility weight (default 5·p, with
	// p the chunk duration weighting from the BOLA paper; we use 5).
	Gamma float64
	// BufferTargetSec anchors the operating point (default 12).
	BufferTargetSec float64
}

// NewBOLA returns BOLA with defaults tuned for the 8–30 s buffer regime.
func NewBOLA() *BOLA { return &BOLA{Gamma: 5, BufferTargetSec: 12} }

// Name implements Algorithm.
func (b *BOLA) Name() string { return "bola" }

// Reset implements Algorithm.
func (b *BOLA) Reset() {}

// SelectRate implements Algorithm.
func (b *BOLA) SelectRate(s State) int {
	n := numRates(s)
	chunkSec := s.ChunkSeconds
	if chunkSec <= 0 {
		chunkSec = 4
	}
	minRate := video.Resolutions()[0].Bitrate()
	maxUtil := math.Log(video.Resolutions()[n-1].Bitrate() / minRate)
	v := b.V
	if v <= 0 {
		// Choose V so the top rung is selected when the buffer sits at
		// the target: V·(u_max + γ) = target.
		v = b.BufferTargetSec / (maxUtil + b.Gamma)
	}
	best := 0
	bestScore := math.Inf(-1)
	for r := 0; r < n; r++ {
		rate := video.Resolutions()[r].Bitrate()
		size := rate * chunkSec // proportional to bits
		util := math.Log(rate / minRate)
		score := (v*(util+b.Gamma) - s.BufferSec) / size
		if score > bestScore {
			bestScore = score
			best = r
		}
	}
	return best
}
