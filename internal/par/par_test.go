package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	defer SetWorkers(0)()
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
}

func TestSetWorkersRestore(t *testing.T) {
	restore := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	inner := SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d after SetWorkers(7)", Workers())
	}
	inner()
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after restore, want 3", Workers())
	}
	restore()
}

func TestForCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		restore := SetWorkers(w)
		const n = 1000
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
			}
		}
		restore()
	}
}

func TestForZeroAndNegative(t *testing.T) {
	calls := 0
	For(0, func(int) { calls++ })
	For(-5, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("fn called %d times for empty ranges", calls)
	}
}

func TestForRowsCoverage(t *testing.T) {
	for _, h := range []int{1, 7, 8, 9, 100, 1080} {
		for _, w := range []int{1, 4} {
			restore := SetWorkers(w)
			covered := make([]int32, h)
			ForRows(h, func(y0, y1 int) {
				if y0 >= y1 || y0 < 0 || y1 > h {
					t.Errorf("bad band [%d,%d) for h=%d", y0, y1, h)
				}
				for y := y0; y < y1; y++ {
					atomic.AddInt32(&covered[y], 1)
				}
			})
			for y, c := range covered {
				if c != 1 {
					t.Fatalf("h=%d workers=%d: row %d covered %d times", h, w, y, c)
				}
			}
			restore()
		}
	}
}

func TestForTilesCoverage(t *testing.T) {
	const w, h, tile = 37, 23, 8
	for _, workers := range []int{1, 4} {
		restore := SetWorkers(workers)
		covered := make([]int32, w*h)
		ForTiles(w, h, tile, func(x0, y0, x1, y1 int) {
			if x0 >= x1 || y0 >= y1 || x1 > w || y1 > h {
				t.Errorf("bad tile [%d,%d)x[%d,%d)", x0, x1, y0, y1)
			}
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					atomic.AddInt32(&covered[y*w+x], 1)
				}
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: pixel %d covered %d times", workers, i, c)
			}
		}
		restore()
	}
}

func TestForErrFirstError(t *testing.T) {
	defer SetWorkers(8)()
	wantErr := errors.New("boom 7")
	err := ForErr(100, func(i int) error {
		if i == 7 {
			return wantErr
		}
		if i == 50 {
			return errors.New("boom 50")
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("ForErr returned %v, want lowest-index error %v", err, wantErr)
	}
	if err := ForErr(100, func(int) error { return nil }); err != nil {
		t.Fatalf("ForErr returned %v for infallible fn", err)
	}
}

func TestNestedLoopsComplete(t *testing.T) {
	// A nested parallel loop must neither deadlock nor oversubscribe: the
	// inner loops find the worker budget spent and run sequentially.
	defer SetWorkers(4)()
	var total atomic.Int64
	For(8, func(i int) {
		ForRows(64, func(y0, y1 int) {
			total.Add(int64(y1 - y0))
		})
	})
	if total.Load() != 8*64 {
		t.Fatalf("nested loops covered %d rows, want %d", total.Load(), 8*64)
	}
}

func TestConcurrencyBound(t *testing.T) {
	defer SetWorkers(4)()
	var cur, peak atomic.Int64
	For(64, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Nested loop while holding a slot: must not add workers beyond
		// the global budget.
		ForRows(16, func(y0, y1 int) {})
		cur.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent workers, budget is 4", p)
	}
	if activeExtra.Load() != 0 {
		t.Fatalf("activeExtra = %d after loops finished, want 0", activeExtra.Load())
	}
}

func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(4)()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic in worker was swallowed")
		}
		if s := fmt.Sprint(v); !strings.Contains(s, "kaboom") {
			t.Fatalf("recovered %q, want original panic value inside", s)
		}
		if activeExtra.Load() != 0 {
			t.Fatalf("activeExtra = %d after panic, want 0", activeExtra.Load())
		}
	}()
	For(100, func(i int) {
		if i == 13 {
			panic("kaboom")
		}
	})
}

func TestSequentialFallbackSameGoroutine(t *testing.T) {
	// With a pool of 1 the loop must run inline on the caller's goroutine
	// in ascending index order.
	defer SetWorkers(1)()
	var got []int
	For(10, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: got[%d] = %d", i, v)
		}
	}
	if len(got) != 10 {
		t.Fatalf("visited %d indices, want 10", len(got))
	}
}

func BenchmarkForRowsOverhead(b *testing.B) {
	sink := make([]float32, 1080*16)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		ForRows(1080, func(y0, y1 int) {
			for y := y0; y < y1; y++ {
				sink[y%len(sink)] += 1
			}
		})
	}
}
