package vmath

// Fixed-point kernels on BytePlane — the int16/SWAR tier of the per-frame
// pipeline. The float Plane kernels in resize.go/conv.go are the reference
// semantics; the kernels here trade float arithmetic for integer lanes
// packed in uint64 words (SIMD-within-a-register, the same idiom as the
// codec's byte-plane SAD) so the recover/SR chain can stay in uint8/int16
// end to end. Each kernel documents its error bound against the float
// reference and is differential-tested against it (fixed_test.go):
//
//   - ResizeNearestBytesInto  — bit-exact (same index math, float64 taps);
//   - ResizeBilinearBytesInto — ≤1 LSB (Q15 weights vs float32 weights);
//   - ConvolveSeparableBytesInto — ≤1 LSB for unit-gain kernels quantised
//     with FixedTaps at shift ≥ 12 (Q6 intermediate rounding + tap
//     quantisation stay under half an LSB combined);
//   - SharpenBytesInto — ≤1 LSB (exact binomial blur, one final rounding).
//
// All destinations are written in full, so they may come dirty from the
// BytePool; intermediates are pooled. Like the float kernels, everything
// parallelises over row bands with pool-size-independent results.

import (
	"encoding/binary"
	"fmt"
	"sync"

	"nerve/internal/par"
)

// fixedWeightShift is the weight precision of the bilinear kernels: Q15,
// so a full weight is 1<<15 and a vertical+horizontal lerp accumulates to
// Q30 before the final rounding shift. Q15 keeps the worst-case weight
// quantisation error (255 · 2·2⁻¹⁵ ≈ 0.016 grey levels) far inside the
// ≤1 LSB contract while two byte samples ride in the two 32-bit lanes of
// one uint64: lane values stay ≤ 255·2¹⁵ < 2²³, so lane products never
// carry into each other.
const fixedWeightShift = 15

// byteTap is one output coordinate of a bilinear resize: the two source
// indices (already border-clamped) and the Q15 weight of i1.
type byteTap struct {
	i0, i1 int32
	w      uint32
}

// tapKey identifies a resize geometry along one axis.
type tapKey struct{ src, dst int }

// resizeTaps caches per-axis tap tables. Resizes happen at a handful of
// fixed geometries every frame (LR→work, LR→display), so the cache keeps
// the warm path allocation-free, like gaussTaps does for blur kernels.
// Cached slices are shared and must never be mutated.
var resizeTaps struct {
	sync.RWMutex
	bilinear map[tapKey][]byteTap
	nearest  map[tapKey][]int32
}

// bilinearTapsFor returns the cached Q15 bilinear tap table mapping dst
// coordinates to src coordinates along one axis, pixel-centre aligned:
// pos = (i+0.5)·src/dst − 0.5, evaluated exactly in integer arithmetic
// (floor of the rational) rather than via float64, which keeps the table
// deterministic across platforms.
func bilinearTapsFor(src, dst int) []byteTap {
	key := tapKey{src, dst}
	resizeTaps.RLock()
	t := resizeTaps.bilinear[key]
	resizeTaps.RUnlock()
	if t != nil {
		return t
	}
	t = make([]byteTap, dst)
	for i := 0; i < dst; i++ {
		// q = floor(((i+0.5)·src/dst − 0.5) · 2¹⁵)
		//   = floor((2i+1)·src·2¹⁴ / dst) − 2¹⁴
		q := (int64(2*i+1)*int64(src)<<14)/int64(dst) - 1<<14
		i0 := int32(q >> fixedWeightShift)
		w := uint32(q & (1<<fixedWeightShift - 1))
		switch {
		case i0 < 0:
			// Replicate padding: both samples clamp to pixel 0, making the
			// weight irrelevant — zero it so the lerp is an exact copy.
			t[i] = byteTap{0, 0, 0}
		case int(i0) >= src-1:
			t[i] = byteTap{int32(src - 1), int32(src - 1), 0}
		default:
			t[i] = byteTap{i0, i0 + 1, w}
		}
	}
	resizeTaps.Lock()
	if resizeTaps.bilinear == nil {
		resizeTaps.bilinear = make(map[tapKey][]byteTap)
	}
	resizeTaps.bilinear[key] = t
	resizeTaps.Unlock()
	return t
}

// nearestTapsFor returns the cached nearest-neighbour source index per dst
// coordinate. The indices are computed with exactly the float64 expression
// ResizeNearestInto uses, so the byte kernel is bit-exact with the float
// one by construction.
func nearestTapsFor(src, dst int) []int32 {
	key := tapKey{src, dst}
	resizeTaps.RLock()
	t := resizeTaps.nearest[key]
	resizeTaps.RUnlock()
	if t != nil {
		return t
	}
	t = make([]int32, dst)
	s := float64(src) / float64(dst)
	for i := 0; i < dst; i++ {
		j := int((float64(i) + 0.5) * s)
		if j >= src {
			j = src - 1
		}
		t[i] = int32(j)
	}
	resizeTaps.Lock()
	if resizeTaps.nearest == nil {
		resizeTaps.nearest = make(map[tapKey][]int32)
	}
	resizeTaps.nearest[key] = t
	resizeTaps.Unlock()
	return t
}

// ResizeNearestBytesInto resamples src to dst's size with nearest-neighbour
// sampling — bit-exact with ResizeNearestInto on a byte shadow. dst must
// not alias src.
func ResizeNearestBytesInto(dst, src *BytePlane) *BytePlane {
	w, h := dst.W, dst.H
	if w == 0 || h == 0 {
		return dst
	}
	if src.W == 0 || src.H == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return dst
	}
	xt := nearestTapsFor(src.W, w)
	yt := nearestTapsFor(src.H, h)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			row := src.Pix[int(yt[y])*src.W:]
			out := dst.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				out[x] = row[xt[x]]
			}
		}
	})
	return dst
}

// ResizeBilinearBytesInto resamples src to dst's size with pixel-centre
// bilinear interpolation in Q15 fixed point. The two vertical neighbours of
// each source column ride in the two 32-bit lanes of one uint64, so a
// single multiply-add performs both horizontal lerps; the vertical lerp
// then runs in 64-bit Q30 with one final round-to-nearest shift.
//
// Error bound vs PixelByte(ResizeBilinearInto(float shadow)): ≤1 LSB
// (weight quantisation ≈0.016 grey levels plus differing rounding at
// exact-half ties). dst must not alias src.
func ResizeBilinearBytesInto(dst, src *BytePlane) *BytePlane {
	w, h := dst.W, dst.H
	if w == 0 || h == 0 {
		return dst
	}
	if src.W == 0 || src.H == 0 {
		for i := range dst.Pix {
			dst.Pix[i] = 0
		}
		return dst
	}
	xt := bilinearTapsFor(src.W, w)
	yt := bilinearTapsFor(src.H, h)
	const one = 1 << fixedWeightShift
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			t := yt[y]
			row0 := src.Pix[int(t.i0)*src.W:]
			row1 := src.Pix[int(t.i1)*src.W:]
			wy := uint64(t.w)
			iwy := uint64(one) - wy
			out := dst.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				tx := xt[x]
				// Lane 0: row0 (top), lane 1: row1 (bottom).
				a := uint64(row0[tx.i0]) | uint64(row1[tx.i0])<<32
				b := uint64(row0[tx.i1]) | uint64(row1[tx.i1])<<32
				// One multiply-add lerps both rows horizontally (Q15 lanes).
				hq := a*(uint64(one)-uint64(tx.w)) + b*uint64(tx.w)
				top := hq & 0xffffffff
				bot := hq >> 32
				// Vertical lerp to Q30, round to nearest.
				out[x] = uint8((top*iwy + bot*wy + 1<<29) >> 30)
			}
		}
	})
	return dst
}

// FixedTaps quantises a float tap vector to Q(shift) int16 taps with
// sum-preserving rounding: each tap is rounded to nearest and the centre
// tap absorbs the residual so the quantised sum equals the rounded
// quantised kernel sum exactly. For a normalised kernel (sum 1) the DC
// gain is therefore exactly 1<<shift, which makes flat regions bit-exact
// through ConvolveSeparableBytesInto.
func FixedTaps(taps []float32, shift uint) []int16 {
	q := make([]int16, len(taps))
	var sumF float64
	var sumQ int64
	for i, t := range taps {
		v := int64(roundHalfAway(float64(t) * float64(int64(1)<<shift)))
		q[i] = int16(v)
		sumQ += v
		sumF += float64(t)
	}
	target := int64(roundHalfAway(sumF * float64(int64(1)<<shift)))
	q[len(q)/2] += int16(target - sumQ)
	return q
}

func roundHalfAway(v float64) int64 {
	if v >= 0 {
		return int64(v + 0.5)
	}
	return -int64(-v + 0.5)
}

// convMidShift is the fractional precision of the horizontal intermediate
// in ConvolveSeparableBytesInto: Q6, stored as a bias-32768 uint16 pair in
// a pooled byte plane. Six fractional bits keep the intermediate rounding
// error (±2⁻⁷ grey levels, scaled by the vertical kernel's ≈unit gain)
// negligible against the ≤1 LSB contract while leaving 9 integer bits of
// headroom: kernels with Σ|kx|·255 < 2^(shift−6)·32768 — i.e. horizontal
// gain below ≈2 — are representable.
const convMidShift = 6

// ConvolveSeparableBytesInto applies a separable filter with Q(shift)
// int16 taps — horizontal kx then vertical ky, replicate padding — to src,
// writing clamped [0,255] bytes into dst (same size as src). The
// horizontal intermediate lives at Q6 in a pooled 2W-wide byte plane
// (bias-32768 uint16 little-endian pairs), so the steady-state cost is
// zero plane allocations; dst MAY alias src. shift must be in [7, 14];
// taps from FixedTaps at shift 12 satisfy the ≤1 LSB contract for
// unit-gain kernels.
//
// When every vertical tap is non-negative (blurs — the hot per-frame
// case), the vertical pass runs a SWAR fast path: two biased-uint16
// columns ride in the 32-bit lanes of one uint64 and accumulate with one
// multiply-add per tap. The fast path computes exactly the same sums as
// the scalar path (the bias unfolds after accumulation), so results are
// identical with and without it.
func ConvolveSeparableBytesInto(dst, src *BytePlane, kx, ky []int16, shift uint) *BytePlane {
	if len(kx)%2 == 0 || len(ky)%2 == 0 {
		panic("vmath: ConvolveSeparableBytes needs odd tap vectors")
	}
	if shift < 7 || shift > 14 {
		panic(fmt.Sprintf("vmath: ConvolveSeparableBytes shift %d outside [7, 14]", shift))
	}
	if dst.W != src.W || dst.H != src.H {
		panic(fmt.Sprintf("vmath: dst size %dx%d != %dx%d", dst.W, dst.H, src.W, src.H))
	}
	var sumAbsX int64
	for _, k := range kx {
		if k < 0 {
			sumAbsX -= int64(k)
		} else {
			sumAbsX += int64(k)
		}
	}
	// The Q6 intermediate must fit the biased int16: |mid| ≤ 32767.
	if (sumAbsX*255)>>(shift-convMidShift) > 32767 {
		panic("vmath: ConvolveSeparableBytes horizontal gain too large for the Q6 intermediate")
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return dst
	}

	// Horizontal pass: int32 accumulate at Q(shift), round to Q6, store
	// biased in a pooled 2W-wide byte plane.
	mid := GetBytes(2*w, h)
	rx := len(kx) / 2
	roundH := int32(1) << (shift - convMidShift - 1)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			srow := src.Pix[y*w : y*w+w]
			mrow := mid.Pix[y*2*w : y*2*w+2*w]
			for x := 0; x < w; x++ {
				var acc int32
				for i, k := range kx {
					sx := x + i - rx
					if sx < 0 {
						sx = 0
					} else if sx >= w {
						sx = w - 1
					}
					acc += int32(k) * int32(srow[sx])
				}
				m := (acc + roundH) >> (shift - convMidShift)
				binary.LittleEndian.PutUint16(mrow[2*x:], uint16(m+32768))
			}
		}
	})

	// Vertical pass: Q(shift)·Q6 accumulate, one rounding shift to bytes.
	ry := len(ky) / 2
	outShift := shift + convMidShift
	roundV := int64(1) << (outShift - 1)
	allNonNeg := true
	var sumY int64
	for _, k := range ky {
		if k < 0 {
			allNonNeg = false
		}
		sumY += int64(k)
	}
	// SWAR lane bound: Σky · 65535 must stay below 2³² so biased lanes
	// never carry. Σky ≤ 2¹⁴ (shift ≤ 14 with ≈unit gain) keeps this true;
	// oversized kernels just take the scalar path.
	swar := allNonNeg && sumY*65535 < 1<<32
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			orow := dst.Pix[y*w : y*w+w]
			x := 0
			if swar {
				for ; x+1 < w; x += 2 {
					var acc uint64
					for j, k := range ky {
						sy := y + j - ry
						if sy < 0 {
							sy = 0
						} else if sy >= h {
							sy = h - 1
						}
						mrow := mid.Pix[sy*2*w+2*x:]
						u := uint64(binary.LittleEndian.Uint16(mrow)) |
							uint64(binary.LittleEndian.Uint16(mrow[2:]))<<32
						acc += uint64(k) * u
					}
					bias := uint64(sumY) * 32768
					orow[x] = clampByteQ(int64(acc&0xffffffff)-int64(bias), roundV, outShift)
					orow[x+1] = clampByteQ(int64(acc>>32)-int64(bias), roundV, outShift)
				}
			}
			for ; x < w; x++ {
				var acc int64
				for j, k := range ky {
					sy := y + j - ry
					if sy < 0 {
						sy = 0
					} else if sy >= h {
						sy = h - 1
					}
					u := binary.LittleEndian.Uint16(mid.Pix[sy*2*w+2*x:])
					acc += int64(k) * (int64(u) - 32768)
				}
				orow[x] = clampByteQ(acc, roundV, outShift)
			}
		}
	})
	PutBytes(mid)
	return dst
}

// clampByteQ rounds a Q(outShift) accumulator to a clamped byte.
func clampByteQ(acc, round int64, outShift uint) uint8 {
	v := (acc + round) >> outShift
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// SharpenBytesInto applies a binomial unsharp mask to src in integer
// arithmetic: dst = clamp(src + amount·(src − blur(src))), where blur is
// the separable [1 2 1]/4 kernel and amount is the Q8 fraction a256/256.
// The blur is computed exactly (Q4 integer, no intermediate rounding —
// the horizontal Q2 sums live in a pooled 2W-wide byte plane as uint16
// pairs), so the only rounding is the final Q12→byte shift: ≤1 LSB vs the
// float composite. dst MAY alias src. a256 ≤ 0 copies src.
func SharpenBytesInto(dst, src *BytePlane, a256 int32) *BytePlane {
	if dst.W != src.W || dst.H != src.H {
		panic(fmt.Sprintf("vmath: dst size %dx%d != %dx%d", dst.W, dst.H, src.W, src.H))
	}
	w, h := src.W, src.H
	if w == 0 || h == 0 {
		return dst
	}
	if a256 <= 0 {
		if dst != src {
			copy(dst.Pix, src.Pix)
		}
		return dst
	}
	// Horizontal [1 2 1]: exact Q2 sums (≤1020) as uint16 pairs.
	mid := GetBytes(2*w, h)
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			srow := src.Pix[y*w : y*w+w]
			mrow := mid.Pix[y*2*w : y*2*w+2*w]
			for x := 0; x < w; x++ {
				xm, xp := x-1, x+1
				if xm < 0 {
					xm = 0
				}
				if xp >= w {
					xp = w - 1
				}
				s := uint16(srow[xm]) + 2*uint16(srow[x]) + uint16(srow[xp])
				binary.LittleEndian.PutUint16(mrow[2*x:], s)
			}
		}
	})
	// Vertical [1 2 1] to exact Q4 blur, then the unsharp combine:
	// out = (2¹²·src + a256·(2⁴·src − blur16) + 2¹¹) >> 12, clamped.
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			ym, yp := y-1, y+1
			if ym < 0 {
				ym = 0
			}
			if yp >= h {
				yp = h - 1
			}
			srow := src.Pix[y*w : y*w+w]
			m0 := mid.Pix[ym*2*w:]
			m1 := mid.Pix[y*2*w:]
			m2 := mid.Pix[yp*2*w:]
			orow := dst.Pix[y*w : y*w+w]
			for x := 0; x < w; x++ {
				b16 := int32(binary.LittleEndian.Uint16(m0[2*x:])) +
					2*int32(binary.LittleEndian.Uint16(m1[2*x:])) +
					int32(binary.LittleEndian.Uint16(m2[2*x:]))
				p16 := int32(srow[x]) << 4
				v := (p16<<8 + a256*(p16-b16) + 1<<11) >> 12
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				orow[x] = uint8(v)
			}
		}
	})
	PutBytes(mid)
	return dst
}

// ToPlane writes p's bytes into dst as float32 pixels (same dimensions)
// and returns dst — the inverse of FromPlane, used where the fixed-point
// tier hands a byte plane back to a float consumer.
func (p *BytePlane) ToPlane(dst *Plane) *Plane {
	if dst.W != p.W || dst.H != p.H {
		panic(fmt.Sprintf("vmath: size mismatch %dx%d vs %dx%d", dst.W, dst.H, p.W, p.H))
	}
	for i, v := range p.Pix {
		dst.Pix[i] = float32(v)
	}
	return dst
}

// SAD8 sums the absolute differences of the eight byte lanes packed in x
// and y — the SWAR primitive behind the codec's byte-plane SAD, exported
// here for the byte-plane flow matcher. Bytes are split into even/odd
// 16-bit lanes; a guard bit at lane position 8 records x≥y per lane
// without cross-lane borrows and selects max−min branch-free; the
// horizontal sum is one multiply.
func SAD8(x, y uint64) uint64 {
	const (
		lanes = 0x00ff00ff00ff00ff
		ones  = 0x0001000100010001
	)
	xe, ye := x&lanes, y&lanes
	xo, yo := (x>>8)&lanes, (y>>8)&lanes
	return ((sadLanes(xe, ye) + sadLanes(xo, yo)) * ones) >> 48
}

// sadLanes computes per-16-bit-lane |x−y| for lane values ≤ 255.
func sadLanes(x, y uint64) uint64 {
	const guard = 0x0100010001000100
	s := ((x | guard) - y) & guard
	m := s - (s >> 8)
	max := (x & m) | (y &^ m)
	min := (y & m) | (x &^ m)
	return max - min
}
