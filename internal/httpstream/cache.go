package httpstream

import (
	"sync"

	"nerve/internal/telemetry"
)

// Cache telemetry (see OBSERVABILITY.md): hits/misses/evictions are
// monotonic; bytes_live is a gauge (evictions subtract) tracking the
// resident payload bytes across every Cache in the process.
var (
	cCacheHits      = telemetry.NewCounter("cache.hits")
	cCacheMisses    = telemetry.NewCounter("cache.misses")
	cCacheEvictions = telemetry.NewCounter("cache.evictions")
	cCacheBytesLive = telemetry.NewCounter("cache.bytes_live")
)

// DefaultCacheBytes is the segment cache budget when ServerConfig leaves
// CacheBytes zero: enough for every rung of a demo stream, small enough
// that a long-running origin holds a bounded working set.
const DefaultCacheBytes = 64 << 20

// Cache is a bounded byte-budget LRU of immutable payloads. It replaces
// the origin's previously unbounded segment/codes maps: Put evicts
// least-recently-used entries until the new payload fits, so resident
// bytes never exceed the budget; a payload larger than the whole budget
// is refused (served uncached) rather than wiping the cache.
//
// Values are aliased, not copied — callers must treat a stored or
// returned []byte as immutable. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	m      map[string]*cacheEntry
	// head is most recently used, tail least. Intrusive doubly-linked
	// list; the sentinel-free empty state is nil head+tail.
	head, tail *cacheEntry

	hits, misses, evictions int64
}

type cacheEntry struct {
	key        string
	val        []byte
	prev, next *cacheEntry
}

// NewCache builds a cache holding at most budget payload bytes
// (DefaultCacheBytes when budget <= 0).
func NewCache(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &Cache{budget: budget, m: make(map[string]*cacheEntry)}
}

// Get returns the payload stored under key, marking it most recently
// used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		cCacheMisses.Add(1)
		return nil, false
	}
	c.hits++
	cCacheHits.Add(1)
	c.moveToFront(e)
	return e.val, true
}

// Put stores val under key, evicting from the LRU end until it fits.
// It reports whether the payload was cached: a payload larger than the
// entire budget is not (the caller serves it uncached), and a key
// already present is refreshed in place.
func (c *Cache) Put(key string, val []byte) bool {
	n := int64(len(val))
	if n > c.budget {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.bytes += n - int64(len(e.val))
		cCacheBytesLive.Add(n - int64(len(e.val)))
		e.val = val
		c.moveToFront(e)
		return true
	}
	for c.bytes+n > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	e := &cacheEntry{key: key, val: val}
	c.m[key] = e
	c.bytes += n
	cCacheBytesLive.Add(n)
	c.pushFront(e)
	return true
}

// Stats returns the cache's lifetime counters and current residency.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		BytesLive: c.bytes,
		Entries:   int64(len(c.m)),
		Budget:    c.budget,
	}
}

// CacheStats is a point-in-time view of one Cache (or, aggregated, of a
// cluster's caches) — the cache block of BENCH_load.json.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	BytesLive int64 `json:"bytes_live"`
	Entries   int64 `json:"entries"`
	Budget    int64 `json:"budget"`
}

// Add accumulates another cache's stats (cluster aggregation). Budget
// and residency sum; they remain comparable (sum live ≤ sum budget).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BytesLive += o.BytesLive
	s.Entries += o.Entries
	s.Budget += o.Budget
}

// HitRatio returns hits / (hits + misses), 0 when the cache is unused.
func (s CacheStats) HitRatio() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// keys returns the resident keys from most to least recently used
// (tests only).
func (c *Cache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// ---- intrusive list plumbing (c.mu held) ----

func (c *Cache) evict(e *cacheEntry) {
	c.unlink(e)
	delete(c.m, e.key)
	c.bytes -= int64(len(e.val))
	cCacheBytesLive.Add(-int64(len(e.val)))
	c.evictions++
	cCacheEvictions.Add(1)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
