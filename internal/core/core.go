// Package core assembles the NERVE system of Fig. 5: a media server that
// encodes the ladder and extracts the per-frame binary point code, and a
// mobile client engine that decodes, recovers lost or late frames with the
// code, super-resolves on time-budget, and reports per-frame quality and
// device cost. This is the frame-accurate pipeline; the chunk-level QoE
// simulations in internal/sim use quality maps calibrated from it.
package core

import (
	"fmt"
	"time"

	"nerve/internal/codec"
	"nerve/internal/device"
	"nerve/internal/edgecode"
	"nerve/internal/recovery"
	"nerve/internal/sr"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// ServerConfig parameterises a media server.
type ServerConfig struct {
	// W, H is the source (and transmission) resolution.
	W, H int
	// TargetBitrate is the encoder target in bits/second.
	TargetBitrate float64
	// GOP is the intra period in frames (default 120).
	GOP int
	// PacketPayload is the slice/packet payload target (default 1100).
	PacketPayload int
	// CodeW, CodeH override the binary point code geometry (defaults
	// 128×64 = 1 KB).
	CodeW, CodeH int
}

// ServerFrame is what the server emits per frame: the encoded slices
// (shipped over the unreliable media path) and the binary point code
// (shipped over the reliable side channel).
type ServerFrame struct {
	Encoded *codec.EncodedFrame
	Code    *edgecode.Code
}

// Server encodes frames and extracts their binary point codes.
type Server struct {
	cfg       ServerConfig
	enc       *codec.Encoder
	extractor *edgecode.Extractor
}

// NewServer builds a server for the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("core: invalid server dimensions %dx%d", cfg.W, cfg.H)
	}
	if cfg.TargetBitrate <= 0 {
		cfg.TargetBitrate = 1e6
	}
	enc := codec.NewEncoder(codec.Config{
		W: cfg.W, H: cfg.H,
		GOP:           cfg.GOP,
		TargetBitrate: cfg.TargetBitrate,
		PacketPayload: cfg.PacketPayload,
	})
	return &Server{
		cfg:       cfg,
		enc:       enc,
		extractor: edgecode.NewExtractor(cfg.CodeW, cfg.CodeH),
	}, nil
}

// Process encodes the next source frame and extracts its code.
func (s *Server) Process(frame *vmath.Plane) (*ServerFrame, error) {
	if frame.W != s.cfg.W || frame.H != s.cfg.H {
		return nil, fmt.Errorf("core: frame %dx%d does not match server %dx%d", frame.W, frame.H, s.cfg.W, s.cfg.H)
	}
	return &ServerFrame{
		Encoded: s.enc.Encode(frame),
		Code:    s.extractor.Extract(frame),
	}, nil
}

// ClientConfig parameterises the client engine.
type ClientConfig struct {
	// W, H is the transmission resolution (must match the server).
	W, H int
	// OutW, OutH is the display resolution; when larger than W×H and SR
	// is enabled, frames are super-resolved. Defaults to W×H.
	OutW, OutH int
	// EnableRecovery turns the recovery model on (otherwise lost/late
	// frames reuse the previous frame).
	EnableRecovery bool
	// EnableSR turns super-resolution on.
	EnableSR bool
	// FixedPoint selects the integer/SWAR kernel tier end to end: the
	// recovery model runs its byte-plane warp path (recovery.Config
	// .FixedPoint) and the SR stage uses the byte-plane head (sr.NewFast).
	// Output differs from the float tier by at most a few grey levels
	// (see the tier parity tests in those packages) at a fraction of the
	// one-core frame time. Legacy knob: Tier supersedes it when set.
	FixedPoint bool
	// Tier selects the kernel tier policy: TierFloat (the zero value) and
	// TierFixed pin one tier for every frame, TierAuto lets a deadline
	// governor switch float↔fixed per frame from observed frame times
	// (see tierGovernor). When Tier is left at its zero value the legacy
	// FixedPoint flag still selects TierFixed, so existing configurations
	// keep their meaning.
	Tier Tier
	// Device is the cost model used for the latency/energy accounting
	// (default iPhone 12).
	Device *device.Model
}

// FrameClass describes how the client produced a displayed frame.
type FrameClass int

const (
	// ClassDecoded frames arrived complete and on time.
	ClassDecoded FrameClass = iota
	// ClassSR frames were additionally super-resolved.
	ClassSR
	// ClassRecovered frames were synthesised by the recovery model
	// (completely missing input).
	ClassRecovered
	// ClassPartial frames were partially received and concealed.
	ClassPartial
	// ClassReused frames replayed the previous output (recovery off).
	ClassReused
)

func (c FrameClass) String() string {
	switch c {
	case ClassDecoded:
		return "decoded"
	case ClassSR:
		return "sr"
	case ClassRecovered:
		return "recovered"
	case ClassPartial:
		return "partial"
	case ClassReused:
		return "reused"
	default:
		return fmt.Sprintf("FrameClass(%d)", int(c))
	}
}

// FrameResult is the client's per-frame output.
type FrameResult struct {
	Index int
	Class FrameClass
	// Frame is the displayed frame at OutW×OutH. It is owned by the caller
	// and never retained or recycled by the client, so callers that are done
	// with it may vmath.Put it back into the plane pool.
	Frame *vmath.Plane
	// ProcessSeconds is the modelled device time spent on the frame
	// (decode + recovery/SR inference).
	ProcessSeconds float64
	// Tier is the kernel tier the frame actually ran in — the pinned tier,
	// or the governor's per-frame choice under TierAuto (never TierAuto
	// itself).
	Tier Tier
	// probe marks a single-frame float probe issued by the governor while
	// resident in the fixed tier; its observation is fed back specially.
	probe bool
}

// upscaler is the SR stage contract both tiers satisfy (sr.SuperResolver
// and sr.FastUpscaler).
type upscaler interface {
	Upscale(lr *vmath.Plane) *vmath.Plane
}

// Client is the mobile client engine: decoder + recovery + SR with
// temporal state, fed one frame slot at a time in playout order.
type Client struct {
	cfg ClientConfig
	dec *codec.Decoder
	rec *recovery.Recoverer
	ext *edgecode.Extractor // to derive codes of locally produced frames

	// SR heads per tier. Pinned policies build only their own head;
	// TierAuto builds both so a switch costs nothing at frame time. Both
	// are immutable after NewClient — stageEnhance picks one by the
	// frame's tier, so the choice is safe to read from a pool worker while
	// the next ingest is already deciding a different tier.
	srFloat upscaler
	srFixed upscaler
	hasSR   bool

	tier Tier          // resolved policy (FixedPoint legacy mapped in)
	gov  *tierGovernor // deadline governor; non-nil only for TierAuto
	// govCost, when set, replaces the governor's wall-clock frame cost
	// with a scripted one — the determinism tests' seam. Takes the frame
	// index and the tier the frame ran in.
	govCost func(frame int, t Tier) time.Duration

	prevOut   *vmath.Plane // previous displayed frame at transmission res
	prevPrev  *vmath.Plane
	prevCode  *edgecode.Code
	frameIdx  int
	recovered int
	total     int
	classes   map[FrameClass]int
}

// NewClient builds a client engine.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("core: invalid client dimensions %dx%d", cfg.W, cfg.H)
	}
	if cfg.OutW <= 0 || cfg.OutH <= 0 {
		cfg.OutW, cfg.OutH = cfg.W, cfg.H
	}
	if cfg.Device == nil {
		cfg.Device = device.IPhone12()
	}
	tier := cfg.Tier
	if tier == TierFloat && cfg.FixedPoint {
		tier = TierFixed
	}
	c := &Client{
		cfg:     cfg,
		dec:     codec.NewDecoder(codec.Config{W: cfg.W, H: cfg.H}),
		rec:     recovery.New(recovery.Config{OutW: cfg.W, OutH: cfg.H, FixedPoint: tier == TierFixed}),
		ext:     edgecode.NewExtractor(0, 0),
		tier:    tier,
		classes: make(map[FrameClass]int),
	}
	if cfg.EnableSR && (cfg.OutW != cfg.W || cfg.OutH != cfg.H) {
		c.hasSR = true
		if tier != TierFixed {
			c.srFloat = sr.New(sr.Config{OutW: cfg.OutW, OutH: cfg.OutH})
		}
		if tier != TierFloat {
			c.srFixed = sr.NewFast(sr.Config{OutW: cfg.OutW, OutH: cfg.OutH})
		}
	}
	if tier == TierAuto {
		// Seed the governor from the device model until real observations
		// arrive: the float tier is priced as hardware decode plus neural
		// inference, the fixed tier as decode plus the grid-sample warp at
		// the recovery work resolution (≤270p) — the warp-bound SWAR path
		// that replaces inference under deadline pressure.
		dec := devSeconds(cfg.Device.DecodeLatency(nearestRung(cfg.W, cfg.H)))
		rc := c.rec.Config()
		c.gov = newTierGovernor(
			time.Second/30,
			dec+devSeconds(cfg.Device.EnhanceLatency()),
			dec+devSeconds(cfg.Device.WarpLatency(rc.WorkW, rc.WorkH)),
		)
	}
	return c, nil
}

// devSeconds converts a device-model latency (seconds) to a Duration.
func devSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ClassCounts returns how many displayed frames were produced per class so
// far — the degradation ladder a session actually walked (decoded > sr >
// partial > recovered > reused).
func (c *Client) ClassCounts() map[FrameClass]int {
	out := make(map[FrameClass]int, len(c.classes))
	for k, v := range c.classes {
		out[k] = v
	}
	return out
}

// RecoveredFraction returns the fraction of frames that needed recovery or
// reuse so far.
func (c *Client) RecoveredFraction() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.recovered) / float64(c.total)
}

// Input is one playout slot's worth of received data. Encoded may be nil
// (complete loss or frame not yet arrived); Received marks which slices of
// Encoded arrived (nil = all). Code is the frame's binary point code from
// the reliable side channel (nil if the client runs without hints).
type Input struct {
	Encoded  *codec.EncodedFrame
	Received []bool
	Code     *edgecode.Code
}

// Next consumes the data available for the next playout slot and returns
// the displayed frame. It never fails to produce a frame: a complete loss
// yields a recovered (or reused) frame.
//
// Next runs the two stages of the frame graph back to back on the calling
// goroutine; Pipeline overlaps them across consecutive frames with
// bit-identical output.
func (c *Client) Next(in Input) (*FrameResult, error) {
	// The whole of Next is one playout slot's processing: decode plus
	// recovery/SR. This is the span the per-frame deadline measures.
	defer telemetry.FrameStart().Done()
	start := time.Now()
	res, outTx, err := c.stageIngest(in)
	if err != nil {
		return nil, err
	}
	res.Frame = c.stageEnhance(outTx, res.Tier)
	c.observeGov(res, time.Since(start))
	return res, nil
}

// observeGov feeds one completed frame back to the tier accounting: the
// per-tier frame counters always move, and under TierAuto the governor
// absorbs the frame's cost — wall-clock stage time, or the scripted govCost
// in tests. Callers invoke it once per completed frame in playout order:
// Next inline, Pipeline at the join.
func (c *Client) observeGov(res *FrameResult, cost time.Duration) {
	if res.Tier == TierFixed {
		cTierFixedFrames.Add(1)
	} else {
		cTierFloatFrames.Add(1)
	}
	if c.gov == nil {
		return
	}
	if c.govCost != nil {
		cost = c.govCost(res.Index, res.Tier)
	}
	if c.gov.observe(res.Tier, res.probe, cost) {
		cTierSwitches.Add(1)
	}
}

// frameTier resolves the tier for the frame about to be ingested.
func (c *Client) frameTier() (t Tier, probe bool) {
	if c.gov == nil {
		return c.tier, false
	}
	t, probe = c.gov.next()
	if probe {
		cTierProbes.Add(1)
	}
	return t, probe
}

// stageIngest is stage A of the frame graph: decode (or conceal/recover)
// the slot into a frame at transmission resolution, feed it back to the
// decoder as the next reference, and advance all temporal state — frame
// index, class counters, previous-frame chain, code chain. After it
// returns, the client is ready to ingest the next slot; the returned plane
// only remains to be enhanced (stage B), which reads nothing but the plane
// itself. That separation is what lets Pipeline run ingest(n+1) while
// enhance(n) is still in flight.
//
// The returned FrameResult is complete except for Frame: the class is
// final (including the ClassSR promotion — whether SR runs is a static
// property of the client) and the device-time model is fully charged.
func (c *Client) stageIngest(in Input) (*FrameResult, *vmath.Plane, error) {
	res := &FrameResult{Index: c.frameIdx}
	dev := c.cfg.Device
	c.total++

	// Pick the frame's kernel tier before any kernel can run, and point
	// the recovery model at it — tier is per-frame state everywhere else.
	res.Tier, res.probe = c.frameTier()
	c.rec.SetFixedPoint(res.Tier == TierFixed)

	var outTx *vmath.Plane // displayed frame at transmission resolution
	var staleRef *vmath.Plane
	switch {
	case in.Encoded == nil && c.prevOut == nil:
		// Nothing at all yet: grey start-up frame.
		outTx = vmath.Get(c.cfg.W, c.cfg.H)
		outTx.Fill(128)
		res.Class = ClassReused
	case in.Encoded == nil:
		// Complete loss or late frame.
		outTx = c.conceal(nil, nil, in.Code, res)
	default:
		dr, err := c.dec.Decode(in.Encoded, in.Received)
		if err != nil {
			// The slot died before producing an observation; re-arm a
			// probe issued for it so float re-entry is not wedged.
			if c.gov != nil {
				c.gov.cancel(res.probe)
			}
			return nil, nil, fmt.Errorf("core: decode frame %d: %w", c.frameIdx, err)
		}
		res.ProcessSeconds += dev.DecodeLatency(nearestRung(c.cfg.W, c.cfg.H))
		if dr.Complete() {
			outTx = dr.Frame
			res.Class = ClassDecoded
		} else {
			outTx = c.conceal(dr.Frame, dr.Mask, in.Code, res)
			res.Class = ClassPartial
			// The corrupted decode stays the decoder's reference until
			// SetReference below swaps in the concealed frame.
			staleRef = dr.Frame
		}
		vmath.Put(dr.Mask)
	}

	// Feed the decoder the displayed frame as the next reference (the
	// paper's client substitutes the recovered frame for the missing
	// reference). The decoder only reads its reference, so the displayed
	// frame is shared with it rather than cloned.
	c.dec.SetReference(outTx)
	vmath.Put(staleRef)

	if c.hasSR {
		res.ProcessSeconds += dev.EnhanceLatency()
		if res.Class == ClassDecoded {
			res.Class = ClassSR
		}
	}

	// Advance temporal state. The plane rotated out of prevPrev is no
	// longer referenced by the decoder (two SetReference calls ago), the
	// recovery model (which never retains its inputs) or a pending enhance
	// stage (which reads the newer prevOut and was joined a frame ago); it
	// can go back to the pool unless it escaped to the caller as a
	// displayed frame, which happens exactly when enhance returns its
	// input unchanged (no SR stage, no resize).
	if old := c.prevPrev; old != nil && (c.hasSR || c.cfg.OutW != c.cfg.W || c.cfg.OutH != c.cfg.H) {
		vmath.Put(old)
	}
	c.prevPrev = c.prevOut
	c.prevOut = outTx
	if in.Code != nil {
		c.prevCode = in.Code
	} else if c.prevOut != nil {
		// Derive the code of the displayed frame locally so the chain
		// can continue when the side channel skips a frame. The fixed
		// tier extracts from a pooled byte shadow of the frame — the
		// byte-domain pipeline (edgecode.ExtractBytes) rather than the
		// float one, keeping the frame's kernel tier honest end to end.
		if res.Tier == TierFixed {
			shadow := vmath.GetBytes(c.prevOut.W, c.prevOut.H).FromPlane(c.prevOut)
			c.prevCode = c.ext.ExtractBytes(shadow)
			vmath.PutBytes(shadow)
		} else {
			c.prevCode = c.ext.Extract(c.prevOut)
		}
	}
	c.frameIdx++
	c.classes[res.Class]++
	return res, outTx, nil
}

// stageEnhance is stage B of the frame graph: lift the transmission-
// resolution frame to display resolution (SR head or plain bilinear). It
// reads only outTx, the frame's tier and immutable client state (the SR
// heads never change after NewClient), touches no client temporal state,
// and is deterministic for any worker-pool size — the properties Pipeline
// relies on to overlap it with the next ingest even while the governor is
// deciding a different tier for that ingest.
func (c *Client) stageEnhance(outTx *vmath.Plane, tier Tier) *vmath.Plane {
	if c.hasSR {
		if tier == TierFixed {
			return c.srFixed.Upscale(outTx)
		}
		return c.srFloat.Upscale(outTx)
	}
	if c.cfg.OutW != c.cfg.W || c.cfg.OutH != c.cfg.H {
		return vmath.ResizeBilinearInto(vmath.Get(c.cfg.OutW, c.cfg.OutH), outTx)
	}
	return outTx
}

// conceal produces a frame when input is missing or partial.
func (c *Client) conceal(part, mask *vmath.Plane, code *edgecode.Code, res *FrameResult) *vmath.Plane {
	c.recovered++
	dev := c.cfg.Device
	if !c.cfg.EnableRecovery || c.prevOut == nil {
		res.Class = ClassReused
		if c.prevOut == nil {
			p := vmath.Get(c.cfg.W, c.cfg.H)
			p.Fill(128)
			return p
		}
		out := vmath.Get(c.prevOut.W, c.prevOut.H).CopyFrom(c.prevOut)
		if part != nil && mask != nil {
			// Even the reuse client keeps correctly received regions.
			for i := range out.Pix {
				if mask.Pix[i] > 0.5 {
					out.Pix[i] = part.Pix[i]
				}
			}
		}
		return out
	}
	res.Class = ClassRecovered
	res.ProcessSeconds += dev.RecoveryLatency()
	return c.rec.Recover(recovery.Input{
		Prev:     c.prevOut,
		PrevPrev: c.prevPrev,
		PrevCode: c.prevCode,
		CurCode:  code,
		Part:     part,
		PartMask: mask,
	})
}

// nearestRung maps arbitrary dimensions to the closest ladder rung for the
// decode-latency model.
func nearestRung(w, h int) (r videoResolution) {
	return nearestResolution(h)
}
