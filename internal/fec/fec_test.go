package fec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFMulDivInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if got := gfMul(byte(a), inv); got != 1 {
			t.Fatalf("a=%d a*inv=%d", a, got)
		}
	}
	if gfMul(0, 17) != 0 || gfMul(17, 0) != 0 {
		t.Fatal("mul by zero")
	}
	if gfMul(1, 200) != 200 {
		t.Fatal("mul by one")
	}
}

func TestGFMulProperties(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutative, associative, distributive over XOR.
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(5, 0) != 1 {
		t.Fatal("x^0")
	}
	if gfPow(0, 3) != 0 {
		t.Fatal("0^n")
	}
	want := gfMul(7, gfMul(7, 7))
	if gfPow(7, 3) != want {
		t.Fatalf("7^3=%d want %d", gfPow(7, 3), want)
	}
}

func TestMatInvertIdentity(t *testing.T) {
	m := [][]byte{{1, 0}, {0, 1}}
	if !matInvert(m) {
		t.Fatal("identity not invertible?")
	}
	if m[0][0] != 1 || m[0][1] != 0 || m[1][0] != 0 || m[1][1] != 1 {
		t.Fatalf("bad inverse %v", m)
	}
}

func TestMatInvertSingular(t *testing.T) {
	m := [][]byte{{1, 1}, {1, 1}}
	if matInvert(m) {
		t.Fatal("singular matrix reported invertible")
	}
}

func randShards(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs, err := NewReedSolomon(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 4, 64)
	encoded, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Every pattern with ≤2 erasures must reconstruct.
	n := 6
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				erased++
			}
		}
		if erased > 2 {
			continue
		}
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask>>i&1 == 0 {
				shards[i] = encoded[i]
			}
		}
		if err := rs.Reconstruct(shards); err != nil {
			t.Fatalf("mask %06b: %v", mask, err)
		}
		for i := 0; i < 4; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("mask %06b: shard %d mismatch", mask, i)
			}
		}
	}
}

func TestRSFailsWithTooFewShards(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs, _ := NewReedSolomon(3, 2)
	encoded, _ := rs.Encode(randShards(rng, 3, 16))
	shards := make([][]byte, 5)
	shards[0] = encoded[0]
	shards[4] = encoded[4]
	if err := rs.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with 2 of 3 needed shards must fail")
	}
}

func TestRSParamValidation(t *testing.T) {
	if _, err := NewReedSolomon(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewReedSolomon(200, 100); err == nil {
		t.Fatal("k+m>255 accepted")
	}
	rs, _ := NewReedSolomon(2, 1)
	if _, err := rs.Encode(randShards(rand.New(rand.NewSource(3)), 3, 8)); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := rs.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Fatal("uneven shard sizes accepted")
	}
}

func TestRSLargerCode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs, err := NewReedSolomon(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 20, 128)
	encoded, _ := rs.Encode(data)
	// Drop 8 random shards.
	shards := make([][]byte, 28)
	copy(shards, encoded)
	perm := rng.Perm(28)
	for _, i := range perm[:8] {
		shards[i] = nil
	}
	if err := rs.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(shards[i], data[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestXORSingleLossPerGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, err := NewXORInterleaved(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 6, 32)
	encoded, _ := x.Encode(data)
	// Lose shard 0 (group 0) and shard 3 (group 1): both recoverable.
	shards := make([][]byte, 8)
	copy(shards, encoded)
	shards[0], shards[3] = nil, nil
	if err := x.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0], data[0]) || !bytes.Equal(shards[3], data[3]) {
		t.Fatal("XOR reconstruction wrong")
	}
}

func TestXORDoubleLossSameGroupFails(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := NewXORInterleaved(6, 2)
	encoded, _ := x.Encode(randShards(rng, 6, 32))
	shards := make([][]byte, 8)
	copy(shards, encoded)
	shards[0], shards[2] = nil, nil // both group 0
	if err := x.Reconstruct(shards); err == nil {
		t.Fatal("double loss in one group must fail")
	}
}

func TestParityCount(t *testing.T) {
	if ParityCount(10, 0) != 0 {
		t.Fatal("zero redundancy")
	}
	if got := ParityCount(10, 0.25); got != 3 {
		t.Fatalf("ParityCount(10,0.25)=%d", got)
	}
	if got := ParityCount(10, 0.01); got != 1 {
		t.Fatalf("tiny redundancy should still give 1 parity, got %d", got)
	}
	if got := ParityCount(250, 0.5); got != 5 {
		t.Fatalf("cap at 255 total: got %d", got)
	}
}

func TestProtectRecoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	packets := [][]byte{
		make([]byte, 100), make([]byte, 80), make([]byte, 120), make([]byte, 60),
	}
	for _, p := range packets {
		rng.Read(p)
	}
	for _, kind := range []Kind{KindReedSolomon, KindXOR} {
		prot, err := Protect(packets, 0.5, kind)
		if err != nil {
			t.Fatal(err)
		}
		if prot.M == 0 {
			t.Fatalf("%v: no parity added", kind)
		}
		received := make([]bool, prot.K+prot.M)
		for i := range received {
			received[i] = true
		}
		received[1] = false // one loss: both schemes recover
		got, ok := prot.Recover(received)
		if !ok {
			t.Fatalf("%v: recovery failed", kind)
		}
		for i := range packets {
			if !bytes.Equal(got[i], packets[i]) {
				t.Fatalf("%v: packet %d mismatch", kind, i)
			}
		}
	}
}

func TestProtectZeroRedundancyPassThrough(t *testing.T) {
	packets := [][]byte{{1, 2, 3}, {4, 5}}
	prot, err := Protect(packets, 0, KindReedSolomon)
	if err != nil {
		t.Fatal(err)
	}
	if prot.M != 0 {
		t.Fatal("parity with zero redundancy")
	}
	got, ok := prot.Recover([]bool{true, true})
	if !ok || !bytes.Equal(got[0], packets[0]) || !bytes.Equal(got[1], packets[1]) {
		t.Fatal("pass-through recover failed")
	}
	if _, ok := prot.Recover([]bool{true, false}); ok {
		t.Fatal("loss without parity must not report complete")
	}
}

func TestProtectPartialRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	packets := randShards(rng, 6, 50)
	prot, _ := Protect(packets, 1.0/6, KindReedSolomon) // 1 parity
	received := make([]bool, prot.K+prot.M)
	for i := range received {
		received[i] = true
	}
	received[0], received[1] = false, false // 2 losses, 1 parity: fail
	got, ok := prot.Recover(received)
	if ok {
		t.Fatal("should not fully recover")
	}
	// The received packets must still be returned.
	for i := 2; i < 6; i++ {
		if !bytes.Equal(got[i], packets[i]) {
			t.Fatalf("received packet %d not returned", i)
		}
	}
	if got[0] != nil || got[1] != nil {
		t.Fatal("lost packets must be nil")
	}
}

func TestPlannerLookup(t *testing.T) {
	p := NewPlannerFromTable(map[float64]float64{0.01: 0.05, 0.05: 0.25, 0.10: 0.5})
	if got := p.Redundancy(0.001); got != 0.05 {
		t.Fatalf("below range: %v", got)
	}
	if got := p.Redundancy(0.2); got != 0.5 {
		t.Fatalf("above range: %v", got)
	}
	if got := p.Redundancy(0.05); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("exact: %v", got)
	}
	if got := p.Redundancy(0.03); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("interpolated: %v", got)
	}
}

func TestBuildPlannerPicksArgmax(t *testing.T) {
	// QoE peaked at redundancy = 5·loss.
	eval := func(loss, red float64) float64 {
		return -math.Abs(red - 5*loss)
	}
	p, err := BuildPlanner([]float64{0.01, 0.03, 0.05}, []float64{0, 0.05, 0.15, 0.25, 0.35}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Redundancy(0.01); got != 0.05 {
		t.Fatalf("loss 1%%: %v", got)
	}
	if got := p.Redundancy(0.03); got != 0.15 {
		t.Fatalf("loss 3%%: %v", got)
	}
	if got := p.Redundancy(0.05); got != 0.25 {
		t.Fatalf("loss 5%%: %v", got)
	}
}

func TestBuildPlannerValidation(t *testing.T) {
	if _, err := BuildPlanner(nil, []float64{0.1}, func(a, b float64) float64 { return 0 }); err == nil {
		t.Fatal("empty losses accepted")
	}
}

func TestDefaultPlannerShape(t *testing.T) {
	p := DefaultPlanner()
	if got := p.Redundancy(0.01); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("1%% loss → %v, want ≈0.05", got)
	}
	if got := p.Redundancy(0.5); got > 0.6+1e-9 {
		t.Fatalf("cap exceeded: %v", got)
	}
	// Monotone non-decreasing.
	prev := -1.0
	for l := 0.0; l <= 0.15; l += 0.005 {
		r := p.Redundancy(l)
		if r < prev-1e-12 {
			t.Fatalf("planner not monotone at %v", l)
		}
		prev = r
	}
}

// Property: RS with random erasures up to m always reconstructs.
func TestRSPropertyRandomErasures(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		m := 1 + rng.Intn(6)
		rs, err := NewReedSolomon(k, m)
		if err != nil {
			return false
		}
		data := randShards(rng, k, 24)
		encoded, err := rs.Encode(data)
		if err != nil {
			return false
		}
		shards := make([][]byte, k+m)
		copy(shards, encoded)
		for _, i := range rng.Perm(k + m)[:m] {
			shards[i] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(shards[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRSEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs, _ := NewReedSolomon(10, 3)
	data := randShards(rng, 10, 1100)
	b.SetBytes(int64(10 * 1100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Encode(data)
	}
}
