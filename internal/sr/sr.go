// Package sr implements the multi-resolution video super-resolution model
// of §5 and the baselines it is evaluated against.
//
// The paper's network shares one optical-flow alignment module across all
// upscaling factors and attaches small per-resolution convolution heads;
// this reproduction mirrors that structure with classical components:
//
//   - shared flow alignment: block-matching flow between consecutive LR
//     frames (internal/flow), reused for every ladder rung;
//   - temporal fusion: the previous HR output is warped along the
//     (resolution-scaled) flow and blended where the flow is confident,
//     accumulating detail across frames exactly like a recurrent SR cell;
//   - reconstruction: iterative back-projection enforces that the HR
//     estimate downsamples back to the observed LR frame — the classical
//     counterpart of learning the "gap between bilinear upsampling and the
//     ground truth" with a Charbonnier loss;
//   - per-resolution heads: a per-rung detail-boost strength, standing in
//     for the independent convolution layers per degradation pattern.
//
// The per-frame path is built on the destination-passing Into kernels and
// the plane pool of internal/vmath (ResizeBicubicInto, UnsharpMaskInto,
// LearnedHead.ApplyInto, warp.BackwardInto, …): a warmed-up resolver
// performs zero plane allocations per Upscale call. See DESIGN.md §9.
package sr

import (
	"fmt"

	"nerve/internal/flow"
	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
	"nerve/internal/warp"
)

// Config parameterises a SuperResolver.
type Config struct {
	// OutW, OutH is the target (display) resolution.
	OutW, OutH int
	// BackProjectIters is the number of back-projection refinement steps
	// (default 3).
	BackProjectIters int
	// TemporalWeight scales how strongly the warped previous HR output is
	// fused in (default 0.45).
	TemporalWeight float32
	// DetailBoost overrides the per-resolution sharpening strength when
	// non-zero; by default it is derived from the upscale factor.
	DetailBoost float32
	// LearnedHead, when non-nil, replaces the analytic detail head with a
	// trained residual predictor (see TrainLearnedHead) — the §5 learning
	// target realised with internal/nn.
	LearnedHead *LearnedHead
}

func (c Config) withDefaults() Config {
	if c.OutW <= 0 || c.OutH <= 0 {
		panic(fmt.Sprintf("sr: invalid output size %dx%d", c.OutW, c.OutH))
	}
	if c.BackProjectIters <= 0 {
		c.BackProjectIters = 3
	}
	if c.TemporalWeight == 0 {
		c.TemporalWeight = 0.45
	}
	return c
}

// SuperResolver upscales a stream of LR frames to the configured output
// resolution, carrying temporal state between frames. It accepts any input
// resolution (the multi-resolution property of the paper's model): the
// shared flow module runs at whatever LR resolution arrives.
//
// Planes returned by Upscale are pool-backed and owned by the caller; the
// resolver copies what it needs into its own persistent state, so callers
// may vmath.Put a result once they are done with it.
type SuperResolver struct {
	cfg    Config
	prevLR *vmath.Plane // persistent pooled planes, refreshed in place
	prevHR *vmath.Plane
}

// New returns a resolver for the configuration.
func New(cfg Config) *SuperResolver {
	return &SuperResolver{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (s *SuperResolver) Config() Config { return s.cfg }

// Reset drops temporal state (stream restart, scene cut, rung switch where
// continuity is broken deliberately).
func (s *SuperResolver) Reset() {
	vmath.Put(s.prevLR)
	vmath.Put(s.prevHR)
	s.prevLR, s.prevHR = nil, nil
}

// detailBoost derives the per-resolution head strength: lower-resolution
// inputs get stronger detail synthesis, as in the paper where lower rungs
// show larger SR gains.
func (s *SuperResolver) detailBoost(lrW int) float32 {
	if s.cfg.DetailBoost != 0 {
		return s.cfg.DetailBoost
	}
	factor := float32(s.cfg.OutW) / float32(lrW)
	b := 0.08 * (factor - 1)
	if b > 0.35 {
		b = 0.35
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Upscale enhances one LR frame. Consecutive calls on consecutive frames
// exploit temporal fusion; a resolution change in the input stream is
// handled by resampling the temporal state (the rung switch the
// enhancement-aware ABR performs).
func (s *SuperResolver) Upscale(lr *vmath.Plane) *vmath.Plane {
	defer telemetry.Start(telemetry.StageSR).Stop()
	cfg := s.cfg
	out := vmath.ResizeBicubicInto(vmath.Get(cfg.OutW, cfg.OutH), lr)

	// Temporal fusion with the previous HR output, aligned by LR flow.
	// The blend lands in place on the bicubic base (nothing reads the
	// unfused base afterwards).
	if s.prevLR != nil && s.prevHR != nil {
		prevLR := s.prevLR
		var prevLRScratch *vmath.Plane
		if prevLR.W != lr.W || prevLR.H != lr.H {
			prevLRScratch = vmath.ResizeBilinearInto(vmath.Get(lr.W, lr.H), prevLR)
			prevLR = prevLRScratch
		}
		f := flow.Estimate(prevLR, lr, flow.Options{Levels: 2, Search: 3})
		vmath.Put(prevLRScratch)
		fHR := f.Resample(cfg.OutW, cfg.OutH)
		f.Release()
		warpedHR := vmath.Get(cfg.OutW, cfg.OutH)
		validHR := vmath.Get(cfg.OutW, cfg.OutH)
		warp.BackwardInto(warpedHR, validHR, s.prevHR, fHR, 0.3)
		tw := cfg.TemporalWeight
		// Per-pixel blend with no cross-pixel dependency: row bands run on
		// the shared pool without changing the result.
		par.ForRows(out.H, func(y0, y1 int) {
			for i := y0 * out.W; i < y1*out.W; i++ {
				w := tw * fHR.Conf[i] * validHR.Pix[i]
				out.Pix[i] += w * (warpedHR.Pix[i] - out.Pix[i])
			}
		})
		fHR.Release()
		vmath.Put(warpedHR)
		vmath.Put(validHR)
	}

	// Back-projection: force downsample-consistency with the observation.
	// The LR error and its upsampling reuse two pooled scratch planes
	// across iterations (Sub is elementwise, so the error lands in place
	// on the downsample).
	down := vmath.Get(lr.W, lr.H)
	errUp := vmath.Get(cfg.OutW, cfg.OutH)
	for it := 0; it < cfg.BackProjectIters; it++ {
		vmath.ResizeBilinearInto(down, out)
		vmath.Sub(down, lr, down)
		vmath.ResizeBilinearInto(errUp, down)
		out.AddScaled(errUp, 1.0)
	}

	// Per-resolution detail head: a trained residual predictor when
	// configured, otherwise the analytic sharpening head.
	if cfg.LearnedHead != nil {
		headed := cfg.LearnedHead.ApplyInto(vmath.Get(cfg.OutW, cfg.OutH), out)
		vmath.Put(out)
		out = headed
		vmath.ResizeBilinearInto(down, out)
		vmath.Sub(down, lr, down)
		vmath.ResizeBilinearInto(errUp, down)
		out.AddScaled(errUp, 1.0)
	} else if b := s.detailBoost(lr.W); b > 0 {
		// In-place sharpen (UnsharpMaskInto materialises the blur first),
		// then re-anchor once.
		vmath.UnsharpMaskInto(out, out, 1.0, float64(b))
		vmath.ResizeBilinearInto(down, out)
		vmath.Sub(down, lr, down)
		vmath.ResizeBilinearInto(errUp, down)
		out.AddScaled(errUp, 1.0)
	}
	vmath.Put(down)
	vmath.Put(errUp)
	out.Clamp255()

	// Persistent temporal state lives in pooled planes refreshed in place
	// (re-fetched when the LR resolution changes at a rung switch).
	if s.prevLR == nil || s.prevLR.W != lr.W || s.prevLR.H != lr.H {
		vmath.Put(s.prevLR)
		s.prevLR = vmath.Get(lr.W, lr.H)
	}
	s.prevLR.CopyFrom(lr)
	if s.prevHR == nil {
		s.prevHR = vmath.Get(cfg.OutW, cfg.OutH)
	}
	s.prevHR.CopyFrom(out)
	return out
}

// UpscaleBilinear is the "Upsample" baseline from Fig. 10.
func UpscaleBilinear(lr *vmath.Plane, w, h int) *vmath.Plane {
	return vmath.ResizeBilinear(lr, w, h)
}

// UpscaleBicubic is the bicubic baseline from Fig. 11.
func UpscaleBicubic(lr *vmath.Plane, w, h int) *vmath.Plane {
	return vmath.ResizeBicubic(lr, w, h)
}
