package warp

import (
	"math/rand"
	"testing"

	"nerve/internal/flow"
	"nerve/internal/metrics"
	"nerve/internal/vmath"
)

func texture(seed int64, w, h int) *vmath.Plane {
	rng := rand.New(rand.NewSource(seed))
	p := vmath.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = rng.Float32() * 255
	}
	return vmath.GaussianBlur(p, 1.2)
}

func TestBackwardIdentity(t *testing.T) {
	src := texture(1, 48, 32)
	f := flow.NewField(48, 32)
	for i := range f.Conf {
		f.Conf[i] = 1
	}
	out, valid := Backward(src, f, 0.1)
	if d := vmath.MAE(src, out); d > 1e-3 {
		t.Fatalf("identity warp error %v", d)
	}
	min, _ := valid.MinMax()
	if min != 1 {
		t.Fatal("identity warp should be valid everywhere")
	}
}

func TestBackwardTranslation(t *testing.T) {
	src := texture(2, 64, 48)
	f := flow.NewField(64, 48)
	for i := range f.U {
		f.U[i] = 4
		f.V[i] = -2
		f.Conf[i] = 1
	}
	out, _ := Backward(src, f, 0.1)
	// out(x,y) = src(x+4, y-2); verify in the interior.
	for y := 8; y < 40; y++ {
		for x := 8; x < 56; x++ {
			want := src.At(x+4, y-2)
			if got := out.At(x, y); got != want {
				t.Fatalf("warp at (%d,%d): %v want %v", x, y, got, want)
			}
		}
	}
}

func TestBackwardMarksOutOfBounds(t *testing.T) {
	src := texture(3, 32, 32)
	f := flow.NewField(32, 32)
	for i := range f.U {
		f.U[i] = -10 // samples left of frame for x < 10
		f.Conf[i] = 1
	}
	_, valid := Backward(src, f, 0.1)
	if valid.At(2, 16) != 0 {
		t.Fatal("out-of-bounds sample not masked")
	}
	if valid.At(20, 16) != 1 {
		t.Fatal("in-bounds sample masked")
	}
}

func TestBackwardMasksLowConfidence(t *testing.T) {
	src := texture(4, 32, 32)
	f := flow.NewField(32, 32)
	for i := range f.Conf {
		f.Conf[i] = 0.05
	}
	_, valid := Backward(src, f, 0.3)
	if _, max := valid.MinMax(); max != 0 {
		t.Fatal("low-confidence pixels not masked")
	}
}

func TestWarpClosesMotionLoop(t *testing.T) {
	// Estimate flow on a known translation, warp, and require a close
	// match: the flow/warp pair must be consistent end-to-end.
	prev := texture(5, 96, 64)
	cur := vmath.NewPlane(96, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 96; x++ {
			cur.Set(x, y, prev.AtClamp(x+3, y+2))
		}
	}
	f := flow.Estimate(prev, cur, flow.Options{})
	out, _ := Backward(prev, f, 0)
	if p := metrics.PSNR(cur, out); p < 30 {
		t.Fatalf("flow+warp reconstruction only %v dB", p)
	}
}

func TestBackwardPlane(t *testing.T) {
	src := texture(6, 16, 16)
	u := vmath.NewPlane(16, 16)
	v := vmath.NewPlane(16, 16)
	u.Fill(1)
	out := BackwardPlane(src, u, v)
	if out.At(4, 4) != src.At(5, 4) {
		t.Fatal("BackwardPlane shift wrong")
	}
}

func TestBackwardPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Backward(vmath.NewPlane(8, 8), flow.NewField(9, 8), 0)
}

func BenchmarkBackward270p(b *testing.B) {
	src := texture(1, 480, 270)
	f := flow.NewField(480, 270)
	for i := range f.U {
		f.U[i] = 2
		f.Conf[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Backward(src, f, 0.1)
	}
}
