// Package httpstream puts the NERVE system behind real sockets: an
// HTTP media server in the DASH style (manifest + per-chunk segments at
// every ladder rung, plus the per-frame binary point codes as the reliable
// side channel) and a client that fetches, decodes, recovers and reports
// quality. The chunk simulator (internal/sim) answers the paper's QoE
// questions; this package demonstrates the deployable server/client split
// of Fig. 5 over net/http.
//
// The path is built to survive faults the way the paper's loss story
// demands: the server never head-of-line blocks unrelated requests
// (per-rate encode locks + a singleflight cache), and the client retries
// transient failures with backoff and, when a segment stays unreachable,
// degrades to codes-only recovery instead of aborting playback.
package httpstream

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nerve/internal/codec"
	"nerve/internal/core"
	"nerve/internal/edgecode"
	"nerve/internal/telemetry"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// Telemetry counters of the fault-handling path (see OBSERVABILITY.md):
// retries and degradations on the client, encodes and failed response
// writes on the server.
var (
	cRetries   = telemetry.NewCounter("httpstream_retries")
	cDegraded  = telemetry.NewCounter("httpstream_degraded_chunks")
	cEncodes   = telemetry.NewCounter("httpstream_server_encodes")
	cWriteErrs = telemetry.NewCounter("httpstream_server_write_errors")
	cCancels   = telemetry.NewCounter("httpstream_server_cancels")
	cFailovers = telemetry.NewCounter("httpstream_failovers")
)

// Manifest describes a stream to clients.
type Manifest struct {
	Width        int     `json:"w"`
	Height       int     `json:"h"`
	ChunkSeconds float64 `json:"chunkSeconds"`
	Chunks       int     `json:"chunks"`
	// RatesKbps lists the available rungs (index = rate parameter).
	RatesKbps []int `json:"ratesKbps"`
	FPS       int   `json:"fps"`
}

// ServerConfig parameterises NewServer.
type ServerConfig struct {
	// W, H is the transmission resolution.
	W, H int
	// ChunkSeconds is the segment duration (default 2 to keep demo
	// encodes fast; the paper uses 4).
	ChunkSeconds float64
	// Chunks is the stream length in segments (default 4).
	Chunks int
	// Rates lists the offered bitrates in kbps (default a reduced ladder
	// scaled to the transmission resolution).
	Rates []int
	// Source generates the content (default GamePlay seed 1).
	Source *video.Generator
	// CacheBytes bounds the segment/codes LRU cache (payload bytes;
	// default DefaultCacheBytes). Evicted segments re-encode on demand,
	// still collapsed by the singleflight.
	CacheBytes int64
	// Live switches the m3u8 media playlists from VOD to a sliding
	// window over an infinite stream that loops the procedural source
	// (see playlist.go). The JSON manifest and /segment endpoints are
	// unaffected.
	Live bool
	// LiveWindow is the live window length in segments (default
	// DefaultLiveWindow).
	LiveWindow int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ChunkSeconds <= 0 {
		c.ChunkSeconds = 2
	}
	if c.Chunks <= 0 {
		c.Chunks = 4
	}
	if len(c.Rates) == 0 {
		c.Rates = []int{300, 800, 1500}
	}
	if c.Source == nil {
		c.Source = video.NewGenerator(video.Categories()[3], 1)
	}
	return c
}

// errOutOfRange marks requests for rates/chunks outside the manifest —
// the only errors ServeHTTP reports as 404 (everything else is a 500).
var errOutOfRange = errors.New("out of range")

// Server is an http.Handler serving the stream. Segments are encoded
// lazily on first request and cached; codes are extracted alongside.
//
// Concurrency: the payload cache is under a read-write mutex, encoding is
// serialised per rate only (chunks must encode in order within a rate, but
// rates are independent), and a singleflight keyed by (rate, chunk)
// collapses concurrent identical requests into one computation. Requests
// for different rates, different chunks of warm rates, and /codes never
// block each other.
//
// Endpoints:
//
//	GET /manifest                     → Manifest JSON
//	GET /segment?rate=<i>&n=<j>       → concatenated wire frames of chunk j
//	GET /codes?n=<j>                  → concatenated compressed codes of chunk j
type Server struct {
	cfg      ServerConfig
	manifest Manifest

	// cache is the bounded LRU holding segment and codes payloads
	// (keys "seg:<rate>:<n>" and "codes:<n>"). Eviction re-encodes on
	// the next request for the key, under the singleflight.
	cache *Cache

	flight flightGroup
	encs   []*serverRate

	// startNano anchors the live playlist's media-sequence clock; now is
	// the clock hook (overridable in tests).
	startNano int64
	now       func() int64

	encodes     atomic.Int64 // chunk encodes performed (duplicates would inflate this)
	writeErrors atomic.Int64
	cancels     atomic.Int64 // requests abandoned because the client went away mid-build

	// testErr, when set, makes payload builders fail (internal-error path
	// coverage).
	testErr error
}

type serverRate struct {
	mu   sync.Mutex // serialises encoding within this rate only
	enc  *codec.Encoder
	next int // next chunk to encode (chunks must be encoded in order)
}

// NewServer builds the HTTP media server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("httpstream: invalid dimensions %dx%d", cfg.W, cfg.H)
	}
	s := &Server{
		cfg: cfg,
		manifest: Manifest{
			Width: cfg.W, Height: cfg.H,
			ChunkSeconds: cfg.ChunkSeconds,
			Chunks:       cfg.Chunks,
			RatesKbps:    cfg.Rates,
			FPS:          video.FPS,
		},
		cache: NewCache(cfg.CacheBytes),
		now:   timeNowNano,
	}
	s.startNano = s.now()
	for rate := range cfg.Rates {
		s.encs = append(s.encs, &serverRate{enc: s.newEncoder(rate)})
	}
	return s, nil
}

// newEncoder builds rung rate's encoder — used at construction and to
// rebuild encoder state when an evicted chunk must re-encode from the
// top of the stream (P frames depend on history).
func (s *Server) newEncoder(rate int) *codec.Encoder {
	return codec.NewEncoder(codec.Config{
		W: s.cfg.W, H: s.cfg.H,
		GOP:           int(s.cfg.ChunkSeconds * video.FPS),
		TargetBitrate: float64(s.cfg.Rates[rate]) * 1000,
	})
}

// Manifest returns the stream description.
func (s *Server) Manifest() Manifest { return s.manifest }

// Encodes returns how many chunk encodes the server has performed; with
// the singleflight cache this never exceeds rates×chunks no matter how
// many clients stream concurrently.
func (s *Server) Encodes() int64 { return s.encodes.Load() }

// WriteErrors returns how many response writes failed (client gone
// mid-transfer). The work is cached, so an aborted request costs nothing
// beyond the bytes already sent.
func (s *Server) WriteErrors() int64 { return s.writeErrors.Load() }

// ClientCancels returns how many requests were abandoned because the
// client disconnected while waiting on a payload build — the 499-style
// tally (no response was written; nobody was listening).
func (s *Server) ClientCancels() int64 { return s.cancels.Load() }

// CacheStats returns the segment cache's counters and residency.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// framesPerChunk returns the frames per segment.
func (s *Server) framesPerChunk() int {
	return int(s.cfg.ChunkSeconds * video.FPS)
}

func segKey(rate, n int) string { return fmt.Sprintf("seg:%d:%d", rate, n) }

// segment returns (encoding on demand) the wire payload of one chunk at
// one rate. Chunks encode in order per rate (P frames depend on history),
// so a cache miss encodes every not-yet-encoded chunk up to n — under
// that rate's lock only. A miss on a chunk the rate has already passed
// (the LRU evicted it) rebuilds the encoder and replays from the top of
// the stream; the singleflight caps the stampede either way, so encodes
// stay ≤ rates×chunks per cache residency.
//
// ctx bounds only the wait: a caller whose client disconnects stops
// waiting, while the winning builder always finishes and populates the
// cache.
func (s *Server) segment(ctx context.Context, rate, n int) ([]byte, error) {
	if rate < 0 || rate >= len(s.encs) || n < 0 || n >= s.cfg.Chunks {
		return nil, fmt.Errorf("httpstream: segment rate=%d n=%d %w", rate, n, errOutOfRange)
	}
	if b, ok := s.cache.Get(segKey(rate, n)); ok {
		return b, nil
	}
	return s.flight.DoCtx(ctx, segKey(rate, n), func() ([]byte, error) {
		if b, ok := s.cache.Get(segKey(rate, n)); ok {
			return b, nil
		}
		sr := s.encs[rate]
		sr.mu.Lock()
		defer sr.mu.Unlock()
		if sr.next > n {
			// Encoded once, since evicted: replay the rate from chunk 0
			// to rebuild the P-frame history. Deterministic source +
			// encoder reproduce the original bytes exactly.
			sr.enc = s.newEncoder(rate)
			sr.next = 0
		}
		fpc := s.framesPerChunk()
		var want []byte
		for sr.next <= n {
			if s.testErr != nil {
				return nil, s.testErr
			}
			var payload []byte
			for i := 0; i < fpc; i++ {
				frame := s.cfg.Source.Render(sr.next*fpc+i, s.cfg.W, s.cfg.H)
				ef := sr.enc.Encode(frame)
				wire, err := ef.MarshalBinary()
				if err != nil {
					return nil, err
				}
				payload = binary.BigEndian.AppendUint32(payload, uint32(len(wire)))
				payload = append(payload, wire...)
			}
			s.encodes.Add(1)
			cEncodes.Add(1)
			s.cache.Put(segKey(rate, sr.next), payload)
			if sr.next == n {
				want = payload
			}
			sr.next++
		}
		return want, nil
	})
}

func codesKey(n int) string { return fmt.Sprintf("codes:%d", n) }

// codesFor returns the compressed binary point codes of one chunk. Codes
// are extracted statelessly from the source frames (the server side-channel
// path), independent of any rate's encoder state — distinct chunks extract
// fully in parallel. ctx bounds the wait exactly as in segment.
func (s *Server) codesFor(ctx context.Context, n int) ([]byte, error) {
	if n < 0 || n >= s.cfg.Chunks {
		return nil, fmt.Errorf("httpstream: codes n=%d %w", n, errOutOfRange)
	}
	if b, ok := s.cache.Get(codesKey(n)); ok {
		return b, nil
	}
	return s.flight.DoCtx(ctx, codesKey(n), func() ([]byte, error) {
		if b, ok := s.cache.Get(codesKey(n)); ok {
			return b, nil
		}
		if s.testErr != nil {
			return nil, s.testErr
		}
		ext := edgecode.NewExtractor(0, 0)
		ext.HistoryWeight = 0
		fpc := s.framesPerChunk()
		var payload []byte
		for i := 0; i < fpc; i++ {
			code := ext.Extract(s.cfg.Source.Render(n*fpc+i, s.cfg.W, s.cfg.H))
			packed := code.Compress()
			payload = binary.BigEndian.AppendUint32(payload, uint32(len(packed)))
			payload = append(payload, packed...)
		}
		s.cache.Put(codesKey(n), payload)
		return payload, nil
	})
}

// writePayload sends a binary payload, counting (rather than discarding)
// write failures.
func (s *Server) writePayload(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	if _, err := w.Write(b); err != nil {
		s.writeErrors.Add(1)
		cWriteErrs.Add(1)
	}
}

// httpStatus maps a payload-builder error to its response code: 404 only
// for rates/chunks outside the manifest, 500 for internal failures.
func httpStatus(err error) int {
	if errors.Is(err, errOutOfRange) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// m3u8ContentType is the HLS playlist media type.
const m3u8ContentType = "application/vnd.apple.mpegurl"

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/manifest":
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.manifest); err != nil {
			s.writeErrors.Add(1)
			cWriteErrs.Add(1)
		}
	case r.URL.Path == "/master.m3u8":
		w.Header().Set("Content-Type", m3u8ContentType)
		if _, err := w.Write(s.masterPlaylist()); err != nil {
			s.writeErrors.Add(1)
			cWriteErrs.Add(1)
		}
	case strings.HasPrefix(r.URL.Path, "/media/") && strings.HasSuffix(r.URL.Path, ".m3u8"):
		rate, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/media/"), ".m3u8"))
		if err != nil {
			http.Error(w, "media playlist path is /media/<rate>.m3u8", http.StatusBadRequest)
			return
		}
		b, err := s.mediaPlaylist(rate)
		if err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		w.Header().Set("Content-Type", m3u8ContentType)
		if _, err := w.Write(b); err != nil {
			s.writeErrors.Add(1)
			cWriteErrs.Add(1)
		}
	case r.URL.Path == "/segment":
		rate, err1 := strconv.Atoi(r.URL.Query().Get("rate"))
		n, err2 := strconv.Atoi(r.URL.Query().Get("n"))
		if err1 != nil || err2 != nil {
			http.Error(w, "segment needs integer rate and n", http.StatusBadRequest)
			return
		}
		b, err := s.segment(r.Context(), rate, n)
		if s.abandoned(r, err) {
			return
		}
		if err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		s.writePayload(w, b)
	case r.URL.Path == "/codes":
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil {
			http.Error(w, "codes needs integer n", http.StatusBadRequest)
			return
		}
		b, err := s.codesFor(r.Context(), n)
		if s.abandoned(r, err) {
			return
		}
		if err != nil {
			http.Error(w, err.Error(), httpStatus(err))
			return
		}
		s.writePayload(w, b)
	default:
		http.NotFound(w, r)
	}
}

// abandoned classifies a payload-build error caused by the request's own
// context ending — the client disconnected while waiting. Nobody is
// listening for a response, so the handler just returns; the 499-style
// tally is kept in ClientCancels.
func (s *Server) abandoned(r *http.Request, err error) bool {
	if err == nil || r.Context().Err() == nil || !errors.Is(err, r.Context().Err()) {
		return false
	}
	s.cancels.Add(1)
	cCancels.Add(1)
	return true
}

// splitLengthPrefixed splits a payload of u32-length-prefixed records.
func splitLengthPrefixed(b []byte) ([][]byte, error) {
	var out [][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("httpstream: truncated length prefix")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n < 0 || len(b) < n {
			return nil, fmt.Errorf("httpstream: truncated record (%d bytes)", n)
		}
		out = append(out, b[:n])
		b = b[n:]
	}
	return out, nil
}

// ChunkResult is the client's per-chunk report.
type ChunkResult struct {
	Chunk int
	Rate  int
	Bytes int
	// FetchSeconds is the wall-clock time of the segment download
	// (excluding decode/recovery), the ABR's throughput signal.
	FetchSeconds float64
	// Degraded marks a chunk whose segment fetch failed through the whole
	// retry policy (or arrived corrupt) and was played codes-only through
	// the recovery path instead of aborting the stream.
	Degraded bool
	// DegradedReason is the failure that forced the degradation.
	DegradedReason string
	// Classes records how the engine produced each frame (decoded,
	// recovered, reused, ...), index-aligned with Frames.
	Classes []core.FrameClass
	Frames  []*vmath.Plane
}

// Client streams from a Server URL, running the NERVE client engine.
// With WithFailover it holds a ring of equivalent origin URLs (a cluster's
// nodes) and rotates to the next on transient failure, so one node dying
// degrades service instead of ending it.
type Client struct {
	http     *http.Client
	manifest Manifest
	engine   *core.Client

	// bases is the failover ring of origin base URLs; baseIdx is the
	// one currently in use. Rotation is sticky: a base is used until it
	// fails.
	baseMu  sync.Mutex
	bases   []string
	baseIdx int

	policy  RetryPolicy
	backoff *backoffer
	// sleep is the inter-retry wait (overridable in tests).
	sleep func(time.Duration)

	retries   atomic.Int64
	degraded  atomic.Int64
	failovers atomic.Int64
}

// ClientOption tweaks a Client at construction.
type ClientOption func(*Client)

// WithRetryPolicy sets the fetch fault-handling policy.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.policy = p.withDefaults() }
}

// WithFailover appends fallback origin URLs (a cluster's other nodes).
// A transient failure rotates the client to the next base before the
// retry, round-robin over the full ring.
func WithFailover(urls ...string) ClientOption {
	return func(c *Client) { c.bases = append(c.bases, urls...) }
}

// NewClient fetches the manifest and prepares the engine. enableRecovery
// wires the recovery model for lost segments.
func NewClient(baseURL string, httpClient *http.Client, enableRecovery bool, opts ...ClientOption) (*Client, error) {
	c, err := NewFetchClient(baseURL, httpClient, opts...)
	if err != nil {
		return nil, err
	}
	c.engine, err = core.NewClient(core.ClientConfig{
		W: c.manifest.Width, H: c.manifest.Height,
		EnableRecovery: enableRecovery,
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewFetchClient builds a client without the playback engine: it fetches
// the manifest and can drive the whole network path (FetchChunk — codes
// plus segment, retry/backoff, degradation accounting) but cannot decode.
// Load harnesses use it to keep thousands of concurrent clients
// goroutine-cheap: no per-client planes, pools or models, just sockets.
// PlayChunk and PlayAll on a fetch-only client return an error.
func NewFetchClient(baseURL string, httpClient *http.Client, opts ...ClientOption) (*Client, error) {
	c := NewRawClient(baseURL, httpClient, opts...)
	raw, err := c.fetch("/manifest")
	if err != nil {
		return nil, fmt.Errorf("httpstream: manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &c.manifest); err != nil {
		return nil, fmt.Errorf("httpstream: manifest: %w", err)
	}
	return c, nil
}

// NewRawClient builds the thinnest client: the retry/backoff/failover
// fetch machinery with no manifest bootstrap and no engine. The cluster
// peer-fetch path uses it — a peer may be down at construction time, and
// peers exchange raw payload paths, not manifests.
func NewRawClient(baseURL string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		bases:  []string{baseURL},
		http:   httpClient,
		policy: RetryPolicy{}.withDefaults(),
		sleep:  time.Sleep,
	}
	for _, o := range opts {
		o(c)
	}
	c.backoff = newBackoffer(c.policy)
	return c
}

// Fetch GETs path (e.g. "/segment?rate=0&n=2") from the current base
// under the full retry/failover policy, returning the raw payload.
func (c *Client) Fetch(path string) ([]byte, error) { return c.fetch(path) }

// currentBase returns the base URL in use and its ring index.
func (c *Client) currentBase() (string, int) {
	c.baseMu.Lock()
	defer c.baseMu.Unlock()
	return c.bases[c.baseIdx], c.baseIdx
}

// failover rotates away from the base at ring index from, unless another
// request already did.
func (c *Client) failover(from int) {
	c.baseMu.Lock()
	defer c.baseMu.Unlock()
	if len(c.bases) > 1 && c.baseIdx == from {
		c.baseIdx = (c.baseIdx + 1) % len(c.bases)
		c.failovers.Add(1)
		cFailovers.Add(1)
	}
}

// Failovers returns how many times the client rotated to a fallback base.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// Manifest returns the fetched stream description.
func (c *Client) Manifest() Manifest { return c.manifest }

// Retries returns how many retry attempts the client has made.
func (c *Client) Retries() int64 { return c.retries.Load() }

// DegradedChunks returns how many chunks fell back to codes-only recovery.
func (c *Client) DegradedChunks() int64 { return c.degraded.Load() }

// maxErrorDrainBytes bounds how much of a non-200 response body the
// client reads before closing: enough to let keep-alive reclaim the
// connection for any sane error payload, small enough that a huge one is
// abandoned (Close discards the connection) instead of stalling a retry
// loop on an unbounded drain.
const maxErrorDrainBytes = 16 << 10

// fetchOnce performs a single attempt against the given base. status is
// 0 for transport errors.
func (c *Client) fetchOnce(base, path string) (body []byte, status int, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.policy.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain the error body (bounded) so the connection can be
		// reused. A drain failure is a transport fault in its own right —
		// report it rather than silently losing the connection state.
		if _, derr := io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorDrainBytes)); derr != nil {
			return nil, resp.StatusCode, fmt.Errorf("%s (error body drain: %w)", resp.Status, derr)
		}
		return nil, resp.StatusCode, fmt.Errorf("%s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		// Truncated or reset mid-body: transient.
		return nil, 0, err
	}
	return b, http.StatusOK, nil
}

// fetch GETs base+path under the retry policy: transient failures
// (transport errors, 5xx, truncated bodies) retry with exponential backoff
// and seeded jitter up to MaxAttempts; permanent failures (4xx) return
// immediately. Failures are reported as *FetchError.
func (c *Client) fetch(path string) ([]byte, error) {
	// The fetch span covers all attempts including backoff waits: it is
	// the latency playback actually experienced for this resource.
	defer telemetry.Start(telemetry.StageFetch).Stop()
	var lastErr error
	var lastStatus int
	for attempt := 1; ; attempt++ {
		base, idx := c.currentBase()
		b, status, err := c.fetchOnce(base, path)
		if err == nil {
			return b, nil
		}
		lastErr, lastStatus = err, status
		if status >= 400 && status < 500 {
			return nil, &FetchError{Path: path, Attempts: attempt, Status: status, Transient: false, Err: err}
		}
		// Transient: rotate to the next base (no-op without failover
		// targets) before retrying — a dead node's work moves to the
		// survivors instead of burning the whole retry budget on it.
		c.failover(idx)
		if attempt >= c.policy.MaxAttempts {
			return nil, &FetchError{Path: path, Attempts: attempt, Status: lastStatus, Transient: true, Err: lastErr}
		}
		c.retries.Add(1)
		cRetries.Add(1)
		telemetry.Emit("retry", telemetry.StageFetch, path, float64(attempt))
		c.sleep(c.backoff.delay(attempt))
	}
}

// PlayChunk downloads chunk n at the given rate (lost=true simulates a
// media-path outage: only the side-channel codes arrive) and plays it
// through the engine, returning the displayed frames.
//
// The codes are the reliable side channel: if they cannot be fetched the
// chunk fails hard. The segment is the lossy media path: if its fetch
// fails through the whole retry policy, or the payload arrives corrupt,
// the chunk degrades to codes-only recovery (Degraded is set) instead of
// failing.
func (c *Client) PlayChunk(n, rate int, lost bool) (*ChunkResult, error) {
	if c.engine == nil {
		return nil, errors.New("httpstream: PlayChunk on a fetch-only client (use NewClient for playback)")
	}
	codesRaw, err := c.fetch(fmt.Sprintf("/codes?n=%d", n))
	if err != nil {
		return nil, err
	}
	codeRecs, err := splitLengthPrefixed(codesRaw)
	if err != nil {
		return nil, err
	}
	res := &ChunkResult{Chunk: n, Rate: rate}
	var frameRecs [][]byte
	if !lost {
		frameRecs, err = c.fetchSegment(n, rate, len(codeRecs), res)
		if err != nil {
			return nil, err
		}
	}
	for i := range codeRecs {
		code, err := edgecode.Decompress(codeRecs[i])
		if err != nil {
			return nil, err
		}
		in := core.Input{Code: code}
		if frameRecs != nil {
			var ef codec.EncodedFrame
			if err := ef.UnmarshalBinary(frameRecs[i]); err != nil {
				return nil, err
			}
			in.Encoded = &ef
		}
		fr, err := c.engine.Next(in)
		if err != nil {
			return nil, err
		}
		res.Frames = append(res.Frames, fr.Frame)
		res.Classes = append(res.Classes, fr.Class)
	}
	return res, nil
}

// FetchChunk downloads chunk n at the given rate exactly like PlayChunk —
// codes first (the reliable side channel, hard failure), then the segment
// under the full retry/degradation policy, then wire-format validation —
// but stops short of decode, recovery and enhancement. The returned
// result carries the fetch stats (Bytes, FetchSeconds, Degraded) with no
// frames. This is the network path a load harness drives per simulated
// client; it works on both playback and fetch-only clients.
func (c *Client) FetchChunk(n, rate int) (*ChunkResult, error) {
	codesRaw, err := c.fetch(fmt.Sprintf("/codes?n=%d", n))
	if err != nil {
		return nil, err
	}
	codeRecs, err := splitLengthPrefixed(codesRaw)
	if err != nil {
		return nil, err
	}
	res := &ChunkResult{Chunk: n, Rate: rate}
	if _, err := c.fetchSegment(n, rate, len(codeRecs), res); err != nil {
		return nil, err
	}
	return res, nil
}

// fetchSegment downloads and validates chunk n's media payload, filling in
// the result's fetch stats. A transient fetch failure or a corrupt payload
// returns (nil, nil) with the result marked Degraded — the codes-only
// path; permanent failures (the caller asked for a rate/chunk that does
// not exist) are returned as errors.
func (c *Client) fetchSegment(n, rate, wantFrames int, res *ChunkResult) ([][]byte, error) {
	degrade := func(reason string) ([][]byte, error) {
		c.degraded.Add(1)
		cDegraded.Add(1)
		telemetry.Emit("degraded", telemetry.StageFetch, reason, float64(n))
		res.Degraded = true
		res.DegradedReason = reason
		res.Bytes = 0
		res.FetchSeconds = 0
		return nil, nil
	}
	start := timeNow()
	segRaw, err := c.fetch(fmt.Sprintf("/segment?rate=%d&n=%d", rate, n))
	if err != nil {
		var fe *FetchError
		if errors.As(err, &fe) && !fe.Transient {
			return nil, err
		}
		return degrade(err.Error())
	}
	res.FetchSeconds = timeNow() - start
	res.Bytes = len(segRaw)
	frameRecs, err := splitLengthPrefixed(segRaw)
	if err != nil {
		return degrade(err.Error())
	}
	if len(frameRecs) != wantFrames {
		return degrade(fmt.Sprintf("httpstream: %d frames vs %d codes", len(frameRecs), wantFrames))
	}
	return frameRecs, nil
}

// minFetchSeconds floors the ABR measurement interval: on localhost (or a
// coarse clock) a segment can download in "zero" time, which previously
// dropped the throughput sample entirely; flooring keeps the signal finite
// and never discards it.
const minFetchSeconds = 1e-3

// PlayAll streams the whole manifest adaptively: a throughput-based rate
// pick from measured segment download times (wall clock), falling back to
// the lowest rung until a measurement exists. Degraded chunks (media path
// down) contribute no throughput sample and leave the rate unchanged. It
// returns the per-chunk results in order.
func (c *Client) PlayAll() ([]*ChunkResult, error) {
	var out []*ChunkResult
	rate := 0
	for n := 0; n < c.manifest.Chunks; n++ {
		res, err := c.PlayChunk(n, rate, false)
		if err != nil {
			return out, err
		}
		if res.Bytes > 0 {
			dt := res.FetchSeconds
			if dt < minFetchSeconds {
				dt = minFetchSeconds
			}
			bps := float64(res.Bytes) * 8 / dt
			// Highest rung affordable at 80% of the measured rate.
			rate = 0
			for i, kbps := range c.manifest.RatesKbps {
				if float64(kbps)*1000 <= 0.8*bps {
					rate = i
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// timeNow is a wall-clock seconds hook (overridable in tests).
var timeNow = func() float64 { return float64(timeNowNano()) / 1e9 }
