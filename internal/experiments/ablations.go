package experiments

import (
	"fmt"

	"nerve/internal/abr"
	"nerve/internal/device"
	"nerve/internal/edgecode"
	"nerve/internal/fec"
	"nerve/internal/metrics"
	"nerve/internal/netem"
	"nerve/internal/recovery"
	"nerve/internal/sim"
	"nerve/internal/sr"
	"nerve/internal/trace"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// AblationCodeResolution varies the binary point code geometry and measures
// recovery quality and side-channel cost — the design choice behind the
// paper's 64×128 (1 KB) pick.
func AblationCodeResolution(opts Options) *Table {
	w, h := 160, 96
	steps := 10
	if !opts.Quick {
		w, h = 320, 180
		steps = 20
	}
	src := testClips(opts)[0]
	t := &Table{
		ID:     "abl-code",
		Title:  "Ablation: binary point code resolution",
		Header: []string{"code", "bytes", "PSNR", "SSIM"},
		Notes:  []string{"the paper picks 64×128 = 1 KB: near the quality knee at minimal cost"},
	}
	for _, geom := range [][2]int{{64, 32}, {128, 64}, {256, 128}} {
		cw, ch := geom[0], geom[1]
		g := src.Generator()
		ext := edgecode.NewExtractor(cw, ch)
		r := recovery.New(recovery.Config{OutW: w, OutH: h})
		prevPrev := g.Render(38, w, h)
		prev := g.Render(39, w, h)
		prevCode := ext.Extract(prev)
		var s metrics.Series
		for k := 0; k < steps; k++ {
			truth := g.Render(40+k, w, h)
			code := ext.Extract(truth)
			out := r.Recover(recovery.Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: code})
			s.ObserveFrames(truth, out)
			prevPrev, prev, prevCode = prev, out, code
		}
		t.AddRow(fmt.Sprintf("%dx%d", ch, cw),
			fmt.Sprintf("%d", edgecode.NewCode(cw, ch).SizeBytes()),
			fmt.Sprintf("%.2f", s.MeanPSNR()),
			fmt.Sprintf("%.3f", s.MeanSSIM()))
	}
	return t
}

// AblationWarpResolution varies the warping/working resolution and reports
// quality against the modelled warp latency — §7's 270p-vs-1080p tradeoff.
func AblationWarpResolution(opts Options) *Table {
	outW, outH := 320, 180
	steps := 8
	if !opts.Quick {
		outW, outH = 640, 360
		steps = 16
	}
	dev := device.IPhone12()
	src := testClips(opts)[0]
	t := &Table{
		ID:     "abl-warp",
		Title:  "Ablation: warp/working resolution",
		Header: []string{"work", "PSNR", "warp(ms)"},
		Notes:  []string{"§7: warping at reduced resolution trades little quality for a large latency win"},
	}
	for _, div := range []int{1, 2, 4} {
		ww, wh := outW/div, outH/div
		g := src.Generator()
		ext := edgecode.NewExtractor(0, 0)
		r := recovery.New(recovery.Config{OutW: outW, OutH: outH, WorkW: ww, WorkH: wh})
		prevPrev := g.Render(38, outW, outH)
		prev := g.Render(39, outW, outH)
		prevCode := ext.Extract(prev)
		var s metrics.Series
		for k := 0; k < steps; k++ {
			truth := g.Render(40+k, outW, outH)
			code := ext.Extract(truth)
			out := r.Recover(recovery.Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: code})
			s.ObserveFrames(truth, out)
			prevPrev, prev, prevCode = prev, out, code
		}
		t.AddRow(fmt.Sprintf("%dx%d", ww, wh),
			fmt.Sprintf("%.2f", s.MeanPSNR()),
			fmt.Sprintf("%.1f", dev.WarpLatency(ww, wh)*1000))
	}
	return t
}

// AblationPredictor compares EWMA against Holt–Winters as the loss/
// throughput predictor inside the streaming loop (§6 mentions both).
func AblationPredictor(opts Options) *Table {
	t := &Table{
		ID:     "abl-pred",
		Title:  "Ablation: throughput predictor (one-step error on traces)",
		Header: []string{"network", "EWMA err%", "Holt err%"},
	}
	for _, nt := range trace.NetworkTypes() {
		var errE, errH float64
		n := 0
		for i := 0; i < 3; i++ {
			tr := trace.Generate(nt, 200, opts.Seed+int64(i))
			e := abr.NewEWMA(0.3)
			hw := abr.NewHoltWinters(0.5, 0.3)
			for j, s := range tr.Samples {
				if j > 0 {
					pe := e.Predict()
					ph := hw.Predict()
					errE += relErr(pe, s.ThroughputBps)
					errH += relErr(ph, s.ThroughputBps)
					n++
				}
				e.Observe(s.ThroughputBps)
				hw.Observe(s.ThroughputBps)
			}
		}
		t.AddRow(nt.String(),
			fmt.Sprintf("%.1f", 100*errE/float64(n)),
			fmt.Sprintf("%.1f", 100*errH/float64(n)))
	}
	return t
}

func relErr(pred, actual float64) float64 {
	if actual <= 0 {
		return 0
	}
	d := pred - actual
	if d < 0 {
		d = -d
	}
	return d / actual
}

// AblationFECScheme compares Reed–Solomon against interleaved XOR parity at
// equal redundancy under bursty loss.
func AblationFECScheme(opts Options) *Table {
	frames := 2000
	if opts.Quick {
		frames = 500
	}
	const pkts = 10
	t := &Table{
		ID:     "abl-fec",
		Title:  "Ablation: FEC scheme (frame loss at equal redundancy, bursty loss)",
		Header: []string{"loss", "redundancy", "RS frame loss", "XOR frame loss"},
		Notes:  []string{"RS (any-k-of-n) beats interleaved XOR under bursts"},
	}
	for _, loss := range []float64{0.01, 0.05} {
		for _, red := range []float64{0.2, 0.4} {
			var rates [2]float64
			for ki, kind := range []fec.Kind{fec.KindReedSolomon, fec.KindXOR} {
				ge := netem.NewGilbertElliott(opts.Seed + int64(ki))
				lost := 0
				for f := 0; f < frames; f++ {
					packets := make([][]byte, pkts)
					for i := range packets {
						packets[i] = []byte{byte(i)}
					}
					prot, err := fec.Protect(packets, red, kind)
					if err != nil {
						panic(err)
					}
					recv := make([]bool, prot.K+prot.M)
					for i := range recv {
						recv[i] = !ge.Drop(0, loss)
					}
					if _, ok := prot.Recover(recv); !ok {
						lost++
					}
				}
				rates[ki] = float64(lost) / float64(frames)
			}
			t.AddRow(fmt.Sprintf("%.0f%%", loss*100), fmt.Sprintf("%.0f%%", red*100),
				fmt.Sprintf("%.3f", rates[0]), fmt.Sprintf("%.3f", rates[1]))
		}
	}
	return t
}

// AblationSharedFlow models the memory/compute benefit of sharing one
// optical-flow module across SR scales versus per-scale networks (§5's
// design choice), using the device cost model.
func AblationSharedFlow(opts Options) *Table {
	dev := device.IPhone12()
	// The flow module is ~60% of the model FLOPs; per-resolution heads
	// share the rest.
	const flowG, headG = 6.5, 4.3
	t := &Table{
		ID:     "abl-flow",
		Title:  "Ablation: shared vs per-resolution flow network (cost model)",
		Header: []string{"design", "FLOPs(G)", "params(K)", "latency(ms)"},
		Notes:  []string{"sharing keeps one flow module across all rungs (§5)"},
	}
	nScales := len(video.Resolutions()) - 1
	shared := flowG + headG
	perScale := flowG*float64(nScales) + headG
	t.AddRow("shared flow", fmt.Sprintf("%.1f", shared), "1619",
		fmt.Sprintf("%.0f", dev.ModelLatency(shared, true)*1000))
	t.AddRow("per-scale flow", fmt.Sprintf("%.1f", perScale),
		fmt.Sprintf("%.0f", 1619+float64(nScales-1)*900),
		fmt.Sprintf("%.0f", dev.ModelLatency(perScale, true)*1000))
	return t
}

// AblationBufferSize sweeps the client buffer cap and reports the full
// system's QoE — quantifying the thin-buffer regime the system targets.
func AblationBufferSize(opts Options) *Table {
	set := sim.NewSchemeSet()
	t := &Table{
		ID:     "abl-buffer",
		Title:  "Ablation: client buffer cap (full system, 5G)",
		Header: []string{"buffer(s)", "QoE", "recovered %"},
	}
	for _, buf := range []float64{4, 8, 16, 30} {
		var q, rec float64
		traces := tracesFor(opts, trace.Net5G)
		for i, tr := range traces {
			res := sim.Run(sim.Config{Trace: tr, Seed: opts.Seed + int64(i), Chunks: chunksFor(opts), MaxBufferSec: buf}, set.Full())
			q += res.QoE
			rec += res.RecoveredFrac
		}
		n := float64(len(traces))
		t.AddRow(fmt.Sprintf("%.0f", buf), fmt.Sprintf("%.3f", q/n), fmt.Sprintf("%.1f", 100*rec/n))
	}
	return t
}

// AblationDetailHead compares the analytic sharpening head against the
// nn-trained residual head (§5's learned per-resolution convolution)
// on top of the shared SR pipeline.
func AblationDetailHead(opts Options) *Table {
	dispW, dispH := dnnGeometry(opts)
	frames := 8
	if !opts.Quick {
		frames = 20
	}
	iters := 150
	if !opts.Quick {
		iters = 600
	}
	head := sr.TrainLearnedHead(4, iters, opts.Seed)
	lw, lh := dispW/4, dispH/4
	src := testClips(opts)[0]

	t := &Table{
		ID:     "abl-head",
		Title:  "Ablation: analytic vs learned per-resolution detail head (4×)",
		Header: []string{"head", "PSNR", "SSIM"},
		Notes:  []string{"the learned head realises §5's residual learning target with internal/nn"},
	}
	for _, mode := range []string{"analytic", "learned"} {
		cfg := sr.Config{OutW: dispW, OutH: dispH}
		if mode == "learned" {
			cfg.LearnedHead = head
		}
		resolver := sr.New(cfg)
		g := src.Generator()
		var s metrics.Series
		for i := 0; i < frames; i++ {
			truth := g.Render(30+i, dispW, dispH)
			lr := vmath.ResizeBilinear(truth, lw, lh)
			s.ObserveFrames(truth, resolver.Upscale(lr))
		}
		t.AddRow(mode, fmt.Sprintf("%.2f", s.MeanPSNR()), fmt.Sprintf("%.3f", s.MeanSSIM()))
	}
	return t
}
