package codec

import (
	"math"
	"testing"
)

// blocks4 groups the corpus into batches of four, the packed transforms'
// unit of work.
func blocks4(blocks [][64]float32) [][4][64]float32 {
	var out [][4][64]float32
	for i := 0; i+4 <= len(blocks); i += 4 {
		var g [4][64]float32
		copy(g[:], blocks[i:i+4])
		out = append(out, g)
	}
	return out
}

// TestInt4xPackedLaneBitIdentity is the core SWAR proof: every lane of the
// packed transforms must equal the scalar int32 evaluation of the same
// flow graph, bit for bit, on adversarial corners and 500 random blocks.
// The packed code's bias bookkeeping (dct_int4x.go) is transparent exactly
// when no lane ever carries or borrows across a boundary — any headroom
// bug shows up here as a large, not subtle, mismatch.
func TestInt4xPackedLaneBitIdentity(t *testing.T) {
	ts := int4xTransforms()
	for gi, g := range blocks4(diffBlocks(31)) {
		var packed [4][64]float32
		fdct8x4(&g, &packed)
		for b := 0; b < 4; b++ {
			var lane [64]float32
			fdct8Lane(&g[b], &lane)
			if lane != packed[b] {
				t.Fatalf("fdct group %d block %d: packed lanes differ from scalar lane", gi, b)
			}
		}
		// Inverse: interpret the corpus as coefficient blocks, scaled into
		// the set's input domain like the other inverse tests.
		var scaled [4][64]float32
		for b := 0; b < 4; b++ {
			for i := range scaled[b] {
				scaled[b][i] = g[b][i] * ts.invScale[i]
			}
		}
		idct8x4(&scaled, &packed)
		for b := 0; b < 4; b++ {
			var lane [64]float32
			idct8Lane(&scaled[b], &lane)
			if lane != packed[b] {
				t.Fatalf("idct group %d block %d: packed lanes differ from scalar lane", gi, b)
			}
		}
	}
}

// TestInt4xForwardMatchesRef: the packed tier's forward transform,
// descaled, against the orthonormal reference. The budget is wider than
// the int tier's: Q2 input quantisation (±1/8 true units per sample)
// amplified by the flow's ≈10× 1-D L1 gain bounds the error near 1.25
// true-coefficient units (measured ≈1.14); the quantiser then folds that
// into ±1 levels on rounding boundaries only, see
// TestInt4xQuantLevelEquivalence.
func TestInt4xForwardMatchesRef(t *testing.T) {
	ts := int4xTransforms()
	var worst float64
	for _, blk := range diffBlocks(32) {
		var fast, ref [64]float32
		fdct8Lane(&blk, &fast)
		fdct8Ref(&blk, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i]/ts.fwdScale[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max forward error %g", worst)
	if worst > 1.25 {
		t.Fatalf("packed-lane forward deviates from reference by %g > 1.25", worst)
	}
}

// TestInt4xInverseMatchesRef: the packed tier's inverse against the
// reference, full-scale coefficient blocks. Q8 carry with Q15 constants
// end-to-end puts this in idct8Int's error class — the budget is a
// quarter grey level (measured ≈0.13).
func TestInt4xInverseMatchesRef(t *testing.T) {
	ts := int4xTransforms()
	var worst float64
	for _, coef := range diffBlocks(33) {
		var scaled, fast, ref [64]float32
		for i := range scaled {
			scaled[i] = coef[i] * ts.invScale[i]
		}
		idct8Lane(&scaled, &fast)
		idct8Ref(&coef, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max inverse error %g", worst)
	if worst > 0.25 {
		t.Fatalf("packed-lane inverse deviates from reference by %g > 0.25", worst)
	}
}

// TestInt4xDeterministic: packed transforms are pure functions of input
// bits — the property that lets the codecint build keep its cross-device
// bitstream reproducibility with the packed lanes as default.
func TestInt4xDeterministic(t *testing.T) {
	for _, g := range blocks4(diffBlocks(34)[:32]) {
		var a, b [4][64]float32
		fdct8x4(&g, &a)
		fdct8x4(&g, &b)
		if a != b {
			t.Fatal("fdct8x4 is not deterministic")
		}
		idct8x4(&g, &a)
		idct8x4(&g, &b)
		if a != b {
			t.Fatal("idct8x4 is not deterministic")
		}
	}
}

// TestInt4xQuantLevelEquivalence: bitstream levels from the packed tier
// against the AAN float set — ±1 only, and only near rounding boundaries.
// The boundary window scales the packed tier's coefficient error budget
// (1.0 true units, see TestInt4xForwardMatchesRef) into level units.
func TestInt4xQuantLevelEquivalence(t *testing.T) {
	p := int4xTransforms()
	aan := aanTransforms()
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	blocks := diffBlocks(35)
	for _, q := range []float32{1, 2, 4, 8} {
		mismatch, boundary := 0, 0
		for _, blk := range blocks {
			var cP, cA [64]float32
			var lP, lA [64]int32
			restore := setXF(p)
			fdct8Lane(&blk, &cP)
			quantise(&cP, q, &lP)
			restore()
			restore = setXF(aan)
			fdct8(&blk, &cA)
			quantise(&cA, q, &lA)
			restore()
			for i := range lP {
				if lP[i] == lA[i] {
					continue
				}
				d := lP[i] - lA[i]
				if d < 0 {
					d = -d
				}
				if d > 1 {
					mismatch++
					continue
				}
				v := float64(cA[i]) / (float64(q) * float64(quantWeight[i]) * float64(aan.fwdScale[i]))
				window := 1.0/(float64(q)*float64(quantWeight[i])) + 2e-3
				if math.Abs(v-math.Round(v)-0.5) < window || math.Abs(v-math.Round(v)+0.5) < window {
					boundary++
				} else {
					mismatch++
				}
			}
		}
		if mismatch > 0 {
			t.Fatalf("q=%v: %d level mismatches beyond rounding boundaries (%d boundary cases)", q, mismatch, boundary)
		}
		t.Logf("q=%v: levels equivalent (%d boundary off-by-ones tolerated)", q, boundary)
	}
}

// TestEncodePSNRParityWithInt4x: the full encode/decode pipeline under the
// packed tier (batch transforms active in the macroblock coders) must land
// within 0.1 dB of the float AAN transforms on every golden frame.
func TestEncodePSNRParityWithInt4x(t *testing.T) {
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	frames := testClip(t, 10)
	cfg := Config{W: 160, H: 96, GOP: 5, TargetBitrate: 600e3}
	restore := setXF(int4xTransforms())
	packed := encodeDecodePSNRs(t, frames, cfg)
	restore()
	restore = setXF(aanTransforms())
	fast := encodeDecodePSNRs(t, frames, cfg)
	restore()
	for i := range packed {
		if d := math.Abs(packed[i] - fast[i]); d > 0.1 {
			t.Fatalf("frame %d: PSNR %.3f dB (packed) vs %.3f dB (AAN): |Δ| %.3f > 0.1 dB",
				i, packed[i], fast[i], d)
		}
	}
	t.Logf("PSNR parity on %d frames: packed %.3f..%.3f dB", len(packed), packed[0], packed[len(packed)-1])
}

// BenchmarkFDCT8Int4x transforms four blocks per op; ns/op ÷ 4 is the
// per-block figure the CI regression gate tracks against BenchmarkFDCT8Int
// (the ≥1.5× packed-lane speedup claim).
func BenchmarkFDCT8Int4x(b *testing.B) {
	var in [4][64]float32
	copy(in[:], randomBlocks(25, 4))
	var out [4][64]float32
	b.SetBytes(4 * 64)
	for i := 0; i < b.N; i++ {
		fdct8x4(&in, &out)
	}
}

func BenchmarkIDCT8Int4x(b *testing.B) {
	ts := int4xTransforms()
	var in [4][64]float32
	blocks := randomBlocks(26, 4)
	for bl := range in {
		for i := range in[bl] {
			in[bl][i] = blocks[bl][i] * ts.invScale[i]
		}
	}
	var out [4][64]float32
	b.SetBytes(4 * 64)
	for i := 0; i < b.N; i++ {
		idct8x4(&in, &out)
	}
}
