package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"nerve/internal/vmath"
)

// WritePGM writes a plane as a binary PGM (P5) image, clamping to [0,255].
// Used by the visualisation experiments (Figs. 6, 9, 11).
func WritePGM(path string, p *vmath.Plane) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", p.W, p.H); err != nil {
		return err
	}
	buf := make([]byte, len(p.Pix))
	for i, v := range p.Pix {
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		buf[i] = byte(v + 0.5)
	}
	_, err = f.Write(buf)
	return err
}

// writeArtefact writes a PGM under opts.OutDir (creating it) and returns
// the path; with no OutDir it is a no-op returning "".
func writeArtefact(opts Options, name string, p *vmath.Plane) (string, error) {
	if opts.OutDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(opts.OutDir, name)
	if err := WritePGM(path, p); err != nil {
		return "", err
	}
	return path, nil
}
