package codec

import (
	"nerve/internal/par"
	"nerve/internal/vmath"
)

// MBSize is the macroblock size in pixels.
const MBSize = 16

// MV is a full-pel motion vector.
type MV struct{ X, Y int }

// sadMB computes the sum of absolute differences between the MBSize×MBSize
// block of cur at (cx, cy) and the block of ref at (cx+mv.X, cy+mv.Y),
// clamping reads at the frame border. Early-exits once the partial SAD
// exceeds best.
func sadMB(cur, ref *vmath.Plane, cx, cy int, mv MV, best int64) int64 {
	var sad int64
	for y := 0; y < MBSize; y++ {
		py := cy + y
		if py >= cur.H {
			break
		}
		for x := 0; x < MBSize; x++ {
			px := cx + x
			if px >= cur.W {
				break
			}
			d := cur.Pix[py*cur.W+px] - ref.AtClamp(px+mv.X, py+mv.Y)
			if d < 0 {
				d = -d
			}
			sad += int64(d)
		}
		if sad >= best {
			return sad
		}
	}
	return sad
}

// diamond search patterns.
var (
	largeDiamond = []MV{{0, -2}, {-1, -1}, {1, -1}, {-2, 0}, {2, 0}, {-1, 1}, {1, 1}, {0, 2}}
	smallDiamond = []MV{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}
)

// searchMV finds a motion vector for the macroblock at (cx, cy) in cur
// relative to ref using diamond search seeded by pred, within ±maxRange.
// It returns the vector and its SAD.
func searchMV(cur, ref *vmath.Plane, cx, cy int, pred MV, maxRange int) (MV, int64) {
	clampMV := func(m MV) MV {
		if m.X > maxRange {
			m.X = maxRange
		} else if m.X < -maxRange {
			m.X = -maxRange
		}
		if m.Y > maxRange {
			m.Y = maxRange
		} else if m.Y < -maxRange {
			m.Y = -maxRange
		}
		return m
	}
	best := clampMV(pred)
	bestSAD := sadMB(cur, ref, cx, cy, best, 1<<62)
	// Also try the zero vector as a second seed.
	if z := (MV{}); z != best {
		if s := sadMB(cur, ref, cx, cy, z, bestSAD); s < bestSAD {
			best, bestSAD = z, s
		}
	}
	// Large diamond until the centre is best.
	for iter := 0; iter < 32; iter++ {
		improved := false
		for _, d := range largeDiamond {
			cand := clampMV(MV{best.X + d.X, best.Y + d.Y})
			if cand == best {
				continue
			}
			if s := sadMB(cur, ref, cx, cy, cand, bestSAD); s < bestSAD {
				best, bestSAD = cand, s
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Small-diamond refinement.
	for _, d := range smallDiamond {
		cand := clampMV(MV{best.X + d.X, best.Y + d.Y})
		if s := sadMB(cur, ref, cx, cy, cand, bestSAD); s < bestSAD {
			best, bestSAD = cand, s
		}
	}
	return best, bestSAD
}

// SearchFrameInto motion-searches every macroblock of cur against ref into
// the caller-supplied scratch mvs, growing it only when too small, and
// returns the vectors in macroblock raster order. Per-frame callers keep
// the returned slice and pass it back the next frame for a zero-allocation
// steady state. Rows run concurrently on the shared pool — the same
// row-of-macroblocks granularity the encoder uses — and within a row each
// search is seeded by the previous block's vector, so the result is
// identical for any pool size.
func SearchFrameInto(mvs []MV, cur, ref *vmath.Plane, maxRange int) []MV {
	if cur.W != ref.W || cur.H != ref.H {
		panic("codec: SearchFrame plane size mismatch")
	}
	mbRows := (cur.H + MBSize - 1) / MBSize
	mbCols := (cur.W + MBSize - 1) / MBSize
	n := mbRows * mbCols
	if cap(mvs) < n {
		mvs = make([]MV, n)
	}
	mvs = mvs[:n]
	par.For(mbRows, func(row int) {
		pred := MV{}
		for col := 0; col < mbCols; col++ {
			mv, _ := searchMV(cur, ref, col*MBSize, row*MBSize, pred, maxRange)
			mvs[row*mbCols+col] = mv
			pred = mv
		}
	})
	return mvs
}

// SearchFrame motion-searches every macroblock of cur against ref and
// returns the vectors in macroblock raster order.
func SearchFrame(cur, ref *vmath.Plane, maxRange int) []MV {
	return SearchFrameInto(nil, cur, ref, maxRange)
}
