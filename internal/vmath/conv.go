package vmath

import (
	"math"

	"nerve/internal/par"
)

// Convolve applies a general k×k kernel (odd k, row-major) to p with
// replicate border padding. Output rows are independent, so row bands run
// on the shared pool with pool-size-independent results.
func Convolve(p *Plane, kernel []float32, k int) *Plane {
	if k%2 == 0 || len(kernel) != k*k {
		panic("vmath: Convolve needs an odd k×k kernel")
	}
	r := k / 2
	out := NewPlane(p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for j := 0; j < k; j++ {
					for i := 0; i < k; i++ {
						s += kernel[j*k+i] * p.AtClamp(x+i-r, y+j-r)
					}
				}
				out.Pix[y*p.W+x] = s
			}
		}
	})
	return out
}

// ConvolveSeparable applies a separable filter: first the horizontal tap
// vector kx, then the vertical tap vector ky (both odd length), with
// replicate padding. This is the fast path used by blurs. Both passes
// parallelise over row bands; the vertical pass reads the fully written
// horizontal intermediate, which the pool's completion barrier guarantees.
func ConvolveSeparable(p *Plane, kx, ky []float32) *Plane {
	if len(kx)%2 == 0 || len(ky)%2 == 0 {
		panic("vmath: ConvolveSeparable needs odd tap vectors")
	}
	rx := len(kx) / 2
	tmp := NewPlane(p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for i, w := range kx {
					s += w * p.AtClamp(x+i-rx, y)
				}
				tmp.Pix[y*p.W+x] = s
			}
		}
	})
	ry := len(ky) / 2
	out := NewPlane(p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for j, w := range ky {
					s += w * tmp.AtClamp(x, y+j-ry)
				}
				out.Pix[y*p.W+x] = s
			}
		}
	})
	return out
}

// GaussianKernel1D returns normalised Gaussian taps for the given sigma.
// The radius is ceil(3*sigma), clamped to at least 1.
func GaussianKernel1D(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	taps := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		taps[i+r] = float32(v)
		sum += v
	}
	for i := range taps {
		taps[i] = float32(float64(taps[i]) / sum)
	}
	return taps
}

// GaussianBlur blurs p with an isotropic Gaussian of the given sigma.
func GaussianBlur(p *Plane, sigma float64) *Plane {
	taps := GaussianKernel1D(sigma)
	return ConvolveSeparable(p, taps, taps)
}

// BoxBlur blurs p with a (2r+1)×(2r+1) box filter.
func BoxBlur(p *Plane, r int) *Plane {
	if r < 1 {
		return p.Clone()
	}
	n := 2*r + 1
	taps := make([]float32, n)
	for i := range taps {
		taps[i] = 1 / float32(n)
	}
	return ConvolveSeparable(p, taps, taps)
}

// SobelX and SobelY compute horizontal and vertical Sobel gradients.
func SobelX(p *Plane) *Plane {
	return Convolve(p, []float32{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	}, 3)
}

func SobelY(p *Plane) *Plane {
	return Convolve(p, []float32{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	}, 3)
}

// GradientMagnitude returns sqrt(gx²+gy²) per pixel of the Sobel gradients.
func GradientMagnitude(p *Plane) *Plane {
	gx := SobelX(p)
	gy := SobelY(p)
	out := NewPlane(p.W, p.H)
	for i := range out.Pix {
		out.Pix[i] = float32(math.Hypot(float64(gx.Pix[i]), float64(gy.Pix[i])))
	}
	return out
}

// Laplacian applies the 4-connected Laplacian kernel, used by the
// enhancement branch for residual sharpening.
func Laplacian(p *Plane) *Plane {
	return Convolve(p, []float32{
		0, 1, 0,
		1, -4, 1,
		0, 1, 0,
	}, 3)
}

// UnsharpMask sharpens p by amount·(p − blur(p, sigma)), clamping nothing;
// the caller decides whether to clamp to [0,255].
func UnsharpMask(p *Plane, sigma, amount float64) *Plane {
	blur := GaussianBlur(p, sigma)
	out := NewPlane(p.W, p.H)
	a := float32(amount)
	for i := range out.Pix {
		out.Pix[i] = p.Pix[i] + a*(p.Pix[i]-blur.Pix[i])
	}
	return out
}
