package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// SnapshotSchema is the schema version stamped into every snapshot; bump
// it when a field changes meaning so downstream analysis can dispatch.
// v2: added the pipeline block; for pipelined clients the deadline block
// now measures per-frame critical-path time, not summed stage time.
// v3: added the tier.* counters (tier.float_frames, tier.fixed_frames,
// tier.switches, tier.probes) — per-frame kernel-tier accounting from the
// adaptive tier governor; sessions pinned to one tier count every frame
// under that tier with zero switches and probes.
const SnapshotSchema = 3

// StageStats is one stage's aggregate in a Snapshot. All times are
// milliseconds of wall clock.
type StageStats struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// DeadlineStats is the frame-deadline tracker's aggregate in a Snapshot.
type DeadlineStats struct {
	// TargetFPS and BudgetMs describe the deadline: BudgetMs = 1000/FPS.
	TargetFPS float64 `json:"target_fps"`
	BudgetMs  float64 `json:"budget_ms"`
	// Frames is how many frames were observed; Overruns how many of them
	// exceeded the budget.
	Frames   int64 `json:"frames"`
	Overruns int64 `json:"overruns"`
	// P50Ms/P95Ms/P99Ms/MaxMs describe the per-frame time distribution.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// OverrunP95Ms and OverrunMaxMs describe how far past the budget the
	// overrunning frames went.
	OverrunP95Ms float64 `json:"overrun_p95_ms"`
	OverrunMaxMs float64 `json:"overrun_max_ms"`
}

// Snapshot is a point-in-time serialisation of a Registry — the schema of
// BENCH_telemetry.json and of the /debug/telemetry endpoint. Stages are
// listed in pipeline order, including stages with zero observations, so
// the schema is stable across runs; counters appear only once registered.
type Snapshot struct {
	Schema   int              `json:"schema"`
	Stages   []StageStats     `json:"stages"`
	Counters map[string]int64 `json:"counters"`
	Deadline DeadlineStats    `json:"deadline"`
	Pipeline PipelineStats    `json:"pipeline"`
}

// ms converts a duration to float64 milliseconds.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Snapshot captures the registry's current aggregates. It is safe to call
// concurrently with recording; the result is a consistent-enough view for
// reporting (each histogram is read atomically per bucket, not frozen).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:   SnapshotSchema,
		Counters: map[string]int64{},
	}
	for i := Stage(0); i < numStages; i++ {
		h := &r.stages[i]
		s.Stages = append(s.Stages, StageStats{
			Stage:   i.String(),
			Count:   h.Count(),
			TotalMs: ms(h.Sum()),
			P50Ms:   ms(h.Quantile(0.50)),
			P95Ms:   ms(h.Quantile(0.95)),
			P99Ms:   ms(h.Quantile(0.99)),
			MaxMs:   ms(h.Max()),
		})
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters[name] = r.counters[name].Value()
	}
	r.mu.RUnlock()
	s.Deadline = DeadlineStats{
		TargetFPS:    r.DeadlineFPS(),
		BudgetMs:     ms(r.FrameBudget()),
		Frames:       r.dead.frames.Count(),
		Overruns:     r.dead.overruns.Load(),
		P50Ms:        ms(r.dead.frames.Quantile(0.50)),
		P95Ms:        ms(r.dead.frames.Quantile(0.95)),
		P99Ms:        ms(r.dead.frames.Quantile(0.99)),
		MaxMs:        ms(r.dead.frames.Max()),
		OverrunP95Ms: ms(r.dead.over.Quantile(0.95)),
		OverrunMaxMs: ms(r.dead.over.Max()),
	}
	s.Pipeline = r.PipelineSnapshot()
	return s
}

// WriteJSON writes the registry's snapshot to w as indented JSON — the
// exact content of a BENCH_telemetry.json file.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
