// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON artifact, so CI can record the perf trajectory — ns/op,
// B/op and allocs/op per benchmark — machine-readably next to the raw
// bench.txt (see the bench-smoke job in .github/workflows/ci.yml).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -out BENCH_bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. CPUs is the -cpu value encoded in
// the name suffix (GOMAXPROCS), 1 when the name carries no suffix.
// BytesPerOp/AllocsPerOp are -1 when the run lacked -benchmem.
type Benchmark struct {
	Pkg         string  `json:"pkg,omitempty"`
	Name        string  `json:"name"`
	CPUs        int     `json:"cpus"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type output struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "bench output to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	res, err := parse(r)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse scans go-test bench output. Interesting lines:
//
//	goos: linux
//	goarch: amd64
//	pkg: nerve/internal/codec
//	BenchmarkEncode160x96-4   100  1234567 ns/op  2345 B/op  67 allocs/op
//
// Everything else (PASS, ok, harness prints) is skipped.
func parse(r io.Reader) (*output, error) {
	res := &output{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			res.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			res.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		res.Benchmarks = append(res.Benchmarks, b)
	}
	return res, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	// Minimum: name, iterations, value, "ns/op".
	if len(f) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], CPUs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if n, err := strconv.Atoi(b.Name[i+1:]); err == nil && n > 0 {
			b.Name, b.CPUs = b.Name[:i], n
		}
	}
	it, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = it
	// The rest are value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, sawNs
}
