//go:build !codecref && !codecint

package codec

// defaultTransforms selects the AAN fast transforms in normal builds. The
// codecref build tag swaps in the basis-matrix reference transforms — an
// escape hatch for isolating suspected fast-path numerics — and the
// codecint tag swaps in the integer fixed-point transforms for
// deterministic cross-platform bitstreams (bitstreams stay interchangeable
// across all three builds; see transformSet).
func defaultTransforms() transformSet { return aanTransforms() }

// RefTransformsForced reports whether this binary was built with
// -tags codecref (reference DCT forced).
const RefTransformsForced = false

// IntTransformsForced reports whether this binary was built with
// -tags codecint (integer DCT forced).
const IntTransformsForced = false
