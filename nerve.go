// Package nerve is the public API of the NERVE reproduction: real-time
// neural video recovery and enhancement for mobile streaming (He et al.,
// CoNEXT 2024), reimplemented from scratch in Go.
//
// The package re-exports the user-facing pieces of the internal packages:
//
//   - video source and ladder (Frame, Resolution, Generator, Categories)
//   - the media server and client engine (Server, Client — Fig. 5)
//   - the recovery model and super-resolver as standalone components
//   - ABR algorithms including the §6 enhancement-aware one
//   - network traces, the streaming simulator and the experiment harness
//
// See the runnable programs under examples/ for end-to-end usage, and
// cmd/nervebench to regenerate every table and figure of the paper.
package nerve

import (
	"io"

	"nerve/internal/abr"
	"nerve/internal/core"
	"nerve/internal/device"
	"nerve/internal/edgecode"
	"nerve/internal/experiments"
	"nerve/internal/fec"
	"nerve/internal/metrics"
	"nerve/internal/qoe"
	"nerve/internal/recovery"
	"nerve/internal/sim"
	"nerve/internal/sr"
	"nerve/internal/trace"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// ---- Video substrate ----

// Plane is a dense single-channel (luma) image.
type Plane = vmath.Plane

// NewPlane allocates a zeroed W×H plane.
func NewPlane(w, h int) *Plane { return vmath.NewPlane(w, h) }

// Resolution is a bitrate-ladder rung (240p … 1080p).
type Resolution = video.Resolution

// Ladder rungs.
const (
	R240  = video.R240
	R360  = video.R360
	R480  = video.R480
	R720  = video.R720
	R1080 = video.R1080
)

// Resolutions returns the full ladder.
func Resolutions() []Resolution { return video.Resolutions() }

// Category describes a synthetic content category; Generator renders its
// deterministic video.
type (
	Category  = video.Category
	Generator = video.Generator
)

// Categories returns the ten content categories of the synthetic corpus.
func Categories() []Category { return video.Categories() }

// NewGenerator builds a deterministic scene generator.
func NewGenerator(cat Category, seed int64) *Generator { return video.NewGenerator(cat, seed) }

// PSNR and SSIM are the video quality metrics used throughout.
func PSNR(ref, dist *Plane) float64 { return metrics.PSNR(ref, dist) }
func SSIM(ref, dist *Plane) float64 { return metrics.SSIM(ref, dist) }

// ---- System engine (Fig. 5) ----

// Server encodes frames and extracts binary point codes; Client is the
// mobile engine that decodes, recovers and super-resolves.
type (
	Server       = core.Server
	ServerConfig = core.ServerConfig
	ServerFrame  = core.ServerFrame
	Client       = core.Client
	ClientConfig = core.ClientConfig
	ClientInput  = core.Input
	FrameResult  = core.FrameResult
)

// NewServer builds a media server.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// NewClient builds a client engine.
func NewClient(cfg ClientConfig) (*Client, error) { return core.NewClient(cfg) }

// ---- Standalone components ----

// Recoverer is the hint-assisted video recovery model (§4).
type (
	Recoverer       = recovery.Recoverer
	RecoveryConfig  = recovery.Config
	RecoveryInput   = recovery.Input
	BinaryPointCode = edgecode.Code
	CodeExtractor   = edgecode.Extractor
)

// NewRecoverer builds a recovery model.
func NewRecoverer(cfg RecoveryConfig) *Recoverer { return recovery.New(cfg) }

// NewCodeExtractor builds a binary point code extractor (zero dims select
// the paper's 1 KB 64×128 geometry).
func NewCodeExtractor(w, h int) *CodeExtractor { return edgecode.NewExtractor(w, h) }

// SuperResolver is the multi-resolution real-time SR model (§5).
type (
	SuperResolver = sr.SuperResolver
	SRConfig      = sr.Config
)

// NewSuperResolver builds a super-resolver.
func NewSuperResolver(cfg SRConfig) *SuperResolver { return sr.New(cfg) }

// DeviceModel is the mobile cost model (latency, CPU, energy).
type DeviceModel = device.Model

// IPhone12 returns the calibrated iPhone 12 model from the paper.
func IPhone12() *DeviceModel { return device.IPhone12() }

// ---- ABR and QoE ----

type (
	// ABRAlgorithm selects the next chunk's ladder rung.
	ABRAlgorithm = abr.Algorithm
	// ABRState is the input to an ABR decision.
	ABRState = abr.State
	// EnhancementAwareABR is the §6 contribution.
	EnhancementAwareABR = abr.EnhancementAware
	// QoEParams configures the QoE metric; QoESession accumulates chunks.
	QoEParams  = qoe.Params
	QoESession = qoe.Session
)

// NewMPC returns the robustMPC baseline; NewRateBased and NewBufferBased
// the classical ones; NewPensieve the PPO policy (train with TrainPensieve).
func NewMPC() ABRAlgorithm                 { return abr.NewMPC() }
func NewRateBased() ABRAlgorithm           { return abr.NewRateBased() }
func NewBufferBased() ABRAlgorithm         { return abr.NewBufferBased() }
func NewBOLA() ABRAlgorithm                { return abr.NewBOLA() }
func NewPensieve(seed int64) *abr.Pensieve { return abr.NewPensieve(seed) }

// NewBBA2 returns BBA-2 (Huang et al., SIGCOMM 2014); NewBBA2Loss and
// NewBBA2RTT its cross-layer variants driven by the transport qlog stream
// (TRANSPORT_EVENTS.md).
func NewBBA2() ABRAlgorithm     { return abr.NewBBA2() }
func NewBBA2Loss() ABRAlgorithm { return abr.NewBBA2Loss() }
func NewBBA2RTT() ABRAlgorithm  { return abr.NewBBA2RTT() }

// ABRByName constructs any controller from its wire name (nil if unknown);
// ABRNames lists the accepted names.
func ABRByName(name string) ABRAlgorithm { return abr.NewByName(name) }
func ABRNames() []string                 { return abr.Names() }

// ---- Network traces, FEC and simulation ----

type (
	// Trace is a network throughput/loss/RTT time series.
	Trace = trace.Trace
	// NetworkType selects 3G/4G/5G/WiFi.
	NetworkType = trace.NetworkType
	// FECPlanner maps predicted loss to FEC redundancy (§4).
	FECPlanner = fec.Planner
	// SimConfig, Scheme and SimResult drive the streaming simulator.
	SimConfig = sim.Config
	Scheme    = sim.Scheme
	SchemeSet = sim.SchemeSet
	SimResult = sim.Result
)

// Network types.
const (
	Net3G   = trace.Net3G
	Net4G   = trace.Net4G
	Net5G   = trace.Net5G
	NetWiFi = trace.NetWiFi
)

// GenerateTrace synthesises a network trace calibrated to the paper's
// Table 2 statistics.
func GenerateTrace(n NetworkType, durSeconds float64, seed int64) *Trace {
	return trace.Generate(n, durSeconds, seed)
}

// NewSchemeSet returns the evaluation scheme family (w/o RC, RC alone,
// NEMO, full system, …).
func NewSchemeSet() SchemeSet { return sim.NewSchemeSet() }

// Simulate runs one streaming session of a scheme over a trace.
func Simulate(cfg SimConfig, scheme Scheme) *SimResult { return sim.Run(cfg, scheme) }

// TrainPensieve trains the PPO ABR in the chunk simulator.
func TrainPensieve(traces []*Trace, episodes int, seed int64) *abr.Pensieve {
	return sim.TrainPensieve(traces, episodes, seed)
}

// DefaultFECPlanner returns the calibrated loss→redundancy table.
func DefaultFECPlanner() *FECPlanner { return fec.DefaultPlanner() }

// ---- Experiments ----

// ExperimentOptions configures the reproduction harness.
type ExperimentOptions = experiments.Options

// ExperimentIDs lists every table/figure harness (DESIGN.md §3).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table/figure, writing rendered results.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	return experiments.Run(id, opts, w)
}

// RunAllExperiments regenerates everything in ID order.
func RunAllExperiments(opts ExperimentOptions, w io.Writer) error {
	return experiments.RunAll(opts, w)
}

// ABRMatrixResult is the cross-layer ABR × trace × loss matrix in its
// results/ JSON shape.
type ABRMatrixResult = experiments.ABRMatrixResult

// RunABRMatrix runs the cross-layer ABR matrix (packet-accurate transport,
// recovery client, planned FEC), renders the QoE table to w and returns
// the JSON-shaped result for WriteJSON.
func RunABRMatrix(opts ExperimentOptions, w io.Writer) *ABRMatrixResult {
	res, t := experiments.ABRMatrix(opts)
	t.Fprint(w)
	return res
}
