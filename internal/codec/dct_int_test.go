package codec

import (
	"math"
	"testing"
)

// TestIntForwardMatchesRef: the integer forward DCT, descaled, must agree
// with the orthonormal reference to within the Q2-input + Q13-rotation
// budget (≤ 0.5 in the true-coefficient domain) across the adversarial
// corner blocks (impulses, ±255 checkerboards, flats) and random residuals.
func TestIntForwardMatchesRef(t *testing.T) {
	ts := intTransforms()
	var worst float64
	for _, blk := range diffBlocks(21) {
		var fast, ref [64]float32
		fdct8Int(&blk, &fast)
		fdct8Ref(&blk, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i]/ts.fwdScale[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max forward error %g", worst)
	if worst > 0.5 {
		t.Fatalf("integer forward deviates from reference by %g > 0.5", worst)
	}
}

// TestIntInverseMatchesRef: the integer inverse on invScale-scaled
// coefficients must reconstruct within a quarter grey level of the
// reference across full-scale coefficient blocks (the error is relative —
// Q15 constant quantisation, ~7·10⁻⁵ of the reconstruction magnitude, and
// these blocks drive it to ±2040). Frequency-domain impulses are included,
// so every basis function's rotation path is exercised.
func TestIntInverseMatchesRef(t *testing.T) {
	ts := intTransforms()
	var worst float64
	for _, coef := range diffBlocks(22) {
		var scaled, fast, ref [64]float32
		for i := range scaled {
			scaled[i] = coef[i] * ts.invScale[i]
		}
		idct8Int(&scaled, &fast)
		idct8Ref(&coef, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max inverse error %g", worst)
	if worst > 0.25 {
		t.Fatalf("integer inverse deviates from reference by %g > 1/4", worst)
	}
}

// TestIntDeterministic: the integer transforms must be pure functions of
// their input bits — two runs over the corner corpus produce identical
// outputs (the property the codecint build tag exists for; the float AAN
// path only promises 1e-3 agreement with itself across platforms).
func TestIntDeterministic(t *testing.T) {
	for _, blk := range diffBlocks(23)[:32] {
		var a, b [64]float32
		fdct8Int(&blk, &a)
		fdct8Int(&blk, &b)
		if a != b {
			t.Fatal("fdct8Int is not deterministic")
		}
		idct8Int(&blk, &a)
		idct8Int(&blk, &b)
		if a != b {
			t.Fatal("idct8Int is not deterministic")
		}
	}
}

// TestIntQuantLevelEquivalence: quantised levels (the bitstream) from the
// integer transforms must match the AAN float set within ±1, and off-by-one
// only where the true coefficient sits near a rounding boundary — the
// boundary window is the combined integer+float coefficient error scaled
// into level units.
func TestIntQuantLevelEquivalence(t *testing.T) {
	intSet := intTransforms()
	aan := aanTransforms()
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	blocks := diffBlocks(24)
	for _, q := range []float32{1, 2, 4, 8} {
		mismatch, boundary := 0, 0
		for _, blk := range blocks {
			var cI, cA [64]float32
			var lI, lA [64]int32
			restore := setXF(intSet)
			fdct8Int(&blk, &cI)
			quantise(&cI, q, &lI)
			restore()
			restore = setXF(aan)
			fdct8(&blk, &cA)
			quantise(&cA, q, &lA)
			restore()
			for i := range lI {
				if lI[i] == lA[i] {
					continue
				}
				d := lI[i] - lA[i]
				if d < 0 {
					d = -d
				}
				if d > 1 {
					mismatch++
					continue
				}
				// Off-by-one is legitimate only near a half-step: the
				// integer path's coefficient error is ≤ 0.5 true units,
				// i.e. 0.5/(q·weight) levels.
				v := float64(cA[i]) / (float64(q) * float64(quantWeight[i]) * float64(aan.fwdScale[i]))
				window := 0.5/(float64(q)*float64(quantWeight[i])) + 2e-3
				if math.Abs(v-math.Round(v)-0.5) < window || math.Abs(v-math.Round(v)+0.5) < window {
					boundary++
				} else {
					mismatch++
				}
			}
		}
		if mismatch > 0 {
			t.Fatalf("q=%v: %d level mismatches beyond rounding boundaries (%d boundary cases)", q, mismatch, boundary)
		}
		t.Logf("q=%v: levels equivalent (%d boundary off-by-ones tolerated)", q, boundary)
	}
}

// TestEncodePSNRParityWithInt is the end-to-end gate for the integer tier:
// the full encode/decode pipeline under the integer transforms must land
// within 0.05 dB of the float AAN transforms on every golden frame.
func TestEncodePSNRParityWithInt(t *testing.T) {
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	frames := testClip(t, 10)
	cfg := Config{W: 160, H: 96, GOP: 5, TargetBitrate: 600e3}
	restore := setXF(intTransforms())
	ints := encodeDecodePSNRs(t, frames, cfg)
	restore()
	restore = setXF(aanTransforms())
	fast := encodeDecodePSNRs(t, frames, cfg)
	restore()
	for i := range ints {
		if d := math.Abs(ints[i] - fast[i]); d > 0.05 {
			t.Fatalf("frame %d: PSNR %.3f dB (int) vs %.3f dB (AAN): |Δ| %.3f > 0.05 dB",
				i, ints[i], fast[i], d)
		}
	}
	t.Logf("PSNR parity on %d frames: int %.3f..%.3f dB", len(ints), ints[0], ints[len(ints)-1])
}

func BenchmarkFDCT8Int(b *testing.B) {
	blk := randomBlocks(25, 1)[0]
	var out [64]float32
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		fdct8Int(&blk, &out)
	}
}

func BenchmarkIDCT8Int(b *testing.B) {
	ts := intTransforms()
	blk := randomBlocks(26, 1)[0]
	var scaled, out [64]float32
	for i := range scaled {
		scaled[i] = blk[i] * ts.invScale[i]
	}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		idct8Int(&scaled, &out)
	}
}
