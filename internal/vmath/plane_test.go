package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomPlane(rng *rand.Rand, w, h int) *Plane {
	p := NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = rng.Float32() * 255
	}
	return p
}

func TestNewPlaneZeroed(t *testing.T) {
	p := NewPlane(4, 3)
	if p.W != 4 || p.H != 3 || len(p.Pix) != 12 {
		t.Fatalf("unexpected shape %dx%d len=%d", p.W, p.H, len(p.Pix))
	}
	for i, v := range p.Pix {
		if v != 0 {
			t.Fatalf("pixel %d not zeroed: %v", i, v)
		}
	}
}

func TestNewPlanePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlane(-1, 2)
}

func TestFromSliceSharesBacking(t *testing.T) {
	pix := []float32{1, 2, 3, 4}
	p := FromSlice(2, 2, pix)
	pix[0] = 9
	if p.At(0, 0) != 9 {
		t.Fatal("FromSlice should not copy")
	}
}

func TestFromSlicePanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	p := NewPlane(2, 2)
	p.Set(1, 1, 5)
	q := p.Clone()
	q.Set(1, 1, 7)
	if p.At(1, 1) != 5 {
		t.Fatal("Clone must not alias")
	}
}

func TestAtClampBorders(t *testing.T) {
	p := FromSlice(2, 2, []float32{1, 2, 3, 4})
	cases := []struct {
		x, y int
		want float32
	}{
		{-5, -5, 1}, {5, -1, 2}, {-1, 5, 3}, {9, 9, 4}, {0, 1, 3},
	}
	for _, c := range cases {
		if got := p.AtClamp(c.x, c.y); got != c.want {
			t.Errorf("AtClamp(%d,%d)=%v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestClamp255(t *testing.T) {
	p := FromSlice(3, 1, []float32{-10, 128, 300})
	p.Clamp255()
	want := []float32{0, 128, 255}
	for i := range want {
		if p.Pix[i] != want[i] {
			t.Errorf("pix[%d]=%v want %v", i, p.Pix[i], want[i])
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomPlane(rng, 8, 6)
	b := randomPlane(rng, 8, 6)
	sum := Add(nil, a, b)
	back := Sub(nil, sum, b)
	if d := MAE(a, back); d > 1e-4 {
		t.Fatalf("add/sub round trip error %v", d)
	}
}

func TestLerpEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomPlane(rng, 5, 5)
	b := randomPlane(rng, 5, 5)
	if d := MAE(Lerp(nil, a, b, 0), a); d != 0 {
		t.Fatalf("Lerp(0) != a: %v", d)
	}
	if d := MAE(Lerp(nil, a, b, 1), b); d > 1e-5 {
		t.Fatalf("Lerp(1) != b: %v", d)
	}
}

func TestLerpMask(t *testing.T) {
	a := FromSlice(2, 1, []float32{0, 0})
	b := FromSlice(2, 1, []float32{10, 10})
	w := FromSlice(2, 1, []float32{0, 0.5})
	got := LerpMask(nil, a, b, w)
	if got.Pix[0] != 0 || got.Pix[1] != 5 {
		t.Fatalf("LerpMask got %v", got.Pix)
	}
}

func TestMeanMinMax(t *testing.T) {
	p := FromSlice(4, 1, []float32{1, 2, 3, 10})
	if m := p.Mean(); !almostEq(m, 4, 1e-9) {
		t.Fatalf("Mean=%v", m)
	}
	min, max := p.MinMax()
	if min != 1 || max != 10 {
		t.Fatalf("MinMax=%v,%v", min, max)
	}
}

func TestMSEAndCharbonnier(t *testing.T) {
	a := FromSlice(2, 1, []float32{0, 0})
	b := FromSlice(2, 1, []float32{3, 4})
	if got := MSE(a, b); !almostEq(got, 12.5, 1e-9) {
		t.Fatalf("MSE=%v", got)
	}
	// Charbonnier ≈ mean |d| for large d.
	if got := Charbonnier(a, b, 1e-3); !almostEq(got, 3.5, 1e-3) {
		t.Fatalf("Charbonnier=%v", got)
	}
	// Identical planes: loss equals eps.
	if got := Charbonnier(a, a, 0.5); !almostEq(got, 0.5, 1e-9) {
		t.Fatalf("Charbonnier(identical)=%v", got)
	}
}

func TestSampleBilinearAtIntegerCoords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPlane(rng, 7, 5)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			if got := p.SampleBilinear(float32(x), float32(y)); !almostEq(float64(got), float64(p.At(x, y)), 1e-4) {
				t.Fatalf("SampleBilinear(%d,%d)=%v want %v", x, y, got, p.At(x, y))
			}
		}
	}
}

func TestSampleBilinearMidpoint(t *testing.T) {
	p := FromSlice(2, 1, []float32{0, 10})
	if got := p.SampleBilinear(0.5, 0); !almostEq(float64(got), 5, 1e-5) {
		t.Fatalf("midpoint=%v", got)
	}
}

func TestSubPlanePaste(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomPlane(rng, 10, 8)
	sub := p.SubPlane(2, 3, 4, 4)
	q := NewPlane(10, 8)
	q.Paste(sub, 2, 3)
	for y := 3; y < 7; y++ {
		for x := 2; x < 6; x++ {
			if q.At(x, y) != p.At(x, y) {
				t.Fatalf("paste mismatch at %d,%d", x, y)
			}
		}
	}
	// Paste clipping must not panic or write out of bounds.
	q.Paste(sub, -2, -2)
	q.Paste(sub, 9, 7)
}

func TestAddPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(nil, NewPlane(2, 2), NewPlane(3, 2))
}

func TestScaleAddScaled(t *testing.T) {
	a := FromSlice(2, 1, []float32{1, 2})
	b := FromSlice(2, 1, []float32{10, 20})
	a.Scale(2).AddScaled(b, 0.5)
	if a.Pix[0] != 7 || a.Pix[1] != 14 {
		t.Fatalf("got %v", a.Pix)
	}
}

// Property: MSE is symmetric and zero iff planes are identical.
func TestMSEPropertySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPlane(rng, 6, 4)
		b := randomPlane(rng, 6, 4)
		return almostEq(MSE(a, b), MSE(b, a), 1e-6) && MSE(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Charbonnier lower-bounds to eps and upper-bounds MAE + eps.
func TestCharbonnierPropertyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPlane(rng, 5, 5)
		b := randomPlane(rng, 5, 5)
		const eps = 1e-3
		c := Charbonnier(a, b, eps)
		mae := MAE(a, b)
		return c >= mae && c <= mae+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
