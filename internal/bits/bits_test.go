package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xABCD, 16)
	w.WriteBit(1)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("got %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("got %x", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("got %d", v)
	}
}

func TestBitLenAndPadding(t *testing.T) {
	var w Writer
	w.WriteBits(1, 3)
	if w.BitLen() != 3 || w.Len() != 0 {
		t.Fatalf("BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len=%d", len(b))
	}
	if b[0] != 0b00100000 {
		t.Fatalf("padding wrong: %08b", b[0])
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Classic Exp-Golomb table: 0→1, 1→010, 2→011, 3→00100 …
	cases := []struct {
		v    uint32
		bits string
	}{
		{0, "1"}, {1, "010"}, {2, "011"}, {3, "00100"}, {4, "00101"},
		{5, "00110"}, {6, "00111"}, {7, "0001000"},
	}
	for _, c := range cases {
		var w Writer
		w.WriteUE(c.v)
		got := ""
		r := NewReader(w.Bytes())
		for i := 0; i < len(c.bits); i++ {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatalf("v=%d short code", c.v)
			}
			got += string(rune('0' + b))
		}
		if got != c.bits {
			t.Errorf("UE(%d) = %s want %s", c.v, got, c.bits)
		}
	}
}

func TestUERoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v %= 1 << 20
		var w Writer
		w.WriteUE(v)
		r := NewReader(w.Bytes())
		got, err := r.ReadUE()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSERoundTrip(t *testing.T) {
	f := func(v int32) bool {
		v %= 1 << 18
		var w Writer
		w.WriteSE(v)
		r := NewReader(w.Bytes())
		got, err := r.ReadSE()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSEMapping(t *testing.T) {
	// Order of signed mapping: 0,1,-1,2,-2 must produce increasing UE.
	seq := []int32{0, 1, -1, 2, -2, 3, -3}
	prevLen := 0
	for _, v := range seq {
		var w Writer
		w.WriteSE(v)
		if w.BitLen() < prevLen {
			t.Fatalf("SE(%d) shorter than previous", v)
		}
		prevLen = w.BitLen()
	}
}

func TestMixedStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type op struct {
		kind int
		u    uint32
		s    int32
		n    uint
		raw  uint64
	}
	var ops []op
	var w Writer
	for i := 0; i < 1000; i++ {
		o := op{kind: rng.Intn(3)}
		switch o.kind {
		case 0:
			o.u = uint32(rng.Intn(100000))
			w.WriteUE(o.u)
		case 1:
			o.s = int32(rng.Intn(20001) - 10000)
			w.WriteSE(o.s)
		default:
			o.n = uint(rng.Intn(24) + 1)
			o.raw = uint64(rng.Int63()) & (1<<o.n - 1)
			w.WriteBits(o.raw, o.n)
		}
		ops = append(ops, o)
	}
	r := NewReader(w.Bytes())
	for i, o := range ops {
		switch o.kind {
		case 0:
			got, err := r.ReadUE()
			if err != nil || got != o.u {
				t.Fatalf("op %d UE got %d,%v want %d", i, got, err, o.u)
			}
		case 1:
			got, err := r.ReadSE()
			if err != nil || got != o.s {
				t.Fatalf("op %d SE got %d,%v want %d", i, got, err, o.s)
			}
		default:
			got, err := r.ReadBits(o.n)
			if err != nil || got != o.raw {
				t.Fatalf("op %d raw got %d,%v want %d", i, got, err, o.raw)
			}
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrOutOfData {
		t.Fatalf("want ErrOutOfData, got %v", err)
	}
	if _, err := r.ReadUE(); err == nil {
		t.Fatal("ReadUE past end must fail")
	}
}

func TestMalformedUE(t *testing.T) {
	// 40 zero bits with no terminator: malformed.
	r := NewReader(make([]byte, 6))
	if _, err := r.ReadUE(); err == nil {
		t.Fatal("expected malformed-code error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining=%d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining=%d", r.Remaining())
	}
}

func TestWriteBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.WriteBits(0, 65)
}

// TestAppendBitExact checks that writing a bit sequence through several
// fragment writers joined with Append yields exactly the stream a single
// writer produces, for every split point and fragment alignment.
func TestAppendBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type op struct {
		v uint64
		n uint
	}
	ops := make([]op, 200)
	for i := range ops {
		n := uint(rng.Intn(24) + 1)
		ops[i] = op{v: rng.Uint64() & (1<<n - 1), n: n}
	}
	var ref Writer
	for _, o := range ops {
		ref.WriteBits(o.v, o.n)
	}
	want := ref.Bytes()

	for trial := 0; trial < 50; trial++ {
		// Split the ops into random fragments, each written alone.
		var frags []*Writer
		cur := &Writer{}
		for i, o := range ops {
			cur.WriteBits(o.v, o.n)
			if rng.Intn(4) == 0 && i != len(ops)-1 {
				frags = append(frags, cur)
				cur = &Writer{}
			}
		}
		frags = append(frags, cur)

		var joined Writer
		for _, f := range frags {
			joined.Append(f)
		}
		got := joined.Bytes()
		if len(got) != len(want) {
			t.Fatalf("trial %d: joined %d bytes, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: byte %d = %#x, want %#x", trial, i, got[i], want[i])
			}
		}
	}
}

// TestAppendDoesNotMutateSource checks Append leaves the fragment reusable.
func TestAppendDoesNotMutateSource(t *testing.T) {
	var frag Writer
	frag.WriteBits(0b101, 3)
	var a, b Writer
	a.WriteBit(1)
	a.Append(&frag)
	b.WriteBit(1)
	b.Append(&frag)
	ab, bb := a.Bytes(), b.Bytes()
	if len(ab) != len(bb) || ab[0] != bb[0] {
		t.Fatalf("Append mutated its source: %x vs %x", ab, bb)
	}
	if frag.BitLen() != 3 {
		t.Fatalf("fragment BitLen=%d after Append, want 3", frag.BitLen())
	}
}
