// Package video provides the video substrate for NERVE: frames, clips, the
// adaptive-streaming resolution/bitrate ladder, and a deterministic
// procedural scene generator that stands in for the paper's YouTube/NEMO
// dataset (see DESIGN.md §1 for the substitution rationale).
//
// The generator is analytic: frame t of a given (category, seed) pair is a
// pure function of its arguments, so any frame can be rendered at any
// resolution without sequential state. That keeps every experiment
// reproducible and lets ground truth be produced at 1080p while the codec
// operates on downscaled ladder rungs.
package video

import (
	"fmt"
	"math"

	"nerve/internal/vmath"
)

// FPS is the frame rate used throughout the system (the paper streams and
// enhances at 30 FPS).
const FPS = 30

// FrameInterval is the playout interval between frames in seconds.
const FrameInterval = 1.0 / FPS

// Resolution identifies a rung of the bitrate ladder.
type Resolution int

// The ladder follows Wowza's recommendation used in the paper §8.1:
// {512, 1024, 1600, 2640, 4400} kbps at {240, 360, 480, 720, 1080}p.
const (
	R240 Resolution = iota
	R360
	R480
	R720
	R1080
	numResolutions
)

// ladder holds the per-rung geometry and target bitrate.
var ladder = [numResolutions]struct {
	name string
	w, h int
	kbps int
}{
	R240:  {"240p", 426, 240, 512},
	R360:  {"360p", 640, 360, 1024},
	R480:  {"480p", 854, 480, 1600},
	R720:  {"720p", 1280, 720, 2640},
	R1080: {"1080p", 1920, 1080, 4400},
}

// Resolutions returns every ladder rung from lowest to highest.
func Resolutions() []Resolution {
	return []Resolution{R240, R360, R480, R720, R1080}
}

// String returns the conventional name, e.g. "720p".
func (r Resolution) String() string { return ladder[r].name }

// Dims returns the pixel dimensions of the rung.
func (r Resolution) Dims() (w, h int) { return ladder[r].w, ladder[r].h }

// Kbps returns the ladder target bitrate in kilobits per second.
func (r Resolution) Kbps() int { return ladder[r].kbps }

// Bitrate returns the ladder target bitrate in bits per second.
func (r Resolution) Bitrate() float64 { return float64(ladder[r].kbps) * 1000 }

// FromKbps maps a ladder bitrate back to its resolution; ok is false for a
// bitrate that is not on the ladder.
func FromKbps(kbps int) (Resolution, bool) {
	for _, r := range Resolutions() {
		if ladder[r].kbps == kbps {
			return r, true
		}
	}
	return 0, false
}

// Index returns the ladder index (0 = lowest).
func (r Resolution) Index() int { return int(r) }

// Frame is a single luma frame with its position in the stream.
type Frame struct {
	Index int          // frame number within the clip
	Y     *vmath.Plane // luma plane, nominal range [0,255]
}

// Clip is a sequence of frames at FPS.
type Clip struct {
	Frames []*Frame
}

// Duration returns the clip length in seconds.
func (c *Clip) Duration() float64 { return float64(len(c.Frames)) / FPS }

// Category describes one of the ten synthetic content categories that stand
// in for the paper's "top ten popular YouTube categories". Each category has
// a distinct motion/texture/new-content profile.
type Category struct {
	Name string
	// Objects is the number of simultaneously visible moving objects.
	Objects int
	// Speed scales object and camera motion (fraction of frame width per
	// second at Speed = 1).
	Speed float64
	// Texture in [0,1] controls how much high-frequency texture objects
	// and background carry.
	Texture float64
	// CutEvery is the scene-cut period in frames (new scene = all-new
	// content, the hardest case for prediction). Zero disables cuts.
	CutEvery int
	// SpawnRate is the expected number of new objects entering the scene
	// per second (new content that only the binary point code can hint).
	SpawnRate float64
	// Noise is the per-pixel sensor-noise sigma.
	Noise float64
}

// Categories returns the ten content categories. The parameters were chosen
// so that the corpus spans slow/static content (How-to, Education) through
// fast, cut-heavy content (Game play, Challenges), mirroring the diversity
// of the paper's dataset.
func Categories() []Category {
	return []Category{
		{Name: "ProductReview", Objects: 3, Speed: 0.25, Texture: 0.5, CutEvery: 240, SpawnRate: 0.2, Noise: 1.0},
		{Name: "HowTo", Objects: 2, Speed: 0.15, Texture: 0.4, CutEvery: 360, SpawnRate: 0.1, Noise: 0.8},
		{Name: "Vlogs", Objects: 4, Speed: 0.45, Texture: 0.6, CutEvery: 180, SpawnRate: 0.4, Noise: 1.2},
		{Name: "GamePlay", Objects: 7, Speed: 0.9, Texture: 0.8, CutEvery: 150, SpawnRate: 1.0, Noise: 0.6},
		{Name: "Skit", Objects: 4, Speed: 0.5, Texture: 0.55, CutEvery: 120, SpawnRate: 0.5, Noise: 1.0},
		{Name: "Haul", Objects: 3, Speed: 0.3, Texture: 0.65, CutEvery: 300, SpawnRate: 0.3, Noise: 1.0},
		{Name: "Challenges", Objects: 6, Speed: 0.8, Texture: 0.7, CutEvery: 140, SpawnRate: 0.8, Noise: 1.1},
		{Name: "Favorite", Objects: 3, Speed: 0.35, Texture: 0.5, CutEvery: 260, SpawnRate: 0.25, Noise: 0.9},
		{Name: "Education", Objects: 2, Speed: 0.2, Texture: 0.35, CutEvery: 400, SpawnRate: 0.15, Noise: 0.7},
		{Name: "Unboxing", Objects: 3, Speed: 0.4, Texture: 0.6, CutEvery: 220, SpawnRate: 0.35, Noise: 1.0},
	}
}

// CategoryByName looks a category up by name.
func CategoryByName(name string) (Category, error) {
	for _, c := range Categories() {
		if c.Name == name {
			return c, nil
		}
	}
	return Category{}, fmt.Errorf("video: unknown category %q", name)
}

// splitmix64 is a tiny, high-quality hash used to derive all per-scene
// pseudo-randomness analytically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps an arbitrary key sequence to a float64 in [0,1).
func hashUnit(keys ...uint64) float64 {
	var h uint64 = 0x243f6a8885a308d3
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return float64(h>>11) / float64(1<<53)
}

// valueNoise2D returns smooth value noise at continuous (x, y) for the given
// lattice seed, in [0,1].
func valueNoise2D(seed uint64, x, y float64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	fx := x - x0
	fy := y - y0
	// Smoothstep fade for C1 continuity.
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	ix0 := uint64(int64(x0))
	iy0 := uint64(int64(y0))
	v00 := hashUnit(seed, ix0, iy0)
	v10 := hashUnit(seed, ix0+1, iy0)
	v01 := hashUnit(seed, ix0, iy0+1)
	v11 := hashUnit(seed, ix0+1, iy0+1)
	top := v00 + sx*(v10-v00)
	bot := v01 + sx*(v11-v01)
	return top + sy*(bot-top)
}

// fbm2D is two-octave fractal value noise in [0,1].
func fbm2D(seed uint64, x, y float64) float64 {
	return (valueNoise2D(seed, x, y)*0.65 + valueNoise2D(seed^0xabcdef, x*2.7, y*2.7)*0.35)
}

// Generator renders the synthetic scene for one (category, seed) pair.
// It is safe for concurrent use; all methods are pure functions of their
// arguments.
type Generator struct {
	Cat  Category
	Seed uint64
}

// NewGenerator returns a generator for the category and seed.
func NewGenerator(cat Category, seed int64) *Generator {
	return &Generator{Cat: cat, Seed: splitmix64(uint64(seed) ^ 0x5eed)}
}

// segment returns the scene-cut segment containing frame t and the frame
// offset within it.
func (g *Generator) segment(t int) (seg, off int) {
	if g.Cat.CutEvery <= 0 {
		return 0, t
	}
	return t / g.Cat.CutEvery, t % g.Cat.CutEvery
}

// object holds the analytic parameters of one moving object within a
// segment. Positions are in normalised [0,1]² scene coordinates.
type object struct {
	cx, cy   float64 // path centre
	ax, ay   float64 // path amplitudes
	px, py   float64 // path phase
	wx, wy   float64 // path angular velocities (rad/s)
	rx, ry   float64 // ellipse radii
	angle    float64 // rotation of the ellipse
	level    float64 // base intensity
	texSeed  uint64
	birth    int // frame offset within segment when the object appears
	entrance int // 0..3 edge it slides in from
}

// objects derives the object set of a segment. The first Cat.Objects
// objects exist from the segment start; additional objects spawn over the
// segment at SpawnRate per second, entering from an edge (the "new content"
// the recovery model must inpaint).
func (g *Generator) objects(seg int) []object {
	segKey := splitmix64(g.Seed ^ uint64(seg)*0x9e37)
	segLen := g.Cat.CutEvery
	if segLen <= 0 {
		segLen = 100000
	}
	spawned := int(g.Cat.SpawnRate * float64(segLen) / FPS)
	n := g.Cat.Objects + spawned
	objs := make([]object, n)
	for i := range objs {
		k := splitmix64(segKey ^ uint64(i)*0x85eb)
		u := func(j uint64) float64 { return hashUnit(k, j) }
		o := &objs[i]
		o.cx = 0.15 + 0.7*u(1)
		o.cy = 0.15 + 0.7*u(2)
		o.ax = 0.05 + 0.25*u(3)
		o.ay = 0.05 + 0.25*u(4)
		o.px = 2 * math.Pi * u(5)
		o.py = 2 * math.Pi * u(6)
		speed := g.Cat.Speed * (0.5 + u(7))
		o.wx = speed * (0.6 + 0.8*u(8)) * 2 * math.Pi / 4 // rad/s
		o.wy = speed * (0.6 + 0.8*u(9)) * 2 * math.Pi / 4
		o.rx = 0.05 + 0.12*u(10)
		o.ry = 0.05 + 0.12*u(11)
		o.angle = math.Pi * u(12)
		o.level = 40 + 190*u(13)
		o.texSeed = splitmix64(k ^ 0xfeed)
		if i >= g.Cat.Objects {
			// Staggered spawn across the segment.
			frac := float64(i-g.Cat.Objects+1) / float64(spawned+1)
			o.birth = int(frac * float64(segLen))
			o.entrance = int(u(14) * 4)
		}
	}
	return objs
}

// pos returns the object centre at segment offset off (frames), handling
// edge entrances for spawned objects.
func (o *object) pos(off int) (x, y float64) {
	ts := float64(off) / FPS
	x = o.cx + o.ax*math.Sin(o.wx*ts+o.px)
	y = o.cy + o.ay*math.Sin(o.wy*ts+o.py)
	if o.birth > 0 {
		// Slide in from the entrance edge over ~1 second.
		prog := float64(off-o.birth) / FPS
		if prog < 0 {
			prog = 0
		}
		slide := 1 - math.Min(prog, 1) // 1 → fully outside, 0 → on path
		switch o.entrance {
		case 0:
			x -= slide * (x + 0.2)
		case 1:
			x += slide * (1.2 - x)
		case 2:
			y -= slide * (y + 0.2)
		default:
			y += slide * (1.2 - y)
		}
	}
	return x, y
}

// Render draws frame t at w×h pixels. The result is deterministic in
// (category, seed, t, w, h) and consistent across resolutions: a frame
// rendered at 480×270 is (up to sampling) the downscale of the same frame at
// 1920×1080.
func (g *Generator) Render(t, w, h int) *vmath.Plane {
	seg, off := g.segment(t)
	segKey := splitmix64(g.Seed ^ uint64(seg)*0x9e37)
	objs := g.objects(seg)

	// Camera pan: slow global translation of the background field.
	panX := g.Cat.Speed * 0.08 * float64(off) / FPS
	panY := g.Cat.Speed * 0.03 * float64(off) / FPS

	bgSeed := splitmix64(segKey ^ 0xbac)
	texAmp := 60 * g.Cat.Texture

	out := vmath.NewPlane(w, h)
	for py := 0; py < h; py++ {
		ny := float64(py) / float64(h)
		for px := 0; px < w; px++ {
			nx := float64(px) / float64(w)
			// Background: smooth gradient plus panning fbm texture.
			v := 70 + 60*nx + 30*ny
			v += texAmp * (fbm2D(bgSeed, nx*6+panX, ny*6+panY) - 0.5)
			out.Pix[py*w+px] = float32(v)
		}
	}

	// Objects are painted back-to-front in index order.
	for i := range objs {
		o := &objs[i]
		if off < o.birth {
			continue
		}
		ox, oy := o.pos(off)
		// Bounding box in pixels (inflate a little for the soft edge).
		x0 := int((ox - o.rx*1.3) * float64(w))
		x1 := int((ox + o.rx*1.3) * float64(w))
		y0 := int((oy - o.ry*1.3) * float64(h))
		y1 := int((oy + o.ry*1.3) * float64(h))
		if x1 < 0 || y1 < 0 || x0 >= w || y0 >= h {
			continue
		}
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > w-1 {
			x1 = w - 1
		}
		if y1 > h-1 {
			y1 = h - 1
		}
		cosA := math.Cos(o.angle)
		sinA := math.Sin(o.angle)
		for py := y0; py <= y1; py++ {
			ny := float64(py)/float64(h) - oy
			for px := x0; px <= x1; px++ {
				nx := float64(px)/float64(w) - ox
				// Rotate into the ellipse frame.
				ex := (nx*cosA + ny*sinA) / o.rx
				ey := (-nx*sinA + ny*cosA) / o.ry
				d := ex*ex + ey*ey
				if d >= 1 {
					continue
				}
				// Soft edge over the outer 15% of the radius.
				alpha := 1.0
				if d > 0.7 {
					alpha = (1 - d) / 0.3
				}
				tex := texAmp * 0.8 * (fbm2D(o.texSeed, ex*4, ey*4) - 0.5)
				v := o.level + tex
				idx := py*w + px
				out.Pix[idx] = float32(float64(out.Pix[idx])*(1-alpha) + v*alpha)
			}
		}
	}

	// Sensor noise: deterministic per (seed, t, pixel).
	if g.Cat.Noise > 0 {
		nSeed := splitmix64(g.Seed ^ uint64(t)*0x6c8e)
		amp := float32(g.Cat.Noise)
		for i := range out.Pix {
			// Approximate Gaussian via sum of two uniforms.
			u1 := hashUnit(nSeed, uint64(i))
			u2 := hashUnit(nSeed, uint64(i)^0xffff0000)
			out.Pix[i] += amp * float32(u1+u2-1) * 2
		}
	}
	return out.Clamp255()
}

// RenderClip renders n consecutive frames starting at frame start.
func (g *Generator) RenderClip(start, n, w, h int) *Clip {
	c := &Clip{Frames: make([]*Frame, n)}
	for i := 0; i < n; i++ {
		c.Frames[i] = &Frame{Index: start + i, Y: g.Render(start+i, w, h)}
	}
	return c
}

// ClipSource identifies one dataset clip: a category plus a creator seed.
type ClipSource struct {
	Cat  Category
	Seed int64
}

// Generator returns the clip's frame generator.
func (s ClipSource) Generator() *Generator { return NewGenerator(s.Cat, s.Seed) }

// Dataset mirrors the paper's split: five clips per category from distinct
// "creators" (seeds), four for training and one for testing.
type Dataset struct {
	Train []ClipSource
	Test  []ClipSource
}

// NewDataset builds the 10-category × 5-seed corpus.
func NewDataset() *Dataset {
	d := &Dataset{}
	for ci, cat := range Categories() {
		for s := 0; s < 5; s++ {
			src := ClipSource{Cat: cat, Seed: int64(ci*100 + s + 1)}
			if s < 4 {
				d.Train = append(d.Train, src)
			} else {
				d.Test = append(d.Test, src)
			}
		}
	}
	return d
}
