// Package sim is the end-to-end streaming system simulator: a DASH-style
// server with the paper's 5-rung ladder, a mobile client running an ABR
// algorithm, FEC, the recovery model and super-resolution, over a
// trace-driven network. It produces the per-chunk QoE accounting behind
// every system figure of the evaluation (Figs. 12–18, Table 3).
//
// Quality is charged through calibrated rate↔quality maps rather than by
// running the image pipeline per frame (hundreds of simulated sessions ×
// thousands of frames would be prohibitive); the maps themselves are
// produced by the DNN-level experiments in internal/experiments, closing
// the loop with the real recovery/SR implementations.
//
// Client behaviour model (documented substitutions — see DESIGN.md):
//
//   - recovery client: media ships unreliably (loss is concealed by the
//     recovery model within the 33 ms frame budget), late frames cost at
//     most T_RC of rebuffering each (§6);
//   - conventional client: media ships over reliable QUIC — losses are
//     retransmitted (inflating bytes on the wire), late frames freeze the
//     player, and a corrupted frame close to its deadline stalls for the
//     retransmission;
//   - reuse client (the paper's lossy-network baseline, Fig. 15): late and
//     lost frames are replaced by the previous frame at a steep quality
//     cost, with decoder drift propagating to the rest of the GOP.
package sim

import (
	"io"
	"math"
	"math/rand"

	"nerve/internal/abr"
	"nerve/internal/device"
	"nerve/internal/fec"
	"nerve/internal/netem"
	"nerve/internal/qoe"
	"nerve/internal/telemetry"
	"nerve/internal/trace"
	"nerve/internal/transport"
	"nerve/internal/transport/qlog"
	"nerve/internal/video"
)

// QualityModel carries the calibrated per-rung quality levels used to
// convert frame classes into bitrate-equivalent utilities.
type QualityModel struct {
	// Delivered is the bitrate→PSNR map (Fig. 4b).
	Delivered *qoe.QualityMap
	// Recovered is the mean PSNR of recovery-model output per rung.
	Recovered []float64
	// Reused is the mean PSNR when a late/lost frame is concealed by
	// replaying the previous frame (the no-recovery client).
	Reused []float64
	// SR is the mean PSNR after super-resolution per rung.
	SR []float64
	// RecoveryDecay is the PSNR loss per consecutive recovered frame.
	RecoveryDecay float64
	// ReuseDecay is the (steeper) decay for frame reuse.
	ReuseDecay float64
}

// DefaultQualityModel returns maps calibrated on the synthetic corpus by
// the DNN-level experiments (regenerate with experiments.CalibrateQuality).
func DefaultQualityModel() *QualityModel {
	return &QualityModel{
		// The two sub-ladder anchors extend the utility scale below the
		// lowest rung so that badly degraded frames (stale reuse, drifted
		// references) map to a commensurately low utility instead of
		// clamping at the 240p level.
		Delivered: qoe.NewQualityMap([]qoe.RateQuality{
			{Mbps: 0.05, PSNR: 22.0}, {Mbps: 0.2, PSNR: 27.0},
			{Mbps: 0.512, PSNR: 30.5}, {Mbps: 1.024, PSNR: 33.2}, {Mbps: 1.6, PSNR: 35.1},
			{Mbps: 2.64, PSNR: 37.0}, {Mbps: 4.4, PSNR: 38.8},
		}),
		Recovered:     []float64{28.5, 30.6, 32.0, 33.4, 34.6},
		Reused:        []float64{26.5, 27.8, 28.6, 29.3, 29.8},
		SR:            []float64{33.0, 35.3, 36.8, 38.2, 39.3},
		RecoveryDecay: 0.15,
		ReuseDecay:    0.45,
	}
}

// EnhancementModel converts the quality model into the §6 ABR inputs.
func (q *QualityModel) EnhancementModel(dev *device.Model) abr.EnhancementModel {
	return abr.EnhancementModel{
		Delivered:     q.Delivered,
		RecoveredPSNR: append([]float64(nil), q.Recovered...),
		SRPSNR:        append([]float64(nil), q.SR...),
		RecoveryDecay: q.RecoveryDecay,
		TRecovery:     dev.RecoveryLatency(),
		TSR:           dev.EnhanceLatency(),
	}
}

// Scheme describes one client configuration from the evaluation.
type Scheme struct {
	Name string
	// Recovery enables the neural recovery model for lost/late frames.
	Recovery bool
	// SR enables super-resolution on frames that can finish before
	// playout.
	SR bool
	// NEMO selects the NEMO baseline behaviour: anchor-frame SR with
	// cached enhancement (diluted SR quality), no recovery, reuse on
	// loss.
	NEMO bool
	// ReuseOnLoss makes a non-recovery client replace late/lost frames
	// with the previous frame (the Fig. 15 baseline) instead of stalling
	// for retransmissions.
	ReuseOnLoss bool
	// ABR chooses the next chunk's rate.
	ABR abr.Algorithm
	// UseFEC enables FEC with the redundancy chosen by Planner.
	UseFEC bool
	// Planner maps predicted loss to redundancy (nil → DefaultPlanner).
	Planner *fec.Planner
}

// reuses reports whether the client conceals by frame reuse.
func (s Scheme) reuses() bool { return s.ReuseOnLoss || s.NEMO }

// Config parameterises a session run.
type Config struct {
	Trace *trace.Trace
	// ChunkSeconds is the chunk duration (default 4, the paper's GOP).
	ChunkSeconds float64
	// Chunks is the session length in chunks (default: trace duration).
	Chunks int
	// Quality is the calibrated quality model (default
	// DefaultQualityModel).
	Quality *QualityModel
	// Device is the client cost model (default iPhone 12).
	Device *device.Model
	// QoEParams configures the metric (default qoe.DefaultParams).
	QoEParams qoe.Params
	// LossScale multiplies trace loss rates (1 = as recorded; the lossy
	// experiments of Figs. 15/16 use larger values).
	LossScale float64
	// MaxBufferSec caps the client buffer (default 8 — the thin-buffer
	// real-time regime the system targets).
	MaxBufferSec float64
	// PacketBytes is the media packet size (default 1200).
	PacketBytes int
	// PacketAccurate downloads every chunk over the event-driven netem
	// link (per-packet serialisation, bursty loss, PTO retransmission for
	// the conventional client) instead of the fluid model. Slower, but
	// exercises the full transport stack.
	PacketAccurate bool
	// QLogSink, when non-nil, streams the transport qlog events of the
	// session as deterministic JSON lines (see TRANSPORT_EVENTS.md).
	// Packet-accurate mode only; the fluid model has no transport.
	QLogSink io.Writer
	// Seed drives all randomness in the session.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ChunkSeconds <= 0 {
		c.ChunkSeconds = 4
	}
	if c.Chunks <= 0 {
		d := c.Trace.Duration()
		c.Chunks = int(d / c.ChunkSeconds)
		if c.Chunks < 1 {
			c.Chunks = 1
		}
	}
	if c.Quality == nil {
		c.Quality = DefaultQualityModel()
	}
	if c.Device == nil {
		c.Device = device.IPhone12()
	}
	if c.QoEParams == (qoe.Params{}) {
		c.QoEParams = qoe.DefaultParams()
	}
	if c.LossScale == 0 {
		c.LossScale = 1
	}
	if c.MaxBufferSec <= 0 {
		c.MaxBufferSec = 8
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = 1200
	}
	return c
}

// ChunkPoint is one time-series sample (Fig. 14).
type ChunkPoint struct {
	Time          float64
	QoE           float64
	ThroughputBps float64
	RateIndex     int
	RebufferSec   float64
}

// Result is a session outcome.
type Result struct {
	Session *qoe.Session
	// QoE is the session mean (the paper's headline metric).
	QoE float64
	// RecoveredFrac is the fraction of frames that went through recovery
	// or concealment (Fig. 13b).
	RecoveredFrac float64
	// RecoveredFrameQoE is the mean per-chunk QoE of recovery-needing
	// frames (Table 3); NaN when no frame needed recovery.
	RecoveredFrameQoE float64
	// SRFrac is the fraction of frames super-resolved.
	SRFrac float64
	// Series is the per-chunk time series.
	Series []ChunkPoint
	// MeanRedundancy is the average FEC redundancy used.
	MeanRedundancy float64
	// MeanStall is the average wall-clock rebuffer per chunk.
	MeanStall float64
}

// Telemetry counters for the chunk simulator: sessions started and chunks
// played (the simulator runs on a virtual clock, so wall-time stage
// histograms cover only the real compute it triggers).
var (
	cSimSessions = telemetry.NewCounter("sim_sessions")
	cSimChunks   = telemetry.NewCounter("sim_chunks")
)

// Run simulates one streaming session of the scheme over cfg.Trace.
func Run(cfg Config, scheme Scheme) *Result {
	cSimSessions.Add(1)
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ge := netem.NewGilbertElliott(cfg.Seed + 1)
	if scheme.ABR != nil {
		scheme.ABR.Reset()
	}
	planner := scheme.Planner
	if scheme.UseFEC && planner == nil {
		planner = fec.DefaultPlanner()
	}

	framesPerChunk := int(cfg.ChunkSeconds * video.FPS)
	delta := 1.0 / video.FPS
	session := qoe.NewSession(cfg.QoEParams)

	// Event-driven network stack for packet-accurate mode, with the qlog
	// event stream attached and aggregated into the ABR cross-layer view.
	var (
		clock   *netem.Clock
		fwdLink *netem.Link
		conn    *transport.Conn
		qagg    *qlog.Aggregator
		xview   abr.CrossLayer
	)
	if cfg.PacketAccurate {
		clock = &netem.Clock{}
		fwdLink = netem.NewLink(clock, cfg.Trace, netem.NewGilbertElliott(cfg.Seed+1))
		fwdLink.LossScale = cfg.LossScale
		fwdLink.MaxQueueDelay = 30 // the sender buffers the whole chunk
		revLink := netem.NewLink(clock, cfg.Trace, nil)
		revLink.DisableLoss = true
		conn = transport.NewConn(clock, fwdLink, revLink)
		qtrace := qlog.New(8192) // covers a worst-case chunk's event burst
		if cfg.QLogSink != nil {
			qtrace.SetSink(cfg.QLogSink)
		}
		conn.QLog = qtrace
		qagg = qlog.NewAggregator(qtrace)
		// MaskableLoss (see abr.CrossLayer): how much wire loss the active
		// client hides without a visible stall.
		switch {
		case scheme.Recovery:
			xview.MaskableLoss = 0.15
		case scheme.reuses():
			xview.MaskableLoss = 0.05
		}
	}

	var (
		now          float64
		buffer       float64
		lastRate     = -1
		lastUtility  float64
		haveLast     bool
		tputHist     []float64
		dlHist       []float64
		lossPred     = abr.NewEWMA(0.3)
		series       []ChunkPoint
		sumRed       float64
		sumStall     float64
		recFrames    int
		srFrames     int
		totFrames    int
		recQoESum    float64
		recQoEChunks int
		frameLost    = make([]bool, framesPerChunk)
		// Per-chunk scratch hoisted out of the loop: like the plane pool in
		// the frame pipeline, the chunk loop reuses its buffers instead of
		// allocating per chunk.
		corrupted = make([]bool, framesPerChunk)
		sizes     = make([]int, len(video.Resolutions()))
	)

	for n := 0; n < cfg.Chunks; n++ {
		cSimChunks.Add(1)
		// Build the ABR state.
		for i, r := range video.Resolutions() {
			jitter := 1 + 0.08*(rng.Float64()*2-1) // VBR-ish chunk sizes
			sizes[i] = int(r.Bitrate() * cfg.ChunkSeconds / 8 * jitter)
		}
		state := abr.State{
			BufferSec:           buffer,
			LastRate:            lastRate,
			ThroughputHistory:   tputHist,
			DownloadTimeHistory: dlHist,
			NextChunkBytes:      sizes,
			ChunksRemaining:     cfg.Chunks - n,
			PredictedLossRate:   lossPred.Predict(),
			ChunkSeconds:        cfg.ChunkSeconds,
		}
		if qagg != nil {
			// Close the previous chunk's event window and expose the
			// aggregated transport view to the controller.
			sum := qagg.Flush(now)
			xview.LossRate = sum.LossRate
			xview.SRTT = sum.SRTT
			xview.RTTGradient = sum.RTTGradient
			xview.InflightBytes = sum.InflightBytes
			xview.BacklogSec = sum.BacklogSec
			xview.Retransmits = sum.Retransmits
			xview.PTOCount = sum.PTOFires
			state.CrossLayer = &xview
		}
		rate := 0
		if scheme.ABR != nil {
			rate = scheme.ABR.SelectRate(state)
		}
		if rate < 0 {
			rate = 0
		}
		if rate >= len(sizes) {
			rate = len(sizes) - 1
		}

		// FEC sizing.
		red := 0.0
		if scheme.UseFEC && planner != nil {
			red = planner.Redundancy(lossPred.Predict())
		}
		sumRed += red
		wireBytes := int(float64(sizes[rate]) * (1 + red))

		lossNow := cfg.Trace.LossAt(now) * cfg.LossScale
		lossPred.Observe(lossNow)

		// Retransmission overhead: the conventional (stall-based) client
		// streams over reliable QUIC, so packets lost beyond FEC's reach
		// are resent and consume bandwidth. Recovery and reuse clients
		// ship media unreliably.
		if !scheme.Recovery && !scheme.reuses() {
			residual := lossNow - red
			if residual > 0 {
				if residual > 0.5 {
					residual = 0.5
				}
				wireBytes = int(float64(wireBytes) / (1 - residual))
			}
		}

		// Download and per-packet loss: either the analytic fluid model
		// with a sampled Gilbert–Elliott pattern, or the event-driven
		// netem/transport stack (packet-accurate mode). Both paths yield
		// (dlTime, frameLost, totalLost, effParity, pktsPerFrame) with
		// chunk-interleaved FEC: the chunk's packets form one protected
		// block; when total losses exceed the parity budget, the frames
		// holding the excess stay corrupted.
		pktsPerFrame := sizes[rate] / framesPerChunk / cfg.PacketBytes
		if pktsPerFrame < 1 {
			pktsPerFrame = 1
		}
		totalPkts := pktsPerFrame * framesPerChunk
		// A chunk's packets exceed one RS block; streaming FEC interleaves
		// stripes, so the parity budget scales linearly with the chunk.
		parityBudget := fec.InterleavedParityCount(totalPkts, red)
		totalLost := 0
		effParity := 0
		var dlTime float64
		if cfg.PacketAccurate {
			dlTime, totalLost, effParity = downloadPacketAccurate(
				cfg, scheme, clock, conn, now,
				pktsPerFrame, framesPerChunk, parityBudget, frameLost)
		} else {
			finish := netem.FluidDownload(cfg.Trace, now, wireBytes)
			dlTime = finish - now
			if math.IsInf(dlTime, 1) {
				dlTime = 60
			}
			lossAt := now + dlTime/2
			for f := 0; f < framesPerChunk; f++ {
				frameLost[f] = false
				lost := 0
				for p := 0; p < pktsPerFrame; p++ {
					if ge.Drop(lossAt, lossNow) {
						lost++
					}
				}
				if lost > 0 {
					frameLost[f] = true
					totalLost += lost
				}
			}
			// Parity packets are lost too.
			for p := 0; p < parityBudget; p++ {
				if !ge.Drop(lossAt, lossNow) {
					effParity++
				}
			}
		}
		measuredTput := float64(wireBytes) * 8 / dlTime
		var excessRatio float64
		if totalLost > effParity && totalLost > 0 {
			excessRatio = float64(totalLost-effParity) / float64(totalLost)
		}
		// Frames whose loss FEC could not repair.
		for i := range corrupted {
			corrupted[i] = frameLost[i] && excessRatio > 0 && rng.Float64() < excessRatio
		}

		// Frame-level accounting (§6): frame i arrives at (i+1)/frames
		// of the download and must play at buffer + i·Δ.
		//
		// The conventional client streams over a reliable in-order QUIC
		// stream, so every unrepaired loss burst head-of-line blocks the
		// bytes behind it by ≈ one retransmission delay — arrivals shift
		// cumulatively. Recovery/reuse clients take media unreliably and
		// avoid the blocking.
		retx := 1.5*cfg.Trace.RTTAt(now) + 0.01
		trc := cfg.Device.RecoveryLatency()
		conventional := !scheme.Recovery && !scheme.reuses()
		lateFrames, lostFrames := 0, 0
		var stall, holDelay float64
		for i := 0; i < framesPerChunk; i++ {
			if conventional && corrupted[i] && (i == 0 || !corrupted[i-1]) {
				holDelay += retx
				if holDelay > 2 {
					holDelay = 2
				}
			}
			tArr := dlTime * float64(i+1) / float64(framesPerChunk)
			if conventional {
				tArr += holDelay
			}
			tPlay := buffer + float64(i)*delta
			late := tArr > tPlay

			if late {
				lateFrames++
			} else if corrupted[i] {
				lostFrames++
			}
			switch {
			case scheme.Recovery && late:
				// Recovery synthesises the frame. §6 bounds the
				// rebuffering at min(lag, T_RC) per frame; because
				// T_RC (22 ms) fits inside the frame interval (33 ms)
				// the playback deadline is met and only the excess over
				// the frame budget would ever stall.
				stall += math.Min(tArr-tPlay, math.Max(0, trc-delta))
			case scheme.Recovery && corrupted[i]:
				// Corrupted but on time: recovered within the frame
				// interval, no stall.
			}
		}
		if conventional {
			// Wall-clock pause until the (HOL-delayed) download catches
			// up with playback.
			stall += math.Max(0, dlTime+holDelay-buffer)
		} else if scheme.reuses() {
			// Reuse clients freeze content rather than stalling, but an
			// empty buffer is still a hard stall.
			stall += math.Max(0, dlTime-buffer)
		}
		needRecovery := lateFrames + lostFrames
		if needRecovery > framesPerChunk {
			needRecovery = framesPerChunk
		}

		// SR classification: received in time with headroom for the
		// model.
		srCapable := 0
		if scheme.SR || scheme.NEMO {
			tsr := cfg.Device.EnhanceLatency()
			for i := 0; i < framesPerChunk; i++ {
				tArr := dlTime * float64(i+1) / float64(framesPerChunk)
				tPlay := buffer + float64(i)*delta
				if tPlay > tArr+tsr {
					srCapable++
				}
			}
			if srCapable > framesPerChunk-needRecovery {
				srCapable = framesPerChunk - needRecovery
			}
		}
		plainFrames := framesPerChunk - needRecovery - srCapable

		// Utilities.
		mbps := video.Resolutions()[rate].Bitrate() / 1e6
		q := cfg.Quality
		basePSNR := q.Delivered.PSNRAt(mbps)
		util := func(psnr float64) float64 { return q.Delivered.MbpsForPSNR(psnr) }

		frac := float64(needRecovery) / float64(framesPerChunk)
		// Expected consecutive-recovery run length: late frames cluster
		// in the tail of a slow chunk, so runs scale with the fraction.
		runLen := 1 + frac*60
		if runLen > 50 {
			runLen = 50
		}
		var recUtil float64
		propagates := false
		switch {
		case scheme.Recovery:
			recUtil = util(q.Recovered[rate] - q.RecoveryDecay*runLen)
			propagates = true // recovered references still drift
		case scheme.reuses():
			recUtil = util(q.Reused[rate] - q.ReuseDecay*runLen)
			propagates = true // frozen references drift hard
		default:
			// The conventional client waited (stall charged above) and
			// eventually showed the real frames; no corruption remains.
			recUtil = util(basePSNR)
		}

		srUtil := util(basePSNR)
		if scheme.SR {
			srUtil = util(q.SR[rate])
		} else if scheme.NEMO {
			srUtil = util((q.SR[rate] + basePSNR) / 2)
		}
		plainUtil := util(basePSNR)

		// P-frame error propagation: a corrupted/concealed reference
		// degrades the following frames until the next intra refresh
		// (decoder drift). FEC prevents the corruption outright, which
		// is why joint FEC+recovery wins under loss (Fig. 16).
		if propagates {
			// Hint-guided recovery keeps the reference close to the truth
			// (that is the point of the binary point code), so its drift
			// factor is far below frozen-frame reuse.
			factor := 0.25
			if !scheme.Recovery {
				factor = 0.6
			}
			prop := math.Min(1, frac*4)
			if prop > 0 {
				plainUtil -= factor * prop * math.Max(0, plainUtil-recUtil)
				srUtil -= factor * prop * math.Max(0, srUtil-recUtil)
			}
		}

		utility := (float64(needRecovery)*recUtil + float64(srCapable)*srUtil + float64(plainFrames)*plainUtil) / float64(framesPerChunk)

		// QoE bookkeeping.
		chunkQoE := utility - cfg.QoEParams.RebufferPenalty*stall
		if haveLast {
			chunkQoE -= cfg.QoEParams.SmoothnessPenalty * math.Abs(utility-lastUtility)
		}
		session.Add(qoe.Chunk{
			Index:           n,
			BitrateMbps:     mbps,
			UtilityMbps:     utility,
			RebufferSec:     stall,
			FramesTotal:     framesPerChunk,
			FramesRecovered: needRecovery,
			FramesSR:        srCapable,
		})
		series = append(series, ChunkPoint{
			Time: now, QoE: chunkQoE, ThroughputBps: cfg.Trace.ThroughputAt(now),
			RateIndex: rate, RebufferSec: stall,
		})
		if needRecovery > 0 {
			// Table 3: QoE of the recovery-needing frames — their
			// utility minus the chunk's stall, which those frames caused.
			recQoESum += recUtil - cfg.QoEParams.RebufferPenalty*stall
			recQoEChunks++
		}

		recFrames += needRecovery
		srFrames += srCapable
		totFrames += framesPerChunk
		sumStall += stall
		lastUtility = utility
		haveLast = true
		lastRate = rate
		tputHist = append(tputHist, measuredTput)
		dlHist = append(dlHist, dlTime)

		// Buffer dynamics (the conventional client's effective download
		// includes the head-of-line blocking).
		dlEff := dlTime
		if conventional {
			dlEff += holDelay
		}
		buffer = math.Max(0, buffer-dlEff) + cfg.ChunkSeconds
		now += dlEff + stallIdle(buffer, cfg.MaxBufferSec)
		if buffer > cfg.MaxBufferSec {
			buffer = cfg.MaxBufferSec
		}
	}

	res := &Result{
		Session:        session,
		QoE:            session.QoE(),
		Series:         series,
		MeanRedundancy: sumRed / float64(cfg.Chunks),
		MeanStall:      sumStall / float64(cfg.Chunks),
	}
	if totFrames > 0 {
		res.RecoveredFrac = float64(recFrames) / float64(totFrames)
		res.SRFrac = float64(srFrames) / float64(totFrames)
	}
	if recQoEChunks > 0 {
		res.RecoveredFrameQoE = recQoESum / float64(recQoEChunks)
	} else {
		res.RecoveredFrameQoE = math.NaN()
	}
	return res
}

// stallIdle returns the pause before requesting the next chunk when the
// buffer is full.
func stallIdle(buffer, max float64) float64 {
	if buffer > max {
		return buffer - max
	}
	return 0
}
