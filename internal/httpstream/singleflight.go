package httpstream

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn and all receive its result. Distinct keys
// run fully in parallel. (The x/sync/singleflight shape, reimplemented
// because the module is dependency-free.)
//
// Two hard-won properties of the serving path live here:
//
//   - A panicking fn must not wedge the key. Cleanup (removing the key
//     from the map and closing done) runs in a defer, and the panic is
//     converted into an error delivered to the winner and every waiter —
//     the next request for the key starts fresh.
//   - Waiting is context-aware. The winner always runs fn to completion
//     (its result populates the cache for everyone else), but a waiter
//     whose request context ends returns ctx.Err() immediately instead of
//     blocking on a computation its client will never see.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Flight exposes the singleflight to sibling packages — the cluster
// node's peer-fetch path collapses miss storms with the same (panic-safe,
// context-aware) implementation the origin uses. The zero value is ready.
type Flight = flightGroup

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn once per concurrent set of callers with the same key,
// waiting without a deadline.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) ([]byte, error) {
	return g.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with a cancellable wait. The computation itself is never
// cancelled — the winner finishes and its result is delivered to every
// still-waiting caller — but a waiter returns ctx.Err() as soon as its
// context ends.
func (g *flightGroup) DoCtx(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			// A panicking builder must not take the waiters down with it
			// (they are unrelated HTTP requests): surface it as an error.
			c.val, c.err = nil, fmt.Errorf("httpstream: singleflight %q: builder panic: %v", key, r)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		val, err = c.val, c.err
	}()
	c.val, c.err = fn()
	return c.val, c.err
}
