package codec

import (
	"math/rand"
	"testing"

	"nerve/internal/vmath"
)

// sadRefClamped is the original sadMB: a scalar clamped loop over every
// pixel with the per-row early exit, ported byte-for-byte to BytePlane. It
// is the oracle both the interior SWAR path and the border path must match
// exactly — including the partial sums returned after an early exit.
func sadRefClamped(cur, ref *vmath.BytePlane, cx, cy int, mv MV, best int64) int64 {
	var sad int64
	for y := 0; y < MBSize; y++ {
		py := cy + y
		if py >= cur.H {
			break
		}
		for x := 0; x < MBSize; x++ {
			px := cx + x
			if px >= cur.W {
				break
			}
			d := int64(cur.Pix[py*cur.W+px]) - int64(ref.AtClamp(px+mv.X, py+mv.Y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if sad >= best {
			return sad
		}
	}
	return sad
}

func randomBytePlane(rng *rand.Rand, w, h int) *vmath.BytePlane {
	p := vmath.NewBytePlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// TestSADMatchesClampedReference sweeps every macroblock position of a
// plane with ragged right/bottom edges (40×24: partial blocks on both),
// every displacement in ±6 and several early-exit budgets, and demands
// sadMB — whichever of its two paths runs — return exactly what the
// original clamped implementation returns.
func TestSADMatchesClampedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cur := randomBytePlane(rng, 40, 24)
	ref := randomBytePlane(rng, 40, 24)
	var st searchStats
	budgets := []int64{1 << 62, 2000, 500, 100, 1}
	for cy := 0; cy < cur.H; cy += MBSize {
		for cx := 0; cx < cur.W; cx += MBSize {
			for dy := -6; dy <= 6; dy++ {
				for dx := -6; dx <= 6; dx++ {
					mv := MV{dx, dy}
					for _, best := range budgets {
						got := sadMB(cur, ref, cx, cy, mv, best, &st)
						want := sadRefClamped(cur, ref, cx, cy, mv, best)
						if got != want {
							t.Fatalf("sadMB(cx=%d cy=%d mv=%v best=%d) = %d, want %d",
								cx, cy, mv, best, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSADInteriorPathTaken pins the path split itself: a fully interior
// block matches the oracle through sadMBInterior, a border block through
// sadMBBorder, and the two paths agree with each other where both are
// legal.
func TestSADInteriorPathTaken(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cur := randomBytePlane(rng, 64, 48)
	ref := randomBytePlane(rng, 64, 48)
	var st searchStats
	// (16,16) with mv (±3) stays interior.
	for _, mv := range []MV{{0, 0}, {3, -3}, {-3, 3}} {
		in := sadMBInterior(cur, ref, 16, 16, mv, 1<<62, &st)
		bo := sadMBBorder(cur, ref, 16, 16, mv, 1<<62, &st)
		want := sadRefClamped(cur, ref, 16, 16, mv, 1<<62)
		if in != want || bo != want {
			t.Fatalf("mv=%v interior=%d border=%d want=%d", mv, in, bo, want)
		}
	}
	// A displacement pushing the reference block past the edge must route
	// to the border path and still match.
	got := sadMB(cur, ref, 48, 32, MV{10, 10}, 1<<62, &st)
	want := sadRefClamped(cur, ref, 48, 32, MV{10, 10}, 1<<62)
	if got != want {
		t.Fatalf("border-clamped sad %d, want %d", got, want)
	}
}

// TestSAD8SWAR exercises the packed 8-byte SAD kernel against a scalar
// loop on random words and adversarial extremes (all-0xff vs all-0x00,
// alternating saturation, single-byte deltas in every lane).
func TestSAD8SWAR(t *testing.T) {
	scalar := func(a, b [8]byte) uint64 {
		var s uint64
		for i := range a {
			d := int(a[i]) - int(b[i])
			if d < 0 {
				d = -d
			}
			s += uint64(d)
		}
		return s
	}
	pack := func(b [8]byte) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
		return v
	}
	check := func(a, b [8]byte) {
		t.Helper()
		if got, want := sad8(pack(a), pack(b)), scalar(a, b); got != want {
			t.Fatalf("sad8(%v, %v) = %d, want %d", a, b, got, want)
		}
	}
	check([8]byte{}, [8]byte{})
	check([8]byte{255, 255, 255, 255, 255, 255, 255, 255}, [8]byte{})
	check([8]byte{}, [8]byte{255, 255, 255, 255, 255, 255, 255, 255})
	check([8]byte{0, 255, 0, 255, 0, 255, 0, 255}, [8]byte{255, 0, 255, 0, 255, 0, 255, 0})
	for lane := 0; lane < 8; lane++ {
		var a, b [8]byte
		a[lane] = 1
		check(a, b)
		check(b, a)
		a[lane] = 255
		b[lane] = 254
		check(a, b)
		check(b, a)
	}
	rng := rand.New(rand.NewSource(23))
	for n := 0; n < 20000; n++ {
		var a, b [8]byte
		for i := range a {
			a[i] = uint8(rng.Intn(256))
			b[i] = uint8(rng.Intn(256))
		}
		check(a, b)
	}
}

// TestSADEarlyExitCounts checks the sad.early_exits stat fires only when
// block rows were actually skipped.
func TestSADEarlyExitCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	cur := randomBytePlane(rng, 32, 32)
	ref := randomBytePlane(rng, 32, 32)
	var st searchStats
	sadMB(cur, ref, 0, 0, MV{}, 1<<62, &st)
	if st.sadExits != 0 {
		t.Fatalf("full SAD counted %d early exits", st.sadExits)
	}
	sadMB(cur, ref, 0, 0, MV{}, 1, &st)
	if st.sadExits != 1 {
		t.Fatalf("budget-1 SAD counted %d early exits, want 1", st.sadExits)
	}
}
