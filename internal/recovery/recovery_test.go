package recovery

import (
	"testing"

	"nerve/internal/edgecode"
	"nerve/internal/metrics"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

const (
	tw = 160
	th = 96
)

// chainQuality runs an n-step recovery chain starting at frame start and
// returns the mean PSNR/SSIM of the predictions vs ground truth.
// mode: "hinted", "nocode", "reuse".
func chainQuality(t *testing.T, cat video.Category, seed int64, start, steps int, mode string) (float64, float64) {
	t.Helper()
	g := video.NewGenerator(cat, seed)
	ext := edgecode.NewExtractor(0, 0)
	r := New(Config{OutW: tw, OutH: th})

	prevPrev := g.Render(start-2, tw, th)
	prev := g.Render(start-1, tw, th)
	prevCode := ext.Extract(g.Render(start-1, tw, th))

	var s metrics.Series
	for k := 0; k < steps; k++ {
		truth := g.Render(start+k, tw, th)
		var out *vmath.Plane
		switch mode {
		case "hinted":
			curCode := ext.Extract(truth)
			out = r.Recover(Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: curCode})
			prevCode = curCode
		case "nocode":
			out = r.Recover(Input{Prev: prev, PrevPrev: prevPrev})
		case "reuse":
			out = r.Reuse(prev)
		default:
			t.Fatalf("bad mode %q", mode)
		}
		s.ObserveFrames(truth, out)
		prevPrev = prev
		prev = out
	}
	return s.MeanPSNR(), s.MeanSSIM()
}

func TestHintedBeatsNoCodeBeatsReuse(t *testing.T) {
	cat := video.Categories()[2] // Vlogs: moderate motion
	hinted, hintedS := chainQuality(t, cat, 11, 40, 10, "hinted")
	nocode, nocodeS := chainQuality(t, cat, 11, 40, 10, "nocode")
	reuse, reuseS := chainQuality(t, cat, 11, 40, 10, "reuse")
	t.Logf("PSNR hinted=%.2f nocode=%.2f reuse=%.2f", hinted, nocode, reuse)
	t.Logf("SSIM hinted=%.3f nocode=%.3f reuse=%.3f", hintedS, nocodeS, reuseS)
	if hinted <= nocode {
		t.Errorf("hinted (%.2f dB) not above no-code (%.2f dB)", hinted, nocode)
	}
	if nocode <= reuse {
		t.Errorf("no-code (%.2f dB) not above reuse (%.2f dB)", nocode, reuse)
	}
	if hinted < reuse+1 {
		t.Errorf("hinted gain over reuse too small: %.2f vs %.2f", hinted, reuse)
	}
}

func TestGracefulDegradation(t *testing.T) {
	cat := video.Categories()[0]
	q5, _ := chainQuality(t, cat, 5, 30, 5, "hinted")
	q20, _ := chainQuality(t, cat, 5, 30, 20, "hinted")
	t.Logf("hinted 5-step %.2f dB, 20-step %.2f dB", q5, q20)
	if q20 >= q5 {
		t.Errorf("no degradation with horizon: %v vs %v", q20, q5)
	}
	if q20 < 15 {
		t.Errorf("20-step quality collapsed: %.2f dB", q20)
	}
}

func TestPartialRecoveryBeatsFullLoss(t *testing.T) {
	cat := video.Categories()[2]
	g := video.NewGenerator(cat, 13)
	ext := edgecode.NewExtractor(0, 0)

	prev := g.Render(49, tw, th)
	truth := g.Render(50, tw, th)
	prevCode := ext.Extract(prev)
	curCode := ext.Extract(truth)

	// Partial frame: top half received.
	part := vmath.NewPlane(tw, th)
	mask := vmath.NewPlane(tw, th)
	for y := 0; y < th/2; y++ {
		for x := 0; x < tw; x++ {
			part.Set(x, y, truth.At(x, y))
			mask.Set(x, y, 1)
		}
	}

	rFull := New(Config{OutW: tw, OutH: th})
	full := rFull.Recover(Input{Prev: prev, PrevCode: prevCode, CurCode: curCode})
	rPart := New(Config{OutW: tw, OutH: th})
	partial := rPart.Recover(Input{Prev: prev, PrevCode: prevCode, CurCode: curCode, Part: part, PartMask: mask})

	pFull := metrics.PSNR(truth, full)
	pPart := metrics.PSNR(truth, partial)
	t.Logf("full-loss %.2f dB, partial %.2f dB", pFull, pPart)
	if pPart <= pFull {
		t.Errorf("partial recovery (%.2f) not above full-loss recovery (%.2f)", pPart, pFull)
	}
	// Received region must match the truth exactly (override).
	for y := 2; y < th/2-2; y++ {
		for x := 0; x < tw; x++ {
			if partial.At(x, y) != truth.At(x, y) {
				t.Fatalf("received region altered at (%d,%d)", x, y)
			}
		}
	}
}

func TestRecoverDispatch(t *testing.T) {
	g := video.NewGenerator(video.Categories()[0], 1)
	prev := g.Render(10, tw, th)
	r := New(Config{OutW: tw, OutH: th})
	// No codes, no prevPrev → reuse.
	out := r.Recover(Input{Prev: prev})
	if p := metrics.PSNR(prev, out); p < 40 {
		t.Fatalf("reuse dispatch output differs from prev: %.2f dB", p)
	}
}

func TestRecoverPanicsWithoutPrev(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{OutW: 8, OutH: 8}).Recover(Input{})
}

func TestConfigDefaults(t *testing.T) {
	r := New(Config{OutW: 1920, OutH: 1080})
	cfg := r.Config()
	if cfg.WorkH != 270 {
		t.Fatalf("1080p work height %d, want 270 (paper §7)", cfg.WorkH)
	}
	if cfg.WorkW != 480 {
		t.Fatalf("work width %d, want 480", cfg.WorkW)
	}
	r2 := New(Config{OutW: 160, OutH: 96})
	if c := r2.Config(); c.WorkW != 160 || c.WorkH != 96 {
		t.Fatalf("small frames must keep native work res, got %dx%d", c.WorkW, c.WorkH)
	}
}

func TestOutputInRange(t *testing.T) {
	g := video.NewGenerator(video.Categories()[3], 9)
	ext := edgecode.NewExtractor(0, 0)
	prev := g.Render(20, tw, th)
	cur := g.Render(21, tw, th)
	r := New(Config{OutW: tw, OutH: th})
	out := r.Recover(Input{Prev: prev, PrevCode: ext.Extract(prev), CurCode: ext.Extract(cur)})
	min, max := out.MinMax()
	if min < 0 || max > 255 {
		t.Fatalf("output out of range: %v..%v", min, max)
	}
	if out.W != tw || out.H != th {
		t.Fatalf("geometry %dx%d", out.W, out.H)
	}
}

func TestResetClearsHistory(t *testing.T) {
	g := video.NewGenerator(video.Categories()[0], 2)
	ext := edgecode.NewExtractor(0, 0)
	r := New(Config{OutW: tw, OutH: th})
	prev := g.Render(5, tw, th)
	in := Input{Prev: prev, PrevCode: ext.Extract(prev), CurCode: ext.Extract(g.Render(6, tw, th))}
	a := r.Recover(in)
	r.Reset()
	ext2 := edgecode.NewExtractor(0, 0)
	in2 := Input{Prev: prev, PrevCode: ext2.Extract(prev), CurCode: ext2.Extract(g.Render(6, tw, th))}
	b := New(Config{OutW: tw, OutH: th}).Recover(in2)
	// A reset recoverer must behave like a fresh one (codes from fresh
	// extractors too).
	r2out := r.Recover(in2)
	if d := vmath.MAE(r2out, b); d > 1e-4 {
		t.Fatalf("reset recoverer differs from fresh: %v", d)
	}
	_ = a
}

func TestInpaintRespectsGuide(t *testing.T) {
	// Left half bright, right half dark, hole across the boundary.
	// With a guide edge along the boundary, diffusion should not bleed
	// the bright side into the dark side as much as without a guide.
	w, h := 40, 20
	img := vmath.NewPlane(w, h)
	valid := vmath.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			switch {
			case x < 14:
				img.Set(x, y, 220)
				valid.Set(x, y, 1)
			case x >= 26:
				img.Set(x, y, 30)
				valid.Set(x, y, 1)
			default:
				img.Set(x, y, 125) // stale warped content in the hole
			}
		}
	}
	guide := vmath.NewPlane(w, h)
	for y := 0; y < h; y++ {
		guide.Set(20, y, 1)
		guide.Set(19, y, 0.8)
		guide.Set(21, y, 0.8)
	}
	guided := inpaint(img, valid, guide, 60)
	unguided := inpaint(img, valid, nil, 60)
	// Just right of the edge, the guided fill should be darker (closer
	// to the dark side) than the unguided fill.
	gv := guided.At(23, 10)
	uv := unguided.At(23, 10)
	if gv >= uv {
		t.Fatalf("guide had no effect: guided=%v unguided=%v", gv, uv)
	}
	// Known pixels are untouched.
	if guided.At(5, 5) != 220 || guided.At(35, 5) != 30 {
		t.Fatal("inpaint altered valid pixels")
	}
}

func TestInpaintNoHolesIsIdentity(t *testing.T) {
	img := vmath.NewPlane(8, 8)
	img.Fill(57)
	valid := vmath.NewPlane(8, 8)
	valid.Fill(1)
	out := inpaint(img, valid, nil, 10)
	if d := vmath.MAE(img, out); d != 0 {
		t.Fatalf("identity inpaint changed pixels: %v", d)
	}
}

func BenchmarkRecoverHinted(b *testing.B) {
	g := video.NewGenerator(video.Categories()[2], 1)
	ext := edgecode.NewExtractor(0, 0)
	prev := g.Render(10, 480, 270)
	cur := g.Render(11, 480, 270)
	pc := ext.Extract(prev)
	cc := ext.Extract(cur)
	r := New(Config{OutW: 480, OutH: 270})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Recover(Input{Prev: prev, PrevCode: pc, CurCode: cc})
	}
}
