package docs

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRE matches inline Markdown links [text](target). Images and
// reference-style definitions are rare enough here not to special-case;
// image links ![alt](target) are caught by the same pattern.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// repoRoot walks up from the test's working directory to the directory
// containing go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// skipTarget reports whether a link target is out of scope for the
// dead-link check: external URLs, mail links, and intra-page anchors.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// TestDocLinks fails on any relative Markdown link whose target does not
// exist on disk, in every *.md of the repository.
func TestDocLinks(t *testing.T) {
	root := repoRoot(t)
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// .git holds packed refs, not docs; testdata may hold
			// deliberately broken fixtures.
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no Markdown files found — walk is broken")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, md)
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			// A relative link may carry an anchor: FILE.md#section.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead link %q (resolved to %s)", rel, m[1], resolved)
			}
		}
	}
}
