package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"nerve/internal/core"
	"nerve/internal/telemetry"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// runStages drives one pipelined client session at the headline operating
// point — 960×540 transmission, 1920×1080 display, one complete loss in
// five — and dumps where the frame time went: per-stage p50/p99 from the
// stage timers, plus the pipeline's busy vs critical-path split and the
// overlap ratio the stage graph actually won. tier picks the kernel tier
// policy (-tier float|fixed|auto); under auto the report also shows the
// governor's per-tier frame counts, switches and probes.
func runStages(w io.Writer, quick bool, seed int64, tier core.Tier) error {
	frames := 150
	if quick {
		frames = 30
	}
	const txW, txH = 960, 540
	srv, err := core.NewServer(core.ServerConfig{W: txW, H: txH, TargetBitrate: 6e6, GOP: 60, PacketPayload: 1200})
	if err != nil {
		return err
	}
	cli, err := core.NewClient(core.ClientConfig{
		W: txW, H: txH, OutW: 1920, OutH: 1080,
		EnableRecovery: true, EnableSR: true, Tier: tier,
	})
	if err != nil {
		return err
	}

	telemetry.Enable(true)
	defer telemetry.Enable(false)
	telemetry.Default.Reset()

	// Encode the whole stream first: the client is the system under
	// measurement, and a back-to-back push loop keeps the overlap figure
	// honest — enhance can only hide under the next frame's ingest, not
	// under server-side encode time.
	g := video.NewGenerator(video.Categories()[3], seed)
	inputs := make([]core.Input, frames)
	for i := range inputs {
		sf, err := srv.Process(g.Render(i, txW, txH))
		if err != nil {
			return err
		}
		inputs[i] = core.Input{Encoded: sf.Encoded, Code: sf.Code}
		if i%5 == 2 {
			inputs[i].Encoded = nil // complete loss → recovery path
		}
	}

	p := core.NewPipeline(cli)
	push := func(in core.Input) error {
		res, err := p.Push(in)
		if err != nil {
			return err
		}
		if res != nil {
			vmath.Put(res.Frame)
		}
		return nil
	}
	// Warm plane pools, tap caches and temporal state across all three
	// input paths before the measured window — this is a steady-state
	// diagnosis, and frame 0 pays one-time costs no later frame pays.
	const warm = 5
	for _, in := range inputs[:warm] {
		if err := push(in); err != nil {
			return err
		}
	}
	telemetry.Default.Reset()
	for _, in := range inputs[warm:] {
		if err := push(in); err != nil {
			return err
		}
	}
	if last := p.Flush(); last != nil {
		vmath.Put(last.Frame)
	}

	s := telemetry.Default.Snapshot()
	fmt.Fprintf(w, "pipelined 960x540 -> 1920x1080 client, tier %s, %d frames after %d warm (1-in-5 loss)\n\n", tier, frames-warm, warm)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tcount\tp50 ms\tp99 ms\tmax ms")
	for _, st := range s.Stages {
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\n", st.Stage, st.Count, st.P50Ms, st.P99Ms, st.MaxMs)
	}
	fmt.Fprintf(tw, "\nframe (busy)\t%d\t%.2f\t%.2f\t\n", s.Pipeline.Frames, s.Pipeline.BusyP50Ms, s.Pipeline.BusyP99Ms)
	fmt.Fprintf(tw, "frame (critical)\t%d\t%.2f\t%.2f\t\n", s.Pipeline.Frames, s.Pipeline.CriticalP50Ms, s.Pipeline.CriticalP99Ms)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\noverlap ratio: %.2fx (busy time per unit of critical-path time; 1.00 = sequential)\n", s.Pipeline.OverlapRatio)
	fmt.Fprintf(w, "deadline: %d/%d frames over the %.1f ms budget\n",
		s.Deadline.Overruns, s.Deadline.Frames, s.Deadline.BudgetMs)
	fmt.Fprintf(w, "tiers: %d float / %d fixed frames, %d switches, %d probes\n",
		s.Counters["tier.float_frames"], s.Counters["tier.fixed_frames"],
		s.Counters["tier.switches"], s.Counters["tier.probes"])
	return nil
}
