package transport

import (
	"math"
	"testing"

	"nerve/internal/netem"
	"nerve/internal/trace"
)

func flatTrace(bps, loss, rtt float64, secs int) *trace.Trace {
	tr := &trace.Trace{Name: "flat", Interval: 1, Samples: make([]trace.Sample, secs)}
	for i := range tr.Samples {
		tr.Samples[i] = trace.Sample{ThroughputBps: bps, LossRate: loss, RTTSeconds: rtt}
	}
	return tr
}

func newTestConn(bps, loss, rtt float64, seed int64) (*Conn, *netem.Clock) {
	clock := &netem.Clock{}
	fwd := netem.NewLink(clock, flatTrace(bps, loss, rtt, 3600), netem.NewGilbertElliott(seed))
	rev := netem.NewLink(clock, flatTrace(bps, 0, rtt, 3600), nil)
	return NewConn(clock, fwd, rev), clock
}

func TestSendDatagramLossless(t *testing.T) {
	c, clock := newTestConn(1e6, 0, 0.05, 1)
	var at float64 = -1
	c.SendDatagram(1000, func(a float64) { at = a })
	clock.RunUntilIdle()
	if at < 0 {
		t.Fatal("datagram not delivered")
	}
	// tx ≈ (1000+28)*8/1e6 ≈ 8.2 ms + 25 ms propagation.
	if math.Abs(at-0.0332) > 0.005 {
		t.Fatalf("arrival %v, want ≈33 ms", at)
	}
}

func TestSendReliableDeliversDespiteLoss(t *testing.T) {
	c, clock := newTestConn(5e6, 0.3, 0.04, 2)
	delivered := 0
	for i := 0; i < 100; i++ {
		c.SendReliable(1000, func(at float64, ok bool, attempts int) {
			if ok {
				delivered++
			}
		})
	}
	clock.RunUntilIdle()
	if delivered != 100 {
		t.Fatalf("delivered %d/100 at 30%% loss", delivered)
	}
	if c.Retx == 0 {
		t.Fatal("no retransmissions at 30% loss")
	}
}

func TestSendReliableCallbackOnce(t *testing.T) {
	c, clock := newTestConn(5e6, 0.5, 0.02, 3)
	calls := 0
	c.SendReliable(500, func(at float64, ok bool, attempts int) { calls++ })
	clock.RunUntilIdle()
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestSendReliableGivesUp(t *testing.T) {
	// 100% loss: must report failure after MaxAttempts.
	clock := &netem.Clock{}
	fwd := netem.NewLink(clock, flatTrace(1e6, 1.0, 0.02, 3600), netem.NewBernoulli(4))
	// GE caps at BadLoss; Bernoulli(1.0) always drops.
	rev := netem.NewLink(clock, flatTrace(1e6, 0, 0.02, 3600), nil)
	c := NewConn(clock, fwd, rev)
	c.MaxAttempts = 3
	var gotOK *bool
	c.SendReliable(500, func(at float64, ok bool, attempts int) {
		gotOK = &ok
		if attempts != 3 {
			t.Errorf("attempts=%d want 3", attempts)
		}
	})
	clock.RunUntilIdle()
	if gotOK == nil {
		t.Fatal("callback never ran")
	}
	if *gotOK {
		t.Fatal("reported success under total loss")
	}
}

func TestReliableLatencyAboutOneRTT(t *testing.T) {
	// The binary point code (1 KB) should arrive in ≈½RTT+tx on a clean
	// link — the paper's "within one RTT" side-channel property.
	c, clock := newTestConn(10e6, 0, 0.1, 2)
	var at float64
	c.SendReliable(1024, func(a float64, ok bool, _ int) { at = a })
	clock.RunUntilIdle()
	if at > 0.1 {
		t.Fatalf("side channel took %v, want < 1 RTT", at)
	}
}

func TestTransferAllArrivalsRecorded(t *testing.T) {
	c, clock := newTestConn(2e6, 0.05, 0.04, 5)
	sizes := make([]int, 40)
	for i := range sizes {
		sizes[i] = 1100
	}
	var res *TransferResult
	c.Transfer(sizes, func(r *TransferResult) { res = r })
	clock.RunUntilIdle()
	if res == nil {
		t.Fatal("transfer never completed")
	}
	if !res.Complete() {
		t.Fatalf("failed packets: %d", res.Failed)
	}
	prevDone := 0.0
	lost := 0
	for i, a := range res.Arrival {
		if math.IsInf(a, 1) {
			t.Fatalf("packet %d has no arrival", i)
		}
		if a > res.Done+1e-9 {
			t.Fatalf("arrival %v after done %v", a, res.Done)
		}
		if a > prevDone {
			prevDone = a
		}
		if res.FirstTxLost[i] {
			lost++
		}
	}
	if math.Abs(prevDone-res.Done) > 1e-9 {
		t.Fatalf("Done %v != last arrival %v", res.Done, prevDone)
	}
	if lost == 0 && res.Retransmissions > 0 {
		t.Fatal("retransmissions recorded but no FirstTxLost")
	}
}

func TestTransferThroughputBound(t *testing.T) {
	// 100 KB over a 1 Mbps lossless link must take ≈0.8 s + RTT, and the
	// windowing must keep the link busy (not one-packet-at-a-time).
	c, clock := newTestConn(1e6, 0, 0.05, 10)
	sizes := make([]int, 100)
	for i := range sizes {
		sizes[i] = 1000
	}
	var res *TransferResult
	c.Transfer(sizes, func(r *TransferResult) { res = r })
	clock.RunUntilIdle()
	ideal := float64(100*(1000+HeaderSize)*8) / 1e6
	if res.Done < ideal {
		t.Fatalf("finished faster than the link allows: %v < %v", res.Done, ideal)
	}
	if res.Done > ideal*1.5+0.2 {
		t.Fatalf("windowed transfer too slow: %v vs ideal %v", res.Done, ideal)
	}
}

func TestTransferEmpty(t *testing.T) {
	c, clock := newTestConn(1e6, 0, 0.05, 1)
	done := false
	c.Transfer(nil, func(r *TransferResult) {
		done = true
		if len(r.Arrival) != 0 || !r.Complete() {
			t.Error("empty transfer result malformed")
		}
	})
	clock.RunUntilIdle()
	if !done {
		t.Fatal("empty transfer never completed")
	}
}

func TestTransferFirstTxLostTracksLoss(t *testing.T) {
	c, clock := newTestConn(5e6, 0.2, 0.03, 7)
	sizes := make([]int, 200)
	for i := range sizes {
		sizes[i] = 1100
	}
	var res *TransferResult
	c.Transfer(sizes, func(r *TransferResult) { res = r })
	clock.RunUntilIdle()
	lost := 0
	for _, l := range res.FirstTxLost {
		if l {
			lost++
		}
	}
	frac := float64(lost) / 200
	if frac < 0.05 || frac > 0.5 {
		t.Fatalf("first-tx loss fraction %v not near 20%%", frac)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	c, clock := newTestConn(1e8, 0, 0.2, 5) // huge bw, long RTT
	c.Window = 4
	sizes := make([]int, 16)
	for i := range sizes {
		sizes[i] = 100
	}
	var res *TransferResult
	c.Transfer(sizes, func(r *TransferResult) { res = r })
	clock.RunUntilIdle()
	// With window 4 and RTT 0.2 s, 16 packets need ≥ 4 round trips of
	// ~0.1 s one-way latency each ≈ 0.4 s; an unlimited window would
	// finish in ~0.1 s.
	if res.Done < 0.35 {
		t.Fatalf("window not enforced: done=%v", res.Done)
	}
}

func TestLocalQueueDropRetriesFast(t *testing.T) {
	// A packet rejected by the local queue-overflow guard must not wait
	// out a full PTO (≈0.19 s here): the drop is known locally, so the
	// retry fires as soon as the backlog drains below the cap.
	clock := &netem.Clock{}
	fwd := netem.NewLink(clock, flatTrace(1e6, 0, 0.1, 3600), nil)
	fwd.MaxQueueDelay = 0.01
	rev := netem.NewLink(clock, flatTrace(1e6, 0, 0.1, 3600), nil)
	c := NewConn(clock, fwd, rev)
	// 2500 B at 1 Mbps = 20 ms of backlog, over the 10 ms cap.
	if !fwd.Send(2500, func() {}) {
		t.Fatal("backlog packet itself dropped")
	}
	var at float64 = -1
	okAttempt := 0
	c.SendReliable(1000, func(a float64, ok bool, attempt int) {
		if !ok {
			t.Fatal("gave up on a lossless link")
		}
		at, okAttempt = a, attempt
	})
	clock.RunUntilIdle()
	if c.LocalDrops != 1 {
		t.Fatalf("LocalDrops=%d want 1", c.LocalDrops)
	}
	if okAttempt != 2 {
		t.Fatalf("delivered on attempt %d, want 2", okAttempt)
	}
	// Queue drains to the cap at 10 ms, retry ≈11 ms, tx ≈8 ms behind the
	// backlog, prop 50 ms → ≈78 ms. The old PTO-driven retry could not
	// deliver before ≈0.24 s.
	if at < 0 || at > 0.15 {
		t.Fatalf("local-drop retry delivered at %v, want well under a PTO", at)
	}
}

func TestLocalDropsCountedSeparatelyFromWireLoss(t *testing.T) {
	// Wire loss (no queue overflow) must not touch LocalDrops.
	c, clock := newTestConn(5e6, 0.3, 0.04, 2)
	for i := 0; i < 50; i++ {
		c.SendReliable(1000, func(float64, bool, int) {})
	}
	clock.RunUntilIdle()
	if c.LocalDrops != 0 {
		t.Fatalf("LocalDrops=%d on an uncongested link", c.LocalDrops)
	}
	if c.Retx == 0 {
		t.Fatal("no wire-loss retransmissions at 30% loss")
	}
}
