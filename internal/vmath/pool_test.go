package vmath

import (
	"sync"
	"testing"

	"nerve/internal/par"
)

// TestPoolBucketReuse proves recycling: a Put plane's backing array is the
// one handed back by the next same-bucket Get.
func TestPoolBucketReuse(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; reuse is not deterministic")
	}
	var p Pool
	a := p.Get(32, 16)
	first := &a.Pix[0]
	p.Put(a)
	// 30×17 = 510 elements lands in the same 512-element bucket as 32×16.
	b := p.Get(30, 17)
	if &b.Pix[0] != first {
		t.Fatalf("Get after Put returned a fresh backing array, want the recycled one")
	}
	if b.W != 30 || b.H != 17 || len(b.Pix) != 510 {
		t.Fatalf("recycled plane has geometry %dx%d len %d, want 30x17 len 510", b.W, b.H, len(b.Pix))
	}
}

func TestPoolStatsCounters(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; reuse is not deterministic")
	}
	var p Pool
	a := p.Get(16, 16) // miss
	if s := p.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first Get: %+v, want 1 miss 0 hits", s)
	}
	if s := p.Stats(); s.BytesLive != 16*16*4 {
		t.Fatalf("BytesLive = %d, want %d", s.BytesLive, 16*16*4)
	}
	p.Put(a)
	if s := p.Stats(); s.Puts != 1 || s.BytesLive != 0 {
		t.Fatalf("after Put: %+v, want 1 put 0 bytes live", s)
	}
	b := p.Get(16, 16) // hit
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after second Get: %+v, want 1 hit 1 miss", s)
	}
	p.Put(b)

	// A foreign plane whose capacity is not a bucket size is dropped.
	p.Put(FromSlice(10, 10, make([]float32, 100)))
	if s := p.Stats(); s.Drops != 1 {
		t.Fatalf("after foreign Put: %+v, want 1 drop", s)
	}
}

func TestPoolGetZeroed(t *testing.T) {
	var p Pool
	a := p.Get(8, 8)
	a.Fill(99)
	p.Put(a)
	b := p.GetZeroed(8, 8)
	for i, v := range b.Pix {
		if v != 0 {
			t.Fatalf("GetZeroed pixel %d = %v, want 0", i, v)
		}
	}
}

func TestPoolGetPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(-1, 4) did not panic")
		}
	}()
	Get(-1, 4)
}

func TestBucketIndex(t *testing.T) {
	cases := []struct{ n, idx int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {512, 3},
		{1 << 24, poolBuckets - 1}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.n); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.n, got, c.idx)
		}
	}
}

// TestPoolConcurrent hammers one pool from many goroutines; run under -race
// this is the concurrency-safety proof for the shared DefaultPool.
func TestPoolConcurrent(t *testing.T) {
	var p Pool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pl := p.Get(64+g, 32+i%7)
				pl.Fill(float32(g))
				if pl.Pix[0] != float32(g) {
					t.Errorf("goroutine %d read back %v", g, pl.Pix[0])
					return
				}
				p.Put(pl)
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolGetPutZeroAlloc proves the steady-state contract at the pool
// level: once a bucket is warm, Get+Put allocates nothing.
func TestPoolGetPutZeroAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; reuse is not deterministic")
	}
	var p Pool
	p.Put(p.Get(64, 48)) // warm the bucket
	allocs := testing.AllocsPerRun(100, func() {
		pl := p.Get(64, 48)
		pl.Pix[0] = 1
		p.Put(pl)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocates %v objects/op, want 0", allocs)
	}
}

// TestIntoKernelsZeroPlaneAlloc proves the destination-passing forms never
// allocate plane backing arrays once warm — the O(W·H) allocations the pool
// exists to eliminate. The par.ForRows closure headers (a few words each,
// heap-allocated because fn escapes into the worker pool) are the only
// permitted residue, bounded by a small constant per call.
func TestIntoKernelsZeroPlaneAlloc(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; reuse is not deterministic")
	}
	defer par.SetWorkers(1)()
	src := Get(64, 48)
	for i := range src.Pix {
		src.Pix[i] = float32(i % 251)
	}
	big := Get(128, 96)
	gx := Get(64, 48)
	gy := Get(64, 48)
	defer func() { Put(src); Put(big); Put(gx); Put(gy) }()

	cases := []struct {
		name string
		fn   func()
	}{
		{"ResizeBilinearInto", func() { ResizeBilinearInto(big, src) }},
		{"ResizeBicubicInto", func() { ResizeBicubicInto(big, src) }},
		{"ResizeNearestInto", func() { ResizeNearestInto(big, src) }},
		{"GradientsInto", func() { GradientsInto(gx, gy, src) }},
		{"GradientMagnitudeInto", func() { GradientMagnitudeInto(gx, src) }},
		{"GaussianBlurInto", func() { GaussianBlurInto(gx, src, 0.8) }},
		{"UnsharpMaskInto", func() { UnsharpMaskInto(gx, src, 1.0, 0.2) }},
		{"CopyFrom", func() { gx.CopyFrom(src) }},
	}
	for _, c := range cases {
		c.fn() // warm pooled scratch and the tap cache
		before := PlaneAllocs()
		allocs := testing.AllocsPerRun(10, c.fn)
		if d := PlaneAllocs() - before; d != 0 {
			t.Errorf("%s allocated %d plane backing arrays, want 0", c.name, d)
		}
		if allocs > 6 {
			t.Errorf("%s allocates %v objects/op, want <= 6 (closure headers only)", c.name, allocs)
		}
	}
}
