package vmath

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nerve/internal/telemetry"
)

// Pool is a size-bucketed, concurrency-safe free list of Plane backing
// arrays. Get hands out a dirty (or zeroed, see GetZeroed) plane whose
// backing array comes from the bucket of the smallest power-of-two element
// count that fits; Put returns a plane for reuse. Each bucket is a
// sync.Pool, so unused buffers are reclaimed by the GC under memory
// pressure and the pool never needs explicit sizing.
//
// Ownership contract (see DESIGN.md "Memory model"):
//
//   - A plane returned by Get is owned by the caller until it calls Put.
//   - Put is always optional: a plane that is never Put is simply collected
//     by the GC. Skipping Put costs garbage, never correctness.
//   - Put transfers ownership to the pool. The caller must not retain any
//     reference to the plane or its Pix slice afterwards. The poolcheck
//     build (-tags poolcheck) turns violations into panics or NaN-poisoned
//     pixels instead of silent frame corruption.
//   - Planes whose backing array did not come from this pool (Clone,
//     NewPlane, FromSlice, SubPlane results) may be Put too: if the
//     capacity matches a bucket size they are adopted, otherwise they are
//     silently dropped. Either way it is safe.
//
// The zero Pool is ready to use. Most code uses the package-level
// DefaultPool via the free functions Get, GetZeroed and Put.
type Pool struct {
	buckets [poolBuckets]bucket
	stats   PoolStats
	check   poolChecker
}

// bucket wraps one sync.Pool holding *Plane values whose Pix capacity is
// exactly the bucket's element count. Storing pointers keeps Get/Put free
// of interface-boxing allocations.
type bucket struct {
	free sync.Pool
}

// PoolStats are the pool's cumulative counters. Read them atomically via
// Pool.Stats; they are maintained with atomic adds on every Get/Put.
type PoolStats struct {
	// Hits counts Gets served from a free list.
	Hits int64
	// Misses counts Gets that had to allocate a fresh backing array
	// (including planes larger than the largest bucket).
	Misses int64
	// Puts counts planes accepted back into a bucket.
	Puts int64
	// Drops counts planes rejected by Put (capacity not a bucket size).
	Drops int64
	// BytesLive is the number of backing-array bytes currently handed out
	// by Get and not yet returned with Put.
	BytesLive int64
}

const (
	// poolMinShift..poolMaxShift bound the bucket element counts:
	// 1<<6 = 64 floats up to 1<<24 = 16.8M floats (64 MiB), enough for a
	// 4K plane. Larger requests are allocated exactly and never pooled.
	poolMinShift = 6
	poolMaxShift = 24
	poolBuckets  = poolMaxShift - poolMinShift + 1
)

// bucketIndex returns the bucket for n elements, or -1 when n exceeds the
// largest bucket. The bucket capacity is poolBucketCap(idx) >= n.
func bucketIndex(n int) int {
	if n <= 0 {
		return 0
	}
	for s := poolMinShift; s <= poolMaxShift; s++ {
		if n <= 1<<s {
			return s - poolMinShift
		}
	}
	return -1
}

func poolBucketCap(idx int) int { return 1 << (idx + poolMinShift) }

// DefaultPool is the process-wide plane pool used by the free functions
// Get, GetZeroed and Put, and by every pipeline stage in this repo.
var DefaultPool = &Pool{}

// Telemetry counters for the default pool. Registered at package init so
// they appear in telemetry.Snapshot once vmath is linked; each costs one
// gated atomic add per pool operation.
var (
	cPoolHit       = telemetry.NewCounter("pool.hit")
	cPoolMiss      = telemetry.NewCounter("pool.miss")
	cPoolBytesLive = telemetry.NewCounter("pool.bytes_live")
)

// Get returns a w×h plane whose contents are undefined (dirty). The caller
// owns it until Put. Callers must write every pixel they later read;
// kernels with partial writes should use GetZeroed. Panics if either
// dimension is negative, like NewPlane.
func (p *Pool) Get(w, h int) *Plane {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("vmath: invalid plane size %dx%d", w, h))
	}
	n := w * h
	idx := bucketIndex(n)
	if idx < 0 {
		// Too large to pool: exact allocation, never recycled.
		atomic.AddInt64(&p.stats.Misses, 1)
		atomic.AddInt64(&p.stats.BytesLive, int64(n)*4)
		if p == DefaultPool {
			cPoolMiss.Add(1)
			cPoolBytesLive.Add(int64(n) * 4)
		}
		planeAllocs.Add(1)
		return &Plane{W: w, H: h, Pix: make([]float32, n)}
	}
	bcap := poolBucketCap(idx)
	pl, _ := p.buckets[idx].free.Get().(*Plane)
	if pl == nil {
		atomic.AddInt64(&p.stats.Misses, 1)
		if p == DefaultPool {
			cPoolMiss.Add(1)
		}
		planeAllocs.Add(1)
		pl = &Plane{Pix: make([]float32, bcap)}
	} else {
		atomic.AddInt64(&p.stats.Hits, 1)
		if p == DefaultPool {
			cPoolHit.Add(1)
		}
		p.check.onGet(pl)
	}
	atomic.AddInt64(&p.stats.BytesLive, int64(bcap)*4)
	if p == DefaultPool {
		cPoolBytesLive.Add(int64(bcap) * 4)
	}
	pl.W, pl.H = w, h
	pl.Pix = pl.Pix[:cap(pl.Pix)][:n]
	return pl
}

// GetZeroed is Get followed by zeroing the pixels — for kernels that only
// write some pixels and rely on the rest being 0 (masks, sparse targets).
func (p *Pool) GetZeroed(w, h int) *Plane {
	pl := p.Get(w, h)
	clear(pl.Pix)
	return pl
}

// Put returns pl to the pool. pl and its Pix slice must not be used again
// by the caller. Planes whose backing capacity is not an exact bucket size
// (foreign allocations, oversize planes) are dropped, not adopted — Put is
// safe to call on any plane. Put(nil) is a no-op.
func (p *Pool) Put(pl *Plane) {
	if pl == nil {
		return
	}
	c := cap(pl.Pix)
	idx := -1
	if c >= 1<<poolMinShift && c <= 1<<poolMaxShift && c&(c-1) == 0 {
		idx = bucketIndex(c)
	}
	delta := int64(len(pl.Pix)) * 4
	if idx >= 0 {
		delta = int64(c) * 4
	}
	atomic.AddInt64(&p.stats.BytesLive, -delta)
	if p == DefaultPool {
		cPoolBytesLive.Add(-delta)
	}
	if idx < 0 {
		atomic.AddInt64(&p.stats.Drops, 1)
		return
	}
	atomic.AddInt64(&p.stats.Puts, 1)
	p.check.onPut(pl)
	p.buckets[idx].free.Put(pl)
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:      atomic.LoadInt64(&p.stats.Hits),
		Misses:    atomic.LoadInt64(&p.stats.Misses),
		Puts:      atomic.LoadInt64(&p.stats.Puts),
		Drops:     atomic.LoadInt64(&p.stats.Drops),
		BytesLive: atomic.LoadInt64(&p.stats.BytesLive),
	}
}

// Get returns a dirty w×h plane from the default pool. See Pool.Get.
func Get(w, h int) *Plane { return DefaultPool.Get(w, h) }

// GetZeroed returns a zeroed w×h plane from the default pool.
func GetZeroed(w, h int) *Plane { return DefaultPool.GetZeroed(w, h) }

// Put returns a plane to the default pool. See Pool.Put.
func Put(pl *Plane) { DefaultPool.Put(pl) }

// planeAllocs counts backing-array allocations performed by this package —
// NewPlane plus pool misses. The steady-state regression tests assert it
// stays flat across warmed-up frame loops.
var planeAllocs atomic.Int64

// PlaneAllocs returns the number of plane backing-array allocations made by
// this package since process start (NewPlane calls plus pool misses).
// Pool hits, FromSlice and Clone-free Into kernels do not move it.
func PlaneAllocs() int64 { return planeAllocs.Load() }
