package codec

// Packed int16×4 SWAR AAN transforms: fdct8x4/idct8x4 run the same AAN
// butterfly flow graphs as dct_int.go across FOUR blocks at once, carrying
// one lane per block inside a single uint64 word. The fixed tier codes
// 16×16 macroblocks as exactly four 8×8 luma blocks, so the natural batch
// is already everywhere in the codec — the batch entry points slot into
// transformSet (fdct4x/idct4x) and become the active tier under
// -tags codecint.
//
// # Lane layout and bias arithmetic
//
// Signed lanes cannot share a word under plain uint64 add/sub — a borrow
// in one lane corrupts its neighbour. Every lane therefore stores v+B for
// a per-node power-of-two bias B chosen so stored values are provably
// non-negative and carry-free:
//
//   - add:  (a+b) − pack(B)          bias B+B → B, no borrow since the
//     result is a flow node: |va+vb| ≤ nodeMax < B.
//   - sub:  (a + pack(B)) − b        per-lane va−vb+B ≥ 0, same argument.
//   - mul by Q-constant c, shift s:  the even/odd 16-bit lanes are split
//     into 32-bit fields, each field multiplied by c in ONE uint64
//     multiply (field·c < 2³², so products cannot cross fields), rounded
//     with +2^{s−1}, shifted, masked, recombined. The bias turns into
//     B·c≫s — exact, because 2^s divides B·c for power-of-two B ≥ 2^s —
//     and one packed constant renormalises it back to B. The spill of the
//     upper field's shifted product lands at bit ≥ 32−s, above every
//     result mask used here.
//
// Because the biases cancel exactly, lane values equal a pure scalar
// int32 evaluation of the same flow graph with the same rounding —
// fdct8Lane/idct8Lane below ARE that evaluation, and TestInt4xPackedLaneBitIdentity
// holds the pair bit-identical.
//
// # Precision layout (differs from dct_int.go, same flow, same scales)
//
//	fdct: pixels/residuals enter at Q2 so the whole first (row) pass fits
//	16-bit lanes — four lanes per word. True 1-D worst-case L1 gain of
//	the flow is 10.06×, so |node| ≤ 10.06·4·380 < 2^14 for |in| ≤ 380
//	(intra is ±128, inter residual ±255). Row constants are Q14. The
//	column pass widens to two 32-bit fields per word (values reach ~10⁵)
//	with Q12 constants. Output descales Q2 once at the end.
//
//	idct: dequantised coefficients enter at Q8 and stay Q8 end-to-end
//	with the Q15 constants of dct_int.go — the same precision class as
//	idct8Int (~a quarter grey level on full-scale blocks). Both passes
//	run in 32-bit fields (inverse flow intermediates reach 11.75× the
//	input magnitude per pass, far past int16 even at Q0); the multiplies
//	use one 64-bit multiply per field (mulI2), which removes the shared-
//	multiply product ceiling that would otherwise force a descale. The
//	canonical bias widens b22 → b26 between passes to cover the growth.
//	|in| ≤ 1030 as in dct_int.go.
//
// Accuracy contract: same shape as the int tier's — quantised levels
// match the AAN set within ±1 and only on rounding boundaries
// (TestInt4xQuantLevelEquivalence), end-to-end PSNR parity
// (TestEncodePSNRParityWithInt4x). A hostile bitstream can push
// dequantised coefficients outside the idct contract; lanes then wrap and
// reconstruct garbage pixels, clamped like every other tier — no memory
// unsafety, same class as int32 overflow in dct_int.go.
const (
	lane4 = 0x0001_0001_0001_0001 // ×k replicates k into four 16-bit lanes
	lane2 = 0x0000_0001_0000_0001 // ×k replicates k into two 32-bit fields

	evn16 = 0x0000_FFFF_0000_FFFF // even 16-bit lanes as 32-bit fields
	fld20 = 0x000F_FFFF_000F_FFFF // low 20 bits of each 32-bit field

	b14 = 1 << 14 // canonical 16-bit lane bias (fdct rows)
	b18 = 1 << 18 // canonical field bias (fdct cols)

	// Q14 rotation constants (fdct row pass).
	c14F1 = 11585 // aanF1·2^14
	c14F2 = 6270  // aanF2·2^14
	c14F3 = 8867  // aanF3·2^14
	c14F4 = 21407 // aanF4·2^14
	// Q12 rotation constants (fdct column pass).
	c12F1 = 2896 // aanF1·2^12
	c12F2 = 1567 // aanF2·2^12
	c12F3 = 2217 // aanF3·2^12
	c12F4 = 5352 // aanF4·2^12
	// The idct reuses dct_int.go's Q15 constants; cI4 is negative, so the
	// packed flow applies its magnitude and folds the sign into the
	// butterfly (see idctLine2/idct8Lane).
	cI4m = -cI4 // |aanI4|·2^15

	b22 = 1 << 22 // canonical field bias, idct pass 1
	b26 = 1 << 26 // canonical field bias, idct pass 2

	pk4b14 = b14 * lane4 // pack4(b14)
	pk2b18 = b18 * lane2
	pk2b22 = b22 * lane2
	pk2b26 = b26 * lane2
	mh14   = (1 << 13) * lane2 // per-field rounding half for ≫14
	mh12   = (1 << 11) * lane2 // per-field rounding half for ≫12
)

// pk4 packs a (possibly negative) per-lane adjustment into four 16-bit
// lanes. Negative values rely on two's-complement wraparound: adding
// pk4(-k) is exactly subtracting pk4(k) mod 2⁶⁴, and the per-lane
// no-borrow proofs in the flow make the wraparound invisible.
func pk4(v int64) uint64 { return uint64(v) * lane4 }

// pk2 packs a per-field adjustment into two 32-bit fields (same
// wraparound argument as pk4).
func pk2(v int64) uint64 { return uint64(v) * lane2 }

// add4 adds two bias-b14 4-lane words; result bias b14.
func add4(a, b uint64) uint64 { return a + b - pk4b14 }

// sub4 subtracts two bias-b14 4-lane words; result bias b14.
func sub4(a, b uint64) uint64 { return a + pk4b14 - b }

// mul4 multiplies the four bias-b14 lanes of w by the Q14 constant c and
// renormalises: the bias image after ·c≫14 is exactly c (2¹⁴ divides
// b14·c), so post = pk4(b14 − c) restores the canonical bias with no
// pre-adjustment. Operand lanes must satisfy |v| ≤ 2^13 so lanes stay
// positive and the biased field product stays under 2³² — every mul
// operand in the flow graphs below is bounded by 8×input, well inside.
func mul4(w, c, post uint64) uint64 {
	lo := (((w & evn16) * c) + mh14) >> 14 & evn16
	hi := ((((w >> 16) & evn16) * c) + mh14) >> 14 & evn16
	return (lo | hi<<16) + post
}

// add2 adds two 2-field words of canonical bias pb (pk2 of the pass's
// canonical bias); result keeps that bias.
func add2(a, b, pb uint64) uint64 { return a + b - pb }

// sub2 subtracts two 2-field words of canonical bias pb.
func sub2(a, b, pb uint64) uint64 { return a + pb - b }

// mul2 multiplies both 32-bit fields of w by the Q12 constant c in one
// uint64 multiply, straight at the canonical bias b18: operands are
// ≤ 4×pass input ≈ 6·10⁴, so (v+b18)·c < 2³² for every c here and the
// bias image 64c is exact (2¹² | b18·c); post = pk2(b18 − 64c).
func mul2(w, c, post uint64) uint64 {
	p := w*c + mh12
	return (p >> 12 & fld20) + post
}

// mulI2 multiplies both 32-bit fields of w by a Q15 constant with one
// 64-bit multiply PER FIELD. The idct's intermediates are too wide for
// the shared-multiply trick (field·c must stay under 2³²), but isolating
// each field in its own word removes the ceiling entirely — which is what
// lets the packed inverse carry Q8 end-to-end with the Q15 constants of
// dct_int.go instead of degrading precision. Fields multiply at the
// pass's canonical bias (biased field · c < 2⁶³ comfortably); the bias
// image B·c≫15 is exact for the power-of-two canonical biases, and post
// renormalises it back.
func mulI2(w, c, post uint64) uint64 {
	lo := ((w&0xFFFF_FFFF)*c + intHalf) >> intConstBits
	hi := ((w>>32)*c + intHalf) >> intConstBits
	return (lo | hi<<32) + post
}

// Post-normalisation constants (computed once; several are negative and
// live as wrapped uint64 adjustments, see pk4/pk2).
var (
	postF1q14 = pk4(b14 - c14F1)
	postF2q14 = pk4(b14 - c14F2)
	postF3q14 = pk4(b14 - c14F3)
	postF4q14 = pk4(b14 - c14F4)

	postF1c = pk2(b18 - 64*c12F1)
	postF2c = pk2(b18 - 64*c12F2)
	postF3c = pk2(b18 - 64*c12F3)
	postF4c = pk2(b18 - 64*c12F4)

	// idct pass 1: canonical bias b22, whose image through ·c≫15 is 128c.
	postI1a = pk2(b22 - 128*cI1)
	postI2a = pk2(b22 - 128*cI2)
	postI3a = pk2(b22 - 128*cI3)
	postI4a = pk2(b22 - 128*cI4m)
	// idct pass 2: canonical bias b26, image 2048c.
	postI1b = pk2(b26 - 2048*cI1)
	postI2b = pk2(b26 - 2048*cI2)
	postI3b = pk2(b26 - 2048*cI3)
	postI4b = pk2(b26 - 2048*cI4m)
)

// fdct8x4 computes fdct8's flow graph for four blocks at once, one lane
// per block. Output is the same scaled coefficient domain as fdct8Int's
// (AAN diagonal scales; quant tables identical). |in| ≤ 380 per sample.
func fdct8x4(in *[4][64]float32, out *[4][64]float32) {
	// Pack: Q2 + bias in one float step — int32(x·4 + (b14+0.5)) is both
	// the round-half-up quantiser and the bias add, branch-free. It stays
	// float32 for speed (this loop is a third of the op in float64); the
	// 2⁻⁹ ulp at the biased magnitude can flip ties, but the scalar lane
	// uses the IDENTICAL expression, so packed/lane bit-identity holds by
	// construction and the tie noise is far below the Q2 step. The pack is
	// fused into the row pass so each freshly packed word feeds its
	// butterfly straight from registers instead of round-tripping through
	// the scratch array.
	var w [64]uint64
	for y := 0; y < 8; y++ {
		b0 := in[0][y*8 : y*8+8]
		b1 := in[1][y*8 : y*8+8]
		b2 := in[2][y*8 : y*8+8]
		b3 := in[3][y*8 : y*8+8]
		_ = b0[7]
		_ = b1[7]
		_ = b2[7]
		_ = b3[7]
		pack1 := func(x int) uint64 {
			s0 := uint64(uint16(int32(b0[x]*4 + (b14 + 0.5))))
			s1 := uint64(uint16(int32(b1[x]*4 + (b14 + 0.5))))
			s2 := uint64(uint16(int32(b2[x]*4 + (b14 + 0.5))))
			s3 := uint64(uint16(int32(b3[x]*4 + (b14 + 0.5))))
			return s0 | s1<<16 | s2<<32 | s3<<48
		}
		p0, p1, p2, p3 := pack1(0), pack1(1), pack1(2), pack1(3)
		p4, p5, p6, p7 := pack1(4), pack1(5), pack1(6), pack1(7)
		// Rows: 16-bit lanes, Q14 constants.
		r := w[y*8 : y*8+8]
		tmp0, tmp7 := add4(p0, p7), sub4(p0, p7)
		tmp1, tmp6 := add4(p1, p6), sub4(p1, p6)
		tmp2, tmp5 := add4(p2, p5), sub4(p2, p5)
		tmp3, tmp4 := add4(p3, p4), sub4(p3, p4)

		tmp10, tmp13 := add4(tmp0, tmp3), sub4(tmp0, tmp3)
		tmp11, tmp12 := add4(tmp1, tmp2), sub4(tmp1, tmp2)
		r[0] = add4(tmp10, tmp11)
		r[4] = sub4(tmp10, tmp11)
		z1 := mul4(add4(tmp12, tmp13), c14F1, postF1q14)
		r[2] = add4(tmp13, z1)
		r[6] = sub4(tmp13, z1)

		tmp10 = add4(tmp4, tmp5)
		tmp11 = add4(tmp5, tmp6)
		tmp12 = add4(tmp6, tmp7)
		z5 := mul4(sub4(tmp10, tmp12), c14F2, postF2q14)
		z2 := add4(mul4(tmp10, c14F3, postF3q14), z5)
		z4 := add4(mul4(tmp12, c14F4, postF4q14), z5)
		z3 := mul4(tmp11, c14F1, postF1q14)
		z11, z13 := add4(tmp7, z3), sub4(tmp7, z3)
		r[5] = add4(z13, z2)
		r[3] = sub4(z13, z2)
		r[1] = add4(z11, z4)
		r[7] = sub4(z11, z4)
	}
	// Column pass over 32-bit fields: lo carries blocks 0 and 2, hi
	// carries 1 and 3. The widen (16-bit lanes → fields, bias b14 → b18)
	// is fused into fdctCols2's first butterfly loads — a separate widen
	// pass costs 128 extra stores+loads on the hot path — and both field
	// pairs advance through one loop so each row-pass word is loaded once.
	var lo, hi [64]uint64
	fdctCols2(&lo, &hi, &w)
	// Unpack. Output stays at Q2 — the ×4 is folded into the set's
	// fwdScale (and so into the quant tables), saving 256 multiplies here.
	for i := 0; i < 64; i++ {
		out[0][i] = float32(int32(uint32(lo[i])) - b18)
		out[2][i] = float32(int32(lo[i]>>32) - b18)
		out[1][i] = float32(int32(uint32(hi[i])) - b18)
		out[3][i] = float32(int32(hi[i]>>32) - b18)
	}
}

// fdctCols2 runs the fdct column pass over both 32-bit-field lane pairs
// (canonical bias b18, Q12 constants), widening on the fly: the first
// butterfly stage loads 16-bit lanes straight out of the row-pass words
// (the even lanes feed lo, the odd lanes hi) and lifts the bias b14 → b18.
// fdctCol1 is one column of one pair; the [x : x+57] reslices pin the
// strided c[0]..c[56] accesses under a single bounds check each.
func fdctCols2(lo, hi, w *[64]uint64) {
	const lift = uint64(b18-b14) * lane2
	for x := 0; x < 8; x++ {
		r := w[x : x+57]
		w0, w1, w2, w3 := r[0], r[8], r[16], r[24]
		w4, w5, w6, w7 := r[32], r[40], r[48], r[56]
		fdctCol1(lo[x:x+57],
			w0&evn16+lift, w1&evn16+lift, w2&evn16+lift, w3&evn16+lift,
			w4&evn16+lift, w5&evn16+lift, w6&evn16+lift, w7&evn16+lift)
		fdctCol1(hi[x:x+57],
			w0>>16&evn16+lift, w1>>16&evn16+lift, w2>>16&evn16+lift, w3>>16&evn16+lift,
			w4>>16&evn16+lift, w5>>16&evn16+lift, w6>>16&evn16+lift, w7>>16&evn16+lift)
	}
}

func fdctCol1(c []uint64, i0, i1, i2, i3, i4, i5, i6, i7 uint64) {
	_ = c[56]
	tmp0, tmp7 := add2(i0, i7, pk2b18), sub2(i0, i7, pk2b18)
	tmp1, tmp6 := add2(i1, i6, pk2b18), sub2(i1, i6, pk2b18)
	tmp2, tmp5 := add2(i2, i5, pk2b18), sub2(i2, i5, pk2b18)
	tmp3, tmp4 := add2(i3, i4, pk2b18), sub2(i3, i4, pk2b18)

	tmp10, tmp13 := add2(tmp0, tmp3, pk2b18), sub2(tmp0, tmp3, pk2b18)
	tmp11, tmp12 := add2(tmp1, tmp2, pk2b18), sub2(tmp1, tmp2, pk2b18)
	c[0] = add2(tmp10, tmp11, pk2b18)
	c[32] = sub2(tmp10, tmp11, pk2b18)
	z1 := mul2(add2(tmp12, tmp13, pk2b18), c12F1, postF1c)
	c[16] = add2(tmp13, z1, pk2b18)
	c[48] = sub2(tmp13, z1, pk2b18)

	tmp10 = add2(tmp4, tmp5, pk2b18)
	tmp11 = add2(tmp5, tmp6, pk2b18)
	tmp12 = add2(tmp6, tmp7, pk2b18)
	z5 := mul2(sub2(tmp10, tmp12, pk2b18), c12F2, postF2c)
	z2 := add2(mul2(tmp10, c12F3, postF3c), z5, pk2b18)
	z4 := add2(mul2(tmp12, c12F4, postF4c), z5, pk2b18)
	z3 := mul2(tmp11, c12F1, postF1c)
	z11, z13 := add2(tmp7, z3, pk2b18), sub2(tmp7, z3, pk2b18)
	c[40] = add2(z13, z2, pk2b18)
	c[24] = sub2(z13, z2, pk2b18)
	c[8] = add2(z11, z4, pk2b18)
	c[56] = sub2(z11, z4, pk2b18)
}

// idct8x4 computes idct8's flow graph for four blocks at once, two 32-bit
// fields per word. Input is the scaled coefficient domain (dequantised,
// |in| ≤ ~10³ like idct8Int); output is the reconstruction. Arithmetic is
// Q8 with Q15 constants end-to-end — same precision class as idct8Int.
func idct8x4(in *[4][64]float32, out *[4][64]float32) {
	// Pack at Q8, bias b22; lo carries blocks 0/2, hi 1/3.
	var lo, hi [64]uint64
	for i := 0; i < 64; i++ {
		s0 := uint64(uint32(int32(float64(in[0][i])*256 + (b22 + 0.5))))
		s1 := uint64(uint32(int32(float64(in[1][i])*256 + (b22 + 0.5))))
		s2 := uint64(uint32(int32(float64(in[2][i])*256 + (b22 + 0.5))))
		s3 := uint64(uint32(int32(float64(in[3][i])*256 + (b22 + 0.5))))
		lo[i] = s0 | s2<<32
		hi[i] = s1 | s3<<32
	}
	idctPass2(&lo)
	idctPass2(&hi)
	const invQ8 = float32(1) / 256
	for i := 0; i < 64; i++ {
		out[0][i] = float32(int32(uint32(lo[i]))-b26) * invQ8
		out[2][i] = float32(int32(lo[i]>>32)-b26) * invQ8
		out[1][i] = float32(int32(uint32(hi[i]))-b26) * invQ8
		out[3][i] = float32(int32(hi[i]>>32)-b26) * invQ8
	}
}

// idctPass2 runs both idct passes over one two-field lane pair, Q8
// throughout: columns at bias b22, rows at bias b26 (pass-2 intermediates
// reach ~11.75² × the input magnitude, so the canonical bias widens
// between passes instead of the values descaling).
func idctPass2(a *[64]uint64) {
	// Columns (bias b22).
	for x := 0; x < 8; x++ {
		c := a[x:]
		o0, o1, o2, o3, o4, o5, o6, o7 := idctLine2(
			c[0], c[8], c[16], c[24], c[32], c[40], c[48], c[56],
			pk2b22, postI1a, postI2a, postI3a, postI4a)
		c[0], c[8], c[16], c[24] = o0, o1, o2, o3
		c[32], c[40], c[48], c[56] = o4, o5, o6, o7
	}
	// Lift the canonical bias b22 → b26 for the wider second pass.
	lift := pk2(b26 - b22)
	for i := 0; i < 64; i++ {
		a[i] += lift
	}
	// Rows (bias b26).
	for y := 0; y < 8; y++ {
		r := a[y*8 : y*8+8]
		o0, o1, o2, o3, o4, o5, o6, o7 := idctLine2(
			r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7],
			pk2b26, postI1b, postI2b, postI3b, postI4b)
		r[0], r[1], r[2], r[3] = o0, o1, o2, o3
		r[4], r[5], r[6], r[7] = o4, o5, o6, o7
	}
}

// idctLine2 is one 1-D inverse AAN butterfly over two 32-bit fields, Q15
// constants via mulI2. aanI4 is negative; the packed flow applies its
// magnitude cI4m and folds the sign into the butterfly (z5 − |c|·z10).
// That is NOT the same rounding as idct8Int's mulQ15(z10, cI4) + z5 —
// (−x+h)≫s ≠ −((x−h)≫s) in general — so the scalar lane (idctLaneLine)
// mirrors the packed order literally: z5 − mulQ15(z10, cI4m).
func idctLine2(i0, i1, i2, i3, i4, i5, i6, i7, pb, post1, post2, post3, post4 uint64,
) (o0, o1, o2, o3, o4, o5, o6, o7 uint64) {
	tmp10 := add2(i0, i4, pb)
	tmp11 := sub2(i0, i4, pb)
	tmp13 := add2(i2, i6, pb)
	tmp12 := sub2(mulI2(sub2(i2, i6, pb), cI1, post1), tmp13, pb)
	tmp0, tmp3 := add2(tmp10, tmp13, pb), sub2(tmp10, tmp13, pb)
	tmp1, tmp2 := add2(tmp11, tmp12, pb), sub2(tmp11, tmp12, pb)

	z13 := add2(i5, i3, pb)
	z10 := sub2(i5, i3, pb)
	z11 := add2(i1, i7, pb)
	z12 := sub2(i1, i7, pb)
	tmp7 := add2(z11, z13, pb)
	tmp11 = mulI2(sub2(z11, z13, pb), cI1, post1)
	z5 := mulI2(add2(z10, z12, pb), cI2, post2)
	tmp10 = sub2(mulI2(z12, cI3, post3), z5, pb)
	tmp12 = sub2(z5, mulI2(z10, cI4m, post4), pb)
	tmp6 := sub2(tmp12, tmp7, pb)
	tmp5 := sub2(tmp11, tmp6, pb)
	tmp4 := add2(tmp10, tmp5, pb)

	return add2(tmp0, tmp7, pb),
		add2(tmp1, tmp6, pb),
		add2(tmp2, tmp5, pb),
		sub2(tmp3, tmp4, pb),
		add2(tmp3, tmp4, pb),
		sub2(tmp2, tmp5, pb),
		sub2(tmp1, tmp6, pb),
		sub2(tmp0, tmp7, pb)
}

// mulL14/mulL12 are the scalar-lane twins of mul4/mul2: same constant,
// same rounding half, same floor shift. Products stay inside int32 for
// every in-contract operand (≤ 2^17·2^13.4 ≈ 2^30.4 worst case).
func mulL14(v, c int32) int32 { return (v*c + 1<<13) >> 14 }
func mulL12(v, c int32) int32 { return (v*c + 1<<11) >> 12 }

// fdct8Lane is exactly one lane of fdct8x4 in scalar int32 arithmetic —
// the bit-identity reference for the packed forward transform, and the
// single-block fdct of the packed tier's transformSet.
func fdct8Lane(in, out *[64]float32) {
	var blk [64]int32
	for i := range blk {
		blk[i] = int32(in[i]*4+(b14+0.5)) - b14
	}
	// Rows (Q14 constants).
	for y := 0; y < 8; y++ {
		r := blk[y*8 : y*8+8]
		tmp0, tmp7 := r[0]+r[7], r[0]-r[7]
		tmp1, tmp6 := r[1]+r[6], r[1]-r[6]
		tmp2, tmp5 := r[2]+r[5], r[2]-r[5]
		tmp3, tmp4 := r[3]+r[4], r[3]-r[4]

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		r[0] = tmp10 + tmp11
		r[4] = tmp10 - tmp11
		z1 := mulL14(tmp12+tmp13, c14F1)
		r[2] = tmp13 + z1
		r[6] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := mulL14(tmp10-tmp12, c14F2)
		z2 := mulL14(tmp10, c14F3) + z5
		z4 := mulL14(tmp12, c14F4) + z5
		z3 := mulL14(tmp11, c14F1)
		z11, z13 := tmp7+z3, tmp7-z3
		r[5] = z13 + z2
		r[3] = z13 - z2
		r[1] = z11 + z4
		r[7] = z11 - z4
	}
	// Columns (Q12 constants).
	for x := 0; x < 8; x++ {
		c := blk[x:]
		tmp0, tmp7 := c[0]+c[56], c[0]-c[56]
		tmp1, tmp6 := c[8]+c[48], c[8]-c[48]
		tmp2, tmp5 := c[16]+c[40], c[16]-c[40]
		tmp3, tmp4 := c[24]+c[32], c[24]-c[32]

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		c[0] = tmp10 + tmp11
		c[32] = tmp10 - tmp11
		z1 := mulL12(tmp12+tmp13, c12F1)
		c[16] = tmp13 + z1
		c[48] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := mulL12(tmp10-tmp12, c12F2)
		z2 := mulL12(tmp10, c12F3) + z5
		z4 := mulL12(tmp12, c12F4) + z5
		z3 := mulL12(tmp11, c12F1)
		z11, z13 := tmp7+z3, tmp7-z3
		c[40] = z13 + z2
		c[24] = z13 - z2
		c[8] = z11 + z4
		c[56] = z11 - z4
	}
	for i := range blk {
		out[i] = float32(blk[i])
	}
}

// idct8Lane is exactly one lane of idct8x4 in scalar int32 arithmetic —
// the bit-identity reference for the packed inverse transform, and the
// single-block idct of the packed tier's transformSet. Q8 in, Q8 out,
// Q15 constants — the same precision layout as idct8Int; the only
// arithmetic difference is the negative-constant fold (see idctLaneLine).
func idct8Lane(in, out *[64]float32) {
	var blk [64]int32
	for i := range blk {
		blk[i] = int32(float64(in[i])*256+(b22+0.5)) - b22
	}
	// Columns.
	for x := 0; x < 8; x++ {
		c := blk[x:]
		o0, o1, o2, o3, o4, o5, o6, o7 := idctLaneLine(
			c[0], c[8], c[16], c[24], c[32], c[40], c[48], c[56])
		c[0], c[8], c[16], c[24] = o0, o1, o2, o3
		c[32], c[40], c[48], c[56] = o4, o5, o6, o7
	}
	// Rows.
	for y := 0; y < 8; y++ {
		r := blk[y*8 : y*8+8]
		o0, o1, o2, o3, o4, o5, o6, o7 := idctLaneLine(
			r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7])
		r[0], r[1], r[2], r[3] = o0, o1, o2, o3
		r[4], r[5], r[6], r[7] = o4, o5, o6, o7
	}
	const invQ8 = float32(1) / 256
	for i := range blk {
		out[i] = float32(blk[i]) * invQ8
	}
}

// idctLaneLine is one scalar 1-D inverse butterfly, Q15 constants. tmp12
// mirrors the packed sign fold (z5 − mulQ15(z10, cI4m)) rather than
// idct8Int's mulQ15(z10, cI4) + z5; the two differ by at most one ulp of
// the ≫15 rounding, inside the tier's accuracy contract.
func idctLaneLine(i0, i1, i2, i3, i4, i5, i6, i7 int32,
) (o0, o1, o2, o3, o4, o5, o6, o7 int32) {
	tmp10 := i0 + i4
	tmp11 := i0 - i4
	tmp13 := i2 + i6
	tmp12 := mulQ15(i2-i6, cI1) - tmp13
	tmp0, tmp3 := tmp10+tmp13, tmp10-tmp13
	tmp1, tmp2 := tmp11+tmp12, tmp11-tmp12

	z13 := i5 + i3
	z10 := i5 - i3
	z11 := i1 + i7
	z12 := i1 - i7
	tmp7 := z11 + z13
	tmp11 = mulQ15(z11-z13, cI1)
	z5 := mulQ15(z10+z12, cI2)
	tmp10 = mulQ15(z12, cI3) - z5
	tmp12 = z5 - mulQ15(z10, cI4m)
	tmp6 := tmp12 - tmp7
	tmp5 := tmp11 - tmp6
	tmp4 := tmp10 + tmp5

	return tmp0 + tmp7, tmp1 + tmp6, tmp2 + tmp5, tmp3 - tmp4,
		tmp3 + tmp4, tmp2 - tmp5, tmp1 - tmp6, tmp0 - tmp7
}

// int4xTransforms returns the packed-lane transform set: scalar lane
// transforms as the single-block entries (the bit-identity twins of the
// packed pair) and fdct8x4/idct8x4 as the batch entries the macroblock
// coders use. Diagonal scales are the AAN set's — the Q14/Q12 constants
// approximate the same flow graph — so quant tables and bitstreams stay
// interchangeable with every other set.
func int4xTransforms() transformSet {
	a := aanTransforms()
	// The forward pair emits Q2 (4× the AAN coefficient domain) so the
	// unpack loop skips its descale multiplies; fwdScale absorbs the 4
	// and the folded quant tables keep levels — and bitstreams —
	// interchangeable with every other set.
	fwd := a.fwdScale
	for i := range fwd {
		fwd[i] *= 4
	}
	ts := newTransformSet(fdct8Lane, idct8Lane, fwd, a.invScale)
	ts.fdct4x = fdct8x4
	ts.idct4x = idct8x4
	return ts
}
