package sr

import (
	"testing"

	"nerve/internal/par"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// upscaleClip runs a fresh SuperResolver over the clip at the given pool
// size, exercising the temporal-fusion path from the second frame on.
func upscaleClip(lr []*vmath.Plane, workers int) []*vmath.Plane {
	defer par.SetWorkers(workers)()
	s := New(Config{OutW: gtW, OutH: gtH})
	out := make([]*vmath.Plane, len(lr))
	for i, f := range lr {
		out[i] = s.Upscale(f)
	}
	return out
}

// TestUpscaleParallelBitExact is the SR differential test of the
// concurrency model: the full stateful Upscale stream — bicubic base,
// flow-aligned temporal fusion, back-projection, detail head — must be
// byte-identical for any pool size. Temporal state feeds forward, so a
// single diverging pixel would compound across the clip and fail loudly.
func TestUpscaleParallelBitExact(t *testing.T) {
	_, lr := clipPair(video.Categories()[0], 5, 10, 6, lrW, lrH)

	want := upscaleClip(lr, 1)
	for _, workers := range []int{2, 8} {
		got := upscaleClip(lr, workers)
		for fi := range want {
			for i := range want[fi].Pix {
				if got[fi].Pix[i] != want[fi].Pix[i] {
					t.Fatalf("workers=%d frame %d: differs at pixel %d: %v vs %v",
						workers, fi, i, got[fi].Pix[i], want[fi].Pix[i])
				}
			}
		}
	}
}

// TestUpscaleBaselinesParallelBitExact covers the stateless Fig. 10/11
// baselines.
func TestUpscaleBaselinesParallelBitExact(t *testing.T) {
	_, lr := clipPair(video.Categories()[1], 6, 0, 1, lrW, lrH)

	restore := par.SetWorkers(1)
	wantBil := UpscaleBilinear(lr[0], gtW, gtH)
	wantBic := UpscaleBicubic(lr[0], gtW, gtH)
	restore()
	for _, workers := range []int{2, 8} {
		restore := par.SetWorkers(workers)
		gotBil := UpscaleBilinear(lr[0], gtW, gtH)
		gotBic := UpscaleBicubic(lr[0], gtW, gtH)
		restore()
		for i := range wantBil.Pix {
			if gotBil.Pix[i] != wantBil.Pix[i] {
				t.Fatalf("workers=%d: bilinear differs at pixel %d", workers, i)
			}
			if gotBic.Pix[i] != wantBic.Pix[i] {
				t.Fatalf("workers=%d: bicubic differs at pixel %d", workers, i)
			}
		}
	}
}

func benchUpscale(b *testing.B, workers int) {
	defer par.SetWorkers(workers)()
	g := video.NewGenerator(video.Categories()[0], 1)
	lr := vmath.ResizeBilinear(g.Render(0, 480, 270), 120, 68)
	s := New(Config{OutW: 480, OutH: 270})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Upscale(lr)
	}
}

// BenchmarkUpscale is the sequential baseline (pool pinned to 1).
func BenchmarkUpscale(b *testing.B) { benchUpscale(b, 1) }

// BenchmarkUpscaleParallel runs the same upscale on the full pool; run with
// -cpu 1,4 to see the scaling. BenchmarkUpscale4x (sr_test.go) also uses
// the full pool.
func BenchmarkUpscaleParallel(b *testing.B) { benchUpscale(b, 0) }
