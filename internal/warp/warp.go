// Package warp implements backward warping with bilinear sampling — the
// motion-compensation step of both the recovery and SR pipelines. On the
// paper's iPhone deployment this is the custom Metal grid-sample layer run
// at 270p (§7); here the cost model in internal/device charges the
// corresponding latencies.
//
// BackwardInto and BackwardPlaneInto are the destination-passing forms used
// by the per-frame pipeline with pooled planes (vmath.Get/Put); Backward
// and BackwardPlane allocate and remain for tests and cold paths. In all
// of them the destinations must not alias src.
package warp

import (
	"fmt"

	"nerve/internal/flow"
	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// BackwardInto warps src by the flow field into out, and writes the hole
// mask into valid: out(x, y) = src(x + U, y + V). The field and both
// destinations must match src's dimensions; out and valid must not alias
// src. Every pixel of both destinations is written (valid gets an explicit
// 0 or 1), so they may come dirty from the pool. The valid mask is 1 where
// the sample fell inside src and the flow confidence is adequate, and 0
// where the warp had no reliable source (out of bounds or low confidence) —
// the regions the inpainting branch must fill.
func BackwardInto(out, valid *vmath.Plane, src *vmath.Plane, f *flow.Field, confThreshold float32) {
	defer telemetry.Start(telemetry.StageWarp).Stop()
	if src.W != f.W || src.H != f.H {
		panic(fmt.Sprintf("warp: plane %dx%d vs field %dx%d", src.W, src.H, f.W, f.H))
	}
	if out.W != src.W || out.H != src.H || valid.W != src.W || valid.H != src.H {
		panic(fmt.Sprintf("warp: dst %dx%d/%dx%d vs src %dx%d", out.W, out.H, valid.W, valid.H, src.W, src.H))
	}
	// Each output pixel reads only src and the flow field, so row bands run
	// on the pool with pool-size-independent results.
	par.ForRows(src.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < src.W; x++ {
				i := y*src.W + x
				sx := float32(x) + f.U[i]
				sy := float32(y) + f.V[i]
				out.Pix[i] = src.SampleBilinear(sx, sy)
				inBounds := sx >= -0.5 && sy >= -0.5 && sx <= float32(src.W)-0.5 && sy <= float32(src.H)-0.5
				if inBounds && f.Conf[i] >= confThreshold {
					valid.Pix[i] = 1
				} else {
					valid.Pix[i] = 0
				}
			}
		}
	})
}

// Backward warps src by the flow field: out(x, y) = src(x + U, y + V).
// The field must match src's dimensions. See BackwardInto for the meaning
// of the returned hole mask.
func Backward(src *vmath.Plane, f *flow.Field, confThreshold float32) (out, valid *vmath.Plane) {
	out = vmath.NewPlane(src.W, src.H)
	valid = vmath.NewPlane(src.W, src.H)
	BackwardInto(out, valid, src, f, confThreshold)
	return out, valid
}

// BackwardPlaneInto warps src by explicit per-pixel offset planes (u, v)
// into dst, with no confidence handling. dst must match src's size and not
// alias it.
func BackwardPlaneInto(dst, src, u, v *vmath.Plane) *vmath.Plane {
	if src.W != u.W || src.H != u.H || src.W != v.W || src.H != v.H {
		panic("warp: offset plane size mismatch")
	}
	if dst.W != src.W || dst.H != src.H {
		panic("warp: dst plane size mismatch")
	}
	par.ForRows(src.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < src.W; x++ {
				i := y*src.W + x
				dst.Pix[i] = src.SampleBilinear(float32(x)+u.Pix[i], float32(y)+v.Pix[i])
			}
		}
	})
	return dst
}

// BackwardPlane warps src by explicit per-pixel offset planes (u, v) with
// no confidence handling; used by tests and simple callers.
func BackwardPlane(src, u, v *vmath.Plane) *vmath.Plane {
	return BackwardPlaneInto(vmath.NewPlane(src.W, src.H), src, u, v)
}
