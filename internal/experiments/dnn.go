package experiments

import (
	"fmt"
	"math"

	"nerve/internal/codec"
	"nerve/internal/device"
	"nerve/internal/edgecode"
	"nerve/internal/metrics"
	"nerve/internal/qoe"
	"nerve/internal/recovery"
	"nerve/internal/sim"
	"nerve/internal/sr"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// dnnGeometry returns the working geometry of the DNN-level experiments:
// the display resolution stands in for 1080p; the ladder rungs scale
// proportionally.
func dnnGeometry(opts Options) (dispW, dispH int) {
	if opts.Quick {
		return 256, 144
	}
	return 854, 480
}

// rungDims scales ladder rung r into the working display geometry.
func rungDims(r video.Resolution, dispW, dispH int) (int, int) {
	_, rh := r.Dims()
	scale := float64(rh) / 1080
	w := int(float64(dispW)*scale+0.5) &^ 1
	h := int(float64(dispH)*scale+0.5) &^ 1
	if w < 16 {
		w = 16
	}
	if h < 16 {
		h = 16
	}
	return w, h
}

// testClips returns the evaluation clip sources. Quick mode picks the
// motion-heavy categories (Vlogs, GamePlay, Challenges) whose dynamics
// resemble the REDS clips the paper evaluates on.
func testClips(opts Options) []video.ClipSource {
	d := video.NewDataset()
	if opts.Quick {
		return []video.ClipSource{d.Test[2], d.Test[3], d.Test[6]}
	}
	// Full mode leads with the dynamic categories, then the rest.
	order := []int{2, 3, 6, 4, 0, 1, 5, 7, 8, 9}
	out := make([]video.ClipSource, 0, len(order))
	for _, i := range order {
		out = append(out, d.Test[i])
	}
	return out
}

// chainMode names the three recovery schemes of Figs. 7/8.
type chainMode int

const (
	modeReuse chainMode = iota
	modeNoCode
	modeHinted
)

func (m chainMode) String() string {
	switch m {
	case modeReuse:
		return "reuse"
	case modeNoCode:
		return "w/o point map"
	default:
		return "our"
	}
}

// runChain predicts `steps` consecutive frames of a clip starting at
// `start` under the given mode, optionally feeding a partial observation
// covering partFrac of each frame's rows, and returns mean PSNR and SSIM
// plus the per-step PSNR curve.
func runChain(src video.ClipSource, mode chainMode, start, steps, w, h int, partFrac float64) (meanPSNR, meanSSIM float64, perStep []float64) {
	g := src.Generator()
	ext := edgecode.NewExtractor(0, 0)
	r := recovery.New(recovery.Config{OutW: w, OutH: h})

	prevPrev := g.Render(start-2, w, h)
	prev := g.Render(start-1, w, h)
	prevCode := ext.Extract(prev)

	var s metrics.Series
	for k := 0; k < steps; k++ {
		truth := g.Render(start+k, w, h)
		var part, mask *vmath.Plane
		if partFrac > 0 {
			part = vmath.NewPlane(w, h)
			mask = vmath.NewPlane(w, h)
			rows := int(partFrac * float64(h))
			// The received part alternates top/bottom per step, as slice
			// losses do.
			off := 0
			if k%2 == 1 {
				off = h - rows
			}
			for y := off; y < off+rows; y++ {
				for x := 0; x < w; x++ {
					part.Set(x, y, truth.At(x, y))
					mask.Set(x, y, 1)
				}
			}
		}
		var out *vmath.Plane
		switch mode {
		case modeHinted:
			curCode := ext.Extract(truth)
			out = r.Recover(recovery.Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: curCode, Part: part, PartMask: mask})
			prevCode = curCode
		case modeNoCode:
			out = r.Recover(recovery.Input{Prev: prev, PrevPrev: prevPrev, Part: part, PartMask: mask})
		default:
			out = r.Reuse(prev)
			if part != nil {
				out = out.Clone()
				for i := range out.Pix {
					if mask.Pix[i] > 0.5 {
						out.Pix[i] = part.Pix[i]
					}
				}
			}
		}
		p := metrics.PSNR(truth, out)
		s.Observe(p, metrics.SSIM(truth, out))
		perStep = append(perStep, math.Min(p, 100))
		prevPrev = prev
		prev = out
	}
	return s.MeanPSNR(), s.MeanSSIM(), perStep
}

// chainHorizons are the Fig. 7/8 prediction horizons.
var chainHorizons = []int{5, 10, 20, 50}

// figChains produces the Fig. 7 (partFrac = 0) or Fig. 8 (partFrac > 0)
// result: per horizon, PSNR and SSIM for each scheme.
func figChains(opts Options, id, title string, partFrac float64) (*Series, *Series) {
	horizons := chainHorizons
	if opts.Quick {
		horizons = []int{5, 10, 20}
	}
	modes := []chainMode{modeReuse, modeNoCode, modeHinted}
	w, h := 160, 96
	if !opts.Quick {
		w, h = 320, 180
	}
	clips := testClips(opts)

	psnr := &Series{ID: id, Title: title + " (PSNR)", XLabel: "frames", X: f64s(horizons)}
	ssim := &Series{ID: id, Title: title + " (SSIM)", XLabel: "frames", X: f64s(horizons)}
	for _, m := range modes {
		psnr.Columns = append(psnr.Columns, m.String())
		ssim.Columns = append(ssim.Columns, m.String())
		psnr.Y = append(psnr.Y, make([]float64, len(horizons)))
		ssim.Y = append(ssim.Y, make([]float64, len(horizons)))
	}
	// Every (mode, horizon, clip) cell is independent: fan out.
	type cell struct {
		mi, hi, ci int
	}
	var cells []cell
	for mi := range modes {
		for hi := range horizons {
			for ci := range clips {
				cells = append(cells, cell{mi, hi, ci})
			}
		}
	}
	// Workers write per-cell slots; the reduction over clips happens
	// sequentially afterwards so summation order — and thus the result —
	// is independent of worker scheduling.
	pCell := make([]float64, len(cells))
	sCell := make([]float64, len(cells))
	mustParallelFor(len(cells), func(i int) {
		c := cells[i]
		pCell[i], sCell[i], _ = runChain(clips[c.ci], modes[c.mi], 40+10*c.ci, horizons[c.hi], w, h, partFrac)
	})
	for i, c := range cells {
		psnr.Y[c.mi][c.hi] += pCell[i] / float64(len(clips))
		ssim.Y[c.mi][c.hi] += sCell[i] / float64(len(clips))
	}
	return psnr, ssim
}

// Fig7 reproduces the full-frame prediction comparison.
func Fig7(opts Options) (*Series, *Series) {
	return figChains(opts, "fig7", "Video prediction quality vs consecutive recovered frames", 0)
}

// Fig8 reproduces the partial-recovery comparison (half of each frame
// received, as under WiFi slice losses).
func Fig8(opts Options) (*Series, *Series) {
	return figChains(opts, "fig8", "Partial video recovery quality", 0.5)
}

// Fig4a measures PSNR versus the number of consecutive recovered frames
// (the recovery-impact mapping function used by the enhancement-aware ABR).
func Fig4a(opts Options) *Series {
	maxSteps := 100
	w, h := 160, 96
	clips := testClips(opts)
	if opts.Quick {
		maxSteps = 24
		clips = clips[:1]
	}
	marks := []int{1, 2, 5, 10, 20, 50, 100}
	var xs []float64
	curves := make([]float64, 0, len(marks))
	acc := make(map[int]float64)
	for _, src := range clips {
		_, _, per := runChain(src, modeHinted, 50, maxSteps, w, h, 0)
		for _, m := range marks {
			if m <= len(per) {
				acc[m] += per[m-1]
			}
		}
	}
	for _, m := range marks {
		if v, ok := acc[m]; ok {
			xs = append(xs, float64(m))
			curves = append(curves, v/float64(len(clips)))
		}
	}
	return &Series{
		ID: "fig4a", Title: "PSNR vs consecutive recovered frames",
		XLabel: "consecutive", Columns: []string{"PSNR(dB)"},
		X: xs, Y: [][]float64{curves},
		Notes: []string{"graceful degradation with horizon (paper Fig. 4a)"},
	}
}

// Fig4b measures delivered PSNR versus bitrate: each ladder rung is encoded
// at its bitrate/scaled resolution and compared against the display-scale
// ground truth after bilinear upscale.
func Fig4b(opts Options) *Series {
	dispW, dispH := dnnGeometry(opts)
	frames := 16
	clips := testClips(opts)[:1]
	if !opts.Quick {
		frames = 48
	}
	var xs, ys []float64
	for _, r := range video.Resolutions() {
		rw, rh := rungDims(r, dispW, dispH)
		// The bitrate budget scales with the pixel ratio versus 1080p so
		// the working geometry sees an equivalent bits-per-pixel load.
		scale := float64(rw*rh) / (1920.0 * 1080.0 / 25.0) // working area is ~1/25 of full
		_ = scale
		rate := r.Bitrate() * float64(dispW*dispH) / (1920 * 1080)
		var s metrics.Series
		for _, src := range clips {
			g := src.Generator()
			enc := codec.NewEncoder(codec.Config{W: rw, H: rh, GOP: 30, TargetBitrate: rate})
			dec := codec.NewDecoder(codec.Config{W: rw, H: rh})
			for i := 0; i < frames; i++ {
				truth := g.Render(i, dispW, dispH)
				lr := vmath.ResizeBilinear(truth, rw, rh)
				ef := enc.Encode(lr)
				dr, err := dec.Decode(ef, nil)
				if err != nil {
					continue
				}
				up := vmath.ResizeBilinear(dr.Frame, dispW, dispH)
				s.Observe(metrics.PSNR(truth, up), 0)
			}
		}
		xs = append(xs, r.Bitrate()/1e6)
		ys = append(ys, s.MeanPSNR())
	}
	return &Series{
		ID: "fig4b", Title: "PSNR vs bitrate (rate-quality mapping)",
		XLabel: "Mbps", Columns: []string{"PSNR(dB)"},
		X: xs, Y: [][]float64{ys},
		Notes: []string{"monotone increasing, concave (paper Fig. 4b)"},
	}
}

// Fig10 compares super-resolution against plain upsampling per input rung.
func Fig10(opts Options) (*Series, *Series) {
	dispW, dispH := dnnGeometry(opts)
	frames := 8
	clips := testClips(opts)
	if !opts.Quick {
		frames = 24
	}
	rungs := []video.Resolution{video.R240, video.R360, video.R480, video.R720}
	psnr := &Series{ID: "fig10", Title: "Super-resolution quality per input resolution (PSNR)", XLabel: "rung", Columns: []string{"upsample", "our"}}
	ssim := &Series{ID: "fig10", Title: "Super-resolution quality per input resolution (SSIM)", XLabel: "rung", Columns: []string{"upsample", "our"}}
	var upP, ourP, upS, ourS []float64
	for _, r := range rungs {
		rw, rh := rungDims(r, dispW, dispH)
		var aUp, aOur metrics.Series
		for ci, src := range clips {
			g := src.Generator()
			resolver := sr.New(sr.Config{OutW: dispW, OutH: dispH})
			for i := 0; i < frames; i++ {
				truth := g.Render(30*ci+i, dispW, dispH)
				lr := vmath.ResizeBilinear(truth, rw, rh)
				up := sr.UpscaleBilinear(lr, dispW, dispH)
				our := resolver.Upscale(lr)
				aUp.ObserveFrames(truth, up)
				aOur.ObserveFrames(truth, our)
			}
		}
		psnr.X = append(psnr.X, float64(r.Index()))
		ssim.X = append(ssim.X, float64(r.Index()))
		upP = append(upP, aUp.MeanPSNR())
		ourP = append(ourP, aOur.MeanPSNR())
		upS = append(upS, aUp.MeanSSIM())
		ourS = append(ourS, aOur.MeanSSIM())
	}
	psnr.Y = [][]float64{upP, ourP}
	ssim.Y = [][]float64{upS, ourS}
	return psnr, ssim
}

// Table1 reproduces the SR method comparison: published cost figures for
// the baselines, measured quality from the classical analogues, latency
// from the shared device model (see DESIGN.md for the substitution).
func Table1(opts Options) *Table {
	dev := device.IPhone12()
	// REDS-style evaluation: 180×320 input, 4× upscale (quick: half).
	inW, inH := 320, 180
	outW, outH := inW*4, inH*4
	frames := 6
	if opts.Quick {
		inW, inH = 80, 44
		outW, outH = inW*4, inH*4
	}
	src := testClips(opts)[0]
	g := src.Generator()
	var gt, lr []*vmath.Plane
	for i := 0; i < frames; i++ {
		f := g.Render(i, outW, outH)
		gt = append(gt, f)
		lr = append(lr, vmath.ResizeBilinear(f, inW, inH))
	}

	t := &Table{
		ID:     "tab1",
		Title:  "Super-resolution method comparison (180×320 → 4×, iPhone 12 cost model)",
		Header: []string{"method", "FLOPS(G)", "params(K)", "latency(ms)", "PSNR", "SSIM"},
		Notes: []string{
			"baseline FLOPs/params are the published Table 1 figures; quality is measured on classical analogues (DESIGN.md §1)",
			"shape: ours has the lowest FLOPs and the only real-time latency",
		},
	}
	for _, m := range sr.Methods() {
		info := m.Info()
		out := sr.RunClip(m, lr, outW, outH)
		var s metrics.Series
		for i := range gt {
			s.ObserveFrames(gt[i], out[i])
		}
		lat := dev.ModelLatency(info.FLOPsG, m == sr.MethodOurs)
		t.AddRow(info.Name,
			fmt.Sprintf("%.2f", info.FLOPsG),
			fmt.Sprintf("%.0f", info.ParamsK),
			fmt.Sprintf("%.0f", lat*1000),
			fmt.Sprintf("%.2f", s.MeanPSNR()),
			fmt.Sprintf("%.3f", s.MeanSSIM()))
	}
	return t
}

// Fig6 writes the recovery visualisation artefacts (previous frame, binary
// point code, recovered prediction, ground truth) and returns their paths.
func Fig6(opts Options) ([]string, error) {
	return visualiseRecovery(opts, "fig6", 0)
}

// Fig9 writes the concealment visualisation (corrupted frame with the top
// half missing, recovery output, ground truth).
func Fig9(opts Options) ([]string, error) {
	return visualiseRecovery(opts, "fig9", 0.5)
}

func visualiseRecovery(opts Options, prefix string, partFrac float64) ([]string, error) {
	w, h := 320, 180
	if opts.Quick {
		w, h = 160, 96
	}
	src := testClips(opts)[0]
	g := src.Generator()
	ext := edgecode.NewExtractor(0, 0)
	r := recovery.New(recovery.Config{OutW: w, OutH: h})

	prevPrev := g.Render(48, w, h)
	prev := g.Render(49, w, h)
	truth := g.Render(50, w, h)
	prevCode := ext.Extract(prev)
	curCode := ext.Extract(truth)

	in := recovery.Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: curCode}
	var corrupted *vmath.Plane
	if partFrac > 0 {
		part := vmath.NewPlane(w, h)
		mask := vmath.NewPlane(w, h)
		rows := int(partFrac * float64(h))
		for y := h - rows; y < h; y++ {
			for x := 0; x < w; x++ {
				part.Set(x, y, truth.At(x, y))
				mask.Set(x, y, 1)
			}
		}
		in.Part, in.PartMask = part, mask
		corrupted = part.Clone()
	}
	pred := r.Recover(in)

	var paths []string
	add := func(name string, p *vmath.Plane) error {
		path, err := writeArtefact(opts, name, p)
		if err != nil {
			return err
		}
		if path != "" {
			paths = append(paths, path)
		}
		return nil
	}
	if err := add(prefix+"_prev.pgm", prev); err != nil {
		return nil, err
	}
	if err := add(prefix+"_code.pgm", vmath.ResizeNearest(curCode.Plane(), w, h)); err != nil {
		return nil, err
	}
	if corrupted != nil {
		if err := add(prefix+"_corrupted.pgm", corrupted); err != nil {
			return nil, err
		}
	}
	if err := add(prefix+"_recovered.pgm", pred); err != nil {
		return nil, err
	}
	if err := add(prefix+"_truth.pgm", truth); err != nil {
		return nil, err
	}
	return paths, nil
}

// Fig11 writes the SR visualisation: bicubic vs our SR at four scales.
func Fig11(opts Options) ([]string, error) {
	dispW, dispH := dnnGeometry(opts)
	src := testClips(opts)[0]
	g := src.Generator()
	truth := g.Render(10, dispW, dispH)
	var paths []string
	for _, r := range []video.Resolution{video.R240, video.R360, video.R480, video.R720} {
		rw, rh := rungDims(r, dispW, dispH)
		lr := vmath.ResizeBilinear(truth, rw, rh)
		bic := sr.UpscaleBicubic(lr, dispW, dispH)
		resolver := sr.New(sr.Config{OutW: dispW, OutH: dispH})
		our := resolver.Upscale(lr)
		for name, p := range map[string]*vmath.Plane{
			fmt.Sprintf("fig11_%s_bicubic.pgm", r): bic,
			fmt.Sprintf("fig11_%s_sr.pgm", r):      our,
		} {
			path, err := writeArtefact(opts, name, p)
			if err != nil {
				return nil, err
			}
			if path != "" {
				paths = append(paths, path)
			}
		}
	}
	if path, err := writeArtefact(opts, "fig11_truth.pgm", truth); err != nil {
		return nil, err
	} else if path != "" {
		paths = append(paths, path)
	}
	return paths, nil
}

// CalibrateQuality measures the per-rung delivered / recovered / reused /
// super-resolved PSNR on the synthetic corpus and returns the quality model
// the streaming simulator consumes — the loop that ties the chunk-level
// system experiments to the real image pipeline.
func CalibrateQuality(opts Options) (*sim.QualityModel, *Table) {
	dispW, dispH := dnnGeometry(opts)
	frames := 10
	clips := testClips(opts)[:1]
	if !opts.Quick {
		frames = 24
		clips = testClips(opts)[:3]
	}

	base := sim.DefaultQualityModel()
	model := &sim.QualityModel{
		RecoveryDecay: base.RecoveryDecay,
		ReuseDecay:    base.ReuseDecay,
	}
	t := &Table{
		ID:     "calibration",
		Title:  "Measured per-rung quality (drives the streaming simulator)",
		Header: []string{"rung", "delivered", "recovered", "reused", "SR"},
	}

	var points []float64
	for _, r := range video.Resolutions() {
		rw, rh := rungDims(r, dispW, dispH)
		rate := r.Bitrate() * float64(dispW*dispH) / (1920 * 1080)
		var del, rec, reu, srs metrics.Series
		for ci, src := range clips {
			g := src.Generator()
			enc := codec.NewEncoder(codec.Config{W: rw, H: rh, GOP: 30, TargetBitrate: rate})
			dec := codec.NewDecoder(codec.Config{W: rw, H: rh})
			resolver := sr.New(sr.Config{OutW: dispW, OutH: dispH})
			ext := edgecode.NewExtractor(0, 0)
			start := 40 + 20*ci
			// Pass 1: delivered and SR quality on the decoded stream,
			// capturing decoded frames for the concealment chains.
			truths := make([]*vmath.Plane, frames)
			disps := make([]*vmath.Plane, frames)
			for i := 0; i < frames; i++ {
				truth := g.Render(start+i, dispW, dispH)
				lr := vmath.ResizeBilinear(truth, rw, rh)
				ef := enc.Encode(lr)
				dr, err := dec.Decode(ef, nil)
				if err != nil {
					continue
				}
				disp := vmath.ResizeBilinear(dr.Frame, dispW, dispH)
				truths[i] = truth
				disps[i] = disp
				del.ObserveFrames(truth, disp)
				srs.ObserveFrames(truth, resolver.Upscale(dr.Frame))
			}
			// Pass 2: concealment chains starting after two decoded
			// frames — the operating condition of the recovery model
			// (consecutive lost/late frames, as in Fig. 7).
			if frames >= 4 && disps[0] != nil && disps[1] != nil {
				recov := recovery.New(recovery.Config{OutW: dispW, OutH: dispH})
				prevPrev, prev := disps[0], disps[1]
				prevCode := ext.Extract(prev)
				frozen := disps[1]
				for i := 2; i < frames; i++ {
					if truths[i] == nil {
						break
					}
					code := ext.Extract(truths[i])
					out := recov.Recover(recovery.Input{
						Prev: prev, PrevPrev: prevPrev,
						PrevCode: prevCode, CurCode: code,
					})
					rec.ObserveFrames(truths[i], out)
					reu.ObserveFrames(truths[i], frozen)
					prevPrev, prev, prevCode = prev, out, code
				}
			}
		}
		points = append(points, del.MeanPSNR())
		model.Recovered = append(model.Recovered, rec.MeanPSNR())
		model.Reused = append(model.Reused, reu.MeanPSNR())
		model.SR = append(model.SR, srs.MeanPSNR())
		t.AddRow(r.String(),
			fmt.Sprintf("%.2f", del.MeanPSNR()),
			fmt.Sprintf("%.2f", rec.MeanPSNR()),
			fmt.Sprintf("%.2f", reu.MeanPSNR()),
			fmt.Sprintf("%.2f", srs.MeanPSNR()))
	}
	// Build the delivered map with the same low-end anchors the default
	// model documents.
	qp := base.Delivered.Points()[:2]
	for i, r := range video.Resolutions() {
		qp = append(qp, qoe.RateQuality{Mbps: r.Bitrate() / 1e6, PSNR: points[i]})
	}
	model.Delivered = qoe.NewQualityMap(qp)
	return model, t
}

func f64s(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
