// Package faultnet is a seeded fault-injection layer for HTTP clients: an
// http.RoundTripper that wraps a real transport and injects latency, 5xx
// responses, connection resets and truncated bodies, either on a scripted
// per-request basis (Rule) or probabilistically from a deterministic seeded
// RNG. The httpstream tests use it to prove the client's retry/backoff and
// codes-only degradation behaviour without a flaky real network.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule scripts a fault for matching requests. Rules are checked in order;
// the first rule that matches (and has budget left) is applied and shadows
// both later rules and the probabilistic faults. Exactly one of Reset,
// Status and TruncateBytes should be set (Latency composes with any).
type Rule struct {
	// Match selects requests (nil matches all). See MatchURL.
	Match func(*http.Request) bool
	// Count limits how many matching requests the rule fires on
	// (0 = every matching request, forever).
	Count int
	// Latency delays the response by this much.
	Latency time.Duration
	// Reset aborts the request with a connection-reset error before it
	// reaches the base transport.
	Reset bool
	// Status short-circuits with this HTTP status and a small text body.
	Status int
	// TruncateBytes forwards the request but cuts the response body after
	// this many bytes with an unexpected-EOF error, as a mid-stream
	// connection drop would.
	TruncateBytes int

	applied int // guarded by Transport.mu
}

// Config sets the seeded probabilistic fault rates applied to requests no
// rule claimed. All rates are probabilities in [0,1].
type Config struct {
	// Seed feeds the deterministic RNG (same seed → same fault sequence
	// for the same request order).
	Seed int64
	// ResetRate is the probability of a connection-reset error.
	ResetRate float64
	// ServerErrorRate is the probability of an injected 503.
	ServerErrorRate float64
	// TruncateRate is the probability of truncating the body to half.
	TruncateRate float64
	// Latency is a fixed delay added to every request.
	Latency time.Duration
	// LatencyJitter adds a uniform random extra delay in [0, LatencyJitter).
	LatencyJitter time.Duration
	// BurstCycle, when positive, gates the probabilistic fault rates into
	// on/off windows measured in requests: of every BurstCycle consecutive
	// requests through the transport, only the first BurstOn see the
	// configured fault rates; the rest pass clean (latency still applies).
	// This models bursty loss — short stretches where most requests fail,
	// separated by healthy stretches — rather than memoryless loss.
	BurstCycle int
	// BurstOn is the length of the faulty window at the start of each
	// cycle (clamped to BurstCycle; 0 with a positive BurstCycle means the
	// rates never apply).
	BurstOn int
}

// Transport is the fault-injecting http.RoundTripper. It is safe for
// concurrent use.
type Transport struct {
	// Base performs real requests (http.DefaultTransport if nil).
	Base http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	rules []*Rule
	reqs  int64 // requests seen, drives the burst cycle position

	// Counters (atomic) of injected faults and untouched requests.
	Resets       atomic.Int64
	ServerErrors atomic.Int64
	Truncations  atomic.Int64
	Passed       atomic.Int64
}

// New builds a Transport over base with the given probabilistic config and
// scripted rules.
func New(base http.RoundTripper, cfg Config, rules ...*Rule) *Transport {
	return &Transport{
		Base:  base,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		rules: rules,
	}
}

// MatchURL returns a matcher selecting requests whose URL (path plus raw
// query, e.g. "/segment?rate=1&n=2") contains substr.
func MatchURL(substr string) func(*http.Request) bool {
	return func(r *http.Request) bool {
		u := r.URL.Path
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		return strings.Contains(u, substr)
	}
}

// fault is the decision drawn for one request.
type fault struct {
	latency  time.Duration
	reset    bool
	status   int
	truncate int // -1 = none, otherwise byte cap (half-body for random)
}

// decide draws the fault for a request under the mutex so both the rule
// budgets and the RNG stay deterministic under concurrency (the decision
// order then depends on request arrival order, which concurrent tests must
// not assert on — use Count-limited rules there).
func (t *Transport) decide(req *http.Request) fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := t.reqs
	t.reqs++
	f := fault{truncate: -1}
	for _, r := range t.rules {
		if r.Match != nil && !r.Match(req) {
			continue
		}
		if r.Count > 0 && r.applied >= r.Count {
			continue
		}
		r.applied++
		f.latency = r.Latency
		f.reset = r.Reset
		f.status = r.Status
		if r.TruncateBytes > 0 {
			f.truncate = r.TruncateBytes
		}
		return f
	}
	f.latency = t.cfg.Latency
	if t.cfg.LatencyJitter > 0 {
		f.latency += time.Duration(t.rng.Int63n(int64(t.cfg.LatencyJitter)))
	}
	if t.cfg.BurstCycle > 0 && pos%int64(t.cfg.BurstCycle) >= int64(t.cfg.BurstOn) {
		// Outside the burst window: no fault-rate draws, so the RNG stream
		// (and with it the whole fault schedule) stays a pure function of
		// the seed and the request count.
		return f
	}
	switch {
	case t.cfg.ResetRate > 0 && t.rng.Float64() < t.cfg.ResetRate:
		f.reset = true
	case t.cfg.ServerErrorRate > 0 && t.rng.Float64() < t.cfg.ServerErrorRate:
		f.status = http.StatusServiceUnavailable
	case t.cfg.TruncateRate > 0 && t.rng.Float64() < t.cfg.TruncateRate:
		f.truncate = 0 // resolved to half the body once its size is known
	}
	return f
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.decide(req)
	if f.latency > 0 {
		select {
		case <-time.After(f.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case f.reset:
		t.Resets.Add(1)
		return nil, fmt.Errorf("faultnet: connection reset by peer (%s)", req.URL.Path)
	case f.status > 0:
		t.ServerErrors.Add(1)
		body := fmt.Sprintf("faultnet: injected %d", f.status)
		return &http.Response{
			StatusCode:    f.status,
			Status:        fmt.Sprintf("%d %s", f.status, http.StatusText(f.status)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || f.truncate < 0 {
		if err == nil {
			t.Passed.Add(1)
		}
		return resp, err
	}
	t.Truncations.Add(1)
	limit := int64(f.truncate)
	if limit == 0 {
		// Probabilistic truncation: cut to half the declared body.
		limit = resp.ContentLength / 2
		if limit < 0 {
			limit = 1
		}
	}
	resp.Body = &truncatedBody{rc: resp.Body, remaining: limit}
	return resp, nil
}

// truncatedBody yields the first remaining bytes of rc and then fails with
// io.ErrUnexpectedEOF, as a connection cut mid-body would.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
