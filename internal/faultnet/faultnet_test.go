package faultnet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func okServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRuleStatusCountLimited(t *testing.T) {
	ts := okServer(t, "payload")
	tr := New(nil, Config{}, &Rule{Match: MatchURL("/seg"), Count: 2, Status: 503})
	cli := &http.Client{Transport: tr}
	for i := 0; i < 4; i++ {
		resp, err := cli.Get(ts.URL + "/seg?n=0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusOK
		if i < 2 {
			want = http.StatusServiceUnavailable
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d want %d", i, resp.StatusCode, want)
		}
	}
	if got := tr.ServerErrors.Load(); got != 2 {
		t.Fatalf("ServerErrors=%d want 2", got)
	}
	// Non-matching paths are never touched.
	resp, err := cli.Get(ts.URL + "/other")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("non-matching request faulted: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestRuleReset(t *testing.T) {
	ts := okServer(t, "payload")
	tr := New(nil, Config{}, &Rule{Reset: true})
	_, err := (&http.Client{Transport: tr}).Get(ts.URL + "/x")
	if err == nil {
		t.Fatal("reset rule produced no error")
	}
	if tr.Resets.Load() != 1 {
		t.Fatalf("Resets=%d want 1", tr.Resets.Load())
	}
}

func TestRuleTruncation(t *testing.T) {
	ts := okServer(t, strings.Repeat("x", 1000))
	tr := New(nil, Config{}, &Rule{TruncateBytes: 100})
	resp, err := (&http.Client{Transport: tr}).Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read fully: %d bytes", len(b))
	}
	if len(b) > 100 {
		t.Fatalf("read %d bytes past the truncation point", len(b))
	}
	if tr.Truncations.Load() != 1 {
		t.Fatalf("Truncations=%d want 1", tr.Truncations.Load())
	}
}

func TestSeededFaultsDeterministic(t *testing.T) {
	ts := okServer(t, "payload")
	run := func() []bool {
		tr := New(nil, Config{Seed: 42, ResetRate: 0.5})
		cli := &http.Client{Transport: tr}
		var failed []bool
		for i := 0; i < 32; i++ {
			resp, err := cli.Get(ts.URL + "/x")
			failed = append(failed, err != nil)
			if err == nil {
				resp.Body.Close()
			}
		}
		return failed
	}
	a, b := run(), run()
	anyFailed, anyPassed := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fault decision differs across same-seed runs", i)
		}
		anyFailed = anyFailed || a[i]
		anyPassed = anyPassed || !a[i]
	}
	if !anyFailed || !anyPassed {
		t.Fatalf("degenerate fault sequence at 50%% reset rate: failed=%v passed=%v", anyFailed, anyPassed)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := okServer(t, "payload")
	tr := New(nil, Config{Seed: 7, ResetRate: 0.3, TruncateRate: 0.3})
	cli := &http.Client{Transport: tr}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := cli.Get(ts.URL + "/x")
				if err != nil {
					continue
				}
				io.ReadAll(resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	total := tr.Resets.Load() + tr.Truncations.Load() + tr.Passed.Load() + tr.ServerErrors.Load()
	if total != 8*20 {
		t.Fatalf("counters account for %d requests, want %d", total, 8*20)
	}
}
