package httpstream

import "time"

// timeNowNano returns the wall clock in nanoseconds; split out so tests can
// stub timeNow without importing time themselves.
func timeNowNano() int64 { return time.Now().UnixNano() }
