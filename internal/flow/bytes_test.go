package flow

import (
	"math"
	"math/rand"
	"testing"

	"nerve/internal/vmath"
)

// smoothBytePlane builds a random low-frequency byte image: block noise
// upsampled bilinearly, so block matching has real structure to lock onto.
func smoothBytePlane(w, h int, seed int64) *vmath.BytePlane {
	rng := rand.New(rand.NewSource(seed))
	coarse := vmath.NewBytePlane(w/8+2, h/8+2)
	for i := range coarse.Pix {
		coarse.Pix[i] = uint8(rng.Intn(256))
	}
	out := vmath.NewBytePlane(w, h)
	vmath.ResizeBilinearBytesInto(out, coarse)
	return out
}

// shiftBytes translates src by (dx, dy) with replicate padding:
// out(x, y) = src(x−dx, y−dy).
func shiftBytes(src *vmath.BytePlane, dx, dy int) *vmath.BytePlane {
	out := vmath.NewBytePlane(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Pix[y*src.W+x] = src.AtClamp(x-dx, y-dy)
		}
	}
	return out
}

// TestEstimateBytesRecoversTranslation: a global translation must come back
// as (≈dx, ≈dy) in the interior (the convention: cur(x) ≈ prev(x+U)).
func TestEstimateBytesRecoversTranslation(t *testing.T) {
	const w, h, dx, dy = 160, 120, 5, -3
	prev := smoothBytePlane(w, h, 1)
	cur := shiftBytes(prev, dx, dy)
	f := EstimateBytes(prev, cur, Options{Levels: 3, Search: 4})
	defer f.Release()
	var sumU, sumV float64
	var n int
	for y := h / 4; y < 3*h/4; y++ {
		for x := w / 4; x < 3*w/4; x++ {
			u, v, _ := f.At(x, y)
			sumU += float64(u)
			sumV += float64(v)
			n++
		}
	}
	meanU, meanV := sumU/float64(n), sumV/float64(n)
	if math.Abs(meanU-(-dx)) > 0.75 || math.Abs(meanV-(-dy)) > 0.75 {
		t.Fatalf("mean interior flow (%.2f, %.2f), want ≈ (%d, %d)", meanU, meanV, -dx, -dy)
	}
}

// TestEstimateBytesAgreesWithFloat: on byte-valued content the byte and
// float matchers see (almost) the same pyramid, so their fields must agree
// closely — the byte tier is a faster implementation of the same
// algorithm, not a different estimator.
func TestEstimateBytesAgreesWithFloat(t *testing.T) {
	const w, h = 128, 96
	prevB := smoothBytePlane(w, h, 2)
	curB := shiftBytes(prevB, 3, 2)
	prevF := vmath.NewPlane(w, h)
	curF := vmath.NewPlane(w, h)
	prevB.ToPlane(prevF)
	curB.ToPlane(curF)
	opts := Options{Levels: 3, Search: 4}
	fb := EstimateBytes(prevB, curB, opts)
	defer fb.Release()
	ff := Estimate(prevF, curF, opts)
	defer ff.Release()
	var diff float64
	for i := range fb.U {
		diff += math.Abs(float64(fb.U[i]-ff.U[i])) + math.Abs(float64(fb.V[i]-ff.V[i]))
	}
	diff /= float64(len(fb.U))
	if diff > 0.5 {
		t.Fatalf("byte and float flow differ by %.3f px on average (want ≤ 0.5)", diff)
	}
}

// TestBlockSADBytesFastPathMatchesScalar forces both the SWAR and scalar
// paths over the same interior blocks and checks bit-identical sums —
// candidate ordering in the search must not depend on which path ran.
func TestBlockSADBytesFastPathMatchesScalar(t *testing.T) {
	const w, h = 64, 48
	rng := rand.New(rand.NewSource(3))
	prev := vmath.NewBytePlane(w, h)
	cur := vmath.NewBytePlane(w, h)
	for i := range prev.Pix {
		prev.Pix[i] = uint8(rng.Intn(256))
		cur.Pix[i] = uint8(rng.Intn(256))
	}
	scalar := func(x0, y0, u, v int) float64 {
		var sad float64
		for y := 0; y < 8; y++ {
			py := y0 + y
			if py >= h {
				break
			}
			for x := 0; x < 8; x++ {
				px := x0 + x
				if px >= w {
					break
				}
				d := float64(cur.Pix[py*w+px]) - float64(prev.AtClamp(px+u, py+v))
				sad += math.Abs(d)
			}
		}
		return sad
	}
	for x0 := 8; x0+16 < w; x0 += 8 {
		for y0 := 8; y0+16 < h; y0 += 8 {
			for _, d := range [][2]int{{0, 0}, {3, 2}, {-4, -3}, {4, 4}, {-2, 5}} {
				got := blockSADBytes(prev, cur, x0, y0, d[0], d[1], 8, math.Inf(1))
				want := scalar(x0, y0, d[0], d[1])
				if got != want {
					t.Fatalf("block (%d,%d) disp (%d,%d): SWAR SAD %v != scalar %v",
						x0, y0, d[0], d[1], got, want)
				}
			}
		}
	}
}

// TestDownsampleBytes2x2Rounds: the byte pyramid's box filter rounds to
// nearest, exactly.
func TestDownsampleBytes2x2Rounds(t *testing.T) {
	p := vmath.NewBytePlane(4, 2)
	copy(p.Pix, []uint8{0, 1, 10, 20, 2, 2, 30, 40})
	d := downsampleBytes2x2(p)
	defer vmath.PutBytes(d)
	// (0+1+2+2+2)/4 = 1.25 → 1; (10+20+30+40+2)/4 = 25.5 → 25 (floor of +2 bias).
	if d.Pix[0] != 1 || d.Pix[1] != 25 {
		t.Fatalf("downsample got [%d %d], want [1 25]", d.Pix[0], d.Pix[1])
	}
}

func BenchmarkEstimateBytes480x270(b *testing.B) {
	prev := smoothBytePlane(480, 270, 4)
	cur := shiftBytes(prev, 3, 1)
	opts := Options{Levels: 3, Search: 3, ZeroBias: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := EstimateBytes(prev, cur, opts)
		f.Release()
	}
}

func BenchmarkEstimateFloat480x270(b *testing.B) {
	prevB := smoothBytePlane(480, 270, 4)
	curB := shiftBytes(prevB, 3, 1)
	prev := vmath.NewPlane(480, 270)
	cur := vmath.NewPlane(480, 270)
	prevB.ToPlane(prev)
	curB.ToPlane(cur)
	opts := Options{Levels: 3, Search: 3, ZeroBias: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Estimate(prev, cur, opts)
		f.Release()
	}
}
