package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nerve/internal/par"
)

// TestParallelForPropagatesFirstError checks the harness fan-out no longer
// drops worker errors: the lowest-indexed failure comes back to the caller
// regardless of pool size or scheduling.
func TestParallelForPropagatesFirstError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		restore := par.SetWorkers(workers)
		err := parallelFor(64, func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		restore()
		if err == nil || err.Error() != "cell 3 failed" {
			t.Fatalf("workers=%d: got %v, want first (lowest-index) error", workers, err)
		}
	}
	if err := parallelFor(64, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error from clean run: %v", err)
	}
}

// TestMustParallelForPropagatesPanic checks a worker panic in the
// infallible fan-out re-raises on the caller instead of crashing the
// process from a bare goroutine (the failure mode of the old ad-hoc
// WaitGroup fan-out).
func TestMustParallelForPropagatesPanic(t *testing.T) {
	defer par.SetWorkers(4)()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("mustParallelFor swallowed the panic")
		}
		if s := fmt.Sprint(v); !strings.Contains(s, "broken cell") {
			t.Fatalf("panic %q does not carry the original value", s)
		}
	}()
	mustParallelFor(16, func(i int) {
		if i == 2 {
			panic(errors.New("broken cell"))
		}
	})
}
