package par

import "fmt"

// Go runs fn concurrently when the global worker budget has a free slot and
// returns a join func that blocks until fn has finished. It is the pool's
// task-parallel primitive — used by the frame pipeline (internal/core) to
// overlap whole stages, where For/ForRows overlap loop iterations — and
// draws from the same Workers()-1 budget, so a pipeline stage and the data-
// parallel loops inside it never oversubscribe the machine together.
//
// When the budget is spent (or the pool size is 1), Go degrades exactly like
// a nested For: fn runs inline on the first join() call, preserving the
// sequential schedule and its bit-identical results. join re-raises any
// panic from fn on the joining goroutine, and is idempotent — every call
// after the first returns immediately.
func Go(fn func()) (join func()) {
	if reserve(1) == 0 {
		done := false
		return func() {
			if done {
				return
			}
			done = true
			fn()
		}
	}
	ch := make(chan any, 1)
	go func() {
		// release before the signalling send, so a returned join() implies
		// the budget slot is free again.
		defer func() { ch <- recover() }()
		defer release(1)
		fn()
	}()
	joined := false
	return func() {
		if joined {
			return
		}
		joined = true
		if v := <-ch; v != nil {
			panic(fmt.Sprintf("par: Go task panicked: %v", v))
		}
	}
}
