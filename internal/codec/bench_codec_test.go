package codec

import (
	"math/rand"
	"testing"

	"nerve/internal/par"
	"nerve/internal/vmath"
)

// Codec hot-kernel benchmarks. BENCH_codec.json at the repo root archives
// these (see the bench-smoke job in .github/workflows/ci.yml); the *Ref
// twins keep the basis-matrix baseline measurable in the same binary.

func benchBlock() *[64]float32 {
	rng := rand.New(rand.NewSource(31))
	var blk [64]float32
	for i := range blk {
		blk[i] = rng.Float32()*255 - 128
	}
	return &blk
}

func BenchmarkFDCT8(b *testing.B) {
	blk := benchBlock()
	var out [64]float32
	for i := 0; i < b.N; i++ {
		fdct8(blk, &out)
	}
}

func BenchmarkFDCT8Ref(b *testing.B) {
	blk := benchBlock()
	var out [64]float32
	for i := 0; i < b.N; i++ {
		fdct8Ref(blk, &out)
	}
}

func BenchmarkIDCT8(b *testing.B) {
	blk := benchBlock()
	var coef, out [64]float32
	fdct8(blk, &coef)
	for i := range coef {
		coef[i] /= 64
	}
	for i := 0; i < b.N; i++ {
		idct8(&coef, &out)
	}
}

func BenchmarkIDCT8Ref(b *testing.B) {
	blk := benchBlock()
	var coef, out [64]float32
	fdct8Ref(blk, &coef)
	for i := 0; i < b.N; i++ {
		idct8Ref(&coef, &out)
	}
}

// BenchmarkSADMB measures 162 interior macroblock SADs per op (the 18×9
// interior grid of a 320×180 frame, displaced by {1,−1}) with no early
// exit, the same shape the pre-AAN float baseline was recorded with.
func BenchmarkSADMB(b *testing.B) {
	frames := benchClip(b, 2, 320, 180)
	cur := vmath.GetBytes(320, 180).FromPlane(frames[1])
	ref := vmath.GetBytes(320, 180).FromPlane(frames[0])
	defer vmath.PutBytes(cur)
	defer vmath.PutBytes(ref)
	var st searchStats
	mv := MV{1, -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cy := 16; cy+MBSize <= 160; cy += MBSize {
			for cx := 16; cx+MBSize <= 320-MBSize; cx += MBSize {
				sadMB(cur, ref, cx, cy, mv, 1<<62, &st)
			}
		}
	}
}

// BenchmarkMotionSearchPredictive is the full predictive frame search
// (320×180, single worker) seeded with the previous frame's field, the
// steady-state P-frame configuration.
func BenchmarkMotionSearchPredictive(b *testing.B) {
	defer par.SetWorkers(1)()
	frames := benchClip(b, 3, 320, 180)
	prev := SearchFrame(frames[1], frames[0], 15)
	var mvs []MV
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mvs = SearchFramePredInto(mvs, prev, frames[2], frames[1], 15)
	}
}

// BenchmarkEncodeFrame encodes a 320×180 30-frame loop at 1.2 Mb/s on a
// single worker — the per-frame cost of the whole encoder, rate control
// included.
func BenchmarkEncodeFrame(b *testing.B) {
	defer par.SetWorkers(1)()
	frames := benchClip(b, 30, 320, 180)
	cfg := Config{W: 320, H: 180, GOP: 30, TargetBitrate: 1.2e6}
	b.ResetTimer()
	enc := NewEncoder(cfg)
	for i := 0; i < b.N; i++ {
		enc.Encode(frames[i%30])
	}
}
