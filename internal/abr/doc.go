// Package abr implements the adaptive-bitrate controllers of the
// reproduction: the classical baselines (rate-based, buffer-based, BOLA,
// robustMPC, a Pensieve-flavoured learned policy), the paper's
// enhancement-aware §6 algorithm, and the BBA-2 family with its two
// cross-layer variants.
//
// Every controller implements Algorithm: given a State snapshot it returns
// the ladder index (into video.Resolutions) for the next chunk. State
// carries the application-level view — buffer seconds, throughput history
// in bits per second, per-rung chunk sizes in bytes — and, in
// packet-accurate simulations, an optional CrossLayer view aggregated from
// the transport qlog event stream (internal/transport/qlog, taxonomy in
// TRANSPORT_EVENTS.md): recent wire-loss rate, smoothed RTT and its
// gradient, inflight bytes and send-backlog high-water marks, and how much
// loss the client's recovery machinery can mask. Controllers that predate
// the cross-layer view simply ignore it.
//
// Algorithms are stateful across a session (hysteresis, EWMA predictors,
// BBA-2's startup phase); call Reset before reusing one for a new session.
// NewByName constructs any controller from its wire name, which is what
// nervesim's -abr flag and the experiment matrix use.
package abr
