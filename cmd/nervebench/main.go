// Command nervebench regenerates the paper's tables and figures.
//
// With -telemetry it also records per-stage latency histograms, counters
// and frame-deadline overruns for the run and writes them to the given
// file in the BENCH_telemetry.json schema (see OBSERVABILITY.md) — the
// machine-readable perf trajectory of the repo.
//
// Usage:
//
//	nervebench -list
//	nervebench -exp fig7            # one experiment
//	nervebench -all                 # everything (DESIGN.md §3)
//	nervebench -exp fig6 -out dir   # write PGM artefacts
//	nervebench -quick               # reduced workload
//	nervebench -workers 1 -exp fig7 # pin the worker pool (also: NERVE_WORKERS)
//	nervebench -all -quick -telemetry BENCH_telemetry.json
//	nervebench -stages -quick       # pipelined 1080p session: stage p50/p99 + overlap
//	nervebench -stages -tier auto   # same, kernel tier picked per frame by the governor
package main

import (
	"flag"
	"fmt"
	"os"

	"nerve"
	"nerve/internal/core"
	"nerve/internal/par"
	"nerve/internal/telemetry"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		exp       = flag.String("exp", "", "experiment ID to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced workload (CI-scale)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("out", "", "directory for visualisation artefacts")
		workers   = flag.Int("workers", 0, "worker pool size; 0 = NERVE_WORKERS env or GOMAXPROCS")
		telPath   = flag.String("telemetry", "", "write a BENCH_telemetry.json snapshot of the run to this file")
		telEvents = flag.String("telemetry-events", "", "stream telemetry events (JSON lines) to this file")
		fps       = flag.Float64("fps", 30, "frame-deadline target in frames per second (with -telemetry)")
		stages    = flag.Bool("stages", false, "run a pipelined 1080p client session and dump per-stage p50/p99 plus the overlap ratio")
		tierFlag  = flag.String("tier", "auto", "kernel tier policy for -stages: float, fixed or auto (deadline governor)")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	if *telPath != "" || *telEvents != "" {
		telemetry.Enable(true)
		telemetry.SetDeadlineFPS(*fps)
		if *telEvents != "" {
			f, err := os.Create(*telEvents)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nervebench:", err)
				os.Exit(1)
			}
			defer f.Close()
			telemetry.Default.SetEventSink(f)
		}
	}

	opts := nerve.ExperimentOptions{Quick: *quick, Seed: *seed, OutDir: *out}
	var runErr error
	switch {
	case *list:
		for _, id := range nerve.ExperimentIDs() {
			fmt.Println(id)
		}
	case *stages:
		var tier core.Tier
		if tier, runErr = core.ParseTier(*tierFlag); runErr == nil {
			runErr = runStages(os.Stdout, *quick, *seed, tier)
		}
	case *all:
		runErr = nerve.RunAllExperiments(opts, os.Stdout)
	case *exp != "":
		runErr = nerve.RunExperiment(*exp, opts, os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "nervebench:", runErr)
		os.Exit(1)
	}
	if *telPath != "" {
		f, err := os.Create(*telPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nervebench:", err)
			os.Exit(1)
		}
		if err := telemetry.Default.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "nervebench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "nervebench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nervebench: telemetry snapshot written to %s\n", *telPath)
	}
}
