package edgecode

import (
	"math"
	"sort"

	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// ExtractBytes is the byte-domain twin of Extract for the fixed-point
// client tier: the whole pipeline — 2× bilinear resize, Sobel gradient,
// non-maximum thinning, 2×2 max pool, temporal history blend, percentile
// threshold — runs in uint8/int32 arithmetic on a BytePlane shadow,
// never round-tripping through float planes.
//
// The key to matching the float extractor bit-for-bit is that every
// per-pixel stage between the gradient and the threshold only ever
// *compares* magnitudes (NMS keeps the larger neighbour, pooling takes a
// max, the threshold is a rank statistic), and comparisons are invariant
// under strictly monotone maps. So the byte path carries the exact
// integer gx²+gy² (GradientSquaredBytesInto) through thinning and
// pooling — no per-pixel square root, no rounding ties — and only at
// code resolution (W·H values) converts to magnitude in Q12, where the
// map is still strictly monotone: adjacent representable squared values
// differ by at least 1/(2·1443)·4096 ≈ 1.4 Q12 steps, so distinct
// squares never collapse. On a frame whose bytes the float path also
// sees exactly (any integer-valued plane at 2× code resolution, where
// the resize is the identity), the emitted Bits are identical to
// Extract's by construction — the differential tests pin this. At other
// resolutions the Q15 byte resize may differ from the float resize by
// 1 LSB per pixel, which can flip isolated near-tie bits; tests bound
// that drift at 1 bit per 256.
//
// The history He is blended in the Q12 magnitude domain with the weight
// quantised once to round(HistoryWeight·256)/256. The byte path keeps
// its own He (histBytes), separate from the float path's: a client
// switching tiers mid-stream re-seeds the new tier's history from its
// first frame rather than sharing state across numeric domains. All
// scratch lives on the extractor, so steady state allocates nothing.
func (e *Extractor) ExtractBytes(frame *vmath.BytePlane) *Code {
	defer telemetry.Start(telemetry.StageCode).Stop()
	ww, wh := e.W*2, e.H*2

	if e.workBytes == nil || e.workBytes.W != ww || e.workBytes.H != wh {
		e.workBytes = vmath.NewBytePlane(ww, wh)
	}
	vmath.ResizeBilinearBytesInto(e.workBytes, frame)
	e.gradScratch = vmath.GradientSquaredBytesInto(e.gradScratch, e.workBytes)
	grad := e.gradScratch

	// Non-maximum thinning, same cheap variant as the float path: keep a
	// pixel only if it is ≥ both horizontal or both vertical neighbours
	// (replicate-clamped). Only maxima are written, so thin starts zeroed.
	if cap(e.thinScratch) < ww*wh {
		e.thinScratch = make([]int32, ww*wh)
	}
	thin := e.thinScratch[:ww*wh]
	for i := range thin {
		thin[i] = 0
	}
	for y := 0; y < wh; y++ {
		row := grad[y*ww : y*ww+ww]
		up := row
		if y > 0 {
			up = grad[(y-1)*ww : (y-1)*ww+ww]
		}
		down := row
		if y < wh-1 {
			down = grad[(y+1)*ww : (y+1)*ww+ww]
		}
		for x := 0; x < ww; x++ {
			g := row[x]
			xm, xp := x-1, x+1
			if xm < 0 {
				xm = 0
			}
			if xp >= ww {
				xp = ww - 1
			}
			if g >= row[xm] && g >= row[xp] || g >= up[x] && g >= down[x] {
				thin[y*ww+x] = g
			}
		}
	}

	// Pool 2×2 max down to code resolution (every pixel written), then
	// leave the squared domain: Q12 magnitude for the history blend.
	if cap(e.pooledScratch) < e.W*e.H {
		e.pooledScratch = make([]int32, e.W*e.H)
	}
	pooled := e.pooledScratch[:e.W*e.H]
	for y := 0; y < e.H; y++ {
		r0 := thin[2*y*ww : 2*y*ww+ww]
		r1 := thin[(2*y+1)*ww : (2*y+1)*ww+ww]
		for x := 0; x < e.W; x++ {
			m := r0[2*x]
			if v := r0[2*x+1]; v > m {
				m = v
			}
			if v := r1[2*x]; v > m {
				m = v
			}
			if v := r1[2*x+1]; v > m {
				m = v
			}
			pooled[y*e.W+x] = int32(math.Sqrt(float64(m))*4096 + 0.5)
		}
	}

	// Temporal history He in Q12 magnitudes, Q8 weight:
	// pooled = (pooled·(256−w) + hist·w + 128) >> 8. Max operand
	// 1443·4096·256 ≈ 1.5e9, inside int32.
	if w256 := int32(e.HistoryWeight*256 + 0.5); w256 > 0 && len(e.histBytes) == e.W*e.H {
		for i, cur := range pooled {
			pooled[i] = (cur*(256-w256) + e.histBytes[i]*w256 + 128) >> 8
		}
	}
	if cap(e.histBytes) < e.W*e.H {
		e.histBytes = make([]int32, e.W*e.H)
	}
	e.histBytes = e.histBytes[:e.W*e.H]
	copy(e.histBytes, pooled)

	// Adaptive threshold at the (1-TargetDensity) percentile — the same
	// order statistic the float path takes from its sorted copy. The
	// floor of one Q12 step (≈2.4e-4) matches the float path's 1e-3
	// noise floor: both sit below the smallest nonzero magnitude (1.0),
	// so on near-flat planes both paths set exactly the nonzero bits.
	thresh := e.percentileQ12(pooled, 1-e.TargetDensity)
	if thresh < 1 {
		thresh = 1
	}
	code := NewCode(e.W, e.H)
	for y := 0; y < e.H; y++ {
		for x := 0; x < e.W; x++ {
			if pooled[y*e.W+x] >= thresh {
				code.Set(x, y, true)
			}
		}
	}
	return code
}

// percentileQ12 returns the value a sorted copy of pix would hold at
// index int(p·(n−1)) — the identical order-statistic definition as the
// float extractor's percentile, on the integer Q12 magnitudes.
func (e *Extractor) percentileQ12(pix []int32, p float64) int32 {
	if len(pix) == 0 {
		return 0
	}
	if cap(e.intSortScratch) < len(pix) {
		e.intSortScratch = make([]int, len(pix))
	}
	tmp := e.intSortScratch[:len(pix)]
	for i, v := range pix {
		tmp[i] = int(v)
	}
	sort.Ints(tmp)
	idx := int(p * float64(len(tmp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return int32(tmp[idx])
}
