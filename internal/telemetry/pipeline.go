package telemetry

import "time"

// Pipelined clients overlap stages across frames (decode of frame n+1 runs
// while frame n is still being recovered), which breaks the sequential
// reading of the deadline tracker: the sum of stage times no longer bounds
// the per-frame wall time. ObservePipelineFrame splits the two quantities
// the overlapped schedule produces per frame:
//
//   - critical: the slot's critical-path wall time — how long the
//     pipelined schedule actually blocks per slot (the new frame's ingest
//     plus whatever tail of the previous frame's enhance was not hidden
//     under it). This bounds the sustainable frame rate, so it is the
//     quantity the deadline budget governs and it feeds the existing
//     deadline tracker (frame histogram, overrun count, overrun events)
//     unchanged.
//   - busy: the summed busy time of the frame's stages — what the frame
//     cost in CPU terms regardless of scheduling. Totals of busy exceed
//     totals of critical when stages overlapped; they match when the
//     schedule degenerated to sequential (pool size 1).
//
// The ratio of the two totals is the overlap ratio reported in snapshots:
// 1.0 means no overlap was won, 2.0 means the pipeline halved wall time.

// pipeline holds the pipelined-frame aggregates of a Registry.
type pipeline struct {
	busy     Histogram // per-frame summed stage busy time
	critical Histogram // per-frame critical-path wall time
}

func (p *pipeline) reset() {
	p.busy.reset()
	p.critical.reset()
}

// ObservePipelineFrame records one pipelined frame: critical feeds the
// frame-deadline tracker exactly like ObserveFrame, busy feeds the separate
// busy-time histogram. Both are also kept pipeline-locally so the overlap
// ratio excludes frames recorded through plain ObserveFrame.
func (r *Registry) ObservePipelineFrame(busy, critical time.Duration) {
	if !r.enabled.Load() {
		return
	}
	r.ObserveFrame(critical)
	r.pipe.busy.Observe(busy)
	r.pipe.critical.Observe(critical)
}

// PipelineStats is the pipelined-frame aggregate in a Snapshot. It is all
// zeros for sequential clients (no ObservePipelineFrame calls).
type PipelineStats struct {
	// Frames is how many pipelined frames were observed.
	Frames int64 `json:"frames"`
	// Busy* describe the per-frame summed stage busy time; Critical*
	// describe the per-frame critical-path wall time (the same values the
	// deadline tracker sees for these frames).
	BusyP50Ms     float64 `json:"busy_p50_ms"`
	BusyP99Ms     float64 `json:"busy_p99_ms"`
	CriticalP50Ms float64 `json:"critical_p50_ms"`
	CriticalP99Ms float64 `json:"critical_p99_ms"`
	// OverlapRatio is total busy over total critical time: 1.0 means the
	// schedule ran sequentially, higher means the pipeline overlapped that
	// much stage work per unit of wall time.
	OverlapRatio float64 `json:"overlap_ratio"`
}

// PipelineSnapshot captures the pipelined-frame aggregates.
func (r *Registry) PipelineSnapshot() PipelineStats {
	p := &r.pipe
	s := PipelineStats{
		Frames:        p.critical.Count(),
		BusyP50Ms:     ms(p.busy.Quantile(0.50)),
		BusyP99Ms:     ms(p.busy.Quantile(0.99)),
		CriticalP50Ms: ms(p.critical.Quantile(0.50)),
		CriticalP99Ms: ms(p.critical.Quantile(0.99)),
	}
	if crit := p.critical.Sum(); crit > 0 {
		s.OverlapRatio = float64(p.busy.Sum()) / float64(crit)
	}
	return s
}

// ObservePipelineFrame records a pipelined frame on the Default registry.
func ObservePipelineFrame(busy, critical time.Duration) {
	Default.ObservePipelineFrame(busy, critical)
}
