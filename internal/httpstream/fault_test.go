package httpstream

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"nerve/internal/core"
	"nerve/internal/faultnet"
	"nerve/internal/metrics"
	"nerve/internal/video"
)

// fastRetry is a test policy: full retry behaviour, negligible wall time.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    attempts,
		BaseBackoff:    time.Microsecond,
		MaxBackoff:     10 * time.Microsecond,
		RequestTimeout: 10 * time.Second,
		Seed:           99,
	}
}

// matchSegment selects /segment requests for chunk n (any rate), leaving
// /codes untouched.
func matchSegment(n string) func(*http.Request) bool {
	return func(r *http.Request) bool {
		return r.URL.Path == "/segment" && r.URL.Query().Get("n") == n
	}
}

func faultClient(t *testing.T, url string, attempts int, rules ...*faultnet.Rule) (*Client, *faultnet.Transport) {
	t.Helper()
	tr := faultnet.New(nil, faultnet.Config{Seed: 1}, rules...)
	cli, err := NewClient(url, &http.Client{Transport: tr}, true, WithRetryPolicy(fastRetry(attempts)))
	if err != nil {
		t.Fatal(err)
	}
	cli.sleep = func(time.Duration) {} // keep the test instant
	return cli, tr
}

func TestFetchRetriesTransient5xx(t *testing.T) {
	_, ts := testServer(t)
	cli, tr := faultClient(t, ts.URL, 4, &faultnet.Rule{
		Match: matchSegment("0"), Count: 2, Status: 503,
	})
	res, err := cli.PlayChunk(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("degraded despite retry budget: %s", res.DegradedReason)
	}
	if res.Bytes == 0 {
		t.Fatal("no media bytes after successful retry")
	}
	if got := cli.Retries(); got != 2 {
		t.Fatalf("Retries=%d want 2", got)
	}
	if tr.ServerErrors.Load() != 2 {
		t.Fatalf("injected %d 5xx, want 2", tr.ServerErrors.Load())
	}
}

func TestFetchRetriesTruncatedBody(t *testing.T) {
	_, ts := testServer(t)
	cli, _ := faultClient(t, ts.URL, 3, &faultnet.Rule{
		Match: matchSegment("0"), Count: 1, TruncateBytes: 10,
	})
	res, err := cli.PlayChunk(0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("degraded despite retry budget: %s", res.DegradedReason)
	}
	if cli.Retries() == 0 {
		t.Fatal("truncated body not retried")
	}
}

func TestPermanentErrorNotDegraded(t *testing.T) {
	_, ts := testServer(t)
	cli, _ := faultClient(t, ts.URL, 3)
	_, err := cli.PlayChunk(0, 99, false) // rate 99 does not exist
	if err == nil {
		t.Fatal("nonexistent rate masked by degradation")
	}
	var fe *FetchError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T, want *FetchError", err)
	}
	if fe.Transient || fe.Status != http.StatusNotFound || fe.Attempts != 1 {
		t.Fatalf("permanent 404 misclassified: %+v", fe)
	}
	if cli.Retries() != 0 {
		t.Fatalf("4xx retried %d times", cli.Retries())
	}
}

func TestDegradeToCodesOnlyRecovery(t *testing.T) {
	srv, ts := testServer(t)
	// Chunk 1's media path is down for good — every retry is reset.
	cli, _ := faultClient(t, ts.URL, 3, &faultnet.Rule{
		Match: matchSegment("1"), Reset: true,
	})
	results, err := cli.PlayAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("played %d chunks, want all 3", len(results))
	}
	fpc := srv.framesPerChunk()
	gen := video.NewGenerator(video.Categories()[2], 7)
	var s metrics.Series
	for n, res := range results {
		if len(res.Frames) != fpc {
			t.Fatalf("chunk %d: %d frames want %d", n, len(res.Frames), fpc)
		}
		if n != 1 {
			if res.Degraded {
				t.Fatalf("healthy chunk %d marked degraded: %s", n, res.DegradedReason)
			}
			continue
		}
		if !res.Degraded || res.DegradedReason == "" {
			t.Fatalf("chunk 1 not marked degraded: %+v", res)
		}
		if res.Bytes != 0 {
			t.Fatalf("degraded chunk reports %d media bytes", res.Bytes)
		}
		for i, cl := range res.Classes {
			if cl != core.ClassRecovered {
				t.Errorf("degraded chunk frame %d class %v, want recovered", i, cl)
			}
		}
		for i, f := range res.Frames {
			s.ObserveFrames(gen.Render(n*fpc+i, 96, 64), f)
		}
	}
	if cli.DegradedChunks() != 1 {
		t.Fatalf("DegradedChunks=%d want 1", cli.DegradedChunks())
	}
	if p := s.MeanPSNR(); p < 15 {
		t.Fatalf("codes-only recovered chunk unusable: %.2f dB", p)
	}
}

// TestConcurrentClientsSurviveFaults is the acceptance scenario: N
// concurrent clients, one chunk's segment fetches failing through every
// retry, and the whole run must stay race-clean with every client getting
// all chunks (the failed one codes-only) and the server never duplicating
// encode work.
func TestConcurrentClientsSurviveFaults(t *testing.T) {
	srv, ts := testServer(t)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := faultnet.New(nil, faultnet.Config{Seed: int64(i)}, &faultnet.Rule{
				Match: matchSegment("1"), Reset: true,
			})
			cli, err := NewClient(ts.URL, &http.Client{Transport: tr}, true, WithRetryPolicy(fastRetry(3)))
			if err != nil {
				errs <- err
				return
			}
			cli.sleep = func(time.Duration) {}
			results, err := cli.PlayAll()
			if err != nil {
				errs <- err
				return
			}
			if len(results) != srv.Manifest().Chunks {
				errs <- fmt.Errorf("client %d: %d chunks want %d", i, len(results), srv.Manifest().Chunks)
				return
			}
			for n, res := range results {
				if want := srv.framesPerChunk(); len(res.Frames) != want {
					errs <- fmt.Errorf("client %d chunk %d: %d frames want %d", i, n, len(res.Frames), want)
					return
				}
				if (n == 1) != res.Degraded {
					errs <- fmt.Errorf("client %d chunk %d: degraded=%v", i, n, res.Degraded)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The singleflight cache must have collapsed all concurrent encode
	// work: at most one encode per (rate, chunk) across every client.
	m := srv.Manifest()
	if max := int64(len(m.RatesKbps) * m.Chunks); srv.Encodes() > max {
		t.Fatalf("server performed %d encodes for %d (rate,chunk) pairs — duplicated work", srv.Encodes(), max)
	}
}

// TestConcurrentColdCacheNoDuplicates hammers a cold server with identical
// and distinct requests at once; the flight cache must hold encodes to one
// per (rate, chunk).
func TestConcurrentColdCacheNoDuplicates(t *testing.T) {
	srv, ts := testServer(t)
	m := srv.Manifest()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < m.Chunks; n++ {
				for rate := range m.RatesKbps {
					resp, err := http.Get(fmt.Sprintf("%s/segment?rate=%d&n=%d", ts.URL, rate, n))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("segment rate=%d n=%d: %s", rate, n, resp.Status)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if max := int64(len(m.RatesKbps) * m.Chunks); srv.Encodes() > max {
		t.Fatalf("%d encodes for %d (rate,chunk) pairs — duplicated work", srv.Encodes(), max)
	}
}
