// Package qoe implements the video quality-of-experience metric from §6:
//
//	QoE = ( Σ R_n − µ·Σ T_n − Σ |R_{n+1} − R_n| ) / N
//
// where R_n is chunk n's (possibly enhancement-adjusted) bitrate utility in
// Mbps, T_n its rebuffering time and µ the rebuffering penalty. It also
// provides the rate↔quality maps (Fig. 4) that let the enhancement-aware
// ABR convert an enhanced PSNR back into an equivalent bitrate utility.
package qoe

import (
	"math"
	"sort"
)

// Params configures the metric.
type Params struct {
	// RebufferPenalty is µ. The Pensieve/MPC literature uses 4.3 for the
	// "linear QoE" variant; the default follows it.
	RebufferPenalty float64
	// SmoothnessPenalty scales the |ΔR| term (1.0 in the paper formula).
	SmoothnessPenalty float64
}

// DefaultParams returns the paper's metric configuration.
func DefaultParams() Params {
	return Params{RebufferPenalty: 4.3, SmoothnessPenalty: 1.0}
}

// Chunk is the per-chunk accounting record.
type Chunk struct {
	Index int
	// BitrateMbps is the ladder rate the chunk was requested at.
	BitrateMbps float64
	// UtilityMbps is the effective quality utility after client-side
	// enhancement, expressed on the bitrate scale (equals BitrateMbps
	// when no enhancement applies).
	UtilityMbps float64
	// RebufferSec is the stall time attributed to this chunk.
	RebufferSec float64
	// Frame accounting (drives Fig. 13b and Table 3).
	FramesTotal     int
	FramesRecovered int
	FramesSR        int
}

// Session accumulates chunks and evaluates QoE.
type Session struct {
	P      Params
	Chunks []Chunk
}

// NewSession returns an empty session with the given parameters.
func NewSession(p Params) *Session { return &Session{P: p} }

// Add appends a chunk record.
func (s *Session) Add(c Chunk) { s.Chunks = append(s.Chunks, c) }

// QoE evaluates the paper's formula over the recorded chunks using the
// utility (enhanced) rates for both the quality and smoothness terms.
func (s *Session) QoE() float64 {
	n := len(s.Chunks)
	if n == 0 {
		return 0
	}
	var rate, rebuf, smooth float64
	for i, c := range s.Chunks {
		u := c.UtilityMbps
		if u == 0 {
			u = c.BitrateMbps
		}
		rate += u
		rebuf += c.RebufferSec
		if i > 0 {
			prev := s.Chunks[i-1].UtilityMbps
			if prev == 0 {
				prev = s.Chunks[i-1].BitrateMbps
			}
			smooth += math.Abs(u - prev)
		}
	}
	return (rate - s.P.RebufferPenalty*rebuf - s.P.SmoothnessPenalty*smooth) / float64(n)
}

// TotalRebuffer returns the summed stall time.
func (s *Session) TotalRebuffer() float64 {
	var t float64
	for _, c := range s.Chunks {
		t += c.RebufferSec
	}
	return t
}

// RecoveredFrameFraction returns the fraction of frames that went through
// recovery across the session.
func (s *Session) RecoveredFrameFraction() float64 {
	var rec, tot int
	for _, c := range s.Chunks {
		rec += c.FramesRecovered
		tot += c.FramesTotal
	}
	if tot == 0 {
		return 0
	}
	return float64(rec) / float64(tot)
}

// RateQuality is one (bitrate, PSNR) calibration point.
type RateQuality struct {
	Mbps float64
	PSNR float64
}

// QualityMap is the monotone bitrate↔PSNR mapping of Fig. 4b, built
// offline from the training videos. It supports both directions: the
// forward map predicts delivered quality at a rate; the inverse converts an
// enhanced PSNR into an equivalent bitrate utility.
type QualityMap struct {
	points []RateQuality // ascending Mbps
}

// NewQualityMap builds a map from calibration points (sorted internally).
// At least two points are required for interpolation; fewer points degrade
// to constant extrapolation.
func NewQualityMap(points []RateQuality) *QualityMap {
	ps := append([]RateQuality(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Mbps < ps[j].Mbps })
	return &QualityMap{points: ps}
}

// PSNRAt returns the expected delivered PSNR at the given rate.
func (m *QualityMap) PSNRAt(mbps float64) float64 {
	n := len(m.points)
	if n == 0 {
		return 0
	}
	if mbps <= m.points[0].Mbps {
		return m.points[0].PSNR
	}
	if mbps >= m.points[n-1].Mbps {
		return m.points[n-1].PSNR
	}
	i := sort.Search(n, func(i int) bool { return m.points[i].Mbps >= mbps })
	a, b := m.points[i-1], m.points[i]
	f := (mbps - a.Mbps) / (b.Mbps - a.Mbps)
	return a.PSNR + f*(b.PSNR-a.PSNR)
}

// MbpsForPSNR inverts the map: the bitrate whose delivered quality equals
// the given PSNR (clamped to the calibrated range). This is how enhanced
// video quality is expressed as a bitrate utility in the ABR objective.
func (m *QualityMap) MbpsForPSNR(psnr float64) float64 {
	n := len(m.points)
	if n == 0 {
		return 0
	}
	if psnr <= m.points[0].PSNR {
		return m.points[0].Mbps
	}
	if psnr >= m.points[n-1].PSNR {
		return m.points[n-1].Mbps
	}
	for i := 1; i < n; i++ {
		if m.points[i].PSNR >= psnr {
			a, b := m.points[i-1], m.points[i]
			if b.PSNR == a.PSNR {
				return a.Mbps
			}
			f := (psnr - a.PSNR) / (b.PSNR - a.PSNR)
			return a.Mbps + f*(b.Mbps-a.Mbps)
		}
	}
	return m.points[n-1].Mbps
}

// Points returns the calibration points in ascending rate order.
func (m *QualityMap) Points() []RateQuality {
	return append([]RateQuality(nil), m.points...)
}
