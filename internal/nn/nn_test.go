package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float32{2, 3}, B: []float32{1},
		dW: make([]float32, 2), dB: make([]float32, 1)}
	y := d.Forward([]float32{4, 5})
	if y[0] != 2*4+3*5+1 {
		t.Fatalf("y=%v", y[0])
	}
}

// numericalGrad checks dL/dx of a layer against finite differences.
func TestDenseBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	x := []float32{0.5, -0.3, 0.8}
	target := []float32{1, -1}

	loss := func(in []float32) float64 {
		y := d.Forward(in)
		var l float64
		for i := range y {
			diff := float64(y[i] - target[i])
			l += 0.5 * diff * diff
		}
		return l
	}
	y := d.Forward(x)
	dy := make([]float32, 2)
	for i := range y {
		dy[i] = y[i] - target[i]
	}
	dx := d.Backward(dy)
	const eps = 1e-3
	for i := range x {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += eps
		xm[i] -= eps
		num := (loss(xp) - loss(xm)) / (2 * eps)
		if math.Abs(num-float64(dx[i])) > 1e-2 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 2, 8, 1)
	opt := NewAdam(0.02)
	data := [][3]float32{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	var last float64
	for it := 0; it < 2000; it++ {
		last = 0
		for _, d := range data {
			y := m.Forward(d[:2])
			grad := make([]float32, 1)
			last += MSELoss(y, d[2:3], grad)
			m.Backward(grad)
		}
		opt.Step(m)
	}
	if last > 0.01 {
		t.Fatalf("XOR not learned: loss %v", last)
	}
	for _, d := range data {
		y := m.Forward(d[:2])[0]
		if math.Abs(float64(y-d[2])) > 0.25 {
			t.Fatalf("XOR(%v,%v)=%v want %v", d[0], d[1], y, d[2])
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	y := r.Forward([]float32{-1, 0, 2})
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("y=%v", y)
	}
	dx := r.Backward([]float32{5, 5, 5})
	if dx[0] != 0 || dx[2] != 5 {
		t.Fatalf("dx=%v", dx)
	}
}

func TestTanhGradient(t *testing.T) {
	tn := &Tanh{}
	x := []float32{0.3}
	tn.Forward(x)
	dx := tn.Backward([]float32{1})
	want := 1 - math.Tanh(0.3)*math.Tanh(0.3)
	if math.Abs(float64(dx[0])-want) > 1e-5 {
		t.Fatalf("dtanh=%v want %v", dx[0], want)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float32{1, 2, 3})
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax order %v", p)
	}
	// Stability under large logits.
	p2 := Softmax([]float32{1000, 1001})
	if math.IsNaN(float64(p2[0])) {
		t.Fatal("softmax NaN")
	}
}

func TestSGDStep(t *testing.T) {
	d := &Dense{In: 1, Out: 1, W: []float32{1}, B: []float32{0},
		dW: []float32{2}, dB: []float32{1}}
	SGD(d, 0.1)
	if math.Abs(float64(d.W[0])-0.8) > 1e-6 || math.Abs(float64(d.B[0])+0.1) > 1e-6 {
		t.Fatalf("W=%v B=%v", d.W[0], d.B[0])
	}
	if d.dW[0] != 0 || d.dB[0] != 0 {
		t.Fatal("grads not zeroed")
	}
}

func TestCharbonnierLossGradient(t *testing.T) {
	pred := []float32{1, 2}
	target := []float32{0, 2}
	grad := make([]float32, 2)
	l := CharbonnierLoss(pred, target, grad, 1e-3)
	if math.Abs(l-0.5) > 1e-3 {
		t.Fatalf("loss=%v", l)
	}
	if grad[0] <= 0 || math.Abs(float64(grad[1])) > 1e-3 {
		t.Fatalf("grad=%v", grad)
	}
}

func TestConv2DLearnsKnownFilter(t *testing.T) {
	// Train a 1→1 3×3 conv to mimic a fixed blur filter.
	rng := rand.New(rand.NewSource(3))
	w, h := 8, 8
	conv := NewConv2D(1, 1, 3, w, h, rng)
	targetK := []float32{0, 0.1, 0, 0.1, 0.6, 0.1, 0, 0.1, 0}
	apply := func(x []float32) []float32 {
		y := make([]float32, w*h)
		for py := 0; py < h; py++ {
			for px := 0; px < w; px++ {
				var s float32
				for ky := 0; ky < 3; ky++ {
					for kx := 0; kx < 3; kx++ {
						sy, sx := py+ky-1, px+kx-1
						if sy < 0 || sy >= h || sx < 0 || sx >= w {
							continue
						}
						s += targetK[ky*3+kx] * x[sy*w+sx]
					}
				}
				y[py*w+px] = s
			}
		}
		return y
	}
	opt := NewAdam(0.01)
	var loss float64
	for it := 0; it < 400; it++ {
		x := make([]float32, w*h)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		want := apply(x)
		got := conv.Forward(x)
		grad := make([]float32, len(got))
		loss = MSELoss(got, want, grad)
		conv.Backward(grad)
		opt.Step(conv)
	}
	if loss > 1e-3 {
		t.Fatalf("conv did not learn filter: loss %v", loss)
	}
	// Learned weights should approximate the target kernel.
	for i, wv := range conv.Weight {
		if math.Abs(float64(wv-targetK[i])) > 0.1 {
			t.Fatalf("weight %d = %v want %v", i, wv, targetK[i])
		}
	}
}

func TestConv2DBackwardNumericalInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D(1, 1, 3, 4, 4, rng)
	x := make([]float32, 16)
	for i := range x {
		x[i] = rng.Float32()
	}
	loss := func(in []float32) float64 {
		y := conv.Forward(in)
		var l float64
		for _, v := range y {
			l += 0.5 * float64(v) * float64(v)
		}
		return l
	}
	y := conv.Forward(x)
	dx := conv.Backward(y)
	const eps = 1e-2
	for _, i := range []int{0, 5, 10, 15} {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += eps
		xm[i] -= eps
		num := (loss(xp) - loss(xm)) / (2 * eps)
		if math.Abs(num-float64(dx[i])) > 0.05 {
			t.Fatalf("conv dx[%d]: analytic %v numeric %v", i, dx[i], num)
		}
	}
}

// A tiny two-state MDP: action 0 is always better. PPO must learn to
// prefer it.
func TestPPOLearnsTrivialMDP(t *testing.T) {
	p := NewPPO(2, 2, 16, 5)
	state := []float32{1, 0}
	for iter := 0; iter < 60; iter++ {
		var traj []Transition
		for step := 0; step < 64; step++ {
			a, lp := p.Sample(state)
			r := 0.0
			if a == 0 {
				r = 1.0
			}
			traj = append(traj, Transition{
				State: append([]float32(nil), state...), Action: a,
				Reward: r, Done: step == 63, LogProb: lp,
			})
		}
		p.Update(traj)
	}
	probs := p.Policy(state)
	if probs[0] < 0.8 {
		t.Fatalf("PPO did not learn: P(best)=%v", probs[0])
	}
}

func TestPPOGreedyAndValue(t *testing.T) {
	p := NewPPO(3, 4, 8, 6)
	s := []float32{0.1, 0.2, 0.3}
	a := p.Greedy(s)
	if a < 0 || a >= 4 {
		t.Fatalf("greedy action %d", a)
	}
	_ = p.Value(s) // must not panic
	if p.Update(nil) != 0 {
		t.Fatal("empty update should be a no-op")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 2, 4, 1)
	m.Forward([]float32{1, 2})
	m.Backward([]float32{1})
	ZeroGrads(m)
	_, gs := m.Params()
	for _, g := range gs {
		for _, v := range g {
			if v != 0 {
				t.Fatal("grads not zeroed")
			}
		}
	}
}
