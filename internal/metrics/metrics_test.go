package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nerve/internal/vmath"
)

func randomPlane(rng *rand.Rand, w, h int) *vmath.Plane {
	p := vmath.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = rng.Float32() * 255
	}
	return p
}

func TestPSNRIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomPlane(rng, 16, 12)
	if got := PSNR(p, p); got != MaxPSNR {
		t.Fatalf("PSNR of identical planes = %v, want clamped %v", got, MaxPSNR)
	}
}

// PSNR feeds JSON results emitters; +Inf would make them emit invalid JSON,
// so every PSNR value — including the identical-planes case — must marshal.
func TestPSNRMarshalsAsJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomPlane(rng, 16, 12)
	q := randomPlane(rng, 16, 12)
	for _, v := range []float64{PSNR(p, p), PSNR(p, q)} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("PSNR produced non-finite value %v", v)
		}
		if _, err := json.Marshal(v); err != nil {
			t.Fatalf("PSNR value %v does not marshal: %v", v, err)
		}
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// Uniform error of 1 → MSE 1 → PSNR = 20*log10(255) ≈ 48.13 dB.
	a := vmath.NewPlane(8, 8)
	b := vmath.NewPlane(8, 8)
	b.Fill(1)
	want := 20 * math.Log10(255)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR=%v want %v", got, want)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := randomPlane(rng, 24, 24)
	prev := math.Inf(1)
	for _, sigma := range []float32{1, 4, 16} {
		noisy := ref.Clone()
		for i := range noisy.Pix {
			noisy.Pix[i] += float32(rng.NormFloat64()) * sigma
		}
		got := PSNR(ref, noisy)
		if got >= prev {
			t.Fatalf("PSNR did not decrease: sigma=%v psnr=%v prev=%v", sigma, got, prev)
		}
		prev = got
	}
}

func TestSSIMIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomPlane(rng, 20, 20)
	if got := SSIM(p, p); math.Abs(got-1) > 1e-6 {
		t.Fatalf("SSIM of identical planes = %v", got)
	}
}

func TestSSIMRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomPlane(rng, 20, 20)
	b := randomPlane(rng, 20, 20)
	got := SSIM(a, b)
	if got <= -1 || got > 1 {
		t.Fatalf("SSIM out of range: %v", got)
	}
}

func TestSSIMDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Structured reference so SSIM has structure to compare.
	ref := vmath.NewPlane(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			ref.Set(x, y, float32(128+100*math.Sin(float64(x)/3)*math.Cos(float64(y)/4)))
		}
	}
	prev := 1.0
	for _, sigma := range []float32{2, 10, 40} {
		noisy := ref.Clone()
		for i := range noisy.Pix {
			noisy.Pix[i] += float32(rng.NormFloat64()) * sigma
		}
		got := SSIM(ref, noisy)
		if got >= prev {
			t.Fatalf("SSIM did not decrease at sigma=%v: %v >= %v", sigma, got, prev)
		}
		prev = got
	}
}

func TestSSIMSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPlane(rng, 16, 16)
		b := randomPlane(rng, 16, 16)
		return math.Abs(SSIM(a, b)-SSIM(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSSIMPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SSIM(vmath.NewPlane(4, 4), vmath.NewPlane(5, 4))
}

func TestSeriesAggregation(t *testing.T) {
	var s Series
	s.Observe(30, 0.9)
	s.Observe(40, 0.8)
	s.Observe(math.Inf(1), 1.0) // clamped to 100
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	if got := s.MeanPSNR(); math.Abs(got-(30+40+100)/3.0) > 1e-9 {
		t.Fatalf("MeanPSNR=%v", got)
	}
	if got := s.MeanSSIM(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("MeanSSIM=%v", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.MeanPSNR() != 0 || s.MeanSSIM() != 0 || s.Len() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestSeriesObserveFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomPlane(rng, 12, 12)
	var s Series
	s.ObserveFrames(a, a)
	if s.MeanPSNR() != 100 {
		t.Fatalf("identical frames should record clamped 100 dB, got %v", s.MeanPSNR())
	}
}

func BenchmarkSSIM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomPlane(rng, 480, 270)
	q := randomPlane(rng, 480, 270)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSIM(p, q)
	}
}

func BenchmarkPSNR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randomPlane(rng, 480, 270)
	q := randomPlane(rng, 480, 270)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSNR(p, q)
	}
}
