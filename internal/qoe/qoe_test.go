package qoe

import (
	"math"
	"testing"
)

func TestQoEFormula(t *testing.T) {
	s := NewSession(Params{RebufferPenalty: 4.3, SmoothnessPenalty: 1})
	s.Add(Chunk{BitrateMbps: 1.0})
	s.Add(Chunk{BitrateMbps: 2.0, RebufferSec: 0.5})
	s.Add(Chunk{BitrateMbps: 1.0})
	// (1+2+1 − 4.3·0.5 − (|2−1|+|1−2|)) / 3 = (4 − 2.15 − 2)/3
	want := (4.0 - 2.15 - 2.0) / 3
	if got := s.QoE(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("QoE=%v want %v", got, want)
	}
}

func TestQoEUsesUtilityWhenSet(t *testing.T) {
	s := NewSession(DefaultParams())
	s.Add(Chunk{BitrateMbps: 1.0, UtilityMbps: 2.5})
	if got := s.QoE(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("QoE=%v want 2.5 (utility overrides bitrate)", got)
	}
}

func TestQoEEmpty(t *testing.T) {
	if got := NewSession(DefaultParams()).QoE(); got != 0 {
		t.Fatalf("empty QoE=%v", got)
	}
}

func TestRebufferHurtsQoE(t *testing.T) {
	base := NewSession(DefaultParams())
	stall := NewSession(DefaultParams())
	for i := 0; i < 5; i++ {
		base.Add(Chunk{BitrateMbps: 2})
		stall.Add(Chunk{BitrateMbps: 2, RebufferSec: 0.2})
	}
	if stall.QoE() >= base.QoE() {
		t.Fatal("rebuffering did not reduce QoE")
	}
	if got := stall.TotalRebuffer(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("TotalRebuffer=%v", got)
	}
}

func TestSmoothnessHurtsQoE(t *testing.T) {
	smooth := NewSession(DefaultParams())
	jumpy := NewSession(DefaultParams())
	rates := []float64{2, 2, 2, 2}
	jumps := []float64{1, 3, 1, 3} // same mean
	for i := range rates {
		smooth.Add(Chunk{BitrateMbps: rates[i]})
		jumpy.Add(Chunk{BitrateMbps: jumps[i]})
	}
	if jumpy.QoE() >= smooth.QoE() {
		t.Fatal("rate oscillation did not reduce QoE")
	}
}

func TestRecoveredFrameFraction(t *testing.T) {
	s := NewSession(DefaultParams())
	s.Add(Chunk{FramesTotal: 100, FramesRecovered: 10})
	s.Add(Chunk{FramesTotal: 100, FramesRecovered: 30})
	if got := s.RecoveredFrameFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("fraction=%v", got)
	}
	empty := NewSession(DefaultParams())
	if empty.RecoveredFrameFraction() != 0 {
		t.Fatal("empty fraction")
	}
}

func qualityMap() *QualityMap {
	return NewQualityMap([]RateQuality{
		{Mbps: 0.512, PSNR: 30},
		{Mbps: 1.024, PSNR: 33},
		{Mbps: 1.6, PSNR: 35},
		{Mbps: 2.64, PSNR: 37},
		{Mbps: 4.4, PSNR: 39},
	})
}

func TestQualityMapForward(t *testing.T) {
	m := qualityMap()
	if got := m.PSNRAt(1.024); math.Abs(got-33) > 1e-12 {
		t.Fatalf("exact point: %v", got)
	}
	mid := m.PSNRAt(1.312) // halfway 1.024→1.6
	if math.Abs(mid-34) > 1e-9 {
		t.Fatalf("interpolated: %v", mid)
	}
	if m.PSNRAt(0.1) != 30 || m.PSNRAt(100) != 39 {
		t.Fatal("clamping failed")
	}
}

func TestQualityMapInverse(t *testing.T) {
	m := qualityMap()
	for _, p := range m.Points() {
		if got := m.MbpsForPSNR(p.PSNR); math.Abs(got-p.Mbps) > 1e-9 {
			t.Fatalf("inverse at %v: %v want %v", p.PSNR, got, p.Mbps)
		}
	}
	// Round trip at an interior point.
	rate := 2.0
	if got := m.MbpsForPSNR(m.PSNRAt(rate)); math.Abs(got-rate) > 1e-9 {
		t.Fatalf("round trip: %v", got)
	}
	// Enhanced PSNR above the table caps at the top rate: enhancement
	// cannot claim more utility than the best ladder rung.
	if got := m.MbpsForPSNR(50); got != 4.4 {
		t.Fatalf("cap: %v", got)
	}
}

func TestQualityMapUnsorted(t *testing.T) {
	m := NewQualityMap([]RateQuality{{Mbps: 4, PSNR: 38}, {Mbps: 1, PSNR: 30}})
	if m.PSNRAt(1) != 30 {
		t.Fatal("sorting failed")
	}
}

func TestQualityMapEmpty(t *testing.T) {
	m := NewQualityMap(nil)
	if m.PSNRAt(1) != 0 || m.MbpsForPSNR(30) != 0 {
		t.Fatal("empty map must return zeros")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.RebufferPenalty != 4.3 || p.SmoothnessPenalty != 1 {
		t.Fatalf("defaults %+v", p)
	}
}
