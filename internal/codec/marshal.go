package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format of an encoded frame (big-endian):
//
//	u32 magic 'NRVF' | u32 index | u8 type | u16 w | u16 h | u16 nSlices
//	per slice: u16 rowStart | u16 rowCount | u32 qBits | u32 len | bytes
//
// The encoder-side reconstruction (Recon) is local state and is not
// transmitted.
const frameMagic = 0x4E525646 // "NRVF"

// MarshalBinary serialises the frame for transmission.
func (f *EncodedFrame) MarshalBinary() ([]byte, error) {
	if f.W < 0 || f.W > 0xFFFF || f.H < 0 || f.H > 0xFFFF {
		return nil, fmt.Errorf("codec: dimensions %dx%d out of wire range", f.W, f.H)
	}
	if len(f.Slices) > 0xFFFF {
		return nil, fmt.Errorf("codec: %d slices exceed wire range", len(f.Slices))
	}
	size := 4 + 4 + 1 + 2 + 2 + 2
	for i := range f.Slices {
		size += 2 + 2 + 4 + 4 + len(f.Slices[i].Data)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint32(out, frameMagic)
	out = binary.BigEndian.AppendUint32(out, uint32(f.Index))
	out = append(out, byte(f.Type))
	out = binary.BigEndian.AppendUint16(out, uint16(f.W))
	out = binary.BigEndian.AppendUint16(out, uint16(f.H))
	out = binary.BigEndian.AppendUint16(out, uint16(len(f.Slices)))
	for i := range f.Slices {
		s := &f.Slices[i]
		if s.MBRowStart < 0 || s.MBRowStart > 0xFFFF || s.MBRowCount < 0 || s.MBRowCount > 0xFFFF {
			return nil, fmt.Errorf("codec: slice rows %d+%d out of wire range", s.MBRowStart, s.MBRowCount)
		}
		out = binary.BigEndian.AppendUint16(out, uint16(s.MBRowStart))
		out = binary.BigEndian.AppendUint16(out, uint16(s.MBRowCount))
		out = binary.BigEndian.AppendUint32(out, math.Float32bits(s.Q))
		out = binary.BigEndian.AppendUint32(out, uint32(len(s.Data)))
		out = append(out, s.Data...)
	}
	return out, nil
}

// UnmarshalBinary parses a MarshalBinary payload. Recon is left nil.
func (f *EncodedFrame) UnmarshalBinary(data []byte) error {
	if len(data) < 15 {
		return fmt.Errorf("codec: frame payload too short (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint32(data) != frameMagic {
		return fmt.Errorf("codec: bad frame magic %#x", binary.BigEndian.Uint32(data))
	}
	f.Index = int(binary.BigEndian.Uint32(data[4:]))
	f.Type = FrameType(data[8])
	if f.Type != FrameI && f.Type != FrameP {
		return fmt.Errorf("codec: bad frame type %d", f.Type)
	}
	f.W = int(binary.BigEndian.Uint16(data[9:]))
	f.H = int(binary.BigEndian.Uint16(data[11:]))
	n := int(binary.BigEndian.Uint16(data[13:]))
	f.Recon = nil
	f.Slices = make([]Slice, 0, n)
	off := 15
	for i := 0; i < n; i++ {
		if len(data)-off < 12 {
			return fmt.Errorf("codec: truncated slice header %d", i)
		}
		var s Slice
		s.FrameIndex = f.Index
		s.Type = f.Type
		s.MBRowStart = int(binary.BigEndian.Uint16(data[off:]))
		s.MBRowCount = int(binary.BigEndian.Uint16(data[off+2:]))
		s.Q = math.Float32frombits(binary.BigEndian.Uint32(data[off+4:]))
		dlen := int(binary.BigEndian.Uint32(data[off+8:]))
		off += 12
		if dlen < 0 || len(data)-off < dlen {
			return fmt.Errorf("codec: truncated slice data %d (%d bytes)", i, dlen)
		}
		s.Data = append([]byte(nil), data[off:off+dlen]...)
		off += dlen
		f.Slices = append(f.Slices, s)
	}
	if off != len(data) {
		return fmt.Errorf("codec: %d trailing bytes", len(data)-off)
	}
	return nil
}
