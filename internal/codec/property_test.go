package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nerve/internal/metrics"
	"nerve/internal/vmath"
)

// Property: for any frame content, a full decode exactly reproduces the
// encoder's reconstruction, and quality stays bounded below the raw input.
func TestPropertyDecodeMatchesRecon(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 32 + rng.Intn(4)*16
		h := 32 + rng.Intn(3)*16
		cfg := Config{W: w, H: h, GOP: 3, TargetBitrate: 400e3}
		enc := NewEncoder(cfg)
		dec := NewDecoder(cfg)
		for n := 0; n < 4; n++ {
			frame := vmath.NewPlane(w, h)
			for i := range frame.Pix {
				frame.Pix[i] = rng.Float32() * 255
			}
			frame = vmath.GaussianBlur(frame, 1.0).Clamp255()
			ef := enc.Encode(frame)
			res, err := dec.Decode(ef, nil)
			if err != nil {
				return false
			}
			if vmath.MAE(res.Frame, ef.Recon) > 1e-3 {
				return false
			}
			if min, max := res.Frame.MinMax(); min < 0 || max > 255 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: dropping any single slice never breaks decoding of the others
// and never improves quality over the full decode.
func TestPropertySingleSliceLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{W: 96, H: 96, GOP: 1, TargetBitrate: 900e3, PacketPayload: 250}
	enc := NewEncoder(cfg)
	frame := vmath.NewPlane(96, 96)
	for i := range frame.Pix {
		frame.Pix[i] = rng.Float32() * 255
	}
	frame = vmath.GaussianBlur(frame, 1.2).Clamp255()

	ef := enc.Encode(frame)
	if len(ef.Slices) < 2 {
		t.Skip("single slice at this size")
	}
	fullDec := NewDecoder(cfg)
	full, err := fullDec.Decode(ef, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullPSNR := metrics.PSNR(frame, full.Frame)
	for drop := 0; drop < len(ef.Slices); drop++ {
		dec := NewDecoder(cfg)
		recv := make([]bool, len(ef.Slices))
		for i := range recv {
			recv[i] = i != drop
		}
		res, err := dec.Decode(ef, recv)
		if err != nil {
			t.Fatalf("drop %d: %v", drop, err)
		}
		if res.Complete() {
			t.Fatalf("drop %d reported complete", drop)
		}
		if got := metrics.PSNR(frame, res.Frame); got > fullPSNR+1e-9 {
			t.Fatalf("drop %d improved quality: %v > %v", drop, got, fullPSNR)
		}
		// Received rows must still be bit-exact with the full decode.
		s := ef.Slices[(drop+1)%len(ef.Slices)]
		y := s.MBRowStart * MBSize
		for x := 0; x < cfg.W; x++ {
			if res.Frame.At(x, y) != full.Frame.At(x, y) {
				t.Fatalf("drop %d: received row differs at x=%d", drop, x)
			}
		}
	}
}

// Property: rate control responds monotonically-ish — quadrupling the
// target bitrate must not reduce reconstruction quality.
func TestPropertyRateMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := vmath.NewPlane(64, 64)
		for i := range frame.Pix {
			frame.Pix[i] = rng.Float32() * 255
		}
		frame = vmath.GaussianBlur(frame, 1.0).Clamp255()
		q := func(rate float64) float64 {
			enc := NewEncoder(Config{W: 64, H: 64, GOP: 1, TargetBitrate: rate})
			var last float64
			for n := 0; n < 4; n++ { // let rate control settle
				ef := enc.Encode(frame)
				last = metrics.PSNR(frame, ef.Recon)
			}
			return last
		}
		return q(1200e3) >= q(300e3)-0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
