package nerve

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	const w, h = 160, 96
	gen := NewGenerator(Categories()[3], 1)
	srv, err := NewServer(ServerConfig{W: w, H: h, TargetBitrate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{W: w, H: h, EnableRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		src := gen.Render(i, w, h)
		sf, err := srv.Process(src)
		if err != nil {
			t.Fatal(err)
		}
		in := ClientInput{Encoded: sf.Encoded, Code: sf.Code}
		if i == 4 {
			in.Encoded = nil
		}
		res, err := cli.Next(in)
		if err != nil {
			t.Fatal(err)
		}
		if p := PSNR(src, res.Frame); p < 20 {
			t.Fatalf("frame %d: %v dB", i, p)
		}
		if s := SSIM(src, res.Frame); s <= 0 || s > 1 {
			t.Fatalf("frame %d: SSIM %v", i, s)
		}
	}
	if cli.RecoveredFraction() <= 0 {
		t.Fatal("no recovery recorded")
	}
}

func TestFacadeLadder(t *testing.T) {
	rs := Resolutions()
	if len(rs) != 5 || rs[0] != R240 || rs[4] != R1080 {
		t.Fatalf("ladder: %v", rs)
	}
	if len(Categories()) != 10 {
		t.Fatal("categories")
	}
}

func TestFacadeSimulation(t *testing.T) {
	tr := GenerateTrace(Net4G, 120, 1).Downscale(1.5e6, 0.3e6, 5e6)
	set := NewSchemeSet()
	res := Simulate(SimConfig{Trace: tr, Seed: 1}, set.Full())
	if len(res.Series) == 0 {
		t.Fatal("no chunks simulated")
	}
	base := Simulate(SimConfig{Trace: tr, Seed: 1}, set.Baseline())
	if res.QoE <= base.QoE {
		t.Fatalf("full system (%v) not above baseline (%v)", res.QoE, base.QoE)
	}
}

func TestFacadeABRConstructors(t *testing.T) {
	for _, a := range []ABRAlgorithm{NewMPC(), NewRateBased(), NewBufferBased(), NewPensieve(1)} {
		a.Reset()
		if a.Name() == "" {
			t.Fatal("unnamed algorithm")
		}
	}
	if DefaultFECPlanner().Redundancy(0.01) <= 0 {
		t.Fatal("planner")
	}
	if !IPhone12().SupportsRealtime(R1080) {
		t.Fatal("device model")
	}
}

func TestFacadeStandaloneComponents(t *testing.T) {
	const w, h = 96, 64
	gen := NewGenerator(Categories()[2], 3)
	prev := gen.Render(10, w, h)
	cur := gen.Render(11, w, h)

	ext := NewCodeExtractor(0, 0)
	pc := ext.Extract(prev)
	cc := ext.Extract(cur)
	if pc.SizeBytes() != 1024 {
		t.Fatalf("code size %d", pc.SizeBytes())
	}
	rec := NewRecoverer(RecoveryConfig{OutW: w, OutH: h})
	out := rec.Recover(RecoveryInput{Prev: prev, PrevCode: pc, CurCode: cc})
	if out.W != w || out.H != h {
		t.Fatal("recovery geometry")
	}
	srr := NewSuperResolver(SRConfig{OutW: w * 2, OutH: h * 2})
	up := srr.Upscale(prev)
	if up.W != w*2 {
		t.Fatal("SR geometry")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	var buf bytes.Buffer
	if err := RunExperiment("lat", ExperimentOptions{Quick: true, Seed: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "30fps") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	if err := RunExperiment("bogus", ExperimentOptions{}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTrainPensieveSmoke(t *testing.T) {
	tr := GenerateTrace(Net4G, 60, 2).Downscale(1.5e6, 0.3e6, 5e6)
	agent := TrainPensieve([]*Trace{tr}, 3, 1)
	res := Simulate(SimConfig{Trace: tr, Seed: 2}, Scheme{Name: "pensieve", ABR: agent})
	if len(res.Series) == 0 {
		t.Fatal("pensieve session empty")
	}
}
