package vmath

import "testing"

func TestPixelByteRounding(t *testing.T) {
	cases := []struct {
		in   float32
		want uint8
	}{
		{-10, 0}, {-0.001, 0}, {0, 0}, {0.49, 0}, {0.5, 1},
		{127.4, 127}, {127.5, 128}, {254.4, 254}, {254.5, 255},
		{255, 255}, {300, 255},
	}
	for _, c := range cases {
		if got := PixelByte(c.in); got != c.want {
			t.Fatalf("PixelByte(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBytePlaneFromPlane(t *testing.T) {
	src := NewPlane(5, 3)
	for i := range src.Pix {
		src.Pix[i] = float32(i) * 20.4
	}
	src.Pix[0] = -7
	src.Pix[1] = 300
	b := NewBytePlane(5, 3).FromPlane(src)
	for i, v := range src.Pix {
		if b.Pix[i] != PixelByte(v) {
			t.Fatalf("pixel %d: %d, want %d", i, b.Pix[i], PixelByte(v))
		}
	}
	if b.At(1, 0) != 255 || b.AtClamp(-3, 99) != b.At(0, 2) {
		t.Fatal("At/AtClamp disagree with layout")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewBytePlane(4, 3).FromPlane(src)
}

func TestBytePoolBucketReuse(t *testing.T) {
	if RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; reuse is not deterministic there")
	}
	var p BytePool
	a := p.Get(20, 10)
	aPix := &a.Pix[:1][0]
	p.Put(a)
	// Same bucket (200 → 256): must reuse the same backing array.
	b := p.Get(16, 16)
	if &b.Pix[:1][0] != aPix {
		t.Fatal("bucket did not reuse the freed backing array")
	}
	if b.W != 16 || b.H != 16 || len(b.Pix) != 256 {
		t.Fatalf("reused plane geometry %dx%d len %d", b.W, b.H, len(b.Pix))
	}
	p.Put(b)
}

func TestBytePoolStats(t *testing.T) {
	var p BytePool
	a := p.Get(8, 8) // exact 64-byte bucket
	if s := p.Stats(); s.Misses != 1 || s.BytesLive != 64 {
		t.Fatalf("after Get: %+v", s)
	}
	p.Put(a)
	if s := p.Stats(); s.Puts != 1 || s.BytesLive != 0 {
		t.Fatalf("after Put: %+v", s)
	}
	// Foreign plane with non-bucket capacity is dropped.
	p.Put(&BytePlane{W: 3, H: 3, Pix: make([]uint8, 9)})
	if s := p.Stats(); s.Drops != 1 {
		t.Fatalf("foreign Put not dropped: %+v", s)
	}
}

func TestBytePoolMissCountsPlaneAlloc(t *testing.T) {
	var p BytePool
	before := PlaneAllocs()
	pl := p.Get(32, 32)
	if d := PlaneAllocs() - before; d != 1 {
		t.Fatalf("pool miss moved PlaneAllocs by %d, want 1", d)
	}
	p.Put(pl)
	if RaceEnabled {
		return
	}
	before = PlaneAllocs()
	pl = p.Get(32, 32)
	if d := PlaneAllocs() - before; d != 0 {
		t.Fatalf("pool hit moved PlaneAllocs by %d, want 0", d)
	}
	p.Put(pl)
}
