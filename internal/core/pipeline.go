package core

import (
	"time"

	"nerve/internal/par"
	"nerve/internal/telemetry"
)

// Pipeline runs a Client's two-stage frame graph software-pipelined: while
// frame n is still being enhanced (SR head — stage B) on a pool worker, the
// caller's goroutine already ingests frame n+1 (decode/recover — stage A).
// Stage A carries all the temporal state and must stay sequential; stage B
// is a pure function of its input plane, so exactly one B is in flight at a
// time and the overlap changes no pixel: output frames are bit-identical to
// Client.Next for any worker-pool size, including the budget-exhausted case
// where par.Go degrades to inline execution and the schedule collapses to
// exactly Next's.
//
// One caveat under ClientConfig.Tier == TierAuto: the governor's
// observation of frame n arrives at the join inside Push(n+1), after that
// slot's ingest already chose its tier — so pipelined tier decisions lag
// sequential ones by one frame (tier(n+1) is a function of frames ≤ n−1
// rather than ≤ n). The switch sequence is still deterministic for any
// pool size (observations stay in playout order on the caller goroutine),
// but Auto-tier output is only bit-identical between Push and Next drivers
// when the lag changes no decision. Pinned tiers are unaffected.
//
// The price of the overlap is one slot of latency: Push(n) returns frame
// n−1 (nil on the first call), and Flush drains the last frame at end of
// stream. Per-frame telemetry moves from ObserveFrame to
// ObservePipelineFrame: the deadline tracker sees each slot's critical-path
// time — the time Push actually blocks the caller, ingest(n) plus whatever
// remains of enhance(n−1) at join — because that is what bounds the
// sustainable frame rate. The summed stage busy time (ingest + enhance of
// the completed frame) gets its own histogram, so the overlap won stays
// visible as busy/critical > 1 (OBSERVABILITY.md).
//
// A Pipeline wraps the Client exclusively: interleaving Push with direct
// Next calls on the same Client is a data race on the temporal state.
type Pipeline struct {
	c *Client

	// Frame in flight: result of the pending stage B, its join handle, and
	// the timing halves of the telemetry record.
	pending *FrameResult
	join    func()
	ingest  time.Duration // stage A busy time of the pending frame
	enhance time.Duration // stage B busy time, written inside the task
}

// NewPipeline wraps c in a pipelined scheduler. The client must not be
// driven directly while the pipeline owns it.
func NewPipeline(c *Client) *Pipeline {
	return &Pipeline{c: c}
}

// Client returns the wrapped client (for counters such as ClassCounts).
func (p *Pipeline) Client() *Client { return p.c }

// Push feeds the next playout slot and returns the previous slot's
// completed frame — nil (with nil error) on the very first call. On a
// decode error the pipeline state is unchanged: the pending frame stays
// pending and the failed slot consumed no temporal state, so the caller
// may retry or Flush.
func (p *Pipeline) Push(in Input) (*FrameResult, error) {
	start := time.Now()
	res, outTx, err := p.c.stageIngest(in)
	if err != nil {
		return nil, err
	}
	ingest := time.Since(start)
	var done *FrameResult
	if p.pending != nil {
		p.join()
		done = p.pending
		// busy = what the completed frame cost across both stages;
		// critical = how long this Push blocked the caller (ingest of the
		// new slot + the tail of the joined enhance). Their totals' ratio
		// is the snapshot's overlap figure. The governor sees the busy
		// time — what the frame actually cost, not what the overlap hid.
		telemetry.Default.ObservePipelineFrame(p.ingest+p.enhance, time.Since(start))
		p.c.observeGov(done, p.ingest+p.enhance)
	}
	p.pending = res
	p.ingest = ingest
	p.join = par.Go(func() {
		t0 := time.Now()
		res.Frame = p.c.stageEnhance(outTx, res.Tier)
		p.enhance = time.Since(t0)
	})
	return done, nil
}

// Flush joins the in-flight enhance stage and returns its completed frame,
// or nil when nothing is pending. Call it after the last Push to drain the
// final frame.
func (p *Pipeline) Flush() *FrameResult {
	if p.pending == nil {
		return nil
	}
	start := time.Now()
	p.join()
	done := p.pending
	p.pending = nil
	p.join = nil
	// The drain slot has no new ingest to hide the join behind: its
	// critical path is its own ingest plus the remaining enhance tail.
	telemetry.Default.ObservePipelineFrame(p.ingest+p.enhance, p.ingest+time.Since(start))
	p.c.observeGov(done, p.ingest+p.enhance)
	return done
}
