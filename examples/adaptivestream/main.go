// Adaptive streaming demo: run the full NERVE system (recovery + SR +
// enhancement-aware ABR) against the baselines over each network type and
// print the Fig. 18-style QoE comparison.
package main

import (
	"fmt"

	"nerve"
)

func main() {
	set := nerve.NewSchemeSet()
	schemes := []nerve.Scheme{set.Baseline(), set.BothAlone(), set.NEMO(), set.Full()}
	nets := []nerve.NetworkType{nerve.Net3G, nerve.Net4G, nerve.Net5G, nerve.NetWiFi}

	fmt.Printf("%-14s", "scheme")
	for _, nt := range nets {
		fmt.Printf("%8s", nt)
	}
	fmt.Println()

	for _, sc := range schemes {
		fmt.Printf("%-14s", sc.Name)
		for _, nt := range nets {
			var q float64
			const runs = 4
			for s := int64(0); s < runs; s++ {
				tr := nerve.GenerateTrace(nt, 240, 100+s).Downscale(1.5e6, 0.3e6, 5e6)
				res := nerve.Simulate(nerve.SimConfig{Trace: tr, Seed: 10 + s}, sc)
				q += res.QoE
			}
			fmt.Printf("%8.3f", q/runs)
		}
		fmt.Println()
	}

	// Detail for one 5G session with the full system.
	tr := nerve.GenerateTrace(nerve.Net5G, 240, 3).Downscale(1.5e6, 0.3e6, 5e6)
	res := nerve.Simulate(nerve.SimConfig{Trace: tr, Seed: 3}, set.Full())
	fmt.Printf("\n5G detail (full system): QoE %.3f, %.1f%% frames recovered, %.1f%% super-resolved\n",
		res.QoE, res.RecoveredFrac*100, res.SRFrac*100)
}
