package codec

import (
	"fmt"
	"math"

	"nerve/internal/bits"
	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// FrameType distinguishes intra (I) from predicted (P) frames.
type FrameType uint8

const (
	// FrameI is an intra frame: decodable without a reference.
	FrameI FrameType = iota
	// FrameP is a predicted frame: motion-compensated from the previous
	// reconstructed frame.
	FrameP
)

func (t FrameType) String() string {
	if t == FrameI {
		return "I"
	}
	return "P"
}

// Config parameterises an encoder/decoder pair.
type Config struct {
	W, H          int     // frame dimensions in pixels
	GOP           int     // intra period in frames (paper: 120 = 4 s)
	TargetBitrate float64 // bits per second
	FPS           float64 // frames per second
	PacketPayload int     // target slice payload in bytes (≈ one packet)
	SearchRange   int     // motion search range in pixels
}

// withDefaults fills unset fields with the system defaults.
func (c Config) withDefaults() Config {
	if c.GOP <= 0 {
		c.GOP = 120
	}
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.PacketPayload <= 0 {
		c.PacketPayload = 1100
	}
	if c.SearchRange <= 0 {
		c.SearchRange = 15
	}
	if c.TargetBitrate <= 0 {
		c.TargetBitrate = 1e6
	}
	return c
}

// Slice is an independently decodable group of macroblock rows. One slice is
// carried in one transport packet; losing a packet loses exactly its rows.
type Slice struct {
	FrameIndex int
	Type       FrameType
	MBRowStart int // first macroblock row covered
	MBRowCount int
	Q          float32
	Data       []byte
}

// Bytes returns the payload size of the slice including a nominal 8-byte
// header (frame index, row range, quantiser).
func (s *Slice) Bytes() int { return len(s.Data) + 8 }

// EncodedFrame is the encoder output for one frame.
type EncodedFrame struct {
	Index  int
	Type   FrameType
	W, H   int
	Slices []Slice
	// Recon is the encoder-side reconstruction: the frame a decoder
	// produces when every slice arrives. Useful for quality accounting.
	//
	// Ownership: Recon comes from the plane pool and belongs to the
	// caller, but the encoder keeps it as the prediction reference for the
	// following frame — do not vmath.Put it (or mutate it) until the next
	// Encode call on the same encoder has returned.
	Recon *vmath.Plane
}

// TotalBytes returns the summed payload size of all slices.
func (f *EncodedFrame) TotalBytes() int {
	n := 0
	for i := range f.Slices {
		n += f.Slices[i].Bytes()
	}
	return n
}

// Encoder compresses a frame sequence. Create one with NewEncoder; it is not
// safe for concurrent use.
type Encoder struct {
	cfg        Config
	ref        *vmath.Plane // previous reconstruction
	qI, qP     float32
	frameCount int
	mbRows     int
	mbCols     int

	// Motion-search state. curB/refB are pooled byte shadows of the frame
	// being encoded and of the prediction reference — sadMB runs on bytes
	// (see motion.go). modeField/mvField/sadField cache the per-macroblock
	// decisions of the current frame: mode decisions and motion vectors are
	// independent of the quantiser, so a rate-control re-encode replays
	// them (searchValid) instead of searching again. prevMVs/prevSADs are
	// the previous P frame's fields (motionValid) and drive the temporal
	// median predictor and adaptive early termination.
	curB, refB  *vmath.BytePlane
	modeField   []mbMode
	mvField     []MV
	sadField    []int64
	prevMVs     []MV
	prevSADs    []int64
	searchValid bool
	motionValid bool
}

// NewEncoder returns an encoder for the configuration.
func NewEncoder(cfg Config) *Encoder {
	cfg = cfg.withDefaults()
	if cfg.W <= 0 || cfg.H <= 0 {
		panic(fmt.Sprintf("codec: invalid dimensions %dx%d", cfg.W, cfg.H))
	}
	mbRows := (cfg.H + MBSize - 1) / MBSize
	mbCols := (cfg.W + MBSize - 1) / MBSize
	n := mbRows * mbCols
	return &Encoder{
		cfg:       cfg,
		qI:        6,
		qP:        4,
		mbRows:    mbRows,
		mbCols:    mbCols,
		curB:      vmath.GetBytes(cfg.W, cfg.H),
		refB:      vmath.GetBytes(cfg.W, cfg.H),
		modeField: make([]mbMode, n),
		mvField:   make([]MV, n),
		sadField:  make([]int64, n),
		prevMVs:   make([]MV, n),
		prevSADs:  make([]int64, n),
	}
}

// Config returns the encoder configuration (defaults applied).
func (e *Encoder) Config() Config { return e.cfg }

// MBRows returns the number of macroblock rows per frame.
func (e *Encoder) MBRows() int { return e.mbRows }

// frameBudget returns the bit budget for the next frame of the given type.
// Intra frames receive a 6× weight within the GOP.
func (e *Encoder) frameBudget(t FrameType) float64 {
	base := e.cfg.TargetBitrate / e.cfg.FPS
	const wI = 6.0
	g := float64(e.cfg.GOP)
	if t == FrameI {
		return base * g * wI / (wI + g - 1)
	}
	return base * g / (wI + g - 1)
}

// Encode compresses the next frame. The frame must match the configured
// dimensions. Rate control adapts the quantiser toward the target bitrate,
// re-encoding once when a frame lands far from its budget.
func (e *Encoder) Encode(frame *vmath.Plane) *EncodedFrame {
	defer telemetry.Start(telemetry.StageEncode).Stop()
	if frame.W != e.cfg.W || frame.H != e.cfg.H {
		panic(fmt.Sprintf("codec: frame %dx%d does not match config %dx%d", frame.W, frame.H, e.cfg.W, e.cfg.H))
	}
	ftype := FrameP
	if e.frameCount%e.cfg.GOP == 0 || e.ref == nil {
		ftype = FrameI
	}
	q := e.qP
	if ftype == FrameI {
		q = e.qI
	}
	budget := e.frameBudget(ftype)

	e.searchValid = false
	if ftype == FrameP {
		// refB was refreshed from the previous reconstruction at the end of
		// the last Encode; only the current frame's shadow is rebuilt here.
		e.curB.FromPlane(frame)
	}

	ef := e.encodeAttempt(frame, ftype, q)
	bitsUsed := float64(ef.TotalBytes() * 8)
	if bitsUsed > 1.5*budget || bitsUsed < 0.5*budget {
		q = clampQ(q * float32(math.Pow(bitsUsed/budget, 0.8)))
		// The first attempt is discarded whole; recycle its
		// reconstruction rather than leaving a full frame to the GC.
		vmath.Put(ef.Recon)
		// Mode decisions and motion vectors do not depend on q, so the
		// re-encode replays the cached fields instead of searching again.
		e.searchValid = ftype == FrameP
		ef = e.encodeAttempt(frame, ftype, q)
		bitsUsed = float64(ef.TotalBytes() * 8)
	}
	e.searchValid = false
	// Slow adaptation for the next frame of this type.
	adj := clampQ(q * float32(math.Pow(bitsUsed/budget, 0.5)))
	if ftype == FrameI {
		e.qI = adj
	} else {
		e.qP = adj
	}

	e.ref = ef.Recon
	// Rotate the motion fields into the temporal-predictor slots; an intra
	// frame breaks the chain.
	if ftype == FrameP {
		e.prevMVs, e.mvField = e.mvField, e.prevMVs
		e.prevSADs, e.sadField = e.sadField, e.prevSADs
		e.motionValid = true
	} else {
		e.motionValid = false
	}
	if (e.frameCount+1)%e.cfg.GOP != 0 {
		// The next frame will be predicted: shadow its reference now.
		e.refB.FromPlane(ef.Recon)
	}
	ef.Index = e.frameCount
	for i := range ef.Slices {
		ef.Slices[i].FrameIndex = e.frameCount
	}
	e.frameCount++
	return ef
}

func clampQ(q float32) float32 {
	if q < 0.5 {
		return 0.5
	}
	if q > 120 {
		return 120
	}
	return q
}

// encodeAttempt performs one encoding pass at quantiser q.
//
// Macroblock rows are mutually independent by construction — the MV
// predictor resets at every row so slices stay independently decodable,
// prediction reads only the previous frame's reconstruction (e.ref), and a
// row reconstructs only its own pixel band — so pass 1 encodes every row
// concurrently on the shared pool, each into a private bit writer. Pass 2
// concatenates the row bitstreams in order and cuts slice boundaries at the
// same byte thresholds the sequential encoder used, producing a
// bit-identical stream for any pool size.
func (e *Encoder) encodeAttempt(frame *vmath.Plane, ftype FrameType, q float32) *EncodedFrame {
	// Every pixel of recon is written below (the macroblock grid covers the
	// frame and each mode reconstructs its whole clipped block), so a dirty
	// pooled plane is safe.
	recon := vmath.Get(e.cfg.W, e.cfg.H)
	ef := &EncodedFrame{Type: ftype, W: e.cfg.W, H: e.cfg.H, Recon: recon}

	rowW := make([]bits.Writer, e.mbRows)
	par.For(e.mbRows, func(row int) {
		e.encodeMBRow(frame, recon, ftype, q, row, &rowW[row])
	})

	var w *bits.Writer
	sliceStartRow := 0
	flushSlice := func(endRow int) {
		if w == nil {
			return
		}
		ef.Slices = append(ef.Slices, Slice{
			Type:       ftype,
			MBRowStart: sliceStartRow,
			MBRowCount: endRow - sliceStartRow,
			Q:          q,
			Data:       w.Bytes(),
		})
		w = nil
	}

	for row := 0; row < e.mbRows; row++ {
		if w == nil {
			w = &bits.Writer{}
			sliceStartRow = row
		}
		w.Append(&rowW[row])
		if w.Len() >= e.cfg.PacketPayload {
			flushSlice(row + 1)
		}
	}
	flushSlice(e.mbRows)
	return ef
}

// encodeMBRow encodes one macroblock row into w, reconstructing into recon.
// The motion-vector predictor resets at the start of every row so that
// slices (which are whole rows) stay independently decodable.
//
// For P frames the row splits into a decision step — skip check first (a
// skipped block never needs a search), then predictive motion search, then
// the intra fallback — and an emission step. Decisions land in the
// mode/mv/sad fields; when e.searchValid is set (rate-control re-encode)
// the decision step is skipped entirely and the cached fields replay,
// producing the identical bitstream a fresh search would (decisions are
// q-independent). Temporal state (e.prevMVs/prevSADs) is read-only during
// the frame and all per-block writes go to this row's own field slots, so
// rows stay bit-exact under any worker-pool size.
func (e *Encoder) encodeMBRow(frame, recon *vmath.Plane, ftype FrameType, q float32, row int, w *bits.Writer) {
	cy := row * MBSize
	if ftype == FrameI {
		for col := 0; col < e.mbCols; col++ {
			w.WriteUE(uint32(modeIntra))
			e.codeIntraMB(frame, recon, col*MBSize, cy, q, w)
		}
		return
	}
	var st searchStats
	var prevMVs []MV
	if e.motionValid {
		prevMVs = e.prevMVs
	}
	pred := MV{}
	lastSAD := int64(-1)
	for col := 0; col < e.mbCols; col++ {
		cx := col * MBSize
		idx := row*e.mbCols + col
		if !e.searchValid {
			// Skip: the predictor vector is already good enough — decided
			// before any search, so skipped blocks cost one SAD.
			st.points++
			sadPred := sadMB(e.curB, e.refB, cx, cy, pred, 1<<62, &st)
			if sadPred <= skipSADMax {
				e.modeField[idx] = modeSkip
				e.mvField[idx] = pred
				e.sadField[idx] = sadPred
			} else {
				prevSAD := int64(-1)
				if e.motionValid {
					prevSAD = e.prevSADs[idx]
				}
				seed := predictMV(prevMVs, e.mbCols, row, col, pred)
				mv, sad := searchMV(e.curB, e.refB, cx, cy, seed, pred,
					e.cfg.SearchRange, earlyTerm(lastSAD, prevSAD), &st)
				// Intra fallback when motion compensation fails (scene cut,
				// new content): compare against deviation from the block mean.
				if sad > intraCost(frame, cx, cy) {
					e.modeField[idx] = modeIntra
					e.mvField[idx] = MV{}
					e.sadField[idx] = -1
				} else {
					e.modeField[idx] = modeInter
					e.mvField[idx] = mv
					e.sadField[idx] = sad
				}
			}
		}
		switch e.modeField[idx] {
		case modeSkip:
			w.WriteUE(uint32(modeSkip))
			mcMB(e.ref, recon, cx, cy, pred, e.cfg.W, e.cfg.H)
			lastSAD = e.sadField[idx]
		case modeIntra:
			w.WriteUE(uint32(modeIntra))
			e.codeIntraMB(frame, recon, cx, cy, q, w)
			pred = MV{}
			lastSAD = -1
		case modeInter:
			mv := e.mvField[idx]
			w.WriteUE(uint32(modeInter))
			w.WriteSE(int32(mv.X - pred.X))
			w.WriteSE(int32(mv.Y - pred.Y))
			e.codeInterMB(frame, recon, cx, cy, mv, q, w)
			pred = mv
			lastSAD = e.sadField[idx]
		}
	}
	st.flush()
}

type mbMode uint32

const (
	modeSkip mbMode = iota
	modeInter
	modeIntra
)

// skipSADMax is the skip-mode threshold: a predictor-vector SAD at or
// below ~2 grey levels per pixel codes as a skip.
const skipSADMax = int64(MBSize * MBSize * 2)

// intraCost estimates the cost of intra-coding a macroblock as its total
// absolute deviation from the block mean, scaled up slightly to bias toward
// inter coding.
func intraCost(frame *vmath.Plane, cx, cy int) int64 {
	var sum float64
	var n int
	for y := 0; y < MBSize && cy+y < frame.H; y++ {
		for x := 0; x < MBSize && cx+x < frame.W; x++ {
			sum += float64(frame.At(cx+x, cy+y))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	var dev float64
	for y := 0; y < MBSize && cy+y < frame.H; y++ {
		for x := 0; x < MBSize && cx+x < frame.W; x++ {
			dev += math.Abs(float64(frame.At(cx+x, cy+y)) - mean)
		}
	}
	return int64(dev * 1.2)
}

// mcMB writes the motion-compensated prediction of one macroblock into dst.
func mcMB(ref, dst *vmath.Plane, cx, cy int, mv MV, w, h int) {
	for y := 0; y < MBSize; y++ {
		py := cy + y
		if py >= h {
			break
		}
		for x := 0; x < MBSize; x++ {
			px := cx + x
			if px >= w {
				break
			}
			dst.Pix[py*dst.W+px] = ref.AtClamp(px+mv.X, py+mv.Y)
		}
	}
}

// codeIntraMB codes the four 8×8 blocks of a macroblock against the flat
// predictor 128 and reconstructs into recon.
func (e *Encoder) codeIntraMB(frame, recon *vmath.Plane, cx, cy int, q float32, w *bits.Writer) {
	if xf.fdct4x != nil {
		var blks [4][64]float32
		gatherIntra4(frame, cx, cy, &blks)
		rec := codeMB4(&blks, q, w)
		for b := 0; b < 4; b++ {
			writeBlock(recon, cx+(b&1)*blockSize, cy+(b>>1)*blockSize, &rec[b], 128)
		}
		return
	}
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			x0 := cx + bx*blockSize
			y0 := cy + by*blockSize
			var blk [64]float32
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					blk[y*8+x] = frame.AtClamp(x0+x, y0+y) - 128
				}
			}
			rec := codeBlock(&blk, q, w)
			writeBlock(recon, x0, y0, rec, 128)
		}
	}
}

// codeInterMB codes the motion-compensated residual of a macroblock.
func (e *Encoder) codeInterMB(frame, recon *vmath.Plane, cx, cy int, mv MV, q float32, w *bits.Writer) {
	if xf.fdct4x != nil {
		var blks, pred [4][64]float32
		for b := 0; b < 4; b++ {
			x0 := cx + (b&1)*blockSize
			y0 := cy + (b>>1)*blockSize
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					p := e.ref.AtClamp(x0+x+mv.X, y0+y+mv.Y)
					pred[b][y*8+x] = p
					blks[b][y*8+x] = frame.AtClamp(x0+x, y0+y) - p
				}
			}
		}
		rec := codeMB4(&blks, q, w)
		for b := 0; b < 4; b++ {
			writeInterBlock(recon, cx+(b&1)*blockSize, cy+(b>>1)*blockSize, &pred[b], &rec[b])
		}
		return
	}
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			x0 := cx + bx*blockSize
			y0 := cy + by*blockSize
			var blk, predB [64]float32
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					p := e.ref.AtClamp(x0+x+mv.X, y0+y+mv.Y)
					predB[y*8+x] = p
					blk[y*8+x] = frame.AtClamp(x0+x, y0+y) - p
				}
			}
			rec := codeBlock(&blk, q, w)
			writeInterBlock(recon, x0, y0, &predB, rec)
		}
	}
}

// writeInterBlock reconstructs one inter block (prediction + residual,
// clamped) into dst, bounds-checked at the frame edge.
func writeInterBlock(dst *vmath.Plane, x0, y0 int, pred, rec *[64]float32) {
	for y := 0; y < blockSize; y++ {
		py := y0 + y
		if py >= dst.H {
			break
		}
		for x := 0; x < blockSize; x++ {
			px := x0 + x
			if px >= dst.W {
				break
			}
			dst.Pix[py*dst.W+px] = clamp255(pred[y*8+x] + rec[y*8+x])
		}
	}
}

// codeBlock transforms, quantises and entropy-codes an 8×8 block, returning
// the reconstructed (dequantised, inverse-transformed) block.
func codeBlock(blk *[64]float32, q float32, w *bits.Writer) *[64]float32 {
	var coef [64]float32
	xf.fdct(blk, &coef)
	var levels [64]int32
	quantise(&coef, q, &levels)
	writeLevels(&levels, w)
	var deq [64]float32
	dequantise(&levels, q, &deq)
	var rec [64]float32
	xf.idct(&deq, &rec)
	return &rec
}

// writeLevels entropy-codes one block's quantised levels: zigzag run/level
// coding, count of non-zeros, then (run, level) pairs.
func writeLevels(levels *[64]int32, w *bits.Writer) {
	var nz uint32
	for _, i := range zigzag {
		if levels[i] != 0 {
			nz++
		}
	}
	w.WriteUE(nz)
	run := uint32(0)
	for _, i := range zigzag {
		if levels[i] == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(levels[i])
		run = 0
	}
}

func writeBlock(dst *vmath.Plane, x0, y0 int, blk *[64]float32, bias float32) {
	for y := 0; y < blockSize; y++ {
		py := y0 + y
		if py >= dst.H {
			break
		}
		for x := 0; x < blockSize; x++ {
			px := x0 + x
			if px >= dst.W {
				break
			}
			dst.Pix[py*dst.W+px] = clamp255(blk[y*8+x] + bias)
		}
	}
}

func clamp255(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// DecodeResult carries a decoded frame plus the per-pixel received mask
// (1 = reconstructed from received data, 0 = missing/concealed).
//
// Ownership: both planes come from the plane pool and belong to the
// caller. Mask may be vmath.Put as soon as the caller is done with it.
// Frame doubles as the decoder's prediction reference for the next frame
// (unless SetReference replaces it first), so it must not be Put or
// mutated while it may still be the live reference.
type DecodeResult struct {
	Frame *vmath.Plane
	Mask  *vmath.Plane
	// RowsReceived counts macroblock rows reconstructed from real data.
	RowsReceived int
	// RowsTotal is the number of macroblock rows in the frame.
	RowsTotal int
}

// Complete reports whether every macroblock row was received.
func (r *DecodeResult) Complete() bool { return r.RowsReceived == r.RowsTotal }

// ReceivedFraction returns the fraction of rows reconstructed from data.
func (r *DecodeResult) ReceivedFraction() float64 {
	if r.RowsTotal == 0 {
		return 0
	}
	return float64(r.RowsReceived) / float64(r.RowsTotal)
}

// Decoder reconstructs frames from (possibly incomplete) slice sets. It
// keeps the previous decoded frame as the motion-compensation reference;
// the client may override it with a recovered frame via SetReference —
// exactly what the NERVE client does after running the recovery model.
type Decoder struct {
	cfg    Config
	ref    *vmath.Plane
	mbRows int
	mbCols int
}

// NewDecoder returns a decoder matching cfg.
func NewDecoder(cfg Config) *Decoder {
	cfg = cfg.withDefaults()
	return &Decoder{
		cfg:    cfg,
		mbRows: (cfg.H + MBSize - 1) / MBSize,
		mbCols: (cfg.W + MBSize - 1) / MBSize,
	}
}

// SetReference overrides the prediction reference for the next frame
// (e.g. with the output of the recovery model). The decoder only ever
// reads the reference — it borrows p; the caller keeps ownership and must
// simply not vmath.Put or mutate it while it remains the reference.
func (d *Decoder) SetReference(p *vmath.Plane) {
	if p != nil && (p.W != d.cfg.W || p.H != d.cfg.H) {
		panic("codec: reference size mismatch")
	}
	d.ref = p
}

// Reference returns the current prediction reference (may be nil before the
// first decode).
func (d *Decoder) Reference() *vmath.Plane { return d.ref }

// Decode reconstructs a frame from the slices whose index is marked true in
// received (nil means all received). Rows with no data are concealed by
// copying the reference (or mid-grey when there is none) and reported in
// the mask so the recovery model can treat them as missing.
func (d *Decoder) Decode(ef *EncodedFrame, received []bool) (*DecodeResult, error) {
	defer telemetry.Start(telemetry.StageDecode).Stop()
	if ef.W != d.cfg.W || ef.H != d.cfg.H {
		return nil, fmt.Errorf("codec: encoded frame %dx%d does not match decoder %dx%d", ef.W, ef.H, d.cfg.W, d.cfg.H)
	}
	if received != nil && len(received) != len(ef.Slices) {
		return nil, fmt.Errorf("codec: received mask length %d != %d slices", len(received), len(ef.Slices))
	}
	// out is fully written here (reference copy or grey fill), so a dirty
	// pooled plane is safe; mask is only written where rows arrive, so it
	// must start zeroed.
	out := vmath.Get(d.cfg.W, d.cfg.H)
	// Conceal by default: copy reference or fill grey.
	if d.ref != nil {
		copy(out.Pix, d.ref.Pix)
	} else {
		out.Fill(128)
	}
	mask := vmath.GetZeroed(d.cfg.W, d.cfg.H)
	res := &DecodeResult{Frame: out, Mask: mask, RowsTotal: d.mbRows}

	for si := range ef.Slices {
		if received != nil && !received[si] {
			continue
		}
		s := &ef.Slices[si]
		if err := d.decodeSlice(s, out, mask); err != nil {
			return nil, fmt.Errorf("codec: slice %d: %w", si, err)
		}
		res.RowsReceived += s.MBRowCount
	}
	d.ref = out
	return res, nil
}

// decodeSlice decodes one slice's macroblock rows into out and marks mask.
func (d *Decoder) decodeSlice(s *Slice, out, mask *vmath.Plane) error {
	r := bits.NewReader(s.Data)
	for row := s.MBRowStart; row < s.MBRowStart+s.MBRowCount; row++ {
		pred := MV{}
		cy := row * MBSize
		for col := 0; col < d.mbCols; col++ {
			cx := col * MBSize
			modeU, err := r.ReadUE()
			if err != nil {
				return err
			}
			switch mbMode(modeU) {
			case modeSkip:
				if d.ref == nil {
					return fmt.Errorf("skip macroblock without reference")
				}
				mcMB(d.ref, out, cx, cy, pred, d.cfg.W, d.cfg.H)
			case modeInter:
				if d.ref == nil {
					return fmt.Errorf("inter macroblock without reference")
				}
				dx, err := r.ReadSE()
				if err != nil {
					return err
				}
				dy, err := r.ReadSE()
				if err != nil {
					return err
				}
				mv := MV{pred.X + int(dx), pred.Y + int(dy)}
				if err := d.decodeInterMB(r, out, cx, cy, mv, s.Q); err != nil {
					return err
				}
				pred = mv
			case modeIntra:
				if err := d.decodeIntraMB(r, out, cx, cy, s.Q); err != nil {
					return err
				}
				pred = MV{}
			default:
				return fmt.Errorf("bad macroblock mode %d", modeU)
			}
		}
		// Mark the whole pixel rows of this MB row as received.
		y0 := cy
		y1 := cy + MBSize
		if y1 > d.cfg.H {
			y1 = d.cfg.H
		}
		for y := y0; y < y1; y++ {
			rowPix := mask.Pix[y*mask.W : y*mask.W+mask.W]
			for x := range rowPix {
				rowPix[x] = 1
			}
		}
	}
	return nil
}

func (d *Decoder) decodeIntraMB(r *bits.Reader, out *vmath.Plane, cx, cy int, q float32) error {
	if xf.idct4x != nil {
		rec, err := d.decodeMB4(r, q)
		if err != nil {
			return err
		}
		for b := 0; b < 4; b++ {
			writeBlock(out, cx+(b&1)*blockSize, cy+(b>>1)*blockSize, &rec[b], 128)
		}
		return nil
	}
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			rec, err := decodeBlock(r, q)
			if err != nil {
				return err
			}
			writeBlock(out, cx+bx*blockSize, cy+by*blockSize, rec, 128)
		}
	}
	return nil
}

func (d *Decoder) decodeInterMB(r *bits.Reader, out *vmath.Plane, cx, cy int, mv MV, q float32) error {
	if xf.idct4x != nil {
		rec, err := d.decodeMB4(r, q)
		if err != nil {
			return err
		}
		for b := 0; b < 4; b++ {
			d.writeInterMC(out, cx+(b&1)*blockSize, cy+(b>>1)*blockSize, mv, &rec[b])
		}
		return nil
	}
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			rec, err := decodeBlock(r, q)
			if err != nil {
				return err
			}
			d.writeInterMC(out, cx+bx*blockSize, cy+by*blockSize, mv, rec)
		}
	}
	return nil
}

// writeInterMC reconstructs one inter block from the decoder's reference
// (motion-compensated prediction + residual, clamped) into out.
func (d *Decoder) writeInterMC(out *vmath.Plane, x0, y0 int, mv MV, rec *[64]float32) {
	for y := 0; y < blockSize; y++ {
		py := y0 + y
		if py >= out.H {
			break
		}
		for x := 0; x < blockSize; x++ {
			px := x0 + x
			if px >= out.W {
				break
			}
			p := d.ref.AtClamp(px+mv.X, py+mv.Y)
			out.Pix[py*out.W+px] = clamp255(p + rec[y*8+x])
		}
	}
}

// decodeBlock entropy-decodes, dequantises and inverse-transforms one block.
func decodeBlock(r *bits.Reader, q float32) (*[64]float32, error) {
	var levels [64]int32
	if err := readLevels(r, &levels); err != nil {
		return nil, err
	}
	var deq [64]float32
	dequantise(&levels, q, &deq)
	var rec [64]float32
	xf.idct(&deq, &rec)
	return &rec, nil
}

// readLevels entropy-decodes one block's quantised levels (the inverse of
// writeLevels). levels is fully overwritten.
func readLevels(r *bits.Reader, levels *[64]int32) error {
	*levels = [64]int32{}
	nz, err := r.ReadUE()
	if err != nil {
		return err
	}
	if nz > 64 {
		return fmt.Errorf("bad coefficient count %d", nz)
	}
	pos := 0
	for i := uint32(0); i < nz; i++ {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		lvl, err := r.ReadSE()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= 64 {
			return fmt.Errorf("coefficient position overflow")
		}
		levels[zigzag[pos]] = lvl
		pos++
	}
	return nil
}
