// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the experiment index) plus the
// design-choice ablations. Each iteration regenerates the experiment at
// reduced (Quick) scale; run the nervebench command with the default
// options for paper-scale parameters.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7Recovery
package nerve

import (
	"io"
	"testing"

	"nerve/internal/par"
)

// benchOpts is the reduced-scale configuration used by the benchmarks.
var benchOpts = ExperimentOptions{Quick: true, Seed: 1}

func runExp(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(id, benchOpts, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// ---- Motivation (§3) ----

// BenchmarkFig1FrameLoss regenerates Fig. 1: frame loss vs FEC redundancy.
func BenchmarkFig1FrameLoss(b *testing.B) { runExp(b, "fig1") }

// BenchmarkFig2QoEFEC regenerates Fig. 2: QoE vs FEC redundancy ± recovery.
func BenchmarkFig2QoEFEC(b *testing.B) { runExp(b, "fig2") }

// BenchmarkTable1SRMethods regenerates Table 1: the SR method comparison.
func BenchmarkTable1SRMethods(b *testing.B) { runExp(b, "tab1") }

// ---- DNN quality (§8.2) ----

// BenchmarkFig4aRecoveryDecay regenerates Fig. 4a.
func BenchmarkFig4aRecoveryDecay(b *testing.B) { runExp(b, "fig4a") }

// BenchmarkFig4bRateQuality regenerates Fig. 4b.
func BenchmarkFig4bRateQuality(b *testing.B) { runExp(b, "fig4b") }

// BenchmarkFig7Recovery regenerates Fig. 7: full-frame prediction quality.
// All per-pixel kernels and the harness fan-out run on the shared worker
// pool (internal/par) at its default size.
func BenchmarkFig7Recovery(b *testing.B) { runExp(b, "fig7") }

// BenchmarkFig7RecoverySequential is the same experiment with the pool
// pinned to one worker — the sequential baseline the CI bench artifact
// records alongside BenchmarkFig7Recovery to track the parallel speedup.
func BenchmarkFig7RecoverySequential(b *testing.B) {
	defer par.SetWorkers(1)()
	runExp(b, "fig7")
}

// BenchmarkFig8PartialRecovery regenerates Fig. 8: partial recovery.
func BenchmarkFig8PartialRecovery(b *testing.B) { runExp(b, "fig8") }

// BenchmarkFig10SR regenerates Fig. 10: SR quality per input rung.
func BenchmarkFig10SR(b *testing.B) { runExp(b, "fig10") }

// ---- System QoE (§8.3) ----

// BenchmarkTable2Traces regenerates Table 2: the trace corpus statistics.
func BenchmarkTable2Traces(b *testing.B) { runExp(b, "tab2") }

// BenchmarkFig12RecoveryQoE regenerates Fig. 12: recovery-only schemes.
func BenchmarkFig12RecoveryQoE(b *testing.B) { runExp(b, "fig12") }

// BenchmarkTable3RecoveredFrames regenerates Table 3.
func BenchmarkTable3RecoveredFrames(b *testing.B) { runExp(b, "tab3") }

// BenchmarkFig13RecoveredShare regenerates Fig. 13 (throughput stats and
// recovered-frame percentages).
func BenchmarkFig13RecoveredShare(b *testing.B) { runExp(b, "fig13") }

// BenchmarkFig14TimeSeries regenerates Fig. 14: the 5G time series.
func BenchmarkFig14TimeSeries(b *testing.B) { runExp(b, "fig14") }

// BenchmarkFig15LossyNoFEC regenerates Fig. 15: lossy networks, no FEC.
func BenchmarkFig15LossyNoFEC(b *testing.B) { runExp(b, "fig15") }

// BenchmarkFig16JointFEC regenerates Fig. 16: joint FEC + recovery.
func BenchmarkFig16JointFEC(b *testing.B) { runExp(b, "fig16") }

// BenchmarkFig17SRQoE regenerates Fig. 17: SR-only schemes (incl. NEMO).
func BenchmarkFig17SRQoE(b *testing.B) { runExp(b, "fig17") }

// BenchmarkFig18Combined regenerates Fig. 18: the combined system.
func BenchmarkFig18Combined(b *testing.B) { runExp(b, "fig18") }

// ---- Latency and resources (§8.4) ----

// BenchmarkLatencyModel regenerates the §8.4 latency table.
func BenchmarkLatencyModel(b *testing.B) { runExp(b, "lat") }

// BenchmarkCPUEnergy regenerates the §8.4 CPU/energy table.
func BenchmarkCPUEnergy(b *testing.B) { runExp(b, "cpu") }

// ---- Calibration and ablations (DESIGN.md §4) ----

// BenchmarkCalibration regenerates the quality-map calibration that ties
// the streaming simulator to the image pipeline.
func BenchmarkCalibration(b *testing.B) { runExp(b, "calibrate") }

// BenchmarkAblationCodeResolution sweeps the binary point code geometry.
func BenchmarkAblationCodeResolution(b *testing.B) { runExp(b, "abl-code") }

// BenchmarkAblationWarpResolution sweeps the warping resolution (§7).
func BenchmarkAblationWarpResolution(b *testing.B) { runExp(b, "abl-warp") }

// BenchmarkAblationPredictor compares EWMA and Holt–Winters predictors.
func BenchmarkAblationPredictor(b *testing.B) { runExp(b, "abl-pred") }

// BenchmarkAblationFECScheme compares RS against interleaved XOR parity.
func BenchmarkAblationFECScheme(b *testing.B) { runExp(b, "abl-fec") }

// BenchmarkAblationSharedFlow costs shared vs per-scale flow modules (§5).
func BenchmarkAblationSharedFlow(b *testing.B) { runExp(b, "abl-flow") }

// BenchmarkAblationBufferSize sweeps the client buffer cap.
func BenchmarkAblationBufferSize(b *testing.B) { runExp(b, "abl-buffer") }

// BenchmarkAblationDetailHead compares the analytic and learned SR heads.
func BenchmarkAblationDetailHead(b *testing.B) { runExp(b, "abl-head") }

// ---- Component micro-benchmarks ----

// BenchmarkEndToEndFrame measures one complete server→client frame at the
// transmission resolution (encode + code extraction + decode + recovery
// path on loss).
func BenchmarkEndToEndFrame(b *testing.B) {
	const w, h = 320, 180
	gen := NewGenerator(Categories()[2], 1)
	srv, err := NewServer(ServerConfig{W: w, H: h, TargetBitrate: 1.2e6})
	if err != nil {
		b.Fatal(err)
	}
	cli, err := NewClient(ClientConfig{W: w, H: h, EnableRecovery: true})
	if err != nil {
		b.Fatal(err)
	}
	frames := make([]*Plane, 16)
	for i := range frames {
		frames[i] = gen.Render(i, w, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := srv.Process(frames[i%len(frames)])
		if err != nil {
			b.Fatal(err)
		}
		in := ClientInput{Encoded: sf.Encoded, Code: sf.Code}
		if i%5 == 4 {
			in.Encoded = nil // exercise the recovery path
		}
		if _, err := cli.Next(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingSession measures one full chunk-level session of the
// complete system over a 5G trace.
func BenchmarkStreamingSession(b *testing.B) {
	tr := GenerateTrace(Net5G, 240, 1).Downscale(1.5e6, 0.3e6, 5e6)
	set := NewSchemeSet()
	scheme := set.Full()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(SimConfig{Trace: tr, Seed: int64(i)}, scheme)
	}
}
