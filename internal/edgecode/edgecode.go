// Package edgecode implements the binary point code of §4: a compact
// (64×128 = 1 KB) binary map extracted from each video frame on the server
// and shipped reliably to the client as the recovery hint. The paper uses a
// PidiNet edge network fine-tuned end-to-end; this implementation uses a
// pixel-difference gradient detector with non-maximum thinning and an
// adaptive (target-density) binariser, plus the temporal history state He
// that stabilises the code across frames.
package edgecode

import (
	"fmt"
	"math"
	"sort"

	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// Default code geometry: 64 rows × 128 columns = 8192 bits = 1 KB.
const (
	DefaultW = 128
	DefaultH = 64
)

// Code is one frame's binary point code.
type Code struct {
	W, H int
	Bits []byte // row-major bitmap, 8 pixels per byte, MSB first
}

// NewCode allocates an all-zero code.
func NewCode(w, h int) *Code {
	return &Code{W: w, H: h, Bits: make([]byte, (w*h+7)/8)}
}

// Get returns the bit at (x, y).
func (c *Code) Get(x, y int) bool {
	i := y*c.W + x
	return c.Bits[i>>3]>>(7-uint(i&7))&1 == 1
}

// Set sets the bit at (x, y) to v.
func (c *Code) Set(x, y int, v bool) {
	i := y*c.W + x
	mask := byte(1) << (7 - uint(i&7))
	if v {
		c.Bits[i>>3] |= mask
	} else {
		c.Bits[i>>3] &^= mask
	}
}

// Ones returns the number of set bits.
func (c *Code) Ones() int {
	n := 0
	for _, b := range c.Bits {
		n += popcount(b)
	}
	return n
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

// Density returns the fraction of set bits.
func (c *Code) Density() float64 {
	if c.W*c.H == 0 {
		return 0
	}
	return float64(c.Ones()) / float64(c.W*c.H)
}

// SizeBytes returns the wire size of the code payload.
func (c *Code) SizeBytes() int { return len(c.Bits) }

// Plane renders the code as a float plane with set bits at 255, for flow
// estimation and visualisation. The plane comes from the plane pool and is
// owned by the caller (vmath.Put it when done, or let the GC have it).
func (c *Code) Plane() *vmath.Plane {
	p := vmath.GetZeroed(c.W, c.H)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.Get(x, y) {
				p.Set(x, y, 255)
			}
		}
	}
	return p
}

// SoftPlane renders the code blurred, which makes block-matching between
// codes better conditioned than on raw binary dots. The plane is
// pool-backed and caller-owned, like Plane.
func (c *Code) SoftPlane() *vmath.Plane {
	p := c.Plane()
	// In-place blur: ConvolveSeparableInto materialises the horizontal
	// pass into pooled scratch first, so dst may alias src.
	return vmath.GaussianBlurInto(p, p, 0.8)
}

// MarshalBinary encodes the code with a 4-byte geometry header.
func (c *Code) MarshalBinary() ([]byte, error) {
	if c.W > 0xFFFF || c.H > 0xFFFF {
		return nil, fmt.Errorf("edgecode: dimensions too large %dx%d", c.W, c.H)
	}
	out := make([]byte, 4+len(c.Bits))
	out[0] = byte(c.W >> 8)
	out[1] = byte(c.W)
	out[2] = byte(c.H >> 8)
	out[3] = byte(c.H)
	copy(out[4:], c.Bits)
	return out, nil
}

// UnmarshalBinary decodes a MarshalBinary payload.
func (c *Code) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("edgecode: short payload (%d bytes)", len(data))
	}
	w := int(data[0])<<8 | int(data[1])
	h := int(data[2])<<8 | int(data[3])
	need := (w*h + 7) / 8
	if len(data)-4 < need {
		return fmt.Errorf("edgecode: payload %d bytes, need %d for %dx%d", len(data)-4, need, w, h)
	}
	c.W, c.H = w, h
	c.Bits = append(c.Bits[:0], data[4:4+need]...)
	return nil
}

// Extractor is the server-side encoder. It keeps the temporal history state
// He (an exponential moving average of the gradient field) that the paper's
// encoder RNN maintains, which suppresses flicker in the code. The zero
// value is not ready; use NewExtractor.
type Extractor struct {
	W, H int
	// TargetDensity is the fraction of bits the binariser aims to set
	// (adaptive threshold at the corresponding gradient percentile).
	TargetDensity float64
	// HistoryWeight blends the previous gradient state into the current
	// one (0 = stateless).
	HistoryWeight float64

	history *vmath.Plane // He; persistent pooled plane, refreshed in place

	sortScratch []float64 // percentile scratch, reused across frames

	// Byte-tier state (ExtractBytes): its own He plus reusable scratch so
	// the fixed-point path allocates nothing in steady state.
	histBytes      []int32 // Q12 magnitudes
	workBytes      *vmath.BytePlane
	gradScratch    []int32 // squared gradient magnitudes
	thinScratch    []int32
	pooledScratch  []int32 // Q12 magnitudes at code resolution
	intSortScratch []int
}

// NewExtractor returns an extractor producing w×h codes. Zero w/h select
// the default 128×64 (1 KB) geometry.
func NewExtractor(w, h int) *Extractor {
	if w <= 0 {
		w = DefaultW
	}
	if h <= 0 {
		h = DefaultH
	}
	return &Extractor{W: w, H: h, TargetDensity: 0.14, HistoryWeight: 0.25}
}

// Reset clears the temporal history (use at scene cuts / stream start).
func (e *Extractor) Reset() {
	vmath.Put(e.history)
	e.history = nil
	e.histBytes = nil
}

// Extract computes the binary point code of a frame. The frame may be any
// resolution; it is analysed at twice the code resolution and thinned.
func (e *Extractor) Extract(frame *vmath.Plane) *Code {
	defer telemetry.Start(telemetry.StageCode).Stop()
	// Work at 2× code resolution for crisper edges, then pool down. All
	// intermediates live in pooled planes for the duration of the call.
	ww, wh := e.W*2, e.H*2
	work := vmath.ResizeBilinearInto(vmath.Get(ww, wh), frame)
	grad := vmath.GradientMagnitudeInto(vmath.Get(ww, wh), work)

	// Non-maximum thinning: keep a pixel only if it is the maximum of its
	// 3×3 neighbourhood along the dominant gradient axis (cheap variant:
	// max of horizontal/vertical neighbours). Only maxima are written, so
	// the plane must start zeroed.
	thin := vmath.GetZeroed(ww, wh)
	for y := 0; y < wh; y++ {
		for x := 0; x < ww; x++ {
			g := grad.At(x, y)
			if g >= grad.AtClamp(x-1, y) && g >= grad.AtClamp(x+1, y) ||
				g >= grad.AtClamp(x, y-1) && g >= grad.AtClamp(x, y+1) {
				thin.Set(x, y, g)
			}
		}
	}

	// Pool 2×2 max down to code resolution (every pixel written).
	pooled := vmath.Get(e.W, e.H)
	for y := 0; y < e.H; y++ {
		for x := 0; x < e.W; x++ {
			m := thin.At(2*x, 2*y)
			if v := thin.At(2*x+1, 2*y); v > m {
				m = v
			}
			if v := thin.At(2*x, 2*y+1); v > m {
				m = v
			}
			if v := thin.At(2*x+1, 2*y+1); v > m {
				m = v
			}
			pooled.Set(x, y, m)
		}
	}

	// Temporal history He: blend with the previous gradient field so the
	// code carries motion-stable contours. Lerp is elementwise, so dst may
	// alias its first operand; the history plane is persistent pooled
	// state refreshed in place instead of recloned every frame.
	if e.history != nil && e.HistoryWeight > 0 {
		vmath.Lerp(pooled, pooled, e.history, float32(e.HistoryWeight))
	}
	if e.history == nil || e.history.W != e.W || e.history.H != e.H {
		vmath.Put(e.history)
		e.history = vmath.Get(e.W, e.H)
	}
	e.history.CopyFrom(pooled)

	// Adaptive threshold at the (1-TargetDensity) percentile.
	thresh := e.percentile(pooled.Pix, 1-e.TargetDensity)
	if thresh < 1e-3 {
		thresh = 1e-3
	}
	code := NewCode(e.W, e.H)
	for y := 0; y < e.H; y++ {
		for x := 0; x < e.W; x++ {
			if pooled.At(x, y) >= thresh {
				code.Set(x, y, true)
			}
		}
	}
	vmath.Put(work)
	vmath.Put(grad)
	vmath.Put(thin)
	vmath.Put(pooled)
	return code
}

// percentile sorts into a scratch buffer kept on the extractor, so the
// per-frame cost is the sort alone.
func (e *Extractor) percentile(pix []float32, p float64) float32 {
	if len(pix) == 0 {
		return 0
	}
	if cap(e.sortScratch) < len(pix) {
		e.sortScratch = make([]float64, len(pix))
	}
	tmp := e.sortScratch[:len(pix)]
	for i, v := range pix {
		tmp[i] = float64(v)
	}
	sort.Float64s(tmp)
	idx := int(p * float64(len(tmp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return float32(tmp[idx])
}

// Hamming returns the number of differing bits between two codes of equal
// geometry.
func Hamming(a, b *Code) (int, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("edgecode: geometry mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	n := 0
	for i := range a.Bits {
		n += popcount(a.Bits[i] ^ b.Bits[i])
	}
	return n, nil
}

// EdgeGuide upsamples the code to w×h and blurs it into a soft [0,1] edge
// map used by the recovery model's inpainting branch (diffusion is damped
// across edges). The result is pool-backed and caller-owned, like Plane.
func (c *Code) EdgeGuide(w, h int) *vmath.Plane {
	cp := c.Plane()
	soft := vmath.ResizeBilinearInto(vmath.Get(w, h), cp)
	vmath.Put(cp)
	vmath.GaussianBlurInto(soft, soft, 1.0)
	for i, v := range soft.Pix {
		g := float64(v) / 255
		if g > 1 {
			g = 1
		}
		soft.Pix[i] = float32(math.Sqrt(g)) // expand faint edges
	}
	return soft
}
