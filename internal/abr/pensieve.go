package abr

import (
	"nerve/internal/nn"
	"nerve/internal/video"
)

// Pensieve is the learning-based ABR (Mao et al.) upgraded to PPO as in §6.
// The feature vector follows the original design: last selected rate,
// buffer level, recent throughput and download-time history, next-chunk
// sizes per rate, and chunks remaining.
type Pensieve struct {
	Agent *nn.PPO
	// Explore enables sampling (training); when false the policy is
	// greedy (evaluation).
	Explore bool

	histLen int
}

// pensieveHistLen is the throughput/download history window (Pensieve: 8).
const pensieveHistLen = 8

// PensieveStateDim is the policy input dimensionality.
func PensieveStateDim() int {
	return 1 + 1 + pensieveHistLen + pensieveHistLen + len(video.Resolutions()) + 1
}

// NewPensieve builds an untrained agent (train it with sim.TrainPensieve or
// load calibrated behaviour through your own loop).
func NewPensieve(seed int64) *Pensieve {
	return &Pensieve{
		Agent:   nn.NewPPO(PensieveStateDim(), len(video.Resolutions()), 64, seed),
		histLen: pensieveHistLen,
	}
}

// Name implements Algorithm.
func (p *Pensieve) Name() string { return "pensieve-ppo" }

// Reset implements Algorithm.
func (p *Pensieve) Reset() {}

// Features converts a State into the policy input vector.
func (p *Pensieve) Features(s State) []float32 {
	f := make([]float32, 0, PensieveStateDim())
	// Last rate, normalised by the top rung.
	top := video.Resolutions()[len(video.Resolutions())-1].Bitrate()
	lastRate := 0.0
	if s.LastRate >= 0 && s.LastRate < len(video.Resolutions()) {
		lastRate = video.Resolutions()[s.LastRate].Bitrate() / top
	}
	f = append(f, float32(lastRate))
	f = append(f, float32(s.BufferSec/30))
	f = appendTail(f, s.ThroughputHistory, p.histLen, 1.0/8e6)
	f = appendTail(f, s.DownloadTimeHistory, p.histLen, 1.0/10)
	for i, r := range video.Resolutions() {
		sz := r.Bitrate() * 4 / 8
		if len(s.NextChunkBytes) > i && s.NextChunkBytes[i] > 0 {
			sz = float64(s.NextChunkBytes[i])
		}
		f = append(f, float32(sz/4e6))
	}
	f = append(f, float32(float64(s.ChunksRemaining)/100))
	return f
}

func appendTail(f []float32, hist []float64, n int, scale float64) []float32 {
	start := len(hist) - n
	for i := 0; i < n; i++ {
		j := start + i
		if j < 0 {
			f = append(f, 0)
			continue
		}
		f = append(f, float32(hist[j]*scale))
	}
	return f
}

// SelectRate implements Algorithm.
func (p *Pensieve) SelectRate(s State) int {
	feat := p.Features(s)
	if p.Explore {
		a, _ := p.Agent.Sample(feat)
		return a
	}
	return p.Agent.Greedy(feat)
}

// SelectRateLogged returns the action plus its behaviour log-prob, for
// building PPO trajectories during training.
func (p *Pensieve) SelectRateLogged(s State) (int, float64, []float32) {
	feat := p.Features(s)
	a, lp := p.Agent.Sample(feat)
	return a, lp, feat
}
