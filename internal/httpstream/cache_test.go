package httpstream

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"nerve/internal/video"
)

func pad(n int) []byte { return make([]byte, n) }

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(300)
	c.Put("a", pad(100))
	c.Put("b", pad(100))
	c.Put("c", pad(100))
	if got := c.keys(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("recency order %v", got)
	}
	// Touch a: it becomes most recent, so the next eviction takes b.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", pad(100))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v, want 1 eviction / 3 entries", st)
	}
}

func TestCacheByteBudgetEnforced(t *testing.T) {
	const budget = 1000
	c := NewCache(budget)
	sizes := []int{300, 500, 200, 400, 999, 100, 700}
	for i, n := range sizes {
		c.Put(fmt.Sprintf("k%d", i), pad(n))
		if st := c.Stats(); st.BytesLive > budget {
			t.Fatalf("after put %d: %d bytes live > budget %d", i, st.BytesLive, budget)
		}
	}
	// An oversize payload is refused, not stored by wiping the cache.
	if c.Put("huge", pad(budget+1)) {
		t.Fatal("payload larger than the whole budget was cached")
	}
	if st := c.Stats(); st.BytesLive > budget || st.Entries == 0 {
		t.Fatalf("oversize put disturbed residency: %+v", st)
	}
	// Refreshing a key in place adjusts residency, not duplicates.
	c2 := NewCache(budget)
	c2.Put("k", pad(100))
	c2.Put("k", pad(400))
	if st := c2.Stats(); st.BytesLive != 400 || st.Entries != 1 {
		t.Fatalf("in-place refresh: %+v", st)
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := NewCache(1000)
	c.Get("missing")
	c.Put("k", pad(10))
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio %v, want 2/3", r)
	}
}

// tinyCacheServer is an origin whose cache holds exactly one segment
// (the budget is measured off a probe encode, not guessed), so walking
// the stream forces eviction and re-requesting forces re-encode.
func tinyCacheServer(t *testing.T) *Server {
	t.Helper()
	shape := ServerConfig{
		W: 96, H: 64, ChunkSeconds: 0.5, Chunks: 3,
		Rates:  []int{200},
		Source: video.NewGenerator(video.Categories()[2], 7),
	}
	probe, err := NewServer(shape)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := probe.segment(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	shape.CacheBytes = int64(len(seg)) * 3 / 2
	srv, err := NewServer(shape)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestEvictedSegmentReEncodesIdentically: an evicted chunk re-encodes on
// the next request — from the top of the stream, rebuilding P-frame
// history — and reproduces the original bytes exactly.
func TestEvictedSegmentReEncodesIdentically(t *testing.T) {
	srv := tinyCacheServer(t)
	ctx := context.Background()
	first, err := srv.segment(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc0 := srv.Encodes()
	// Walk the rest of the stream; the tiny budget evicts chunk 0.
	for n := 1; n < 3; n++ {
		if _, err := srv.segment(ctx, 0, n); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := srv.cache.Get(segKey(0, 0)); ok {
		t.Skip("budget held the whole stream; eviction path not exercised")
	}
	again, err := srv.segment(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Encodes() <= enc0+2 {
		t.Fatalf("no re-encode after eviction: %d encodes", srv.Encodes())
	}
	if !bytes.Equal(first, again) {
		t.Fatal("re-encoded segment differs from the original")
	}
	if st := srv.CacheStats(); st.Evictions == 0 || st.BytesLive > st.Budget {
		t.Fatalf("cache stats %+v", st)
	}
}

// TestReEncodeAfterEvictSingleflight: a miss storm on one evicted chunk
// collapses into a single replay — encodes stay ≤ chunks per residency
// even when every client asks at once.
func TestReEncodeAfterEvictSingleflight(t *testing.T) {
	srv := tinyCacheServer(t)
	ctx := context.Background()
	for n := 0; n < 3; n++ {
		if _, err := srv.segment(ctx, 0, n); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := srv.cache.Get(segKey(0, 0)); ok {
		t.Skip("budget held the whole stream; eviction path not exercised")
	}
	before := srv.Encodes()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.segment(ctx, 0, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// One replay rebuilds chunk 0 only (the rate restarts at 0), so the
	// 8-way storm may cost at most one encode... unless a goroutine
	// arrived after the winner finished and chunk 0 was evicted again —
	// impossible here, the budget fits one segment.
	if d := srv.Encodes() - before; d > 1 {
		t.Fatalf("miss storm on one evicted chunk cost %d encodes, want ≤ 1", d)
	}
}
