package qlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nerve/internal/telemetry"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {100, 128}, {8192, 8192},
	} {
		if got := New(tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestCursorReadsInOrder(t *testing.T) {
	tr := New(64)
	cur := tr.NewCursor()
	for i := 0; i < 10; i++ {
		tr.Append(Event{T: float64(i), Type: DatagramSent, Bytes: i})
	}
	var ev Event
	for i := 0; i < 10; i++ {
		if !cur.Next(&ev) {
			t.Fatalf("cursor dried up at %d", i)
		}
		if ev.Bytes != i {
			t.Fatalf("event %d out of order: got Bytes=%d", i, ev.Bytes)
		}
	}
	if cur.Next(&ev) {
		t.Fatal("cursor returned an event past the producer")
	}
	if cur.Skipped != 0 {
		t.Fatalf("Skipped = %d on an in-capacity read", cur.Skipped)
	}
}

func TestCursorSkipsOverwritten(t *testing.T) {
	tr := New(64) // capacity 64
	cur := tr.NewCursor()
	for i := 0; i < 200; i++ {
		tr.Append(Event{T: float64(i), Type: DatagramSent, Bytes: i})
	}
	var ev Event
	if !cur.Next(&ev) {
		t.Fatal("no events")
	}
	// The oldest retained event is 200-64 = 136.
	if ev.Bytes != 136 {
		t.Fatalf("first readable event = %d, want 136", ev.Bytes)
	}
	if cur.Skipped != 136 {
		t.Fatalf("Skipped = %d, want 136", cur.Skipped)
	}
	n := 1
	for cur.Next(&ev) {
		n++
	}
	if n != 64 {
		t.Fatalf("read %d events, want 64", n)
	}
	if ev.Bytes != 199 {
		t.Fatalf("last event = %d, want 199", ev.Bytes)
	}
}

func TestNewCursorAtOldest(t *testing.T) {
	tr := New(64)
	for i := 0; i < 10; i++ {
		tr.Append(Event{T: float64(i), Bytes: i, Type: DatagramSent})
	}
	cur := tr.NewCursorAtOldest()
	var ev Event
	if !cur.Next(&ev) || ev.Bytes != 0 {
		t.Fatalf("oldest cursor started at Bytes=%d, want 0", ev.Bytes)
	}
}

func TestCounts(t *testing.T) {
	tr := New(64)
	tr.Append(Event{Type: DatagramSent})
	tr.Append(Event{Type: DatagramSent})
	tr.Append(Event{Type: PTOFired})
	if tr.Count(DatagramSent) != 2 || tr.Count(PTOFired) != 1 || tr.Count(RTTSample) != 0 {
		t.Fatalf("counts wrong: sent=%d pto=%d rtt=%d",
			tr.Count(DatagramSent), tr.Count(PTOFired), tr.Count(RTTSample))
	}
	if tr.Total() != 3 {
		t.Fatalf("Total = %d, want 3", tr.Total())
	}
}

// TestJSONEncoding checks every emitted line is valid JSON with the
// expected fields, zero-valued fields omitted.
func TestJSONEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := New(64)
	tr.SetRegistry(nil)
	tr.SetSink(&buf)
	tr.Append(Event{T: 1.25, Type: DatagramSent, Bytes: 1228, Attempt: 0,
		Inflight: 3, InflightBytes: 3684, Backlog: 0.5})
	tr.Append(Event{T: 2, Type: ReliableRetry, Trigger: TriggerPTO, Bytes: 100, Attempt: 2})
	tr.Append(Event{T: 3, Type: RTTSample, RTT: 0.0521})

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line 0 invalid JSON: %v\n%s", err, lines[0])
	}
	if m["ev"] != "datagram_sent" || m["bytes"] != float64(1228) || m["backlog"] != 0.5 {
		t.Fatalf("line 0 fields wrong: %v", m)
	}
	if _, ok := m["attempt"]; ok {
		t.Fatal("zero attempt must be omitted")
	}
	if _, ok := m["trigger"]; ok {
		t.Fatal("TriggerNone must be omitted")
	}
	m = nil
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 1 invalid JSON: %v", err)
	}
	if m["trigger"] != "pto" || m["attempt"] != float64(2) {
		t.Fatalf("line 1 fields wrong: %v", m)
	}
	m = nil
	if err := json.Unmarshal([]byte(lines[2]), &m); err != nil {
		t.Fatalf("line 2 invalid JSON: %v", err)
	}
	if m["rtt"] != 0.0521 {
		t.Fatalf("rtt did not round-trip: %v", m["rtt"])
	}
}

// TestEncodingDeterministic: identical event sequences yield identical
// bytes.
func TestEncodingDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := New(64)
		tr.SetRegistry(nil)
		tr.SetSink(&buf)
		for i := 0; i < 100; i++ {
			tr.Append(Event{T: float64(i) * 0.0333, Type: EventType(i % int(numEventTypes)),
				Bytes: i * 7, RTT: float64(i) / 3, Backlog: float64(i) / 7})
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two identical event sequences encoded differently")
	}
}

// TestAppendNoAlloc: the hot path allocates nothing once the scratch
// buffer is warm, with and without a sink.
func TestAppendNoAlloc(t *testing.T) {
	tr := New(1024)
	tr.SetRegistry(nil)
	ev := Event{T: 1.5, Type: DatagramSent, Bytes: 1228, Inflight: 2, InflightBytes: 2456, Backlog: 0.25}
	if n := testing.AllocsPerRun(1000, func() { tr.Append(ev) }); n != 0 {
		t.Fatalf("Append (no sink) allocates %.1f/op", n)
	}
	var sink bytes.Buffer
	sink.Grow(1 << 20)
	tr.SetSink(&sink)
	tr.Append(ev) // warm the scratch buffer
	if n := testing.AllocsPerRun(1000, func() { sink.Reset(); tr.Append(ev) }); n != 0 {
		t.Fatalf("Append (sink) allocates %.1f/op", n)
	}
}

// TestTelemetryMirror: with an event sink attached to the registry, each
// event's JSON line lands there too.
func TestTelemetryMirror(t *testing.T) {
	reg := telemetry.New()
	reg.Enable(true)
	var sink bytes.Buffer
	reg.SetEventSink(&sink)

	tr := New(64)
	tr.SetRegistry(reg)
	tr.Append(Event{T: 1, Type: PTOFired, Bytes: 9})
	if !strings.Contains(sink.String(), `"ev":"pto_fired"`) {
		t.Fatalf("telemetry sink missing mirrored event: %q", sink.String())
	}
	// Detached sink: no write, no error.
	reg.SetEventSink(nil)
	tr.Append(Event{T: 2, Type: PTOFired})
}

func TestAggregatorWindows(t *testing.T) {
	tr := New(256)
	agg := NewAggregator(tr)

	// Window 1: 10 first transmissions, 2 wire drops, 1 local drop, one
	// retry after PTO, RTT samples at 100 ms.
	for i := 0; i < 10; i++ {
		tr.Append(Event{T: 0.1, Type: DatagramSent, Bytes: 1200, Inflight: i + 1,
			InflightBytes: (i + 1) * 1200, Backlog: float64(i) * 0.01})
	}
	tr.Append(Event{T: 0.2, Type: DatagramDropped, Trigger: TriggerLoss, Bytes: 1200})
	tr.Append(Event{T: 0.2, Type: DatagramDropped, Trigger: TriggerLoss, Bytes: 1200})
	tr.Append(Event{T: 0.2, Type: DatagramDropped, Trigger: TriggerQueueFull, Bytes: 1200})
	tr.Append(Event{T: 0.3, Type: PTOFired, Bytes: 1200, Attempt: 1})
	tr.Append(Event{T: 0.3, Type: ReliableRetry, Trigger: TriggerPTO, Bytes: 1200, Attempt: 2})
	tr.Append(Event{T: 0.4, Type: RTTSample, RTT: 0.1})
	s := agg.Flush(1)

	if s.Sent != 10 || s.Lost != 3 {
		t.Fatalf("window 1 sent/lost = %d/%d, want 10/3", s.Sent, s.Lost)
	}
	if s.LossRate != 0.3 {
		t.Fatalf("first-window loss EWMA = %g, want the raw observation 0.3", s.LossRate)
	}
	if s.SRTT != 0.1 {
		t.Fatalf("first-window SRTT = %g, want 0.1", s.SRTT)
	}
	if s.Retransmits != 1 || s.PTOFires != 1 || s.LocalDrops != 1 {
		t.Fatalf("retx/pto/ldrops = %d/%d/%d, want 1/1/1", s.Retransmits, s.PTOFires, s.LocalDrops)
	}
	if s.InflightBytes != 12000 {
		t.Fatalf("inflight high-water = %d, want 12000", s.InflightBytes)
	}
	if s.BacklogSec != 0.09 {
		t.Fatalf("backlog high-water = %g, want 0.09", s.BacklogSec)
	}
	if s.RTTGradient != 0 {
		t.Fatalf("first-window gradient = %g, want 0", s.RTTGradient)
	}

	// Window 2: lossless, RTT rises to 0.5 — the loss EWMA decays and the
	// gradient turns positive.
	for i := 0; i < 10; i++ {
		tr.Append(Event{T: 1.1, Type: DatagramSent, Bytes: 1200})
	}
	tr.Append(Event{T: 1.5, Type: RTTSample, RTT: 0.5})
	s2 := agg.Flush(2)
	if s2.LossRate >= s.LossRate || s2.LossRate != 0.15 {
		t.Fatalf("loss EWMA after clean window = %g, want 0.15", s2.LossRate)
	}
	if s2.SRTT <= s.SRTT {
		t.Fatalf("SRTT did not rise: %g", s2.SRTT)
	}
	if s2.RTTGradient <= 0 {
		t.Fatalf("gradient = %g, want > 0 while RTT builds", s2.RTTGradient)
	}

	// An empty window keeps the loss estimate instead of dividing by zero.
	s3 := agg.Flush(3)
	if s3.LossRate != s2.LossRate {
		t.Fatalf("empty window moved the loss estimate: %g -> %g", s2.LossRate, s3.LossRate)
	}
}
