package warp

import (
	"fmt"
	"math"

	"nerve/internal/flow"
	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// BackwardBytesInto is the fixed-point tier of BackwardInto: the same
// backward warp with bilinear sampling, run on byte planes with Q15 SWAR
// arithmetic. The flow field stays float (it comes from the matcher at
// float precision); each sample position is quantised to Q15 once, after
// which the two vertical neighbours of each source column ride in the two
// 32-bit lanes of one uint64 so a single multiply-add performs both
// horizontal lerps — the same lane layout as vmath.ResizeBilinearBytesInto.
//
// Semantics match BackwardInto exactly: out(x,y) = src(x+U, y+V) with
// replicate clamping, and valid is 1 where the sample position fell inside
// src (the same −0.5/+W−0.5 bounds, evaluated on the float position before
// quantisation) and the flow confidence reaches confThreshold, else 0.
// Error bound vs PixelByte(BackwardInto(float shadow)): ≤1 LSB (Q15
// position quantisation ≈0.016 grey levels plus rounding ties).
//
// out and valid must match src's dimensions, be distinct from each other
// and not alias src; every pixel of both is written, so they may come
// dirty from the pool.
func BackwardBytesInto(out, valid *vmath.BytePlane, src *vmath.BytePlane, f *flow.Field, confThreshold float32) {
	defer telemetry.Start(telemetry.StageWarp).Stop()
	if src.W != f.W || src.H != f.H {
		panic(fmt.Sprintf("warp: plane %dx%d vs field %dx%d", src.W, src.H, f.W, f.H))
	}
	if out.W != src.W || out.H != src.H || valid.W != src.W || valid.H != src.H {
		panic(fmt.Sprintf("warp: dst %dx%d/%dx%d vs src %dx%d", out.W, out.H, valid.W, valid.H, src.W, src.H))
	}
	w, h := src.W, src.H
	const one = 1 << 15
	par.ForRows(h, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				// The float32 position, exactly as BackwardInto computes it
				// (the in-bounds test must agree bit-for-bit with the float
				// path; only the sample arithmetic is fixed-point).
				sx := float32(x) + f.U[i]
				sy := float32(y) + f.V[i]
				inBounds := sx >= -0.5 && sy >= -0.5 && sx <= float32(w)-0.5 && sy <= float32(h)-0.5
				if inBounds && f.Conf[i] >= confThreshold {
					valid.Pix[i] = 1
				} else {
					valid.Pix[i] = 0
				}
				// Quantise to Q15 (floor keeps the fractional part in
				// [0, 1)), then clamp the integer lattice like AtClamp.
				px := math.Floor(float64(sx))
				py := math.Floor(float64(sy))
				wx := uint64((float64(sx) - px) * one)
				wy := uint64((float64(sy) - py) * one)
				x0, x1 := clampIdx(int(px), w), clampIdx(int(px)+1, w)
				yy0, yy1 := clampIdx(int(py), h), clampIdx(int(py)+1, h)
				row0 := src.Pix[yy0*w:]
				row1 := src.Pix[yy1*w:]
				// Lane 0: top row, lane 1: bottom row.
				a := uint64(row0[x0]) | uint64(row1[x0])<<32
				b := uint64(row0[x1]) | uint64(row1[x1])<<32
				hq := a*(one-wx) + b*wx
				top := hq & 0xffffffff
				bot := hq >> 32
				out.Pix[i] = uint8((top*(one-wy) + bot*wy + 1<<29) >> 30)
			}
		}
	})
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
