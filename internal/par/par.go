// Package par is the shared worker pool behind every per-pixel hot loop in
// the reproduction: macroblock encoding (internal/codec), resampling
// (internal/vmath), flow-guided warping (internal/warp), super-resolution
// (internal/sr) and the experiment harness fan-out (internal/experiments).
//
// Design constraints, in order:
//
//  1. Determinism. Callers must produce bit-identical output for any pool
//     size, including 1. The pool therefore never reorders reductions — it
//     only hands out index ranges; each task writes to a disjoint,
//     caller-owned slot. Task boundaries depend only on the problem size,
//     never on the number of workers.
//  2. Bounded concurrency under nesting. One global budget of
//     Workers()-1 extra workers is shared by every call in the process: an
//     inner parallel loop running on a pool worker finds the budget spent
//     and degrades to the plain sequential loop instead of oversubscribing
//     the machine.
//  3. Cheap dispatch. Workers pull indices from an atomic cursor — no
//     channels, no per-task allocations, no persistent goroutines to leak.
//
// The pool size defaults to runtime.GOMAXPROCS(0), may be pinned with the
// NERVE_WORKERS environment variable (read once at process start), and may
// be overridden at runtime with SetWorkers (tests, benchmarks, the
// nervebench -workers flag).
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workerOverride is the configured pool size; 0 means "use GOMAXPROCS".
var workerOverride atomic.Int64

// activeExtra counts extra workers currently running across the whole
// process; it never exceeds Workers()-1 (the caller's goroutine is the
// implicit extra worker of every loop).
var activeExtra atomic.Int64

func init() {
	if s := os.Getenv("NERVE_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			workerOverride.Store(int64(n))
		}
	}
}

// Workers returns the current pool size: the SetWorkers/NERVE_WORKERS
// override when set, otherwise runtime.GOMAXPROCS(0).
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers pins the pool size and returns a func restoring the previous
// setting — intended for tests and benchmarks:
//
//	defer par.SetWorkers(1)()
//
// n <= 0 removes the override (back to GOMAXPROCS).
func SetWorkers(n int) (restore func()) {
	if n < 0 {
		n = 0
	}
	prev := workerOverride.Swap(int64(n))
	return func() { workerOverride.Store(prev) }
}

// reserve claims up to want extra workers from the global budget and
// returns how many were granted (possibly 0).
func reserve(want int) int {
	limit := int64(Workers() - 1)
	for {
		cur := activeExtra.Load()
		free := limit - cur
		if free <= 0 {
			return 0
		}
		n := int64(want)
		if n > free {
			n = free
		}
		if activeExtra.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
}

func release(n int) { activeExtra.Add(int64(-n)) }

// firstPanic records the first panic observed across the loop's workers so
// it can be re-raised on the caller's goroutine.
type firstPanic struct {
	mu  sync.Mutex
	val any
	set bool
}

func (p *firstPanic) record(v any) {
	p.mu.Lock()
	if !p.set {
		p.val, p.set = v, true
	}
	p.mu.Unlock()
}

// run executes fn(i) for every i in [0, tasks), using the caller's
// goroutine plus however many extra workers the global budget grants.
// Workers pull indices in ascending order from a shared cursor.
func run(tasks int, fn func(i int)) {
	if tasks <= 0 {
		return
	}
	extra := 0
	if tasks > 1 {
		extra = reserve(min(tasks-1, Workers()-1))
	}
	if extra == 0 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	defer release(extra)

	var cursor atomic.Int64
	var pan firstPanic
	work := func() {
		defer func() {
			if v := recover(); v != nil {
				pan.record(v)
				// Drain the cursor so sibling workers stop promptly.
				cursor.Store(int64(tasks))
			}
		}()
		for {
			i := int(cursor.Add(1)) - 1
			if i >= tasks {
				return
			}
			fn(i)
		}
	}

	var wg sync.WaitGroup
	wg.Add(extra)
	for k := 0; k < extra; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if pan.set {
		panic(fmt.Sprintf("par: worker panicked: %v", pan.val))
	}
}

// For runs fn(i) for every i in [0, n) on the pool. fn must be safe to call
// concurrently and must only write state owned by index i.
func For(n int, fn func(i int)) { run(n, fn) }

// ForErr runs fn(i) for every i in [0, n) on the pool and returns the error
// from the lowest-indexed failing call (nil when every call succeeds).
// All n calls run even when some fail — workers do not short-circuit — so
// the returned error is deterministic for a deterministic fn.
func ForErr(n int, fn func(i int) error) error {
	var (
		mu     sync.Mutex
		firstI int
		firstE error
	)
	run(n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if firstE == nil || i < firstI {
				firstI, firstE = i, err
			}
			mu.Unlock()
		}
	})
	return firstE
}

// forRowsGrain is the number of rows per task in ForRows. It depends only
// on the constant, never on the worker count, so the band decomposition —
// and therefore the output of any per-band-pure computation — is identical
// for every pool size.
const forRowsGrain = 8

// ForRows splits the row range [0, h) into contiguous bands of up to
// forRowsGrain rows and runs fn(y0, y1) for each band [y0, y1) on the pool.
// Bands are disjoint and cover [0, h) exactly; their boundaries depend only
// on h, so output is pool-size independent for any fn that is a pure
// function of its band.
func ForRows(h int, fn func(y0, y1 int)) {
	if h <= 0 {
		return
	}
	bands := (h + forRowsGrain - 1) / forRowsGrain
	run(bands, func(b int) {
		y0 := b * forRowsGrain
		y1 := y0 + forRowsGrain
		if y1 > h {
			y1 = h
		}
		fn(y0, y1)
	})
}

// ForTiles covers the w×h rectangle with tile×tile tiles (clipped at the
// right and bottom edges) and runs fn(x0, y0, x1, y1) for each tile on the
// pool, in row-major task order. Tile boundaries depend only on (w, h,
// tile), so output is pool-size independent for any fn that is a pure
// function of its tile.
func ForTiles(w, h, tile int, fn func(x0, y0, x1, y1 int)) {
	if w <= 0 || h <= 0 {
		return
	}
	if tile <= 0 {
		panic("par: ForTiles tile must be positive")
	}
	tx := (w + tile - 1) / tile
	ty := (h + tile - 1) / tile
	run(tx*ty, func(i int) {
		x0 := (i % tx) * tile
		y0 := (i / tx) * tile
		x1 := x0 + tile
		if x1 > w {
			x1 = w
		}
		y1 := y0 + tile
		if y1 > h {
			y1 = h
		}
		fn(x0, y0, x1, y1)
	})
}
