package fec

import (
	"errors"
	"fmt"
)

// ReedSolomon is a systematic erasure code over GF(2⁸): k data shards plus
// m parity shards, any k of which reconstruct the data. This is the RS code
// the paper cites for burst-error recovery in streaming systems.
type ReedSolomon struct {
	k, m int
	// parity holds the m×k encoding rows (the non-identity part of the
	// systematic generator matrix).
	parity [][]byte
}

// NewReedSolomon builds a code with k data and m parity shards.
// k+m must be ≤ 255.
func NewReedSolomon(k, m int) (*ReedSolomon, error) {
	if k <= 0 || m < 0 || k+m > 255 {
		return nil, fmt.Errorf("fec: invalid RS parameters k=%d m=%d", k, m)
	}
	// Build a systematic generator from a (k+m)×k Vandermonde matrix:
	// rows_i = [α_i⁰ … α_iᵏ⁻¹]. Multiplying by the inverse of the top k×k
	// block makes the top block the identity; the bottom m rows become
	// the parity rows.
	vand := make([][]byte, k+m)
	for i := range vand {
		vand[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			vand[i][j] = gfPow(gfExp[i], j)
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = make([]byte, k)
		copy(top[i], vand[i])
	}
	if !matInvert(top) {
		return nil, errors.New("fec: Vandermonde top block singular")
	}
	parity := make([][]byte, m)
	for r := 0; r < m; r++ {
		parity[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			var acc byte
			for t := 0; t < k; t++ {
				acc ^= gfMul(vand[k+r][t], top[t][c])
			}
			parity[r][c] = acc
		}
	}
	return &ReedSolomon{k: k, m: m, parity: parity}, nil
}

// K returns the number of data shards; M the number of parity shards.
func (rs *ReedSolomon) K() int { return rs.k }
func (rs *ReedSolomon) M() int { return rs.m }

// Encode appends m parity shards to the k data shards. All data shards must
// share one length. The returned slice has length k+m; the first k entries
// alias the input data shards.
func (rs *ReedSolomon) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != rs.k {
		return nil, fmt.Errorf("fec: Encode got %d shards, want %d", len(data), rs.k)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("fec: shard %d length %d != %d", i, len(d), size)
		}
	}
	out := make([][]byte, rs.k+rs.m)
	copy(out, data)
	for r := 0; r < rs.m; r++ {
		p := make([]byte, size)
		for c := 0; c < rs.k; c++ {
			mulSliceAdd(p, data[c], rs.parity[r][c])
		}
		out[rs.k+r] = p
	}
	return out, nil
}

// Reconstruct fills in missing data shards (nil entries) of a k+m shard set
// in place. It needs at least k present shards; otherwise it returns an
// error and leaves shards untouched. Parity shards are not regenerated.
func (rs *ReedSolomon) Reconstruct(shards [][]byte) error {
	if len(shards) != rs.k+rs.m {
		return fmt.Errorf("fec: Reconstruct got %d shards, want %d", len(shards), rs.k+rs.m)
	}
	present := 0
	size := -1
	for _, s := range shards {
		if s != nil {
			present++
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return errors.New("fec: inconsistent shard sizes")
			}
		}
	}
	missingData := 0
	for i := 0; i < rs.k; i++ {
		if shards[i] == nil {
			missingData++
		}
	}
	if missingData == 0 {
		return nil
	}
	if present < rs.k {
		return fmt.Errorf("fec: only %d of %d shards present", present, rs.k)
	}

	// Select k present shards and build the corresponding decode matrix
	// rows (identity rows for data shards, parity rows for parity shards).
	rows := make([][]byte, 0, rs.k)
	sel := make([][]byte, 0, rs.k)
	for i := 0; i < rs.k+rs.m && len(rows) < rs.k; i++ {
		if shards[i] == nil {
			continue
		}
		row := make([]byte, rs.k)
		if i < rs.k {
			row[i] = 1
		} else {
			copy(row, rs.parity[i-rs.k])
		}
		rows = append(rows, row)
		sel = append(sel, shards[i])
	}
	if !matInvert(rows) {
		return errors.New("fec: decode matrix singular")
	}
	// rows is now the inverse: data[c] = Σ_r rows[c][r] · sel[r].
	for c := 0; c < rs.k; c++ {
		if shards[c] != nil {
			continue
		}
		rec := make([]byte, size)
		for r := 0; r < rs.k; r++ {
			mulSliceAdd(rec, sel[r], rows[c][r])
		}
		shards[c] = rec
	}
	return nil
}
