package core

import (
	"runtime/debug"
	"testing"

	"nerve/internal/par"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// pipelineServerFrames encodes a stream whose slot schedule walks all three
// input paths: complete (with SR), complete loss and partial loss.
func pipelineServerFrames(t testing.TB, n int) []*ServerFrame {
	t.Helper()
	srv, err := NewServer(ServerConfig{W: tw, H: th, TargetBitrate: 1200e3, GOP: 60, PacketPayload: 250})
	if err != nil {
		t.Fatal(err)
	}
	g := video.NewGenerator(video.Categories()[3], 9)
	sfs := make([]*ServerFrame, n)
	for i := range sfs {
		if sfs[i], err = srv.Process(g.Render(i, tw, th)); err != nil {
			t.Fatal(err)
		}
	}
	return sfs
}

func pipelineInput(sfs []*ServerFrame, i int) Input {
	sf := sfs[i]
	in := Input{Encoded: sf.Encoded, Code: sf.Code}
	switch i % 5 {
	case 2: // complete loss
		in.Encoded = nil
	case 4: // partial: drop every third slice
		recv := make([]bool, len(sf.Encoded.Slices))
		for j := range recv {
			recv[j] = j%3 != 1
		}
		recv[0] = true
		in.Received = recv
	}
	return in
}

// runSequential drives Client.Next over the schedule; runPipelined drives
// the same schedule through Pipeline.Push/Flush. Both return the displayed
// frames in playout order.
func runSequential(t *testing.T, cfg ClientConfig, sfs []*ServerFrame) []*FrameResult {
	t.Helper()
	cli, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*FrameResult, len(sfs))
	for i := range sfs {
		if out[i], err = cli.Next(pipelineInput(sfs, i)); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func runPipelined(t *testing.T, cfg ClientConfig, sfs []*ServerFrame) []*FrameResult {
	t.Helper()
	cli, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(cli)
	var out []*FrameResult
	for i := range sfs {
		res, err := p.Push(pipelineInput(sfs, i))
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			out = append(out, res)
		}
	}
	if last := p.Flush(); last != nil {
		out = append(out, last)
	}
	return out
}

// TestPipelinedMatchesSequential is the correctness contract of the frame
// graph: overlapping enhance(n) with ingest(n+1) must change nothing — every
// displayed frame bit-identical to the sequential client, same classes,
// same indices — for both kernel tiers and for pool sizes 1 (where par.Go
// degrades to inline) and >1 (real overlap).
func TestPipelinedMatchesSequential(t *testing.T) {
	const frames = 14
	sfs := pipelineServerFrames(t, frames)
	for _, tc := range []struct {
		name    string
		fixed   bool
		workers int
	}{
		{"float/1worker", false, 1},
		{"float/4workers", false, 4},
		{"fixed/1worker", true, 1},
		{"fixed/4workers", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer par.SetWorkers(tc.workers)()
			cfg := ClientConfig{
				W: tw, H: th, OutW: tw * 2, OutH: th * 2,
				EnableRecovery: true, EnableSR: true,
				FixedPoint: tc.fixed,
			}
			seq := runSequential(t, cfg, sfs)
			pip := runPipelined(t, cfg, sfs)
			if len(pip) != len(seq) {
				t.Fatalf("pipelined produced %d frames, sequential %d", len(pip), len(seq))
			}
			for i := range seq {
				if pip[i].Index != seq[i].Index || pip[i].Class != seq[i].Class {
					t.Fatalf("frame %d: pipelined (idx %d, %v) vs sequential (idx %d, %v)",
						i, pip[i].Index, pip[i].Class, seq[i].Index, seq[i].Class)
				}
				a, b := seq[i].Frame, pip[i].Frame
				if a.W != b.W || a.H != b.H {
					t.Fatalf("frame %d geometry %dx%d vs %dx%d", i, a.W, a.H, b.W, b.H)
				}
				for j := range a.Pix {
					if a.Pix[j] != b.Pix[j] {
						t.Fatalf("frame %d: pixel %d differs (%v vs %v) — pipelined output is not bit-identical",
							i, j, a.Pix[j], b.Pix[j])
					}
				}
			}
		})
	}
}

// TestPipelineFlushIsIdempotent: Flush drains the last frame exactly once.
func TestPipelineFlushIsIdempotent(t *testing.T) {
	sfs := pipelineServerFrames(t, 2)
	cli, err := NewClient(ClientConfig{W: tw, H: th, EnableRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(cli)
	if res, err := p.Push(pipelineInput(sfs, 0)); err != nil || res != nil {
		t.Fatalf("first Push = (%v, %v), want (nil, nil)", res, err)
	}
	if res := p.Flush(); res == nil || res.Index != 0 {
		t.Fatalf("Flush did not return the pending frame: %v", res)
	}
	if res := p.Flush(); res != nil {
		t.Fatalf("second Flush returned %v, want nil", res)
	}
}

// TestPipelinedSteadyStateZeroPlaneAllocs extends the pooled-memory proof
// to the overlapped schedule: with two workers, enhance(n−1) and
// ingest(n) draw planes from the pool concurrently, and a warmed pipeline
// must still allocate no plane backing arrays per frame.
func TestPipelinedSteadyStateZeroPlaneAllocs(t *testing.T) {
	if vmath.RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; steady state is not allocation-free there")
	}
	defer par.SetWorkers(2)()

	const frames = 24
	sfs := pipelineServerFrames(t, frames)
	cli, err := NewClient(ClientConfig{
		W: tw, H: th, OutW: tw * 2, OutH: th * 2,
		EnableRecovery: true, EnableSR: true, FixedPoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(cli)
	step := func(i int) {
		res, err := p.Push(pipelineInput(sfs, i))
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			vmath.Put(res.Frame)
		}
	}
	const warm = 12
	for i := 0; i < warm; i++ {
		step(i)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	before := vmath.PlaneAllocs()
	for i := warm; i < frames; i++ {
		step(i)
	}
	if d := vmath.PlaneAllocs() - before; d != 0 {
		t.Fatalf("warm pipelined loop allocated %d plane backing arrays over %d frames, want 0", d, frames-warm)
	}
	if last := p.Flush(); last != nil {
		vmath.Put(last.Frame)
	}
}
