//go:build !codecref

package codec

// defaultTransforms selects the AAN fast transforms in normal builds. The
// codecref build tag swaps in the basis-matrix reference transforms — an
// escape hatch for isolating suspected fast-path numerics (bitstreams stay
// interchangeable between the two builds; see transformSet).
func defaultTransforms() transformSet { return aanTransforms() }

// RefTransformsForced reports whether this binary was built with
// -tags codecref (reference DCT forced).
const RefTransformsForced = false
