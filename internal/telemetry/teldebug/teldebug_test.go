package teldebug

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nerve/internal/telemetry"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestDebugTelemetryEndpoint(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Enable(true)
	defer func() {
		telemetry.Enable(false)
		telemetry.Default.Reset()
	}()
	telemetry.Default.Observe(telemetry.StageRecovery, 7*time.Millisecond)

	h := Handler()
	rec := get(t, h, "/debug/telemetry")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/telemetry status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("response is not a snapshot: %v", err)
	}
	if s.Schema != telemetry.SnapshotSchema {
		t.Errorf("schema = %d, want %d", s.Schema, telemetry.SnapshotSchema)
	}
	if s.Stages[telemetry.StageRecovery].Count != 1 {
		t.Errorf("recovery count = %d, want 1", s.Stages[telemetry.StageRecovery].Count)
	}
}

func TestDebugVarsIncludesTelemetry(t *testing.T) {
	rec := get(t, Handler(), "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"nerve_telemetry"`) {
		t.Error("/debug/vars does not expose nerve_telemetry")
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
}

func TestDebugPprofIndex(t *testing.T) {
	rec := get(t, Handler(), "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h := Handler()
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/debug/telemetry") {
		t.Errorf("index: status=%d body=%q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/no-such-page"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}
}

// Handler may be called more than once per process (each nerved invocation
// path); the expvar registration must not panic the second time.
func TestHandlerIdempotent(t *testing.T) {
	_ = Handler()
	_ = Handler()
}
