// Package codec implements the hybrid block-transform video codec that
// stands in for VP9/H.264 in the NERVE reproduction (see DESIGN.md §1).
//
// It is a real, if compact, codec: 16×16 motion-compensated macroblocks,
// 8×8 DCT of intra pixels or inter residuals, frequency-weighted uniform
// quantisation, zigzag run/level entropy coding with Exp-Golomb codes, GOP
// structure with periodic intra frames, per-frame rate control toward a
// target bitrate, and slice-based packetisation so that packet loss yields
// partially decodable frames (the Ipart input of the recovery model).
package codec

import "math"

const blockSize = 8

// dctBasis[u][x] = C(u)·cos((2x+1)uπ/16) — the 1-D DCT-II basis.
var dctBasis [blockSize][blockSize]float32

func init() {
	for u := 0; u < blockSize; u++ {
		c := math.Sqrt(2.0 / blockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / blockSize)
		}
		for x := 0; x < blockSize; x++ {
			dctBasis[u][x] = float32(c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*blockSize)))
		}
	}
}

// fdct8 computes the 2-D forward DCT of an 8×8 block (row-major in/out).
func fdct8(in, out *[64]float32) {
	var tmp [64]float32
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float32
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * dctBasis[u][x]
			}
			tmp[y*8+u] = s
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float32
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * dctBasis[v][y]
			}
			out[v*8+u] = s
		}
	}
}

// idct8 computes the 2-D inverse DCT of an 8×8 coefficient block.
func idct8(in, out *[64]float32) {
	var tmp [64]float32
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float32
			for v := 0; v < 8; v++ {
				s += in[v*8+u] * dctBasis[v][y]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float32
			for u := 0; u < 8; u++ {
				s += tmp[y*8+u] * dctBasis[u][x]
			}
			out[y*8+x] = s
		}
	}
}

// zigzag is the standard 8×8 zigzag scan order.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// quantWeight is a JPEG-inspired frequency weighting: low frequencies are
// quantised finely, high frequencies coarsely.
var quantWeight [64]float32

func init() {
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			quantWeight[v*8+u] = 1 + 0.6*float32(u+v)
		}
	}
}

// quantise maps coefficients to integer levels for quantiser step q.
func quantise(coef *[64]float32, q float32, levels *[64]int32) {
	for i := 0; i < 64; i++ {
		step := q * quantWeight[i]
		levels[i] = int32(math.Round(float64(coef[i] / step)))
	}
}

// dequantise reconstructs coefficients from levels.
func dequantise(levels *[64]int32, q float32, coef *[64]float32) {
	for i := 0; i < 64; i++ {
		coef[i] = float32(levels[i]) * q * quantWeight[i]
	}
}
