package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func constantPlane(w, h int, v float32) *Plane {
	p := NewPlane(w, h)
	p.Fill(v)
	return p
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randomPlane(rng, 9, 7)
	for name, f := range map[string]func(*Plane, int, int) *Plane{
		"nearest":  ResizeNearest,
		"bilinear": ResizeBilinear,
		"bicubic":  ResizeBicubic,
	} {
		q := f(p, p.W, p.H)
		if d := MAE(p, q); d > 1e-3 {
			t.Errorf("%s identity resize error %v", name, d)
		}
	}
}

func TestResizePreservesConstant(t *testing.T) {
	p := constantPlane(8, 8, 123)
	for name, f := range map[string]func(*Plane, int, int) *Plane{
		"nearest":  ResizeNearest,
		"bilinear": ResizeBilinear,
		"bicubic":  ResizeBicubic,
	} {
		q := f(p, 17, 5)
		min, max := q.MinMax()
		if math.Abs(float64(min)-123) > 1e-3 || math.Abs(float64(max)-123) > 1e-3 {
			t.Errorf("%s does not preserve constants: min=%v max=%v", name, min, max)
		}
	}
}

func TestResizeDimensions(t *testing.T) {
	p := NewPlane(12, 8)
	q := ResizeBilinear(p, 30, 14)
	if q.W != 30 || q.H != 14 {
		t.Fatalf("got %dx%d", q.W, q.H)
	}
}

func TestDownsampleBoxAverage(t *testing.T) {
	p := FromSlice(4, 2, []float32{
		0, 2, 4, 6,
		2, 4, 6, 8,
	})
	q := Downsample(p, 2, 2)
	if q.W != 2 || q.H != 1 {
		t.Fatalf("shape %dx%d", q.W, q.H)
	}
	if q.Pix[0] != 2 || q.Pix[1] != 6 {
		t.Fatalf("values %v", q.Pix)
	}
}

func TestDownsamplePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Downsample(NewPlane(4, 4), 0, 1)
}

func TestPixelShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomPlane(rng, 8, 6)
	chans := PixelUnshuffle(p, 2)
	if len(chans) != 4 {
		t.Fatalf("got %d channels", len(chans))
	}
	back := PixelShuffle(chans, 2)
	if d := MAE(p, back); d != 0 {
		t.Fatalf("round trip error %v", d)
	}
}

func TestPixelShufflePanicsOnChannelCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PixelShuffle([]*Plane{NewPlane(2, 2)}, 2)
}

func TestBicubicSharpnessVsBilinear(t *testing.T) {
	// A step edge upsampled bicubically should stay at least as sharp as
	// bilinear (higher max gradient).
	p := NewPlane(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			p.Set(x, y, 255)
		}
	}
	bl := ResizeBilinear(p, 64, 64)
	bc := ResizeBicubic(p, 64, 64)
	_, gb := GradientMagnitude(bl).MinMax()
	_, gc := GradientMagnitude(bc).MinMax()
	if gc < gb {
		t.Fatalf("bicubic max gradient %v < bilinear %v", gc, gb)
	}
}

// Property: resizing never inflates the value range beyond a small
// overshoot for bilinear (none) and bounded overshoot for bicubic.
func TestResizePropertyRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlane(rng, 10, 10)
		lo, hi := p.MinMax()
		q := ResizeBilinear(p, 23, 17)
		qlo, qhi := q.MinMax()
		return qlo >= lo-1e-3 && qhi <= hi+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResizeEmpty(t *testing.T) {
	p := NewPlane(0, 0)
	q := ResizeBilinear(p, 0, 0)
	if q.W != 0 || q.H != 0 {
		t.Fatal("empty resize should stay empty")
	}
}
