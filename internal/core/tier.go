package core

import (
	"fmt"
	"time"

	"nerve/internal/telemetry"
)

// Tier selects the client's kernel tier policy.
type Tier int

const (
	// TierFloat pins the float32 kernels for every frame — the reference
	// tier. It is the zero value so an unset ClientConfig keeps its old
	// meaning (legacy ClientConfig.FixedPoint still promotes to TierFixed).
	TierFloat Tier = iota
	// TierFixed pins the integer/SWAR kernel tier for every frame.
	TierFixed
	// TierAuto lets a deadline governor pick float or fixed per frame:
	// float whenever its projected cost fits the 33 ms frame budget, fixed
	// under deadline pressure, with hysteresis so the choice never flaps.
	TierAuto
)

func (t Tier) String() string {
	switch t {
	case TierFloat:
		return "float"
	case TierFixed:
		return "fixed"
	case TierAuto:
		return "auto"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ParseTier maps the CLI spellings onto a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "float":
		return TierFloat, nil
	case "fixed":
		return TierFixed, nil
	case "auto":
		return TierAuto, nil
	}
	return TierFloat, fmt.Errorf("core: unknown tier %q (want float, fixed or auto)", s)
}

// Per-session tier accounting (OBSERVABILITY.md, snapshot schema 3).
var (
	cTierFloatFrames = telemetry.NewCounter("tier.float_frames")
	cTierFixedFrames = telemetry.NewCounter("tier.fixed_frames")
	cTierSwitches    = telemetry.NewCounter("tier.switches")
	cTierProbes      = telemetry.NewCounter("tier.probes")
)

// Governor tuning. The budget is the 30 FPS deadline; the low watermark is
// the fraction of it a float probe must beat before the governor hands the
// stream back to the float tier — the hysteresis band between "leave float"
// (> budget) and "re-enter float" (≤ 85% of budget) is what keeps a
// borderline device from flapping. Probes start at one every 120 frames
// (4 s at 30 FPS) and back off by doubling to one every 1920 while they
// keep failing, so a device that is simply too slow for float pays a probe
// frame less and less often.
const (
	tierLowWatermark = 0.85
	tierProbeGap0    = 120
	tierProbeGapMax  = 1920
)

// tierGovernor is the per-frame float↔fixed policy of TierAuto. It is a
// pure state machine over observed frame costs: all input arrives through
// next (one call per frame, at ingest) and observe (one call per completed
// frame, in playout order), both on the client's caller goroutine, and the
// decision is a function of nothing else — no clocks, no pool geometry, no
// goroutine timing. That purity is load-bearing: it makes the switch
// sequence reproducible run to run and identical for any worker-pool size
// (TestTierGovernorDeterministicSwitchSequence), so an A/B of two sessions
// never diverges because of scheduler noise.
//
// Policy: the governor projects the next frame's cost per tier as an EWMA
// (α=1/4) of that tier's observed frame times, seeded from the device
// model's latency anchors while a tier is still unobserved. Resident in
// float, it switches to fixed the moment the float projection exceeds the
// frame budget. Resident in fixed, it never trusts the stale float history:
// it schedules single-frame float probes (cadence tierProbeGap0, doubling
// to tierProbeGapMax on failure), and only a probe that beats the low
// watermark switches the stream back — the probe's cost then replaces the
// float EWMA outright, since the history it would blend with predates the
// downswitch.
type tierGovernor struct {
	budget time.Duration
	low    time.Duration
	// ewma[TierFloat], ewma[TierFixed]: observed per-tier frame cost;
	// 0 means unobserved (fall back to seed).
	ewma [2]time.Duration
	seed [2]time.Duration

	resident  Tier // TierFloat or TierFixed
	frame     int  // frames issued by next
	probeAt   int  // first frame eligible for the next float probe
	probeGap  int  // current probe cadence (backoff state)
	probeGap0 int  // cadence reset value (tierProbeGap0; tests shrink it)
	probeOut  bool // a probe frame is in flight, not yet observed
}

// newTierGovernor seeds the policy from the device model's priors: the
// stream starts in whichever tier the seeds say fits the budget, preferring
// float (the reference tier) when both do.
func newTierGovernor(budget, seedFloat, seedFixed time.Duration) *tierGovernor {
	g := &tierGovernor{
		budget:    budget,
		low:       time.Duration(float64(budget) * tierLowWatermark),
		seed:      [2]time.Duration{TierFloat: seedFloat, TierFixed: seedFixed},
		probeGap:  tierProbeGap0,
		probeGap0: tierProbeGap0,
	}
	if seedFloat > budget {
		g.resident = TierFixed
		g.probeAt = g.probeGap
	}
	return g
}

// proj is the governor's cost projection for one tier: the EWMA when the
// tier has been observed, the device-model seed before that.
func (g *tierGovernor) proj(t Tier) time.Duration {
	if g.ewma[t] != 0 {
		return g.ewma[t]
	}
	return g.seed[t]
}

// next issues the tier for the frame about to be ingested, and whether that
// frame is a float probe. Exactly one call per frame, in playout order.
func (g *tierGovernor) next() (t Tier, probe bool) {
	g.frame++
	if g.resident == TierFixed && !g.probeOut && g.frame >= g.probeAt {
		g.probeOut = true
		return TierFloat, true
	}
	return g.resident, false
}

// cancel unwinds a next call whose frame failed before completing (decode
// error): the frame produced no observation, so a probe issued for it is
// re-armed rather than left dangling.
func (g *tierGovernor) cancel(probe bool) {
	if probe {
		g.probeOut = false
	}
}

// observe feeds back the measured cost of a completed frame and returns
// whether the resident tier switched. Observations arrive in playout order;
// under Pipeline they lag the corresponding next call by one frame, which
// delays — but cannot reorder — the decisions.
func (g *tierGovernor) observe(t Tier, probe bool, cost time.Duration) (switched bool) {
	if probe {
		// The probe is the first fresh float datum since the downswitch:
		// it replaces the stale EWMA instead of blending into it.
		g.probeOut = false
		g.ewma[TierFloat] = cost
		if cost <= g.low {
			g.resident = TierFloat
			g.probeGap = g.probeGap0
			return true
		}
		g.probeGap *= 2
		if g.probeGap > tierProbeGapMax {
			g.probeGap = tierProbeGapMax
		}
		g.probeAt = g.frame + g.probeGap
		return false
	}
	if g.ewma[t] == 0 {
		g.ewma[t] = cost
	} else {
		g.ewma[t] = (3*g.ewma[t] + cost) / 4
	}
	if g.resident == TierFloat && g.proj(TierFloat) > g.budget {
		g.resident = TierFixed
		g.probeGap = g.probeGap0
		g.probeAt = g.frame + g.probeGap
		return true
	}
	return false
}
