package httpstream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightPanicDoesNotWedgeKey is the regression test for the panic
// leak: a panicking builder used to leave its key in the map with done
// never closed, so every later request for that segment hung forever.
// Now the panic becomes an error and the key is released.
func TestFlightPanicDoesNotWedgeKey(t *testing.T) {
	var g flightGroup
	_, err := g.Do("k", func() ([]byte, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	// The key must be free again: a healthy builder runs and succeeds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, err := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
		if err != nil || string(b) != "ok" {
			t.Errorf("post-panic Do: %q, %v", b, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged after builder panic")
	}
}

// TestFlightPanicReachesWaiters: concurrent waiters on a panicking
// builder all get the error (not a hang, not a zero-value success).
func TestFlightPanicReachesWaiters(t *testing.T) {
	var g flightGroup
	enter := make(chan struct{})
	release := make(chan struct{})
	go func() {
		g.Do("k", func() ([]byte, error) { //nolint:errcheck // error checked via waiters
			close(enter)
			<-release
			panic("late boom")
		})
	}()
	<-enter
	const waiters = 4
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Do("k", func() ([]byte, error) { return nil, nil })
			errs <- err
		}()
	}
	// Give the waiters a moment to join the in-flight call, then let the
	// builder panic.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	n := 0
	for err := range errs {
		n++
		if err == nil || !strings.Contains(err.Error(), "late boom") {
			t.Fatalf("waiter got %v, want the builder panic", err)
		}
	}
	if n != waiters {
		t.Fatalf("%d waiter results, want %d", n, waiters)
	}
}

// TestFlightWaiterCancellation: a waiter whose context ends returns
// immediately with ctx.Err() while the winner finishes and gets the real
// result — the disconnected-client path on the server.
func TestFlightWaiterCancellation(t *testing.T) {
	var g flightGroup
	enter := make(chan struct{})
	release := make(chan struct{})
	winner := make(chan error, 1)
	go func() {
		b, err := g.Do("k", func() ([]byte, error) {
			close(enter)
			<-release
			return []byte("slow"), nil
		})
		if err == nil && string(b) != "slow" {
			err = fmt.Errorf("winner got %q", b)
		}
		winner <- err
	}()
	<-enter
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := g.DoCtx(ctx, "k", func() ([]byte, error) { return nil, nil })
		waitErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block on done
	cancel()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked")
	}
	close(release)
	if err := <-winner; err != nil {
		t.Fatalf("winner: %v", err)
	}
}

// TestFlightCollapsesConcurrentCalls: the basic singleflight contract —
// N concurrent callers, one execution, shared result.
func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	var g flightGroup
	var calls int
	var mu sync.Mutex
	enter := make(chan struct{})
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make(chan string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				b, _ := g.Do("k", func() ([]byte, error) {
					mu.Lock()
					calls++
					mu.Unlock()
					close(enter)
					<-release
					return []byte("v"), nil
				})
				results <- string(b)
				return
			}
			<-enter
			b, _ := g.Do("k", func() ([]byte, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return []byte("v"), nil
			})
			results <- string(b)
		}(i)
	}
	<-enter
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)
	if calls != 1 {
		t.Fatalf("%d executions for one concurrent key, want 1", calls)
	}
	for r := range results {
		if r != "v" {
			t.Fatalf("caller got %q", r)
		}
	}
}
