package netem

import (
	"math"
	"testing"

	"nerve/internal/trace"
)

func flatTrace(bps, loss, rtt float64, secs int) *trace.Trace {
	tr := &trace.Trace{Name: "flat", Interval: 1, Samples: make([]trace.Sample, secs)}
	for i := range tr.Samples {
		tr.Samples[i] = trace.Sample{ThroughputBps: bps, LossRate: loss, RTTSeconds: rtt}
	}
	return tr
}

func TestClockOrdering(t *testing.T) {
	var c Clock
	var got []int
	c.Schedule(2, func() { got = append(got, 2) })
	c.Schedule(1, func() { got = append(got, 1) })
	c.Schedule(3, func() { got = append(got, 3) })
	c.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order %v", got)
	}
	if c.Now() != 3 {
		t.Fatalf("Now=%v", c.Now())
	}
}

func TestClockFIFOAtSameTime(t *testing.T) {
	var c Clock
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(1, func() { got = append(got, i) })
	}
	c.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("not FIFO: %v", got)
		}
	}
}

func TestClockRunUntil(t *testing.T) {
	var c Clock
	ran := 0
	c.Schedule(1, func() { ran++ })
	c.Schedule(5, func() { ran++ })
	c.RunUntil(2)
	if ran != 1 {
		t.Fatalf("ran=%d", ran)
	}
	if c.Now() != 2 {
		t.Fatalf("Now=%v", c.Now())
	}
	c.RunUntilIdle()
	if ran != 2 || c.Now() != 5 {
		t.Fatalf("ran=%d now=%v", ran, c.Now())
	}
}

func TestClockNestedScheduling(t *testing.T) {
	var c Clock
	hits := 0
	c.Schedule(1, func() {
		hits++
		c.Schedule(1, func() { hits++ })
	})
	c.RunUntilIdle()
	if hits != 2 || c.Now() != 2 {
		t.Fatalf("hits=%d now=%v", hits, c.Now())
	}
}

func TestNegativeDelayRunsNow(t *testing.T) {
	var c Clock
	c.Schedule(5, func() {})
	c.Step()
	ran := false
	c.Schedule(-1, func() { ran = true })
	c.Step()
	if !ran || c.Now() != 5 {
		t.Fatalf("ran=%v now=%v", ran, c.Now())
	}
}

func TestLinkSerialisation(t *testing.T) {
	var c Clock
	tr := flatTrace(8000, 0, 0.1, 100) // 1000 B/s, RTT 100 ms
	l := NewLink(&c, tr, nil)
	var arrivals []float64
	for i := 0; i < 3; i++ {
		l.Send(500, func() { arrivals = append(arrivals, c.Now()) })
	}
	c.RunUntilIdle()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals=%d", len(arrivals))
	}
	// 500 B at 1000 B/s = 0.5 s tx each, plus 0.05 s propagation.
	want := []float64{0.55, 1.05, 1.55}
	for i := range want {
		if math.Abs(arrivals[i]-want[i]) > 1e-9 {
			t.Fatalf("arrival %d = %v want %v", i, arrivals[i], want[i])
		}
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	var c Clock
	tr := flatTrace(8000, 0, 0, 100)
	l := NewLink(&c, tr, nil)
	l.MaxQueueDelay = 1
	delivered := 0
	sent := 0
	for i := 0; i < 10; i++ {
		if l.Send(500, func() { delivered++ }) {
			sent++
		}
	}
	c.RunUntilIdle()
	// Each packet takes 0.5 s to serialise; only ~3 fit within 1 s queue.
	if l.QueueDropped == 0 {
		t.Fatal("no queue drops")
	}
	if delivered != sent {
		t.Fatalf("delivered=%d accepted=%d", delivered, sent)
	}
	if delivered >= 10 {
		t.Fatal("queue cap had no effect")
	}
}

func TestGilbertElliottMatchesTarget(t *testing.T) {
	g := NewGilbertElliott(1)
	const n = 200000
	for _, target := range []float64{0.01, 0.05} {
		drops := 0
		for i := 0; i < n; i++ {
			if g.Drop(0, target) {
				drops++
			}
		}
		got := float64(drops) / n
		if got < target*0.6 || got > target*1.6 {
			t.Fatalf("target %v got %v", target, got)
		}
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	// Measure mean run length of drops; must exceed Bernoulli's ≈1.
	g := NewGilbertElliott(2)
	const n = 300000
	runs, runLen, cur := 0, 0, 0
	for i := 0; i < n; i++ {
		if g.Drop(0, 0.03) {
			cur++
		} else if cur > 0 {
			runs++
			runLen += cur
			cur = 0
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs")
	}
	mean := float64(runLen) / float64(runs)
	if mean < 1.5 {
		t.Fatalf("GE losses not bursty: mean run %v", mean)
	}
}

func TestGilbertElliottZeroTarget(t *testing.T) {
	g := NewGilbertElliott(3)
	for i := 0; i < 1000; i++ {
		if g.Drop(0, 0) {
			t.Fatal("dropped at zero loss")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	b := NewBernoulli(4)
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Drop(0, 0.1) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("Bernoulli rate %v", got)
	}
}

func TestLinkLossApplied(t *testing.T) {
	var c Clock
	tr := flatTrace(1e7, 0.5, 0.01, 100)
	l := NewLink(&c, tr, NewBernoulli(5))
	delivered := 0
	for i := 0; i < 2000; i++ {
		l.Send(100, func() { delivered++ })
	}
	c.RunUntilIdle()
	if l.Dropped == 0 {
		t.Fatal("no losses at 50% loss rate")
	}
	frac := float64(delivered) / 2000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("delivered fraction %v, want ≈0.5", frac)
	}
}

func TestLinkDisableLoss(t *testing.T) {
	var c Clock
	tr := flatTrace(1e7, 0.5, 0.01, 100)
	l := NewLink(&c, tr, NewBernoulli(6))
	l.DisableLoss = true
	delivered := 0
	for i := 0; i < 500; i++ {
		l.Send(100, func() { delivered++ })
	}
	c.RunUntilIdle()
	if delivered != 500 {
		t.Fatalf("delivered=%d with loss disabled", delivered)
	}
}

func TestFluidDownload(t *testing.T) {
	tr := flatTrace(1e6, 0, 0.05, 1000)    // 1 Mbps
	finish := FluidDownload(tr, 0, 125000) // 1 Mbit
	if math.Abs(finish-1.0) > 0.1 {
		t.Fatalf("finish=%v want ≈1 s", finish)
	}
	// Start offset shifts the result.
	finish2 := FluidDownload(tr, 10, 125000)
	if math.Abs(finish2-11.0) > 0.1 {
		t.Fatalf("finish2=%v want ≈11 s", finish2)
	}
}

func TestFluidDownloadVariableRate(t *testing.T) {
	tr := &trace.Trace{Interval: 1, Samples: []trace.Sample{
		{ThroughputBps: 1e6}, {ThroughputBps: 0}, {ThroughputBps: 1e6},
	}}
	// 1 Mbit: ~1 s of transfer but with a 1 s stall in the middle if
	// started mid-first-second.
	finish := FluidDownload(tr, 0.5, 125000)
	if finish < 1.9 {
		t.Fatalf("stall not modelled: finish=%v", finish)
	}
}
