package sim

import (
	"nerve/internal/abr"
	"nerve/internal/device"
)

// SchemeSet builds the named client configurations compared throughout the
// evaluation (Figs. 12, 15–18), all sharing one quality model and device.
type SchemeSet struct {
	Quality *QualityModel
	Device  *device.Model
	// UseFEC applies to every scheme built from the set.
	UseFEC bool
}

// NewSchemeSet returns a set over the default quality model and iPhone 12.
func NewSchemeSet() SchemeSet {
	return SchemeSet{Quality: DefaultQualityModel(), Device: device.IPhone12()}
}

func (s SchemeSet) abr(recoveryAware, srAware bool) abr.Algorithm {
	dev := s.Device
	if dev == nil {
		dev = device.IPhone12()
	}
	q := s.Quality
	if q == nil {
		q = DefaultQualityModel()
	}
	e := abr.NewEnhancementAware(q.EnhancementModel(dev))
	e.RecoveryAware = recoveryAware
	e.SRAware = srAware
	return e
}

// WithoutRecovery is "w/o RC": no recovery model, unaware ABR.
func (s SchemeSet) WithoutRecovery() Scheme {
	return Scheme{Name: "w/o RC", ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// WithoutRecoveryReuse is the Fig. 15 lossy-network baseline: no recovery,
// late/lost frames replaced by the previous frame ("we reuse the last frame
// when a video frame is late or lost").
func (s SchemeSet) WithoutRecoveryReuse() Scheme {
	return Scheme{Name: "w/o RC (reuse)", ReuseOnLoss: true, ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// RecoveryAlone is "RC alone": the client recovers lost/late frames but the
// ABR ignores it.
func (s SchemeSet) RecoveryAlone() Scheme {
	return Scheme{Name: "RC alone", Recovery: true, ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// RecoveryAware is the recovery-only "Our" scheme of Fig. 12.
func (s SchemeSet) RecoveryAware() Scheme {
	return Scheme{Name: "our (RC)", Recovery: true, ABR: s.abr(true, false), UseFEC: s.UseFEC}
}

// WithoutSR is "w/o SR": plain client, unaware ABR.
func (s SchemeSet) WithoutSR() Scheme {
	return Scheme{Name: "w/o SR", ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// SRAlone applies SR on the client with an unaware ABR.
func (s SchemeSet) SRAlone() Scheme {
	return Scheme{Name: "SR alone", SR: true, ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// NEMO is the NEMO baseline: anchor-based SR, no recovery, unaware ABR.
func (s SchemeSet) NEMO() Scheme {
	return Scheme{Name: "NEMO", NEMO: true, ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// SRAware is the SR-only "Our" scheme of Fig. 17.
func (s SchemeSet) SRAware() Scheme {
	return Scheme{Name: "our (SR)", SR: true, ABR: s.abr(false, true), UseFEC: s.UseFEC}
}

// Baseline is "w/o SR & RC" of Fig. 18.
func (s SchemeSet) Baseline() Scheme {
	return Scheme{Name: "w/o SR & RC", ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// BothAlone is "SR & RC alone": both enhancements on the client, unaware
// ABR.
func (s SchemeSet) BothAlone() Scheme {
	return Scheme{Name: "SR & RC alone", Recovery: true, SR: true, ABR: s.abr(false, false), UseFEC: s.UseFEC}
}

// Full is the complete NERVE system: recovery + SR + enhancement-aware ABR.
func (s SchemeSet) Full() Scheme {
	return Scheme{Name: "our", Recovery: true, SR: true, ABR: s.abr(true, true), UseFEC: s.UseFEC}
}
