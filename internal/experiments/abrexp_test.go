package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestABRMatrixCrossLayerWins is the ISSUE acceptance criterion: on a
// lossy cell, the loss-aware cross-layer variant beats plain BBA-2 on QoE
// — FEC redundancy inflates download times, the buffer-only controller
// reads that as congestion and surrenders the rung, while the loss-aware
// one sees a maskable loss class and holds it.
func TestABRMatrixCrossLayerWins(t *testing.T) {
	res, tab := ABRMatrix(Options{Quick: true, Seed: 1})
	if len(res.Cells) == 0 || len(tab.Rows) == 0 {
		t.Fatal("empty matrix")
	}
	wins := 0
	for _, net := range []string{"4G", "WiFi"} {
		plain := res.Cell("bba2", net, 6)
		loss := res.Cell("bba2-loss", net, 6)
		if plain == nil || loss == nil {
			t.Fatalf("missing bba2/bba2-loss cells for %s@6x", net)
		}
		if loss.QoE > plain.QoE {
			wins++
		}
	}
	if wins == 0 {
		t.Fatal("bba2-loss beat plain bba2 on no lossy cell")
	}

	// Every (abr, network, loss) point is present exactly once.
	want := len(abrMatrixAlgorithms()) * 2 * len(abrMatrixLossScales)
	if len(res.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(res.Cells), want)
	}
	if res.Cell("bba2-rtt", "4G", 1) == nil {
		t.Fatal("bba2-rtt missing from the matrix")
	}
}

// TestABRMatrixJSONRoundTrip: the results/ JSON is valid and carries the
// cells.
func TestABRMatrixJSONRoundTrip(t *testing.T) {
	res := &ABRMatrixResult{
		ID: "abr-xlayer", Seed: 1, SeedsPerCell: 1, Chunks: 2,
		Cells: []ABRCell{{ABR: "bba2", Network: "4G", LossScale: 6, QoE: 1.5}},
	}
	path := filepath.Join(t.TempDir(), "sub", "abr_matrix.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ABRMatrixResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Cells) != 1 || back.Cells[0].QoE != 1.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if c := back.Cell("bba2", "4G", 6); c == nil || c.QoE != 1.5 {
		t.Fatalf("Cell lookup failed: %+v", c)
	}
}
