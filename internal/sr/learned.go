package sr

import (
	"math/rand"

	"nerve/internal/nn"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// LearnedHead is a per-resolution residual predictor: a small convolution
// network (internal/nn) trained with the Charbonnier loss to predict the
// gap between the bicubic upsample and the ground truth — exactly the
// learning target §5 describes ("the gap between the bilinear upsampled
// ItLR and the ground truth It"). Training runs once at construction on
// patches from the synthetic training split, standing in for the paper's
// offline training.
type LearnedHead struct {
	conv  *nn.Conv2D
	patch int
}

// learnedPatch is the training/inference tile size.
const learnedPatch = 16

// TrainLearnedHead trains a 3×3 residual conv head for the given upscale
// factor. iters bounds the SGD steps (≈200 is enough for the 9+1 weights).
func TrainLearnedHead(factor int, iters int, seed int64) *LearnedHead {
	if factor < 2 {
		factor = 2
	}
	if iters <= 0 {
		iters = 200
	}
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(1, 1, 3, learnedPatch, learnedPatch, rng)
	// Residual predictors start as a no-op: zero weights mean "add
	// nothing" and training can only improve on bicubic.
	for i := range conv.Weight {
		conv.Weight[i] = 0
	}
	opt := nn.NewAdam(0.01)

	// Training corpus: patches from the training split of the synthetic
	// dataset, degraded by the ladder's downsample.
	train := video.NewDataset().Train
	const srcW, srcH = 128, 96
	x := make([]float32, learnedPatch*learnedPatch)
	target := make([]float32, learnedPatch*learnedPatch)
	grad := make([]float32, learnedPatch*learnedPatch)

	for it := 0; it < iters; it++ {
		src := train[rng.Intn(len(train))]
		g := src.Generator()
		truth := g.Render(rng.Intn(100), srcW, srcH)
		lr := vmath.ResizeBilinear(truth, srcW/factor, srcH/factor)
		up := vmath.ResizeBicubic(lr, srcW, srcH)

		// Random patch.
		px := rng.Intn(srcW - learnedPatch)
		py := rng.Intn(srcH - learnedPatch)
		for y := 0; y < learnedPatch; y++ {
			for x0 := 0; x0 < learnedPatch; x0++ {
				i := y*learnedPatch + x0
				x[i] = up.At(px+x0, py+y) / 255
				target[i] = (truth.At(px+x0, py+y) - up.At(px+x0, py+y)) / 255
			}
		}
		out := conv.Forward(x)
		nn.CharbonnierLoss(out, target, grad, 1e-3)
		conv.Backward(grad)
		opt.Step(conv)
	}
	return &LearnedHead{conv: conv, patch: learnedPatch}
}

// ApplyInto adds the predicted residual to the bicubic-upsampled frame up,
// writing into dst (same size), tiling the learned conv across the image.
// dst must not alias up: border tiles read clamped pixels that belong to
// neighbouring (already-written) tiles, so an in-place apply would feed the
// conv its own output.
func (h *LearnedHead) ApplyInto(dst, up *vmath.Plane) *vmath.Plane {
	out := dst.CopyFrom(up)
	p := h.patch
	x := make([]float32, p*p)
	for ty := 0; ty < up.H; ty += p {
		for tx := 0; tx < up.W; tx += p {
			for y := 0; y < p; y++ {
				for x0 := 0; x0 < p; x0++ {
					x[y*p+x0] = up.AtClamp(tx+x0, ty+y) / 255
				}
			}
			res := h.conv.Forward(x)
			for y := 0; y < p; y++ {
				py := ty + y
				if py >= up.H {
					break
				}
				for x0 := 0; x0 < p; x0++ {
					px := tx + x0
					if px >= up.W {
						break
					}
					out.Pix[py*up.W+px] += res[y*p+x0] * 255
				}
			}
		}
	}
	return out.Clamp255()
}

// Apply adds the predicted residual to a bicubic-upsampled frame, tiling
// the learned conv across the image.
func (h *LearnedHead) Apply(up *vmath.Plane) *vmath.Plane {
	return h.ApplyInto(vmath.NewPlane(up.W, up.H), up)
}
