package abr

import (
	"math"

	"nerve/internal/qoe"
	"nerve/internal/telemetry"
	"nerve/internal/video"
)

// EnhancementModel carries the offline-calibrated knowledge §6 needs to
// estimate post-enhancement QoE: the delivered/recovered/super-resolved
// quality at each ladder rung (Fig. 4-style maps built on the training
// videos) and the device-side processing times.
type EnhancementModel struct {
	// Delivered maps bitrate → delivered PSNR (no enhancement).
	Delivered *qoe.QualityMap
	// RecoveredPSNR is the average PSNR of frames reconstructed by the
	// recovery model when streamed at each ladder rung.
	RecoveredPSNR []float64
	// SRPSNR is the average PSNR after super-resolution at each rung.
	SRPSNR []float64
	// RecoveryDecay is the per-consecutive-frame PSNR decay of recovered
	// chains (Fig. 4a slope, dB/frame; ≥ 0).
	RecoveryDecay float64
	// TRecovery and TSR are the per-frame processing times (seconds).
	TRecovery, TSR float64
}

// EnhancementAware is the paper's ABR (§6): for every candidate bitrate it
// estimates the chunk QoE including the effect of video recovery and
// super-resolution on both quality and rebuffering, and picks the argmax.
// Disabling both awareness flags degrades it to a throughput/QoE greedy
// baseline, which is exactly the "w/o recovery-aware" ablation the paper
// evaluates.
type EnhancementAware struct {
	Model EnhancementModel
	// Mu is the rebuffering penalty.
	Mu float64
	// RecoveryAware and SRAware toggle the two awareness terms.
	RecoveryAware, SRAware bool
	// FramesPerChunk is the number of frames per chunk (120 at 30 FPS ×
	// 4 s).
	FramesPerChunk int

	lastUtility float64
	started     bool
}

// NewEnhancementAware returns the full enhancement-aware ABR.
func NewEnhancementAware(model EnhancementModel) *EnhancementAware {
	return &EnhancementAware{
		Model:          model,
		Mu:             4.3,
		RecoveryAware:  true,
		SRAware:        true,
		FramesPerChunk: 120,
	}
}

// Name implements Algorithm.
func (e *EnhancementAware) Name() string {
	switch {
	case e.RecoveryAware && e.SRAware:
		return "nerve-abr"
	case e.RecoveryAware:
		return "recovery-aware-abr"
	case e.SRAware:
		return "sr-aware-abr"
	default:
		return "plain-qoe-abr"
	}
}

// Reset implements Algorithm.
func (e *EnhancementAware) Reset() { e.lastUtility, e.started = 0, false }

// SelectRate implements Algorithm.
func (e *EnhancementAware) SelectRate(s State) int {
	defer telemetry.Start(telemetry.StageABR).Stop()
	n := numRates(s)
	est := HarmonicMean(s.ThroughputHistory, 5)
	if est <= 0 {
		return 0
	}
	// robustMPC's error discount protects against rebuffering when a
	// prediction overshoots. With the recovery model as a safety net a
	// late frame costs at most T_RC, so the recovery-aware ABR can be
	// nearly risk-neutral and harvest the higher rates — this is the
	// "choose the bitrate more wisely" effect of §6.
	err := maxPredictionError(s.ThroughputHistory, 5)
	if e.RecoveryAware {
		est /= 1 + 0.1*err
	} else {
		est /= 1 + err
	}

	best := 0
	bestQ := math.Inf(-1)
	var bestUtil float64
	for r := 0; r < n; r++ {
		q, util := e.chunkQoE(s, r, est)
		// Switching hysteresis: volatile throughput estimates otherwise
		// make the argmax oscillate between adjacent rungs, and every
		// oscillation pays the smoothness penalty twice.
		if s.LastRate >= 0 {
			d := r - s.LastRate
			if d < 0 {
				d = -d
			}
			q -= 0.12 * float64(d)
		}
		if q > bestQ {
			bestQ = q
			best = r
			bestUtil = util
		}
	}
	// SR flattens the utility curve across rungs (low rungs get uplifted
	// the most), so when two rates are nearly equal in predicted QoE the
	// SR-aware policy prefers the lower, lower-risk one.
	if e.SRAware {
		for r := 0; r < best; r++ {
			q, util := e.chunkQoE(s, r, est)
			if q >= bestQ-0.05 {
				best = r
				bestUtil = util
				break
			}
		}
	}
	e.lastUtility = bestUtil
	e.started = true
	return best
}

// chunkQoE estimates the QoE of streaming the next chunk at rung r given
// the (conservative) throughput estimate, following §6's frame-level
// accounting, and returns it with the utility term.
func (e *EnhancementAware) chunkQoE(s State, r int, tput float64) (qoeVal, utility float64) {
	frames := e.FramesPerChunk
	if frames <= 0 {
		frames = 120
	}
	chunkSec := s.ChunkSeconds
	if chunkSec <= 0 {
		chunkSec = 4
	}
	delta := chunkSec / float64(frames)

	rate := video.Resolutions()[r].Bitrate()
	bytes := rate * chunkSec / 8
	if len(s.NextChunkBytes) > r && s.NextChunkBytes[r] > 0 {
		bytes = float64(s.NextChunkBytes[r])
	}
	perFrameBytes := bytes / float64(frames)

	// Frame classification per §6: for frame i, expected play time
	// T_play = buffer + i·Δ and expected arrival T_arr = Σ_{j≤i} S_j/tput.
	late := 0
	srCapable := 0
	for i := 0; i < frames; i++ {
		tPlay := s.BufferSec + float64(i)*delta
		tArr := perFrameBytes * float64(i+1) * 8 / tput
		switch {
		case tArr > tPlay:
			late++
		case tPlay > tArr+e.Model.TSR:
			srCapable++
		}
	}
	// Lost frames (network loss beyond FEC) also need recovery.
	lost := int(s.PredictedLossRate * float64(frames))
	needRecovery := late + lost
	if needRecovery > frames {
		needRecovery = frames
	}
	if srCapable > frames-needRecovery {
		srCapable = frames - needRecovery
	}
	plain := frames - needRecovery - srCapable

	mbps := rate / 1e6
	basePSNR := e.Model.Delivered.PSNRAt(mbps)

	// Per-class utilities on the bitrate-equivalent scale.
	util := func(psnr float64) float64 { return e.Model.Delivered.MbpsForPSNR(psnr) }

	var recUtil float64
	var rebuf float64
	if e.RecoveryAware {
		// Recovered frames: quality from the recovery map, degraded with
		// the expected run length of consecutive recoveries.
		recPSNR := basePSNR
		if len(e.Model.RecoveredPSNR) > r {
			recPSNR = e.Model.RecoveredPSNR[r]
		}
		// Expected consecutive-recovery run length: late frames cluster
		// in the tail of a slow chunk, so runs scale with the fraction.
		frac := float64(needRecovery) / float64(frames)
		runLen := 1 + frac*60
		if runLen > 50 {
			runLen = 50
		}
		recPSNR -= e.Model.RecoveryDecay * runLen
		recUtil = util(recPSNR)
		// Rebuffer impact (§6): each *late* frame costs at most T_RC,
		// and only the part of T_RC exceeding the frame interval ever
		// stalls (22 ms fits inside the 33 ms budget ⇒ zero on the
		// iPhone 12).
		rebuf = float64(late) * math.Max(0, e.Model.TRecovery-delta)
	} else {
		// Without recovery, late frames stall until the download catches
		// up and lost frames stall ≈1.5 RTT for retransmission when the
		// buffer slack cannot absorb it.
		dl := bytes * 8 / tput
		rebuf = math.Max(0, dl-s.BufferSec)
		if s.BufferSec < 1.5 {
			rebuf += float64(lost) * 0.1
		}
		recUtil = util(basePSNR) // frames eventually shown after stalls
	}

	srUtil := util(basePSNR)
	if e.SRAware && len(e.Model.SRPSNR) > r {
		srUtil = util(e.Model.SRPSNR[r])
	}
	plainUtil := util(basePSNR)

	// Anticipate decoder drift: a recovery client's corrupted/late
	// references degrade the rest of the GOP, so rates that force many
	// recoveries lose part of their plain-frame utility too.
	if e.RecoveryAware {
		prop := math.Min(1, float64(needRecovery)/float64(frames)*4)
		if prop > 0 {
			plainUtil -= 0.25 * prop * math.Max(0, plainUtil-recUtil)
			srUtil -= 0.25 * prop * math.Max(0, srUtil-recUtil)
		}
	}

	utility = (float64(needRecovery)*recUtil + float64(srCapable)*srUtil + float64(plain)*plainUtil) / float64(frames)

	q := utility - e.Mu*rebuf
	if e.started {
		q -= math.Abs(utility - e.lastUtility)
	}
	return q, utility
}
