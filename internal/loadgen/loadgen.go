// Package loadgen is the load harness behind cmd/nerveload: it spins up
// thousands of simulated streaming clients — goroutine-cheap, each
// wrapping the httpstream fetch path behind a faultnet-shaped network
// drawn from the profile matrix — against one nerved origin, and reports
// the numbers every scaling claim is judged by: p50/p95/p99 segment-fetch
// latency, rebuffer ratio, degraded/failed-chunk rates and aggregate QoE.
//
// Determinism: a run is parameterised by one seed. Each client derives
// its own seed (faultnet.SeedFor), which feeds both its fault-injecting
// transport and its retry-jitter RNG, so per-client fault schedules and
// chunk outcomes are bit-reproducible across runs regardless of goroutine
// interleaving (wall-clock latency numbers, of course, are not).
//
// Steady state: in self-serve mode the harness can additionally prove the
// server side of the zero-allocation story — after a warm-up pass that
// encodes and caches every (rate, chunk) segment, the whole measured load
// phase must perform zero plane backing-array allocations
// (vmath.PlaneAllocs), extending core.TestSteadyStateZeroPlaneAllocs from
// one client to N concurrent ones.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nerve/internal/cluster"
	"nerve/internal/faultnet"
	"nerve/internal/httpstream"
	"nerve/internal/qoe"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// Share is one weighted entry of the profile mix. Clients are assigned
// profiles by deterministic weighted round-robin over the mix.
type Share struct {
	Profile faultnet.Profile
	Weight  int
}

// ParseMix parses a "name:weight,name:weight" mix string (weight defaults
// to 1), e.g. "clean:2,lossy:1,hilat:1,bursty:1".
func ParseMix(s string) ([]Share, error) {
	var out []Share
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: bad weight in %q", part)
			}
			weight = w
		}
		p, err := faultnet.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Share{Profile: p, Weight: weight})
	}
	if len(out) == 0 {
		return nil, errors.New("loadgen: empty profile mix")
	}
	return out, nil
}

// DefaultMix is every profile in the matrix, equally weighted.
func DefaultMix() []Share {
	ps := faultnet.Profiles()
	out := make([]Share, len(ps))
	for i, p := range ps {
		out[i] = Share{Profile: p, Weight: 1}
	}
	return out
}

// Config parameterises a Run.
type Config struct {
	// BaseURL targets an external nerved server. Leave empty and set
	// Server to run one in-process on a loopback listener instead.
	BaseURL string
	// Targets lists several external origins (a cluster): client i's
	// primary is Targets[i mod len], with the rest as its failover ring.
	// Overrides BaseURL when non-empty.
	Targets []string
	// Server, when non-nil, is the in-process origin configuration
	// (self-serve mode). Required for the steady-state allocation proof:
	// plane allocations can only be counted inside one process.
	Server *httpstream.ServerConfig
	// ClusterNodes, with Server set, runs that many cluster nodes
	// in-process instead of one flat origin — the node-kill soak's
	// topology, minus the kill. 0 or 1 means a single origin.
	ClusterNodes int

	// Clients is the number of concurrent simulated clients.
	Clients int
	// ChunksPerClient fixes each client's workload (looping the manifest
	// when it is longer). Zero means "until Duration elapses".
	ChunksPerClient int
	// Duration time-boxes the run; clients loop the manifest and pace
	// themselves against the player buffer, like a live audience would.
	// Either ChunksPerClient or Duration must be set.
	Duration time.Duration

	// Mix is the weighted profile matrix (DefaultMix when empty).
	Mix []Share
	// Seed is the run seed every per-client seed derives from (default 1).
	Seed int64
	// FixedRate pins every request to one ladder rung; -1 (default via
	// NewConfig-style zero value handling: see normalize) means adaptive
	// throughput-based selection per client.
	FixedRate int
	// Decode runs the full playback engine (decode → recover) per client
	// instead of the goroutine-cheap fetch-only path. Expensive; meant
	// for small client counts.
	Decode bool
	// Recovery enables the recovery model in Decode mode.
	Recovery bool
	// RetryPolicy is the per-client fetch policy template; each client
	// gets its own derived Seed.
	RetryPolicy httpstream.RetryPolicy
	// PerClient includes per-client stats in the report (big; used by
	// determinism tests and debugging).
	PerClient bool
	// BufferCapSec caps the simulated player buffer (default 4 chunk
	// durations). In Duration mode clients sleep off buffer beyond the
	// cap — real player pacing — so request rate matches playback rate.
	BufferCapSec float64
}

func (c Config) normalize() (Config, error) {
	if c.BaseURL == "" && len(c.Targets) == 0 && c.Server == nil {
		return c, errors.New("loadgen: need BaseURL, Targets or Server")
	}
	if c.ClusterNodes > 1 && c.Server == nil {
		return c, errors.New("loadgen: ClusterNodes needs Server (self-serve cluster mode)")
	}
	if len(c.Targets) == 0 && c.BaseURL != "" {
		c.Targets = []string{c.BaseURL}
	}
	if c.Clients <= 0 {
		return c, errors.New("loadgen: Clients must be positive")
	}
	if c.ChunksPerClient <= 0 && c.Duration <= 0 {
		return c, errors.New("loadgen: need ChunksPerClient or Duration")
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Recovery && !c.Decode {
		return c, errors.New("loadgen: Recovery requires Decode")
	}
	return c, nil
}

// degradedUtilityFactor scales the lowest rung's rate into the QoE
// utility of a codes-only (degraded) chunk: recovery keeps the stream
// playable but below the cheapest encoded quality.
const degradedUtilityFactor = 0.5

// failedUtilityMbps is the near-zero utility of a chunk that could not be
// played at all (even the reliable side channel failed). Not exactly zero
// because qoe.Chunk treats a zero utility as "use the bitrate".
const failedUtilityMbps = 0.001

// profileState aggregates one profile's share of the run.
type profileState struct {
	name    string
	clients int
	fetch   telemetry.Histogram

	mu       sync.Mutex
	chunks   int64
	degraded int64
	failed   int64
	qoeSum   float64
	qoeN     int64
	stallSec float64
	playSec  float64
}

// harness is one Run's shared state.
type harness struct {
	cfg  Config
	base http.RoundTripper // shared base transport under every faultnet wrapper

	total profileState // run-wide aggregate (name "all")
	profs []*profileState

	errsMu    sync.Mutex
	errs      []ClientError
	errCount  int64
	perClient []ClientStats
}

// Run executes the load scenario and aggregates the report. Client-level
// failures (a client that could not even fetch the manifest, or hit a
// permanent error mid-run) are reported in Report.Errors, not returned:
// under injected faults they are outcomes, not harness bugs. Run itself
// errs only on configuration or server-startup problems.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}

	var serverEncodes func() int64
	var cacheStats func() httpstream.CacheStats
	var clusterStats func() cluster.Stats
	targets := cfg.Targets
	if cfg.Server != nil {
		t, origins, shutdown, err := startOrigins(cfg)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		targets = t
		serverEncodes = origins.encodes
		cacheStats = origins.cacheStats
		clusterStats = origins.clusterStats
		// Warm every node: each one ends up holding every payload (its
		// own keys from its origin, the rest through peer fetches into its
		// LRU), so the measured phase is pure cache — the steady state the
		// allocation gate asserts on.
		for _, u := range targets {
			if err := warmServer(u, origins.manifest); err != nil {
				return nil, fmt.Errorf("loadgen: warm-up %s: %w", u, err)
			}
		}
	}

	h := &harness{
		cfg: cfg,
		base: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2,
			MaxIdleConnsPerHost: cfg.Clients * 2,
		},
		total: profileState{name: "all"},
	}
	for _, s := range cfg.Mix {
		h.profs = append(h.profs, &profileState{name: s.Profile.Name})
	}
	slots := mixSlots(cfg.Mix)

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Steady-state allocation proof (self-serve only): the warmed origin
	// must not allocate a single plane backing array during the measured
	// load phase. In Decode mode the clients' own pipelines share the
	// process-wide counter, so the measurement is only meaningful
	// fetch-only.
	measureAllocs := cfg.Server != nil && !cfg.Decode
	var allocsBefore int64
	if measureAllocs {
		allocsBefore = vmath.PlaneAllocs()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.Clients; id++ {
		slot := slots[id%len(slots)]
		ps := h.profs[slot]
		ps.clients++
		wg.Add(1)
		go func(id int, ps *profileState, prof faultnet.Profile) {
			defer wg.Done()
			h.runClient(ctx, id, targets, ps, prof)
		}(id, ps, cfg.Mix[slot].Profile)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := h.report(elapsed)
	if measureAllocs {
		rep.ServerPlaneAllocs = vmath.PlaneAllocs() - allocsBefore
	} else {
		rep.ServerPlaneAllocs = -1
	}
	if serverEncodes != nil {
		rep.ServerEncodes = serverEncodes()
	} else {
		rep.ServerEncodes = -1
	}
	if cacheStats != nil {
		cs := cacheStats()
		rep.Cache = &cs
		rep.CacheHitRatio = cs.HitRatio()
	}
	if clusterStats != nil {
		st := clusterStats()
		rep.Cluster = &st
	}
	rep.Target = strings.Join(targets, ",")
	rep.Targets = targets
	return rep, nil
}

// origins abstracts over the two self-serve topologies (one flat origin
// vs an in-process cluster) for the report's server-side numbers.
type origins struct {
	manifest     httpstream.Manifest
	encodes      func() int64
	cacheStats   func() httpstream.CacheStats
	clusterStats func() cluster.Stats
}

// startOrigins boots the self-serve origin(s) on loopback listeners and
// returns their base URLs plus a shutdown closure.
func startOrigins(cfg Config) ([]string, *origins, func(), error) {
	n := cfg.ClusterNodes
	if n < 1 {
		n = 1
	}
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	var servers []*http.Server
	shutdown := func() {
		for _, s := range servers {
			s.Close()
		}
	}

	if n == 1 {
		srv, err := httpstream.NewServer(*cfg.Server)
		if err != nil {
			return nil, nil, nil, err
		}
		hs := &http.Server{Handler: srv}
		servers = append(servers, hs)
		go hs.Serve(lns[0])
		return urls, &origins{
			manifest:   srv.Manifest(),
			encodes:    srv.Encodes,
			cacheStats: srv.CacheStats,
		}, shutdown, nil
	}

	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		node, err := cluster.NewNode(cluster.Config{
			Self:   urls[i],
			Peers:  urls,
			Origin: *cfg.Server,
		})
		if err != nil {
			shutdown()
			return nil, nil, nil, err
		}
		nodes[i] = node
		hs := &http.Server{Handler: node}
		servers = append(servers, hs)
		go hs.Serve(lns[i])
	}
	return urls, &origins{
		manifest: nodes[0].Origin().Manifest(),
		encodes: func() int64 {
			var total int64
			for _, nd := range nodes {
				total += nd.Origin().Encodes()
			}
			return total
		},
		cacheStats: func() httpstream.CacheStats {
			var agg httpstream.CacheStats
			for _, nd := range nodes {
				agg.Add(nd.Origin().CacheStats())
				agg.Add(nd.PeerCacheStats())
			}
			return agg
		},
		clusterStats: func() cluster.Stats {
			var agg cluster.Stats
			for _, nd := range nodes {
				agg.Add(nd.Stats())
			}
			return agg
		},
	}, shutdown, nil
}

// mixSlots expands the weighted mix into an assignment ring of mix
// indices, so client i's profile is a pure function of i.
func mixSlots(mix []Share) []int {
	var slots []int
	for i, s := range mix {
		for w := 0; w < s.Weight; w++ {
			slots = append(slots, i)
		}
	}
	return slots
}

// warmServer encodes and caches every (rate, chunk) segment plus every
// chunk's codes, so the measured phase serves purely from cache — the
// steady state the allocation gate asserts on.
func warmServer(baseURL string, m httpstream.Manifest) error {
	get := func(path string) error {
		resp, err := http.Get(baseURL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	for n := 0; n < m.Chunks; n++ {
		if err := get(fmt.Sprintf("/codes?n=%d", n)); err != nil {
			return err
		}
		for rate := range m.RatesKbps {
			if err := get(fmt.Sprintf("/segment?rate=%d&n=%d", rate, n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runClient is one simulated viewer: its own seeded network, its own
// seeded retry jitter, its own player-buffer model and QoE session. With
// several targets, client id's primary is targets[id mod len] and the
// rest form its failover ring, rotated so the fleet spreads evenly.
func (h *harness) runClient(ctx context.Context, id int, targets []string, ps *profileState, prof faultnet.Profile) {
	cfg := h.cfg
	baseURL := targets[id%len(targets)]
	var fallbacks []string
	for j := 1; j < len(targets); j++ {
		fallbacks = append(fallbacks, targets[(id+j)%len(targets)])
	}
	seed := faultnet.SeedFor(cfg.Seed, id)
	// The manifest bootstrap is exempt from injected faults (a matching
	// rule that injects nothing shadows the probabilistic draws): the
	// harness measures steady-state streaming, and a client that cannot
	// even join tells us nothing about the origin under load.
	tr := faultnet.New(h.base, prof.Config(seed), &faultnet.Rule{Match: faultnet.MatchURL("/manifest")})
	hc := &http.Client{Transport: tr}
	pol := cfg.RetryPolicy
	pol.Seed = seed

	opts := []httpstream.ClientOption{httpstream.WithRetryPolicy(pol)}
	if len(fallbacks) > 0 {
		opts = append(opts, httpstream.WithFailover(fallbacks...))
	}
	var cli *httpstream.Client
	var err error
	if cfg.Decode {
		cli, err = httpstream.NewClient(baseURL, hc, cfg.Recovery, opts...)
	} else {
		cli, err = httpstream.NewFetchClient(baseURL, hc, opts...)
	}
	if err != nil {
		if ctx.Err() == nil {
			h.clientError(id, prof.Name, fmt.Errorf("manifest: %w", err))
		}
		return
	}
	m := cli.Manifest()
	chunkSec := m.ChunkSeconds
	bufCap := cfg.BufferCapSec
	if bufCap <= 0 {
		bufCap = 4 * chunkSec
	}

	ses := qoe.NewSession(qoe.DefaultParams())
	fpc := int(m.ChunkSeconds * float64(m.FPS))
	lowestMbps := float64(m.RatesKbps[0]) / 1000

	var st ClientStats
	st.ID, st.Profile = id, prof.Name
	buffer := 0.0
	rate := 0
	if cfg.FixedRate >= 0 && cfg.FixedRate < len(m.RatesKbps) {
		rate = cfg.FixedRate
	}

	for i := 0; cfg.ChunksPerClient == 0 || i < cfg.ChunksPerClient; i++ {
		if ctx.Err() != nil {
			break
		}
		n := i % m.Chunks
		begin := time.Now()
		var res *httpstream.ChunkResult
		if cfg.Decode {
			res, err = cli.PlayChunk(n, rate, false)
		} else {
			res, err = cli.FetchChunk(n, rate)
		}
		elapsed := time.Since(begin).Seconds()
		if ctx.Err() != nil {
			// The deadline fired mid-chunk; whatever happened was cut
			// short by the harness, not the network — drop it.
			break
		}
		rateMbps := float64(m.RatesKbps[rate]) / 1000
		if err != nil {
			// Even the reliable codes path failed through the whole retry
			// policy (or the request was permanently rejected). A real
			// player skips the chunk and keeps going; a permanent error
			// means misconfiguration and ends the client.
			var fe *httpstream.FetchError
			if errors.As(err, &fe) && !fe.Transient {
				h.clientError(id, prof.Name, err)
				st.Errors++
				break
			}
			st.Failed++
			stall := elapsed - buffer
			if stall < 0 {
				stall = 0
			}
			buffer -= elapsed - stall
			ses.Add(qoe.Chunk{Index: i, BitrateMbps: rateMbps, UtilityMbps: failedUtilityMbps,
				RebufferSec: stall, FramesTotal: fpc})
			h.observeChunk(ps, 0, false, true, stall, chunkSec)
			continue
		}
		st.Chunks++
		st.Bytes += int64(res.Bytes)

		stall := elapsed - buffer
		if stall < 0 {
			stall = 0
		}
		buffer += chunkSec - (elapsed - stall)
		if buffer > bufCap {
			if cfg.Duration > 0 {
				// Player pacing: sleep off the surplus so the request
				// rate tracks playback rate, as a real audience's would.
				sleepCtx(ctx, time.Duration((buffer-bufCap)*float64(time.Second)))
			}
			buffer = bufCap
		}

		utility := rateMbps
		recovered := 0
		if res.Degraded {
			st.Degraded++
			utility = degradedUtilityFactor * lowestMbps
			recovered = fpc
		}
		ses.Add(qoe.Chunk{Index: i, BitrateMbps: rateMbps, UtilityMbps: utility,
			RebufferSec: stall, FramesTotal: fpc, FramesRecovered: recovered})

		var fetch time.Duration
		if !res.Degraded {
			fetch = time.Duration(res.FetchSeconds * float64(time.Second))
			// Adaptive rate: highest rung affordable at 80% of measured
			// throughput, the same rule the single-client path uses.
			if cfg.FixedRate < 0 && res.Bytes > 0 {
				dt := res.FetchSeconds
				if dt < 1e-3 {
					dt = 1e-3
				}
				bps := float64(res.Bytes) * 8 / dt
				rate = 0
				for ri, kbps := range m.RatesKbps {
					if float64(kbps)*1000 <= 0.8*bps {
						rate = ri
					}
				}
			}
		}
		h.observeChunk(ps, fetch, res.Degraded, false, stall, chunkSec)

		if cfg.Decode {
			for _, f := range res.Frames {
				vmath.Put(f)
			}
		}
	}

	st.QoE = ses.QoE()
	st.RebufferSec = ses.TotalRebuffer()
	h.finishClient(ps, st)
}

// observeChunk folds one chunk outcome into a profile's aggregate and the
// run-wide one.
func (h *harness) observeChunk(ps *profileState, fetch time.Duration, degraded, failed bool, stallSec, playSec float64) {
	for _, s := range []*profileState{ps, &h.total} {
		s.mu.Lock()
		switch {
		case failed:
			s.failed++
		case degraded:
			s.chunks++
			s.degraded++
		default:
			s.chunks++
		}
		s.stallSec += stallSec
		if !failed {
			s.playSec += playSec
		}
		s.mu.Unlock()
		if !failed && !degraded {
			s.fetch.Observe(fetch)
		}
	}
}

func (h *harness) finishClient(ps *profileState, st ClientStats) {
	for _, s := range []*profileState{ps, &h.total} {
		s.mu.Lock()
		s.qoeSum += st.QoE
		s.qoeN++
		s.mu.Unlock()
	}
	if h.cfg.PerClient {
		h.errsMu.Lock()
		h.perClient = append(h.perClient, st)
		h.errsMu.Unlock()
	}
}

func (h *harness) clientError(id int, profile string, err error) {
	h.errsMu.Lock()
	defer h.errsMu.Unlock()
	if len(h.errs) < 32 { // keep the report bounded; the count is exact
		h.errs = append(h.errs, ClientError{Client: id, Profile: profile, Error: err.Error()})
	}
	h.errCount++
}

// sleepCtx sleeps d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
