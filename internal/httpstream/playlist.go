package httpstream

import (
	"bytes"
	"fmt"
	"math"
)

// The m3u8 manifest layer: an HLS-style master playlist over the bitrate
// ladder and one media playlist per rung, layered on the same /segment
// endpoints the JSON manifest clients use. Two modes:
//
//   - VOD (default): every media playlist lists all Chunks segments and
//     ends with EXT-X-ENDLIST.
//   - Live (ServerConfig.Live): each media playlist is a sliding window
//     of LiveWindow segments over an infinite stream that loops the
//     procedural source. EXT-X-MEDIA-SEQUENCE advances with the wall
//     clock (one step per ChunkSeconds), segment URIs loop modulo
//     Chunks, and an EXT-X-DISCONTINUITY tag precedes each wrap of the
//     loop — the SPEC-style window/media-sequence/discontinuity rules.
//
// Endpoints:
//
//	GET /master.m3u8      → master playlist (one EXT-X-STREAM-INF per rung)
//	GET /media/<r>.m3u8   → rung r's media playlist
//
// Segment URIs are root-relative, so they resolve correctly against
// either playlist URL.

// DefaultLiveWindow is the live sliding-window length in segments when
// ServerConfig leaves LiveWindow zero — the HLS-typical three-target-
// duration window.
const DefaultLiveWindow = 3

// hlsVersion is the protocol version the playlists declare. Version 3
// covers everything emitted here (floating-point EXTINF durations).
const hlsVersion = 3

// masterPlaylist renders the top-level playlist: one variant stream per
// ladder rung, highest bandwidth last (players commonly start at the
// first entry, and the ABR story starts conservative).
func (s *Server) masterPlaylist() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "#EXTM3U\n#EXT-X-VERSION:%d\n", hlsVersion)
	for i, kbps := range s.cfg.Rates {
		fmt.Fprintf(&b, "#EXT-X-STREAM-INF:BANDWIDTH=%d,RESOLUTION=%dx%d,FRAME-RATE=%d\n",
			kbps*1000, s.cfg.W, s.cfg.H, s.manifest.FPS)
		fmt.Fprintf(&b, "/media/%d.m3u8\n", i)
	}
	return b.Bytes()
}

// mediaPlaylist renders rung rate's playlist. In VOD mode it is the whole
// stream; in live mode it is the current sliding window, whose media
// sequence (the index of the first listed segment) advances one step per
// ChunkSeconds of wall clock.
func (s *Server) mediaPlaylist(rate int) ([]byte, error) {
	if rate < 0 || rate >= len(s.cfg.Rates) {
		return nil, fmt.Errorf("httpstream: media playlist rate=%d %w", rate, errOutOfRange)
	}
	first, last := 0, s.cfg.Chunks-1
	if s.cfg.Live {
		newest := s.liveEdge()
		first = newest - s.liveWindow() + 1
		if first < 0 {
			first = 0
		}
		last = newest
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "#EXTM3U\n#EXT-X-VERSION:%d\n", hlsVersion)
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", int(math.Ceil(s.cfg.ChunkSeconds)))
	fmt.Fprintf(&b, "#EXT-X-MEDIA-SEQUENCE:%d\n", first)
	if !s.cfg.Live {
		b.WriteString("#EXT-X-PLAYLIST-TYPE:VOD\n")
	}
	for i := first; i <= last; i++ {
		if s.cfg.Live && i > 0 && i%s.cfg.Chunks == 0 {
			// The looping source wraps here: timestamps restart, so the
			// spec requires a discontinuity marker.
			b.WriteString("#EXT-X-DISCONTINUITY\n")
		}
		fmt.Fprintf(&b, "#EXTINF:%.3f,\n", s.cfg.ChunkSeconds)
		fmt.Fprintf(&b, "/segment?rate=%d&n=%d\n", rate, i%s.cfg.Chunks)
	}
	if !s.cfg.Live {
		b.WriteString("#EXT-X-ENDLIST\n")
	}
	return b.Bytes(), nil
}

// liveEdge returns the newest segment index the live stream has reached:
// segment k becomes available once k+1 chunk durations have elapsed
// since the server started (a real encoder publishes a segment when it
// is complete, not when it starts).
func (s *Server) liveEdge() int {
	elapsed := float64(s.now()-s.startNano) / 1e9
	k := int(elapsed/s.cfg.ChunkSeconds) - 1
	if k < 0 {
		k = 0
	}
	return k
}

func (s *Server) liveWindow() int {
	if s.cfg.LiveWindow > 0 {
		return s.cfg.LiveWindow
	}
	return DefaultLiveWindow
}
