package vmath

import (
	"math"
	"sync"

	"nerve/internal/par"
)

// ConvolveInto applies a general k×k kernel (odd k, row-major) to p with
// replicate border padding, writing into dst (same size as p). Output rows
// are independent, so row bands run on the shared pool with
// pool-size-independent results. dst must not alias p.
func ConvolveInto(dst, p *Plane, kernel []float32, k int) *Plane {
	if k%2 == 0 || len(kernel) != k*k {
		panic("vmath: Convolve needs an odd k×k kernel")
	}
	r := k / 2
	dst = ensure(dst, p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for j := 0; j < k; j++ {
					for i := 0; i < k; i++ {
						s += kernel[j*k+i] * p.AtClamp(x+i-r, y+j-r)
					}
				}
				dst.Pix[y*p.W+x] = s
			}
		}
	})
	return dst
}

// Convolve applies a general k×k kernel (odd k, row-major) to p with
// replicate border padding.
func Convolve(p *Plane, kernel []float32, k int) *Plane {
	return ConvolveInto(NewPlane(p.W, p.H), p, kernel, k)
}

// ConvolveSeparableInto applies a separable filter — the horizontal tap
// vector kx, then the vertical tap vector ky (both odd length), replicate
// padding — writing into dst (same size as p). The intermediate comes from
// the plane pool and is returned to it, so the steady-state cost is zero
// allocations. dst MAY alias p: the source is fully consumed into the
// intermediate before dst is written. Both passes parallelise over row
// bands; the vertical pass reads the fully written horizontal
// intermediate, which the pool's completion barrier guarantees.
func ConvolveSeparableInto(dst, p *Plane, kx, ky []float32) *Plane {
	if len(kx)%2 == 0 || len(ky)%2 == 0 {
		panic("vmath: ConvolveSeparable needs odd tap vectors")
	}
	dst = ensure(dst, p.W, p.H)
	rx := len(kx) / 2
	tmp := Get(p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for i, w := range kx {
					s += w * p.AtClamp(x+i-rx, y)
				}
				tmp.Pix[y*p.W+x] = s
			}
		}
	})
	ry := len(ky) / 2
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				var s float32
				for j, w := range ky {
					s += w * tmp.AtClamp(x, y+j-ry)
				}
				dst.Pix[y*p.W+x] = s
			}
		}
	})
	Put(tmp)
	return dst
}

// ConvolveSeparable applies a separable filter: first the horizontal tap
// vector kx, then the vertical tap vector ky (both odd length), with
// replicate padding. This is the fast path used by blurs.
func ConvolveSeparable(p *Plane, kx, ky []float32) *Plane {
	return ConvolveSeparableInto(NewPlane(p.W, p.H), p, kx, ky)
}

// GaussianKernel1D returns normalised Gaussian taps for the given sigma.
// The radius is ceil(3*sigma), clamped to at least 1.
func GaussianKernel1D(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	taps := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		taps[i+r] = float32(v)
		sum += v
	}
	for i := range taps {
		taps[i] = float32(float64(taps[i]) / sum)
	}
	return taps
}

// GaussianBlurInto blurs p into dst with an isotropic Gaussian of the given
// sigma. dst may alias p (see ConvolveSeparableInto). Per-frame callers
// should cache GaussianKernel1D taps and call ConvolveSeparableInto
// directly to avoid recomputing them.
func GaussianBlurInto(dst, p *Plane, sigma float64) *Plane {
	taps := gaussianTaps(sigma)
	return ConvolveSeparableInto(dst, p, taps, taps)
}

// gaussTaps caches Gaussian tap vectors per sigma: the pipeline blurs with
// a handful of fixed sigmas every frame, and caching keeps the warm
// GaussianBlurInto path allocation-free. Cached slices are shared and must
// never be mutated.
var gaussTaps struct {
	sync.RWMutex
	m map[float64][]float32
}

func gaussianTaps(sigma float64) []float32 {
	gaussTaps.RLock()
	t := gaussTaps.m[sigma]
	gaussTaps.RUnlock()
	if t != nil {
		return t
	}
	t = GaussianKernel1D(sigma)
	gaussTaps.Lock()
	if gaussTaps.m == nil {
		gaussTaps.m = make(map[float64][]float32)
	}
	gaussTaps.m[sigma] = t
	gaussTaps.Unlock()
	return t
}

// GaussianBlur blurs p with an isotropic Gaussian of the given sigma.
func GaussianBlur(p *Plane, sigma float64) *Plane {
	return GaussianBlurInto(NewPlane(p.W, p.H), p, sigma)
}

// BoxBlurInto blurs p into dst with a (2r+1)×(2r+1) box filter; r < 1
// copies p. dst may alias p.
func BoxBlurInto(dst, p *Plane, r int) *Plane {
	if r < 1 {
		dst = ensure(dst, p.W, p.H)
		if dst != p {
			dst.CopyFrom(p)
		}
		return dst
	}
	n := 2*r + 1
	taps := make([]float32, n)
	for i := range taps {
		taps[i] = 1 / float32(n)
	}
	return ConvolveSeparableInto(dst, p, taps, taps)
}

// BoxBlur blurs p with a (2r+1)×(2r+1) box filter.
func BoxBlur(p *Plane, r int) *Plane {
	return BoxBlurInto(NewPlane(p.W, p.H), p, r)
}

var (
	sobelXKernel = []float32{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	}
	sobelYKernel = []float32{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	}
)

// SobelXInto and SobelYInto compute horizontal and vertical Sobel
// gradients into dst. dst must not alias p.
func SobelXInto(dst, p *Plane) *Plane { return ConvolveInto(dst, p, sobelXKernel, 3) }

// SobelYInto computes the vertical Sobel gradient into dst.
func SobelYInto(dst, p *Plane) *Plane { return ConvolveInto(dst, p, sobelYKernel, 3) }

// SobelX and SobelY compute horizontal and vertical Sobel gradients.
func SobelX(p *Plane) *Plane { return SobelXInto(NewPlane(p.W, p.H), p) }

func SobelY(p *Plane) *Plane { return SobelYInto(NewPlane(p.W, p.H), p) }

// GradientsInto computes both Sobel gradients of p in a single pass,
// writing the horizontal response into gx and the vertical into gy (both
// sized like p). Neither destination may alias p. The per-pixel tap order
// matches ConvolveInto, so results are bit-identical to SobelX/SobelY.
func GradientsInto(gx, gy, p *Plane) *Plane {
	gx = ensure(gx, p.W, p.H)
	gy = ensure(gy, p.W, p.H)
	par.ForRows(p.H, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < p.W; x++ {
				v00 := p.AtClamp(x-1, y-1)
				v10 := p.AtClamp(x, y-1)
				v20 := p.AtClamp(x+1, y-1)
				v01 := p.AtClamp(x-1, y)
				v21 := p.AtClamp(x+1, y)
				v02 := p.AtClamp(x-1, y+1)
				v12 := p.AtClamp(x, y+1)
				v22 := p.AtClamp(x+1, y+1)
				var sx float32
				sx += -v00
				sx += v20
				sx += -2 * v01
				sx += 2 * v21
				sx += -v02
				sx += v22
				var sy float32
				sy += -v00
				sy += -2 * v10
				sy += -v20
				sy += v02
				sy += 2 * v12
				sy += v22
				gx.Pix[y*p.W+x] = sx
				gy.Pix[y*p.W+x] = sy
			}
		}
	})
	return gx
}

// GradientMagnitudeInto computes sqrt(gx²+gy²) of the Sobel gradients of p
// in one fused pass, with pooled scratch for the two gradient planes. dst
// must not alias p.
func GradientMagnitudeInto(dst, p *Plane) *Plane {
	dst = ensure(dst, p.W, p.H)
	gx := Get(p.W, p.H)
	gy := Get(p.W, p.H)
	GradientsInto(gx, gy, p)
	for i := range dst.Pix {
		dst.Pix[i] = float32(math.Hypot(float64(gx.Pix[i]), float64(gy.Pix[i])))
	}
	Put(gx)
	Put(gy)
	return dst
}

// GradientMagnitude returns sqrt(gx²+gy²) per pixel of the Sobel gradients.
func GradientMagnitude(p *Plane) *Plane {
	return GradientMagnitudeInto(NewPlane(p.W, p.H), p)
}

// LaplacianInto applies the 4-connected Laplacian kernel into dst, used by
// the enhancement branch for residual sharpening. dst must not alias p.
func LaplacianInto(dst, p *Plane) *Plane {
	return ConvolveInto(dst, p, laplacianKernel, 3)
}

var laplacianKernel = []float32{
	0, 1, 0,
	1, -4, 1,
	0, 1, 0,
}

// Laplacian applies the 4-connected Laplacian kernel.
func Laplacian(p *Plane) *Plane {
	return LaplacianInto(NewPlane(p.W, p.H), p)
}

// UnsharpMaskInto sharpens p into dst by amount·(p − blur(p, sigma)),
// clamping nothing. The blur is materialised into pooled scratch first, so
// dst MAY alias p.
func UnsharpMaskInto(dst, p *Plane, sigma, amount float64) *Plane {
	dst = ensure(dst, p.W, p.H)
	blur := Get(p.W, p.H)
	GaussianBlurInto(blur, p, sigma)
	a := float32(amount)
	for i := range dst.Pix {
		dst.Pix[i] = p.Pix[i] + a*(p.Pix[i]-blur.Pix[i])
	}
	Put(blur)
	return dst
}

// UnsharpMask sharpens p by amount·(p − blur(p, sigma)), clamping nothing;
// the caller decides whether to clamp to [0,255].
func UnsharpMask(p *Plane, sigma, amount float64) *Plane {
	return UnsharpMaskInto(NewPlane(p.W, p.H), p, sigma, amount)
}
