package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one discrete telemetry occurrence, serialised as a single JSON
// line by the event sink. Aggregates (histograms, counters) answer "how
// much"; events answer "what happened, when, in what order" — a retry, a
// degradation, a deadline overrun.
type Event struct {
	// UnixNano is the event's wall-clock timestamp.
	UnixNano int64 `json:"t"`
	// Kind names the occurrence (e.g. "retry", "degraded",
	// "deadline_overrun", "experiment").
	Kind string `json:"kind"`
	// Stage is the metric name of the pipeline stage involved, when one
	// applies.
	Stage string `json:"stage,omitempty"`
	// Detail carries free-form context (a path, a reason, an ID).
	Detail string `json:"detail,omitempty"`
	// Value carries the occurrence's magnitude when it has one
	// (milliseconds for overruns and experiment spans, an attempt number
	// for retries).
	Value float64 `json:"value,omitempty"`
}

// eventSink serialises events as JSON lines under a mutex; event rates
// are per-fault/per-experiment, not per-pixel, so a mutex is fine here.
type eventSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	// w is the sink's writer, kept for EmitJSON's pre-encoded lines
	// (enc always writes through it).
	w io.Writer
}

// SetEventSink directs the registry's events to w as JSON lines (one
// Event object per line). A nil w detaches the sink. Events are dropped
// while no sink is attached or the registry is disabled.
func (r *Registry) SetEventSink(w io.Writer) {
	if w == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&eventSink{enc: json.NewEncoder(w), w: w})
}

// Emit records an event with an optional stage attribution.
func (r *Registry) Emit(kind string, stage Stage, detail string, value float64) {
	if !r.enabled.Load() {
		return
	}
	name := ""
	if stage >= 0 && stage < numStages {
		name = stage.String()
	}
	r.emit(kind, name, detail, value)
}

// EventSinkActive reports whether an emitted event would actually be
// written: the registry is enabled and a sink is attached. High-rate
// producers that pre-encode their own lines (the transport qlog stream)
// check this before paying the encoding cost.
func (r *Registry) EventSinkActive() bool {
	return r.enabled.Load() && r.sink.Load() != nil
}

// EmitJSON writes one pre-encoded JSON line (terminated by '\n') to the
// event sink, interleaved safely with Event lines. It is the escape hatch
// for producers whose events carry richer, deterministic fields than
// Event — the transport qlog stream (TRANSPORT_EVENTS.md) — while still
// funnelling through the single process-wide sink. The line is dropped
// while the registry is disabled or no sink is attached; write errors are
// swallowed like Emit's.
func (r *Registry) EmitJSON(line []byte) {
	if !r.enabled.Load() {
		return
	}
	s := r.sink.Load()
	if s == nil {
		return
	}
	s.mu.Lock()
	_, _ = s.w.Write(line)
	s.mu.Unlock()
}

func (r *Registry) emit(kind, stage, detail string, value float64) {
	s := r.sink.Load()
	if s == nil {
		return
	}
	ev := Event{
		UnixNano: time.Now().UnixNano(),
		Kind:     kind,
		Stage:    stage,
		Detail:   detail,
		Value:    value,
	}
	s.mu.Lock()
	// Encode errors (a closed file, a full pipe) are deliberately
	// swallowed: the sink must never fail the pipeline it observes.
	_ = s.enc.Encode(ev)
	s.mu.Unlock()
}
