//go:build codecint && !codecref

package codec

// defaultTransforms selects the integer fixed-point AAN transforms when
// built with -tags codecint — bit-identical coefficients on every platform
// regardless of FMA contraction or float reassociation (dct_int.go).
func defaultTransforms() transformSet { return intTransforms() }

// RefTransformsForced reports whether this binary was built with
// -tags codecref (reference DCT forced).
const RefTransformsForced = false

// IntTransformsForced reports whether this binary was built with
// -tags codecint (integer DCT forced).
const IntTransformsForced = true
