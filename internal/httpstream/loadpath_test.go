package httpstream

import (
	"net/http"
	"reflect"
	"testing"
	"time"

	"nerve/internal/faultnet"
)

// TestFetchChunkNoDecode: the load-harness path — a fetch-only client
// drives the full network path (codes + segment + validation) and reports
// fetch stats, with no engine behind it.
func TestFetchChunkNoDecode(t *testing.T) {
	srv, ts := testServer(t)
	cli, err := NewFetchClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := cli.Manifest()
	if m.Chunks != srv.Manifest().Chunks {
		t.Fatalf("manifest chunks %d want %d", m.Chunks, srv.Manifest().Chunks)
	}
	res, err := cli.FetchChunk(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Bytes == 0 {
		t.Fatalf("healthy fetch: degraded=%v bytes=%d", res.Degraded, res.Bytes)
	}
	if len(res.Frames) != 0 || len(res.Classes) != 0 {
		t.Fatalf("fetch-only result carries %d frames / %d classes", len(res.Frames), len(res.Classes))
	}
	if _, err := cli.PlayChunk(0, 0, false); err == nil {
		t.Fatal("PlayChunk on a fetch-only client should fail")
	}
}

// TestFetchChunkDegrades: a segment whose media path is down for good
// degrades on the fetch-only path exactly like the playback path.
func TestFetchChunkDegrades(t *testing.T) {
	_, ts := testServer(t)
	tr := faultnet.New(nil, faultnet.Config{Seed: 1}, &faultnet.Rule{
		Match: matchSegment("1"), Reset: true,
	})
	cli, err := NewFetchClient(ts.URL, &http.Client{Transport: tr}, WithRetryPolicy(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	cli.sleep = func(time.Duration) {}
	res, err := cli.FetchChunk(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Bytes != 0 {
		t.Fatalf("dead media path: degraded=%v bytes=%d", res.Degraded, res.Bytes)
	}
	if cli.DegradedChunks() != 1 {
		t.Fatalf("DegradedChunks=%d want 1", cli.DegradedChunks())
	}
}

// fetchTrace is one client's observable fetch schedule: which requests it
// made (via the faultnet rule budget), how many retries it spent, what
// backoff delays it slept, and what came back.
type fetchTrace struct {
	delays   []time.Duration
	retries  int64
	degraded int64
	outcomes []bool // per chunk: Degraded flag
	bytes    []int
}

// runSeeded replays a fixed chunk schedule against a freshly scripted
// faulty network, with every stochastic input pinned to seed: the
// faultnet transport and the retry-jitter RNG.
func runSeeded(t *testing.T, url string, seed int64) fetchTrace {
	t.Helper()
	tr := faultnet.New(nil, faultnet.Config{
		Seed:            seed,
		ResetRate:       0.3,
		ServerErrorRate: 0.2,
	})
	pol := RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     8 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
		Seed:           seed,
	}
	cli, err := NewFetchClient(url, &http.Client{Transport: tr}, WithRetryPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	var tr8 fetchTrace
	cli.sleep = func(d time.Duration) { tr8.delays = append(tr8.delays, d) }
	for n := 0; n < cli.Manifest().Chunks; n++ {
		res, err := cli.FetchChunk(n, 0)
		if err != nil {
			// The codes path can exhaust its retries under this fault rate;
			// that outcome is part of the schedule being compared.
			tr8.outcomes = append(tr8.outcomes, true)
			tr8.bytes = append(tr8.bytes, -1)
			continue
		}
		tr8.outcomes = append(tr8.outcomes, res.Degraded)
		tr8.bytes = append(tr8.bytes, res.Bytes)
	}
	tr8.retries = cli.Retries()
	tr8.degraded = cli.DegradedChunks()
	return tr8
}

// TestFetchScheduleReproducible is the end-to-end seed-plumbing proof the
// load harness relies on: with the same seed feeding both the fault
// injection and the retry jitter, two runs produce bit-identical fetch
// schedules — same faults, same retries, same backoff delays, same
// degradations. A different seed diverges.
func TestFetchScheduleReproducible(t *testing.T) {
	_, ts := testServer(t)
	a := runSeeded(t, ts.URL, 17)
	b := runSeeded(t, ts.URL, 17)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n a=%+v\n b=%+v", a, b)
	}
	if a.retries == 0 {
		t.Fatal("fault rates produced no retries; the schedule comparison is vacuous")
	}
	c := runSeeded(t, ts.URL, 18)
	if reflect.DeepEqual(a.delays, c.delays) && reflect.DeepEqual(a.outcomes, c.outcomes) {
		t.Fatal("different seeds produced identical schedules")
	}
}
