package warp

import (
	"math/rand"
	"testing"

	"nerve/internal/flow"
	"nerve/internal/par"
	"nerve/internal/vmath"
)

// randomBytePlane fills a byte plane with seeded noise.
func randomBytePlane(w, h int, seed int64) *vmath.BytePlane {
	rng := rand.New(rand.NewSource(seed))
	p := vmath.NewBytePlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// randomField builds a flow field with subpixel vectors up to ±maxMag and
// mixed confidence, including vectors that leave the plane (hole cases).
func randomField(w, h int, maxMag float32, seed int64) *flow.Field {
	rng := rand.New(rand.NewSource(seed))
	f := flow.NewField(w, h)
	for i := range f.U {
		f.U[i] = (rng.Float32()*2 - 1) * maxMag
		f.V[i] = (rng.Float32()*2 - 1) * maxMag
		f.Conf[i] = rng.Float32()
	}
	return f
}

// TestBackwardBytesWithinOneLSB: the Q15 SWAR warp must stay within 1 LSB
// of the rounded float warp on byte-valued sources, with a bit-identical
// valid mask.
func TestBackwardBytesWithinOneLSB(t *testing.T) {
	const w, h = 97, 61
	srcB := randomBytePlane(w, h, 1)
	srcF := srcB.ToPlane(vmath.NewPlane(w, h))
	for _, maxMag := range []float32{1.5, 8, 80} {
		f := randomField(w, h, maxMag, int64(maxMag))
		const conf = 0.35
		outB := vmath.NewBytePlane(w, h)
		validB := vmath.NewBytePlane(w, h)
		BackwardBytesInto(outB, validB, srcB, f, conf)
		outF := vmath.NewPlane(w, h)
		validF := vmath.NewPlane(w, h)
		BackwardInto(outF, validF, srcF, f, conf)
		for i := range outB.Pix {
			want := vmath.PixelByte(outF.Pix[i])
			d := int(outB.Pix[i]) - int(want)
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("maxMag %v pixel %d: byte warp %d vs float %d (Δ%d > 1)",
					maxMag, i, outB.Pix[i], want, d)
			}
			wantValid := uint8(0)
			if validF.Pix[i] == 1 {
				wantValid = 1
			}
			if validB.Pix[i] != wantValid {
				t.Fatalf("maxMag %v pixel %d: valid mask %d vs float %v",
					maxMag, i, validB.Pix[i], validF.Pix[i])
			}
		}
	}
}

// TestBackwardBytesIntegerFlowExact: integer flow vectors make the warp an
// exact pixel copy — the property SnapIntegers relies on to prevent
// generation loss must survive the fixed-point path.
func TestBackwardBytesIntegerFlowExact(t *testing.T) {
	const w, h = 40, 30
	src := randomBytePlane(w, h, 2)
	f := flow.NewField(w, h)
	for i := range f.U {
		f.U[i] = 3
		f.V[i] = -2
		f.Conf[i] = 1
	}
	out := vmath.NewBytePlane(w, h)
	valid := vmath.NewBytePlane(w, h)
	BackwardBytesInto(out, valid, src, f, 0.5)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			want := src.AtClamp(x+3, y-2)
			if got := out.Pix[y*w+x]; got != want {
				t.Fatalf("(%d,%d): integer warp %d, want %d", x, y, got, want)
			}
		}
	}
}

// TestBackwardBytesPoolSizeIndependent: row-band parallelism must not
// change the result.
func TestBackwardBytesPoolSizeIndependent(t *testing.T) {
	const w, h = 130, 77
	src := randomBytePlane(w, h, 3)
	f := randomField(w, h, 6, 3)
	run := func(workers int) *vmath.BytePlane {
		defer par.SetWorkers(workers)()
		out := vmath.NewBytePlane(w, h)
		valid := vmath.NewBytePlane(w, h)
		BackwardBytesInto(out, valid, src, f, 0.3)
		return out
	}
	a := run(1)
	b := run(4)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs across pool sizes: %d vs %d", i, a.Pix[i], b.Pix[i])
		}
	}
}

func BenchmarkBackwardBytes480x270(b *testing.B) {
	const w, h = 480, 270
	src := randomBytePlane(w, h, 4)
	f := randomField(w, h, 5, 4)
	out := vmath.NewBytePlane(w, h)
	valid := vmath.NewBytePlane(w, h)
	b.SetBytes(int64(w * h))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BackwardBytesInto(out, valid, src, f, 0.35)
	}
}
