package codec

// Integer fixed-point AAN transforms: the same butterfly flow graphs as
// fdct8/idct8 with every rotation constant quantised to Q15 and every value
// carried as an integer. Pixels/residuals enter at Q4 (sixteenths) and
// coefficients at Q8 (256ths), so the only nondeterminism of the float path
// — FMA contraction, compiler reassociation — is gone: the integer
// transforms produce identical bits on every platform, which is what makes
// them the transform tier for cross-device bitstream reproducibility
// (DESIGN.md §10) and for SoCs whose float units are the bottleneck.
//
// The diagonal output scaling is identical to the float AAN set (the
// constants approximate the same flow graph), so intTransforms reuses the
// AAN fwdScale/invScale and the folded quant tables; bitstreams remain
// interchangeable with both other sets. Accuracy contract: quantised
// levels match the AAN set within ±1, and only on rounding boundaries
// (TestIntQuantLevelEquivalence); end-to-end PSNR parity within 0.05 dB
// (TestEncodePSNRParityWithInt).
//
// Lane widths: values fit int32 at every node (worst-case 2-D coefficient
// ≈ 2¹⁹ at Q4; butterfly intermediates stay under 2²²); products against
// Q15 constants use the 64-bit multiply, single-cycle on every 64-bit
// target. Descale happens immediately after each multiply, so lanes
// descaled to Q0 fit int16 — the layout a packed int16×4 SWAR variant
// would use.
const (
	intConstBits = 15
	intHalf      = 1 << (intConstBits - 1)

	cF1 = 23170 // aanF1 · 2¹⁵ (c4)
	cF2 = 12540 // aanF2 · 2¹⁵ (c6)
	cF3 = 17734 // aanF3 · 2¹⁵ (c2 − c6)
	cF4 = 42813 // aanF4 · 2¹⁵ (c2 + c6)

	cI1 = 46341  // aanI1 · 2¹⁵ (√2)
	cI2 = 60547  // aanI2 · 2¹⁵
	cI3 = 35468  // aanI3 · 2¹⁵
	cI4 = -85627 // aanI4 · 2¹⁵
)

// mulQ15 multiplies an integer lane by a Q15 rotation constant and rounds
// back to the lane's scale.
func mulQ15(a int32, c int64) int32 {
	p := int64(a)*c + intHalf
	return int32(p >> intConstBits)
}

// fdct8Int is fdct8's flow graph in integer arithmetic. in is quantised to
// Q4 on entry (residuals are float only because the plane type is); out is
// the same scaled coefficient domain as fdct8's, descaled from Q4 once at
// the end.
func fdct8Int(in, out *[64]float32) {
	var blk [64]int32
	for i := range blk {
		blk[i] = roundLevel(in[i] * 16)
	}
	// Rows.
	for y := 0; y < 8; y++ {
		r := blk[y*8 : y*8+8]
		tmp0, tmp7 := r[0]+r[7], r[0]-r[7]
		tmp1, tmp6 := r[1]+r[6], r[1]-r[6]
		tmp2, tmp5 := r[2]+r[5], r[2]-r[5]
		tmp3, tmp4 := r[3]+r[4], r[3]-r[4]

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		r[0] = tmp10 + tmp11
		r[4] = tmp10 - tmp11
		z1 := mulQ15(tmp12+tmp13, cF1)
		r[2] = tmp13 + z1
		r[6] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := mulQ15(tmp10-tmp12, cF2)
		z2 := mulQ15(tmp10, cF3) + z5
		z4 := mulQ15(tmp12, cF4) + z5
		z3 := mulQ15(tmp11, cF1)
		z11, z13 := tmp7+z3, tmp7-z3
		r[5] = z13 + z2
		r[3] = z13 - z2
		r[1] = z11 + z4
		r[7] = z11 - z4
	}
	// Columns.
	for x := 0; x < 8; x++ {
		c := blk[x:]
		tmp0, tmp7 := c[0]+c[56], c[0]-c[56]
		tmp1, tmp6 := c[8]+c[48], c[8]-c[48]
		tmp2, tmp5 := c[16]+c[40], c[16]-c[40]
		tmp3, tmp4 := c[24]+c[32], c[24]-c[32]

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		c[0] = tmp10 + tmp11
		c[32] = tmp10 - tmp11
		z1 := mulQ15(tmp12+tmp13, cF1)
		c[16] = tmp13 + z1
		c[48] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := mulQ15(tmp10-tmp12, cF2)
		z2 := mulQ15(tmp10, cF3) + z5
		z4 := mulQ15(tmp12, cF4) + z5
		z3 := mulQ15(tmp11, cF1)
		z11, z13 := tmp7+z3, tmp7-z3
		c[40] = z13 + z2
		c[24] = z13 - z2
		c[8] = z11 + z4
		c[56] = z11 - z4
	}
	for i := range blk {
		out[i] = float32(blk[i]) * 0.0625
	}
}

// idct8Int is idct8's flow graph in integer arithmetic at Q8: dequantised
// coefficients (already invScale-scaled, magnitude ≤ ~10³) are quantised to
// 256ths on entry and the reconstruction descales once on exit. The extra
// four fractional bits over the forward pass push the rounding noise well
// under the Q15 constant error, which dominates: ~7·10⁻⁵ of the
// reconstruction magnitude, a quarter grey level on full-scale blocks.
func idct8Int(in, out *[64]float32) {
	var blk [64]int32
	for i := range blk {
		blk[i] = roundLevel(in[i] * 256)
	}
	// Columns.
	for x := 0; x < 8; x++ {
		c := blk[x:]
		tmp10 := c[0] + c[32]
		tmp11 := c[0] - c[32]
		tmp13 := c[16] + c[48]
		tmp12 := mulQ15(c[16]-c[48], cI1) - tmp13
		tmp0, tmp3 := tmp10+tmp13, tmp10-tmp13
		tmp1, tmp2 := tmp11+tmp12, tmp11-tmp12

		z13 := c[40] + c[24]
		z10 := c[40] - c[24]
		z11 := c[8] + c[56]
		z12 := c[8] - c[56]
		tmp7 := z11 + z13
		tmp11 = mulQ15(z11-z13, cI1)
		z5 := mulQ15(z10+z12, cI2)
		tmp10 = mulQ15(z12, cI3) - z5
		tmp12 = mulQ15(z10, cI4) + z5
		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		c[0] = tmp0 + tmp7
		c[56] = tmp0 - tmp7
		c[8] = tmp1 + tmp6
		c[48] = tmp1 - tmp6
		c[16] = tmp2 + tmp5
		c[40] = tmp2 - tmp5
		c[32] = tmp3 + tmp4
		c[24] = tmp3 - tmp4
	}
	// Rows.
	for y := 0; y < 8; y++ {
		r := blk[y*8 : y*8+8]
		tmp10 := r[0] + r[4]
		tmp11 := r[0] - r[4]
		tmp13 := r[2] + r[6]
		tmp12 := mulQ15(r[2]-r[6], cI1) - tmp13
		tmp0, tmp3 := tmp10+tmp13, tmp10-tmp13
		tmp1, tmp2 := tmp11+tmp12, tmp11-tmp12

		z13 := r[5] + r[3]
		z10 := r[5] - r[3]
		z11 := r[1] + r[7]
		z12 := r[1] - r[7]
		tmp7 := z11 + z13
		tmp11 = mulQ15(z11-z13, cI1)
		z5 := mulQ15(z10+z12, cI2)
		tmp10 = mulQ15(z12, cI3) - z5
		tmp12 = mulQ15(z10, cI4) + z5
		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		r[0] = tmp0 + tmp7
		r[7] = tmp0 - tmp7
		r[1] = tmp1 + tmp6
		r[6] = tmp1 - tmp6
		r[2] = tmp2 + tmp5
		r[5] = tmp2 - tmp5
		r[4] = tmp3 + tmp4
		r[3] = tmp3 - tmp4
	}
	const invQ8 = float32(1) / 256
	for i := range blk {
		out[i] = float32(blk[i]) * invQ8
	}
}

// intTransforms returns the integer AAN transform set. The diagonal scales
// are the float AAN set's — the Q15 constants approximate the same flow
// graph — so the folded quant tables come out identical and bitstreams stay
// interchangeable.
func intTransforms() transformSet {
	a := aanTransforms()
	return newTransformSet(fdct8Int, idct8Int, a.fwdScale, a.invScale)
}
