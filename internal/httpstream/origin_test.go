package httpstream

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServeHTTPCountsClientCancels: a request whose client disconnects
// while another request is building the same payload stops waiting
// immediately and is tallied as a 499-style cancel — no response write,
// no server error.
func TestServeHTTPCountsClientCancels(t *testing.T) {
	srv, _ := testServer(t)
	enter := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = srv.flight.Do(segKey(0, 0), func() ([]byte, error) {
			close(enter)
			<-release
			return []byte{0, 0, 0, 0}, nil
		})
	}()
	<-enter // the key is owned; the next request becomes a waiter

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("GET", "/segment?rate=0&n=0", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(rec, req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request blocked behind the in-flight build")
	}
	close(release)
	if got := srv.ClientCancels(); got != 1 {
		t.Fatalf("ClientCancels=%d want 1", got)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("abandoned request wrote %d bytes", rec.Body.Len())
	}
}

// TestClientFailsOverToSurvivor: with a failover ring, a dead primary
// rotates the client to the next base mid-retry instead of exhausting
// the budget against the corpse — the cluster node-kill survival story
// at the single-client level.
func TestClientFailsOverToSurvivor(t *testing.T) {
	_, ts1 := testServer(t)
	_, ts2 := testServer(t)
	cli, err := NewFetchClient(ts1.URL, nil, WithFailover(ts2.URL), WithRetryPolicy(fastRetry(3)))
	if err != nil {
		t.Fatal(err)
	}
	cli.sleep = func(time.Duration) {}
	if res, err := cli.FetchChunk(0, 0); err != nil || res.Degraded {
		t.Fatalf("healthy fetch: %v %+v", err, res)
	}
	ts1.Close() // kill the primary mid-stream
	res, err := cli.FetchChunk(1, 0)
	if err != nil {
		t.Fatalf("fetch after primary death: %v", err)
	}
	if res.Degraded || res.Bytes == 0 {
		t.Fatalf("survivor did not serve: %+v", res)
	}
	if cli.Failovers() == 0 {
		t.Fatal("no failover recorded despite a dead primary")
	}
	// Rotation is sticky: subsequent chunks go straight to the survivor.
	before := cli.Retries()
	if _, err := cli.FetchChunk(2, 0); err != nil {
		t.Fatal(err)
	}
	if cli.Retries() != before {
		t.Fatalf("sticky failover still retrying the dead base: %d new retries", cli.Retries()-before)
	}
}
