package qlog

// Summary is the cross-layer view aggregated from the event stream over
// flush windows (one window per chunk in the simulator). It is the
// transport-side source of abr.CrossLayer; units match that struct.
type Summary struct {
	// LossRate is the smoothed fraction [0,1] of first transmissions lost
	// on the wire (EWMA across windows; local queue rejections excluded).
	LossRate float64
	// SRTT is the smoothed round-trip time in seconds (EWMA over
	// rtt_sample events, gain RTTAlpha). During a chunk download the
	// samples include the sender's self-induced queueing delay, exactly
	// as ACK-clocked RTT measurements would on a real path.
	SRTT float64
	// RTTGradient is the SRTT change per second of session time between
	// the last two flushes (seconds per second; positive = queue
	// building).
	RTTGradient float64
	// InflightBytes is the window's high-water mark of outstanding wire
	// bytes.
	InflightBytes int
	// BacklogSec is the window's high-water send-queue backlog in
	// seconds.
	BacklogSec float64
	// Retransmits counts reliable retransmission attempts in the window.
	Retransmits int
	// PTOFires counts probe-timeout firings in the window.
	PTOFires int
	// LocalDrops counts local queue-overflow rejections in the window.
	LocalDrops int
	// Sent and Lost are the window's raw first-transmission and wire-loss
	// counts behind LossRate's latest observation.
	Sent, Lost int
	// Events is the total number of events consumed so far; Skipped
	// counts events lost to ring overwrite (a non-zero value means the
	// ring is undersized for the producer's burst length).
	Events, Skipped uint64
}

// Aggregator folds a Trace's events into a Summary. Call Flush at window
// boundaries (the simulator flushes once per chunk); each flush drains
// the events appended since the previous one, closes the window and
// returns the updated view.
type Aggregator struct {
	// LossAlpha is the EWMA gain for the per-window loss rate
	// (default 0.5: half the estimate renews each chunk).
	LossAlpha float64
	// RTTAlpha is the EWMA gain for SRTT (default 1/8, the classical
	// TCP/QUIC srtt gain).
	RTTAlpha float64

	cur      Cursor
	events   uint64
	haveRTT  bool
	srtt     float64
	haveLoss bool
	loss     float64
	prevSRTT float64
	prevT    float64
	havePrev bool
}

// NewAggregator returns an aggregator reading t from its current tail.
func NewAggregator(t *Trace) *Aggregator {
	return &Aggregator{LossAlpha: 0.5, RTTAlpha: 1.0 / 8.0, cur: t.NewCursor()}
}

// Flush drains pending events, closes the window at time now (simulation
// seconds) and returns the updated cross-layer view.
func (a *Aggregator) Flush(now float64) Summary {
	var (
		ev                 Event
		sent, lost         int
		retx, ptos, ldrops int
		inflightHW         int
		backlogHW          float64
	)
	for a.cur.Next(&ev) {
		a.events++
		switch ev.Type {
		case DatagramSent:
			sent++
		case ReliableSent:
			if ev.Attempt == 1 {
				sent++
			}
		case DatagramDropped:
			if ev.Trigger == TriggerLoss {
				lost++
			} else {
				ldrops++
			}
		case ReliableRetry:
			// Each retransmission implies the previous copy was (presumed)
			// lost on the wire — except queue-drain retries, whose drop was
			// local.
			retx++
			if ev.Trigger != TriggerQueueDrain {
				lost++
			}
		case LocalDrop:
			ldrops++
		case PTOFired:
			ptos++
		case RTTSample:
			if !a.haveRTT {
				a.srtt, a.haveRTT = ev.RTT, true
			} else {
				a.srtt += a.RTTAlpha * (ev.RTT - a.srtt)
			}
		case InflightHighWater:
			if ev.InflightBytes > inflightHW {
				inflightHW = ev.InflightBytes
			}
		case BacklogHighWater:
			if ev.Backlog > backlogHW {
				backlogHW = ev.Backlog
			}
		}
		if ev.InflightBytes > inflightHW {
			inflightHW = ev.InflightBytes
		}
		if ev.Backlog > backlogHW {
			backlogHW = ev.Backlog
		}
	}
	if sent > 0 {
		// Every lost first transmission also produced a sent event, so the
		// fraction is lost/sent; retransmissions of later attempts can push
		// the count past the window's first transmissions, hence the clamp.
		obs := float64(lost) / float64(sent)
		if obs > 1 {
			obs = 1
		}
		if !a.haveLoss {
			a.loss, a.haveLoss = obs, true
		} else {
			a.loss += a.LossAlpha * (obs - a.loss)
		}
	}
	var grad float64
	if a.havePrev && now > a.prevT {
		grad = (a.srtt - a.prevSRTT) / (now - a.prevT)
	}
	a.prevSRTT, a.prevT, a.havePrev = a.srtt, now, true

	return Summary{
		LossRate:      a.loss,
		SRTT:          a.srtt,
		RTTGradient:   grad,
		InflightBytes: inflightHW,
		BacklogSec:    backlogHW,
		Retransmits:   retx,
		PTOFires:      ptos,
		LocalDrops:    ldrops,
		Sent:          sent,
		Lost:          lost,
		Events:        a.events,
		Skipped:       a.cur.Skipped,
	}
}
