package experiments

import (
	"fmt"

	"nerve/internal/fec"
	"nerve/internal/netem"
	"nerve/internal/sim"
	"nerve/internal/trace"
)

// fig1LossRates are the packet loss rates of Fig. 1 (1%, 3%, 5%).
var fig1LossRates = []float64{0.01, 0.03, 0.05}

// redundancyGrid returns the Fig. 1/2 redundancy sweep.
func redundancyGrid(opts Options) []float64 {
	if opts.Quick {
		return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.6}
	}
	return []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6}
}

// Fig1 measures the frame loss rate under bursty (Gilbert–Elliott) packet
// loss as a function of FEC redundancy, for 1/3/5% loss — the motivation
// experiment showing FEC needs ≈5× the loss rate.
func Fig1(opts Options) *Series {
	reds := redundancyGrid(opts)
	framesPerTrial := 4000
	if opts.Quick {
		framesPerTrial = 800
	}
	const pktsPerFrame = 10

	s := &Series{
		ID: "fig1", Title: "Frame loss rate vs FEC redundancy",
		XLabel: "redundancy",
		X:      reds,
		Notes: []string{
			"losses follow a Gilbert–Elliott burst process (the regime where RS FEC needs ≈5× the loss rate)",
		},
	}
	for li, loss := range fig1LossRates {
		s.Columns = append(s.Columns, fmt.Sprintf("%.0f%%", loss*100))
		var row []float64
		for _, red := range reds {
			ge := netem.NewGilbertElliott(opts.Seed + int64(li*1000))
			// Streaming FEC interleaves packets, which shortens the
			// effective burst length the per-frame block sees.
			ge.Recover = 0.6
			parity := fec.ParityCount(pktsPerFrame, red)
			lostFrames := 0
			for f := 0; f < framesPerTrial; f++ {
				lost := 0
				for p := 0; p < pktsPerFrame+parity; p++ {
					if ge.Drop(0, loss) {
						lost++
					}
				}
				if lost > parity {
					lostFrames++
				}
			}
			row = append(row, float64(lostFrames)/float64(framesPerTrial))
		}
		s.Y = append(s.Y, row)
	}
	return s
}

// lossyTrace returns the downscaled trace used by the FEC QoE experiments,
// with LossScale chosen so the average loss matches `loss`.
func lossyTrace(seed int64, loss float64) (*trace.Trace, float64) {
	tr := trace.Generate(trace.Net4G, 240, seed).Downscale(1.5e6, 0.3e6, 5e6)
	scale := loss / tr.Stat().AvgLossRate
	return tr, scale
}

// motivationTrace is the Fig. 2 setting: ample, stable bandwidth so packet
// loss — not lateness — dominates, as in the paper's motivation experiment.
func motivationTrace(seed int64, loss float64) (*trace.Trace, float64) {
	tr := trace.Generate(trace.NetWiFi, 240, seed).Downscale(3.5e6, 1e6, 6e6)
	scale := loss / tr.Stat().AvgLossRate
	return tr, scale
}

// Fig2 measures session QoE versus FEC redundancy, with and without the
// recovery model, for 1/3/5% loss.
func Fig2(opts Options) *Series {
	reds := redundancyGrid(opts)
	seeds := int64(4)
	if opts.Quick {
		seeds = 2
	}
	set := sim.NewSchemeSet()
	set.UseFEC = true

	s := &Series{
		ID: "fig2", Title: "QoE vs FEC redundancy, with/without recovery",
		XLabel: "redundancy",
		X:      reds,
		Notes: []string{
			"shape: QoE rises once redundancy covers the loss; recovery (RC) curves dominate and need less FEC",
		},
	}
	for _, loss := range fig1LossRates {
		for _, rc := range []bool{false, true} {
			label := fmt.Sprintf("%.0f%%", loss*100)
			if rc {
				label += " & RC"
			}
			s.Columns = append(s.Columns, label)
			var row []float64
			for _, red := range reds {
				var q float64
				for sd := int64(0); sd < seeds; sd++ {
					tr, scale := motivationTrace(opts.Seed+100+sd, loss)
					scheme := set.WithoutRecovery()
					if rc {
						scheme = set.RecoveryAlone()
					}
					scheme.UseFEC = true
					scheme.Planner = fec.NewPlannerFromTable(map[float64]float64{0: red})
					cfg := sim.Config{Trace: tr, Seed: opts.Seed + 200 + sd, LossScale: scale, Chunks: chunksFor(opts)}
					q += sim.Run(cfg, scheme).QoE
				}
				row = append(row, q/float64(seeds))
			}
			s.Y = append(s.Y, row)
		}
	}
	return s
}

// Fig16 compares the joint FEC+recovery optimisation against the ablations
// under lossy conditions: w/o FEC (full system, FEC off), w/o RC, RC alone,
// and the full system — each non-"w/o FEC" scheme using its own jointly
// optimised FEC table (§4).
func Fig16(opts Options) *Table {
	lossScale := 6.0
	seeds := int64(4)
	chunks := chunksFor(opts)
	if opts.Quick {
		seeds = 2
	}

	// Build per-scheme joint planners (separate lookup tables per §8.3).
	build := func(mk func(sim.SchemeSet) sim.Scheme) *fec.Planner {
		losses := []float64{0.01, 0.05, 0.1}
		reds := []float64{0, 0.1, 0.25, 0.5}
		p, err := fec.BuildPlanner(losses, reds, func(loss, red float64) float64 {
			set := sim.NewSchemeSet()
			set.UseFEC = true
			sc := mk(set)
			sc.UseFEC = true
			sc.Planner = fec.NewPlannerFromTable(map[float64]float64{0: red})
			tr, scale := lossyTrace(opts.Seed+777, loss)
			return sim.Run(sim.Config{Trace: tr, Seed: opts.Seed + 888, LossScale: scale, Chunks: chunks / 2}, sc).QoE
		})
		if err != nil {
			panic(err)
		}
		return p
	}

	type entry struct {
		name string
		mk   func(sim.SchemeSet) sim.Scheme
		fec  bool
	}
	entries := []entry{
		{"w/o FEC", func(s sim.SchemeSet) sim.Scheme { return s.Full() }, false},
		{"w/o RC", func(s sim.SchemeSet) sim.Scheme { return s.WithoutRecoveryReuse() }, true},
		{"RC alone", func(s sim.SchemeSet) sim.Scheme { return s.RecoveryAlone() }, true},
		{"our", func(s sim.SchemeSet) sim.Scheme { return s.Full() }, true},
	}

	t := &Table{
		ID:     "fig16",
		Title:  "QoE with jointly optimised FEC under lossy networks",
		Header: []string{"scheme", "3G", "4G", "5G", "WiFi"},
		Notes:  []string{"shape: our (joint FEC+recovery) highest; each scheme uses its own loss→FEC table (§4)"},
	}
	for _, e := range entries {
		var planner *fec.Planner
		if e.fec {
			planner = build(e.mk)
		}
		row := []string{e.name}
		for _, nt := range trace.NetworkTypes() {
			var q float64
			for sd := int64(0); sd < seeds; sd++ {
				tr := trace.Generate(nt, 240, opts.Seed+300+sd).Downscale(1.5e6, 0.3e6, 5e6)
				set := sim.NewSchemeSet()
				set.UseFEC = e.fec
				sc := e.mk(set)
				sc.UseFEC = e.fec
				sc.Planner = planner
				cfg := sim.Config{Trace: tr, Seed: opts.Seed + 400 + sd, LossScale: lossScale, Chunks: chunks}
				q += sim.Run(cfg, sc).QoE
			}
			row = append(row, fmt.Sprintf("%.3f", q/float64(seeds)))
		}
		t.AddRow(row...)
	}
	return t
}

// chunksFor returns the per-session chunk count.
func chunksFor(opts Options) int {
	if opts.Quick {
		return 30
	}
	return 60
}
