package sim

import (
	"bytes"
	"testing"

	"nerve/internal/abr"
	"nerve/internal/trace"
)

// captureABR records the cross-layer view it is offered while delegating
// to a fixed rung.
type captureABR struct {
	views []*abr.CrossLayer
	rate  int
}

func (c *captureABR) Name() string { return "capture" }
func (c *captureABR) Reset()       { c.views = nil }
func (c *captureABR) SelectRate(s abr.State) int {
	if s.CrossLayer != nil {
		cp := *s.CrossLayer
		c.views = append(c.views, &cp)
	} else {
		c.views = append(c.views, nil)
	}
	return c.rate
}

func lossy4G(seed int64) *trace.Trace {
	return trace.Generate(trace.Net4G, 120, seed).Downscale(1.5e6, 0.3e6, 5e6)
}

// TestQLogStreamDeterministic: a fixed seed yields a byte-for-byte
// identical transport event stream (the ISSUE's reproducibility
// criterion).
func TestQLogStreamDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		set := NewSchemeSet()
		set.UseFEC = true
		sc := set.Full()
		sc.UseFEC = true
		sc.ABR = abr.NewBBA2Loss()
		Run(Config{
			Trace: lossy4G(3), Seed: 7, LossScale: 6, Chunks: 12,
			PacketAccurate: true, QLogSink: &buf,
		}, sc)
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no qlog output from a packet-accurate session")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different event streams (%d vs %d bytes)", len(a), len(b))
	}
}

// TestCrossLayerViewPopulated: packet-accurate sessions expose the
// aggregated transport view to the controller, with the scheme's maskable
// loss class; fluid sessions do not.
func TestCrossLayerViewPopulated(t *testing.T) {
	cap := &captureABR{rate: 2}
	set := NewSchemeSet()
	sc := set.RecoveryAlone()
	sc.ABR = cap
	sc.UseFEC = true
	Run(Config{
		Trace: lossy4G(5), Seed: 9, LossScale: 6, Chunks: 10, PacketAccurate: true,
	}, sc)
	if len(cap.views) != 10 {
		t.Fatalf("controller consulted %d times, want 10", len(cap.views))
	}
	sawLoss := false
	for i, v := range cap.views {
		if v == nil {
			t.Fatalf("chunk %d: nil cross-layer view in packet-accurate mode", i)
		}
		if v.MaskableLoss != 0.15 {
			t.Fatalf("chunk %d: MaskableLoss = %g, want 0.15 for the recovery client", i, v.MaskableLoss)
		}
		if v.LossRate > 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("6x loss never showed up in the cross-layer loss rate")
	}
	if last := cap.views[len(cap.views)-1]; last.SRTT <= 0 {
		t.Fatalf("SRTT never converged: %g", last.SRTT)
	}

	// Fluid mode: no transport, no view.
	cap.Reset()
	Run(Config{Trace: lossy4G(5), Seed: 9, LossScale: 6, Chunks: 5}, sc)
	for i, v := range cap.views {
		if v != nil {
			t.Fatalf("chunk %d: cross-layer view present in fluid mode", i)
		}
	}
}

// TestMaskableLossByScheme: the reuse client gets the lower band, the
// conventional client none.
func TestMaskableLossByScheme(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(SchemeSet) Scheme
		want float64
	}{
		{"reuse", func(s SchemeSet) Scheme { return s.WithoutRecoveryReuse() }, 0.05},
		{"conventional", func(s SchemeSet) Scheme { return s.WithoutRecovery() }, 0},
	} {
		cap := &captureABR{rate: 1}
		sc := tc.mk(NewSchemeSet())
		sc.ABR = cap
		Run(Config{Trace: lossy4G(5), Seed: 9, Chunks: 3, PacketAccurate: true}, sc)
		for _, v := range cap.views {
			if v == nil || v.MaskableLoss != tc.want {
				t.Fatalf("%s: MaskableLoss view = %+v, want %g", tc.name, v, tc.want)
			}
		}
	}
}
