// Package telemetry is the observability layer of the reproduction: it
// answers "where does the frame time go?" for a system whose whole point
// is fitting recovery and enhancement inside a per-frame deadline (§7:
// <33 ms at 30 FPS).
//
// The package provides four instruments, all safe for concurrent use and
// all free of per-record allocations:
//
//   - stage timers: monotonic wall-clock timers around every pipeline
//     stage (encode, decode, code extraction, flow, warp, SR, recovery,
//     FEC, fetch, ABR), recorded into sharded log-linear histograms that
//     report p50/p95/p99/max;
//   - counters: named monotonic event counts (retries, degraded chunks,
//     cache activity) registered once and bumped with one atomic add;
//   - a frame-deadline tracker: per-frame wall time measured against the
//     budget of a configurable FPS target, counting overruns and keeping
//     the overrun-size distribution;
//   - a structured event sink: optional JSON-lines output of discrete
//     occurrences (a retry, a degradation, a deadline overrun) for
//     post-run analysis.
//
// Everything hangs off a Registry. The process-wide Default registry is
// what the instrumented packages (codec, sr, recovery, httpstream, abr,
// core, sim, experiments) record into; it starts disabled, so the
// instrumentation costs one atomic load per call site until something —
// nervebench -telemetry, nerved -debug-addr, or a test — turns it on.
// Snapshot serialises the registry's state to the BENCH_telemetry.json
// schema documented in OBSERVABILITY.md; internal/telemetry/teldebug
// serves the same snapshot (plus expvar and pprof) over HTTP.
//
// Timers nest: recovery's span includes the flow and warp spans it runs
// internally, so stage totals are not additive — see OBSERVABILITY.md
// for how to read them.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented pipeline stage.
type Stage int

// The instrumented stages, in pipeline order. StageCode is the binary
// point code (hint) extraction; StageFetch is a client HTTP fetch
// including retries and backoff waits.
const (
	StageEncode Stage = iota
	StageDecode
	StageCode
	StageFlow
	StageWarp
	StageSR
	StageRecovery
	StageFEC
	StageFetch
	StageABR

	numStages
)

// StageNone attributes an event to no particular stage.
const StageNone Stage = -1

var stageNames = [numStages]string{
	"encode", "decode", "code", "flow", "warp",
	"sr", "recovery", "fec", "fetch", "abr",
}

// String returns the stage's snake-case metric name.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("Stage(%d)", int(s))
	}
	return stageNames[s]
}

// Stages returns every instrumented stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Registry holds one independent set of instruments. The zero value is
// not ready to use; call New (or use Default).
type Registry struct {
	enabled atomic.Bool
	stages  [numStages]Histogram
	dead    deadline
	pipe    pipeline
	sink    atomic.Pointer[eventSink]

	mu       sync.RWMutex
	counters map[string]*Counter
}

// Default is the process-wide registry every instrumented package records
// into. It starts disabled.
var Default = New()

// New returns a disabled registry with the deadline targeting 30 FPS.
func New() *Registry {
	r := &Registry{counters: make(map[string]*Counter)}
	r.SetDeadlineFPS(30)
	return r
}

// Enable turns recording on or off. While disabled, timers, counters and
// the event sink are no-ops costing one atomic load each.
func (r *Registry) Enable(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset zeroes every histogram, counter and the deadline tracker. It does
// not change the enabled state, the FPS target or the event sink.
func (r *Registry) Reset() {
	for i := range r.stages {
		r.stages[i].reset()
	}
	r.dead.reset()
	r.pipe.reset()
	r.mu.RLock()
	for _, c := range r.counters {
		c.n.Store(0)
	}
	r.mu.RUnlock()
}

// Timer measures one stage span. The zero Timer (returned while the
// registry is disabled) is inert: Stop on it does nothing.
type Timer struct {
	r     *Registry
	stage Stage
	start time.Time
}

// Start begins timing one span of stage s. The idiomatic call site is
//
//	defer telemetry.Start(telemetry.StageEncode).Stop()
//
// which evaluates Start immediately and records on return.
func (r *Registry) Start(s Stage) Timer {
	if s < 0 || s >= numStages {
		panic(fmt.Sprintf("telemetry: invalid stage %d", int(s)))
	}
	if !r.enabled.Load() {
		return Timer{}
	}
	return Timer{r: r, stage: s, start: time.Now()}
}

// Stop records the span's elapsed wall time (monotonic clock).
func (t Timer) Stop() {
	if t.r == nil {
		return
	}
	t.r.stages[t.stage].Observe(time.Since(t.start))
}

// Observe records one already-measured span of stage s.
func (r *Registry) Observe(s Stage, d time.Duration) {
	if s < 0 || s >= numStages {
		panic(fmt.Sprintf("telemetry: invalid stage %d", int(s)))
	}
	if !r.enabled.Load() {
		return
	}
	r.stages[s].Observe(d)
}

// StageHistogram returns the histogram backing stage s, for direct
// inspection in tests and tools.
func (r *Registry) StageHistogram(s Stage) *Histogram {
	if s < 0 || s >= numStages {
		panic(fmt.Sprintf("telemetry: invalid stage %d", int(s)))
	}
	return &r.stages[s]
}

// Counter is a named monotonic event count. Adds are single atomic
// operations gated on the owning registry's enabled flag.
type Counter struct {
	r *Registry
	n atomic.Int64
}

// Counter returns the counter registered under name, creating it on first
// use. Counters are cheap to look up but call sites should hold the
// returned handle rather than re-resolving the name per event.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{r: r}
	r.counters[name] = c
	return c
}

// Add increments the counter by n while the registry is enabled.
func (c *Counter) Add(n int64) {
	if !c.r.enabled.Load() {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// ---- Package-level helpers on the Default registry ----

// Enable turns the Default registry on or off.
func Enable(on bool) { Default.Enable(on) }

// Enabled reports whether the Default registry is recording.
func Enabled() bool { return Default.Enabled() }

// Start begins timing a span of stage s on the Default registry.
func Start(s Stage) Timer { return Default.Start(s) }

// NewCounter returns the Default registry's counter for name.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// FrameStart begins timing one frame on the Default registry.
func FrameStart() FrameTimer { return Default.FrameStart() }

// SetDeadlineFPS sets the Default registry's frame-rate target.
func SetDeadlineFPS(fps float64) { Default.SetDeadlineFPS(fps) }

// Emit writes an event to the Default registry's sink, if one is set.
func Emit(kind string, stage Stage, detail string, value float64) {
	Default.Emit(kind, stage, detail, value)
}
