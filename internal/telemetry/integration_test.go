// Integration test: drives real instrumented pipeline code (the codec)
// against the Default registry and checks the spans actually land. Lives
// in an external test package because internal/codec imports telemetry —
// an in-package test would be an import cycle.
package telemetry_test

import (
	"testing"
	"time"

	"nerve/internal/codec"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

func TestCodecRecordsIntoDefault(t *testing.T) {
	// Default is process-global: claim it for the test and restore after.
	telemetry.Default.Reset()
	telemetry.Enable(true)
	defer func() {
		telemetry.Enable(false)
		telemetry.Default.Reset()
	}()

	cfg := codec.Config{W: 64, H: 48, TargetBitrate: 200e3}
	enc := codec.NewEncoder(cfg)
	dec := codec.NewDecoder(cfg)
	frame := vmath.NewPlane(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			frame.Set(x, y, float32((x*5+y*3)%256))
		}
	}
	const frames = 3
	for i := 0; i < frames; i++ {
		ef := enc.Encode(frame)
		if _, err := dec.Decode(ef, nil); err != nil {
			t.Fatal(err)
		}
	}

	encH := telemetry.Default.StageHistogram(telemetry.StageEncode)
	decH := telemetry.Default.StageHistogram(telemetry.StageDecode)
	// Rate control may re-encode a frame that misses its bit budget, so
	// encode spans are at least one per frame, not exactly one.
	if encH.Count() < frames {
		t.Errorf("encode spans = %d, want >= %d", encH.Count(), frames)
	}
	if decH.Count() != frames {
		t.Errorf("decode spans = %d, want %d", decH.Count(), frames)
	}
	if encH.Sum() <= 0 || encH.Max() <= 0 {
		t.Errorf("encode histogram empty of time: sum=%v max=%v", encH.Sum(), encH.Max())
	}
	if q := encH.Quantile(0.5); q <= 0 || q > time.Second {
		t.Errorf("encode p50 = %v, outside sane range", q)
	}

	// The snapshot must carry the same numbers.
	s := telemetry.Default.Snapshot()
	if s.Stages[telemetry.StageDecode].Count != frames {
		t.Errorf("snapshot decode count = %d, want %d", s.Stages[telemetry.StageDecode].Count, frames)
	}
}

func TestDisabledDefaultCostsNothing(t *testing.T) {
	telemetry.Default.Reset()
	telemetry.Enable(false)
	cfg := codec.Config{W: 32, H: 32, TargetBitrate: 100e3}
	enc := codec.NewEncoder(cfg)
	frame := vmath.NewPlane(32, 32)
	enc.Encode(frame)
	if n := telemetry.Default.StageHistogram(telemetry.StageEncode).Count(); n != 0 {
		t.Fatalf("disabled Default recorded %d spans", n)
	}
}
