package codec

import "math"

// AAN (Arai–Agui–Nakajima) butterfly factorisation of the 8-point DCT:
// 5 multiplies and 29 adds per 1-D transform against 64 multiplies for the
// basis-matrix form, at the price of a known diagonal output scaling that
// this codec folds into the quantiser tables (transformSet.quantRecip /
// dequantStep), so scaling costs nothing at runtime.
//
// Scale relation to the orthonormal DCT (fdct8Ref/idct8Ref): with
// aan[0] = 1 and aan[k] = √2·cos(kπ/16),
//
//	fdct8 output  = X[v][u] · 8·aan[u]·aan[v]
//	idct8 input   = X[v][u] · aan[u]·aan[v]/8
//
// where X is the orthonormal 2-D DCT. The ratio invScale/fwdScale is the
// uniform 1/64, so idct8(fdct8(x)/64) == x up to float rounding.

// Forward butterfly constants: cos(π/4), cos(3π/8), cos(3π/8)·√2·cos(π/8)
// factored as in jfdctflt — c4, c6, c2−c6, c2+c6 in libjpeg's notation.
const (
	aanF1 = 0.707106781 // c4
	aanF2 = 0.382683433 // c6
	aanF3 = 0.541196100 // c2 − c6
	aanF4 = 1.306562965 // c2 + c6
)

// Inverse butterfly constants (jidctflt's notation): √2, √2·c2, √2·c6,
// −√2·(c2+c6)·... — the exact products fall out of the flow-graph
// transposition of the forward transform.
const (
	aanI1 = 1.414213562  // √2
	aanI2 = 1.847759065  // 2·cos(π/8)·... (z5 factor)
	aanI3 = 1.082392200  // z12 factor
	aanI4 = -2.613125930 // z10 factor
)

// fdct8 computes the scaled 2-D forward DCT of an 8×8 block (row-major
// in/out): out[v*8+u] = X[v][u]·fwdScale[v*8+u] with X the orthonormal DCT.
// quantise knows about the scaling; everything else should not call this
// directly but go through xf.fdct.
func fdct8(in, out *[64]float32) {
	// Rows.
	for y := 0; y < 8; y++ {
		r := in[y*8 : y*8+8]
		tmp0, tmp7 := r[0]+r[7], r[0]-r[7]
		tmp1, tmp6 := r[1]+r[6], r[1]-r[6]
		tmp2, tmp5 := r[2]+r[5], r[2]-r[5]
		tmp3, tmp4 := r[3]+r[4], r[3]-r[4]

		// Even part.
		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		o := out[y*8 : y*8+8]
		o[0] = tmp10 + tmp11
		o[4] = tmp10 - tmp11
		z1 := (tmp12 + tmp13) * aanF1
		o[2] = tmp13 + z1
		o[6] = tmp13 - z1

		// Odd part.
		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := (tmp10 - tmp12) * aanF2
		z2 := aanF3*tmp10 + z5
		z4 := aanF4*tmp12 + z5
		z3 := tmp11 * aanF1
		z11, z13 := tmp7+z3, tmp7-z3
		o[5] = z13 + z2
		o[3] = z13 - z2
		o[1] = z11 + z4
		o[7] = z11 - z4
	}
	// Columns (identical butterfly at stride 8, in place over out).
	for x := 0; x < 8; x++ {
		c := out[x:]
		tmp0, tmp7 := c[0]+c[56], c[0]-c[56]
		tmp1, tmp6 := c[8]+c[48], c[8]-c[48]
		tmp2, tmp5 := c[16]+c[40], c[16]-c[40]
		tmp3, tmp4 := c[24]+c[32], c[24]-c[32]

		tmp10, tmp13 := tmp0+tmp3, tmp0-tmp3
		tmp11, tmp12 := tmp1+tmp2, tmp1-tmp2
		c[0] = tmp10 + tmp11
		c[32] = tmp10 - tmp11
		z1 := (tmp12 + tmp13) * aanF1
		c[16] = tmp13 + z1
		c[48] = tmp13 - z1

		tmp10 = tmp4 + tmp5
		tmp11 = tmp5 + tmp6
		tmp12 = tmp6 + tmp7
		z5 := (tmp10 - tmp12) * aanF2
		z2 := aanF3*tmp10 + z5
		z4 := aanF4*tmp12 + z5
		z3 := tmp11 * aanF1
		z11, z13 := tmp7+z3, tmp7-z3
		c[40] = z13 + z2
		c[24] = z13 - z2
		c[8] = z11 + z4
		c[56] = z11 - z4
	}
}

// idct8 computes the 2-D inverse DCT of an 8×8 coefficient block whose
// entries are pre-scaled by invScale (dequantise produces exactly that).
func idct8(in, out *[64]float32) {
	// Columns.
	for x := 0; x < 8; x++ {
		c := in[x:]
		// Even part.
		tmp10 := c[0] + c[32]
		tmp11 := c[0] - c[32]
		tmp13 := c[16] + c[48]
		tmp12 := (c[16]-c[48])*aanI1 - tmp13
		tmp0, tmp3 := tmp10+tmp13, tmp10-tmp13
		tmp1, tmp2 := tmp11+tmp12, tmp11-tmp12

		// Odd part.
		z13 := c[40] + c[24]
		z10 := c[40] - c[24]
		z11 := c[8] + c[56]
		z12 := c[8] - c[56]
		tmp7 := z11 + z13
		tmp11 = (z11 - z13) * aanI1
		z5 := (z10 + z12) * aanI2
		tmp10 = aanI3*z12 - z5
		tmp12 = aanI4*z10 + z5
		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		o := out[x:]
		o[0] = tmp0 + tmp7
		o[56] = tmp0 - tmp7
		o[8] = tmp1 + tmp6
		o[48] = tmp1 - tmp6
		o[16] = tmp2 + tmp5
		o[40] = tmp2 - tmp5
		o[32] = tmp3 + tmp4
		o[24] = tmp3 - tmp4
	}
	// Rows (in place over out).
	for y := 0; y < 8; y++ {
		r := out[y*8 : y*8+8]
		tmp10 := r[0] + r[4]
		tmp11 := r[0] - r[4]
		tmp13 := r[2] + r[6]
		tmp12 := (r[2]-r[6])*aanI1 - tmp13
		tmp0, tmp3 := tmp10+tmp13, tmp10-tmp13
		tmp1, tmp2 := tmp11+tmp12, tmp11-tmp12

		z13 := r[5] + r[3]
		z10 := r[5] - r[3]
		z11 := r[1] + r[7]
		z12 := r[1] - r[7]
		tmp7 := z11 + z13
		tmp11 = (z11 - z13) * aanI1
		z5 := (z10 + z12) * aanI2
		tmp10 = aanI3*z12 - z5
		tmp12 = aanI4*z10 + z5
		tmp6 := tmp12 - tmp7
		tmp5 := tmp11 - tmp6
		tmp4 := tmp10 + tmp5

		r[0] = tmp0 + tmp7
		r[7] = tmp0 - tmp7
		r[1] = tmp1 + tmp6
		r[6] = tmp1 - tmp6
		r[2] = tmp2 + tmp5
		r[5] = tmp2 - tmp5
		r[4] = tmp3 + tmp4
		r[3] = tmp3 - tmp4
	}
}

// aanTransforms returns the AAN transform set with its diagonal scaling
// folded into the quant tables.
func aanTransforms() transformSet {
	var aan [8]float64
	aan[0] = 1
	for k := 1; k < 8; k++ {
		aan[k] = math.Sqrt2 * math.Cos(float64(k)*math.Pi/16)
	}
	var fwd, inv [64]float32
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			s := aan[u] * aan[v]
			fwd[v*8+u] = float32(8 * s)
			inv[v*8+u] = float32(s / 8)
		}
	}
	return newTransformSet(fdct8, idct8, fwd, inv)
}
