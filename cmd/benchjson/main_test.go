package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nerve/internal/codec
BenchmarkMotionSearch      	     100	   1234567 ns/op	    2048 B/op	      12 allocs/op
BenchmarkMotionSearch-4    	     400	    456789 ns/op	    2100 B/op	      14 allocs/op
PASS
ok  	nerve/internal/codec	1.234s
pkg: nerve/internal/sr
BenchmarkUpscale-4         	      50	  22334455 ns/op
some harness chatter that is not a bench line
ok  	nerve/internal/sr	2.345s
`

func TestParse(t *testing.T) {
	res, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if res.GoOS != "linux" || res.GoArch != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", res.GoOS, res.GoArch)
	}
	if len(res.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res.Benchmarks))
	}
	b := res.Benchmarks[0]
	if b.Name != "BenchmarkMotionSearch" || b.CPUs != 1 || b.Iterations != 100 ||
		b.NsPerOp != 1234567 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 ||
		b.Pkg != "nerve/internal/codec" {
		t.Fatalf("first bench parsed wrong: %+v", b)
	}
	if b := res.Benchmarks[1]; b.CPUs != 4 || b.Name != "BenchmarkMotionSearch" {
		t.Fatalf("-cpu suffix not split: %+v", b)
	}
	// No -benchmem on the sr run: alloc columns are marked absent, pkg
	// tracking follows the pkg: header.
	if b := res.Benchmarks[2]; b.BytesPerOp != -1 || b.AllocsPerOp != -1 ||
		b.Pkg != "nerve/internal/sr" || b.NsPerOp != 22334455 {
		t.Fatalf("sr bench parsed wrong: %+v", b)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 10 nan-ish ns/op",
		"BenchmarkX 10 5 B/op", // no ns/op
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
