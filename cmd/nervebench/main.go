// Command nervebench regenerates the paper's tables and figures.
//
// Usage:
//
//	nervebench -list
//	nervebench -exp fig7            # one experiment
//	nervebench -all                 # everything (DESIGN.md §3)
//	nervebench -exp fig6 -out dir   # write PGM artefacts
//	nervebench -quick               # reduced workload
//	nervebench -workers 1 -exp fig7 # pin the worker pool (also: NERVE_WORKERS)
package main

import (
	"flag"
	"fmt"
	"os"

	"nerve"
	"nerve/internal/par"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		exp     = flag.String("exp", "", "experiment ID to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "reduced workload (CI-scale)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "directory for visualisation artefacts")
		workers = flag.Int("workers", 0, "worker pool size; 0 = NERVE_WORKERS env or GOMAXPROCS")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}

	opts := nerve.ExperimentOptions{Quick: *quick, Seed: *seed, OutDir: *out}
	switch {
	case *list:
		for _, id := range nerve.ExperimentIDs() {
			fmt.Println(id)
		}
	case *all:
		if err := nerve.RunAllExperiments(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "nervebench:", err)
			os.Exit(1)
		}
	case *exp != "":
		if err := nerve.RunExperiment(*exp, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "nervebench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
