package device

import (
	"math"
	"testing"

	"nerve/internal/video"
)

func TestDecodeLatencies(t *testing.T) {
	m := IPhone12()
	want := map[video.Resolution]float64{
		video.R240: 0.0018, video.R360: 0.0023, video.R480: 0.0029,
		video.R720: 0.0041, video.R1080: 0.0062,
	}
	for r, w := range want {
		if got := m.DecodeLatency(r); math.Abs(got-w) > 1e-9 {
			t.Errorf("%v decode %v want %v", r, got, w)
		}
	}
}

func TestRealtimeBudget(t *testing.T) {
	m := IPhone12()
	for _, r := range video.Resolutions() {
		total := m.TotalFrameLatency(r)
		if total > 0.033 {
			t.Errorf("%v total %v exceeds 33 ms", r, total)
		}
		if !m.SupportsRealtime(r) {
			t.Errorf("%v not real-time", r)
		}
	}
	// 1080p: 6.2 + 22 = 28.2 ms, as in §8.4.
	if got := m.TotalFrameLatency(video.R1080); math.Abs(got-0.0282) > 1e-9 {
		t.Errorf("1080p total %v want 28.2 ms", got)
	}
}

func TestModelLatencyTable1(t *testing.T) {
	m := IPhone12()
	// Ours: 10.8 GFLOPs optimised → 22 ms.
	if got := m.ModelLatency(10.8, true); math.Abs(got-0.022) > 1e-6 {
		t.Errorf("ours latency %v want 22 ms", got)
	}
	// RLSP: 132.94 GFLOPs unoptimised → seconds (paper: 5000 ms).
	rlsp := m.ModelLatency(132.94, false)
	if rlsp < 3 || rlsp > 8 {
		t.Errorf("RLSP latency %v want ≈5-6 s", rlsp)
	}
	// Ordering: ours ≪ CKBG < BasicVSR < RLSP.
	ck := m.ModelLatency(17.8, false)
	bv := m.ModelLatency(71.33, false)
	if !(0.022 < ck && ck < bv && bv < rlsp) {
		t.Errorf("latency ordering wrong: ours=22ms ckbg=%v basicvsr=%v rlsp=%v", ck, bv, rlsp)
	}
	if m.ModelLatency(0, true) <= 0 {
		t.Error("zero-FLOP latency must stay positive")
	}
}

func TestWarpLatencyAnchors(t *testing.T) {
	m := IPhone12()
	if got := m.WarpLatency(480, 270); math.Abs(got-0.005) > 1e-9 {
		t.Errorf("270p warp %v want 5 ms", got)
	}
	if got := m.WarpLatency(1920, 1080); math.Abs(got-0.029) > 1e-9 {
		t.Errorf("1080p warp %v want 29 ms", got)
	}
	mid := m.WarpLatency(1280, 720)
	if mid <= 0.005 || mid >= 0.029 {
		t.Errorf("720p warp %v not between anchors", mid)
	}
	if small := m.WarpLatency(128, 64); small <= 0 || small >= 0.005 {
		t.Errorf("tiny warp %v", small)
	}
}

func TestCPUAndEnergyAnchors(t *testing.T) {
	m := IPhone12()
	cases := []struct {
		frac        float64
		cpu, energy float64
	}{
		{0, 0.28, 0.04}, {0.2, 0.37, 0.05}, {1, 0.68, 0.07},
	}
	for _, c := range cases {
		if got := m.CPUUtilisation(c.frac); math.Abs(got-c.cpu) > 1e-9 {
			t.Errorf("CPU(%v)=%v want %v", c.frac, got, c.cpu)
		}
		if got := m.EnergyPerFrame(c.frac); math.Abs(got-c.energy) > 1e-9 {
			t.Errorf("Energy(%v)=%v want %v", c.frac, got, c.energy)
		}
	}
	// Monotone.
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.1 {
		c := m.CPUUtilisation(f)
		if c < prev {
			t.Fatalf("CPU not monotone at %v", f)
		}
		prev = c
	}
	// Clamping.
	if m.CPUUtilisation(-1) != 0.28 || m.CPUUtilisation(2) != 0.68 {
		t.Error("clamping failed")
	}
}

func TestBatteryProjection(t *testing.T) {
	m := IPhone12()
	// §8.4: 13.2 h without enhancement, 7.5 h with every frame enhanced.
	if got := m.BatteryHours(0); math.Abs(got-13.2) > 0.1 {
		t.Errorf("battery(0)=%v want 13.2 h", got)
	}
	if got := m.BatteryHours(1); math.Abs(got-7.5) > 0.2 {
		t.Errorf("battery(1)=%v want ≈7.5 h", got)
	}
}
