package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"nerve/internal/faultnet"
	"nerve/internal/httpstream"
	"nerve/internal/video"
)

// tinyServer is a small self-serve origin: cheap to warm, two rungs,
// real content.
func tinyServer() *httpstream.ServerConfig {
	return &httpstream.ServerConfig{
		W: 96, H: 64, ChunkSeconds: 0.5, Chunks: 2,
		Rates:  []int{200, 600},
		Source: video.NewGenerator(video.Categories()[2], 7),
	}
}

// fastPolicy keeps retry wall time negligible while preserving the retry
// structure.
func fastPolicy() httpstream.RetryPolicy {
	return httpstream.RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    50 * time.Microsecond,
		MaxBackoff:     500 * time.Microsecond,
		RequestTimeout: 10 * time.Second,
	}
}

// TestSoakSmall is the harness acceptance in miniature: a mixed-profile
// fleet against a warmed in-process origin; every client finishes its
// chunks, the latency summary is populated, the QoE/rebuffer accounting
// stays in range, the singleflight bound holds, and — the steady-state
// proof — the warmed origin allocates zero planes under concurrent load.
func TestSoakSmall(t *testing.T) {
	mix, err := ParseMix("clean:1,lossy:1,hilat:1,bursty:1")
	if err != nil {
		t.Fatal(err)
	}
	const clients, chunks = 24, 4
	rep, err := Run(context.Background(), Config{
		Server:          tinyServer(),
		Clients:         clients,
		ChunksPerClient: chunks,
		Mix:             mix,
		Seed:            1,
		FixedRate:       -1, // adaptive
		RetryPolicy:     fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorCount != 0 {
		t.Fatalf("client errors: %+v", rep.Errors)
	}
	if got := rep.Chunks + rep.Failed; got != clients*chunks {
		t.Fatalf("accounted %d chunks, want %d", got, clients*chunks)
	}
	if rep.Fetch.Count == 0 || rep.Fetch.P50Ms <= 0 {
		t.Fatalf("empty fetch summary: %+v", rep.Fetch)
	}
	if !(rep.Fetch.P50Ms <= rep.Fetch.P95Ms && rep.Fetch.P95Ms <= rep.Fetch.P99Ms) {
		t.Fatalf("percentiles not monotone: %+v", rep.Fetch)
	}
	if rep.RebufferRatio < 0 || rep.RebufferRatio > 1 {
		t.Fatalf("rebuffer ratio %v out of range", rep.RebufferRatio)
	}
	if rep.ServerPlaneAllocs != 0 {
		t.Fatalf("warmed origin allocated %d planes under load, want 0", rep.ServerPlaneAllocs)
	}
	if maxEnc := int64(2 * 2); rep.ServerEncodes > maxEnc {
		t.Fatalf("%d encodes for %d (rate,chunk) pairs — singleflight failed under load", rep.ServerEncodes, maxEnc)
	}
	if len(rep.Profiles) != 4 {
		t.Fatalf("%d profile blocks, want 4", len(rep.Profiles))
	}
	for _, p := range rep.Profiles {
		if p.Clients != clients/4 {
			t.Fatalf("profile %s got %d clients, want %d", p.Profile, p.Clients, clients/4)
		}
	}
	// The high-latency profile must actually show up in the tail it is
	// designed to stress.
	var clean, hilat ProfileStats
	for _, p := range rep.Profiles {
		switch p.Profile {
		case "clean":
			clean = p
		case "hilat":
			hilat = p
		}
	}
	if hilat.Fetch.P50Ms <= clean.Fetch.P50Ms {
		t.Fatalf("hilat p50 %.2f ms not above clean p50 %.2f ms", hilat.Fetch.P50Ms, clean.Fetch.P50Ms)
	}
}

// TestSoakHitRatio: after the warm-up pass the measured phase must serve
// almost entirely from the LRU — the steady-state hit ratio the CI soak
// gates on with -min-hit-ratio.
func TestSoakHitRatio(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Server:          tinyServer(),
		Clients:         24,
		ChunksPerClient: 4,
		Mix:             DefaultMix(),
		Seed:            1,
		FixedRate:       -1,
		RetryPolicy:     fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil {
		t.Fatal("self-serve run reported no cache stats")
	}
	if rep.CacheHitRatio < 0.8 {
		t.Fatalf("steady-state hit ratio %.3f < 0.8: %+v", rep.CacheHitRatio, rep.Cache)
	}
	if rep.Cache.BytesLive > rep.Cache.Budget {
		t.Fatalf("cache over budget: %d > %d", rep.Cache.BytesLive, rep.Cache.Budget)
	}
	if rep.Cluster != nil {
		t.Fatal("single-origin run reported cluster stats")
	}
}

// TestSoakClusterMode runs the fleet against an in-process 3-node
// cluster: same client outcomes as the flat origin (zero errors, every
// chunk accounted), plus ownership routing visible in the cluster block
// and the steady state preserved — warmed nodes allocate no planes and
// serve from cache.
func TestSoakClusterMode(t *testing.T) {
	mix, err := ParseMix("clean:1,lossy:1")
	if err != nil {
		t.Fatal(err)
	}
	// Enough load that steady-state hits dominate the 3 nodes' warm-up
	// misses in the cumulative hit ratio.
	const clients, chunks = 18, 8
	rep, err := Run(context.Background(), Config{
		Server:          tinyServer(),
		ClusterNodes:    3,
		Clients:         clients,
		ChunksPerClient: chunks,
		Mix:             mix,
		Seed:            1,
		FixedRate:       -1,
		RetryPolicy:     fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorCount != 0 {
		t.Fatalf("client errors: %+v", rep.Errors)
	}
	if got := rep.Chunks + rep.Failed; got != clients*chunks {
		t.Fatalf("accounted %d chunks, want %d", got, clients*chunks)
	}
	if len(rep.Targets) != 3 {
		t.Fatalf("targets %v, want 3 cluster nodes", rep.Targets)
	}
	if rep.ServerPlaneAllocs != 0 {
		t.Fatalf("warmed cluster allocated %d planes under load, want 0", rep.ServerPlaneAllocs)
	}
	if rep.Cluster == nil {
		t.Fatal("cluster run reported no cluster stats")
	}
	if rep.Cluster.LiveNodes != 3 {
		t.Fatalf("live nodes %d, want 3", rep.Cluster.LiveNodes)
	}
	if rep.Cluster.PeerFetches == 0 {
		t.Fatal("no peer fetches — ownership routing inert")
	}
	if rep.Cluster.PeerErrors != 0 || rep.Cluster.LocalFallbacks != 0 || rep.Cluster.Rehashes != 0 {
		t.Fatalf("healthy cluster reported failures: %+v", rep.Cluster)
	}
	if rep.Cache == nil || rep.CacheHitRatio < 0.8 {
		t.Fatalf("cluster steady-state hit ratio too low: %+v", rep.Cache)
	}
	if rep.Cache.BytesLive > rep.Cache.Budget {
		t.Fatalf("caches over budget: %d > %d", rep.Cache.BytesLive, rep.Cache.Budget)
	}
}

// clientOutcome is the deterministic slice of a client's stats: wall
// clock excluded, fault-driven outcomes kept.
type clientOutcome struct {
	Profile                          string
	Chunks, Degraded, Failed, Errors int64
	Bytes                            int64
}

func outcomes(rep *Report) []clientOutcome {
	out := make([]clientOutcome, len(rep.PerClient))
	for i, c := range rep.PerClient {
		out[i] = clientOutcome{c.Profile, c.Chunks, c.Degraded, c.Failed, c.Errors, c.Bytes}
	}
	return out
}

// TestSoakDeterministicOutcomes: with a fixed rate (removing the
// wall-clock-dependent ABR input) the per-client chunk outcomes are a
// pure function of the run seed — same seed twice, identical; different
// seed, different.
func TestSoakDeterministicOutcomes(t *testing.T) {
	mix, err := ParseMix("lossy:1,bursty:1")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) *Report {
		rep, err := Run(context.Background(), Config{
			Server:          tinyServer(),
			Clients:         10,
			ChunksPerClient: 6,
			Mix:             mix,
			Seed:            seed,
			FixedRate:       0,
			RetryPolicy:     fastPolicy(),
			PerClient:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b, c := run(7), run(7), run(8)
	if !reflect.DeepEqual(outcomes(a), outcomes(b)) {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", outcomes(a), outcomes(b))
	}
	if a.Degraded+a.Failed == 0 {
		t.Fatal("fault profiles produced no degradations; determinism check is vacuous")
	}
	if reflect.DeepEqual(outcomes(a), outcomes(c)) {
		t.Fatal("different seeds produced identical outcomes")
	}
}

// TestSoakDurationMode: a time-boxed run terminates on schedule with
// paced clients still making progress.
func TestSoakDurationMode(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Server:      tinyServer(),
		Clients:     8,
		Duration:    400 * time.Millisecond,
		Mix:         DefaultMix(),
		Seed:        3,
		FixedRate:   0,
		RetryPolicy: fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks == 0 {
		t.Fatal("no chunks played in duration mode")
	}
	if rep.DurationSec > 5 {
		t.Fatalf("run took %.1fs for a 0.4s duration", rep.DurationSec)
	}
}

// TestSoakDecodeMode drives a handful of clients through the full
// playback engine to keep the expensive path wired.
func TestSoakDecodeMode(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Server:          tinyServer(),
		Clients:         3,
		ChunksPerClient: 2,
		Mix:             []Share{{Profile: mustProfile(t, "clean"), Weight: 1}},
		Seed:            2,
		FixedRate:       0,
		Decode:          true,
		Recovery:        true,
		RetryPolicy:     fastPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorCount != 0 {
		t.Fatalf("decode-mode client errors: %+v", rep.Errors)
	}
	if rep.Chunks != 6 {
		t.Fatalf("played %d chunks, want 6", rep.Chunks)
	}
	if rep.ServerPlaneAllocs != -1 {
		t.Fatalf("decode mode must not claim a server alloc measurement, got %d", rep.ServerPlaneAllocs)
	}
}

func mustProfile(t *testing.T, name string) faultnet.Profile {
	t.Helper()
	p, err := faultnet.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                 // no target
		{Server: tinyServer()},             // no clients
		{Server: tinyServer(), Clients: 1}, // no workload
		{Server: tinyServer(), Clients: 1, ChunksPerClient: 1, Recovery: true}, // recovery without decode
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestParseMix(t *testing.T) {
	shares, err := ParseMix("clean:2, lossy ,bursty:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 || shares[0].Weight != 2 || shares[1].Weight != 1 {
		t.Fatalf("parsed %+v", shares)
	}
	for _, s := range []string{"", "clean:0", "clean:x", "unknown"} {
		if _, err := ParseMix(s); err == nil {
			t.Errorf("mix %q accepted", s)
		}
	}
	if slots := mixSlots(shares); len(slots) != 4 || slots[0] != 0 || slots[1] != 0 || slots[2] != 1 || slots[3] != 2 {
		t.Fatalf("slots %v", mixSlots(shares))
	}
}
