package httpstream

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSplitLengthPrefixed checks the wire-format splitter against
// arbitrary payloads: it must never panic, and any payload it accepts must
// re-serialise byte-for-byte (the records partition the input exactly).
func FuzzSplitLengthPrefixed(f *testing.F) {
	var valid []byte
	for _, rec := range [][]byte{{}, {1}, {2, 3, 4}, bytes.Repeat([]byte{9}, 300)} {
		valid = binary.BigEndian.AppendUint32(valid, uint32(len(rec)))
		valid = append(valid, rec...)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add([]byte{0, 0, 0, 5, 1, 2})              // record shorter than its prefix
	f.Add([]byte{0, 0, 0})                       // truncated prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})        // huge length
	f.Add(binary.BigEndian.AppendUint32(nil, 0)) // single empty record

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := splitLengthPrefixed(b)
		if err != nil {
			return
		}
		var rejoined []byte
		for _, rec := range recs {
			rejoined = binary.BigEndian.AppendUint32(rejoined, uint32(len(rec)))
			rejoined = append(rejoined, rec...)
		}
		if !bytes.Equal(rejoined, b) {
			t.Fatalf("accepted payload does not round-trip: %d in, %d rejoined", len(b), len(rejoined))
		}
	})
}
