package edgecode

import (
	"bytes"
	"testing"
)

// FuzzCodeUnmarshalBinary checks the code wire format against arbitrary
// payloads: UnmarshalBinary must never panic or over-read, any payload it
// accepts must leave the code internally consistent (bitmap sized to the
// header geometry, every bit addressable), and a marshal of the result
// must reproduce the accepted prefix byte-for-byte.
func FuzzCodeUnmarshalBinary(f *testing.F) {
	good, _ := NewCode(DefaultW, DefaultH).MarshalBinary()
	f.Add(good)
	small, _ := NewCode(8, 4).MarshalBinary()
	f.Add(small)
	f.Add([]byte{})
	f.Add([]byte{0, 32, 0, 16, 0})          // payload shorter than geometry
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})   // 65535×65535 header, no bits
	f.Add([]byte{0, 0, 0, 0})               // zero geometry
	f.Add(append([]byte{0, 8, 0, 1}, 0xAA)) // exact fit

	f.Fuzz(func(t *testing.T, b []byte) {
		var c Code
		if err := c.UnmarshalBinary(b); err != nil {
			return
		}
		if got, want := len(c.Bits), (c.W*c.H+7)/8; got != want {
			t.Fatalf("accepted %dx%d code with %d bitmap bytes, want %d", c.W, c.H, got, want)
		}
		ones := 0
		for y := 0; y < c.H; y++ {
			for x := 0; x < c.W; x++ {
				if c.Get(x, y) {
					ones++
				}
			}
		}
		if full := c.Ones(); c.W*c.H%8 == 0 && ones != full {
			// With no trailing pad bits, per-bit reads and the popcount
			// must agree exactly.
			t.Fatalf("Get walk found %d ones, Ones()=%d", ones, full)
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted code fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, b[:len(out)]) {
			t.Fatalf("marshal of accepted code does not reproduce input prefix")
		}
	})
}
