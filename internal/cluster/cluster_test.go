package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"nerve/internal/httpstream"
	"nerve/internal/video"
)

// --- Ring unit tests ----------------------------------------------------

func threeNodeRing() *Ring {
	return NewRing(0, "http://a:1", "http://b:1", "http://c:1")
}

func TestRingOwnerDeterministic(t *testing.T) {
	r1 := threeNodeRing()
	// Membership order must not matter: rendezvous hashing has no token
	// positions, so differently-ordered configs agree on every owner.
	r2 := NewRing(0, "http://c:1", "http://a:1", "http://b:1")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("seg:1:%d", i)
		o := r1.Owner(key)
		if o != r1.Owner(key) {
			t.Fatalf("owner of %q unstable", key)
		}
		if o != r2.Owner(key) {
			t.Fatalf("owner of %q depends on membership order: %q vs %q", key, o, r2.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := threeNodeRing()
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Owner(fmt.Sprintf("seg:0:%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for n, c := range counts {
		if c < 50 {
			t.Errorf("node %s owns only %d/300 keys — distribution badly skewed: %v", n, c, counts)
		}
	}
}

// TestRingMinimalMovement: HRW's defining property — when a node dies,
// only its keys move; every key a survivor owned stays put.
func TestRingMinimalMovement(t *testing.T) {
	r := threeNodeRing()
	before := map[string]string{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("codes:%d", i)
		before[key] = r.Owner(key)
	}
	dead := "http://b:1"
	r.MarkDead(dead)
	moved := 0
	for key, was := range before {
		now := r.Owner(key)
		if now == dead {
			t.Fatalf("key %q still owned by dead node", key)
		}
		if was != dead && now != was {
			t.Fatalf("key %q moved from surviving node %q to %q", key, was, now)
		}
		if was == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned no keys — test proves nothing")
	}
}

func TestRingCooldownExpiry(t *testing.T) {
	r := NewRing(5*time.Second, "a", "b")
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	if !r.MarkDead("a") {
		t.Fatal("first MarkDead did not report a new death")
	}
	if r.MarkDead("a") {
		t.Fatal("repeated MarkDead counted as a second death")
	}
	if r.Alive("a") {
		t.Fatal("suspected node reported alive")
	}
	if got := r.Live(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Live = %v, want [b]", got)
	}

	// Past the cooldown the node is retried automatically.
	now = now.Add(6 * time.Second)
	if !r.Alive("a") {
		t.Fatal("cooldown expired but node still suspected")
	}
	// A successful fetch clears suspicion early.
	r.MarkDead("a")
	r.MarkAlive("a")
	if !r.Alive("a") {
		t.Fatal("MarkAlive did not clear suspicion")
	}
}

// TestRingAllDeadFallback: with every member suspected, Owner still
// answers (from the full membership) so the caller can fail its peer
// fetch and fall back locally rather than NPE on an empty ring.
func TestRingAllDeadFallback(t *testing.T) {
	r := NewRing(time.Hour, "a", "b")
	r.MarkDead("a")
	r.MarkDead("b")
	if got := r.Owner("seg:0:0"); got != "a" && got != "b" {
		t.Fatalf("Owner with all nodes dead = %q", got)
	}
}

// --- Node tests ---------------------------------------------------------

func originConfig() httpstream.ServerConfig {
	// Each node gets its own generator with the same seed: the content is
	// procedural and deterministic, so every node can build byte-identical
	// payloads — the property the dead-owner local fallback relies on.
	return httpstream.ServerConfig{
		W: 96, H: 64, ChunkSeconds: 0.5, Chunks: 4,
		Rates:  []int{200, 600},
		Source: video.NewGenerator(video.Categories()[2], 7),
	}
}

func fastPeerRetry() httpstream.RetryPolicy {
	return httpstream.RetryPolicy{
		MaxAttempts:    2,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	}
}

// testCluster starts n nodes on real loopback listeners and returns
// them with their base URLs and a kill function per index.
func testCluster(t *testing.T, n int) ([]*Node, []string, func(i int)) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*Node, n)
	servers := make([]*http.Server, n)
	for i := range nodes {
		node, err := NewNode(Config{
			Self:         urls[i],
			Peers:        urls,
			Origin:       originConfig(),
			PeerRetry:    fastPeerRetry(),
			DeadCooldown: time.Hour, // a killed node stays dead for the test
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		servers[i] = &http.Server{Handler: node}
		go servers[i].Serve(lns[i]) //nolint:errcheck // returns on Close
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	kill := func(i int) {
		if err := servers[i].Close(); err != nil {
			t.Fatalf("kill node %d: %v", i, err)
		}
	}
	return nodes, urls, kill
}

func clientPolicy(seed int64) httpstream.RetryPolicy {
	return httpstream.RetryPolicy{
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		Seed:           seed,
	}
}

// TestNodesAgreeOnOwnership: every node computes the same owner for
// every payload key, and a request for a remotely-owned key comes back
// byte-identical to the owner's local payload.
func TestNodesAgreeOnOwnership(t *testing.T) {
	nodes, urls, _ := testCluster(t, 3)
	cfg := originConfig()
	for rate := 0; rate < len(cfg.Rates); rate++ {
		for n := 0; n < cfg.Chunks; n++ {
			key := fmt.Sprintf("seg:%d:%d", rate, n)
			want := nodes[0].Ring().Owner(key)
			for i, node := range nodes[1:] {
				if got := node.Ring().Owner(key); got != want {
					t.Fatalf("node %d owner(%s)=%q, node 0 says %q", i+1, key, got, want)
				}
			}
		}
	}
	// Fetch the same segment through a node that does not own it and
	// through the owner: the bytes must match.
	key := "seg:1:2"
	owner := nodes[0].Ring().Owner(key)
	var other string
	for _, u := range urls {
		if u != owner {
			other = u
			break
		}
	}
	fromOwner := httpstream.NewRawClient(owner, nil, httpstream.WithRetryPolicy(clientPolicy(1)))
	fromOther := httpstream.NewRawClient(other, nil, httpstream.WithRetryPolicy(clientPolicy(2)))
	a, err := fromOwner.Fetch("/segment?rate=1&n=2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromOther.Fetch("/segment?rate=1&n=2")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("proxied payload differs from owner's: %d vs %d bytes", len(b), len(a))
	}
	// The non-owner proxied at least one request and cached the payload
	// within budget.
	var agg Stats
	for _, n := range nodes {
		agg.Add(n.Stats())
	}
	if agg.PeerFetches == 0 {
		t.Fatal("no peer fetch recorded for a remotely-owned key")
	}
	for i, n := range nodes {
		if st := n.PeerCacheStats(); st.BytesLive > st.Budget {
			t.Fatalf("node %d peer cache over budget: %d > %d", i, st.BytesLive, st.Budget)
		}
	}
}

// TestPeerMarkedRequestServesLocally: a request already marked as a peer
// fetch terminates at the receiving node even when it does not own the
// key — the one-hop guarantee that makes forwarding loops impossible.
func TestPeerMarkedRequestServesLocally(t *testing.T) {
	nodes, urls, _ := testCluster(t, 2)
	// Find a key node 0 does NOT own.
	var path string
	for rate := 0; rate < 2 && path == ""; rate++ {
		for n := 0; n < 4; n++ {
			if nodes[0].Ring().Owner(fmt.Sprintf("seg:%d:%d", rate, n)) != urls[0] {
				path = fmt.Sprintf("/segment?rate=%d&n=%d", rate, n)
				break
			}
		}
	}
	if path == "" {
		t.Fatal("node 0 owns every key — test needs a remote one")
	}
	before := nodes[0].Stats().PeerFetches
	req, err := http.NewRequest("GET", urls[0]+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(peerHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-marked request: status %d", resp.StatusCode)
	}
	if got := nodes[0].Stats().PeerFetches; got != before {
		t.Fatalf("peer-marked request was re-proxied (%d new peer fetches)", got-before)
	}
}

// TestClusterSurvivesNodeKill is the acceptance test: several clients
// stream from a 3-node cluster, one node is killed mid-stream, and every
// client finishes every chunk — degraded is allowed, death is not. The
// survivors' rings must rehash the dead node's keys onto themselves.
func TestClusterSurvivesNodeKill(t *testing.T) {
	nodes, urls, kill := testCluster(t, 3)
	cfg := originConfig()

	// Pick the victim: any node, but record that it owns at least one key
	// pre-kill so the rehash is observable.
	const victim = 1
	victimKeys := 0
	for rate := 0; rate < len(cfg.Rates); rate++ {
		for n := 0; n < cfg.Chunks; n++ {
			if nodes[0].Ring().Owner(fmt.Sprintf("seg:%d:%d", rate, n)) == urls[victim] {
				victimKeys++
			}
		}
	}
	if victimKeys == 0 {
		t.Fatal("victim owns no segment keys — kill would be unobservable")
	}

	const numClients = 6
	type clientRun struct {
		fetched  int
		degraded int
		err      error
	}
	runs := make([]clientRun, numClients)
	clients := make([]*httpstream.Client, numClients)
	for i := range clients {
		primary := urls[i%len(urls)]
		var rest []string
		for _, u := range urls {
			if u != primary {
				rest = append(rest, u)
			}
		}
		cli, err := httpstream.NewFetchClient(primary, nil,
			httpstream.WithFailover(rest...),
			httpstream.WithRetryPolicy(clientPolicy(int64(i+1))))
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		clients[i] = cli
	}

	// Phase 1: everyone streams the first half.
	var barrier sync.WaitGroup
	var wg sync.WaitGroup
	barrier.Add(numClients)
	killed := make(chan struct{})
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rate := i % len(cfg.Rates)
			for n := 0; n < cfg.Chunks; n++ {
				if n == cfg.Chunks/2 {
					barrier.Done()
					<-killed // stream on only after the node is down
				}
				res, err := clients[i].FetchChunk(n, rate)
				if err != nil {
					runs[i].err = fmt.Errorf("chunk %d: %w", n, err)
					if n < cfg.Chunks/2 {
						barrier.Done()
					}
					return
				}
				runs[i].fetched++
				if res.Degraded {
					runs[i].degraded++
				}
			}
		}(i)
	}
	barrier.Wait()
	kill(victim)
	close(killed)
	wg.Wait()

	for i, r := range runs {
		if r.err != nil {
			t.Errorf("client %d died: %v", i, r.err)
		}
		if r.fetched != cfg.Chunks {
			t.Errorf("client %d finished %d/%d chunks", i, r.fetched, cfg.Chunks)
		}
	}

	// Force both survivors to notice the death (normal traffic almost
	// certainly already has, but the assertion must not be probabilistic):
	// request a victim-owned key through each survivor.
	var victimKey string
	for rate := 0; rate < len(cfg.Rates) && victimKey == ""; rate++ {
		for n := 0; n < cfg.Chunks; n++ {
			if nodes[0].Ring().Owner(fmt.Sprintf("seg:%d:%d", rate, n)) == urls[victim] {
				victimKey = fmt.Sprintf("/segment?rate=%d&n=%d", rate, n)
				break
			}
		}
	}
	for i, u := range urls {
		if i == victim {
			continue
		}
		if victimKey != "" {
			cli := httpstream.NewRawClient(u, nil, httpstream.WithRetryPolicy(clientPolicy(int64(100+i))))
			if _, err := cli.Fetch(victimKey); err != nil {
				t.Errorf("survivor %d failed to serve a victim-owned key: %v", i, err)
			}
		}
	}

	// The rehash: every survivor's ring now maps every key to a survivor.
	for i, node := range nodes {
		if i == victim {
			continue
		}
		if node.Ring().Alive(urls[victim]) {
			t.Errorf("survivor %d still believes the victim is alive", i)
		}
		for rate := 0; rate < len(cfg.Rates); rate++ {
			for n := 0; n < cfg.Chunks; n++ {
				key := fmt.Sprintf("seg:%d:%d", rate, n)
				if owner := node.Ring().Owner(key); owner == urls[victim] {
					t.Errorf("survivor %d still routes %s to the dead node", i, key)
				}
			}
		}
	}

	var agg Stats
	for i, n := range nodes {
		if i == victim {
			continue
		}
		agg.Add(n.Stats())
	}
	if agg.Rehashes == 0 {
		t.Error("no rehash recorded despite a killed node")
	}
	if agg.LocalFallbacks == 0 {
		t.Error("no local fallback recorded despite a killed owner")
	}
	if agg.LiveNodes != 2 {
		t.Errorf("pessimistic live-node view = %d, want 2", agg.LiveNodes)
	}
	for i, n := range nodes {
		if st := n.PeerCacheStats(); st.BytesLive > st.Budget {
			t.Errorf("node %d peer cache over budget: %d > %d", i, st.BytesLive, st.Budget)
		}
	}
}
