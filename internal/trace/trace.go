// Package trace models network traces: time series of throughput, packet
// loss rate and RTT sampled at a fixed interval. Because the paper's
// measured QUIC traces are not available, the package includes a
// Markov-modulated synthetic generator whose per-network-type parameters
// are calibrated to the aggregate statistics the paper reports in Table 2
// (counts, durations, mean throughput, loss rates) and to its qualitative
// observation that 5G traces fluctuate the most (§8.3, Fig. 13a).
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// NetworkType identifies the access-network family of a trace.
type NetworkType int

const (
	Net3G NetworkType = iota
	Net4G
	Net5G
	NetWiFi
	numNetworkTypes
)

// NetworkTypes returns all network types in presentation order.
func NetworkTypes() []NetworkType { return []NetworkType{Net3G, Net4G, Net5G, NetWiFi} }

func (n NetworkType) String() string {
	switch n {
	case Net3G:
		return "3G"
	case Net4G:
		return "4G"
	case Net5G:
		return "5G"
	case NetWiFi:
		return "WiFi"
	default:
		return fmt.Sprintf("NetworkType(%d)", int(n))
	}
}

// Sample is one measurement point.
type Sample struct {
	ThroughputBps float64 `json:"bps"`
	LossRate      float64 `json:"loss"`
	RTTSeconds    float64 `json:"rtt"`
}

// Trace is a uniformly sampled network time series.
type Trace struct {
	Name     string      `json:"name"`
	Net      NetworkType `json:"net"`
	Interval float64     `json:"interval"` // seconds between samples
	Samples  []Sample    `json:"samples"`
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.Samples)) * t.Interval }

// index maps time to a sample index, wrapping so that traces can be
// replayed cyclically for sessions longer than the capture.
func (t *Trace) index(at float64) int {
	if len(t.Samples) == 0 {
		return -1
	}
	i := int(at / t.Interval)
	i %= len(t.Samples)
	if i < 0 {
		i += len(t.Samples)
	}
	return i
}

// ThroughputAt returns the available bandwidth at time `at` (step
// interpolation, cyclic).
func (t *Trace) ThroughputAt(at float64) float64 {
	i := t.index(at)
	if i < 0 {
		return 0
	}
	return t.Samples[i].ThroughputBps
}

// LossAt returns the packet loss rate at time `at`.
func (t *Trace) LossAt(at float64) float64 {
	i := t.index(at)
	if i < 0 {
		return 0
	}
	return t.Samples[i].LossRate
}

// RTTAt returns the round-trip time at time `at` in seconds.
func (t *Trace) RTTAt(at float64) float64 {
	i := t.index(at)
	if i < 0 {
		return 0
	}
	return t.Samples[i].RTTSeconds
}

// Stats summarises a trace (or corpus).
type Stats struct {
	Count         int
	AvgDuration   float64 // seconds
	AvgThroughput float64 // bits per second
	AvgLossRate   float64
	ThroughputCV  float64 // coefficient of variation of throughput
	AvgRTT        float64
}

// Stat computes the statistics of a single trace.
func (t *Trace) Stat() Stats {
	s := Stats{Count: 1, AvgDuration: t.Duration()}
	if len(t.Samples) == 0 {
		return s
	}
	var sum, sumSq, loss, rtt float64
	for _, smp := range t.Samples {
		sum += smp.ThroughputBps
		sumSq += smp.ThroughputBps * smp.ThroughputBps
		loss += smp.LossRate
		rtt += smp.RTTSeconds
	}
	n := float64(len(t.Samples))
	mean := sum / n
	s.AvgThroughput = mean
	s.AvgLossRate = loss / n
	s.AvgRTT = rtt / n
	varr := sumSq/n - mean*mean
	if varr > 0 && mean > 0 {
		s.ThroughputCV = math.Sqrt(varr) / mean
	}
	return s
}

// Aggregate combines per-trace statistics into corpus statistics.
func Aggregate(traces []*Trace) Stats {
	var out Stats
	if len(traces) == 0 {
		return out
	}
	for _, t := range traces {
		st := t.Stat()
		out.AvgDuration += st.AvgDuration
		out.AvgThroughput += st.AvgThroughput
		out.AvgLossRate += st.AvgLossRate
		out.ThroughputCV += st.ThroughputCV
		out.AvgRTT += st.AvgRTT
	}
	n := float64(len(traces))
	out.Count = len(traces)
	out.AvgDuration /= n
	out.AvgThroughput /= n
	out.AvgLossRate /= n
	out.ThroughputCV /= n
	out.AvgRTT /= n
	return out
}

// Scale returns a copy of the trace with throughput multiplied by factor.
func (t *Trace) Scale(factor float64) *Trace {
	out := &Trace{Name: t.Name, Net: t.Net, Interval: t.Interval, Samples: make([]Sample, len(t.Samples))}
	copy(out.Samples, t.Samples)
	for i := range out.Samples {
		out.Samples[i].ThroughputBps *= factor
	}
	return out
}

// Downscale rescales the trace so its mean throughput equals targetMeanBps
// and clamps samples into [minBps, maxBps] — the §8.3 procedure that maps
// measured traces into the range spanned by the bitrate ladder. Relative
// fluctuation is preserved up to clamping.
func (t *Trace) Downscale(targetMeanBps, minBps, maxBps float64) *Trace {
	st := t.Stat()
	factor := 1.0
	if st.AvgThroughput > 0 {
		factor = targetMeanBps / st.AvgThroughput
	}
	out := t.Scale(factor)
	for i := range out.Samples {
		v := out.Samples[i].ThroughputBps
		if v < minBps {
			v = minBps
		} else if v > maxBps {
			v = maxBps
		}
		out.Samples[i].ThroughputBps = v
	}
	return out
}

// MarshalJSON / UnmarshalJSON use the natural struct encoding; these
// wrappers exist so the format is part of the package contract.
func (t *Trace) MarshalJSON() ([]byte, error) {
	type alias Trace
	return json.Marshal((*alias)(t))
}

func (t *Trace) UnmarshalJSON(b []byte) error {
	type alias Trace
	return json.Unmarshal(b, (*alias)(t))
}

// profile holds the synthetic-generator parameters of one network type.
type profile struct {
	meanMbps   float64 // Table 2 average throughput
	sigma      float64 // log-domain AR(1) innovation (fluctuation)
	phi        float64 // AR(1) mean reversion
	lossMean   float64 // Table 2 average loss rate
	lossBurstP float64 // probability of entering a loss burst per sample
	lossBurstQ float64 // probability of leaving a burst per sample
	burstLoss  float64 // loss rate inside a burst
	rtt        float64 // seconds
	durMean    float64 // Table 2 average duration (seconds)
	count      int     // Table 2 trace count
}

// profiles is calibrated to Table 2: 3G 45×322s 7.5Mbps 0.9%; 4G 62×317s
// 21.6Mbps 1.3%; 5G 53×302s 36.4Mbps 1.6%; WiFi 68×309s 82.3Mbps 0.5%.
// 5G gets the largest sigma (largest fluctuation, §8.3).
var profiles = [numNetworkTypes]profile{
	Net3G:   {meanMbps: 7.5, sigma: 0.18, phi: 0.12, lossMean: 0.009, lossBurstP: 0.010, lossBurstQ: 0.35, burstLoss: 0.08, rtt: 0.120, durMean: 322, count: 45},
	Net4G:   {meanMbps: 21.6, sigma: 0.28, phi: 0.10, lossMean: 0.013, lossBurstP: 0.014, lossBurstQ: 0.30, burstLoss: 0.10, rtt: 0.060, durMean: 317, count: 62},
	Net5G:   {meanMbps: 36.4, sigma: 0.62, phi: 0.06, lossMean: 0.016, lossBurstP: 0.07, lossBurstQ: 0.25, burstLoss: 0.12, rtt: 0.040, durMean: 302, count: 53},
	NetWiFi: {meanMbps: 82.3, sigma: 0.24, phi: 0.10, lossMean: 0.005, lossBurstP: 0.008, lossBurstQ: 0.40, burstLoss: 0.06, rtt: 0.020, durMean: 309, count: 68},
}

// Profile exposes the Table 2 calibration targets for a network type.
func Profile(n NetworkType) (meanMbps, lossRate, durSeconds float64, count int) {
	p := profiles[n]
	return p.meanMbps, p.lossMean, p.durMean, p.count
}

// Generate synthesises one trace of the given type and duration (seconds)
// at 1 Hz sampling. The process is AR(1) in the log-throughput domain with
// a two-state Gilbert loss modulator; it is deterministic in seed.
func Generate(n NetworkType, durSeconds float64, seed int64) *Trace {
	p := profiles[n]
	rng := rand.New(rand.NewSource(seed))
	samples := int(durSeconds)
	if samples < 1 {
		samples = 1
	}
	t := &Trace{
		Name:     fmt.Sprintf("%s-%d", n, seed),
		Net:      n,
		Interval: 1,
		Samples:  make([]Sample, samples),
	}
	logMean := math.Log(p.meanMbps * 1e6)
	x := logMean + rng.NormFloat64()*p.sigma
	inBurst := false
	inFade := false
	for i := 0; i < samples; i++ {
		x += p.phi*(logMean-x) + rng.NormFloat64()*p.sigma
		// Deep multi-second fades (handoffs, blockage) — more common and
		// deeper on the networks the paper reports as most variable.
		if inFade {
			if rng.Float64() < 0.4 {
				inFade = false
			}
		} else if rng.Float64() < p.lossBurstP {
			inFade = true
		}
		bw := math.Exp(x)
		if inFade {
			bw *= 0.25
		}
		if inBurst {
			if rng.Float64() < p.lossBurstQ {
				inBurst = false
			}
		} else if rng.Float64() < p.lossBurstP {
			inBurst = true
		}
		loss := p.lossMean * (0.4 + 0.9*rng.Float64())
		if inBurst {
			loss = p.burstLoss * (0.6 + 0.8*rng.Float64())
		}
		rtt := p.rtt * (0.85 + 0.3*rng.Float64())
		if inBurst {
			rtt *= 2 // loss episodes come with latency inflation
		}
		t.Samples[i] = Sample{ThroughputBps: bw, LossRate: loss, RTTSeconds: rtt}
	}
	// Normalise the means to the profile targets so Table 2 reproduces
	// tightly even for short traces.
	st := t.Stat()
	if st.AvgThroughput > 0 {
		f := p.meanMbps * 1e6 / st.AvgThroughput
		for i := range t.Samples {
			t.Samples[i].ThroughputBps *= f
		}
	}
	if st.AvgLossRate > 0 {
		f := p.lossMean / st.AvgLossRate
		for i := range t.Samples {
			t.Samples[i].LossRate *= f
		}
	}
	return t
}

// GenerateCorpus produces the full Table 2 corpus: the paper's per-type
// trace counts with durations jittered around the per-type mean.
func GenerateCorpus(seed int64) map[NetworkType][]*Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[NetworkType][]*Trace, numNetworkTypes)
	for _, n := range NetworkTypes() {
		p := profiles[n]
		traces := make([]*Trace, p.count)
		for i := range traces {
			dur := p.durMean * (0.85 + 0.3*rng.Float64())
			traces[i] = Generate(n, dur, rng.Int63())
		}
		out[n] = traces
	}
	return out
}
