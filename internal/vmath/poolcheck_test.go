//go:build poolcheck

package vmath

import "testing"

// These tests only exist in the -tags poolcheck debug build, where the pool
// tracks freed planes and turns ownership violations into panics instead of
// silent frame corruption.

func TestPoolCheckDoublePutPanics(t *testing.T) {
	if !PoolCheckEnabled {
		t.Fatal("poolcheck build without PoolCheckEnabled")
	}
	var p Pool
	pl := p.Get(16, 16)
	p.Put(pl)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same plane did not panic")
		}
	}()
	p.Put(pl)
}

func TestPoolCheckPoisonsFreedPlane(t *testing.T) {
	var p Pool
	pl := p.Get(16, 16)
	pix := pl.Pix
	p.Put(pl)
	// The freed plane is truncated so stale At/Set panic instead of
	// corrupting whoever gets the buffer next.
	if pl.W != 0 || pl.H != 0 || len(pl.Pix) != 0 {
		t.Fatalf("freed plane still has geometry %dx%d len %d", pl.W, pl.H, len(pl.Pix))
	}
	// The retained pix slice is NaN-poisoned: reads through a stale alias
	// produce NaN pixels, which are loud in any downstream metric.
	if pix[0] == pix[0] {
		t.Fatalf("freed pixels not NaN-poisoned: %v", pix[0])
	}
	// A fresh Get of the same bucket must hand the plane back clean.
	q := p.Get(16, 16)
	q.Fill(1)
	if q.Pix[0] != 1 {
		t.Fatalf("reused plane unusable after poisoning")
	}
	p.Put(q)
}

func TestBytePoolCheckDoublePutPanics(t *testing.T) {
	var p BytePool
	pl := p.Get(16, 16)
	p.Put(pl)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same byte plane did not panic")
		}
	}()
	p.Put(pl)
}

func TestBytePoolCheckPoisonsFreedPlane(t *testing.T) {
	var p BytePool
	pl := p.Get(16, 16)
	pix := pl.Pix
	p.Put(pl)
	if pl.W != 0 || pl.H != 0 || len(pl.Pix) != 0 {
		t.Fatalf("freed byte plane still has geometry %dx%d len %d", pl.W, pl.H, len(pl.Pix))
	}
	// Freed shadows are 0xAA-poisoned so a stale alias produces wildly
	// wrong SADs instead of plausible ones.
	if pix[0] != 0xAA {
		t.Fatalf("freed bytes not poisoned: %#x", pix[0])
	}
	q := p.Get(16, 16)
	if q.W != 16 || len(q.Pix) != 256 {
		t.Fatal("reused byte plane unusable after poisoning")
	}
	p.Put(q)
}
