package experiments

import (
	"fmt"
	"math"

	"nerve/internal/abr"

	"nerve/internal/sim"
	"nerve/internal/trace"
)

// tracesFor generates the per-network evaluation traces (downscaled per
// §8.3 so the mean falls in the 1–2 Mbps range).
func tracesFor(opts Options, nt trace.NetworkType) []*trace.Trace {
	n := 8
	if opts.Quick {
		n = 4
	}
	out := make([]*trace.Trace, n)
	for i := range out {
		tr := trace.Generate(nt, 240, opts.Seed+int64(i)*17+int64(nt)*1000)
		out[i] = tr.Downscale(1.5e6, 0.3e6, 5e6)
	}
	return out
}

// runSchemes evaluates each scheme over each network type and returns the
// mean QoE table plus the raw per-network means.
func runSchemes(opts Options, schemes []sim.Scheme, id, title string) (*Table, map[string]map[trace.NetworkType]float64) {
	t := &Table{ID: id, Title: title, Header: []string{"scheme", "3G", "4G", "5G", "WiFi"}}
	raw := make(map[string]map[trace.NetworkType]float64)
	chunks := chunksFor(opts)
	nets := trace.NetworkTypes()
	means := make([]float64, len(schemes)*len(nets))
	// Each (scheme, network) cell is an independent batch of sessions.
	// Schemes carry per-session ABR state, so each cell gets its own
	// scheme instance via the ABR's Reset inside sim.Run; cells of the
	// SAME scheme must not run concurrently — parallelise over networks
	// within a scheme instead.
	for si, sc := range schemes {
		sc := sc
		mustParallelFor(len(nets), func(ni int) {
			nt := nets[ni]
			traces := tracesFor(opts, nt)
			var q float64
			for i, tr := range traces {
				cfg := sim.Config{Trace: tr, Seed: opts.Seed + int64(i) + int64(nt)*99, Chunks: chunks}
				q += sim.Run(cfg, cloneScheme(sc)).QoE
			}
			means[si*len(nets)+ni] = q / float64(len(traces))
		})
	}
	for si, sc := range schemes {
		row := []string{sc.Name}
		raw[sc.Name] = make(map[trace.NetworkType]float64)
		for ni, nt := range nets {
			mean := means[si*len(nets)+ni]
			raw[sc.Name][nt] = mean
			row = append(row, fmt.Sprintf("%.3f", mean))
		}
		t.AddRow(row...)
	}
	return t, raw
}

// cloneScheme gives each parallel worker its own ABR instance (ABR
// algorithms carry per-session state).
func cloneScheme(sc sim.Scheme) sim.Scheme {
	set := sim.NewSchemeSet()
	var fresh sim.Scheme
	switch sc.Name {
	case "w/o RC":
		fresh = set.WithoutRecovery()
	case "w/o RC (reuse)":
		fresh = set.WithoutRecoveryReuse()
	case "RC alone":
		fresh = set.RecoveryAlone()
	case "our (RC)":
		fresh = set.RecoveryAware()
	case "w/o SR":
		fresh = set.WithoutSR()
	case "SR alone":
		fresh = set.SRAlone()
	case "NEMO":
		fresh = set.NEMO()
	case "our (SR)":
		fresh = set.SRAware()
	case "w/o SR & RC":
		fresh = set.Baseline()
	case "SR & RC alone":
		fresh = set.BothAlone()
	case "our":
		fresh = set.Full()
	default:
		return sc
	}
	fresh.UseFEC = sc.UseFEC
	fresh.Planner = sc.Planner
	return fresh
}

// Fig12 evaluates the recovery-only schemes across network types.
func Fig12(opts Options) *Table {
	set := sim.NewSchemeSet()
	t, _ := runSchemes(opts, []sim.Scheme{
		set.WithoutRecovery(), set.RecoveryAlone(), set.RecoveryAware(),
	}, "fig12", "QoE of recovery-only schemes across networks")
	t.Notes = append(t.Notes, "shape: our > RC alone > w/o RC; 5G shows the largest improvement")
	return t
}

// Table3 reports the QoE of recovered frames only, per scheme and network.
func Table3(opts Options) *Table {
	set := sim.NewSchemeSet()
	schemes := []sim.Scheme{set.WithoutRecovery(), set.RecoveryAlone(), set.RecoveryAware()}
	t := &Table{
		ID:     "tab3",
		Title:  "QoE of recovered frames only",
		Header: []string{"scheme", "3G", "4G", "5G", "WiFi"},
		Notes:  []string{"shape: w/o RC strongly negative (stall-dominated); RC alone near zero; our highest"},
	}
	chunks := chunksFor(opts)
	for _, sc := range schemes {
		row := []string{sc.Name}
		for _, nt := range trace.NetworkTypes() {
			var q float64
			n := 0
			for i, tr := range tracesFor(opts, nt) {
				res := sim.Run(sim.Config{Trace: tr, Seed: opts.Seed + int64(i) + int64(nt)*99, Chunks: chunks}, sc)
				if !math.IsNaN(res.RecoveredFrameQoE) {
					q += res.RecoveredFrameQoE
					n++
				}
			}
			if n == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", q/float64(n)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig13 reports (a) the downscaled throughput statistics per network and
// (b) the percentage of frames requiring recovery under the full system.
func Fig13(opts Options) (*Table, *Table) {
	a := &Table{
		ID:     "fig13a",
		Title:  "Downscaled trace statistics",
		Header: []string{"network", "mean Mbps", "CV"},
		Notes:  []string{"shape: 5G has the largest fluctuation (CV)"},
	}
	b := &Table{
		ID:     "fig13b",
		Title:  "Percentage of recovered frames",
		Header: []string{"network", "recovered %"},
		Notes: []string{
			"shape: 5G highest; 4G/WiFi around 10% in the paper",
			"measured at a fixed mid-ladder rate to expose network-induced recovery need without ABR feedback",
		},
	}
	chunks := chunksFor(opts)
	for _, nt := range trace.NetworkTypes() {
		traces := tracesFor(opts, nt)
		agg := trace.Aggregate(traces)
		a.AddRow(nt.String(), fmt.Sprintf("%.2f", agg.AvgThroughput/1e6), fmt.Sprintf("%.2f", agg.ThroughputCV))
		var frac float64
		for i, tr := range traces {
			scheme := sim.Scheme{Name: "fixed", Recovery: true, SR: true, ABR: &abr.FixedRate{Index: 2}}
			res := sim.Run(sim.Config{Trace: tr, Seed: opts.Seed + int64(i) + int64(nt)*99, Chunks: chunks}, scheme)
			frac += res.RecoveredFrac
		}
		b.AddRow(nt.String(), fmt.Sprintf("%.1f", 100*frac/float64(len(traces))))
	}
	return a, b
}

// Fig14 produces the 5G time series: throughput and per-chunk QoE for the
// three recovery schemes over one trace.
func Fig14(opts Options) *Series {
	tr := trace.Generate(trace.Net5G, 240, opts.Seed+5).Downscale(1.5e6, 0.3e6, 5e6)
	set := sim.NewSchemeSet()
	schemes := []sim.Scheme{set.WithoutRecovery(), set.RecoveryAlone(), set.RecoveryAware()}
	chunks := chunksFor(opts)

	s := &Series{
		ID: "fig14", Title: "5G time series: throughput and per-chunk QoE",
		XLabel:  "t(s)",
		Columns: []string{"tput(Mbps)"},
		Notes:   []string{"shape: w/o RC unstable; RC alone dips; our stays highest"},
	}
	var results []*sim.Result
	for _, sc := range schemes {
		s.Columns = append(s.Columns, sc.Name)
		results = append(results, sim.Run(sim.Config{Trace: tr, Seed: opts.Seed, Chunks: chunks}, sc))
	}
	ref := results[0].Series
	tput := make([]float64, len(ref))
	for j, p := range ref {
		s.X = append(s.X, p.Time)
		tput[j] = p.ThroughputBps / 1e6
	}
	s.Y = append(s.Y, tput)
	for _, res := range results {
		col := make([]float64, len(ref))
		for j := range ref {
			if j < len(res.Series) {
				col[j] = res.Series[j].QoE
			}
		}
		s.Y = append(s.Y, col)
	}
	return s
}

// Fig15 evaluates recovery under lossy networks without FEC: the baseline
// reuses the previous frame for late/lost frames, exactly as §8.3
// describes.
func Fig15(opts Options) *Table {
	set := sim.NewSchemeSet()
	schemes := []sim.Scheme{set.WithoutRecoveryReuse(), set.RecoveryAlone(), set.RecoveryAware()}
	chunks := chunksFor(opts)
	t := &Table{
		ID:     "fig15",
		Title:  "QoE under lossy networks without FEC",
		Header: []string{"scheme", "3G", "4G", "5G", "WiFi"},
		Notes:  []string{"loss scaled 6×; shape: recovery's relative gain grows vs the clean setting (paper: +59–110%)"},
	}
	for _, sc := range schemes {
		row := []string{sc.Name}
		for _, nt := range trace.NetworkTypes() {
			var q float64
			traces := tracesFor(opts, nt)
			for i, tr := range traces {
				cfg := sim.Config{Trace: tr, Seed: opts.Seed + int64(i) + int64(nt)*99, Chunks: chunks, LossScale: 6}
				q += sim.Run(cfg, sc).QoE
			}
			row = append(row, fmt.Sprintf("%.3f", q/float64(len(traces))))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig17 evaluates the SR-only schemes (w/o SR, SR alone, NEMO, ours).
func Fig17(opts Options) *Table {
	set := sim.NewSchemeSet()
	t, _ := runSchemes(opts, []sim.Scheme{
		set.WithoutSR(), set.SRAlone(), set.NEMO(), set.SRAware(),
	}, "fig17", "QoE of SR-only schemes across networks")
	t.Notes = append(t.Notes, "shape: our > SR alone > w/o SR; our > NEMO")
	return t
}

// Fig18 evaluates the combined system (w/o both, both alone, NEMO, full).
func Fig18(opts Options) *Table {
	set := sim.NewSchemeSet()
	t, _ := runSchemes(opts, []sim.Scheme{
		set.Baseline(), set.BothAlone(), set.NEMO(), set.Full(),
	}, "fig18", "QoE of the combined recovery+SR system across networks")
	t.Notes = append(t.Notes, "shape: full system best everywhere (paper: +23.7–37.1% over w/o both)")
	return t
}

// Table2 reports the synthetic trace corpus statistics against the paper's
// Table 2 calibration targets.
func Table2(opts Options) *Table {
	corpus := trace.GenerateCorpus(opts.Seed)
	t := &Table{
		ID:     "tab2",
		Title:  "Network trace corpus",
		Header: []string{"", "3G", "4G", "5G", "WiFi"},
		Notes:  []string{"calibration targets from the paper's Table 2"},
	}
	var amount, dur, tput, loss []string
	for _, nt := range trace.NetworkTypes() {
		agg := trace.Aggregate(corpus[nt])
		amount = append(amount, fmt.Sprintf("%d", agg.Count))
		dur = append(dur, fmt.Sprintf("%.0f", agg.AvgDuration))
		tput = append(tput, fmt.Sprintf("%.1f", agg.AvgThroughput/1e6))
		loss = append(loss, fmt.Sprintf("%.1f", agg.AvgLossRate*100))
	}
	t.AddRow(append([]string{"Amount"}, amount...)...)
	t.AddRow(append([]string{"Avg. Duration (s)"}, dur...)...)
	t.AddRow(append([]string{"Avg. Throughput (Mbps)"}, tput...)...)
	t.AddRow(append([]string{"Avg. Packet loss rate (%)"}, loss...)...)
	return t
}
