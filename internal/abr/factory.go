package abr

// NewByName constructs an algorithm from its wire name — the Name() string
// each controller reports, which is also what nervesim's -abr flag and the
// experiment matrix accept. Returns nil for an unknown name. The
// enhancement-aware controller is absent here because it needs a
// calibrated EnhancementModel; construct it directly.
func NewByName(name string) Algorithm {
	switch name {
	case "rate-based", "rate":
		return NewRateBased()
	case "buffer-based", "buffer":
		return NewBufferBased()
	case "bola":
		return NewBOLA()
	case "robust-mpc", "mpc":
		return NewMPC()
	case "pensieve-ppo", "pensieve":
		return NewPensieve(1)
	case "bba2":
		return NewBBA2()
	case "bba2-loss":
		return NewBBA2Loss()
	case "bba2-rtt":
		return NewBBA2RTT()
	}
	return nil
}

// Names lists the wire names NewByName accepts, canonical form first.
func Names() []string {
	return []string{
		"rate-based", "buffer-based", "bola", "robust-mpc", "pensieve-ppo",
		"bba2", "bba2-loss", "bba2-rtt",
	}
}
