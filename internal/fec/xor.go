package fec

import "fmt"

// XORInterleaved is the lightweight LDPC-style alternative the paper
// mentions: data shards are split into g interleaved groups and each group
// gets one XOR parity shard. It recovers at most one loss per group but
// encodes/decodes with plain XOR.
type XORInterleaved struct {
	k, groups int
}

// NewXORInterleaved builds a code over k data shards with the given number
// of parity groups (1 ≤ groups ≤ k).
func NewXORInterleaved(k, groups int) (*XORInterleaved, error) {
	if k <= 0 || groups <= 0 || groups > k {
		return nil, fmt.Errorf("fec: invalid XOR parameters k=%d groups=%d", k, groups)
	}
	return &XORInterleaved{k: k, groups: groups}, nil
}

// K returns the number of data shards; M the number of parity shards.
func (x *XORInterleaved) K() int { return x.k }
func (x *XORInterleaved) M() int { return x.groups }

// Encode appends one XOR parity shard per group. Shard i belongs to group
// i mod groups.
func (x *XORInterleaved) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != x.k {
		return nil, fmt.Errorf("fec: Encode got %d shards, want %d", len(data), x.k)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("fec: shard %d length %d != %d", i, len(d), size)
		}
	}
	out := make([][]byte, x.k+x.groups)
	copy(out, data)
	for g := 0; g < x.groups; g++ {
		p := make([]byte, size)
		for i := g; i < x.k; i += x.groups {
			for j := range p {
				p[j] ^= data[i][j]
			}
		}
		out[x.k+g] = p
	}
	return out, nil
}

// Reconstruct repairs missing data shards in place where possible: a group
// with exactly one missing member (data or parity counted together) can be
// repaired. It returns an error if any data shard remains missing.
func (x *XORInterleaved) Reconstruct(shards [][]byte) error {
	if len(shards) != x.k+x.groups {
		return fmt.Errorf("fec: Reconstruct got %d shards, want %d", len(shards), x.k+x.groups)
	}
	size := -1
	for _, s := range shards {
		if s != nil {
			size = len(s)
			break
		}
	}
	if size < 0 {
		return fmt.Errorf("fec: all shards missing")
	}
	unrecovered := 0
	for g := 0; g < x.groups; g++ {
		missing := -1
		nMissing := 0
		if shards[x.k+g] == nil {
			nMissing++
		}
		for i := g; i < x.k; i += x.groups {
			if shards[i] == nil {
				nMissing++
				missing = i
			}
		}
		switch {
		case nMissing == 0:
			continue
		case nMissing == 1 && missing >= 0:
			rec := make([]byte, size)
			copy(rec, shards[x.k+g])
			for i := g; i < x.k; i += x.groups {
				if i == missing {
					continue
				}
				for j := range rec {
					rec[j] ^= shards[i][j]
				}
			}
			shards[missing] = rec
		case nMissing == 1:
			// Only the parity shard is missing; data is intact.
			continue
		default:
			// Count data shards that stay missing.
			for i := g; i < x.k; i += x.groups {
				if shards[i] == nil {
					unrecovered++
				}
			}
		}
	}
	if unrecovered > 0 {
		return fmt.Errorf("fec: %d data shards unrecoverable", unrecovered)
	}
	return nil
}
