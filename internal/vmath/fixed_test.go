package vmath

import (
	"math/rand"
	"testing"

	"nerve/internal/par"
)

// fixedTestPlanes builds the oracle sweep corpus: random noise,
// checkerboards at two frequencies, impulses, flat extremes and gradients
// — the corner cases where rounding and lane packing go wrong.
func fixedTestPlanes(w, h int, seed int64) []*BytePlane {
	rng := rand.New(rand.NewSource(seed))
	var out []*BytePlane
	random := NewBytePlane(w, h)
	for i := range random.Pix {
		random.Pix[i] = uint8(rng.Intn(256))
	}
	out = append(out, random)
	for _, period := range []int{1, 4} {
		cb := NewBytePlane(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (x/period+y/period)%2 == 0 {
					cb.Pix[y*w+x] = 255
				}
			}
		}
		out = append(out, cb)
	}
	imp := NewBytePlane(w, h)
	imp.Pix[(h/2)*w+w/2] = 255
	imp.Pix[0] = 255
	imp.Pix[len(imp.Pix)-1] = 255
	out = append(out, imp)
	for _, v := range []uint8{0, 255, 128} {
		flat := NewBytePlane(w, h)
		for i := range flat.Pix {
			flat.Pix[i] = v
		}
		out = append(out, flat)
	}
	grad := NewBytePlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			grad.Pix[y*w+x] = uint8((x*255/max(w-1, 1) + y) % 256)
		}
	}
	out = append(out, grad)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// toFloat converts a byte plane to its float shadow.
func toFloat(p *BytePlane) *Plane {
	f := NewPlane(p.W, p.H)
	for i, v := range p.Pix {
		f.Pix[i] = float32(v)
	}
	return f
}

// maxAbsDiffBytes returns the largest |a−b| over the two byte planes.
func maxAbsDiffBytes(t *testing.T, a *BytePlane, b *BytePlane) int {
	t.Helper()
	if a.W != b.W || a.H != b.H {
		t.Fatalf("size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var worst int
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

var resizeGeometries = []struct{ sw, sh, dw, dh int }{
	{64, 36, 128, 72},    // exact 2× up
	{64, 36, 160, 90},    // 2.5× up
	{160, 90, 64, 36},    // downscale
	{61, 37, 113, 71},    // odd primes both ways
	{113, 71, 61, 37},    //
	{64, 36, 64, 36},     // identity geometry
	{960, 540, 480, 270}, // the recovery work-res path
}

// TestResizeNearestBytesBitExact: the byte nearest-neighbour kernel must be
// bit-exact with the float one — same index math, bytes round-trip
// untouched.
func TestResizeNearestBytesBitExact(t *testing.T) {
	for _, g := range resizeGeometries {
		for pi, src := range fixedTestPlanes(g.sw, g.sh, 1) {
			got := ResizeNearestBytesInto(NewBytePlane(g.dw, g.dh), src)
			ref := ResizeNearestInto(NewPlane(g.dw, g.dh), toFloat(src))
			refB := NewBytePlane(g.dw, g.dh).FromPlane(ref)
			if d := maxAbsDiffBytes(t, got, refB); d != 0 {
				t.Errorf("geometry %v plane %d: nearest bytes differs from float by %d", g, pi, d)
			}
		}
	}
}

// TestResizeBilinearBytesWithinOneLSB: the Q15 SWAR bilinear resize must
// stay within 1 LSB of the rounded float reference on every corpus plane
// and geometry.
func TestResizeBilinearBytesWithinOneLSB(t *testing.T) {
	for _, g := range resizeGeometries {
		for pi, src := range fixedTestPlanes(g.sw, g.sh, 2) {
			got := ResizeBilinearBytesInto(NewBytePlane(g.dw, g.dh), src)
			ref := ResizeBilinearInto(NewPlane(g.dw, g.dh), toFloat(src))
			refB := NewBytePlane(g.dw, g.dh).FromPlane(ref)
			if d := maxAbsDiffBytes(t, got, refB); d > 1 {
				t.Errorf("geometry %v plane %d: bilinear bytes off by %d LSB (want ≤1)", g, pi, d)
			}
		}
	}
}

// TestResizeBilinearBytesFlatExact: on a flat plane every lerp is exact, so
// the fixed-point path must reproduce the constant bit-exactly (the
// "bit-exact where the contract allows" half of the bound).
func TestResizeBilinearBytesFlatExact(t *testing.T) {
	src := NewBytePlane(50, 30)
	for i := range src.Pix {
		src.Pix[i] = 137
	}
	got := ResizeBilinearBytesInto(NewBytePlane(173, 99), src)
	for i, v := range got.Pix {
		if v != 137 {
			t.Fatalf("pixel %d: flat resize produced %d, want 137", i, v)
		}
	}
}

// TestFixedTapsSumPreserving: FixedTaps must make a normalised kernel sum
// to exactly 1<<shift so DC gain is exact.
func TestFixedTapsSumPreserving(t *testing.T) {
	for _, sigma := range []float64{0.6, 1.0, 1.8} {
		taps := GaussianKernel1D(sigma)
		for _, shift := range []uint{8, 12, 14} {
			q := FixedTaps(taps, shift)
			var sum int64
			for _, v := range q {
				sum += int64(v)
			}
			if sum != 1<<shift {
				t.Errorf("sigma %v shift %d: tap sum %d != %d", sigma, shift, sum, 1<<shift)
			}
		}
	}
}

// TestConvolveSeparableBytesWithinOneLSB sweeps Gaussian kernels over the
// corpus and checks the Q12 fixed path against the float separable
// convolution (clamped and rounded).
func TestConvolveSeparableBytesWithinOneLSB(t *testing.T) {
	const w, h = 73, 41
	for _, sigma := range []float64{0.6, 1.0, 1.8} {
		taps := GaussianKernel1D(sigma)
		q := FixedTaps(taps, 12)
		for pi, src := range fixedTestPlanes(w, h, 3) {
			got := ConvolveSeparableBytesInto(NewBytePlane(w, h), src, q, q, 12)
			ref := ConvolveSeparableInto(NewPlane(w, h), toFloat(src), taps, taps)
			refB := NewBytePlane(w, h).FromPlane(ref.Clamp255())
			if d := maxAbsDiffBytes(t, got, refB); d > 1 {
				t.Errorf("sigma %v plane %d: conv bytes off by %d LSB (want ≤1)", sigma, pi, d)
			}
		}
	}
}

// TestConvolveSeparableBytesFlatExact: with sum-preserving taps a flat
// plane must pass through bit-exactly.
func TestConvolveSeparableBytesFlatExact(t *testing.T) {
	const w, h = 40, 25
	src := NewBytePlane(w, h)
	for i := range src.Pix {
		src.Pix[i] = 201
	}
	q := FixedTaps(GaussianKernel1D(1.0), 12)
	got := ConvolveSeparableBytesInto(NewBytePlane(w, h), src, q, q, 12)
	for i, v := range got.Pix {
		if v != 201 {
			t.Fatalf("pixel %d: flat conv produced %d, want 201", i, v)
		}
	}
}

// TestConvolveSeparableBytesSignedTaps exercises the scalar vertical path
// (negative taps disable SWAR) with a difference-of-impulses kernel and
// checks it against the float reference.
func TestConvolveSeparableBytesSignedTaps(t *testing.T) {
	const w, h = 37, 29
	// A light sharpening kernel: centre 1.5, sides −0.25 (sum 1).
	ft := []float32{-0.25, 1.5, -0.25}
	q := FixedTaps(ft, 12)
	for pi, src := range fixedTestPlanes(w, h, 4) {
		got := ConvolveSeparableBytesInto(NewBytePlane(w, h), src, q, q, 12)
		ref := ConvolveSeparableInto(NewPlane(w, h), toFloat(src), ft, ft)
		refB := NewBytePlane(w, h).FromPlane(ref.Clamp255())
		if d := maxAbsDiffBytes(t, got, refB); d > 1 {
			t.Errorf("plane %d: signed-tap conv off by %d LSB (want ≤1)", pi, d)
		}
	}
}

// TestConvolveSeparableBytesAliasing: dst aliasing src must match the
// non-aliased result (the intermediate fully consumes src first).
func TestConvolveSeparableBytesAliasing(t *testing.T) {
	const w, h = 31, 22
	src := fixedTestPlanes(w, h, 5)[0]
	q := FixedTaps(GaussianKernel1D(1.0), 12)
	want := ConvolveSeparableBytesInto(NewBytePlane(w, h), src, q, q, 12)
	inPlace := NewBytePlane(w, h)
	copy(inPlace.Pix, src.Pix)
	ConvolveSeparableBytesInto(inPlace, inPlace, q, q, 12)
	if d := maxAbsDiffBytes(t, inPlace, want); d != 0 {
		t.Fatalf("aliased conv differs from non-aliased by %d", d)
	}
}

// TestSharpenBytesWithinOneLSB checks the integer binomial unsharp mask
// against the float composite (binomial blur + unsharp combine + clamp).
func TestSharpenBytesWithinOneLSB(t *testing.T) {
	const w, h = 67, 43
	binomial := []float32{0.25, 0.5, 0.25}
	for _, a256 := range []int32{32, 64, 96} {
		amount := float32(a256) / 256
		for pi, src := range fixedTestPlanes(w, h, 6) {
			got := SharpenBytesInto(NewBytePlane(w, h), src, a256)
			f := toFloat(src)
			blur := ConvolveSeparableInto(NewPlane(w, h), f, binomial, binomial)
			ref := NewPlane(w, h)
			for i := range ref.Pix {
				ref.Pix[i] = f.Pix[i] + amount*(f.Pix[i]-blur.Pix[i])
			}
			refB := NewBytePlane(w, h).FromPlane(ref.Clamp255())
			if d := maxAbsDiffBytes(t, got, refB); d > 1 {
				t.Errorf("a256=%d plane %d: sharpen off by %d LSB (want ≤1)", a256, pi, d)
			}
		}
	}
}

// TestSharpenBytesZeroAmountCopies: a256 ≤ 0 must copy src bit-exactly.
func TestSharpenBytesZeroAmountCopies(t *testing.T) {
	src := fixedTestPlanes(21, 17, 7)[0]
	got := SharpenBytesInto(NewBytePlane(21, 17), src, 0)
	if d := maxAbsDiffBytes(t, got, src); d != 0 {
		t.Fatalf("zero-amount sharpen modified pixels (max diff %d)", d)
	}
}

// TestSAD8MatchesScalar cross-checks the SWAR byte SAD against a scalar
// loop over random words.
func TestSAD8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		var xb, yb [8]byte
		for i := range xb {
			xb[i] = uint8(rng.Intn(256))
			yb[i] = uint8(rng.Intn(256))
		}
		var x, y uint64
		var want uint64
		for i := 0; i < 8; i++ {
			x |= uint64(xb[i]) << (8 * i)
			y |= uint64(yb[i]) << (8 * i)
			d := int(xb[i]) - int(yb[i])
			if d < 0 {
				d = -d
			}
			want += uint64(d)
		}
		if got := SAD8(x, y); got != want {
			t.Fatalf("trial %d: SAD8 = %d, want %d", trial, got, want)
		}
	}
}

// TestToPlaneRoundTrip: FromPlane∘ToPlane must be the identity on byte
// planes.
func TestToPlaneRoundTrip(t *testing.T) {
	src := fixedTestPlanes(19, 13, 9)[0]
	f := src.ToPlane(NewPlane(19, 13))
	back := NewBytePlane(19, 13).FromPlane(f)
	if d := maxAbsDiffBytes(t, back, src); d != 0 {
		t.Fatalf("round trip changed pixels (max diff %d)", d)
	}
}

// TestResizeBytesPoolSizeIndependent: the fixed kernels must stay
// bit-identical across pool sizes like every other kernel (ForRows bands
// are pool-size independent).
func TestResizeBytesPoolSizeIndependent(t *testing.T) {
	src := fixedTestPlanes(160, 90, 10)[0]
	run := func(workers int) (*BytePlane, *BytePlane) {
		defer par.SetWorkers(workers)()
		r := ResizeBilinearBytesInto(NewBytePlane(321, 181), src)
		q := FixedTaps(GaussianKernel1D(1.0), 12)
		c := ConvolveSeparableBytesInto(NewBytePlane(160, 90), src, q, q, 12)
		return r, c
	}
	r1, c1 := run(1)
	r4, c4 := run(4)
	if d := maxAbsDiffBytes(t, r1, r4); d != 0 {
		t.Errorf("resize differs across pool sizes by %d", d)
	}
	if d := maxAbsDiffBytes(t, c1, c4); d != 0 {
		t.Errorf("conv differs across pool sizes by %d", d)
	}
}

func BenchmarkResizeBilinearBytes1080p(b *testing.B) {
	src := NewBytePlane(960, 540)
	rng := rand.New(rand.NewSource(11))
	for i := range src.Pix {
		src.Pix[i] = uint8(rng.Intn(256))
	}
	dst := NewBytePlane(1920, 1080)
	b.SetBytes(int64(len(dst.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResizeBilinearBytesInto(dst, src)
	}
}

func BenchmarkSharpenBytes540p(b *testing.B) {
	src := NewBytePlane(960, 540)
	rng := rand.New(rand.NewSource(12))
	for i := range src.Pix {
		src.Pix[i] = uint8(rng.Intn(256))
	}
	dst := NewBytePlane(960, 540)
	b.SetBytes(int64(len(src.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SharpenBytesInto(dst, src, 64)
	}
}

func BenchmarkConvolveSeparableBytes540p(b *testing.B) {
	src := NewBytePlane(960, 540)
	rng := rand.New(rand.NewSource(13))
	for i := range src.Pix {
		src.Pix[i] = uint8(rng.Intn(256))
	}
	q := FixedTaps(GaussianKernel1D(1.0), 12)
	dst := NewBytePlane(960, 540)
	b.SetBytes(int64(len(src.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveSeparableBytesInto(dst, src, q, q, 12)
	}
}
