package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: nerve/internal/codec
BenchmarkMotionSearch      	     100	   1234567 ns/op	    2048 B/op	      12 allocs/op
BenchmarkMotionSearch-4    	     400	    456789 ns/op	    2100 B/op	      14 allocs/op
PASS
ok  	nerve/internal/codec	1.234s
pkg: nerve/internal/sr
BenchmarkUpscale-4         	      50	  22334455 ns/op
some harness chatter that is not a bench line
ok  	nerve/internal/sr	2.345s
`

func TestParse(t *testing.T) {
	res, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if res.GoOS != "linux" || res.GoArch != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", res.GoOS, res.GoArch)
	}
	if len(res.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(res.Benchmarks))
	}
	b := res.Benchmarks[0]
	if b.Name != "BenchmarkMotionSearch" || b.CPUs != 1 || b.Iterations != 100 ||
		b.NsPerOp != 1234567 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 ||
		b.Pkg != "nerve/internal/codec" {
		t.Fatalf("first bench parsed wrong: %+v", b)
	}
	if b := res.Benchmarks[1]; b.CPUs != 4 || b.Name != "BenchmarkMotionSearch" {
		t.Fatalf("-cpu suffix not split: %+v", b)
	}
	// No -benchmem on the sr run: alloc columns are marked absent, pkg
	// tracking follows the pkg: header.
	if b := res.Benchmarks[2]; b.BytesPerOp != -1 || b.AllocsPerOp != -1 ||
		b.Pkg != "nerve/internal/sr" || b.NsPerOp != 22334455 {
		t.Fatalf("sr bench parsed wrong: %+v", b)
	}
}

func bench(pkg, name string, cpus int, ns float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, CPUs: cpus, Iterations: 100,
		NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
}

func TestCompareGate(t *testing.T) {
	base := &output{Benchmarks: []Benchmark{
		bench("p", "BenchmarkFDCT8", 1, 100),
		bench("p", "BenchmarkSADMB", 1, 1000),
		bench("p", "BenchmarkHelper", 1, 50), // not gated by the regexp
	}}
	gate := regexp.MustCompile(`Benchmark(FDCT8|SADMB)$`)

	// Within budget: 20% slower on one, faster on the other.
	cur := &output{Benchmarks: []Benchmark{
		bench("p", "BenchmarkFDCT8", 1, 120),
		bench("p", "BenchmarkSADMB", 1, 900),
	}}
	if n, rep := compare(base, cur, gate, 0.25); n != 0 {
		t.Fatalf("within-budget run failed gate (%d):\n%s", n, rep)
	}

	// Over budget on one benchmark.
	cur.Benchmarks[0] = bench("p", "BenchmarkFDCT8", 1, 130)
	n, rep := compare(base, cur, gate, 0.25)
	if n != 1 || !strings.Contains(rep, "REGRESSED") {
		t.Fatalf("30%% regression not caught (%d):\n%s", n, rep)
	}

	// A gated benchmark vanishing from the run is a failure too.
	cur.Benchmarks = cur.Benchmarks[1:]
	if n, rep := compare(base, cur, gate, 0.5); n != 1 || !strings.Contains(rep, "MISSING") {
		t.Fatalf("missing benchmark not caught (%d):\n%s", n, rep)
	}

	// Ungated helper may vanish or regress freely; nil regexp gates all.
	if n, _ := compare(base, cur, nil, 0.5); n != 2 {
		t.Fatalf("nil regexp should gate every baseline entry, got %d failures", n)
	}
}

func TestCompareKeysOnPkgAndCPUs(t *testing.T) {
	base := &output{Benchmarks: []Benchmark{
		bench("a", "BenchmarkX", 1, 100),
		bench("b", "BenchmarkX", 1, 100),
		bench("a", "BenchmarkX", 4, 100),
	}}
	// Same names, but pkg b's entry regressed and the -cpu 4 series is gone.
	cur := &output{Benchmarks: []Benchmark{
		bench("a", "BenchmarkX", 1, 100),
		bench("b", "BenchmarkX", 1, 300),
	}}
	if n, rep := compare(base, cur, nil, 0.25); n != 2 {
		t.Fatalf("want 2 failures (pkg-b regression + missing cpu-4 series), got %d:\n%s", n, rep)
	}
}

func TestSpeedupGate(t *testing.T) {
	run := &output{Benchmarks: []Benchmark{
		bench("p", "BenchmarkFDCT8Int", 1, 200),
		bench("p", "BenchmarkFDCT8Int4x", 1, 520), // 4 blocks/op → 130 ns/block, 1.54×
	}}
	if ok, rep := speedup(run, "BenchmarkFDCT8Int4x", "BenchmarkFDCT8Int", 1.5, 4); !ok {
		t.Fatalf("1.54x run failed a 1.5x gate:\n%s", rep)
	}
	// 4×200/560 ≈ 1.43× — under the bar.
	run.Benchmarks[1] = bench("p", "BenchmarkFDCT8Int4x", 1, 560)
	if ok, rep := speedup(run, "BenchmarkFDCT8Int4x", "BenchmarkFDCT8Int", 1.5, 4); ok || !strings.Contains(rep, "SLOW") {
		t.Fatalf("1.43x run passed a 1.5x gate:\n%s", rep)
	}
	// Either side vanishing from the run must fail, not silently pass.
	if ok, rep := speedup(run, "BenchmarkGone", "BenchmarkFDCT8Int", 1.5, 4); ok || !strings.Contains(rep, "MISSING") {
		t.Fatalf("missing new benchmark passed the gate:\n%s", rep)
	}
	if ok, rep := speedup(run, "BenchmarkFDCT8Int4x", "BenchmarkGone", 1.5, 4); ok || !strings.Contains(rep, "MISSING") {
		t.Fatalf("missing reference benchmark passed the gate:\n%s", rep)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 10 nan-ish ns/op",
		"BenchmarkX 10 5 B/op", // no ns/op
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
