package recovery

import (
	"math"
	"testing"

	"nerve/internal/edgecode"
	"nerve/internal/metrics"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// chainOutputs runs an n-step hinted recovery chain and returns the
// recovered frames plus their mean PSNR against ground truth.
func chainOutputs(t *testing.T, fixed bool, steps int) ([]*vmath.Plane, float64) {
	t.Helper()
	g := video.NewGenerator(video.Categories()[2], 7)
	ext := edgecode.NewExtractor(0, 0)
	r := New(Config{OutW: tw, OutH: th, FixedPoint: fixed})
	prevPrev := g.Render(38, tw, th)
	prev := g.Render(39, tw, th)
	prevCode := ext.Extract(prev)
	var outs []*vmath.Plane
	var s metrics.Series
	for k := 0; k < steps; k++ {
		truth := g.Render(40+k, tw, th)
		curCode := ext.Extract(truth)
		out := r.Recover(Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: curCode})
		prevCode = curCode
		s.ObserveFrames(truth, out)
		outs = append(outs, out)
		prevPrev = prev
		prev = out
	}
	return outs, s.MeanPSNR()
}

// TestFixedPointHintedParity: the fixed tier must track the float tier
// through a multi-step recovery chain — same mean quality (within 0.5 dB)
// and small per-pixel drift (the tiers' kernels differ by ≤1 LSB per
// stage, but chained recoveries compound through flow decisions, so the
// bound is on image-level agreement, not bit-exactness).
func TestFixedPointHintedParity(t *testing.T) {
	const steps = 6
	floatOuts, floatPSNR := chainOutputs(t, false, steps)
	fixedOuts, fixedPSNR := chainOutputs(t, true, steps)
	t.Logf("PSNR vs truth: float=%.2f fixed=%.2f", floatPSNR, fixedPSNR)
	if math.Abs(floatPSNR-fixedPSNR) > 0.5 {
		t.Fatalf("tier quality diverges: float %.2f dB vs fixed %.2f dB", floatPSNR, fixedPSNR)
	}
	for k := range floatOuts {
		mae := vmath.MAE(floatOuts[k], fixedOuts[k])
		if mae > 3 {
			t.Fatalf("step %d: tiers drift apart, MAE %.2f > 3 grey levels", k, mae)
		}
	}
}

// TestFixedPointExtrapolatedRuns covers the no-code ablation under the
// fixed tier (byte flow + byte warp with no hint fusion).
func TestFixedPointExtrapolatedRuns(t *testing.T) {
	g := video.NewGenerator(video.Categories()[2], 8)
	r := New(Config{OutW: tw, OutH: th, FixedPoint: true})
	prevPrev := g.Render(10, tw, th)
	prev := g.Render(11, tw, th)
	truth := g.Render(12, tw, th)
	out := r.Recover(Input{Prev: prev, PrevPrev: prevPrev})
	if psnr := metrics.PSNR(truth, out); psnr < 15 {
		t.Fatalf("fixed extrapolated recovery PSNR %.2f dB, want ≥ 15", psnr)
	}
}

// TestFixedPointZeroPlaneAllocsWarm: a warmed fixed-tier Recoverer must run
// entirely on pooled planes (byte shadows included — BytePool misses count
// into PlaneAllocs too).
func TestFixedPointZeroPlaneAllocsWarm(t *testing.T) {
	if vmath.RaceEnabled {
		t.Skip("sync.Pool drops Puts under -race; pool determinism not observable")
	}
	g := video.NewGenerator(video.Categories()[2], 9)
	ext := edgecode.NewExtractor(0, 0)
	r := New(Config{OutW: tw, OutH: th, FixedPoint: true})
	prevPrev := g.Render(20, tw, th)
	prev := g.Render(21, tw, th)
	prevCode := ext.Extract(prev)
	// Pre-render truths and codes: the generator does not use the plane
	// pool, so its allocations must stay out of the measurement.
	const frames = 10
	codes := make([]*edgecode.Code, frames)
	for k := 0; k < frames; k++ {
		truth := g.Render(22+k, tw, th)
		codes[k] = ext.Extract(truth)
		vmath.Put(truth)
	}
	step := func(k int) {
		out := r.Recover(Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: codes[k]})
		prevCode = codes[k]
		vmath.Put(prevPrev)
		prevPrev = prev
		prev = out
	}
	for k := 0; k < 4; k++ {
		step(k) // warm the float and byte pools
	}
	before := vmath.PlaneAllocs()
	for k := 4; k < frames; k++ {
		step(k)
	}
	if d := vmath.PlaneAllocs() - before; d != 0 {
		t.Fatalf("warm fixed-tier recovery allocated %d planes over 6 frames, want 0", d)
	}
}

func benchmarkRecoverHintedTier(b *testing.B, fixed bool) {
	const w, h = 960, 540
	g := video.NewGenerator(video.Categories()[2], 10)
	ext := edgecode.NewExtractor(0, 0)
	r := New(Config{OutW: w, OutH: h, FixedPoint: fixed})
	prevPrev := g.Render(30, w, h)
	prev := g.Render(31, w, h)
	prevCode := ext.Extract(prev)
	truth := g.Render(32, w, h)
	curCode := ext.Extract(truth)
	in := Input{Prev: prev, PrevPrev: prevPrev, PrevCode: prevCode, CurCode: curCode}
	r.Recover(in) // warm pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vmath.Put(r.Recover(in))
	}
}

func BenchmarkRecoverHintedFixed540p(b *testing.B) { benchmarkRecoverHintedTier(b, true) }
func BenchmarkRecoverHintedFloat540p(b *testing.B) { benchmarkRecoverHintedTier(b, false) }
