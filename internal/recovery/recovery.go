// Package recovery implements the hint-assisted video recovery model of §4:
// given the previous frame, the binary point codes of the previous and
// current frames (delivered over the reliable side channel), and optionally
// the partially decoded current frame, it reconstructs the current frame.
//
// The pipeline mirrors the paper's three branches:
//
//  1. warp — optical flow between the consecutive binary point codes is
//     upsampled to the (reduced, 270p-style) working resolution and the
//     previous frame is backward-warped along it;
//  2. inpaint — regions the warp could not source (new content entering
//     the scene, occlusions, low-confidence flow) are filled by an
//     edge-guided diffusion steered by the current code, which tells the
//     client where contours of the unseen content lie;
//  3. enhance — the warped content is sharpened and blended with the
//     decoder-side temporal history state H to compensate for the
//     work-resolution downsampling.
//
// Two ablations used throughout the evaluation are provided: prediction
// without the code (flow extrapolated from the two previous frames, as in
// classical video prediction) and plain frame reuse.
//
// All per-frame intermediates live in the vmath plane pool, so a warmed-up
// Recoverer performs no plane allocations. Planes returned by Recover and
// Reuse are pool-backed and owned by the caller.
package recovery

import (
	"fmt"

	"nerve/internal/edgecode"
	"nerve/internal/flow"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// Config parameterises a Recoverer.
type Config struct {
	// OutW, OutH is the display resolution of recovered frames.
	OutW, OutH int
	// WorkW, WorkH is the warping/inpainting resolution (the paper warps
	// at 270p to fit the mobile latency budget). Zero selects OutW/OutH
	// scaled down to a height of at most 270.
	WorkW, WorkH int
	// ConfThreshold is the flow confidence below which warped pixels are
	// treated as holes (default 0.35).
	ConfThreshold float32
	// InpaintIters is the number of diffusion iterations (default 40).
	InpaintIters int
	// HistoryWeight blends the temporal state H into low-confidence
	// output (default 0.15).
	HistoryWeight float32
	// FixedPoint selects the integer tier for the heavy kernels: byte-plane
	// work-resolution resampling, SWAR-SAD block flow (flow.EstimateBytes)
	// and the Q15 SWAR backward warp (warp.BackwardBytesInto). The
	// mismatch/inpaint/enhance branches stay float — they run on the small
	// work plane and their cost is hole-count-, not area-, bound. The tiers
	// produce near-identical output (TestFixedPointHintedParity); fixed
	// point exists for the frame deadline, trading ≤1 LSB kernel error for
	// roughly half the recovery latency.
	FixedPoint bool
}

func (c Config) withDefaults() Config {
	if c.OutW <= 0 || c.OutH <= 0 {
		panic(fmt.Sprintf("recovery: invalid output size %dx%d", c.OutW, c.OutH))
	}
	if c.WorkW <= 0 || c.WorkH <= 0 {
		if c.OutH > 270 {
			scale := 270.0 / float64(c.OutH)
			c.WorkH = 270
			c.WorkW = int(float64(c.OutW)*scale+0.5) &^ 1
		} else {
			c.WorkW, c.WorkH = c.OutW, c.OutH
		}
	}
	if c.ConfThreshold == 0 {
		c.ConfThreshold = 0.35
	}
	if c.InpaintIters <= 0 {
		c.InpaintIters = 40
	}
	if c.HistoryWeight == 0 {
		c.HistoryWeight = 0.15
	}
	return c
}

// Input bundles everything available to recover the current frame.
type Input struct {
	// Prev is the previously displayed frame I_{t-1} at output resolution
	// (required).
	Prev *vmath.Plane
	// PrevPrev is I_{t-2}; used only when codes are absent (extrapolation
	// mode) — the classical video-prediction ablation.
	PrevPrev *vmath.Plane
	// PrevCode and CurCode are the binary point codes C_{t-1} and C_t.
	// When both are present the recovery runs in full (hinted) mode.
	PrevCode, CurCode *edgecode.Code
	// Part is the partially decoded current frame (Ipart) and PartMask
	// marks its valid pixels with 1; both nil for a complete loss.
	Part, PartMask *vmath.Plane
}

// Recoverer runs the recovery model. It keeps the temporal history state H
// across calls; feed frames in playout order and Reset at scene changes or
// stream restarts.
type Recoverer struct {
	cfg      Config
	history  *vmath.Plane     // H at work resolution; persistent pooled plane
	historyB *vmath.BytePlane // fixed-tier H; see finishFixed

	// Per-frame scratch reused across calls (never escapes).
	holes   []int
	mismExt *edgecode.Extractor
	mismA   []bool
	mismB   []bool
	mismC   []bool

	// prevWork/prevWorkB hold I_{t-1} at work resolution between
	// prepPrevWork and warpPrev within one Recover call (exactly one is
	// non-nil depending on the tier; see fixed.go).
	prevWork  *vmath.Plane
	prevWorkB *vmath.BytePlane
}

// New returns a Recoverer for the configuration.
func New(cfg Config) *Recoverer {
	return &Recoverer{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (defaults applied).
func (r *Recoverer) Config() Config { return r.cfg }

// SetFixedPoint switches the kernel tier between calls — the adaptive
// client flips it per frame under deadline pressure. It is safe at any
// frame boundary: the float and byte tiers keep separate temporal history
// (history/historyB) and prev-work caches, each re-seeded lazily on the
// first frame its tier runs, so a switch never reads state written in the
// other tier's numeric domain. Not safe concurrently with Recover.
func (r *Recoverer) SetFixedPoint(on bool) { r.cfg.FixedPoint = on }

// Reset clears the temporal history state.
func (r *Recoverer) Reset() {
	vmath.Put(r.history)
	r.history = nil
	vmath.PutBytes(r.historyB)
	r.historyB = nil
}

// Reuse is the baseline that simply replays the previous frame. The result
// is a fresh pool-backed plane owned by the caller (never aliases prev).
func (r *Recoverer) Reuse(prev *vmath.Plane) *vmath.Plane {
	return vmath.ResizeBilinearInto(vmath.Get(r.cfg.OutW, r.cfg.OutH), prev)
}

// Recover reconstructs the current frame from in. Mode selection:
// both codes present → hinted recovery; PrevPrev present → extrapolated
// prediction (no-code ablation); otherwise frame reuse. If Part/PartMask
// are set, received regions override the prediction (partial concealment).
// The returned plane is pool-backed and owned by the caller; the Recoverer
// never retains a reference to it.
func (r *Recoverer) Recover(in Input) *vmath.Plane {
	defer telemetry.Start(telemetry.StageRecovery).Stop()
	if in.Prev == nil {
		panic("recovery: Input.Prev is required")
	}
	var out *vmath.Plane
	switch {
	case in.PrevCode != nil && in.CurCode != nil:
		out = r.recoverHinted(in)
	case in.PrevPrev != nil:
		out = r.recoverExtrapolated(in)
	default:
		out = r.Reuse(in.Prev)
	}
	if in.Part != nil && in.PartMask != nil {
		out = r.overridePartial(out, in.Part, in.PartMask)
	}
	return out.Clamp255()
}

// recoverHinted is the full pipeline. The binary point code plays its two
// roles from the paper: its delta against the previous code carries the
// true motion of the *current* frame (which extrapolation cannot know), and
// its contours reveal where the warped prediction is wrong (new content, so
// those regions are re-synthesised by edge-guided inpainting).
func (r *Recoverer) recoverHinted(in Input) *vmath.Plane {
	cfg := r.cfg
	r.prepPrevWork(in.Prev)

	// Base motion: frame-based flow extrapolated one step when I_{t-2}
	// is available (one step of constant velocity is the field itself),
	// otherwise zero motion.
	base := r.baseFlow(in)
	if base == nil {
		base = flow.NewField(cfg.WorkW, cfg.WorkH)
		for i := range base.Conf {
			base.Conf[i] = 0.5
		}
	}

	// Hint motion: flow between the consecutive binary point codes. Codes
	// are sparse, so matching uses a strong zero bias and the result is
	// only trusted where its confidence is high.
	prevSoft := in.PrevCode.SoftPlane()
	curSoft := in.CurCode.SoftPlane()
	codeFlow := flow.Estimate(prevSoft, curSoft,
		flow.Options{Levels: 2, Search: 2, ZeroBias: 1.5})
	vmath.Put(prevSoft)
	vmath.Put(curSoft)
	hint := codeFlow.Resample(cfg.WorkW, cfg.WorkH)
	codeFlow.Release()

	// Fuse in place into the base field (nothing reads the pure
	// extrapolation afterwards): lean toward the hint where it is
	// confident and disagrees with the extrapolation (the hint knows the
	// current frame; extrapolation only assumes constant velocity).
	fused := base
	for i := range fused.U {
		w := hint.Conf[i] * hint.Conf[i] * 0.6
		fused.U[i] += w * (hint.U[i] - fused.U[i])
		fused.V[i] += w * (hint.V[i] - fused.V[i])
		if hint.Conf[i] > fused.Conf[i] {
			fused.Conf[i] = hint.Conf[i]
		}
	}
	hint.Release()

	// Snap near-integer vectors: exact copies avoid generation loss over
	// consecutive recoveries.
	fused.SnapIntegers(0.35)
	warped, valid := r.warpPrev(fused)
	fused.Release()

	// Mismatch detection: contours promised by the current code that the
	// warped prediction does not contain (and stale contours it should
	// not contain) become holes for the inpainting branch.
	r.markCodeMismatch(warped, valid, in.CurCode)

	// Ipart at work resolution is real data: feed it into the inpainting
	// as known pixels so diffusion grows from truth.
	r.overlayPartWork(warped, valid, in)

	// Inpaint holes guided by the current code's contours, then enhance.
	guide := in.CurCode.EdgeGuide(cfg.WorkW, cfg.WorkH)
	filled := r.inpaint(warped, valid, guide, cfg.InpaintIters)
	vmath.Put(guide)
	vmath.Put(warped)
	var res *vmath.Plane
	if cfg.FixedPoint {
		res = r.finishFixed(filled, valid)
		vmath.Put(filled)
	} else {
		out := r.enhance(filled, valid)
		res = r.resizeOut(out)
		vmath.Put(out)
	}
	vmath.Put(valid)
	return res
}

// overlayPartWork resamples the partial frame and its mask to work
// resolution (pooled scratch) and pastes received pixels into warped/valid.
func (r *Recoverer) overlayPartWork(warped, valid *vmath.Plane, in Input) {
	if in.Part == nil || in.PartMask == nil {
		return
	}
	cfg := r.cfg
	partWork := vmath.ResizeBilinearInto(vmath.Get(cfg.WorkW, cfg.WorkH), in.Part)
	maskWork := vmath.ResizeBilinearInto(vmath.Get(cfg.WorkW, cfg.WorkH), in.PartMask)
	for i := range warped.Pix {
		if maskWork.Pix[i] > 0.5 {
			warped.Pix[i] = partWork.Pix[i]
			valid.Pix[i] = 1
		}
	}
	vmath.Put(partWork)
	vmath.Put(maskWork)
}

// markCodeMismatch compares the contours of the warped prediction against
// the received current code and clears `valid` where they disagree, bounded
// so inpainting never overwhelms a mostly-correct prediction. The extractor
// and mismatch bitmaps are scratch kept on the Recoverer.
func (r *Recoverer) markCodeMismatch(warped, valid *vmath.Plane, cur *edgecode.Code) {
	if r.mismExt == nil || r.mismExt.W != cur.W || r.mismExt.H != cur.H {
		r.mismExt = edgecode.NewExtractor(cur.W, cur.H)
		r.mismExt.HistoryWeight = 0
	}
	ext := r.mismExt
	ext.TargetDensity = cur.Density()
	if ext.TargetDensity < 0.02 {
		return
	}
	predCode := ext.Extract(warped)

	const nb = 2 // contour match tolerance in code pixels
	if len(r.mismA) < cur.W*cur.H {
		r.mismA = make([]bool, cur.W*cur.H)
		r.mismB = make([]bool, cur.W*cur.H)
	}
	mism := r.mismA[:cur.W*cur.H]
	for i := range mism {
		mism[i] = false
	}
	total := 0
	for y := 0; y < cur.H; y++ {
		for x := 0; x < cur.W; x++ {
			cb := cur.Get(x, y)
			pb := predCode.Get(x, y)
			if cb == pb {
				continue
			}
			// A bit mismatches only when no counterpart exists nearby.
			other := predCode
			if pb {
				other = cur
			}
			found := false
			for dy := -nb; dy <= nb && !found; dy++ {
				for dx := -nb; dx <= nb; dx++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || yy < 0 || xx >= cur.W || yy >= cur.H {
						continue
					}
					if other.Get(xx, yy) {
						found = true
						break
					}
				}
			}
			if !found {
				mism[y*cur.W+x] = true
			}
		}
	}
	// Filter isolated mismatch bits (code noise): a genuine new object or
	// motion error produces clustered mismatches.
	filtered := r.mismB[:cur.W*cur.H]
	for i := range filtered {
		filtered[i] = false
	}
	for y := 0; y < cur.H; y++ {
		for x := 0; x < cur.W; x++ {
			if !mism[y*cur.W+x] {
				continue
			}
			neighbours := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					xx, yy := x+dx, y+dy
					if xx < 0 || yy < 0 || xx >= cur.W || yy >= cur.H {
						continue
					}
					if mism[yy*cur.W+xx] {
						neighbours++
					}
				}
			}
			if neighbours >= 2 {
				filtered[y*cur.W+x] = true
				total++
			}
		}
	}
	mism = filtered
	// Bound the damage: if more than 35% of contour bits mismatch the
	// scene changed wholesale; inpainting everything would be worse than
	// keeping the warp, so only the strongest signal (the raw mismatches,
	// undilated) is used in that case.
	dilate := total*4 < cur.W*cur.H/10*35/10
	rad := 1
	if dilate {
		rad = 2
	}
	// Dilate by rad in code space with two separable passes (the naive
	// per-work-pixel neighbourhood scan was a top-three term of the
	// recovery profile), then clear valid with one lookup per work pixel.
	if len(r.mismC) < cur.W*cur.H {
		r.mismC = make([]bool, cur.W*cur.H)
	}
	hor := r.mismA[:cur.W*cur.H] // raw mismatch bits are dead past this point
	dil := r.mismC[:cur.W*cur.H]
	for y := 0; y < cur.H; y++ {
		row := mism[y*cur.W : y*cur.W+cur.W]
		out := hor[y*cur.W : y*cur.W+cur.W]
		for x := range out {
			hit := false
			for dx := -rad; dx <= rad; dx++ {
				if xx := x + dx; xx >= 0 && xx < cur.W && row[xx] {
					hit = true
					break
				}
			}
			out[x] = hit
		}
	}
	for y := 0; y < cur.H; y++ {
		out := dil[y*cur.W : y*cur.W+cur.W]
		for x := range out {
			hit := false
			for dy := -rad; dy <= rad; dy++ {
				if yy := y + dy; yy >= 0 && yy < cur.H && hor[yy*cur.W+x] {
					hit = true
					break
				}
			}
			out[x] = hit
		}
	}
	sx := float64(cur.W) / float64(valid.W)
	sy := float64(cur.H) / float64(valid.H)
	for y := 0; y < valid.H; y++ {
		cy := int(float64(y) * sy)
		crow := dil[cy*cur.W : cy*cur.W+cur.W]
		for x := 0; x < valid.W; x++ {
			if crow[int(float64(x)*sx)] {
				valid.Pix[y*valid.W+x] = 0
			}
		}
	}
}

// recoverExtrapolated predicts the frame without a hint: flow between the
// two previous frames is extrapolated one step forward (constant velocity),
// and inpainting runs unguided.
func (r *Recoverer) recoverExtrapolated(in Input) *vmath.Plane {
	cfg := r.cfg
	r.prepPrevWork(in.Prev)
	// Flow from I_{t-2} to I_{t-1}; assuming constant motion, the same
	// field predicts I_t from I_{t-1} — one extrapolation step is the
	// field itself, so it is snapped and used directly.
	f := r.baseFlow(in)
	ext := f.SnapIntegers(0.35)
	warped, valid := r.warpPrev(ext)
	f.Release()
	r.overlayPartWork(warped, valid, in)
	filled := r.inpaint(warped, valid, nil, cfg.InpaintIters)
	vmath.Put(warped)
	var res *vmath.Plane
	if cfg.FixedPoint {
		res = r.finishFixed(filled, valid)
		vmath.Put(filled)
	} else {
		out := r.enhance(filled, valid)
		res = r.resizeOut(out)
		vmath.Put(out)
	}
	vmath.Put(valid)
	return res
}

// enhance applies the enhancement branch in place on img: a light unsharp
// to recover the detail lost to work-resolution processing (scaled by how
// much resolution the work stage actually gave up), plus temporal blending
// with the history state H in low-validity regions. It updates H and
// returns img.
func (r *Recoverer) enhance(img, valid *vmath.Plane) *vmath.Plane {
	// No downsampling loss to compensate when work == output resolution.
	amount := 0.25 * (float64(r.cfg.OutH)/float64(r.cfg.WorkH) - 1)
	if amount > 0.35 {
		amount = 0.35
	}
	out := img
	if amount > 0.01 {
		// UnsharpMaskInto materialises the blur first, so dst may alias src.
		vmath.UnsharpMaskInto(out, img, 1.0, amount)
	}
	// Blend with history where the warp had no reliable source: the
	// history carries content diffusion alone cannot invent.
	if r.history != nil && r.history.W == out.W && r.history.H == out.H {
		hw := r.cfg.HistoryWeight
		for i := range out.Pix {
			if valid.Pix[i] < 0.5 {
				out.Pix[i] = out.Pix[i] + hw*(r.history.Pix[i]-out.Pix[i])
			}
		}
	}
	// H ← EMA of recovered frames, held in a persistent pooled plane.
	if r.history == nil || r.history.W != out.W || r.history.H != out.H {
		vmath.Put(r.history)
		r.history = vmath.Get(out.W, out.H).CopyFrom(out)
	} else {
		vmath.Lerp(r.history, r.history, out, 0.6)
	}
	return out
}

// overridePartial pastes received content over the prediction in place (the
// paper: "partial content is also used to override the predicted frame in
// the corresponding region") and returns pred.
func (r *Recoverer) overridePartial(pred, part, mask *vmath.Plane) *vmath.Plane {
	p := part
	m := mask
	pooled := false
	if part.W != pred.W || part.H != pred.H {
		p = vmath.ResizeBilinearInto(vmath.Get(pred.W, pred.H), part)
		m = vmath.ResizeBilinearInto(vmath.Get(pred.W, pred.H), mask)
		pooled = true
	}
	for i := range pred.Pix {
		if m.Pix[i] > 0.5 {
			pred.Pix[i] = p.Pix[i]
		}
	}
	if pooled {
		vmath.Put(p)
		vmath.Put(m)
	}
	return pred
}

// inpaint fills pixels with valid==0 by iterative 4-neighbour diffusion.
// When guide is non-nil (a [0,1] edge map), diffusion across strong edges
// is damped so filled regions respect the hinted contours. Valid pixels
// are hard constraints; each hole keeps a self-anchor to its warped value,
// so mildly wrong content is adjusted rather than erased (pure diffusion
// would wipe texture that is only a couple of pixels out of place).
// The result is a fresh pool-backed plane; img is left untouched (it is
// the diffusion anchor). The hole index list is scratch on the Recoverer.
func (r *Recoverer) inpaint(img, valid, guide *vmath.Plane, iters int) *vmath.Plane {
	out, holes := inpaintScratch(img, valid, guide, iters, r.holes)
	r.holes = holes
	return out
}

// inpaint is the scratch-free convenience form.
func inpaint(img, valid, guide *vmath.Plane, iters int) *vmath.Plane {
	out, _ := inpaintScratch(img, valid, guide, iters, nil)
	return out
}

func inpaintScratch(img, valid, guide *vmath.Plane, iters int, scratch []int) (*vmath.Plane, []int) {
	w, h := img.W, img.H
	out := vmath.Get(w, h).CopyFrom(img)
	holes := scratch[:0]
	for i := range out.Pix {
		if valid.Pix[i] < 0.5 {
			holes = append(holes, i)
		}
	}
	if len(holes) == 0 {
		return out, holes
	}

	const selfWeight = 0.8
	// next is only ever written then read at hole indices, so a dirty
	// pooled plane is safe.
	next := vmath.Get(w, h)
	for it := 0; it < iters; it++ {
		for _, i := range holes {
			x := i % w
			y := i / w
			acc := selfWeight * img.Pix[i]
			wsum := float32(selfWeight)
			add := func(nx, ny int) {
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					return
				}
				j := ny*w + nx
				wgt := float32(1)
				if guide != nil {
					// Damp diffusion across hinted contours.
					wgt = 1 - 0.85*guide.Pix[j]
					if wgt < 0.05 {
						wgt = 0.05
					}
				}
				// Pulls from valid pixels count extra: truth anchors.
				if valid.Pix[j] >= 0.5 {
					wgt *= 2
				}
				acc += wgt * out.Pix[j]
				wsum += wgt
			}
			add(x-1, y)
			add(x+1, y)
			add(x, y-1)
			add(x, y+1)
			if wsum > 0 {
				next.Pix[i] = acc / wsum
			}
		}
		for _, i := range holes {
			out.Pix[i] = next.Pix[i]
		}
	}
	vmath.Put(next)
	return out, holes
}
