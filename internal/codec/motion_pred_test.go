package codec

import (
	"testing"

	"nerve/internal/par"
	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

func TestMedian3(t *testing.T) {
	cases := []struct{ a, b, c, want int }{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 3, 1, 2}, {5, 5, 1, 5},
		{1, 5, 5, 5}, {5, 1, 5, 5}, {0, 0, 0, 0}, {-3, 4, 0, 0},
	}
	for _, c := range cases {
		if got := median3(c.a, c.b, c.c); got != c.want {
			t.Fatalf("median3(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestPredictMV(t *testing.T) {
	left := MV{4, -2}
	if got := predictMV(nil, 3, 1, 1, left); got != left {
		t.Fatalf("nil field: got %v, want left %v", got, left)
	}
	// 2×3 previous field.
	prev := []MV{
		{1, 1}, {2, 2}, {3, 3},
		{7, 7}, {8, 8}, {9, 9},
	}
	// Row 1, col 0: top = prev row 0 col 0 = {1,1}, top-right = {2,2},
	// left = {4,-2} → median(4,1,2)=2, median(-2,1,2)=1.
	if got := predictMV(prev, 3, 1, 0, left); got != (MV{2, 1}) {
		t.Fatalf("got %v, want {2 1}", got)
	}
	// Row 0 uses co-located previous-frame vectors (r stays 0).
	if got := predictMV(prev, 3, 0, 0, left); got != (MV{2, 1}) {
		t.Fatalf("row 0: got %v, want {2 1}", got)
	}
	// Last column: top-right falls back to zero.
	if got := predictMV(prev, 3, 1, 2, left); got != (MV{3, 0}) {
		t.Fatalf("last col: got %v, want {3 0}", got)
	}
}

func TestEarlyTermBounds(t *testing.T) {
	if got := earlyTerm(-1, -1); got != earlyTermFloor {
		t.Fatalf("no evidence: %d, want floor %d", got, earlyTermFloor)
	}
	if got := earlyTerm(1<<40, -1); got != earlyTermCap {
		t.Fatalf("huge left SAD: %d, want cap %d", got, earlyTermCap)
	}
	if got := earlyTerm(0, -1); got != earlyTermFloor {
		t.Fatalf("zero left SAD: %d, want floor %d", got, earlyTermFloor)
	}
	// 1.25× the better of the two neighbours.
	if got := earlyTerm(1000, 400); got != 500 {
		t.Fatalf("earlyTerm(1000,400) = %d, want 500", got)
	}
	if got := earlyTerm(400, 1000); got != 500 {
		t.Fatalf("earlyTerm(400,1000) = %d, want 500", got)
	}
}

// translatedPlanes builds a reference plane of smooth noise and a current
// plane translated by (dx, dy) — every interior block has an exact match.
func translatedPlanes(w, h, dx, dy int) (cur, ref *vmath.Plane) {
	g := vmath.NewPlane(w, h)
	for i := range g.Pix {
		g.Pix[i] = float32((i*2654435761 + i/w*97) % 256)
	}
	ref = vmath.GaussianBlur(g, 1.2)
	cur = vmath.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Set(x, y, ref.AtClamp(x+dx, y+dy))
		}
	}
	return cur, ref
}

// TestSearchTelemetryCounters drives a full-frame search with telemetry on
// and checks the three pruning counters move: points always, early_terms
// on translated content (after the first block of a row finds the shift,
// its neighbours' seeded match is at the adaptive threshold), and
// sad.early_exits on content where most candidates lose quickly.
func TestSearchTelemetryCounters(t *testing.T) {
	telemetry.Enable(true)
	defer telemetry.Enable(false)
	cur, ref := translatedPlanes(160, 96, 3, 1)
	p0 := cSearchPoints.Value()
	e0 := cEarlyTerms.Value()
	x0 := cSADEarlyExit.Value()
	SearchFrame(cur, ref, 15)
	if d := cSearchPoints.Value() - p0; d <= 0 {
		t.Fatalf("search.points moved by %d, want > 0", d)
	}
	if d := cEarlyTerms.Value() - e0; d <= 0 {
		t.Fatalf("search.early_terms moved by %d, want > 0 on translated content", d)
	}
	if d := cSADEarlyExit.Value() - x0; d <= 0 {
		t.Fatalf("sad.early_exits moved by %d, want > 0", d)
	}
}

// TestSearchFramePredFindsTranslation: with a previous-frame motion field
// pointing at the right shift, the predictive search must find the exact
// vector for every interior macroblock.
func TestSearchFramePredFindsTranslation(t *testing.T) {
	cur, ref := translatedPlanes(160, 96, 4, -2)
	mbRows, mbCols := 96/MBSize, 160/MBSize
	prev := make([]MV, mbRows*mbCols)
	for i := range prev {
		prev[i] = MV{4, -2}
	}
	mvs := SearchFramePredInto(nil, prev, cur, ref, 15)
	for row := 1; row < mbRows-1; row++ {
		for col := 1; col < mbCols-1; col++ {
			if mv := mvs[row*mbCols+col]; mv != (MV{4, -2}) {
				t.Fatalf("mb (%d,%d): mv %v, want {4 -2}", row, col, mv)
			}
		}
	}
}

// TestSearchFramePredParallelBitExact: the predictive search — temporal
// seeds, adaptive termination and all — must return identical vectors for
// any worker-pool size.
func TestSearchFramePredParallelBitExact(t *testing.T) {
	frames := testClip(t, 3)
	restore := par.SetWorkers(1)
	prev := SearchFrame(frames[1], frames[0], 15)
	want := SearchFramePredInto(nil, prev, frames[2], frames[1], 15)
	restore()
	for _, workers := range []int{2, 8} {
		restore := par.SetWorkers(workers)
		got := SearchFramePredInto(nil, prev, frames[2], frames[1], 15)
		restore()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: mv %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEncoderReencodeReplayBitExact forces the rate-control re-encode path
// (a tiny budget guarantees the first attempt overshoots) and checks the
// replayed second attempt produces a stream the decoder reconstructs
// exactly — i.e. cached mode/MV fields reproduce what a fresh search would
// have decided.
func TestEncoderReencodeReplayBitExact(t *testing.T) {
	frames := testClip(t, 8)
	cfg := Config{W: 160, H: 96, GOP: 4, TargetBitrate: 80e3, FPS: 30}
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	for i, f := range frames {
		ef := enc.Encode(f)
		res, err := dec.Decode(ef, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		for pi := range res.Frame.Pix {
			if res.Frame.Pix[pi] != ef.Recon.Pix[pi] {
				t.Fatalf("frame %d: decode differs from recon at pixel %d", i, pi)
			}
		}
		vmath.Put(res.Mask)
	}
}
