package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	r.Start(StageEncode).Stop()
	r.Observe(StageFlow, time.Millisecond)
	r.FrameStart().Done()
	r.ObserveFrame(time.Second)
	c := r.Counter("events")
	c.Add(5)
	var buf bytes.Buffer
	r.SetEventSink(&buf)
	r.Emit("retry", StageFetch, "x", 1)
	if n := r.StageHistogram(StageEncode).Count(); n != 0 {
		t.Errorf("disabled registry recorded %d encode spans", n)
	}
	if n := r.StageHistogram(StageFlow).Count(); n != 0 {
		t.Errorf("disabled registry recorded %d flow spans", n)
	}
	if r.Frames() != 0 || r.Overruns() != 0 {
		t.Errorf("disabled registry tracked frames: %d/%d", r.Frames(), r.Overruns())
	}
	if c.Value() != 0 {
		t.Errorf("disabled counter = %d", c.Value())
	}
	if buf.Len() != 0 {
		t.Errorf("disabled registry emitted event: %q", buf.String())
	}
}

func TestEnabledRegistryRecords(t *testing.T) {
	r := New()
	r.Enable(true)
	r.Observe(StageSR, 3*time.Millisecond)
	r.Observe(StageSR, 5*time.Millisecond)
	h := r.StageHistogram(StageSR)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 8*time.Millisecond {
		t.Fatalf("Sum = %v, want 8ms", h.Sum())
	}
	tm := r.Start(StageDecode)
	tm.Stop()
	if r.StageHistogram(StageDecode).Count() != 1 {
		t.Fatal("timer span not recorded")
	}
}

func TestZeroTimersInert(t *testing.T) {
	var tm Timer
	tm.Stop() // must not panic
	var ft FrameTimer
	ft.Done() // must not panic
}

func TestCounterIdentityAndReset(t *testing.T) {
	r := New()
	r.Enable(true)
	a := r.Counter("retries")
	b := r.Counter("retries")
	if a != b {
		t.Fatal("Counter must return the same handle for the same name")
	}
	a.Add(3)
	b.Add(2)
	if a.Value() != 5 {
		t.Fatalf("Value = %d, want 5", a.Value())
	}
	r.Observe(StageWarp, time.Millisecond)
	r.ObserveFrame(time.Millisecond)
	r.Reset()
	if a.Value() != 0 || r.StageHistogram(StageWarp).Count() != 0 || r.Frames() != 0 {
		t.Fatal("Reset must zero counters, histograms and the deadline tracker")
	}
	if !r.Enabled() {
		t.Fatal("Reset must not disable the registry")
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageEncode: "encode", StageDecode: "decode", StageCode: "code",
		StageFlow: "flow", StageWarp: "warp", StageSR: "sr",
		StageRecovery: "recovery", StageFEC: "fec", StageFetch: "fetch",
		StageABR: "abr",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if len(Stages()) != len(want) {
		t.Errorf("Stages() returned %d stages, want %d", len(Stages()), len(want))
	}
	if StageNone.String() != "Stage(-1)" {
		t.Errorf("StageNone.String() = %q", StageNone.String())
	}
}

func TestInvalidStagePanics(t *testing.T) {
	r := New()
	for _, f := range []func(){
		func() { r.Start(StageNone) },
		func() { r.Observe(Stage(99), 0) },
		func() { r.StageHistogram(StageNone) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid stage")
				}
			}()
			f()
		}()
	}
}

func TestEventSinkJSONLines(t *testing.T) {
	r := New()
	r.Enable(true)
	var buf bytes.Buffer
	r.SetEventSink(&buf)
	r.Emit("retry", StageFetch, "/segment/3", 2)
	r.Emit("experiment", StageNone, "fig7", 120.5)
	dec := json.NewDecoder(&buf)
	var ev Event
	if err := dec.Decode(&ev); err != nil {
		t.Fatalf("first event line: %v", err)
	}
	if ev.Kind != "retry" || ev.Stage != "fetch" || ev.Detail != "/segment/3" || ev.Value != 2 {
		t.Fatalf("first event = %+v", ev)
	}
	var ev2 Event // fresh struct: omitted fields must stay zero
	if err := dec.Decode(&ev2); err != nil {
		t.Fatalf("second event line: %v", err)
	}
	if ev2.Kind != "experiment" || ev2.Stage != "" || ev2.Detail != "fig7" {
		t.Fatalf("second event = %+v", ev2)
	}
	// Detaching the sink drops further events.
	r.SetEventSink(nil)
	before := buf.Len()
	r.Emit("retry", StageFetch, "", 1)
	if buf.Len() != before {
		t.Fatal("detached sink still received an event")
	}
}

// TestRegistryConcurrent races timers, counters, frame observations,
// events and snapshots against each other; the CI race gate makes this a
// memory-safety proof, not just a liveness smoke.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	r.Enable(true)
	var buf bytes.Buffer
	r.SetEventSink(&buf)
	c := r.Counter("races")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(Stage(i%int(numStages)), time.Duration(i)*time.Microsecond)
				c.Add(1)
				r.ObserveFrame(time.Duration(i) * 100 * time.Microsecond)
				if i%100 == 0 {
					r.Emit("tick", StageNone, "", float64(i))
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if r.Frames() != 8*500 {
		t.Fatalf("frames = %d, want %d", r.Frames(), 8*500)
	}
}
