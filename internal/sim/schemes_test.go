package sim

import (
	"testing"

	"nerve/internal/abr"
	"nerve/internal/device"
	"nerve/internal/trace"
)

func TestSchemeSetNames(t *testing.T) {
	set := NewSchemeSet()
	want := map[string]Scheme{
		"w/o RC":         set.WithoutRecovery(),
		"w/o RC (reuse)": set.WithoutRecoveryReuse(),
		"RC alone":       set.RecoveryAlone(),
		"our (RC)":       set.RecoveryAware(),
		"w/o SR":         set.WithoutSR(),
		"SR alone":       set.SRAlone(),
		"NEMO":           set.NEMO(),
		"our (SR)":       set.SRAware(),
		"w/o SR & RC":    set.Baseline(),
		"SR & RC alone":  set.BothAlone(),
		"our":            set.Full(),
	}
	for name, sc := range want {
		if sc.Name != name {
			t.Errorf("scheme name %q != %q", sc.Name, name)
		}
		if sc.ABR == nil {
			t.Errorf("%q has no ABR", name)
		}
	}
	// Flag wiring.
	if set.Full().Recovery != true || set.Full().SR != true {
		t.Error("Full flags")
	}
	if set.NEMO().Recovery || !set.NEMO().NEMO {
		t.Error("NEMO flags")
	}
	if !set.WithoutRecoveryReuse().ReuseOnLoss {
		t.Error("reuse flag")
	}
	if !set.WithoutRecoveryReuse().reuses() || !set.NEMO().reuses() || set.Full().reuses() {
		t.Error("reuses() predicate")
	}
}

func TestSchemeSetFECPropagates(t *testing.T) {
	set := NewSchemeSet()
	set.UseFEC = true
	if !set.Full().UseFEC || !set.WithoutRecovery().UseFEC {
		t.Fatal("UseFEC not propagated")
	}
}

func TestEnhancementModelConversion(t *testing.T) {
	q := DefaultQualityModel()
	m := q.EnhancementModel(device.IPhone12())
	if len(m.RecoveredPSNR) != 5 || len(m.SRPSNR) != 5 {
		t.Fatal("model arrays")
	}
	if m.TRecovery != 0.022 || m.TSR != 0.022 {
		t.Fatalf("times %v %v", m.TRecovery, m.TSR)
	}
	// The returned slices must be copies.
	m.RecoveredPSNR[0] = -1
	if q.Recovered[0] == -1 {
		t.Fatal("EnhancementModel aliases the quality model")
	}
}

func TestFixedRateABRInSim(t *testing.T) {
	tr := downTrace(trace.Net4G, 44)
	for idx := 0; idx < 5; idx++ {
		sc := Scheme{Name: "fixed", Recovery: true, ABR: &abr.FixedRate{Index: idx}}
		res := Run(Config{Trace: tr, Seed: 5, Chunks: 10}, sc)
		for _, p := range res.Series {
			if p.RateIndex != idx {
				t.Fatalf("fixed rate %d drifted to %d", idx, p.RateIndex)
			}
		}
	}
	// Out-of-range indices clamp.
	sc := Scheme{Name: "fixed", ABR: &abr.FixedRate{Index: 99}}
	res := Run(Config{Trace: tr, Seed: 5, Chunks: 3}, sc)
	if res.Series[0].RateIndex != 4 {
		t.Fatalf("clamp high: %d", res.Series[0].RateIndex)
	}
	sc2 := Scheme{Name: "fixed", ABR: &abr.FixedRate{Index: -3}}
	res2 := Run(Config{Trace: tr, Seed: 5, Chunks: 3}, sc2)
	if res2.Series[0].RateIndex != 0 {
		t.Fatalf("clamp low: %d", res2.Series[0].RateIndex)
	}
}

func TestNEMODiffersFromSRAlone(t *testing.T) {
	tr := downTrace(trace.Net4G, 45)
	set := NewSchemeSet()
	nemo := Run(Config{Trace: tr, Seed: 6}, set.NEMO())
	alone := Run(Config{Trace: tr, Seed: 6}, set.SRAlone())
	if nemo.QoE == alone.QoE {
		t.Fatal("NEMO indistinguishable from SR alone")
	}
	if nemo.QoE > alone.QoE {
		t.Fatalf("NEMO (%v) above full SR alone (%v)", nemo.QoE, alone.QoE)
	}
}

func TestLossScaleIncreasesRecoveries(t *testing.T) {
	tr := downTrace(trace.Net4G, 46)
	set := NewSchemeSet()
	clean := Run(Config{Trace: tr, Seed: 7}, set.RecoveryAlone())
	lossy := Run(Config{Trace: tr, Seed: 7, LossScale: 8}, set.RecoveryAlone())
	if lossy.RecoveredFrac <= clean.RecoveredFrac {
		t.Fatalf("loss scale had no effect: %v vs %v", lossy.RecoveredFrac, clean.RecoveredFrac)
	}
}

func TestNilABRDefaultsToLowestRate(t *testing.T) {
	tr := downTrace(trace.Net3G, 47)
	res := Run(Config{Trace: tr, Seed: 8, Chunks: 5}, Scheme{Name: "none"})
	for _, p := range res.Series {
		if p.RateIndex != 0 {
			t.Fatalf("nil ABR picked %d", p.RateIndex)
		}
	}
}

func TestPacketAccurateMode(t *testing.T) {
	tr := downTrace(trace.Net4G, 60)
	set := NewSchemeSet()
	for _, sc := range []Scheme{set.Full(), set.WithoutRecovery(), set.WithoutRecoveryReuse()} {
		cfg := Config{Trace: tr, Seed: 3, Chunks: 20, PacketAccurate: true, LossScale: 3}
		res := Run(cfg, sc)
		if len(res.Series) != 20 {
			t.Fatalf("%s: %d chunks", sc.Name, len(res.Series))
		}
		prev := -1.0
		for _, p := range res.Series {
			if p.Time < prev {
				t.Fatalf("%s: time not monotone", sc.Name)
			}
			prev = p.Time
		}
	}
	// Determinism.
	a := Run(Config{Trace: tr, Seed: 9, Chunks: 15, PacketAccurate: true}, set.Full())
	b := Run(Config{Trace: tr, Seed: 9, Chunks: 15, PacketAccurate: true}, set.Full())
	if a.QoE != b.QoE {
		t.Fatalf("packet-accurate mode non-deterministic: %v vs %v", a.QoE, b.QoE)
	}
}

func TestPacketAccurateOrderingHolds(t *testing.T) {
	// The headline recovery ordering must survive the higher-fidelity
	// transport model.
	set := NewSchemeSet()
	var qNo, qOur float64
	const n = 6
	for s := int64(0); s < n; s++ {
		tr := downTrace(trace.Net5G, 150+s)
		cfg := Config{Trace: tr, Seed: 900 + s, Chunks: 30, PacketAccurate: true}
		qNo += Run(cfg, set.WithoutRecovery()).QoE
		qOur += Run(cfg, set.RecoveryAware()).QoE
	}
	t.Logf("packet-accurate: w/o RC %.3f, ours %.3f", qNo/n, qOur/n)
	if qOur <= qNo {
		t.Fatalf("recovery ordering violated in packet-accurate mode: %.3f vs %.3f", qOur/n, qNo/n)
	}
}

func TestPacketAccurateAgreesWithFluid(t *testing.T) {
	// The two fidelity levels should tell the same story within a loose
	// factor for a stable scheme.
	tr := downTrace(trace.Net4G, 61)
	set := NewSchemeSet()
	fluid := Run(Config{Trace: tr, Seed: 4, Chunks: 30}, set.Full())
	pkt := Run(Config{Trace: tr, Seed: 4, Chunks: 30, PacketAccurate: true}, set.Full())
	t.Logf("fluid QoE %.3f, packet-accurate QoE %.3f", fluid.QoE, pkt.QoE)
	if pkt.QoE < fluid.QoE*0.3-0.2 || pkt.QoE > fluid.QoE*3+0.2 {
		t.Fatalf("fidelity levels disagree wildly: %.3f vs %.3f", pkt.QoE, fluid.QoE)
	}
}
