package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"nerve/internal/telemetry"
)

// cExperiments counts harness runs; each run also emits an "experiment"
// event carrying the experiment ID and its wall-clock milliseconds.
var cExperiments = telemetry.NewCounter("experiments_run")

// Runner executes one experiment and writes its rendered results.
type Runner func(opts Options, w io.Writer) error

// printTables renders any mix of tables/series.
func printAll(w io.Writer, items ...interface{ Fprint(io.Writer) }) error {
	for _, it := range items {
		it.Fprint(w)
	}
	return nil
}

// Registry maps experiment IDs (DESIGN.md §3) to runners.
var Registry = map[string]Runner{
	"fig1":  func(o Options, w io.Writer) error { return printAll(w, Fig1(o)) },
	"fig2":  func(o Options, w io.Writer) error { return printAll(w, Fig2(o)) },
	"tab1":  func(o Options, w io.Writer) error { return printAll(w, Table1(o)) },
	"fig4a": func(o Options, w io.Writer) error { return printAll(w, Fig4a(o)) },
	"fig4b": func(o Options, w io.Writer) error { return printAll(w, Fig4b(o)) },
	"fig6": func(o Options, w io.Writer) error {
		paths, err := Fig6(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== fig6: recovery visualisation ==\n  artefacts: %v\n\n", paths)
		return nil
	},
	"fig7": func(o Options, w io.Writer) error { p, s := Fig7(o); return printAll(w, p, s) },
	"fig8": func(o Options, w io.Writer) error { p, s := Fig8(o); return printAll(w, p, s) },
	"fig9": func(o Options, w io.Writer) error {
		paths, err := Fig9(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== fig9: concealment visualisation ==\n  artefacts: %v\n\n", paths)
		return nil
	},
	"fig10": func(o Options, w io.Writer) error { p, s := Fig10(o); return printAll(w, p, s) },
	"fig11": func(o Options, w io.Writer) error {
		paths, err := Fig11(o)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== fig11: super-resolution visualisation ==\n  artefacts: %v\n\n", paths)
		return nil
	},
	"tab2":  func(o Options, w io.Writer) error { return printAll(w, Table2(o)) },
	"fig12": func(o Options, w io.Writer) error { return printAll(w, Fig12(o)) },
	"tab3":  func(o Options, w io.Writer) error { return printAll(w, Table3(o)) },
	"fig13": func(o Options, w io.Writer) error { a, b := Fig13(o); return printAll(w, a, b) },
	"fig14": func(o Options, w io.Writer) error { return printAll(w, Fig14(o)) },
	"fig15": func(o Options, w io.Writer) error { return printAll(w, Fig15(o)) },
	"fig16": func(o Options, w io.Writer) error { return printAll(w, Fig16(o)) },
	"fig17": func(o Options, w io.Writer) error { return printAll(w, Fig17(o)) },
	"fig18": func(o Options, w io.Writer) error { return printAll(w, Fig18(o)) },
	"lat":   func(o Options, w io.Writer) error { return printAll(w, Latency(o)) },
	"cpu":   func(o Options, w io.Writer) error { return printAll(w, CPUEnergy(o)) },
	"calibrate": func(o Options, w io.Writer) error {
		_, t := CalibrateQuality(o)
		return printAll(w, t)
	},
	"abr-xlayer": func(o Options, w io.Writer) error {
		res, t := ABRMatrix(o)
		if o.OutDir != "" {
			if err := res.WriteJSON(filepath.Join(o.OutDir, "abr_matrix.json")); err != nil {
				return err
			}
		}
		return printAll(w, t)
	},
	"abl-code":   func(o Options, w io.Writer) error { return printAll(w, AblationCodeResolution(o)) },
	"abl-warp":   func(o Options, w io.Writer) error { return printAll(w, AblationWarpResolution(o)) },
	"abl-pred":   func(o Options, w io.Writer) error { return printAll(w, AblationPredictor(o)) },
	"abl-fec":    func(o Options, w io.Writer) error { return printAll(w, AblationFECScheme(o)) },
	"abl-flow":   func(o Options, w io.Writer) error { return printAll(w, AblationSharedFlow(o)) },
	"abl-buffer": func(o Options, w io.Writer) error { return printAll(w, AblationBufferSize(o)) },
	"abl-head":   func(o Options, w io.Writer) error { return printAll(w, AblationDetailHead(o)) },
}

// IDs returns every registered experiment ID in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, opts Options, w io.Writer) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	start := time.Now()
	err := r(opts, w)
	cExperiments.Add(1)
	telemetry.Emit("experiment", telemetry.StageNone, id,
		float64(time.Since(start))/1e6)
	return err
}

// RunAll executes every experiment in ID order.
func RunAll(opts Options, w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(id, opts, w); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
