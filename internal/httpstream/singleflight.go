package httpstream

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn and all receive its result. Distinct keys
// run fully in parallel. (The x/sync/singleflight shape, reimplemented
// because the module is dependency-free.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn once per concurrent set of callers with the same key.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) ([]byte, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}
