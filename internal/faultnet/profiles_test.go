package faultnet

import (
	"net/http"
	"testing"
	"time"
)

func decideReq(t *testing.T) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://example/segment?rate=0&n=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// drawFaults runs n requests through the transport's fault decision only
// (no sleeping, no sockets) and tallies what was injected.
func drawFaults(t *testing.T, tr *Transport, n int) (resets, errors, truncs int, latencies []time.Duration) {
	t.Helper()
	req := decideReq(t)
	for i := 0; i < n; i++ {
		f := tr.decide(req)
		latencies = append(latencies, f.latency)
		switch {
		case f.reset:
			resets++
		case f.status > 0:
			errors++
		case f.truncate >= 0:
			truncs++
		}
	}
	return
}

func TestProfileClean(t *testing.T) {
	p, err := ProfileByName("clean")
	if err != nil {
		t.Fatal(err)
	}
	resets, errors, truncs, lats := drawFaults(t, p.Transport(nil, 7), 500)
	if resets+errors+truncs != 0 {
		t.Fatalf("clean profile injected %d/%d/%d faults", resets, errors, truncs)
	}
	for _, l := range lats {
		if l != 0 {
			t.Fatalf("clean profile injected latency %v", l)
		}
	}
}

// TestProfileLossyRates checks the lossy profile's documented memoryless
// rates under a fixed seed. The draw is deterministic, so the tolerance
// only needs to absorb binomial spread once, not flakiness.
func TestProfileLossyRates(t *testing.T) {
	p, err := ProfileByName("lossy")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	resets, errors, truncs, lats := drawFaults(t, p.Transport(nil, 42), n)
	check := func(name string, got int, want float64) {
		t.Helper()
		rate := float64(got) / n
		if rate < want/2 || rate > want*2 {
			t.Errorf("%s rate %.4f, want within [%.4f, %.4f]", name, rate, want/2, want*2)
		}
	}
	check("reset", resets, p.cfg.ResetRate)
	check("server-error", errors, p.cfg.ServerErrorRate)
	check("truncate", truncs, p.cfg.TruncateRate)
	for i, l := range lats {
		if l < p.cfg.Latency || l >= p.cfg.Latency+p.cfg.LatencyJitter {
			t.Fatalf("request %d latency %v outside [%v, %v)", i, l, p.cfg.Latency, p.cfg.Latency+p.cfg.LatencyJitter)
		}
	}
}

// TestProfileHilatLatency checks the high-latency profile's delay window
// and that it stays fault-free.
func TestProfileHilatLatency(t *testing.T) {
	p, err := ProfileByName("high-latency") // alias for "hilat"
	if err != nil {
		t.Fatal(err)
	}
	resets, errors, truncs, lats := drawFaults(t, p.Transport(nil, 3), 1000)
	if resets+errors+truncs != 0 {
		t.Fatalf("hilat injected %d/%d/%d faults", resets, errors, truncs)
	}
	var min, max, sum time.Duration
	min = time.Hour
	for _, l := range lats {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	lo, hi := p.cfg.Latency, p.cfg.Latency+p.cfg.LatencyJitter
	if min < lo || max >= hi {
		t.Fatalf("latency range [%v, %v] outside documented [%v, %v)", min, max, lo, hi)
	}
	// Uniform jitter: the mean should sit near the middle of the window.
	mean := sum / time.Duration(len(lats))
	mid := lo + p.cfg.LatencyJitter/2
	if d := mean - mid; d < -5*time.Millisecond || d > 5*time.Millisecond {
		t.Fatalf("mean latency %v far from window midpoint %v", mean, mid)
	}
}

// TestProfileBurstyWindows proves the burst gating: every fault lands in
// the first BurstOn requests of a cycle, and inside those windows the
// fault rate is near the configured (heavy) rates.
func TestProfileBurstyWindows(t *testing.T) {
	p, err := ProfileByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Transport(nil, 11)
	req := decideReq(t)
	cycle, on := p.cfg.BurstCycle, p.cfg.BurstOn
	const cycles = 40
	inBurstFaults, inBurst := 0, 0
	for i := 0; i < cycles*cycle; i++ {
		f := tr.decide(req)
		faulted := f.reset || f.status > 0 || f.truncate >= 0
		if i%cycle >= on {
			if faulted {
				t.Fatalf("request %d (outside burst window) faulted", i)
			}
			continue
		}
		inBurst++
		if faulted {
			inBurstFaults++
		}
	}
	wantRate := p.cfg.ResetRate + (1-p.cfg.ResetRate)*p.cfg.TruncateRate // reset shadows truncate in the switch
	rate := float64(inBurstFaults) / float64(inBurst)
	if rate < wantRate/2 || rate > 1 {
		t.Fatalf("in-burst fault rate %.3f, want ≥ %.3f", rate, wantRate/2)
	}
}

// TestProfileDeterministic: same profile + same seed ⇒ identical fault
// schedule; a different seed diverges.
func TestProfileDeterministic(t *testing.T) {
	p, err := ProfileByName("lossy")
	if err != nil {
		t.Fatal(err)
	}
	req := decideReq(t)
	draw := func(seed int64) []fault {
		tr := p.Transport(nil, seed)
		out := make([]fault, 600)
		for i := range out {
			out[i] = tr.decide(req)
		}
		return out
	}
	a, b, c := draw(5), draw(5), draw(6)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 600-request schedules")
	}
}

func TestProfileByNameErrors(t *testing.T) {
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, name := range ProfileNames() {
		if _, err := ProfileByName(name); err != nil {
			t.Fatalf("canonical name %q rejected: %v", name, err)
		}
	}
}

func TestSeedForSpread(t *testing.T) {
	seen := map[int64]bool{}
	for run := int64(1); run <= 3; run++ {
		for c := 0; c < 200; c++ {
			s := SeedFor(run, c)
			if s == 0 {
				t.Fatalf("SeedFor(%d, %d) = 0", run, c)
			}
			if seen[s] {
				t.Fatalf("SeedFor collision at run %d client %d", run, c)
			}
			seen[s] = true
		}
	}
	if SeedFor(1, 5) != SeedFor(1, 5) {
		t.Fatal("SeedFor not stable")
	}
}
