package flow

import (
	"encoding/binary"
	"fmt"
	"math"

	"nerve/internal/telemetry"
	"nerve/internal/vmath"
)

// EstimateBytes is the fixed-point tier of Estimate: the same
// coarse-to-fine pyramidal block matching, run on byte planes with an
// integer SWAR SAD (eight pixels per uint64 word, vmath.SAD8) instead of
// float absolute differences. It exists for the recovery path's frame
// deadline — work-resolution flow is the dominant cost of a recovered
// frame, and the byte matcher removes both the float conversion of the
// inputs and the per-pixel float arithmetic of the inner SAD loop.
//
// The search structure (pyramid construction ordering, candidate order,
// zero-bias regularisation, confidence mapping) matches Estimate exactly;
// only the pixel representation differs. Byte pyramids are built with an
// exact rounded 2×2 box filter, so levels differ from the float pyramid
// by at most the rounding of each sample — fields from the two matchers
// agree to block granularity on natural content but are not bit-identical
// by contract. The returned Field is float, pool-backed, and identical in
// shape/ownership to Estimate's.
func EstimateBytes(prev, cur *vmath.BytePlane, opts Options) *Field {
	defer telemetry.Start(telemetry.StageFlow).Stop()
	if prev.W != cur.W || prev.H != cur.H {
		panic(fmt.Sprintf("flow: size mismatch %dx%d vs %dx%d", prev.W, prev.H, cur.W, cur.H))
	}
	o := opts.withDefaults()

	levels := o.Levels
	for l := levels - 1; l > 0; l-- {
		if cur.W>>l < o.Block || cur.H>>l < o.Block {
			levels = l
		}
	}
	if levels < 1 {
		levels = 1
	}
	if levels > maxPyramidLevels {
		levels = maxPyramidLevels
	}
	var pPrev, pCur [maxPyramidLevels]*vmath.BytePlane
	pPrev[0], pCur[0] = prev, cur
	for l := 1; l < levels; l++ {
		pPrev[l] = downsampleBytes2x2(pPrev[l-1])
		pCur[l] = downsampleBytes2x2(pCur[l-1])
	}

	var coarse *blockField
	for l := levels - 1; l >= 0; l-- {
		finer := matchLevelBytes(pPrev[l], pCur[l], coarse, o)
		coarse.release()
		coarse = finer
	}
	out := coarse.dense(cur.W, cur.H)
	coarse.release()
	for l := 1; l < levels; l++ {
		vmath.PutBytes(pPrev[l])
		vmath.PutBytes(pCur[l])
	}
	return out
}

// downsampleBytes2x2 box-averages p by 2 in each dimension with exact
// round-to-nearest integer arithmetic ((a+b+c+d+2)>>2) into a pooled byte
// plane.
func downsampleBytes2x2(p *vmath.BytePlane) *vmath.BytePlane {
	w, h := p.W/2, p.H/2
	dst := vmath.GetBytes(w, h)
	for y := 0; y < h; y++ {
		r0 := p.Pix[(2*y)*p.W:]
		r1 := p.Pix[(2*y+1)*p.W:]
		out := dst.Pix[y*w : y*w+w]
		for x := 0; x < w; x++ {
			s := uint32(r0[2*x]) + uint32(r0[2*x+1]) + uint32(r1[2*x]) + uint32(r1[2*x+1])
			out[x] = uint8((s + 2) >> 2)
		}
	}
	return dst
}

// matchLevelBytes is matchLevel on byte planes: identical block grid,
// seeding and confidence math, integer SAD inside.
func matchLevelBytes(prev, cur *vmath.BytePlane, coarse *blockField, o Options) *blockField {
	bw := (cur.W + o.Block - 1) / o.Block
	bh := (cur.H + o.Block - 1) / o.Block
	uP := vmath.Get(bw, bh)
	vP := vmath.Get(bw, bh)
	cP := vmath.Get(bw, bh)
	out := &blockField{bw: bw, bh: bh, block: o.Block,
		u: uP.Pix, v: vP.Pix, conf: cP.Pix, uP: uP, vP: vP, cP: cP}
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			x0 := bx * o.Block
			y0 := by * o.Block
			var seedU, seedV float32
			if coarse != nil {
				cbx := bx * coarse.bw / bw
				cby := by * coarse.bh / bh
				ci := cby*coarse.bw + cbx
				seedU = coarse.u[ci] * 2
				seedV = coarse.v[ci] * 2
			}
			u, v, sad := searchBlockBytes(prev, cur, x0, y0, int(seedU), int(seedV), o)
			i := by*bw + bx
			out.u[i] = float32(u)
			out.v[i] = float32(v)
			perPix := float64(sad) / float64(o.Block*o.Block)
			out.conf[i] = float32(1 / (1 + perPix/8))
		}
	}
	return out
}

// searchBlockBytes mirrors searchBlock: exhaustive radius-o.Search scan
// around the seed with the same zero-bias regularisation.
func searchBlockBytes(prev, cur *vmath.BytePlane, x0, y0, seedU, seedV int, o Options) (u, v int, best float64) {
	best = math.Inf(1)
	r := o.Search
	block := o.Block
	biasScale := o.ZeroBias * float64(block*block) / 64
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			cu := seedU + dx
			cv := seedV + dy
			sad := blockSADBytes(prev, cur, x0, y0, cu, cv, block, best)
			sad += biasScale * (math.Abs(float64(cu)) + math.Abs(float64(cv)))
			if sad < best {
				best = sad
				u, v = cu, cv
			}
		}
	}
	return u, v, best
}

// blockSADBytes sums |cur − prev(shifted)| over the (clipped) block with
// the same row-wise early exit as the float blockSAD. Interior 8-wide rows
// take the SWAR fast path — one uint64 load per plane per row and a single
// vmath.SAD8; clipped or border rows fall back to the scalar loop with
// replicate clamping. Both paths compute identical sums (SAD8 is
// bit-exact, fixed_test.go), so candidate ordering never depends on which
// path ran.
func blockSADBytes(prev, cur *vmath.BytePlane, x0, y0, u, v, block int, limit float64) float64 {
	var sad int64
	w, h := cur.W, cur.H
	fast8 := block == 8 && x0+8 <= w && x0+u >= 0 && x0+u+8 <= w
	for y := 0; y < block; y++ {
		py := y0 + y
		if py >= h {
			break
		}
		sy := py + v
		if fast8 && sy >= 0 && sy < h {
			a := binary.LittleEndian.Uint64(cur.Pix[py*w+x0:])
			b := binary.LittleEndian.Uint64(prev.Pix[sy*w+x0+u:])
			sad += int64(vmath.SAD8(a, b))
		} else {
			for x := 0; x < block; x++ {
				px := x0 + x
				if px >= w {
					break
				}
				d := int32(cur.Pix[py*w+px]) - int32(prev.AtClamp(px+u, py+v))
				if d < 0 {
					d = -d
				}
				sad += int64(d)
			}
		}
		if float64(sad) >= limit {
			return float64(sad)
		}
	}
	return float64(sad)
}
