package video

import (
	"math"
	"testing"
	"testing/quick"

	"nerve/internal/metrics"
	"nerve/internal/vmath"
)

func TestLadder(t *testing.T) {
	rs := Resolutions()
	if len(rs) != 5 {
		t.Fatalf("ladder size %d", len(rs))
	}
	wantKbps := []int{512, 1024, 1600, 2640, 4400}
	wantH := []int{240, 360, 480, 720, 1080}
	for i, r := range rs {
		if r.Kbps() != wantKbps[i] {
			t.Errorf("%v kbps=%d want %d", r, r.Kbps(), wantKbps[i])
		}
		w, h := r.Dims()
		if h != wantH[i] {
			t.Errorf("%v height=%d want %d", r, h, wantH[i])
		}
		// Widths are the conventional rounded-to-even 16:9 values;
		// allow up to 2px of rounding (426×240, 854×480).
		if d := w*9 - h*16; d < -18 || d > 18 {
			t.Errorf("%v not ~16:9: %dx%d", r, w, h)
		}
		if got, ok := FromKbps(r.Kbps()); !ok || got != r {
			t.Errorf("FromKbps(%d) = %v,%v", r.Kbps(), got, ok)
		}
	}
	if _, ok := FromKbps(999); ok {
		t.Error("FromKbps(999) should fail")
	}
	if R1080.Bitrate() != 4400000 {
		t.Errorf("Bitrate=%v", R1080.Bitrate())
	}
}

func TestCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 10 {
		t.Fatalf("want 10 categories, got %d", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if seen[c.Name] {
			t.Errorf("duplicate category %q", c.Name)
		}
		seen[c.Name] = true
		if c.Objects <= 0 || c.Speed <= 0 || c.CutEvery <= 0 {
			t.Errorf("category %q has non-positive parameters", c.Name)
		}
	}
	if _, err := CategoryByName("GamePlay"); err != nil {
		t.Errorf("CategoryByName(GamePlay): %v", err)
	}
	if _, err := CategoryByName("nope"); err == nil {
		t.Error("CategoryByName should fail for unknown name")
	}
}

func TestRenderDeterministic(t *testing.T) {
	g := NewGenerator(Categories()[0], 7)
	a := g.Render(12, 64, 36)
	b := g.Render(12, 64, 36)
	if d := vmath.MAE(a, b); d != 0 {
		t.Fatalf("render not deterministic: %v", d)
	}
}

func TestRenderSeedsDiffer(t *testing.T) {
	cat := Categories()[0]
	a := NewGenerator(cat, 1).Render(5, 64, 36)
	b := NewGenerator(cat, 2).Render(5, 64, 36)
	if d := vmath.MAE(a, b); d < 1 {
		t.Fatalf("different seeds produced near-identical frames (MAE %v)", d)
	}
}

func TestRenderRange(t *testing.T) {
	g := NewGenerator(Categories()[3], 3)
	p := g.Render(40, 80, 45)
	min, max := p.MinMax()
	if min < 0 || max > 255 {
		t.Fatalf("out of range: %v..%v", min, max)
	}
	if max-min < 30 {
		t.Fatalf("frame nearly flat: %v..%v", min, max)
	}
}

func TestTemporalCoherence(t *testing.T) {
	// Consecutive frames must be far more similar than frames across a
	// scene cut — this is the property recovery exploits.
	cat := Categories()[1] // HowTo: CutEvery=360
	g := NewGenerator(cat, 5)
	f10 := g.Render(10, 96, 54)
	f11 := g.Render(11, 96, 54)
	fCutA := g.Render(359, 96, 54)
	fCutB := g.Render(360, 96, 54)
	adjacent := metrics.PSNR(f10, f11)
	acrossCut := metrics.PSNR(fCutA, fCutB)
	if adjacent < 25 {
		t.Fatalf("adjacent frames too different: %v dB", adjacent)
	}
	if adjacent <= acrossCut+5 {
		t.Fatalf("scene cut not visible: adjacent %v dB, across cut %v dB", adjacent, acrossCut)
	}
}

func TestMotionPresent(t *testing.T) {
	// Over 15 frames the scene must change measurably (objects move).
	g := NewGenerator(Categories()[3], 9) // GamePlay: fast
	a := g.Render(30, 96, 54)
	b := g.Render(45, 96, 54)
	if p := metrics.PSNR(a, b); p > 32 {
		t.Fatalf("no visible motion across 15 frames: %v dB", p)
	}
}

func TestCrossResolutionConsistency(t *testing.T) {
	// A frame rendered small should approximate the downscaled large
	// render of the same frame.
	g := NewGenerator(Categories()[8], 2) // Education: low noise
	small := g.Render(20, 80, 45)
	large := g.Render(20, 320, 180)
	down := vmath.ResizeBilinear(large, 80, 45)
	if p := metrics.PSNR(small, down); p < 24 {
		t.Fatalf("cross-resolution inconsistency: %v dB", p)
	}
}

func TestRenderClip(t *testing.T) {
	g := NewGenerator(Categories()[0], 1)
	c := g.RenderClip(5, 8, 48, 27)
	if len(c.Frames) != 8 {
		t.Fatalf("frames=%d", len(c.Frames))
	}
	if c.Frames[0].Index != 5 || c.Frames[7].Index != 12 {
		t.Fatalf("indices wrong: %d..%d", c.Frames[0].Index, c.Frames[7].Index)
	}
	if math.Abs(c.Duration()-8.0/30) > 1e-12 {
		t.Fatalf("duration=%v", c.Duration())
	}
}

func TestDatasetSplit(t *testing.T) {
	d := NewDataset()
	if len(d.Train) != 40 || len(d.Test) != 10 {
		t.Fatalf("split %d/%d", len(d.Train), len(d.Test))
	}
	seeds := map[int64]bool{}
	for _, s := range append(append([]ClipSource{}, d.Train...), d.Test...) {
		if seeds[s.Seed] {
			t.Fatalf("duplicate seed %d", s.Seed)
		}
		seeds[s.Seed] = true
	}
	// Each test clip's generator must work.
	p := d.Test[0].Generator().Render(0, 32, 18)
	if p.W != 32 {
		t.Fatal("generator broken")
	}
}

func TestNewContentAppears(t *testing.T) {
	// Categories with SpawnRate > 0 must introduce objects mid-segment:
	// render a late frame and an early frame of the same segment and
	// check they differ beyond pure motion of initial objects. We verify
	// via object birth bookkeeping instead of pixels for robustness.
	g := NewGenerator(Categories()[3], 4) // GamePlay SpawnRate=1.0
	objs := g.objects(0)
	births := 0
	for _, o := range objs {
		if o.birth > 0 {
			births++
		}
	}
	if births == 0 {
		t.Fatal("no spawned objects in a high-spawn category")
	}
}

func TestValueNoiseProperties(t *testing.T) {
	f := func(seed uint64, xi, yi int16) bool {
		x := float64(xi) / 7
		y := float64(yi) / 7
		v := valueNoise2D(seed, x, y)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Continuity: nearby points have nearby noise.
	for i := 0; i < 50; i++ {
		x := float64(i) * 0.317
		a := valueNoise2D(42, x, 1.5)
		b := valueNoise2D(42, x+0.001, 1.5)
		if math.Abs(a-b) > 0.02 {
			t.Fatalf("noise discontinuous at %v: %v vs %v", x, a, b)
		}
	}
}

func TestSegmentBoundaries(t *testing.T) {
	g := NewGenerator(Category{Name: "x", Objects: 1, Speed: 1, CutEvery: 10}, 1)
	seg, off := g.segment(0)
	if seg != 0 || off != 0 {
		t.Fatalf("segment(0)=%d,%d", seg, off)
	}
	seg, off = g.segment(25)
	if seg != 2 || off != 5 {
		t.Fatalf("segment(25)=%d,%d", seg, off)
	}
	g2 := NewGenerator(Category{Name: "y", Objects: 1, Speed: 1, CutEvery: 0}, 1)
	seg, off = g2.segment(99)
	if seg != 0 || off != 99 {
		t.Fatalf("no-cut segment(99)=%d,%d", seg, off)
	}
}

func BenchmarkRender270p(b *testing.B) {
	g := NewGenerator(Categories()[3], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Render(i, 480, 270)
	}
}
