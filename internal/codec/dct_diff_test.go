package codec

import (
	"math"
	"math/rand"
	"testing"

	"nerve/internal/metrics"
	"nerve/internal/vmath"
)

// cornerBlocks are adversarial DCT inputs: flat extremes, single-pixel
// impulses at every position, maximum-amplitude checkerboards and ramps —
// the blocks where butterfly sign or scale mistakes show up loudest.
func cornerBlocks() [][64]float32 {
	var out [][64]float32
	flat := func(v float32) (b [64]float32) {
		for i := range b {
			b[i] = v
		}
		return b
	}
	out = append(out, flat(0), flat(255), flat(-255), flat(-128), flat(127))
	for p := 0; p < 64; p++ {
		var b [64]float32
		b[p] = 255
		out = append(out, b)
		b[p] = -255
		out = append(out, b)
	}
	var checker, rowAlt, colAlt, rampX, rampY [64]float32
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := float32(255)
			if (x+y)%2 == 1 {
				v = -255
			}
			checker[y*8+x] = v
			rowAlt[y*8+x] = float32(255 * (1 - 2*(y%2)))
			colAlt[y*8+x] = float32(255 * (1 - 2*(x%2)))
			rampX[y*8+x] = float32(x)*36 - 128
			rampY[y*8+x] = float32(y)*36 - 128
		}
	}
	return append(out, checker, rowAlt, colAlt, rampX, rampY)
}

func randomBlocks(seed int64, n int) [][64]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][64]float32, n)
	for i := range out {
		for j := range out[i] {
			out[i][j] = rng.Float32()*510 - 255
		}
	}
	return out
}

func diffBlocks(seed int64) [][64]float32 {
	return append(cornerBlocks(), randomBlocks(seed, 500)...)
}

// TestAANForwardMatchesRef: fdct8 descaled by fwdScale must agree with the
// orthonormal fdct8Ref to 1e-3 on corner-case and random blocks.
func TestAANForwardMatchesRef(t *testing.T) {
	ts := aanTransforms()
	var worst float64
	for _, blk := range diffBlocks(11) {
		var fast, ref [64]float32
		fdct8(&blk, &fast)
		fdct8Ref(&blk, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i]/ts.fwdScale[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max forward error %g", worst)
	if worst > 1e-3 {
		t.Fatalf("AAN forward deviates from reference by %g > 1e-3", worst)
	}
}

// TestAANInverseMatchesRef: idct8 on invScale-scaled coefficients must
// agree with idct8Ref on the raw coefficients to 1e-3. The block set is
// interpreted directly as coefficient blocks, so frequency-domain impulses
// (single-basis-function reconstructions) are covered.
func TestAANInverseMatchesRef(t *testing.T) {
	ts := aanTransforms()
	var worst float64
	for _, coef := range diffBlocks(12) {
		var scaled, fast, ref [64]float32
		for i := range scaled {
			scaled[i] = coef[i] * ts.invScale[i]
		}
		idct8(&scaled, &fast)
		idct8Ref(&coef, &ref)
		for i := range fast {
			d := math.Abs(float64(fast[i] - ref[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max inverse error %g", worst)
	if worst > 1e-3 {
		t.Fatalf("AAN inverse deviates from reference by %g > 1e-3", worst)
	}
}

// TestAANRoundTripIdentity: invScale/fwdScale is the uniform 1/64, so
// idct8(fdct8(x)/64) must reproduce x.
func TestAANRoundTripIdentity(t *testing.T) {
	ts := aanTransforms()
	for i := range ts.fwdScale {
		r := float64(ts.invScale[i]) / float64(ts.fwdScale[i])
		if math.Abs(r-1.0/64) > 1e-9 {
			t.Fatalf("invScale/fwdScale at %d is %g, want 1/64", i, r)
		}
	}
	var worst float64
	for _, blk := range diffBlocks(13) {
		var coef, rec [64]float32
		fdct8(&blk, &coef)
		for i := range coef {
			coef[i] /= 64
		}
		idct8(&coef, &rec)
		for i := range rec {
			d := math.Abs(float64(rec[i] - blk[i]))
			if d > worst {
				worst = d
			}
		}
	}
	t.Logf("max round-trip error %g", worst)
	if worst > 1e-3 {
		t.Fatalf("AAN round trip deviates by %g > 1e-3", worst)
	}
}

// TestQuantLevelEquivalence: with the AAN scales folded into the quant
// tables, the integer levels (the bitstream) must match what the reference
// transform produces, except where a coefficient lands within float noise
// of a rounding boundary.
func TestQuantLevelEquivalence(t *testing.T) {
	aan := aanTransforms()
	ref := refTransforms()
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	blocks := diffBlocks(14)
	for _, q := range []float32{1, 2, 4, 8} {
		mismatch, boundary := 0, 0
		for _, blk := range blocks {
			var cA, cR [64]float32
			var lA, lR [64]int32
			restore := setXF(aan)
			fdct8(&blk, &cA)
			quantise(&cA, q, &lA)
			restore()
			restore = setXF(ref)
			fdct8Ref(&blk, &cR)
			quantise(&cR, q, &lR)
			restore()
			for i := range lA {
				if lA[i] == lR[i] {
					continue
				}
				d := lA[i] - lR[i]
				if d < 0 {
					d = -d
				}
				if d > 1 {
					mismatch++
					continue
				}
				// Off-by-one is only legitimate on a rounding boundary:
				// the true coefficient within 1e-3 of a half-step.
				v := float64(cR[i]) / float64(q*quantWeight[i])
				if math.Abs(v-math.Round(v)-0.5) < 2e-3 || math.Abs(v-math.Round(v)+0.5) < 2e-3 {
					boundary++
				} else {
					mismatch++
				}
			}
		}
		if mismatch > 0 {
			t.Fatalf("q=%v: %d level mismatches beyond rounding boundaries (%d boundary cases)", q, mismatch, boundary)
		}
		t.Logf("q=%v: levels equivalent (%d boundary off-by-ones tolerated)", q, boundary)
	}
}

// encodeDecodePSNRs runs a full encode→decode loop and returns per-frame
// PSNRs of the decoded output against the source.
func encodeDecodePSNRs(t *testing.T, frames []*vmath.Plane, cfg Config) []float64 {
	t.Helper()
	enc := NewEncoder(cfg)
	dec := NewDecoder(cfg)
	out := make([]float64, len(frames))
	for i, f := range frames {
		ef := enc.Encode(f)
		res, err := dec.Decode(ef, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		out[i] = metrics.PSNR(f, res.Frame)
		vmath.Put(res.Mask)
	}
	return out
}

// TestEncodePSNRParityWithReference is the end-to-end quality gate: the
// full encode/decode pipeline under the AAN transforms must land within
// 0.05 dB of the basis-matrix transforms on every golden frame. Run under
// both build tags, it pins whichever set is not the default against the
// other.
func TestEncodePSNRParityWithReference(t *testing.T) {
	setXF := func(ts transformSet) func() {
		old := xf
		xf = ts
		return func() { xf = old }
	}
	frames := testClip(t, 10)
	cfg := Config{W: 160, H: 96, GOP: 5, TargetBitrate: 600e3}
	restore := setXF(aanTransforms())
	fast := encodeDecodePSNRs(t, frames, cfg)
	restore()
	restore = setXF(refTransforms())
	ref := encodeDecodePSNRs(t, frames, cfg)
	restore()
	for i := range fast {
		if d := math.Abs(fast[i] - ref[i]); d > 0.05 {
			t.Fatalf("frame %d: PSNR %.3f dB (AAN) vs %.3f dB (reference): |Δ| %.3f > 0.05 dB",
				i, fast[i], ref[i], d)
		}
	}
	t.Logf("PSNR parity on %d frames: AAN %.3f..%.3f dB", len(fast), fast[0], fast[len(fast)-1])
}
