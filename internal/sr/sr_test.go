package sr

import (
	"testing"

	"nerve/internal/metrics"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

const (
	gtW, gtH = 192, 108
	lrW, lrH = 48, 27 // 4× downscale
)

// clipPair renders n ground-truth frames and their LR observations.
func clipPair(cat video.Category, seed int64, start, n, lw, lh int) (gt, lr []*vmath.Plane) {
	g := video.NewGenerator(cat, seed)
	for i := 0; i < n; i++ {
		f := g.Render(start+i, gtW, gtH)
		gt = append(gt, f)
		lr = append(lr, vmath.ResizeBilinear(f, lw, lh))
	}
	return gt, lr
}

func meanPSNR(gt, pred []*vmath.Plane) float64 {
	var s metrics.Series
	for i := range gt {
		s.Observe(metrics.PSNR(gt[i], pred[i]), 0)
	}
	return s.MeanPSNR()
}

func TestOursBeatsBilinear(t *testing.T) {
	gt, lr := clipPair(video.Categories()[0], 3, 20, 8, lrW, lrH)
	ours := RunClip(MethodOurs, lr, gtW, gtH)
	bil := RunClip(MethodBilinear, lr, gtW, gtH)
	pOurs := meanPSNR(gt, ours)
	pBil := meanPSNR(gt, bil)
	t.Logf("ours %.2f dB, bilinear %.2f dB", pOurs, pBil)
	if pOurs <= pBil+0.3 {
		t.Fatalf("SR gain too small: ours %.2f vs bilinear %.2f", pOurs, pBil)
	}
}

func TestGainPositiveAtEveryResolution(t *testing.T) {
	// Fig. 10: SR improves over plain upsampling at every input rung.
	// (The paper's own per-rung deltas — 1.2/1.1/1.0/1.3 dB — are not
	// monotone in resolution, so the shape to preserve is a positive
	// gain everywhere.)
	gain := func(lw, lh int) float64 {
		gt, lr := clipPair(video.Categories()[0], 2, 10, 6, lw, lh)
		ours := RunClip(MethodOurs, lr, gtW, gtH)
		bil := RunClip(MethodBilinear, lr, gtW, gtH)
		return meanPSNR(gt, ours) - meanPSNR(gt, bil)
	}
	for _, sz := range [][2]int{{32, 18}, {48, 27}, {64, 36}, {96, 54}} {
		g := gain(sz[0], sz[1])
		t.Logf("input %dx%d: gain %.2f dB", sz[0], sz[1], g)
		if g <= 0 {
			t.Errorf("no SR gain at %dx%d: %.2f dB", sz[0], sz[1], g)
		}
	}
}

func TestTemporalFusionHelps(t *testing.T) {
	gt, lr := clipPair(video.Categories()[1], 5, 30, 10, lrW, lrH)
	with := New(Config{OutW: gtW, OutH: gtH})
	without := New(Config{OutW: gtW, OutH: gtH, TemporalWeight: -1}) // negative disables fusion effect
	// TemporalWeight<0 would amplify; instead build a fresh resolver per
	// frame to disable state.
	var pWith, pWithout float64
	{
		var s metrics.Series
		for i := range lr {
			s.Observe(metrics.PSNR(gt[i], with.Upscale(lr[i])), 0)
		}
		pWith = s.MeanPSNR()
	}
	{
		var s metrics.Series
		for i := range lr {
			without.Reset()
			s.Observe(metrics.PSNR(gt[i], without.Upscale(lr[i])), 0)
		}
		pWithout = s.MeanPSNR()
	}
	t.Logf("with temporal %.2f dB, without %.2f dB", pWith, pWithout)
	if pWith <= pWithout-0.05 {
		t.Fatalf("temporal fusion hurt: %.2f vs %.2f", pWith, pWithout)
	}
}

func TestBackProjectionConsistency(t *testing.T) {
	// The SR output must downsample back close to the LR observation.
	_, lr := clipPair(video.Categories()[0], 7, 15, 3, lrW, lrH)
	s := New(Config{OutW: gtW, OutH: gtH})
	var out *vmath.Plane
	for _, f := range lr {
		out = s.Upscale(f)
	}
	down := vmath.ResizeBilinear(out, lrW, lrH)
	if p := metrics.PSNR(lr[len(lr)-1], down); p < 38 {
		t.Fatalf("back-projection consistency only %.2f dB", p)
	}
}

func TestMultiResolutionInputSwitch(t *testing.T) {
	// The ABR switches rungs mid-stream; the resolver must accept a new
	// input resolution without error and keep producing sane output.
	gt, _ := clipPair(video.Categories()[0], 9, 40, 4, lrW, lrH)
	s := New(Config{OutW: gtW, OutH: gtH})
	sizes := [][2]int{{48, 27}, {48, 27}, {96, 54}, {64, 36}}
	for i, f := range gt {
		lr := vmath.ResizeBilinear(f, sizes[i][0], sizes[i][1])
		out := s.Upscale(lr)
		if out.W != gtW || out.H != gtH {
			t.Fatalf("frame %d geometry %dx%d", i, out.W, out.H)
		}
		if p := metrics.PSNR(gt[i], out); p < 20 {
			t.Fatalf("frame %d quality collapsed after rung switch: %.2f dB", i, p)
		}
	}
}

func TestOutputRange(t *testing.T) {
	_, lr := clipPair(video.Categories()[3], 11, 5, 2, lrW, lrH)
	s := New(Config{OutW: gtW, OutH: gtH})
	for _, f := range lr {
		out := s.Upscale(f)
		if min, max := out.MinMax(); min < 0 || max > 255 {
			t.Fatalf("output out of range: %v..%v", min, max)
		}
	}
}

func TestTable1CostOrdering(t *testing.T) {
	ours := MethodOurs.Info()
	for _, m := range []Method{MethodRLSP, MethodBasicVSR, MethodCKBG} {
		if ours.FLOPsG >= m.Info().FLOPsG {
			t.Errorf("ours FLOPs %.1f not below %s %.1f", ours.FLOPsG, m.Info().Name, m.Info().FLOPsG)
		}
	}
	if !ours.Online {
		t.Error("ours must be online")
	}
	if MethodBasicVSR.Info().Online {
		t.Error("BasicVSR is offline (bidirectional)")
	}
}

func TestTable1QualityOrdering(t *testing.T) {
	// Heavy baselines outperform the real-time model in PSNR (Table 1),
	// but ours stays within a few dB.
	gt, lr := clipPair(video.Categories()[2], 13, 25, 8, lrW, lrH)
	psnr := map[Method]float64{}
	for _, m := range append(Methods(), MethodBilinear) {
		psnr[m] = meanPSNR(gt, RunClip(m, lr, gtW, gtH))
	}
	t.Logf("PSNR: RLSP=%.2f BasicVSR=%.2f CKBG=%.2f ours=%.2f bilinear=%.2f",
		psnr[MethodRLSP], psnr[MethodBasicVSR], psnr[MethodCKBG], psnr[MethodOurs], psnr[MethodBilinear])
	for _, m := range []Method{MethodRLSP, MethodBasicVSR, MethodCKBG} {
		if psnr[m] < psnr[MethodOurs]-0.2 {
			t.Errorf("%s (%.2f) below ours (%.2f)", m.Info().Name, psnr[m], psnr[MethodOurs])
		}
	}
	if best := psnr[MethodBasicVSR]; best-psnr[MethodOurs] > 4 {
		t.Errorf("ours too far behind BasicVSR: %.2f vs %.2f", psnr[MethodOurs], best)
	}
	if psnr[MethodOurs] <= psnr[MethodBilinear] {
		t.Errorf("ours (%.2f) must beat bilinear (%.2f)", psnr[MethodOurs], psnr[MethodBilinear])
	}
}

func TestRunClipUnknownMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunClip(Method(99), []*vmath.Plane{vmath.NewPlane(8, 8)}, 16, 16)
}

func BenchmarkUpscale4x(b *testing.B) {
	g := video.NewGenerator(video.Categories()[0], 1)
	lr := vmath.ResizeBilinear(g.Render(0, 480, 270), 120, 68)
	s := New(Config{OutW: 480, OutH: 270})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Upscale(lr)
	}
}

func TestLearnedHeadTrainsAndHelps(t *testing.T) {
	head := TrainLearnedHead(4, 150, 1)
	gt, lr := clipPair(video.Categories()[3], 4, 30, 4, lrW, lrH)
	learned := New(Config{OutW: gtW, OutH: gtH, LearnedHead: head})
	var pLearned, pBicubic float64
	for i := range lr {
		pLearned += metrics.PSNR(gt[i], learned.Upscale(lr[i])) / float64(len(lr))
		pBicubic += metrics.PSNR(gt[i], UpscaleBicubic(lr[i], gtW, gtH)) / float64(len(lr))
	}
	t.Logf("learned head %.2f dB, bicubic %.2f dB", pLearned, pBicubic)
	if pLearned <= pBicubic {
		t.Fatalf("learned head (%.2f) did not beat bicubic (%.2f)", pLearned, pBicubic)
	}
}

func TestLearnedHeadApplyGeometry(t *testing.T) {
	head := TrainLearnedHead(2, 30, 2)
	p := vmath.NewPlane(40, 24) // not a multiple of the patch size
	p.Fill(128)
	out := head.Apply(p)
	if out.W != 40 || out.H != 24 {
		t.Fatalf("geometry %dx%d", out.W, out.H)
	}
	if min, max := out.MinMax(); min < 0 || max > 255 {
		t.Fatalf("range %v..%v", min, max)
	}
}
