module nerve

go 1.22
