package faultnet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Profile is a named, reusable network shape for load generation: a
// Config template without a seed. The load harness (internal/loadgen,
// cmd/nerveload) draws each simulated client's network from this matrix,
// seeding every client independently so a run is reproducible end to end
// — same run seed, same per-client fault schedules.
//
// The matrix deliberately spans the regimes the NERVE loss story cares
// about: a clean baseline, memoryless loss that exercises retry/backoff,
// a high-latency path that stresses the fetch-latency SLO, and bursty
// loss where whole retry budgets can burn inside one bad window and the
// client must degrade to codes-only recovery.
type Profile struct {
	// Name is the canonical matrix key ("clean", "lossy", "hilat",
	// "bursty").
	Name string
	// Description is a one-line human summary for reports.
	Description string

	cfg Config // seed left zero; filled per client
}

// Config returns the profile's transport configuration with the given
// seed filled in.
func (p Profile) Config(seed int64) Config {
	c := p.cfg
	c.Seed = seed
	return c
}

// Transport builds the profile's fault-injecting RoundTripper over base
// with the given per-client seed.
func (p Profile) Transport(base http.RoundTripper, seed int64) *Transport {
	return New(base, p.Config(seed))
}

// The profile matrix. Rates are chosen so that "lossy" exercises the
// retry path without exhausting a 3-attempt budget (~10% of requests
// faulted, degradation vanishingly rare), while "bursty" concentrates
// the same order of faults into windows where 3 attempts in a row fail
// often enough that codes-only degradation actually happens.
var profiles = []Profile{
	{
		Name:        "clean",
		Description: "no injected faults, no added latency",
		cfg:         Config{},
	},
	{
		Name:        "lossy",
		Description: "memoryless loss: 4% resets, 4% 503s, 2% truncations, 2-8 ms latency",
		cfg: Config{
			ResetRate:       0.04,
			ServerErrorRate: 0.04,
			TruncateRate:    0.02,
			Latency:         2 * time.Millisecond,
			LatencyJitter:   6 * time.Millisecond,
		},
	},
	{
		Name:        "hilat",
		Description: "clean but slow: 40-80 ms added per request",
		cfg: Config{
			Latency:       40 * time.Millisecond,
			LatencyJitter: 40 * time.Millisecond,
		},
	},
	{
		Name:        "bursty",
		Description: "8-request bursts every 32 requests with 50% resets and 25% truncations inside the burst, 1-5 ms latency",
		cfg: Config{
			ResetRate:     0.50,
			TruncateRate:  0.25,
			Latency:       time.Millisecond,
			LatencyJitter: 4 * time.Millisecond,
			BurstCycle:    32,
			BurstOn:       8,
		},
	},
}

// Profiles returns the matrix in a stable order.
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ProfileNames returns the canonical names in matrix order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ProfileByName resolves a profile by canonical name (case-insensitive);
// "high-latency" is accepted as an alias for "hilat".
func ProfileByName(name string) (Profile, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "high-latency" {
		key = "hilat"
	}
	for _, p := range profiles {
		if p.Name == key {
			return p, nil
		}
	}
	known := ProfileNames()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("faultnet: unknown profile %q (have %s)", name, strings.Join(known, ", "))
}

// SeedFor derives a per-client seed from a run seed, splitmix64-style:
// well-spread, stateless, and stable across runs, so client i sees the
// same fault schedule every time the run seed repeats.
func SeedFor(run int64, client int) int64 {
	z := uint64(run) + 0x9e3779b97f4a7c15*uint64(client+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // 0 means "use the default seed" to RetryPolicy; avoid it
	}
	return int64(z)
}
