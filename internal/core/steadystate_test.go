package core

import (
	"runtime/debug"
	"testing"

	"nerve/internal/par"
	"nerve/internal/video"
	"nerve/internal/vmath"
)

// TestSteadyStateZeroPlaneAllocs is the end-to-end proof of the pooled
// memory model: a warmed-up client running the full decode → recover → SR
// pipeline performs zero plane backing-array allocations per frame. Every
// per-frame plane comes from the pool and goes back to it.
//
// The schedule deliberately walks all three input paths (complete, partial,
// complete loss) in both the warm-up and the measured window, so the
// recovery and concealment scratch planes are warm too. GC is disabled
// during the measured window so sync.Pool cannot evict warm buffers
// mid-measurement, and the worker pool is pinned to one goroutine so
// bucket reuse is deterministic.
func TestSteadyStateZeroPlaneAllocs(t *testing.T) {
	if vmath.RaceEnabled {
		t.Skip("sync.Pool drops random Puts under -race; steady state is not allocation-free there")
	}
	defer par.SetWorkers(1)()

	const frames = 18
	// Small payloads force several slices per frame so dropped slices give
	// genuinely partial frames.
	srv, err := NewServer(ServerConfig{W: tw, H: th, TargetBitrate: 1200e3, GOP: 60, PacketPayload: 250})
	if err != nil {
		t.Fatal(err)
	}
	// Produce all server frames before the measured window: the client is
	// the system under test.
	g := video.NewGenerator(video.Categories()[3], 9)
	sfs := make([]*ServerFrame, frames)
	for i := range sfs {
		if sfs[i], err = srv.Process(g.Render(i, tw, th)); err != nil {
			t.Fatal(err)
		}
	}

	cli, err := NewClient(ClientConfig{
		W: tw, H: th,
		OutW: tw * 2, OutH: th * 2,
		EnableRecovery: true,
		EnableSR:       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	input := func(i int) Input {
		sf := sfs[i]
		in := Input{Encoded: sf.Encoded, Code: sf.Code}
		switch i % 5 {
		case 2: // complete loss
			in.Encoded = nil
		case 4: // partial: drop every third slice
			recv := make([]bool, len(sf.Encoded.Slices))
			for j := range recv {
				recv[j] = j%3 != 1
			}
			recv[0] = true
			in.Received = recv
		}
		return in
	}

	step := func(i int) {
		res, err := cli.Next(input(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Frame.W != tw*2 || res.Frame.H != th*2 {
			t.Fatalf("frame %d geometry %dx%d", i, res.Frame.W, res.Frame.H)
		}
		// The displayed frame is caller-owned; returning it keeps the
		// display bucket warm, exactly like a real render loop would.
		vmath.Put(res.Frame)
	}

	const warm = 8 // covers decoded, partial and lost paths at least once
	for i := 0; i < warm; i++ {
		step(i)
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	before := vmath.PlaneAllocs()
	for i := warm; i < frames; i++ {
		step(i)
	}
	if d := vmath.PlaneAllocs() - before; d != 0 {
		t.Fatalf("steady-state client loop allocated %d plane backing arrays over %d frames, want 0", d, frames-warm)
	}
}
