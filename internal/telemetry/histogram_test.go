package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds verifies the bucket geometry: every value lands in
// a bucket whose bounds contain it, and indices are monotone in the value.
func TestBucketIndexBounds(t *testing.T) {
	values := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345, 1 << 62}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		values = append(values, uint64(rng.Int63()))
	}
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		lo, width := bucketBounds(idx)
		// Compare in uint64: lo+width overflows int64 in the top octave.
		if v < uint64(lo) || v-uint64(lo) >= uint64(width) {
			t.Fatalf("value %d not inside bucket %d bounds [%d, +%d)", v, idx, lo, width)
		}
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

// TestQuantileOracle compares Quantile against a sorted-slice oracle using
// the same rank rule (ceil(q*n)). The estimate is the midpoint of the
// bucket holding the oracle value, so it can differ from the oracle by at
// most half a bucket width — within the documented 12.5% relative error.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the realistic span of stage times.
		v := int64(float64(time.Microsecond) * (1 + rng.ExpFloat64()*float64(rng.Intn(1e6))))
		vals = append(vals, v)
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
		rank := int(q * float64(len(vals)))
		if float64(rank) < q*float64(len(vals)) {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		oracle := float64(vals[rank-1])
		got := float64(h.Quantile(q))
		relErr := (got - oracle) / oracle
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.125 {
			t.Errorf("Quantile(%v) = %v, oracle %v, rel err %.3f > 0.125", q, got, oracle, relErr)
		}
	}
}

func TestHistogramCountSumMaxExact(t *testing.T) {
	var h Histogram
	durations := []time.Duration{0, 1, 7, 15, 16, 100, 1e6, 33 * time.Millisecond}
	var sum time.Duration
	var max time.Duration
	for _, d := range durations {
		h.Observe(d)
		sum += d
		if d > max {
			max = d
		}
	}
	if got := h.Count(); got != int64(len(durations)) {
		t.Errorf("Count = %d, want %d", got, len(durations))
	}
	if got := h.Sum(); got != sum {
		t.Errorf("Sum = %v, want %v", got, sum)
	}
	if got := h.Max(); got != max {
		t.Errorf("Max = %v, want %v", got, max)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamps to zero
	if h.Count() != 1 || h.Sum() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation must count as zero: count=%d sum=%v q1=%v",
			h.Count(), h.Sum(), h.Quantile(1))
	}
}

// TestHistogramConcurrent exercises concurrent recording and reading; its
// value is under -race (the CI race gate runs this package).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(50 * time.Millisecond))))
			}
		}(g)
	}
	// Readers race the writers; results just have to be tear-free, which
	// the race detector checks.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = h.Quantile(0.95)
				_ = h.Count()
				_ = h.Max()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
}
